#include "dram/dram_config.hpp"

#include <cassert>

namespace dnnd::dram {

std::string to_string(DeviceGen gen) {
  switch (gen) {
    case DeviceGen::kDdr3Old: return "DDR3 (old)";
    case DeviceGen::kDdr3New: return "DDR3 (new)";
    case DeviceGen::kDdr4Old: return "DDR4 (old)";
    case DeviceGen::kDdr4New: return "DDR4 (new)";
    case DeviceGen::kLpddr4Old: return "LPDDR4 (old)";
    case DeviceGen::kLpddr4New: return "LPDDR4 (new)";
  }
  return "unknown";
}

u32 rowhammer_threshold(DeviceGen gen) {
  // Fig. 1(a) of the paper (thousands of hammer counts to first flip).
  switch (gen) {
    case DeviceGen::kDdr3Old: return 139'000;
    case DeviceGen::kDdr3New: return 22'400;
    case DeviceGen::kDdr4Old: return 17'500;
    case DeviceGen::kDdr4New: return 10'000;
    case DeviceGen::kLpddr4Old: return 16'800;
    case DeviceGen::kLpddr4New: return 4'800;
  }
  return 0;
}

DramConfig DramConfig::sim_small() {
  DramConfig c;
  c.geo = Geometry{.banks = 2, .subarrays_per_bank = 4, .rows_per_subarray = 64, .row_bytes = 512};
  c.gen = DeviceGen::kLpddr4New;
  c.t_rh = rowhammer_threshold(c.gen);
  return c;
}

DramConfig DramConfig::sim_default() {
  DramConfig c;
  c.geo = Geometry{.banks = 8, .subarrays_per_bank = 8, .rows_per_subarray = 128, .row_bytes = 1024};
  c.gen = DeviceGen::kLpddr4New;
  c.t_rh = rowhammer_threshold(c.gen);
  return c;
}

DramConfig DramConfig::nn_scaled() {
  DramConfig c;
  c.geo = Geometry{.banks = 8, .subarrays_per_bank = 8, .rows_per_subarray = 128, .row_bytes = 64};
  c.gen = DeviceGen::kLpddr4New;
  c.t_rh = rowhammer_threshold(c.gen);
  return c;
}

DramConfig DramConfig::paper_32gb() {
  DramConfig c;
  // 32 GB / 16 banks / 8 KB rows => 262,144 rows per bank, organised as
  // 512-row subarrays (512 subarrays per bank).
  c.geo = Geometry{.banks = 16,
                   .subarrays_per_bank = 512,
                   .rows_per_subarray = 512,
                   .row_bytes = 8192};
  c.gen = DeviceGen::kDdr4New;
  c.t_rh = rowhammer_threshold(c.gen);
  return c;
}

DramConfig DramConfig::preset(DeviceGen gen) {
  DramConfig c = sim_default();
  c.gen = gen;
  c.t_rh = rowhammer_threshold(gen);
  switch (gen) {
    case DeviceGen::kLpddr4Old:
    case DeviceGen::kLpddr4New:
      c.energy = sys::EnergyParams::lpddr4();
      break;
    default:
      c.energy = sys::EnergyParams::ddr4();
      break;
  }
  return c;
}

u64 flat_row_id(const Geometry& geo, const RowAddr& a) {
  assert(a.bank < geo.banks);
  assert(a.subarray < geo.subarrays_per_bank);
  assert(a.row < geo.rows_per_subarray);
  return (static_cast<u64>(a.bank) * geo.subarrays_per_bank + a.subarray) * geo.rows_per_subarray +
         a.row;
}

RowAddr unflatten_row_id(const Geometry& geo, u64 id) {
  assert(id < geo.total_rows());
  RowAddr a;
  a.row = static_cast<u32>(id % geo.rows_per_subarray);
  id /= geo.rows_per_subarray;
  a.subarray = static_cast<u32>(id % geo.subarrays_per_bank);
  a.bank = static_cast<u32>(id / geo.subarrays_per_bank);
  return a;
}

}  // namespace dnnd::dram
