#include "system/protected_system.hpp"

#include <algorithm>

#include "attack/probe_engine.hpp"

namespace dnnd::system {

using dram::RowAddr;

ProtectedSystem::ProtectedSystem(quant::QuantizedModel& qm, ProtectedSystemConfig cfg)
    : qm_(qm), cfg_(cfg) {
  cfg_.mapping.reserved_rows_per_subarray =
      std::max<u32>(cfg_.mapping.reserved_rows_per_subarray, 1);
  device_ = std::make_unique<dram::DramDevice>(cfg_.dram);
  remap_ = std::make_unique<dram::RowRemapper>(cfg_.dram.geo);
  hammer_ = std::make_unique<rowhammer::HammerModel>(*device_, cfg_.hammer);
  mapping_ = std::make_unique<mapping::WeightMapping>(qm_, cfg_.dram, cfg_.mapping);
  mapping_->upload(qm_, *device_, *remap_);
  deephammer_ =
      std::make_unique<attack::DeepHammerAttack>(*device_, *hammer_, *mapping_, *remap_,
                                                 cfg_.deephammer);
}

void ProtectedSystem::install_hook() {
  if (mitigation_) {
    defense::Mitigation* m = mitigation_.get();
    deephammer_->driver().set_post_act_hook([m] { m->tick(); });
  } else {
    deephammer_->driver().set_post_act_hook({});
  }
}

core::DnnDefender& ProtectedSystem::install_dnn_defender(const core::ProfileResult& profile,
                                                         usize max_bits,
                                                         core::DnnDefenderConfig cfg) {
  auto dd = std::make_unique<core::DnnDefender>(*device_, *remap_, cfg);
  std::vector<RowAddr> targets = core::PriorityProfiler::target_rows(profile, *mapping_,
                                                                     max_bits);
  // Non-target victims: every other weight row, in layout order.
  std::vector<RowAddr> non_targets;
  for (const RowAddr& row : mapping_->weight_rows()) {
    if (std::find(targets.begin(), targets.end(), row) == targets.end()) {
      non_targets.push_back(row);
    }
  }
  dd->set_protected_rows(std::move(targets), std::move(non_targets));
  defender_ = dd.get();
  mitigation_ = std::move(dd);
  install_hook();
  return *defender_;
}

void ProtectedSystem::install_mitigation(std::unique_ptr<defense::Mitigation> mitigation) {
  defender_ = nullptr;
  mitigation_ = std::move(mitigation);
  install_hook();
}

void ProtectedSystem::clear_mitigation() {
  defender_ = nullptr;
  mitigation_.reset();
  install_hook();
}

attack::FlipAttempt ProtectedSystem::attack_bit(const quant::BitLocation& loc) {
  attack::FlipAttempt attempt = deephammer_->attempt_flip(loc);
  sync_model_from_dram();
  return attempt;
}

void ProtectedSystem::sync_model_from_dram() {
  mapping_->download(qm_, *device_, *remap_);
}

void ProtectedSystem::upload_model_to_dram() {
  mapping_->upload(qm_, *device_, *remap_);
}

bool ProtectedSystem::advance_time_to(Picoseconds target) {
  if (target > device_->now()) device_->advance(target - device_->now());
  if (!mitigation_) return false;
  mitigation_->tick();
  return true;
}

quant::BitSkipSet ProtectedSystem::secured_bits() const {
  quant::BitSkipSet set;
  if (defender_ == nullptr) return set;
  for (const RowAddr& row : defender_->targets()) {
    const usize count = mapping_->weights_in_row(row);
    for (usize col = 0; col < count; ++col) {
      const auto w = mapping_->weight_at(row, col);
      if (!w.has_value()) continue;
      for (u32 bit = 0; bit < 8; ++bit) {
        set.insert(quant::BitLocation{w->layer, w->index, bit});
      }
    }
  }
  return set;
}

SystemAttackResult ProtectedSystem::run_white_box_attack(
    const nn::Tensor& attack_x, const std::vector<u32>& attack_y, const nn::Tensor& eval_x,
    const std::vector<u32>& eval_y, usize max_attempts, double stop_accuracy,
    attack::BfaConfig bfa_cfg) {
  SystemAttackResult result;
  result.initial_accuracy = qm_.model().evaluate_batch(eval_x, eval_y).accuracy;
  result.final_accuracy = result.initial_accuracy;

  // The attacker's offline search is the shared probe engine with the
  // untargeted objective -- the white-box twist is purely in the loop below:
  // proposals are carried through the DRAM substrate, and blocked attempts
  // teach the attacker a skip set.
  attack::UntargetedCeObjective objective;
  attack::ProbeEngine engine(qm_, attack_x, attack_y, objective,
                             {bfa_cfg.candidates_per_layer, bfa_cfg.layers_evaluated});
  quant::BitSkipSet learned_blocked;
  while (result.attempts < max_attempts) {
    // Offline proposal on the attacker's copy (== current synced state).
    auto rec = engine.step(learned_blocked);
    if (!rec.has_value()) break;
    qm_.flip(rec->loc);  // undo the search's commit; DRAM is authoritative
    const attack::FlipAttempt attempt = attack_bit(rec->loc);
    result.attempts += 1;
    if (attempt.success) {
      result.landed += 1;
    } else {
      result.blocked += 1;
      learned_blocked.insert(rec->loc);
    }
    // The DRAM sync above rewrote only the codes that actually changed
    // (set_q no-ops on identical values), so a blocked attempt leaves the
    // forward cache fully clean and this measurement costs almost nothing;
    // the incremental helper falls back to a full pass when the cache sits
    // on the attack batch instead.
    result.final_accuracy = qm_.model().evaluate_batch_incremental(eval_x, eval_y).accuracy;
    if (result.final_accuracy <= stop_accuracy) break;
  }
  return result;
}

}  // namespace dnnd::system
