#include "attack/tbfa.hpp"

#include <algorithm>
#include <cstdio>
#include <stdexcept>
#include <string>

#include "attack/bfa.hpp"  // probe_loss_key

namespace dnnd::attack {

double TbfaAttack::stealth_weight() const {
  return cfg_.variant == TbfaVariant::kStealthy ? cfg_.stealth_weight : 0.0;
}

TbfaAttack::TbfaAttack(quant::QuantizedModel& qm, nn::Tensor attack_x,
                       std::vector<u32> attack_y, TbfaConfig cfg)
    : qm_(qm), attack_x_(std::move(attack_x)), attack_y_(std::move(attack_y)), cfg_(cfg) {
  // Freeze int8 activation scales before the first measurement (no-op in the
  // default float regime), same contract as ProgressiveBitSearch.
  qm_.ensure_int8_calibrated(attack_x_);
  source_ = cfg_.variant == TbfaVariant::kNTo1 ? nn::kAllSources : cfg_.source;

  // Clean measurement; its forward also validates the class selectors against
  // the model's output dimension and warms the cache the first step() reuses.
  const nn::Tensor& logits =
      qm_.model().forward_cached(attack_x_, /*train=*/false);
  const usize num_classes = logits.dim(1);
  if (cfg_.target >= num_classes) {
    throw std::invalid_argument("tbfa: target class " + std::to_string(cfg_.target) +
                                " out of range (model has " +
                                std::to_string(num_classes) + " classes)");
  }
  if (cfg_.variant != TbfaVariant::kNTo1) {
    if (cfg_.source >= num_classes) {
      throw std::invalid_argument("tbfa: source class " + std::to_string(cfg_.source) +
                                  " out of range (model has " +
                                  std::to_string(num_classes) + " classes)");
    }
    if (cfg_.source == cfg_.target) {
      throw std::invalid_argument("tbfa: source and target class must differ (both " +
                                  std::to_string(cfg_.source) + ")");
    }
  }
  nn::evaluate_logits_per_class(logits, attack_y_, source_, cfg_.target, scratch_);
  clean_asr_ = scratch_.attack_success_rate();
  clean_other_acc_ = scratch_.other_accuracy();
}

std::optional<TbfaFlip> TbfaAttack::step(const quant::BitSkipSet& skip) {
  nn::Model& model = qm_.model();

  // (1) gradients of the NEGATED targeted objective. top_k_flips keeps only
  // candidates whose first-order effect RAISES the accumulated objective, so
  // accumulating d(-L) selects exactly the flips estimated to LOWER the
  // targeted loss -- the attacker here is a minimiser, not a maximiser.
  model.zero_grad();
  const nn::Tensor& logits = model.forward_incremental_logits(attack_x_);
  const double base_loss = nn::targeted_cross_entropy(logits, attack_y_, source_,
                                                      cfg_.target, stealth_weight(),
                                                      &dlogits_);
  for (usize i = 0; i < dlogits_.size(); ++i) dlogits_[i] = -dlogits_[i];
  model.backward(dlogits_);

  quant::BitSkipSet exclude = skip;
  for (const auto& loc : flipped_.to_vector()) exclude.insert(loc);

  // (2) intra-layer search: per-layer top-k candidates by first-order gain.
  struct LayerBest {
    usize layer;
    std::vector<quant::FlipCandidate> cands;
  };
  std::vector<LayerBest> per_layer;
  for (usize l = 0; l < qm_.num_layers(); ++l) {
    auto cands = quant::top_k_flips(qm_.layer(l), l, cfg_.candidates_per_layer, exclude);
    if (!cands.empty()) per_layer.push_back({l, std::move(cands)});
  }
  if (per_layer.empty()) return std::nullopt;
  if (cfg_.layers_evaluated > 0 && per_layer.size() > cfg_.layers_evaluated) {
    std::partial_sort(per_layer.begin(),
                      per_layer.begin() + static_cast<isize>(cfg_.layers_evaluated),
                      per_layer.end(), [](const LayerBest& a, const LayerBest& b) {
                        return a.cands.front().estimated_gain >
                               b.cands.front().estimated_gain;
                      });
    per_layer.resize(cfg_.layers_evaluated);
  }

  // (3) inter-layer search: price each shortlisted candidate exactly by
  // flip / incremental forward / unflip; keep the admissible one with the
  // lowest objective. probe_loss_key maps NaN to +inf, so a saturating flip
  // always LOSES for a minimiser (the dual of its role in the untargeted
  // search, where +inf wins).
  std::optional<quant::BitLocation> best_loc;
  double best_key = probe_loss_key(base_loss);
  TbfaFlip best;
  for (const LayerBest& lb : per_layer) {
    for (const quant::FlipCandidate& cand : lb.cands) {
      qm_.flip(cand.loc);
      const nn::Tensor& plogits =
          model.forward_from(qm_.layer(cand.loc.layer).net_layer, /*train=*/false);
      nn::evaluate_logits_per_class(plogits, attack_y_, source_, cfg_.target, scratch_);
      const double ploss = nn::targeted_cross_entropy(plogits, attack_y_, source_,
                                                      cfg_.target, stealth_weight());
      qm_.flip(cand.loc);  // revert
      if (cfg_.variant == TbfaVariant::kStealthy &&
          scratch_.other_accuracy() < clean_other_acc_ - cfg_.stealth_tolerance) {
        continue;  // inadmissible: the collateral damage would expose the attack
      }
      const double key = probe_loss_key(ploss);
      if (key < best_key) {
        best_key = key;
        best_loc = cand.loc;
        // The probe measurements ARE the post-commit measurements (committing
        // restores the exact probed state), so record them now.
        best.asr_after = scratch_.attack_success_rate();
        best.other_acc_after = scratch_.other_accuracy();
      }
    }
  }
  // No admissible candidate lowers the objective: stop. Deliberately no
  // first-order-estimate fallback -- an untargeted attack can thrash its way
  // out of a plateau, a targeted (and especially a stealthy) one would only
  // burn budget on flips that hurt its own objective.
  if (!best_loc.has_value()) return std::nullopt;

  // (4) commit
  qm_.flip(*best_loc);
  flipped_.insert(*best_loc);
  best.loc = *best_loc;
  best.loss_before = base_loss;
  best.loss_after = best_key;
  if (cfg_.verbose) {
    std::printf("[tbfa] flip layer=%zu idx=%zu bit=%u loss %.4f -> %.4f asr=%.3f other=%.3f\n",
                best.loc.layer, best.loc.index, best.loc.bit, best.loss_before,
                best.loss_after, best.asr_after, best.other_acc_after);
  }
  return best;
}

TbfaResult TbfaAttack::run(const quant::BitSkipSet& skip) {
  TbfaResult result;
  result.initial_asr = clean_asr_;
  result.initial_other_acc = clean_other_acc_;
  result.final_asr = clean_asr_;
  result.final_other_acc = clean_other_acc_;
  if (clean_asr_ >= cfg_.stop_asr) {
    result.reached_stop = true;  // nothing to do: the model already complies
    return result;
  }
  for (usize i = 0; i < cfg_.max_flips; ++i) {
    auto rec = step(skip);
    if (!rec.has_value()) break;
    result.final_asr = rec->asr_after;
    result.final_other_acc = rec->other_acc_after;
    result.flips.push_back(*rec);
    if (rec->asr_after >= cfg_.stop_asr) {
      result.reached_stop = true;
      break;
    }
  }
  return result;
}

}  // namespace dnnd::attack
