#include "harness/registry.hpp"

#include <algorithm>
#include <cstdlib>
#include <sstream>
#include <stdexcept>

#include "models/model_zoo.hpp"
#include "sys/env.hpp"

namespace dnnd::harness {

namespace {

/// Bench-compatible epoch shrink (bench_util::train_model small mode).
usize scaled_epochs(bool small, usize epochs) {
  return small ? std::max<usize>(2, epochs / 2) : epochs;
}

constexpr const char* kReconstructionGuard = "reconstruction-guard";

}  // namespace

std::string device_gen_slug(dram::DeviceGen gen) {
  switch (gen) {
    case dram::DeviceGen::kDdr3Old: return "ddr3-old";
    case dram::DeviceGen::kDdr3New: return "ddr3-new";
    case dram::DeviceGen::kDdr4Old: return "ddr4-old";
    case dram::DeviceGen::kDdr4New: return "ddr4-new";
    case dram::DeviceGen::kLpddr4Old: return "lpddr4-old";
    case dram::DeviceGen::kLpddr4New: return "lpddr4-new";
  }
  return "unknown";
}

dram::DeviceGen device_gen_from_slug(const std::string& slug) {
  for (const auto gen : kAllDeviceGens) {
    if (device_gen_slug(gen) == slug) return gen;
  }
  throw std::invalid_argument("unknown device generation: " + slug);
}

bool is_known_prep_axis(const std::string& prep) {
  if (prep == kReconstructionGuard) return true;
  try {
    software_prep_from_string(prep);
    return true;
  } catch (const std::invalid_argument&) {
    return false;
  }
}

std::vector<Scenario> table3_scenarios(bool small) {
  const usize attack_batch = small ? 24 : 32;
  const usize eval_batch = small ? 120 : 300;
  const usize bfa_budget = small ? 60 : 120;
  const usize binary_budget = small ? 80 : 200;
  const usize hw_attempts = small ? 12 : 30;
  // The legacy serial bench ran every hardware row on ProtectedSystem's
  // default seed; pin it so migrated results match bit-for-bit.
  const u64 legacy_hw_seed = 0x5E55;

  const TrainSpec base{.arch = "resnet20", .width_mult = 1,
                       .epochs = scaled_epochs(small, 6), .seed = 1};
  const TrainSpec wide{.arch = "resnet20", .width_mult = 2,
                       .epochs = scaled_epochs(small, 5), .seed = 2};

  auto common = [&](Scenario sc) {
    sc.dataset = DatasetKind::kCifar10Like;
    sc.attack_batch = attack_batch;
    sc.eval_batch = eval_batch;
    return sc;
  };

  std::vector<Scenario> grid;

  {
    Scenario sc;
    sc.id = "table3/baseline";
    sc.label = "Baseline ResNet-20 (8-bit)";
    sc.train = base;
    sc.attack = AttackKind::kBfa;
    sc.max_flips = bfa_budget;
    grid.push_back(common(sc));
  }
  {
    Scenario sc;
    sc.id = "table3/weight-reconstruction";
    sc.label = "Weight Reconstruction";
    sc.train = base;
    sc.attack = AttackKind::kBfa;
    sc.reconstruction_guard = true;
    sc.defense = "weight-reconstruction";
    sc.max_flips = bfa_budget;
    grid.push_back(common(sc));
  }
  {
    Scenario sc;
    sc.id = "table3/binary";
    sc.label = "Binary weight";
    sc.train = base;
    sc.attack = AttackKind::kBinaryBfa;
    sc.prep = SoftwarePrep::kBinaryFinetune;
    sc.prep_epochs = small ? 2 : 4;
    sc.prep_lr = 0.02;
    sc.defense = "binary-weight";
    sc.max_flips = binary_budget;
    grid.push_back(common(sc));
  }
  {
    Scenario sc;
    sc.id = "table3/piecewise";
    sc.label = "Piece-wise Clustering";
    sc.train = base;
    sc.attack = AttackKind::kBfa;
    sc.prep = SoftwarePrep::kPiecewiseClustering;
    sc.prep_epochs = small ? 1 : 2;
    sc.prep_lr = 0.01;
    sc.prep_lambda = 0.15;
    sc.defense = "piecewise-clustering";
    sc.max_flips = bfa_budget;
    grid.push_back(common(sc));
  }
  {
    Scenario sc;
    sc.id = "table3/capacity-x4";
    sc.label = "Model Capacity x4";
    sc.train = wide;
    sc.attack = AttackKind::kBfa;
    sc.defense = "capacity-x4";
    sc.max_flips = bfa_budget;
    grid.push_back(common(sc));
  }
  {
    Scenario sc;
    sc.id = "table3/ra-bnn";
    sc.label = "RA-BNN (binary, wide)";
    sc.train = wide;
    sc.attack = AttackKind::kBinaryBfa;
    sc.prep = SoftwarePrep::kBinaryFinetune;
    sc.prep_epochs = small ? 2 : 4;
    sc.prep_lr = 0.02;
    sc.defense = "ra-bnn";
    sc.max_flips = binary_budget;
    grid.push_back(common(sc));
  }

  for (const char* name : {"rrs", "srs", "shadow"}) {
    Scenario sc;
    sc.id = std::string("table3/") + name;
    sc.label = name;
    std::transform(sc.label.begin(), sc.label.end(), sc.label.begin(),
                   [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
    sc.train = base;
    sc.attack = AttackKind::kDramWhiteBox;
    sc.mitigation = mitigation_factory(name);
    sc.defense = sc.label;
    sc.dram = dram::DramConfig::nn_scaled();
    sc.hw_attempts = hw_attempts;
    sc.seed_override = legacy_hw_seed;
    grid.push_back(common(sc));
  }
  {
    Scenario sc;
    sc.id = "table3/dnn-defender";
    sc.label = "DNN-Defender";
    sc.train = base;
    sc.attack = AttackKind::kDramWhiteBox;
    sc.use_dnn_defender = true;
    sc.profile_bits = 2 * hw_attempts;
    sc.defense = "DNN-Defender";
    sc.dram = dram::DramConfig::nn_scaled();
    sc.hw_attempts = hw_attempts;
    sc.seed_override = legacy_hw_seed;
    grid.push_back(common(sc));
  }

  return grid;
}

std::vector<Scenario> fig1b_scenarios(bool small) {
  const usize attack_batch = small ? 24 : 32;
  const usize eval_batch = small ? 120 : 300;
  const usize bfa_budget = small ? 15 : 30;
  const usize random_budget = small ? 60 : 150;

  const TrainSpec spec{.arch = "resnet34", .width_mult = 1,
                       .epochs = scaled_epochs(small, 6), .seed = 1};

  auto common = [&](Scenario sc) {
    sc.dataset = DatasetKind::kImagenetLike;
    sc.train = spec;
    sc.attack_batch = attack_batch;
    sc.eval_batch = eval_batch;
    return sc;
  };

  std::vector<Scenario> grid;
  {
    Scenario sc;
    sc.id = "fig1b/bfa";
    sc.label = "Targeted BFA";
    sc.attack = AttackKind::kBfa;
    sc.record_trace = true;
    sc.max_flips = bfa_budget;
    grid.push_back(common(sc));
  }
  {
    Scenario sc;
    sc.id = "fig1b/random";
    sc.label = "Random attack";
    sc.attack = AttackKind::kRandom;
    sc.max_flips = random_budget;
    sc.measure_every = 10;
    sc.seed_override = 3;  // the legacy bench's Rng seed
    grid.push_back(common(sc));
  }
  {
    Scenario sc;
    sc.id = "fig1b/dnn-defender";
    sc.label = "DNN-Defender (full coverage)";
    sc.attack = AttackKind::kAdaptive;
    sc.secure_all_weight_rows = true;
    sc.defense = "DNN-Defender";
    sc.dram = dram::DramConfig::nn_scaled();
    sc.max_flips = random_budget;
    sc.measure_every = 10;
    grid.push_back(common(sc));
  }
  return grid;
}

std::vector<Scenario> tiny_test_grid() {
  const TrainSpec mlp{.arch = "mlp", .width_mult = 1, .epochs = 5, .seed = 7};

  auto common = [&](Scenario sc) {
    sc.dataset = DatasetKind::kTinyEasy;
    sc.train = mlp;
    sc.attack_batch = 32;
    sc.eval_batch = 60;
    return sc;
  };

  std::vector<Scenario> grid;
  {
    Scenario sc;
    sc.id = "tiny/bfa";
    sc.attack = AttackKind::kBfa;
    sc.record_trace = true;
    sc.max_flips = 8;
    grid.push_back(common(sc));
  }
  {
    Scenario sc;
    sc.id = "tiny/weight-reconstruction";
    sc.attack = AttackKind::kBfa;
    sc.reconstruction_guard = true;
    sc.defense = "weight-reconstruction";
    sc.max_flips = 8;
    grid.push_back(common(sc));
  }
  {
    Scenario sc;
    sc.id = "tiny/binary";
    sc.attack = AttackKind::kBinaryBfa;
    sc.prep = SoftwarePrep::kBinaryFinetune;
    sc.prep_epochs = 1;
    sc.defense = "binary-weight";
    sc.max_flips = 12;
    grid.push_back(common(sc));
  }
  {
    Scenario sc;
    sc.id = "tiny/random";
    sc.attack = AttackKind::kRandom;
    sc.max_flips = 40;
    sc.measure_every = 10;
    grid.push_back(common(sc));
  }
  {
    Scenario sc;
    sc.id = "tiny/adaptive";
    sc.attack = AttackKind::kAdaptive;
    sc.secure_all_weight_rows = true;
    sc.defense = "DNN-Defender";
    sc.max_flips = 16;
    sc.measure_every = 8;
    grid.push_back(common(sc));
  }
  {
    Scenario sc;
    sc.id = "tiny/hw-rrs";
    sc.attack = AttackKind::kDramWhiteBox;
    sc.mitigation = mitigation_factory("rrs");
    sc.defense = "RRS";
    sc.hw_attempts = 6;
    grid.push_back(common(sc));
  }
  {
    Scenario sc;
    sc.id = "tiny/hw-dnn-defender";
    sc.attack = AttackKind::kDramWhiteBox;
    sc.use_dnn_defender = true;
    sc.profile_bits = 12;
    sc.defense = "DNN-Defender";
    sc.hw_attempts = 6;
    grid.push_back(common(sc));
  }
  {
    Scenario sc;
    sc.id = "tiny/tbfa-n-to-1";
    sc.attack = AttackKind::kTbfaNTo1;
    sc.tbfa_target = 1;
    sc.max_flips = 10;
    grid.push_back(common(sc));
  }
  {
    Scenario sc;
    sc.id = "tiny/tbfa-1-to-1";
    sc.attack = AttackKind::kTbfa1To1;
    sc.tbfa_source = 2;
    sc.tbfa_target = 0;
    sc.max_flips = 10;
    grid.push_back(common(sc));
  }
  {
    Scenario sc;
    sc.id = "tiny/tbfa-stealthy";
    sc.attack = AttackKind::kTbfaStealthy;
    sc.tbfa_source = 3;
    sc.tbfa_target = 1;
    sc.tbfa_stealth_tol = 0.15;
    sc.max_flips = 10;
    grid.push_back(common(sc));
  }
  {
    // Budget small enough that the tiny MLP survives it: pins the
    // "N (budget)" spelling (budget exhausted before stop accuracy).
    Scenario sc;
    sc.id = "tiny/vwa-limited";
    sc.attack = AttackKind::kVwaLimited;
    sc.vwa_budget = 4;
    grid.push_back(common(sc));
  }
  {
    // Generous budget with a reachable stop level: pins the bare-count
    // spelling (early stop with budget left over).
    Scenario sc;
    sc.id = "tiny/vwa-limited-stop";
    sc.attack = AttackKind::kVwaLimited;
    sc.vwa_budget = 20;
    sc.stop_accuracy = 0.5;
    grid.push_back(common(sc));
  }
  return grid;
}

bool grid_cell_coherent(AttackKind attack, const std::string& prep,
                        const std::string& defense) {
  // The reconstruction guard is only consulted by the plain-BFA attack path.
  if (prep == kReconstructionGuard && attack != AttackKind::kBfa) return false;
  if (defense == "none") return true;
  if (defense == "dnn-defender") {
    // Profiled deployment runs through the DRAM stack; the full-coverage
    // secured-bit set is what the adaptive attacker plays against.
    return attack == AttackKind::kDramWhiteBox || attack == AttackKind::kAdaptive;
  }
  // Every other defense is an in-DRAM mitigation: it can only intercept an
  // attack that actually hammers the device.
  return attack == AttackKind::kDramWhiteBox;
}

std::vector<Scenario> enumerate_grid(const GridSpec& spec) {
  // Validate every axis value up front: a typo'd name must throw even when
  // pruning (or a run-time per-cell failure) would otherwise hide it.
  for (const auto& model : spec.models) {
    if (model != "mlp" && !models::is_known_arch(model)) {
      throw std::invalid_argument("unknown model axis value: " + model);
    }
  }
  for (const auto& prep : spec.preps) {
    if (!is_known_prep_axis(prep)) {
      throw std::invalid_argument("unknown prep axis value: " + prep);
    }
  }
  for (const auto& defense : spec.defenses) {
    if (defense != "none" && defense != "dnn-defender") {
      mitigation_factory(defense);  // throws std::invalid_argument on unknown
    }
  }
  std::vector<Scenario> grid;
  for (const auto& model : spec.models) {
    for (const auto gen : spec.generations) {
      for (const auto attack : spec.attacks) {
        for (const auto& prep : spec.preps) {
          for (const auto& defense : spec.defenses) {
            if (spec.prune_incoherent && !grid_cell_coherent(attack, prep, defense)) {
              continue;
            }
            Scenario sc;
            sc.id = "grid/" + model + "/" + device_gen_slug(gen) + "/" +
                    to_string(attack) + "/" + prep + "/" + defense;
            sc.label = model + " | " + to_string(attack) + " vs " + prep + "+" + defense +
                       " @ " + dram::to_string(gen);
            sc.dataset = spec.dataset;
            sc.train = TrainSpec{.arch = model, .width_mult = 1,
                                 .epochs = scaled_epochs(spec.small, 6), .seed = 1};
            sc.attack = attack;

            if (prep == kReconstructionGuard) {
              sc.reconstruction_guard = true;
            } else {
              sc.prep = software_prep_from_string(prep);
              sc.prep_epochs = spec.small ? 1 : 2;
            }

            if (defense == "dnn-defender") {
              if (attack == AttackKind::kAdaptive) {
                sc.secure_all_weight_rows = true;
              } else {
                sc.use_dnn_defender = true;
                sc.profile_bits = spec.small ? 24 : 60;
              }
            } else if (defense != "none") {
              sc.mitigation = mitigation_factory(defense);
            }
            // Display name: the prep and defense halves that are active.
            if (prep == "none") {
              sc.defense = defense;
            } else if (defense == "none") {
              sc.defense = prep;
            } else {
              sc.defense = prep + "+" + defense;
            }

            sc.dram = dram::DramConfig::nn_scaled();
            sc.dram.gen = gen;
            sc.dram.t_rh = dram::rowhammer_threshold(gen);
            sc.attack_batch = spec.small ? 24 : 32;
            sc.eval_batch = spec.small ? 120 : 300;
            sc.max_flips = attack == AttackKind::kRandom ? (spec.small ? 40 : 150)
                                                         : (spec.small ? 12 : 40);
            sc.vwa_budget = spec.vwa_budget;
            sc.measure_every = 10;
            sc.hw_attempts = spec.small ? 12 : 30;
            grid.push_back(std::move(sc));
          }
        }
      }
    }
  }
  return grid;
}

namespace {

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Overrides `axis` with the env var's comma-separated list when set.
void override_axis(const char* env, std::vector<std::string>& axis) {
  if (const char* v = std::getenv(env); v != nullptr && v[0] != '\0') {
    axis = split_csv(v);
  }
}

}  // namespace

GridSpec grid_spec_from_env(bool small) {
  GridSpec spec;
  spec.small = small;
  spec.generations = {dram::DeviceGen::kLpddr4New, dram::DeviceGen::kDdr4New};
  spec.attacks.assign(std::begin(kAllAttackKinds), std::end(kAllAttackKinds));
  spec.preps = {"none", "binary-finetune", "piecewise-clustering", "reconstruction-guard"};

  override_axis("DNND_GRID_MODELS", spec.models);
  override_axis("DNND_GRID_PREPS", spec.preps);
  override_axis("DNND_GRID_DEFENSES", spec.defenses);
  if (const char* v = std::getenv("DNND_GRID_GENS"); v != nullptr && v[0] != '\0') {
    spec.generations.clear();
    for (const auto& slug : split_csv(v)) {
      spec.generations.push_back(device_gen_from_slug(slug));
    }
  }
  if (const char* v = std::getenv("DNND_GRID_ATTACKS"); v != nullptr && v[0] != '\0') {
    spec.attacks.clear();
    for (const auto& slug : split_csv(v)) {
      try {
        spec.attacks.push_back(attack_kind_from_string(slug));
      } catch (const std::invalid_argument& e) {
        // Name the env var: the bare slug error is useless when the typo lives
        // in a CI matrix definition three layers up.
        throw std::invalid_argument(std::string("DNND_GRID_ATTACKS: ") + e.what());
      }
    }
  }
  if (const char* v = std::getenv("DNND_GRID_FULL_PRODUCT"); v != nullptr && v[0] == '1') {
    spec.prune_incoherent = false;
  }
  spec.vwa_budget = sys::env_usize("DNND_VWA_BUDGET", spec.vwa_budget);
  return spec;
}

std::vector<Scenario> grid_from_env(bool tiny, bool small) {
  if (tiny) return tiny_test_grid();
  return enumerate_grid(grid_spec_from_env(small));
}

}  // namespace dnnd::harness
