#include "serving/report.hpp"

#include <set>
#include <stdexcept>

#include "sys/json.hpp"

namespace dnnd::serving {

namespace {

void write_config(sys::JsonWriter& w, const ServeConfig& cfg) {
  w.begin_object();
  w.key("rate_rps").value(cfg.rate_rps);
  w.key("duration_ms").value(cfg.duration_ms);
  w.key("batch_cap").value(cfg.batch_cap);
  w.key("max_wait_us").value(cfg.max_wait_us);
  w.key("queue_depth").value(cfg.queue_depth);
  w.key("seed").value(cfg.seed);
  w.key("service_ns_base").value(cfg.service_ns_base);
  w.key("service_ns_per_req").value(cfg.service_ns_per_req);
  w.key("tick_every_us").value(cfg.tick_every_us);
  w.key("attack_every").value(cfg.attack_every);
  w.key("reservoir").value(cfg.reservoir);
  w.end_object();
}

void write_regime(sys::JsonWriter& w, const RegimeStats& r) {
  w.begin_object();
  w.key("name").value(r.name);
  w.key("requests").value(r.requests);
  w.key("admitted").value(r.admitted);
  w.key("dropped").value(r.dropped);
  w.key("batches").value(r.batches);
  w.key("batch_histogram").begin_array();
  for (const usize c : r.batch_histogram) w.value(c);
  w.end_array();
  w.key("queue_peak").value(r.queue_peak);
  w.key("ticks").value(r.ticks);
  w.key("attack_attempts").value(r.attack_attempts);
  w.key("attack_landed").value(r.attack_landed);
  w.key("attack_blocked").value(r.attack_blocked);
  w.key("accuracy_before").value(r.accuracy_before);
  w.key("accuracy_after").value(r.accuracy_after);
  w.key("digest").value(r.digest);
  w.key("offered_rps").value(r.offered_rps);
  w.key("achieved_rps").value(r.achieved_rps);
  w.key("wall_seconds").value(r.wall_seconds);
  w.key("p50_ns").value(r.p50_ns);
  w.key("p99_ns").value(r.p99_ns);
  w.key("p999_ns").value(r.p999_ns);
  w.key("latencies_seen").value(r.latencies_seen);
  w.end_object();
}

/// at() with a loader-specific error naming the field and its location
/// (same contract as campaign_from_json's loader).
const sys::JsonValue& require_field(const sys::JsonValue& obj, std::string_view key,
                                    const std::string& where) {
  if (!obj.is_object() || !obj.contains(key)) {
    throw sys::JsonParseError("serving_report_from_json: missing required field \"" +
                              std::string(key) + "\" in " + where);
  }
  return obj.at(key);
}

ServeConfig config_from_json(const sys::JsonValue& c, const std::string& where) {
  ServeConfig cfg;
  cfg.rate_rps = static_cast<usize>(require_field(c, "rate_rps", where).as_u64());
  cfg.duration_ms = static_cast<usize>(require_field(c, "duration_ms", where).as_u64());
  cfg.batch_cap = static_cast<usize>(require_field(c, "batch_cap", where).as_u64());
  cfg.max_wait_us = static_cast<usize>(require_field(c, "max_wait_us", where).as_u64());
  cfg.queue_depth = static_cast<usize>(require_field(c, "queue_depth", where).as_u64());
  cfg.seed = require_field(c, "seed", where).as_u64();
  cfg.service_ns_base =
      static_cast<usize>(require_field(c, "service_ns_base", where).as_u64());
  cfg.service_ns_per_req =
      static_cast<usize>(require_field(c, "service_ns_per_req", where).as_u64());
  cfg.tick_every_us = static_cast<usize>(require_field(c, "tick_every_us", where).as_u64());
  cfg.attack_every = static_cast<usize>(require_field(c, "attack_every", where).as_u64());
  cfg.reservoir = static_cast<usize>(require_field(c, "reservoir", where).as_u64());
  return cfg;
}

RegimeStats regime_from_json(const sys::JsonValue& s, const std::string& where) {
  RegimeStats r;
  r.name = require_field(s, "name", where).as_string();
  r.requests = static_cast<usize>(require_field(s, "requests", where).as_u64());
  r.admitted = static_cast<usize>(require_field(s, "admitted", where).as_u64());
  r.dropped = static_cast<usize>(require_field(s, "dropped", where).as_u64());
  r.batches = static_cast<usize>(require_field(s, "batches", where).as_u64());
  for (const sys::JsonValue& v : require_field(s, "batch_histogram", where).items()) {
    r.batch_histogram.push_back(static_cast<usize>(v.as_u64()));
  }
  r.queue_peak = static_cast<usize>(require_field(s, "queue_peak", where).as_u64());
  r.ticks = static_cast<usize>(require_field(s, "ticks", where).as_u64());
  r.attack_attempts =
      static_cast<usize>(require_field(s, "attack_attempts", where).as_u64());
  r.attack_landed = static_cast<usize>(require_field(s, "attack_landed", where).as_u64());
  r.attack_blocked =
      static_cast<usize>(require_field(s, "attack_blocked", where).as_u64());
  r.accuracy_before = require_field(s, "accuracy_before", where).as_double();
  r.accuracy_after = require_field(s, "accuracy_after", where).as_double();
  r.digest = require_field(s, "digest", where).as_u64();
  r.offered_rps = require_field(s, "offered_rps", where).as_double();
  r.achieved_rps = require_field(s, "achieved_rps", where).as_double();
  r.wall_seconds = require_field(s, "wall_seconds", where).as_double();
  r.p50_ns = require_field(s, "p50_ns", where).as_u64();
  r.p99_ns = require_field(s, "p99_ns", where).as_u64();
  r.p999_ns = require_field(s, "p999_ns", where).as_u64();
  r.latencies_seen = require_field(s, "latencies_seen", where).as_u64();
  return r;
}

}  // namespace

std::string ServingReport::to_json() const {
  sys::JsonWriter w;
  w.begin_object();
  w.key("bench").value("bench_serving");
  w.key("model").value(model);
  w.key("threads").value(threads);
  w.key("simd").value(simd);
  w.key("config");
  write_config(w, config);
  w.key("regimes").begin_array();
  for (const RegimeStats& r : regimes) write_regime(w, r);
  w.end_array();
  w.end_object();
  return w.str();
}

ServingReport serving_report_from_json(std::string_view json) {
  const sys::JsonValue doc = sys::parse_json(json);
  const std::string where = "document";
  if (const std::string bench = require_field(doc, "bench", where).as_string();
      bench != "bench_serving") {
    throw sys::JsonParseError("serving_report_from_json: not a bench_serving document "
                              "(bench=\"" + bench + "\")");
  }
  ServingReport out;
  out.model = require_field(doc, "model", where).as_string();
  out.threads = static_cast<usize>(require_field(doc, "threads", where).as_u64());
  out.simd = require_field(doc, "simd", where).as_string();
  out.config = config_from_json(require_field(doc, "config", where), "config");
  for (const sys::JsonValue& s : require_field(doc, "regimes", where).items()) {
    const std::string rwhere =
        "regime " + (s.is_object() && s.contains("name") ? s.at("name").as_string()
                                                         : std::to_string(out.regimes.size()));
    out.regimes.push_back(regime_from_json(s, rwhere));
  }
  return out;
}

void validate_serving_report(const ServingReport& report) {
  auto fail = [](const std::string& what) {
    throw std::runtime_error("serving report invalid: " + what);
  };
  if (report.regimes.empty()) fail("no regimes");
  std::set<std::string> names;
  for (const RegimeStats& r : report.regimes) {
    const std::string tag = "regime \"" + r.name + "\": ";
    if (!names.insert(r.name).second) fail("duplicate regime name \"" + r.name + "\"");
    if (r.admitted + r.dropped != r.requests) {
      fail(tag + "admitted + dropped != requests");
    }
    usize hist_requests = 0, hist_batches = 0;
    for (usize size = 0; size < r.batch_histogram.size(); ++size) {
      hist_requests += size * r.batch_histogram[size];
      hist_batches += r.batch_histogram[size];
    }
    if (hist_batches != r.batches) fail(tag + "histogram batch count != batches");
    if (hist_requests != r.admitted) fail(tag + "histogram request mass != admitted");
    if (r.p50_ns > r.p99_ns || r.p99_ns > r.p999_ns) {
      fail(tag + "percentiles not monotone (p50 <= p99 <= p999)");
    }
    if (r.admitted > 0) {
      if (r.achieved_rps <= 0.0) fail(tag + "achieved_rps not positive");
      if (r.latencies_seen != r.admitted) fail(tag + "latencies_seen != admitted");
    }
    for (const double acc : {r.accuracy_before, r.accuracy_after}) {
      if (!(acc >= 0.0 && acc <= 1.0)) fail(tag + "accuracy outside [0, 1]");
    }
  }
}

std::string deterministic_projection(const ServingReport& report) {
  // One line per regime, fixed field order, no wall-clock fields. Accuracy
  // uses the writer's round-trip formatting so the projection is stable
  // across a JSON round trip.
  std::string out;
  for (const RegimeStats& r : report.regimes) {
    out += r.name;
    out += " digest=" + std::to_string(r.digest);
    out += " requests=" + std::to_string(r.requests);
    out += " admitted=" + std::to_string(r.admitted);
    out += " dropped=" + std::to_string(r.dropped);
    out += " batches=" + std::to_string(r.batches);
    out += " queue_peak=" + std::to_string(r.queue_peak);
    out += " ticks=" + std::to_string(r.ticks);
    out += " attacks=" + std::to_string(r.attack_attempts) + "/" +
           std::to_string(r.attack_landed) + "/" + std::to_string(r.attack_blocked);
    out += " acc=" + sys::json_number(r.accuracy_before) + "->" +
           sys::json_number(r.accuracy_after);
    out += "\n";
  }
  return out;
}

}  // namespace dnnd::serving
