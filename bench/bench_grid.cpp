// bench_grid: sweeps the full evaluation cross product -- attack kind x
// software prep x defense x model x device generation -- through the parallel
// scenario harness, prints the campaign table, and persists the campaign
// JSON through the configured CampaignSink (DNND_JSON / DNND_JSON_OUT).
//
// Axes default to the paper-shaped grid and are overridable with
// comma-separated env lists (defaults in parentheses, wider accepted
// vocabulary after "of"):
//   DNND_GRID_MODELS   (vgg11,resnet18,resnet20,resnet34)
//   DNND_GRID_GENS     (lpddr4-new,ddr4-new) of any device_gen_slug value
//   DNND_GRID_ATTACKS  (bfa,binary-bfa,random,adaptive,dram-white-box)
//   DNND_GRID_PREPS    (none,binary-finetune,piecewise-clustering,
//                       reconstruction-guard)
//   DNND_GRID_DEFENSES (none,rrs,srs,shadow,dnn-defender) of none, para,
//                       rrs, srs, shadow, graphene, hydra, dnn-defender
//   DNND_GRID_FULL_PRODUCT=1 keeps cells whose defense cannot engage the
//                            attack (normally pruned).
//   DNND_NAIVE_GEMM=1        forces Dense/Conv2d onto the retained naive
//                            kernels (A/B the GEMM engine's wall-clock win;
//                            results are bitwise identical either way).
//
// `bench_grid --tiny` (or DNND_GRID=tiny) runs the seconds-fast
// tiny_test_grid() instead -- the grid behind the committed regression
// baseline that CI gates with dnnd_diff.
#include <cstring>
#include <sstream>

#include "bench_util.hpp"
#include "harness/campaign.hpp"
#include "harness/registry.hpp"
#include "harness/sink.hpp"
#include "nn/gemm.hpp"

using namespace dnnd;

namespace {

std::vector<std::string> split_csv(const std::string& csv) {
  std::vector<std::string> out;
  std::istringstream ss(csv);
  std::string item;
  while (std::getline(ss, item, ',')) {
    if (!item.empty()) out.push_back(item);
  }
  return out;
}

/// Overrides `axis` with the env var's comma-separated list when set.
void override_axis(const char* env, std::vector<std::string>& axis) {
  if (const char* v = std::getenv(env); v != nullptr && v[0] != '\0') {
    axis = split_csv(v);
  }
}

harness::GridSpec grid_spec_from_env(bool small) {
  harness::GridSpec spec;
  spec.small = small;
  spec.generations = {dram::DeviceGen::kLpddr4New, dram::DeviceGen::kDdr4New};
  spec.attacks.assign(std::begin(harness::kAllAttackKinds),
                      std::end(harness::kAllAttackKinds));
  spec.preps = {"none", "binary-finetune", "piecewise-clustering", "reconstruction-guard"};

  override_axis("DNND_GRID_MODELS", spec.models);
  override_axis("DNND_GRID_PREPS", spec.preps);
  override_axis("DNND_GRID_DEFENSES", spec.defenses);
  if (const char* v = std::getenv("DNND_GRID_GENS"); v != nullptr && v[0] != '\0') {
    spec.generations.clear();
    for (const auto& slug : split_csv(v)) {
      spec.generations.push_back(harness::device_gen_from_slug(slug));
    }
  }
  if (const char* v = std::getenv("DNND_GRID_ATTACKS"); v != nullptr && v[0] != '\0') {
    spec.attacks.clear();
    for (const auto& slug : split_csv(v)) {
      spec.attacks.push_back(harness::attack_kind_from_string(slug));
    }
  }
  if (const char* v = std::getenv("DNND_GRID_FULL_PRODUCT"); v != nullptr && v[0] == '1') {
    spec.prune_incoherent = false;
  }
  return spec;
}

}  // namespace

int main(int argc, char** argv) {
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) {
      tiny = true;
    } else {
      std::fprintf(stderr,
                   "%s: unknown argument '%s'\n"
                   "usage: bench_grid [--tiny]\n"
                   "  --tiny  run the seconds-fast tiny_test_grid() (CI baseline)\n"
                   "  axes/env knobs are documented in the header comment and README\n",
                   argv[0], argv[i]);
      return 2;
    }
  }
  if (const char* v = std::getenv("DNND_GRID"); v != nullptr && std::string(v) == "tiny") {
    tiny = true;
  }
  if (const char* v = std::getenv("DNND_NAIVE_GEMM"); v != nullptr && v[0] == '1') {
    nn::gemm::set_force_naive(true);
    std::printf("[grid] DNND_NAIVE_GEMM=1: naive reference kernels\n");
  }

  const bool small = bench::small_scale();
  std::vector<harness::Scenario> grid;
  if (tiny) {
    bench::banner("Grid sweep -- tiny regression grid",
                  "tiny_test_grid(): every attack path in seconds (CI baseline)");
    grid = harness::tiny_test_grid();
  } else {
    bench::banner("Grid sweep -- attack x prep x defense x model x generation",
                  "full cross-product sweep of the paper's evaluation axes");
    try {
      grid = harness::enumerate_grid(grid_spec_from_env(small));
    } catch (const std::invalid_argument& e) {
      std::fprintf(stderr, "bench_grid: bad axis value: %s\n", e.what());
      return 2;
    }
  }
  std::printf("[grid] %zu scenarios\n", grid.size());

  harness::CampaignConfig cfg;
  cfg.threads = harness::env_threads();
  cfg.verbose = true;
  harness::CampaignRunner runner(cfg);
  const auto campaign = runner.run(grid);

  campaign.table().print();
  std::printf("[harness] %zu scenarios on %zu threads in %.1fs\n", campaign.results.size(),
              campaign.threads_used, campaign.total_seconds);

  // A sink failure after an hours-long sweep must not abort: the table above
  // already carries the results. It still fails the run -- CI gates on the
  // persisted JSON existing.
  usize failures = 0;
  std::string destination;
  switch (harness::write_campaign_from_env(campaign, &destination)) {
    case harness::SinkWriteStatus::kNoSink:
      break;
    case harness::SinkWriteStatus::kWritten:
      if (destination != "stdout") {
        std::printf("[sink] campaign JSON -> %s\n", destination.c_str());
      }
      break;
    case harness::SinkWriteStatus::kFailed:
      ++failures;  // already reported on stderr
      break;
  }

  // A failed scenario is a broken sweep, not a defended model -- surface it.
  for (const auto& r : campaign.results) {
    if (!r.ok) {
      std::fprintf(stderr, "[grid] FAILED %s: %s\n", r.id.c_str(), r.error.c_str());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
