// Minimal ASCII table renderer used by the benchmark harness to print
// paper-style tables and figure series.
#pragma once

#include <string>
#include <type_traits>
#include <vector>

namespace dnnd::sys {

/// Column-aligned ASCII table. Rows may be added as pre-formatted strings or
/// as doubles with per-call precision.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; missing cells render empty, extra cells are an error.
  void add_row(std::vector<std::string> cells);

  /// Renders with a header rule and column padding.
  [[nodiscard]] std::string to_string() const;

  /// Convenience: renders and writes to stdout.
  void print() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (reporting helper).
std::string fmt(double v, int precision = 2);

/// Formats a large count with thousands separators (e.g. 1,150). The
/// unsigned overload exists so u64 counters print directly: routing them
/// through the signed overload renders values above 2^63-1 as negative.
std::string fmt_count(long long v);
std::string fmt_count(unsigned long long v);

/// Any other integer type dispatches by its own signedness, so u64/u32
/// counters never narrow through `long long` at the call site (and the
/// two-overload set stays unambiguous for every integral argument).
template <typename T>
  requires(std::is_integral_v<T> && !std::is_same_v<T, bool> &&
           !std::is_same_v<T, long long> && !std::is_same_v<T, unsigned long long>)
std::string fmt_count(T v) {
  if constexpr (std::is_signed_v<T>) {
    return fmt_count(static_cast<long long>(v));
  } else {
    return fmt_count(static_cast<unsigned long long>(v));
  }
}

}  // namespace dnnd::sys
