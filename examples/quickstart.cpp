// Quickstart: the full DNN-Defender story in ~60 lines of API use.
//   1. Train a small quantized CNN (CIFAR-10-like stand-in).
//   2. Crush it with the targeted Bit-Flip Attack.
//   3. Profile its vulnerable bits, install DNN-Defender, attack again:
//      every flip attempt is swapped away and accuracy does not move.
#include <cstdio>

#include "attack/bfa.hpp"
#include "models/model_zoo.hpp"
#include "nn/trainer.hpp"
#include "system/protected_system.hpp"

using namespace dnnd;

int main() {
  // 1. Data + model + training. Everything is seeded and deterministic.
  auto data = nn::make_synthetic(nn::SynthSpec::cifar10_like());
  auto model = models::make_vgg11_sub(data.spec.num_classes, /*seed=*/1);
  nn::TrainConfig train_cfg;
  train_cfg.epochs = 6;
  const auto report = nn::train(*model, data, train_cfg);
  std::printf("trained %s: test accuracy %.2f%%\n", model->name().c_str(),
              100.0 * report.test_accuracy);

  // 8-bit weight quantization (the representation RowHammer attacks).
  quant::QuantizedModel qm(*model);
  const auto clean = qm.snapshot();
  auto [attack_x, attack_y] = data.test.head(32);  // attacker's sample batch
  auto [eval_x, eval_y] = data.test.head(200);

  // 2. Software BFA (no defense): progressive bit search to random guess.
  attack::BfaConfig bfa_cfg;
  bfa_cfg.max_flips = 40;
  attack::ProgressiveBitSearch bfa(qm, attack_x, attack_y, bfa_cfg);
  const auto attack_result = bfa.run();
  std::printf("BFA without defense: %zu flips -> %.2f%% accuracy\n",
              attack_result.flips.size(),
              100.0 * qm.model().accuracy(eval_x, eval_y));
  qm.restore(clean);

  // 3. Put the weights in simulated DRAM, profile, protect, attack again.
  system::ProtectedSystemConfig sys_cfg;
  sys_cfg.dram = dram::DramConfig::nn_scaled();
  system::ProtectedSystem protected_sys(qm, sys_cfg);

  core::PriorityProfiler profiler(qm, attack_x, attack_y);
  // Anticipate the blocked attacker's exact search trajectory (48 bits is
  // ample cover for the attempt budget below).
  auto& defender = protected_sys.install_dnn_defender(profiler.profile_blocked_attacker(48));
  std::printf("DNN-Defender armed: %zu target rows, swap every %.1f us\n",
              defender.targets().size(), ps_to_us(defender.swap_interval()));

  const auto defended = protected_sys.run_white_box_attack(
      attack_x, attack_y, eval_x, eval_y, /*max_attempts=*/15, /*stop_accuracy=*/0.0);
  std::printf(
      "white-box attack vs DNN-Defender: %zu attempts, %zu landed, %zu blocked\n"
      "accuracy %.2f%% -> %.2f%%, %llu in-DRAM swaps performed\n",
      defended.attempts, defended.landed, defended.blocked,
      100.0 * defended.initial_accuracy, 100.0 * defended.final_accuracy,
      static_cast<unsigned long long>(defender.swap_stats().swaps));
  return 0;
}
