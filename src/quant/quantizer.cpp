#include "quant/quantizer.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>
#include <stdexcept>
#include <string>

#include "nn/gemm.hpp"
#include "nn/simd.hpp"

namespace dnnd::quant {

namespace detail {

void validate_bit_key_bounds(usize layer_count, usize max_layer_size) {
  if (layer_count > kMaxKeyLayers) {
    throw std::length_error("BitLocation::key(): " + std::to_string(layer_count) +
                            " quantized layers exceeds the 2^20 layer-index field");
  }
  if (max_layer_size > kMaxKeyIndex) {
    throw std::length_error("BitLocation::key(): layer of " +
                            std::to_string(max_layer_size) +
                            " weights exceeds the 2^41 weight-index field");
  }
}

}  // namespace detail

namespace {

/// One weight's float and packed-panel values from its code -- the single
/// materialization arithmetic everything (full pass, flip, restore) shares.
inline float dequant(i8 q, float scale) { return static_cast<float>(q) * scale; }

}  // namespace

QuantizedModel::QuantizedModel(nn::Model& model) : model_(model) {
  for (auto& p : model_.quantizable_params()) {
    QuantizedLayer ql;
    ql.name = p.name;
    ql.value = p.value;
    ql.grad = p.grad;
    ql.net_layer = p.top_layer;
    ql.owner = p.owner;
    const float amax = p.value->abs_max();
    ql.scale = amax > 0.0f ? amax / 127.0f : 1.0f;
    ql.q.resize(p.value->size());
    for (usize i = 0; i < ql.q.size(); ++i) {
      const float w = (*p.value)[i];
      const long r = std::lround(w / ql.scale);
      ql.q[i] = static_cast<i8>(std::clamp<long>(r, -128, 127));
    }
    // Panel geometry: both Dense ({out, in}) and Conv2d ({oc, ic, k, k})
    // present as an N x K code matrix with N = dim(0).
    ql.pack_rows = p.value->dim(0);
    ql.pack_cols = ql.q.size() / ql.pack_rows;
    layers_.push_back(std::move(ql));
  }
  usize max_layer_size = 0;
  for (const auto& l : layers_) max_layer_size = std::max(max_layer_size, l.size());
  detail::validate_bit_key_bounds(layers_.size(), max_layer_size);
  materialize();
  for (auto& l : layers_) attach_pack(l, true);
}

QuantizedModel::~QuantizedModel() {
  for (auto& l : layers_) attach_pack(l, false);
}

void QuantizedModel::build_pack(QuantizedLayer& l) {
  l.packed.resize(nn::gemm::packed_b_size(l.pack_rows, l.pack_cols));
  nn::gemm::pack_b_int8(l.q.data(), l.pack_rows, l.pack_cols, l.scale, l.packed.data());
  l.packed_q.resize(nn::gemm::packed_b_int8_size(l.pack_rows, l.pack_cols));
  nn::gemm::pack_b_q8(l.q.data(), l.pack_rows, l.pack_cols, l.packed_q.data());
}

void QuantizedModel::attach_pack(QuantizedLayer& l, bool on) {
  if (l.owner == nullptr) return;
  if (on) {
    l.owner->attach_packed_weight(l.packed.data());
    l.owner->attach_int8_pack({l.packed_q.data(), l.scale, l.act_scale});
  } else {
    l.owner->detach_packed_weight(l.packed.data());
    l.owner->detach_int8_pack(l.packed_q.data());
  }
}

void QuantizedModel::set_fused(bool on) {
  // Attaching is idempotent and deliberately not short-circuited when already
  // fused: set_fused(true) also recovers panels dropped by a direct-mutation
  // guard (Model::load_state, optimizer steps) after a materialize().
  fused_ = on;
  for (auto& l : layers_) attach_pack(l, on);
}

u64 QuantizedModel::total_weights() const {
  u64 n = 0;
  for (const auto& l : layers_) n += l.size();
  return n;
}

void QuantizedModel::materialize() {
  for (auto& l : layers_) {
    for (usize i = 0; i < l.q.size(); ++i) {
      (*l.value)[i] = dequant(l.q[i], l.scale);
    }
    build_pack(l);
  }
  model_.invalidate_from(0);
}

void QuantizedModel::flip(const BitLocation& loc) {
  QuantizedLayer& l = layers_.at(loc.layer);
  assert(loc.index < l.size());
  const i8 code = flip_bit_value(l.q[loc.index], loc.bit);
  l.q[loc.index] = code;
  (*l.value)[loc.index] = dequant(code, l.scale);
  l.packed[nn::gemm::packed_index(loc.index / l.pack_cols, loc.index % l.pack_cols,
                                  l.pack_cols)] = dequant(code, l.scale);
  l.packed_q[nn::gemm::packed_q8_index(loc.index / l.pack_cols, loc.index % l.pack_cols,
                                       l.pack_cols)] = code;
  // Keep the incremental-forward cache honest: activations computed from the
  // pre-flip weight are stale from this layer on.
  model_.invalidate_from(l.net_layer);
}

i8 QuantizedModel::get_q(usize layer, usize index) const {
  return layers_.at(layer).q.at(index);
}

void QuantizedModel::set_q(usize layer, usize index, i8 code) {
  QuantizedLayer& l = layers_.at(layer);
  if (l.q.at(index) == code) return;  // unchanged: floats and cache stay valid
  l.q[index] = code;
  (*l.value)[index] = dequant(code, l.scale);
  l.packed[nn::gemm::packed_index(index / l.pack_cols, index % l.pack_cols, l.pack_cols)] =
      dequant(code, l.scale);
  l.packed_q[nn::gemm::packed_q8_index(index / l.pack_cols, index % l.pack_cols,
                                       l.pack_cols)] = code;
  model_.invalidate_from(l.net_layer);
}

std::vector<std::vector<i8>> QuantizedModel::snapshot() const {
  std::vector<std::vector<i8>> snap;
  snap.reserve(layers_.size());
  for (const auto& l : layers_) snap.push_back(l.q);
  return snap;
}

void QuantizedModel::restore(const std::vector<std::vector<i8>>& snap) {
  assert(snap.size() == layers_.size());
  for (usize i = 0; i < layers_.size(); ++i) {
    assert(snap[i].size() == layers_[i].q.size());
    for (usize j = 0; j < layers_[i].q.size(); ++j) {
      set_q(i, j, snap[i][j]);  // no-op (no invalidation) for unchanged codes
    }
  }
}

void QuantizedModel::calibrate_int8(const nn::Tensor& x) {
  // One recording pass: point each quantizable layer's activation probe at
  // its amax accumulator and run a FLOAT forward (the int8 override is forced
  // off so the scales come from reference numerics, not from a
  // partially-calibrated integer pass). Probes are cleared and the override
  // restored even if the forward throws.
  for (auto& l : layers_) {
    if (l.owner != nullptr) l.owner->set_act_probe(&l.act_amax);
  }
  const int saved = nn::simd::int8_override();
  nn::simd::set_int8_override(0);
  try {
    model_.forward_cached(x);
  } catch (...) {
    nn::simd::set_int8_override(saved);
    for (auto& l : layers_) {
      if (l.owner != nullptr) l.owner->set_act_probe(nullptr);
    }
    throw;
  }
  nn::simd::set_int8_override(saved);
  for (auto& l : layers_) {
    if (l.owner != nullptr) l.owner->set_act_probe(nullptr);
    l.act_scale = l.act_amax > 0.0f ? l.act_amax / 127.0f : 1.0f;
  }
  // Re-attach so the owners see the frozen act_scale (attach is idempotent).
  if (fused_) {
    for (auto& l : layers_) attach_pack(l, true);
  }
  // The recorded activation cache is float-path output; an integer forward
  // must not splice onto it via forward_from.
  model_.invalidate_from(0);
  int8_calibrated_ = true;
}

void QuantizedModel::ensure_int8_calibrated(const nn::Tensor& x) {
  if (nn::simd::int8_enabled() && !int8_calibrated_) calibrate_int8(x);
}

u64 QuantizedModel::hamming_distance(const std::vector<std::vector<i8>>& snap) const {
  assert(snap.size() == layers_.size());
  u64 dist = 0;
  for (usize i = 0; i < layers_.size(); ++i) {
    for (usize j = 0; j < layers_[i].q.size(); ++j) {
      dist += std::popcount(static_cast<u8>(layers_[i].q[j] ^ snap[i][j]));
    }
  }
  return dist;
}

}  // namespace dnnd::quant
