#include <gtest/gtest.h>

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

#include "dram/dram_device.hpp"
#include "dram/row_remapper.hpp"
#include "harness/campaign.hpp"
#include "harness/campaign_diff.hpp"
#include "harness/registry.hpp"
#include "harness/sink.hpp"
#include "nn/gemm.hpp"
#include "nn/simd.hpp"
#include "sys/json.hpp"
#include "test_util.hpp"

namespace dnnd::harness {
namespace {

/// Seconds-fast enumerate_grid spec exercising the new axes: two attack
/// kinds and a SoftwarePrep variant on the tiny MLP.
GridSpec mini_axes_spec() {
  GridSpec spec;
  spec.models = {"mlp"};
  spec.generations = {dram::DeviceGen::kLpddr4New};
  spec.attacks = {AttackKind::kBfa, AttackKind::kDramWhiteBox};
  spec.preps = {"none", "piecewise-clustering", "reconstruction-guard"};
  spec.defenses = {"none", "rrs"};
  spec.dataset = DatasetKind::kTinyEasy;
  spec.small = true;
  return spec;
}

/// The committed tiny-grid golden, raw bytes (newline-terminated sink form).
std::string read_golden_text() {
  const std::string path =
      std::string(DNND_SOURCE_DIR) + "/tests/data/tiny_grid_baseline.json";
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in) << "missing baseline " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(Scenario, SeedDerivesFromIdNotThreadOrder) {
  Scenario a;
  a.id = "grid/resnet20/lpddr4-new/rrs";
  Scenario b;
  b.id = "grid/resnet20/lpddr4-new/srs";
  EXPECT_EQ(scenario_seed(a), sys::stable_hash64(a.id));
  EXPECT_NE(scenario_seed(a), scenario_seed(b)) << "distinct ids must give distinct seeds";
  a.seed_override = 42;
  EXPECT_EQ(scenario_seed(a), 42u);
}

TEST(Registry, GridsEnumerateWithUniqueIds) {
  for (const bool small : {true, false}) {
    const auto t3 = table3_scenarios(small);
    EXPECT_EQ(t3.size(), 10u) << "paper Table 3 has 10 rows";
    const auto f1b = fig1b_scenarios(small);
    EXPECT_EQ(f1b.size(), 3u) << "paper Fig. 1(b) has 3 curves";
    std::set<std::string> ids;
    for (const auto& sc : t3) EXPECT_TRUE(ids.insert(sc.id).second) << sc.id;
    for (const auto& sc : f1b) EXPECT_TRUE(ids.insert(sc.id).second) << sc.id;
  }
  GridSpec spec;
  spec.models = {"resnet20", "vgg11"};
  spec.generations = {dram::DeviceGen::kLpddr4New, dram::DeviceGen::kDdr4New};
  spec.defenses = {"none", "rrs", "dnn-defender"};
  const auto grid = enumerate_grid(spec);
  EXPECT_EQ(grid.size(), 2u * 2u * 3u);
  std::set<std::string> ids;
  for (const auto& sc : grid) {
    EXPECT_TRUE(ids.insert(sc.id).second) << "duplicate id " << sc.id;
    EXPECT_EQ(sc.attack, AttackKind::kDramWhiteBox);
  }
}

TEST(Registry, UnknownMitigationThrows) {
  EXPECT_THROW(mitigation_factory("prince-of-persia"), std::invalid_argument);
  EXPECT_THROW(mitigation_factory(""), std::invalid_argument);
}

TEST(Registry, MitigationFactoryConstructsEveryKnownDefense) {
  const auto cfg = dram::DramConfig::sim_small();
  dram::DramDevice dev(cfg);
  dram::RowRemapper remap(cfg.geo);
  for (const char* name : {"para", "rrs", "srs", "shadow", "graphene", "hydra"}) {
    const MitigationFactory factory = mitigation_factory(name);
    ASSERT_TRUE(factory) << name;
    EXPECT_NE(factory(dev, remap), nullptr) << name;
  }
}

TEST(Registry, AxisSlugsRoundTrip) {
  for (const auto gen : kAllDeviceGens) {
    EXPECT_EQ(device_gen_from_slug(device_gen_slug(gen)), gen);
    EXPECT_NE(device_gen_slug(gen), "unknown");
  }
  EXPECT_THROW(device_gen_from_slug("ddr9-future"), std::invalid_argument);

  for (const auto kind : kAllAttackKinds) {
    EXPECT_EQ(attack_kind_from_string(to_string(kind)), kind);
    EXPECT_NE(to_string(kind), "unknown");
  }
  EXPECT_THROW(attack_kind_from_string("voltage-glitch"), std::invalid_argument);

  for (const auto prep : kAllSoftwarePreps) {
    EXPECT_EQ(software_prep_from_string(to_string(prep)), prep);
    EXPECT_NE(to_string(prep), "unknown");
  }
  EXPECT_TRUE(is_known_prep_axis("reconstruction-guard"));
  EXPECT_FALSE(is_known_prep_axis("prayer"));
}

TEST(Registry, AttackKindVocabularyStaysInSync) {
  // Walk the enum by ordinal, not the array: an enumerator missing from
  // kAllAttackKinds still reaches to_string here, and its slug then fails
  // attack_kind_from_string (which resolves through the array) -- so this
  // catches array/switch drift that iterating the array alone cannot. The
  // static_assert next to the array pins the count itself.
  for (usize i = 0; i < kAttackKindCount; ++i) {
    const auto kind = static_cast<AttackKind>(i);
    ASSERT_NE(to_string(kind), "unknown") << "ordinal " << i;
    EXPECT_EQ(attack_kind_from_string(to_string(kind)), kind)
        << "slug " << to_string(kind) << " does not round-trip";
  }
  // Slugs are unique (two kinds sharing one would make from_string ambiguous).
  std::set<std::string> slugs;
  for (const auto kind : kAllAttackKinds) slugs.insert(to_string(kind));
  EXPECT_EQ(slugs.size(), kAttackKindCount);

  // The default DNND_GRID_ATTACKS axis is the full vocabulary, in array
  // order: a kind left out of the default axis silently vanishes from every
  // sweep that doesn't override it.
  const char* saved = std::getenv("DNND_GRID_ATTACKS");
  const std::string saved_copy = saved != nullptr ? saved : "";
  ASSERT_EQ(unsetenv("DNND_GRID_ATTACKS"), 0);
  const GridSpec spec = grid_spec_from_env(/*small=*/true);
  const std::vector<AttackKind> expected(std::begin(kAllAttackKinds),
                                         std::end(kAllAttackKinds));
  EXPECT_EQ(spec.attacks, expected);
  if (saved != nullptr) ASSERT_EQ(setenv("DNND_GRID_ATTACKS", saved_copy.c_str(), 1), 0);
}

TEST(Registry, UnknownAttackSlugErrorListsValidVocabulary) {
  // The error is the documentation at the moment of the typo: it must name
  // every valid slug, and the env-parse path must say WHICH variable held it.
  try {
    attack_kind_from_string("voltage-glitch");
    FAIL() << "unknown slug must throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("voltage-glitch"), std::string::npos) << what;
    for (const auto kind : kAllAttackKinds) {
      EXPECT_NE(what.find(to_string(kind)), std::string::npos)
          << "missing slug " << to_string(kind) << " in: " << what;
    }
  }

  ASSERT_EQ(setenv("DNND_GRID_ATTACKS", "bfa,voltage-glitch", 1), 0);
  try {
    grid_spec_from_env(/*small=*/true);
    FAIL() << "unknown env slug must throw";
  } catch (const std::invalid_argument& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("DNND_GRID_ATTACKS"), std::string::npos) << what;
    EXPECT_NE(what.find("voltage-glitch"), std::string::npos) << what;
    EXPECT_NE(what.find("tbfa-n-to-1"), std::string::npos) << what;
  }
  ASSERT_EQ(unsetenv("DNND_GRID_ATTACKS"), 0);
}

TEST(Registry, FullCrossProductHasUniqueStableIds) {
  GridSpec spec;
  spec.models = {"resnet20", "vgg11"};
  spec.generations = {dram::DeviceGen::kLpddr4New, dram::DeviceGen::kDdr4New};
  spec.attacks = {AttackKind::kBfa, AttackKind::kBinaryBfa, AttackKind::kRandom,
                  AttackKind::kAdaptive, AttackKind::kDramWhiteBox};
  spec.preps = {"none", "binary-finetune", "piecewise-clustering", "reconstruction-guard"};
  spec.defenses = {"none", "para", "rrs",    "srs",
                   "shadow", "graphene", "hydra", "dnn-defender"};

  // Unpruned: the literal cross product of all five axes.
  spec.prune_incoherent = false;
  const auto full = enumerate_grid(spec);
  EXPECT_EQ(full.size(), 2u * 2u * 5u * 4u * 8u);
  std::set<std::string> ids;
  for (const auto& sc : full) {
    EXPECT_TRUE(ids.insert(sc.id).second) << "duplicate id " << sc.id;
    EXPECT_EQ(sc.id.rfind("grid/", 0), 0u) << sc.id;
  }

  // Pruned: per (model, gen) -- kBfa pairs with all 4 preps but only
  // defense "none"; kBinaryBfa/kRandom lose the reconstruction guard;
  // kAdaptive also allows full-coverage dnn-defender; kDramWhiteBox takes
  // every defense.
  spec.prune_incoherent = true;
  const auto pruned = enumerate_grid(spec);
  const usize per_cell = 4 * 1 + 3 * 1 + 3 * 1 + 3 * 2 + 3 * 8;
  EXPECT_EQ(pruned.size(), 2u * 2u * per_cell);
  for (const auto& sc : pruned) {
    // Recover the prep/defense axis values from the id's last two segments.
    const auto last = sc.id.rfind('/');
    const auto prev = sc.id.rfind('/', last - 1);
    const std::string defense_axis = sc.id.substr(last + 1);
    const std::string prep_axis = sc.id.substr(prev + 1, last - prev - 1);
    EXPECT_TRUE(grid_cell_coherent(sc.attack, prep_axis, defense_axis)) << sc.id;
  }

  // Stable: a second enumeration yields the same ids in the same order.
  const auto again = enumerate_grid(spec);
  ASSERT_EQ(again.size(), pruned.size());
  for (usize i = 0; i < pruned.size(); ++i) EXPECT_EQ(again[i].id, pruned[i].id);

  // Unknown axis values are rejected up front -- even when pruning would
  // have dropped every cell naming them (e.g. a typo'd defense with no
  // dram-white-box attack in the grid).
  GridSpec bad = mini_axes_spec();
  bad.preps = {"quantum-annealing"};
  EXPECT_THROW(enumerate_grid(bad), std::invalid_argument);
  bad = mini_axes_spec();
  bad.defenses = {"prince-of-persia"};
  bad.attacks = {AttackKind::kBfa};
  EXPECT_THROW(enumerate_grid(bad), std::invalid_argument);
  bad = mini_axes_spec();
  bad.models = {"resnet2"};
  EXPECT_THROW(enumerate_grid(bad), std::invalid_argument);
}

TEST(Registry, MiniAxesGridEnumeratesExpectedCells) {
  const auto grid = enumerate_grid(mini_axes_spec());
  const std::vector<std::string> expected = {
      "grid/mlp/lpddr4-new/bfa/none/none",
      "grid/mlp/lpddr4-new/bfa/piecewise-clustering/none",
      "grid/mlp/lpddr4-new/bfa/reconstruction-guard/none",
      "grid/mlp/lpddr4-new/dram-white-box/none/none",
      "grid/mlp/lpddr4-new/dram-white-box/none/rrs",
      "grid/mlp/lpddr4-new/dram-white-box/piecewise-clustering/none",
      "grid/mlp/lpddr4-new/dram-white-box/piecewise-clustering/rrs",
  };
  ASSERT_EQ(grid.size(), expected.size());
  for (usize i = 0; i < expected.size(); ++i) EXPECT_EQ(grid[i].id, expected[i]);

  // Axis values land in the scenario fields they configure.
  EXPECT_TRUE(grid[2].reconstruction_guard);
  EXPECT_EQ(grid[1].prep, SoftwarePrep::kPiecewiseClustering);
  EXPECT_EQ(grid[1].defense, "piecewise-clustering");
  EXPECT_TRUE(static_cast<bool>(grid[4].mitigation));
  EXPECT_EQ(grid[6].defense, "piecewise-clustering+rrs");
}

TEST(Campaign, ScenarioErrorsAreCapturedNotThrown) {
  Scenario sc;
  sc.id = "bad/unknown-arch";
  sc.dataset = DatasetKind::kTinyEasy;
  sc.train = TrainSpec{.arch = "no-such-arch", .width_mult = 1, .epochs = 1, .seed = 1};
  CampaignRunner runner(CampaignConfig{.threads = 1});
  const auto res = runner.run({sc});
  ASSERT_EQ(res.results.size(), 1u);
  EXPECT_FALSE(res.results[0].ok);
  EXPECT_FALSE(res.results[0].error.empty());
  // Reporting still works on a failed campaign.
  EXPECT_NE(res.table().to_string().find("ERROR"), std::string::npos);
  EXPECT_NE(res.to_json().find("\"ok\":false"), std::string::npos);
}

TEST(Json, WriterShapesAreWellFormed) {
  sys::JsonWriter w;
  w.begin_object();
  w.key("name").value("a \"quoted\"\nstring");
  w.key("pi").value(3.25);
  w.key("n").value(static_cast<u64>(7));
  w.key("list").begin_array().value(1.0).value(2.0).end_array();
  w.key("nested").begin_object().key("ok").value(true).end_object();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"a \\\"quoted\\\"\\nstring\",\"pi\":3.25,\"n\":7,"
            "\"list\":[1,2],\"nested\":{\"ok\":true}}");
}

// The tentpole regression: the same scenario grid must yield byte-identical
// result tables and JSON for every thread count -- results depend on scenario
// ids (seeds) and budgets, never on the schedule that executed them. The grid
// is tiny_test_grid() plus an enumerate_grid sweep over the new axes, so it
// covers two AttackKinds and a SoftwarePrep variant coming through GridSpec.
TEST(Campaign, DeterministicAcrossThreadCounts) {
  auto grid = tiny_test_grid();
  ASSERT_GE(grid.size(), 5u) << "grid should cover every attack path";
  const auto axes = enumerate_grid(mini_axes_spec());
  grid.insert(grid.end(), axes.begin(), axes.end());
  {
    std::set<AttackKind> attacks;
    bool has_prep = false;
    for (const auto& sc : axes) {
      attacks.insert(sc.attack);
      has_prep = has_prep || sc.prep != SoftwarePrep::kNone;
    }
    ASSERT_GE(attacks.size(), 2u) << "axes grid must span two attack kinds";
    ASSERT_TRUE(has_prep) << "axes grid must include a SoftwarePrep variant";
  }

  std::vector<usize> thread_counts = {1, 4,
                                      std::max<usize>(1, std::thread::hardware_concurrency())};
  std::vector<std::string> tables;
  std::vector<std::string> jsons;
  for (const usize threads : thread_counts) {
    CampaignRunner runner(CampaignConfig{.threads = threads});
    const auto res = runner.run(grid);
    ASSERT_EQ(res.results.size(), grid.size());
    for (usize i = 0; i < grid.size(); ++i) {
      EXPECT_EQ(res.results[i].id, grid[i].id) << "result order must match input order";
      EXPECT_TRUE(res.results[i].ok) << res.results[i].id << ": " << res.results[i].error;
    }
    tables.push_back(res.table().to_string());
    jsons.push_back(res.to_json());
  }
  for (usize i = 1; i < thread_counts.size(); ++i) {
    EXPECT_EQ(tables[0], tables[i])
        << "table differs between 1 thread and " << thread_counts[i] << " threads";
    EXPECT_EQ(jsons[0], jsons[i])
        << "JSON differs between 1 thread and " << thread_counts[i] << " threads";
  }
}

// The engine-threading regression: the same grid must be byte-identical no
// matter how the thread budget splits between scenario workers and each
// scenario's GEMM team. A 2-scenario grid under a budget of 8 forces a
// 4-thread GEMM team inside every worker (the leftover-budget split in
// CampaignRunner::run); the whole tiny grid under budgets 1/2/hw covers the
// workers-saturate-the-budget regime. All runs must match the
// single-threaded bytes exactly.
TEST(Campaign, DeterministicAcrossGemmTeamSplits) {
  const auto grid = tiny_test_grid();
  ASSERT_GE(grid.size(), 2u);
  const std::vector<Scenario> pair(grid.begin(), grid.begin() + 2);

  CampaignRunner serial(CampaignConfig{.threads = 1});
  const std::string pair_base = serial.run(pair).to_json();
  const std::string grid_base = serial.run(grid).to_json();

  {
    // 2 workers x 4 GEMM threads each.
    CampaignRunner runner(CampaignConfig{.threads = 8});
    EXPECT_EQ(runner.run(pair).to_json(), pair_base)
        << "in-scenario GEMM teams changed campaign bytes";
  }
  for (const usize budget : {usize{2}, usize{4},
                             std::max<usize>(1, std::thread::hardware_concurrency())}) {
    CampaignRunner runner(CampaignConfig{.threads = budget});
    EXPECT_EQ(runner.run(grid).to_json(), grid_base) << "budget " << budget;
  }
  // The split is restored afterwards: the campaign must not leak its GEMM
  // team override into the process.
  EXPECT_EQ(nn::gemm::threads_setting(), 0u);
}

// Golden-file cross-check of the same property: the committed baseline must
// be reproduced at zero tolerance with an in-scenario GEMM team forced on
// (dnnd_diff semantics via diff_campaigns).
TEST(Campaign, GoldenBaselineStableUnderGemmThreads) {
  const std::string path =
      std::string(DNND_SOURCE_DIR) + "/tests/data/tiny_grid_baseline.json";
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing baseline " << path;
  std::ostringstream ss;
  ss << in.rdbuf();
  const auto baseline = campaign_from_json(ss.str());

  const auto grid = tiny_test_grid();
  // threads == grid size would split the budget to 1 GEMM thread per worker;
  // an oversized budget hands every worker a team of >= 2.
  CampaignRunner runner(CampaignConfig{.threads = grid.size() * 2});
  const auto res = runner.run(grid);
  for (const auto& r : res.results) ASSERT_TRUE(r.ok) << r.id << ": " << r.error;
  const auto report = diff_campaigns(baseline, campaign_from_json(res.to_json()));
  EXPECT_TRUE(report.ok()) << report.to_string();
}

// Engine-equivalence gates for the ProbeEngine refactor: every pre-existing
// attack kind's campaign JSON must stay byte-identical to the committed
// golden across the thread counts CI runs (DNND_THREADS={1,4}) and under the
// forced-scalar SIMD leg (DNND_SIMD=0). The golden's bytes predate the
// engine for those cells, so a match proves the drivers reproduce the
// per-family loops exactly.
TEST(Campaign, GoldenBaselineStableAcrossThreadCounts) {
  const std::string golden = read_golden_text();
  for (const usize threads : {usize{1}, usize{4}}) {
    CampaignRunner runner(CampaignConfig{.threads = threads});
    const auto res = runner.run(tiny_test_grid());
    for (const auto& r : res.results) ASSERT_TRUE(r.ok) << r.id << ": " << r.error;
    EXPECT_EQ(res.to_json() + "\n", golden) << "threads=" << threads;
  }
}

TEST(Campaign, GoldenBaselineStableUnderForcedScalarSimd) {
  const std::string golden = read_golden_text();
  const testutil::SimdGuard guard;
  nn::simd::set_scalar_override(1);
  ASSERT_EQ(nn::simd::active_isa(), nn::simd::Isa::kScalar);
  CampaignRunner runner(CampaignConfig{.threads = 2});
  const auto res = runner.run(tiny_test_grid());
  for (const auto& r : res.results) ASSERT_TRUE(r.ok) << r.id << ": " << r.error;
  EXPECT_EQ(res.to_json() + "\n", golden);
}

TEST(Campaign, RepeatedRunsOnWarmCacheAreIdentical) {
  // Two runs through the SAME runner (second run hits the artifact cache):
  // cached artifacts must be indistinguishable from freshly built ones.
  const auto grid = tiny_test_grid();
  CampaignRunner runner(CampaignConfig{.threads = 2});
  const auto first = runner.run(grid);
  const auto second = runner.run(grid);
  EXPECT_EQ(first.to_json(), second.to_json());
}

// Golden-file regression: the committed tiny_test_grid() baseline must be
// reproduced exactly (the harness is deterministic by construction), and the
// persisted form must survive a parse round trip. Regenerate after an
// intentional result change with:  DNND_REGEN_GOLDEN=1 ./test_harness
TEST(Campaign, GoldenTinyGridBaselineMatches) {
  const std::string path =
      std::string(DNND_SOURCE_DIR) + "/tests/data/tiny_grid_baseline.json";

  CampaignRunner runner(CampaignConfig{.threads = 2});
  const auto res = runner.run(tiny_test_grid());
  for (const auto& r : res.results) EXPECT_TRUE(r.ok) << r.id << ": " << r.error;
  const std::string json = res.to_json() + "\n";  // sink framing: newline-terminated

  // Round trip through the parser is byte-exact.
  ASSERT_EQ(campaign_from_json(json).to_json() + "\n", json);

  if (std::getenv("DNND_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out) << "cannot write " << path;
    out << json;
    GTEST_SKIP() << "regenerated " << path;
  }

  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in) << "missing baseline " << path
                  << " -- regenerate with DNND_REGEN_GOLDEN=1";
  std::ostringstream ss;
  ss << in.rdbuf();
  const std::string baseline_text = ss.str();

  // Exact textual match, and a zero-tolerance dnnd_diff-style comparison of
  // the two persisted forms (what CI gates: both diff sides come from disk,
  // i.e. through the "%.10g" serialization).
  EXPECT_EQ(baseline_text, json);
  const auto report =
      diff_campaigns(campaign_from_json(baseline_text), campaign_from_json(json));
  EXPECT_TRUE(report.ok()) << report.to_string();
}

TEST(Campaign, ByIdLooksUpAndThrows) {
  CampaignResult res;
  ScenarioResult r;
  r.id = "x";
  res.results.push_back(r);
  EXPECT_EQ(res.by_id("x").id, "x");
  EXPECT_THROW(res.by_id("missing"), std::out_of_range);
}

}  // namespace
}  // namespace dnnd::harness
