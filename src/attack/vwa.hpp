// Limited-bit-budget weight attack in the style of Versatile Weight Attack
// (Bai et al., "Versatile Weight Attack via Flipping Limited Bits"): the
// attacker's defining constraint is a HARD flip budget B -- it seeks the
// best damage achievable at <= B flips, not the fewest flips to a damage
// target. Operationally that inverts BFA's reporting: hitting the stop
// accuracy early is a bonus, exhausting the budget is the EXPECTED outcome
// and must be reported distinctly (a campaign cell that spent its whole
// budget is not the same result as one whose candidates dried up).
//
// A thin driver over attack::ProbeEngine with the untargeted maximizer and
// the fallback disabled: an attacker paying for every flip out of a hard
// budget never spends one on a candidate that did not actually improve the
// objective, so a step with no improving probe ends the attack (candidates
// exhausted) instead of thrashing.
#pragma once

#include <optional>

#include "attack/probe_engine.hpp"

namespace dnnd::attack {

struct VwaLimitedConfig {
  usize flip_budget = 10;          ///< hard budget B: never commits more flips
  usize candidates_per_layer = 2;  ///< top-k per layer for the exact evaluation
  usize layers_evaluated = 6;      ///< evaluate only the best n layers (0 = all)
  double stop_accuracy = 0.0;      ///< early-out when attack-batch accuracy <=
                                   ///< this; 0 = random-guess level
  bool verbose = false;
};

/// Why the attack ended -- budget exhaustion is a first-class outcome, not a
/// failure to reach the stop accuracy.
enum class VwaOutcome {
  kReachedStop,          ///< accuracy fell to the stop level before the budget ran out
  kBudgetExhausted,      ///< all B flips spent (the nominal limited-bit result)
  kCandidatesExhausted,  ///< no improving admissible candidate remained
};

/// One committed flip.
struct VwaFlip {
  quant::BitLocation loc;
  double loss_before = 0.0;
  double loss_after = 0.0;
  double batch_accuracy_after = 0.0;
};

struct VwaLimitedResult {
  std::vector<VwaFlip> flips;
  double initial_batch_accuracy = 0.0;
  double final_batch_accuracy = 0.0;
  VwaOutcome outcome = VwaOutcome::kBudgetExhausted;
  [[nodiscard]] bool reached_stop() const { return outcome == VwaOutcome::kReachedStop; }
  [[nodiscard]] bool budget_exhausted() const {
    return outcome == VwaOutcome::kBudgetExhausted;
  }
};

class VwaLimitedAttack {
 public:
  /// Throws std::invalid_argument when cfg.flip_budget is zero: a limited-bit
  /// attack with no bits is a configuration error, not an empty result.
  VwaLimitedAttack(quant::QuantizedModel& qm, nn::Tensor attack_x,
                   std::vector<u32> attack_y, VwaLimitedConfig cfg = {});

  /// Finds and commits the single best improving flip not in `skip` (and not
  /// flipped before). Returns nullopt when no candidate improves the loss --
  /// the budget is enforced by run(), not here.
  std::optional<VwaFlip> step(const quant::BitSkipSet& skip);

  /// Runs `step` until the stop accuracy, the flip budget, or the candidates
  /// run out (result.outcome says which); flips are committed in `qm`.
  VwaLimitedResult run(const quant::BitSkipSet& skip = {});

  [[nodiscard]] const VwaLimitedConfig& config() const { return cfg_; }
  [[nodiscard]] double stop_threshold() const;

 private:
  VwaLimitedConfig cfg_;
  UntargetedCeObjective objective_;
  ProbeEngine engine_;
};

}  // namespace dnnd::attack
