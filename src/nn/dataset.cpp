#include "nn/dataset.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dnnd::nn {

SynthSpec SynthSpec::cifar10_like() {
  SynthSpec s;
  s.num_classes = 10;
  s.train_per_class = 200;
  s.test_per_class = 40;
  s.noise = 2.2;   // tuned so the zoo models land near the paper's ~92% clean acc
  s.max_shift = 2;
  s.seed = 0xC1FA8;
  return s;
}

SynthSpec SynthSpec::imagenet_like() {
  SynthSpec s;
  s.num_classes = 20;
  s.train_per_class = 120;
  s.test_per_class = 24;
  s.noise = 1.5;   // more classes are intrinsically harder; keep acc ~80-95%
  s.max_shift = 2;
  s.seed = 0x1A6E7;
  return s;
}

std::pair<Tensor, std::vector<u32>> Dataset::gather(const std::vector<usize>& indices) const {
  Tensor batch;
  std::vector<u32> y;
  gather_into(indices, batch, y);
  return {std::move(batch), std::move(y)};
}

void Dataset::gather_into(const std::vector<usize>& indices, Tensor& batch,
                          std::vector<u32>& y) const {
  const usize c = images.dim(1), h = images.dim(2), w = images.dim(3);
  const usize stride = c * h * w;
  batch.resize({indices.size(), c, h, w});
  y.resize(indices.size());
  for (usize i = 0; i < indices.size(); ++i) {
    assert(indices[i] < size());
    std::copy_n(images.data() + indices[i] * stride, stride, batch.data() + i * stride);
    y[i] = labels[indices[i]];
  }
}

std::pair<Tensor, std::vector<u32>> Dataset::head(usize n) const {
  n = std::min(n, size());
  std::vector<usize> idx(n);
  for (usize i = 0; i < n; ++i) idx[i] = i;
  return gather(idx);
}

namespace {

/// Bilinearly upsamples a coarse grid to (h, w).
void upsample_bilinear(const std::vector<float>& coarse, usize ch, usize cw, float* out,
                       usize h, usize w) {
  for (usize i = 0; i < h; ++i) {
    const double fy = (static_cast<double>(i) + 0.5) / h * ch - 0.5;
    const isize y0 = static_cast<isize>(std::floor(fy));
    const double wy = fy - y0;
    for (usize j = 0; j < w; ++j) {
      const double fx = (static_cast<double>(j) + 0.5) / w * cw - 0.5;
      const isize x0 = static_cast<isize>(std::floor(fx));
      const double wx = fx - x0;
      auto pick = [&](isize y, isize x) -> double {
        y = std::clamp<isize>(y, 0, static_cast<isize>(ch) - 1);
        x = std::clamp<isize>(x, 0, static_cast<isize>(cw) - 1);
        return coarse[static_cast<usize>(y) * cw + static_cast<usize>(x)];
      };
      const double v = (1 - wy) * ((1 - wx) * pick(y0, x0) + wx * pick(y0, x0 + 1)) +
                       wy * ((1 - wx) * pick(y0 + 1, x0) + wx * pick(y0 + 1, x0 + 1));
      out[i * w + j] = static_cast<float>(v);
    }
  }
}

/// Per-class smooth template: one coarse 4x4 pattern per channel.
std::vector<float> make_template(const SynthSpec& spec, sys::Rng& rng) {
  const usize chw = spec.channels * spec.height * spec.width;
  std::vector<float> tpl(chw);
  constexpr usize kCoarse = 4;
  std::vector<float> coarse(kCoarse * kCoarse);
  for (usize c = 0; c < spec.channels; ++c) {
    for (auto& v : coarse) v = static_cast<float>(rng.normal(0.0, 1.0));
    upsample_bilinear(coarse, kCoarse, kCoarse, tpl.data() + c * spec.height * spec.width,
                      spec.height, spec.width);
  }
  return tpl;
}

/// Draws one sample of a class: shifted, amplitude-jittered, noisy template.
void draw_sample(const SynthSpec& spec, const std::vector<float>& tpl, sys::Rng& rng,
                 float* out) {
  const i64 max_shift = spec.max_shift;
  const i64 dy = max_shift == 0 ? 0 : rng.uniform_range(-max_shift, max_shift);
  const i64 dx = max_shift == 0 ? 0 : rng.uniform_range(-max_shift, max_shift);
  const double amp = 1.0 + spec.amplitude_jitter * (2.0 * rng.uniform01() - 1.0);
  const usize h = spec.height, w = spec.width;
  for (usize c = 0; c < spec.channels; ++c) {
    const float* t = tpl.data() + c * h * w;
    float* o = out + c * h * w;
    for (usize i = 0; i < h; ++i) {
      const usize si = static_cast<usize>(
          std::clamp<i64>(static_cast<i64>(i) + dy, 0, static_cast<i64>(h) - 1));
      for (usize j = 0; j < w; ++j) {
        const usize sj = static_cast<usize>(
            std::clamp<i64>(static_cast<i64>(j) + dx, 0, static_cast<i64>(w) - 1));
        o[i * w + j] = static_cast<float>(amp * t[si * w + sj] + rng.normal(0.0, spec.noise));
      }
    }
  }
}

Dataset build_split(const SynthSpec& spec, const std::vector<std::vector<float>>& templates,
                    usize per_class, sys::Rng& rng) {
  const usize n = spec.num_classes * per_class;
  const usize chw = spec.channels * spec.height * spec.width;
  Dataset ds;
  ds.images = Tensor({n, spec.channels, spec.height, spec.width});
  ds.labels.resize(n);
  ds.num_classes = spec.num_classes;
  // Interleave classes so any prefix (Dataset::head) is class-balanced.
  usize idx = 0;
  for (usize s = 0; s < per_class; ++s) {
    for (usize c = 0; c < spec.num_classes; ++c) {
      draw_sample(spec, templates[c], rng, ds.images.data() + idx * chw);
      ds.labels[idx] = static_cast<u32>(c);
      ++idx;
    }
  }
  return ds;
}

}  // namespace

SplitDataset make_synthetic(const SynthSpec& spec) {
  sys::Rng root(spec.seed);
  sys::Rng tpl_rng = root.split("templates");
  std::vector<std::vector<float>> templates;
  templates.reserve(spec.num_classes);
  for (usize c = 0; c < spec.num_classes; ++c) templates.push_back(make_template(spec, tpl_rng));
  sys::Rng train_rng = root.split("train");
  sys::Rng test_rng = root.split("test");
  SplitDataset out;
  out.spec = spec;
  out.train = build_split(spec, templates, spec.train_per_class, train_rng);
  out.test = build_split(spec, templates, spec.test_per_class, test_rng);
  return out;
}

}  // namespace dnnd::nn
