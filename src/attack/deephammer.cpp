#include "attack/deephammer.hpp"

#include <array>
#include <cassert>

namespace dnnd::attack {

using dram::RowAddr;

DeepHammerAttack::DeepHammerAttack(dram::DramDevice& device, rowhammer::HammerModel& model,
                                   const mapping::WeightMapping& mapping,
                                   dram::RowRemapper& remap, DeepHammerConfig cfg)
    : device_(device),
      model_(model),
      mapping_(mapping),
      remap_(remap),
      cfg_(cfg),
      attacker_(device, sys::Rng(cfg.seed)),
      rng_(cfg.seed ^ 0xF00DULL) {}

namespace {
/// Does `cell` flip a bit that currently reads `bit_is_set`?
bool direction_matches(const rowhammer::VulnerableCell& cell, bool bit_is_set) {
  return cell.one_to_zero == bit_is_set;
}
}  // namespace

std::optional<RowAddr> DeepHammerAttack::find_flippable_frame(const RowAddr& near, usize col,
                                                              u32 bit, bool bit_is_set) {
  const auto& geo = device_.config().geo;
  const u32 reserved = mapping_.config().reserved_rows_per_subarray;
  auto usable = [&](const RowAddr& phys) {
    if (phys.row == 0 || phys.row + 1 >= geo.rows_per_subarray) return false;  // need neighbours
    if (phys.row >= geo.rows_per_subarray - reserved) return false;            // defense region
    const RowAddr logical = remap_.to_logical(phys);
    return mapping_.weights_in_row(logical) == 0;  // must not hold victim weights
  };
  auto probe = [&](const RowAddr& phys) -> bool {
    if (!usable(phys)) return false;
    const auto info = model_.cell_info(phys, col, bit);
    return info.has_value() && direction_matches(*info, bit_is_set);
  };
  // Same subarray first (cheapest massaging), then the rest of the device.
  for (u32 r = 1; r + 1 < geo.rows_per_subarray; ++r) {
    const RowAddr cand{near.bank, near.subarray, r};
    if (probe(cand)) return cand;
  }
  for (u32 b = 0; b < geo.banks; ++b) {
    for (u32 s = 0; s < geo.subarrays_per_bank; ++s) {
      if (b == near.bank && s == near.subarray) continue;
      for (u32 r = 1; r + 1 < geo.rows_per_subarray; ++r) {
        const RowAddr cand{b, s, r};
        if (probe(cand)) return cand;
      }
    }
  }
  return std::nullopt;
}

void DeepHammerAttack::massage_into(const RowAddr& logical, const RowAddr& frame) {
  const RowAddr phys = remap_.to_physical(logical);
  if (phys == frame) return;
  const RowAddr displaced_logical = remap_.to_logical(frame);
  // Swap the two rows' data with ordinary (timed) writes, as a user-space
  // page relocation would, then record the new backing.
  std::vector<u8> victim_data(device_.peek_row(phys).begin(), device_.peek_row(phys).end());
  std::vector<u8> frame_data(device_.peek_row(frame).begin(), device_.peek_row(frame).end());
  device_.write_row(frame, victim_data);
  device_.write_row(phys, frame_data);
  remap_.swap_logical(logical, displaced_logical);
  device_.advance(cfg_.massage_cost);
}

FlipAttempt DeepHammerAttack::attempt_flip(const quant::BitLocation& target) {
  FlipAttempt attempt;
  attempt.target = target;
  const mapping::Placement place = mapping_.locate(target.layer, target.index);
  const RowAddr logical = place.row;
  const usize col = place.col;
  const u32 bit = target.bit;

  RowAddr phys = remap_.to_physical(logical);
  const bool original_value = (device_.peek(phys, col) >> bit) & 1;

  // Memory massaging: make sure the victim byte sits on a flippable cell.
  auto ensure_flippable = [&]() -> bool {
    phys = remap_.to_physical(logical);
    const auto info = model_.cell_info(phys, col, bit);
    if (info.has_value() && direction_matches(*info, original_value)) return true;
    const auto frame = find_flippable_frame(phys, col, bit, original_value);
    if (!frame.has_value()) return false;
    massage_into(logical, *frame);
    attempt.massaged = true;
    phys = remap_.to_physical(logical);
    return true;
  };
  if (!ensure_flippable()) return attempt;

  const u64 budget = cfg_.act_budget_multiplier * device_.config().t_rh;
  const Picoseconds t0 = device_.now();
  [[maybe_unused]] const auto& geo = device_.config().geo;
  u64 used = 0;
  while (used < budget) {
    const RowAddr current = remap_.to_physical(logical);
    if (!(current == phys)) {
      // The defense relocated the row mid-attack; the white-box attacker
      // tracks it and re-massages if the new frame is not flippable.
      attempt.relocations_chased += 1;
      if (!ensure_flippable()) break;
    }
    // Double-sided aggressors around the current frame (the frame search
    // guarantees interior rows).
    assert(phys.row > 0 && phys.row + 1 < geo.rows_per_subarray);
    const std::array<RowAddr, 2> aggressors{RowAddr{phys.bank, phys.subarray, phys.row - 1},
                                            RowAddr{phys.bank, phys.subarray, phys.row + 1}};
    const u64 chunk = std::min<u64>(cfg_.check_interval, budget - used);
    attacker_.hammer(aggressors, chunk);
    used += chunk;
    const RowAddr check = remap_.to_physical(logical);
    const bool now_value = (device_.peek(check, col) >> bit) & 1;
    if (now_value != original_value) {
      attempt.success = true;
      break;
    }
  }
  attempt.activations = used;
  attempt.elapsed = device_.now() - t0;
  return attempt;
}

}  // namespace dnnd::attack
