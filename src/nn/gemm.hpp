// Cache-blocked, order-preserving GEMM -- the compute core of the inference
// engine.
//
// Both operands are K-major ("NT" layout: C[m,n] = dot(A row m, B row n)),
// which is exactly how Dense (x rows x weight rows) and the im2col lowering
// of Conv2d (weight rows x patch rows) present their data. The kernel packs B
// into 8-row interleaved panels so the inner loop is a contiguous SIMD-
// friendly stream, and tiles M for L2 residency of the panel.
//
// Bit-exactness contract: every output element is produced by ONE float
// accumulator initialised with its bias term and advanced in strictly
// ascending k -- the accumulation order of the original hand-rolled loops in
// src/nn/layers.cpp (retained verbatim in src/nn/reference.cpp). Blocking and
// packing only reorder *independent* accumulators, never the terms within
// one, so the lowered path is bitwise identical to the naive path
// (tests/test_gemm.cpp holds this over randomized shapes).
//
// Threading extends the same contract: the kernel partitions the OUTPUT
// (contiguous M row chunks, or B panel groups when M is smaller than the
// team) across an nn::ThreadPool team, so each accumulator still belongs to
// exactly one thread and still sees its terms in ascending k. Threaded
// results are therefore byte-identical to serial by construction, for every
// team size (tests/test_gemm.cpp sweeps 1/2/4/hardware). The team size comes
// from set_threads() / the DNND_THREADS env var.
//
// The inner k loops are explicit SIMD register tiles (nn/simd.hpp): runtime-
// dispatched AVX2/NEON microkernels that put one output column per vector
// lane and issue a distinct non-contracted multiply and add per lane -- the
// same contract again, so the default SIMD path is byte-identical to the
// scalar path (DNND_SIMD=0 forces scalar; DNND_FMA=1 opts into a fused fast
// path that may diverge in rounding and is excluded from the byte gates).
#pragma once

#include "sys/types.hpp"

namespace dnnd::nn {

class Workspace;

namespace gemm {

/// How the per-output accumulator is initialised. Both lowerings put the
/// bias-carrying dimension on the GEMM columns: for Dense, n is the output
/// feature; for Conv2d (patches as rows, weights as columns), n is the
/// output channel.
enum class Bias : u32 {
  kNone,    ///< acc starts at 0
  kPerCol,  ///< acc starts at bias[n]
};

/// C[m*ldc + n] = bias_init + sum_k A[m*lda + k] * B[n*ldb + k], for
/// m in [0,M), n in [0,N), k ascending. `ws` provides the pack panel.
void gemm_nt(usize M, usize N, usize K, const float* A, usize lda, const float* B, usize ldb,
             float* C, usize ldc, const float* bias, Bias bias_kind, Workspace& ws);

/// General-stride variant: C[m*crs + n*ccs]. Conv2d uses it with the patch
/// matrix as A and the (once-packed) weight as B, writing the NCHW output
/// slice directly via crs=1, ccs=oh*ow.
void gemm_nt_strided(usize M, usize N, usize K, const float* A, usize lda, const float* B,
                     usize ldb, float* C, usize crs, usize ccs, const float* bias,
                     Bias bias_kind, Workspace& ws);

/// Floats needed to pack an N x K B operand (8-row interleaved panels).
[[nodiscard]] usize packed_b_size(usize N, usize K);

/// Packs B (N rows, K-major, leading dim ldb) into sequential 8-row panels.
void pack_b(const float* B, usize ldb, usize N, usize K, float* packed);

/// gemm_nt_strided against a pre-packed B -- lets Conv2d pack its weights
/// once per forward call instead of once per sample.
void gemm_nt_prepacked(usize M, usize N, usize K, const float* A, usize lda,
                       const float* packed_b, float* C, usize crs, usize ccs,
                       const float* bias, Bias bias_kind);

/// Forces Dense/Conv2d forward onto the retained naive reference kernels.
/// Process-global A/B switch for bench_inference; not used on any hot path.
void set_force_naive(bool on);
[[nodiscard]] bool force_naive();

/// Sets the GEMM team size. 0 (the default) resolves to the DNND_THREADS env
/// var, else to std::thread::hardware_concurrency(). Process-global; outputs
/// are byte-identical for every value.
void set_threads(usize n);
/// The resolved team size (always >= 1).
[[nodiscard]] usize threads();
/// The raw set_threads() value (0 = auto) so callers can save and restore it.
[[nodiscard]] usize threads_setting();

/// RAII save/restore of the process-global team-size setting (the
/// set_threads analogue of the SIMD override guards): captures
/// threads_setting() at construction and restores it on scope exit, so a
/// temporary override cannot leak past an exception thrown in between.
class [[nodiscard]] ThreadsGuard {
 public:
  ThreadsGuard() : saved_(threads_setting()) {}
  ~ThreadsGuard() { set_threads(saved_); }
  ThreadsGuard(const ThreadsGuard&) = delete;
  ThreadsGuard& operator=(const ThreadsGuard&) = delete;

 private:
  usize saved_;
};

/// Team size a parallel entry point should use for `items` independent work
/// units totalling `macs` multiply-accumulates: min(threads(), items), or 1
/// when threading is off, the work is too small to amortise a region, or the
/// caller is already inside a pool region (nested parallelism runs serial).
[[nodiscard]] usize plan_teams(usize items, usize macs);

/// Packs an N x K int8 code matrix with dequant-on-load: the packed panel
/// holds float(q) * scale, which is bit-for-bit the materialization
/// arithmetic of quant::QuantizedModel -- so a GEMM over this panel is
/// byte-identical to one over the packed dequantized float weights.
void pack_b_int8(const i8* q, usize N, usize K, float scale, float* packed);

/// Flat position of B element (n, k) inside the packed-panel layout; the
/// fused int8 path uses it to update a single panel float per bit flip.
[[nodiscard]] usize packed_index(usize n, usize k, usize K);

// ---- true-integer int8 path (DNND_INT8 regime) ------------------------------
// B stays in raw int8 codes (no dequantization), A is quantized per call to
// symmetric int8 with round-to-nearest (ties away from zero) and saturation
// to [-127, 127], accumulation is exact int32, and the epilogue requantizes
// back to the float activation domain: C = float(acc) * (act_scale *
// weight_scale) + bias. Panels group codes in k-QUADS of 4 (zero-padded) so
// the AVX2 maddubs kernel reads one 32-byte line per 8x4 block; see
// nn/simd.hpp for the layout and the no-saturation argument.

/// K rounded up to a whole number of 4-code quads (the int8 panel/row pitch).
[[nodiscard]] usize padded_k_int8(usize K);

/// Bytes needed to pack an N x K int8 code matrix into quad panels.
[[nodiscard]] usize packed_b_int8_size(usize N, usize K);

/// Packs raw codes (N rows, K-major) into sequential 8-row quad panels,
/// zero-padding ragged rows and the K remainder.
void pack_b_q8(const i8* q, usize N, usize K, i8* packed);

/// Flat position of code (n, k) inside the pack_b_q8 layout; the quantized
/// model uses it to update a single panel byte per bit flip.
[[nodiscard]] usize packed_q8_index(usize n, usize k, usize K);

/// Symmetric activation scale for an M x K float operand: amax / 127, with
/// the all-zero guard (scale 1.0) the weight quantizer also uses.
[[nodiscard]] float activation_scale(const float* A, usize M, usize K, usize lda);

/// Flat position of A element (m, k) inside the QUAD-MAJOR packed A panel
/// the int8 GEMM consumes: all M rows' codes for one k-quad are contiguous
/// ((k/4)*M*4 + m*4 + k%4), so a register tile's eight row-quads are one
/// 32-byte line -- and producers (quantize_activations, the conv code
/// gather) emit the panel with sequential stores. Panel size is
/// M * padded_k_int8(K) bytes, pad codes zero.
[[nodiscard]] usize packed_a_q8_index(usize m, usize k, usize M);

/// Quantizes M rows of A (row stride lda) into the quad-major packed A
/// panel: round-to-nearest ties-away, saturated to [-127, 127] -- the clamp
/// that keeps the maddubs pair sums inside int16. Pad codes are zero.
void quantize_activations(const float* A, usize M, usize K, usize lda, float scale, i8* out);

/// Integer GEMM over a packed_a_q8 A panel and a pack_b_q8 B panel:
/// C[m*crs + n*ccs] = float(sum_k A8[m,k] * B8[n,k]) * requant + bias_init.
/// Same output-partitioned threading as gemm_nt_prepacked; int32 accumulation
/// is exact, so results are byte-identical across team sizes and ISAs.
void gemm_nt_int8(usize M, usize N, usize K, const i8* A, const i8* packed_b, float* C,
                  usize crs, usize ccs, const float* bias, Bias bias_kind, float requant);

}  // namespace gemm
}  // namespace dnnd::nn
