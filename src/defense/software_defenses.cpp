#include "defense/software_defenses.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>

#include "nn/trainer.hpp"

namespace dnnd::defense::software {

// ------------------------------------------------------ BinaryWeightModel --

BinaryWeightModel::BinaryWeightModel(nn::Model& model) : model_(model) {
  for (auto& p : model_.quantizable_params()) {
    BinLayer bl;
    bl.value = p.value;
    bl.grad = p.grad;
    double mean_abs = 0.0;
    for (usize i = 0; i < p.value->size(); ++i) mean_abs += std::fabs((*p.value)[i]);
    mean_abs /= static_cast<double>(p.value->size() == 0 ? 1 : p.value->size());
    bl.alpha = static_cast<float>(mean_abs);
    bl.sign.resize(p.value->size());
    for (usize i = 0; i < p.value->size(); ++i) {
      bl.sign[i] = (*p.value)[i] >= 0.0f ? i8{1} : i8{-1};
    }
    layers_.push_back(std::move(bl));
  }
  materialize();
}

u64 BinaryWeightModel::total_bits() const {
  u64 n = 0;
  for (const auto& l : layers_) n += l.sign.size();
  return n;
}

bool BinaryWeightModel::is_positive(usize layer, usize index) const {
  return layers_.at(layer).sign.at(index) > 0;
}

void BinaryWeightModel::flip(usize layer, usize index) {
  BinLayer& l = layers_.at(layer);
  l.sign.at(index) = static_cast<i8>(-l.sign[index]);
  (*l.value)[index] = l.alpha * static_cast<float>(l.sign[index]);
}

void BinaryWeightModel::materialize() {
  for (auto& l : layers_) {
    for (usize i = 0; i < l.sign.size(); ++i) {
      (*l.value)[i] = l.alpha * static_cast<float>(l.sign[i]);
    }
  }
}

BinaryAttackResult attack_binary(BinaryWeightModel& bm, const nn::Tensor& attack_x,
                                 const std::vector<u32>& attack_y, usize max_flips,
                                 double stop_accuracy, usize layers_evaluated) {
  BinaryAttackResult result;
  nn::Model& model = bm.model();
  result.final_accuracy = model.accuracy(attack_x, attack_y);
  for (usize flip = 0; flip < max_flips; ++flip) {
    model.zero_grad();
    model.loss_and_grad(attack_x, attack_y);
    // Per-layer best sign flip by first-order gain g * (-2 alpha s).
    struct Cand {
      usize layer, index;
      double gain;
    };
    std::vector<Cand> cands;
    for (usize l = 0; l < bm.num_layers(); ++l) {
      const nn::Tensor& g = bm.grad(l);
      double best_gain = 0.0;
      usize best_idx = 0;
      for (usize i = 0; i < bm.layer_size(l); ++i) {
        const double s = bm.is_positive(l, i) ? 1.0 : -1.0;
        const double gain = g[i] * (-2.0 * bm.alpha(l) * s);
        if (gain > best_gain) {
          best_gain = gain;
          best_idx = i;
        }
      }
      if (best_gain > 0.0) cands.push_back({l, best_idx, best_gain});
    }
    if (cands.empty()) break;
    std::sort(cands.begin(), cands.end(),
              [](const Cand& a, const Cand& b) { return a.gain > b.gain; });
    if (layers_evaluated > 0 && cands.size() > layers_evaluated) {
      cands.resize(layers_evaluated);
    }
    const double base_loss = model.loss(attack_x, attack_y);
    double best_loss = base_loss;
    i64 best = -1;
    for (usize c = 0; c < cands.size(); ++c) {
      bm.flip(cands[c].layer, cands[c].index);
      const double loss = model.loss(attack_x, attack_y);
      bm.flip(cands[c].layer, cands[c].index);
      if (loss > best_loss) {
        best_loss = loss;
        best = static_cast<i64>(c);
      }
    }
    if (best < 0) break;
    bm.flip(cands[static_cast<usize>(best)].layer, cands[static_cast<usize>(best)].index);
    result.flips += 1;
    result.final_accuracy = model.accuracy(attack_x, attack_y);
    if (result.final_accuracy <= stop_accuracy) {
      result.reached_stop = true;
      break;
    }
  }
  return result;
}

// ------------------------------------------- piecewise clustering finetune --

double piecewise_clustering_finetune(nn::Model& model, const nn::SplitDataset& data,
                                     double lambda, usize epochs, double lr, u64 seed) {
  nn::SgdConfig sgd;
  sgd.lr = lr;
  sgd.momentum = 0.9;
  sgd.weight_decay = 0.0;  // the clustering term replaces weight decay
  nn::SgdOptimizer opt(model, sgd);
  sys::Rng rng(seed);
  const usize batch = 32;
  const usize n = data.train.size();
  std::vector<usize> order(n);
  std::iota(order.begin(), order.end(), usize{0});
  for (usize epoch = 0; epoch < epochs; ++epoch) {
    rng.shuffle(order);
    for (usize start = 0; start + batch <= n; start += batch) {
      std::vector<usize> idx(order.begin() + static_cast<isize>(start),
                             order.begin() + static_cast<isize>(start + batch));
      auto [x, y] = data.train.gather(idx);
      model.zero_grad();
      model.loss_and_grad(x, y, /*train_mode=*/true);
      // Add the piece-wise clustering gradient: pull each weight toward the
      // nearer of {-mu, +mu}.
      for (auto& p : model.quantizable_params()) {
        double mu = 0.0;
        for (usize i = 0; i < p.value->size(); ++i) mu += std::fabs((*p.value)[i]);
        mu /= static_cast<double>(p.value->size() == 0 ? 1 : p.value->size());
        for (usize i = 0; i < p.value->size(); ++i) {
          const float w = (*p.value)[i];
          const float target = w >= 0.0f ? static_cast<float>(mu) : static_cast<float>(-mu);
          (*p.grad)[i] += static_cast<float>(lambda) * (w - target);
        }
      }
      opt.step();
    }
  }
  return nn::evaluate(model, data.test);
}

double binary_finetune(nn::Model& model, const nn::SplitDataset& data, usize epochs,
                       double lr, u64 seed) {
  nn::SgdConfig sgd;
  sgd.lr = lr;
  sgd.momentum = 0.9;
  sgd.weight_decay = 0.0;
  nn::SgdOptimizer opt(model, sgd);
  sys::Rng rng(seed);
  const usize batch = 32;
  const usize n = data.train.size();
  std::vector<usize> order(n);
  std::iota(order.begin(), order.end(), usize{0});
  auto quantizable = model.quantizable_params();
  std::vector<nn::Tensor> latent;
  for (auto& p : quantizable) latent.push_back(*p.value);
  auto binarize_from_latent = [&]() {
    for (usize l = 0; l < quantizable.size(); ++l) {
      double mean_abs = 0.0;
      for (usize i = 0; i < latent[l].size(); ++i) mean_abs += std::fabs(latent[l][i]);
      mean_abs /= static_cast<double>(latent[l].size() == 0 ? 1 : latent[l].size());
      for (usize i = 0; i < latent[l].size(); ++i) {
        (*quantizable[l].value)[i] =
            static_cast<float>(latent[l][i] >= 0.0f ? mean_abs : -mean_abs);
      }
    }
  };
  for (usize epoch = 0; epoch < epochs; ++epoch) {
    rng.shuffle(order);
    for (usize start = 0; start + batch <= n; start += batch) {
      std::vector<usize> idx(order.begin() + static_cast<isize>(start),
                             order.begin() + static_cast<isize>(start + batch));
      auto [x, y] = data.train.gather(idx);
      binarize_from_latent();          // forward/backward at binary weights
      model.zero_grad();
      model.loss_and_grad(x, y, /*train_mode=*/true);
      for (usize l = 0; l < quantizable.size(); ++l) {
        *quantizable[l].value = latent[l];  // straight-through: step the latent
      }
      opt.step();
      for (usize l = 0; l < quantizable.size(); ++l) latent[l] = *quantizable[l].value;
    }
  }
  binarize_from_latent();  // deploy binary weights
  return nn::evaluate(model, data.test);
}

// ------------------------------------------------------ ReconstructionGuard --

ReconstructionGuard::ReconstructionGuard(const quant::QuantizedModel& qm, double percentile) {
  for (usize l = 0; l < qm.num_layers(); ++l) {
    const auto& layer = qm.layer(l);
    std::vector<i32> mags;
    mags.reserve(layer.size());
    for (i8 q : layer.q) mags.push_back(std::abs(static_cast<i32>(q)));
    std::sort(mags.begin(), mags.end());
    const usize k = std::min<usize>(
        mags.size() - 1,
        static_cast<usize>(percentile * static_cast<double>(mags.size())));
    bounds_.push_back(static_cast<i8>(std::max<i32>(1, mags.empty() ? 127 : mags[k])));
  }
}

usize ReconstructionGuard::apply(quant::QuantizedModel& qm) const {
  assert(bounds_.size() == qm.num_layers());
  usize corrected = 0;
  for (usize l = 0; l < qm.num_layers(); ++l) {
    const i32 bound = bounds_[l];
    auto& layer = qm.layer(l);
    for (usize i = 0; i < layer.size(); ++i) {
      const i32 q = layer.q[i];
      if (q > bound || q < -bound) {
        qm.set_q(l, i, static_cast<i8>(std::clamp<i32>(q, -bound, bound)));
        ++corrected;
      }
    }
  }
  return corrected;
}

}  // namespace dnnd::defense::software
