// Workspace: a per-model scratch arena for the inference engine.
//
// The engine's hot paths (Sequential::forward_cached / forward_from /
// backward_cached and the GEMM lowering of Dense/Conv2d) never allocate their
// own tensors. Instead every piece of scratch -- per-layer activations, the
// im2col patch buffer, the GEMM pack panel, gradient intermediates, composite
// layer temporaries -- lives in the model's Workspace and is reused across
// iterations. Slots are keyed by (owner pointer, kind, index), created lazily
// on first use, and retain their storage forever after, so the steady state
// (same shapes, same workspace) performs zero heap allocations.
//
// Threaded forwards extend the arena with per-team-slot col/pack buffers:
// reserve_team(teams) (serial, before entering a pool region) sizes the
// buffer tables, after which each team slot grows and reuses only its own
// buffer -- the steady state stays zero-allocation at any fixed team size.
// The threaded im2col gather uses the complementary pattern: one SHARED
// buffer, fully sized before the region (grow() is not safe inside one),
// into which team slots write disjoint patch-row ranges.
//
// `alloc_events()` counts arena growth (new slots, buffer grows); a constant
// count across iterations is the observable zero-allocation invariant that
// tests/test_inference_engine.cpp pins down.
#pragma once

#include <atomic>
#include <unordered_map>
#include <vector>

#include "nn/tensor.hpp"

namespace dnnd::nn {

class Workspace {
 public:
  /// Separate key spaces so one owner can hold activations, gradients, and
  /// scratch under the same indices without collisions.
  enum class SlotKind : u32 { kActivation = 0, kGradient = 1, kScratch = 2 };

  Workspace() : col_(1), pack_(1), qa_(1), qx_(1) {}

  /// The (lazily created) tensor slot for (owner, kind, idx). References stay
  /// valid for the workspace lifetime (node-based map). NOT safe to call from
  /// inside a pool region.
  Tensor& slot(const void* owner, SlotKind kind, usize idx);

  /// Pre-sizes the per-team-slot buffer tables so col_buffer/pack_buffer can
  /// be called concurrently with team_slot < teams. Must run OUTSIDE any pool
  /// region (growing the tables is not thread-safe; growing one slot's buffer
  /// from its own thread is).
  void reserve_team(usize teams);

  /// im2col patch buffer of at least `n` floats for one team slot; grows
  /// monotonically. Distinct team slots own distinct buffers.
  float* col_buffer(usize n, usize team_slot = 0) { return grow(col_[team_slot], n); }

  /// GEMM panel-pack buffer of at least `n` floats; distinct from the col
  /// buffer because both are live during a lowered convolution.
  float* pack_buffer(usize n, usize team_slot = 0) { return grow(pack_[team_slot], n); }

  /// Quantized-activation buffer of at least `n` int8 codes (the int8 GEMM's
  /// A operand); same per-team-slot discipline as col_buffer.
  i8* qa_buffer(usize n, usize team_slot = 0) { return grow(qa_[team_slot], n); }

  /// Quantized-input buffer of at least `n` int8 codes: one conv sample's
  /// input slice, quantized once, from which the int8 im2col gathers codes
  /// directly. Live alongside qa_buffer (which receives the gathered
  /// patches), hence a separate table.
  i8* qx_buffer(usize n, usize team_slot = 0) { return grow(qx_[team_slot], n); }

  /// Arena growth events so far (slot creations and buffer grows). Constant
  /// across steady-state iterations == no new arena structures. Pair with
  /// slot_capacity() -- which sees reallocation of the slot tensors'
  /// storage -- for the full zero-allocation invariant.
  [[nodiscard]] usize alloc_events() const {
    return alloc_events_.load(std::memory_order_relaxed);
  }

  /// Total allocated floats across slot tensors and the col/pack/qa buffers
  /// (int8 bytes counted as quarter-floats, rounded up).
  [[nodiscard]] usize slot_capacity() const {
    usize total = 0;
    for (const auto& b : col_) total += b.capacity();
    for (const auto& b : pack_) total += b.capacity();
    for (const auto& b : qa_) total += (b.capacity() + 3) / 4;
    for (const auto& b : qx_) total += (b.capacity() + 3) / 4;
    for (const auto& [key, t] : slots_) total += t.capacity();
    return total;
  }

  [[nodiscard]] usize slot_count() const { return slots_.size(); }

 private:
  struct Key {
    const void* owner;
    u32 kind;
    u64 idx;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    usize operator()(const Key& k) const {
      u64 h = reinterpret_cast<u64>(k.owner);
      h = (h ^ (static_cast<u64>(k.kind) << 56) ^ k.idx) * 0x9e3779b97f4a7c15ULL;
      return static_cast<usize>(h ^ (h >> 32));
    }
  };

  template <typename T>
  T* grow(std::vector<T>& buf, usize n) {
    if (buf.size() < n) {
      buf.resize(n);
      alloc_events_.fetch_add(1, std::memory_order_relaxed);
    }
    return buf.data();
  }

  std::unordered_map<Key, Tensor, KeyHash> slots_;
  std::vector<std::vector<float>> col_;   ///< indexed by team slot
  std::vector<std::vector<float>> pack_;  ///< indexed by team slot
  std::vector<std::vector<i8>> qa_;       ///< indexed by team slot
  std::vector<std::vector<i8>> qx_;       ///< indexed by team slot
  std::atomic<usize> alloc_events_{0};
};

}  // namespace dnnd::nn
