// Neural-network layers with full forward/backward passes. Every layer caches
// what its backward pass needs during forward; backward accumulates parameter
// gradients (call Model::zero_grad between batches) and returns dL/dx.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/tensor.hpp"

namespace dnnd::nn {

/// A named view of one parameter tensor and its gradient buffer.
/// `quantizable` marks weights the BFA threat model targets (conv/dense
/// weights); biases and batch-norm affine parameters are not quantized,
/// matching the paper's 8-bit weight-only quantization.
struct ParamRef {
  std::string name;
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
  bool quantizable = false;
};

/// Abstract layer.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output. `train` toggles batch-statistics behaviour
  /// (BatchNorm) -- it does not change caching; backward is always legal
  /// after forward.
  virtual Tensor forward(const Tensor& x, bool train) = 0;

  /// Propagates dL/dy -> dL/dx, accumulating parameter gradients.
  virtual Tensor backward(const Tensor& dy) = 0;

  /// Parameter views (empty for stateless layers).
  virtual std::vector<ParamRef> params() { return {}; }

  /// Non-parameter persistent state (BatchNorm running statistics). Needed
  /// to snapshot/restore a model completely.
  virtual std::vector<Tensor*> state_tensors() { return {}; }

  [[nodiscard]] virtual std::string name() const = 0;
};

/// Fully-connected layer: y = x W^T + b, W: {out, in}.
class Dense final : public Layer {
 public:
  Dense(usize in_features, usize out_features, sys::Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& dy) override;
  std::vector<ParamRef> params() override;
  [[nodiscard]] std::string name() const override { return "dense"; }

  [[nodiscard]] usize in_features() const { return in_; }
  [[nodiscard]] usize out_features() const { return out_; }

  Tensor weight;  ///< {out, in}
  Tensor bias;    ///< {out}
  Tensor dweight;
  Tensor dbias;

 private:
  usize in_, out_;
  Tensor x_cache_;
};

/// 2-D convolution, square kernel, NCHW. y = conv(x, W) + b.
class Conv2d final : public Layer {
 public:
  Conv2d(usize in_ch, usize out_ch, usize kernel, usize stride, usize padding, sys::Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& dy) override;
  std::vector<ParamRef> params() override;
  [[nodiscard]] std::string name() const override { return "conv2d"; }

  [[nodiscard]] usize out_size(usize in_size) const { return (in_size + 2 * pad_ - k_) / stride_ + 1; }

  Tensor weight;  ///< {out_ch, in_ch, k, k}
  Tensor bias;    ///< {out_ch}
  Tensor dweight;
  Tensor dbias;

 private:
  usize in_ch_, out_ch_, k_, stride_, pad_;
  Tensor x_cache_;
};

/// Elementwise max(x, 0).
class ReLU final : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& dy) override;
  [[nodiscard]] std::string name() const override { return "relu"; }

 private:
  Tensor mask_;  ///< 1 where x > 0
};

/// 2x2 max pooling with stride 2 (the only configuration the zoo needs).
class MaxPool2d final : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& dy) override;
  [[nodiscard]] std::string name() const override { return "maxpool2d"; }

 private:
  std::vector<usize> argmax_;  ///< flat input index chosen per output element
  std::vector<usize> in_shape_;
};

/// Global average pooling: {N,C,H,W} -> {N,C}.
class GlobalAvgPool final : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& dy) override;
  [[nodiscard]] std::string name() const override { return "gap"; }

 private:
  std::vector<usize> in_shape_;
};

/// {N,C,H,W} -> {N, C*H*W}.
class Flatten final : public Layer {
 public:
  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& dy) override;
  [[nodiscard]] std::string name() const override { return "flatten"; }

 private:
  std::vector<usize> in_shape_;
};

/// Per-channel batch normalisation for NCHW tensors with running statistics.
class BatchNorm2d final : public Layer {
 public:
  explicit BatchNorm2d(usize channels, float momentum = 0.1f, float eps = 1e-5f);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& dy) override;
  std::vector<ParamRef> params() override;
  std::vector<Tensor*> state_tensors() override { return {&running_mean, &running_var}; }
  [[nodiscard]] std::string name() const override { return "batchnorm2d"; }

  Tensor gamma, beta, dgamma, dbeta;
  Tensor running_mean, running_var;

 private:
  usize channels_;
  float momentum_, eps_;
  // caches for backward
  Tensor x_hat_;
  std::vector<float> batch_mean_, batch_inv_std_;
  std::vector<usize> in_shape_;
};

/// Executes contained layers in order. Used standalone and as the body of
/// residual blocks.
class Sequential final : public Layer {
 public:
  Sequential() = default;

  void add(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }
  [[nodiscard]] usize layer_count() const { return layers_.size(); }
  [[nodiscard]] Layer& layer(usize i) { return *layers_.at(i); }

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& dy) override;
  std::vector<ParamRef> params() override;
  std::vector<Tensor*> state_tensors() override;
  [[nodiscard]] std::string name() const override { return "sequential"; }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
};

/// ResNet basic block: y = relu(F(x) + shortcut(x)), where F is
/// conv-bn-relu-conv-bn and shortcut is identity or a 1x1 projection.
class ResidualBlock final : public Layer {
 public:
  /// stride > 1 or in_ch != out_ch selects a projection shortcut.
  ResidualBlock(usize in_ch, usize out_ch, usize stride, sys::Rng& rng);

  Tensor forward(const Tensor& x, bool train) override;
  Tensor backward(const Tensor& dy) override;
  std::vector<ParamRef> params() override;
  std::vector<Tensor*> state_tensors() override;
  [[nodiscard]] std::string name() const override { return "resblock"; }

 private:
  Sequential body_;
  std::unique_ptr<Sequential> projection_;  ///< null for identity shortcut
  Tensor x_cache_;
  Tensor sum_mask_;  ///< relu mask of (F(x) + shortcut)
};

}  // namespace dnnd::nn
