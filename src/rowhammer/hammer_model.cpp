#include "rowhammer/hammer_model.hpp"

#include <algorithm>
#include <cassert>

namespace dnnd::rowhammer {

using dram::RowAddr;

HammerModel::HammerModel(dram::DramDevice& device, HammerModelConfig cfg)
    : device_(device), cfg_(cfg) {
  device_.add_listener(this);
}

HammerModel::~HammerModel() { device_.remove_listener(this); }

HammerModel::RowState& HammerModel::state_for(u64 flat_id, const RowAddr& row) {
  auto it = rows_.find(flat_id);
  if (it == rows_.end()) it = rows_.emplace(flat_id, RowState{}).first;
  RowState& st = it->second;
  if (!st.cells_built) {
    build_cells(st, row);
    st.cells_built = true;
  }
  return st;
}

void HammerModel::build_cells(RowState& st, const RowAddr& row) const {
  const auto& geo = device_.config().geo;
  const u64 rid = flat_row_id(geo, row);
  const u64 t_rh = device_.config().t_rh;
  for (usize col = 0; col < geo.row_bytes; ++col) {
    for (u32 bit = 0; bit < 8; ++bit) {
      const u64 h = sys::hash_combine(cfg_.seed, rid, col, bit);
      if (sys::hash_to_unit(h) >= cfg_.p_vulnerable) continue;
      VulnerableCell cell;
      cell.col = col;
      cell.bit = bit;
      // A second, independent hash decides the personal threshold and the
      // flip direction so they are uncorrelated with the selection draw.
      const u64 h2 = sys::hash_combine(h, 0x7e57ab1eULL);
      cell.threshold =
          t_rh + static_cast<u64>(sys::hash_to_unit(h2) * cfg_.threshold_spread *
                                  static_cast<double>(t_rh));
      cell.one_to_zero = (h2 & 1) != 0;
      st.cells.push_back(cell);
    }
  }
  std::sort(st.cells.begin(), st.cells.end(),
            [](const VulnerableCell& a, const VulnerableCell& b) {
              return a.threshold < b.threshold;
            });
  st.discharged.assign(st.cells.size(), false);
}

void HammerModel::bump_and_maybe_flip(const RowAddr& victim) {
  const auto& geo = device_.config().geo;
  RowState& st = state_for(flat_row_id(geo, victim), victim);
  st.disturbance += 1;
  while (st.next_candidate < st.cells.size() &&
         st.cells[st.next_candidate].threshold <= st.disturbance) {
    const usize i = st.next_candidate++;
    if (st.discharged[i]) continue;
    const VulnerableCell& cell = st.cells[i];
    const u8 value = device_.peek(victim, cell.col);
    const bool bit_set = (value >> cell.bit) & 1;
    if (cfg_.directional) {
      // A cell only leaks toward its discharged state.
      if (cell.one_to_zero && !bit_set) continue;
      if (!cell.one_to_zero && bit_set) continue;
    }
    device_.force_flip_bit(victim, cell.col, cell.bit);
    st.discharged[i] = true;
    flips_injected_ += 1;
  }
}

void HammerModel::on_activate(const RowAddr& row, Picoseconds /*now*/) {
  const auto& cfg = device_.config();
  // Disturb neighbours within the blast radius, confined to the subarray
  // (sense-amplifier stripes isolate disturbance across subarray boundaries).
  for (u32 d = 1; d <= cfg.blast_radius; ++d) {
    if (row.row >= d) {
      bump_and_maybe_flip(RowAddr{row.bank, row.subarray, row.row - d});
    }
    if (row.row + d < cfg.geo.rows_per_subarray) {
      bump_and_maybe_flip(RowAddr{row.bank, row.subarray, row.row + d});
    }
  }
}

void HammerModel::on_restore(const RowAddr& row, Picoseconds /*now*/, dram::RestoreKind kind) {
  const auto it = rows_.find(flat_row_id(device_.config().geo, row));
  if (it == rows_.end()) return;
  RowState& st = it->second;
  st.disturbance = 0;
  st.next_candidate = 0;
  if (kind == dram::RestoreKind::kRewrite) {
    // Fresh data recharges every cell; previously-flipped cells can flip again.
    std::fill(st.discharged.begin(), st.discharged.end(), false);
  }
}

u64 HammerModel::disturbance(const RowAddr& row) const {
  const auto it = rows_.find(flat_row_id(device_.config().geo, row));
  return it == rows_.end() ? 0 : it->second.disturbance;
}

const std::vector<VulnerableCell>& HammerModel::vulnerable_cells(const RowAddr& row) {
  return state_for(flat_row_id(device_.config().geo, row), row).cells;
}

std::optional<VulnerableCell> HammerModel::cell_info(const RowAddr& row, usize col, u32 bit) {
  for (const auto& c : vulnerable_cells(row)) {
    if (c.col == col && c.bit == bit) return c;
  }
  return std::nullopt;
}

}  // namespace dnnd::rowhammer
