// Logical-to-physical row indirection maintained by swap-based mitigations
// (DNN-Defender, RRS, SRS, SHADOW). Software addresses logical rows; swaps
// retarget them to different physical rows. The white-box attacker of the
// paper's threat model can observe/track this mapping for *target* rows.
#pragma once

#include <vector>

#include "dram/dram_config.hpp"

namespace dnnd::dram {

class RowRemapper {
 public:
  explicit RowRemapper(const Geometry& geo);

  /// Physical location currently backing a logical row.
  [[nodiscard]] RowAddr to_physical(const RowAddr& logical) const;
  /// Logical row currently stored at a physical location.
  [[nodiscard]] RowAddr to_logical(const RowAddr& physical) const;

  /// Swaps the physical backing of two logical rows (after the defense has
  /// moved the data with RowClone ops).
  void swap_logical(const RowAddr& a, const RowAddr& b);

  /// True if the mapping is still the identity everywhere (fresh device).
  [[nodiscard]] bool is_identity() const;

  /// Number of swap_logical calls performed.
  [[nodiscard]] u64 swap_count() const { return swaps_; }

 private:
  Geometry geo_;
  std::vector<u32> log_to_phys_;
  std::vector<u32> phys_to_log_;
  u64 swaps_ = 0;
};

}  // namespace dnnd::dram
