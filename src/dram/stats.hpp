// Command, timing, and energy statistics accumulated by a DramDevice.
#pragma once

#include <string>

#include "sys/types.hpp"

namespace dnnd::dram {

/// Per-command counters plus accumulated busy time and energy.
struct Stats {
  u64 n_act = 0;
  u64 n_pre = 0;
  u64 n_rd_burst = 0;
  u64 n_wr_burst = 0;
  u64 n_ref = 0;
  u64 n_aap = 0;       ///< RowClone FPM intra-subarray copies
  u64 n_psm_copy = 0;  ///< RowClone PSM inter-bank copies
  u64 n_bitflips = 0;  ///< RowHammer-induced flips injected into cells

  Picoseconds busy_time = 0;   ///< total time advanced by commands
  Femtojoules energy = 0;      ///< total dynamic energy

  void reset() { *this = Stats{}; }

  /// Multi-line human-readable dump.
  [[nodiscard]] std::string summary() const;
};

}  // namespace dnnd::dram
