#include "attack/vwa.hpp"

#include <cstdio>
#include <stdexcept>

namespace dnnd::attack {

VwaLimitedAttack::VwaLimitedAttack(quant::QuantizedModel& qm, nn::Tensor attack_x,
                                   std::vector<u32> attack_y, VwaLimitedConfig cfg)
    : cfg_(cfg),
      objective_(/*allow_fallback=*/false),
      engine_(qm, std::move(attack_x), std::move(attack_y), objective_,
              {cfg.candidates_per_layer, cfg.layers_evaluated}) {
  if (cfg_.flip_budget == 0) {
    throw std::invalid_argument("vwa-limited: flip_budget must be nonzero");
  }
}

double VwaLimitedAttack::stop_threshold() const {
  return cfg_.stop_accuracy > 0.0 ? cfg_.stop_accuracy
                                  : 1.05 / static_cast<double>(engine_.num_classes());
}

std::optional<VwaFlip> VwaLimitedAttack::step(const quant::BitSkipSet& skip) {
  auto es = engine_.step(skip);
  if (!es.has_value()) return std::nullopt;
  VwaFlip rec;
  rec.loc = es->loc;
  rec.loss_before = es->objective_before;
  rec.loss_after = es->objective_after;
  rec.batch_accuracy_after = es->best.accuracy;
  if (cfg_.verbose) {
    std::printf("[vwa] flip layer=%zu idx=%zu bit=%u loss %.4f -> %.4f acc=%.3f\n",
                rec.loc.layer, rec.loc.index, rec.loc.bit, rec.loss_before, rec.loss_after,
                rec.batch_accuracy_after);
  }
  return rec;
}

VwaLimitedResult VwaLimitedAttack::run(const quant::BitSkipSet& skip) {
  VwaLimitedResult result;
  result.initial_batch_accuracy =
      engine_.qm().model().evaluate_batch(engine_.x(), engine_.y()).accuracy;
  result.final_batch_accuracy = result.initial_batch_accuracy;
  const double stop = stop_threshold();
  // Budget exhaustion is the default outcome: the loop only overrides it
  // when it ends for a different reason.
  result.outcome = VwaOutcome::kBudgetExhausted;
  for (usize i = 0; i < cfg_.flip_budget; ++i) {
    auto rec = step(skip);
    if (!rec.has_value()) {
      result.outcome = VwaOutcome::kCandidatesExhausted;
      break;
    }
    result.final_batch_accuracy = rec->batch_accuracy_after;
    result.flips.push_back(*rec);
    if (rec->batch_accuracy_after <= stop) {
      result.outcome = VwaOutcome::kReachedStop;
      break;
    }
  }
  return result;
}

}  // namespace dnnd::attack
