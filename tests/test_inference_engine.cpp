// Inference-engine behaviour: incremental re-evaluation (forward_from) is
// bitwise identical to a full fresh forward for a flip in ANY layer, the
// fused int8 resident-panel path is byte-identical to the dequantize-
// materialize path across arbitrary flip sequences, the incremental
// evaluation helpers match their full-pass counterparts, results are
// byte-identical at every GEMM team size, and the workspace arena reaches a
// zero-allocation steady state -- serial and threaded.
#include <gtest/gtest.h>

#include <cstring>
#include <thread>

#include "models/model_zoo.hpp"
#include "nn/gemm.hpp"
#include "nn/layers.hpp"
#include "nn/model.hpp"
#include "quant/quantizer.hpp"
#include "test_util.hpp"

namespace dnnd::nn {
namespace {

using testutil::ThreadsGuard;

/// Small conv+dense model covering conv, batchnorm, pooling, and dense layers.
std::unique_ptr<Model> make_conv_dense(sys::Rng& rng) {
  auto m = std::make_unique<Model>("tiny_conv_dense");
  m->add(std::make_unique<Conv2d>(1, 4, 3, 1, 1, rng));
  m->add(std::make_unique<BatchNorm2d>(4));
  m->add(std::make_unique<ReLU>());
  m->add(std::make_unique<MaxPool2d>());
  m->add(std::make_unique<Conv2d>(4, 6, 3, 1, 1, rng));
  m->add(std::make_unique<ReLU>());
  m->add(std::make_unique<Flatten>());
  m->add(std::make_unique<Dense>(6 * 3 * 3, 16, rng));
  m->add(std::make_unique<ReLU>());
  m->add(std::make_unique<Dense>(16, 4, rng));
  return m;
}

Tensor random_input(usize n, sys::Rng& rng) {
  Tensor x({n, 1, 6, 6});
  for (usize i = 0; i < x.size(); ++i) x[i] = static_cast<float>(rng.normal(0.0, 1.0));
  return x;
}

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

TEST(ForwardFrom, BitwiseIdenticalToFullForwardForEveryLayer) {
  sys::Rng rng(41);
  auto m = make_conv_dense(rng);
  const Tensor x = random_input(3, rng);
  quant::QuantizedModel qm(*m);

  for (usize l = 0; l < qm.num_layers(); ++l) {
    m->forward_cached(x);  // clean cache
    const quant::BitLocation loc{l, qm.layer(l).size() / 2, 6};
    qm.flip(loc);
    const Tensor incremental = m->forward_from(qm.layer(l).net_layer);
    const Tensor full = m->forward_cached(x);  // fresh full pass, same weights
    EXPECT_TRUE(bitwise_equal(incremental, full))
        << "quant layer " << l << " (net layer " << qm.layer(l).net_layer << ")";
    qm.flip(loc);  // revert
  }
}

TEST(ForwardFrom, OutOfOrderProbesStayExact) {
  // The BFA evaluates candidates in estimated-gain order, which jumps between
  // layers arbitrarily WITHOUT refreshing the cache between probes -- so the
  // clean-frontier restart path (recomputing from an earlier, still-clean
  // activation when a probe lands above the frontier) must keep every probe
  // equal to a from-scratch forward. A twin model with identical weights
  // provides the pristine reference; the probed model's cache is never
  // re-cleaned inside the loop.
  sys::Rng rng_a(42), rng_b(42);
  auto probed = make_conv_dense(rng_a);
  auto twin = make_conv_dense(rng_b);
  sys::Rng xrng(43);
  const Tensor x = random_input(2, xrng);
  quant::QuantizedModel qm(*probed);
  quant::QuantizedModel qm_twin(*twin);
  sys::Rng order_rng(7);

  probed->forward_cached(x);
  for (int probe = 0; probe < 12; ++probe) {
    const usize l = order_rng.uniform(qm.num_layers());
    const quant::BitLocation loc{l, order_rng.uniform(qm.layer(l).size()),
                                 static_cast<u32>(order_rng.uniform(8))};
    qm.flip(loc);
    const Tensor incremental = probed->forward_from(qm.layer(l).net_layer);
    qm.flip(loc);  // revert; cache intentionally left dirty beyond layer l

    qm_twin.flip(loc);
    const Tensor full = twin->forward_cached(x);
    qm_twin.flip(loc);
    EXPECT_TRUE(bitwise_equal(incremental, full)) << "probe " << probe << " layer " << l;
  }
}

TEST(ForwardFrom, LayerZeroEqualsFullForward) {
  sys::Rng rng(43);
  auto m = make_conv_dense(rng);
  const Tensor x = random_input(2, rng);
  const Tensor full = m->forward_cached(x);
  const Tensor from0 = m->forward_from(0);
  EXPECT_TRUE(bitwise_equal(full, from0));
}

TEST(ForwardFrom, ThrowsWithoutPriorForward) {
  sys::Rng rng(44);
  auto m = make_conv_dense(rng);
  EXPECT_THROW(m->forward_from(0), std::logic_error);
}

TEST(EvaluateBatch, MatchesSeparateLossAndAccuracy) {
  sys::Rng rng(45);
  auto m = make_conv_dense(rng);
  const Tensor x = random_input(4, rng);
  const std::vector<u32> y{0, 3, 1, 2};
  const BatchEval ev = m->evaluate_batch(x, y);
  EXPECT_EQ(ev.loss, m->loss(x, y));
  EXPECT_EQ(ev.accuracy, m->accuracy(x, y));
  const auto pred = argmax_rows(m->forward(x));
  usize hits = 0;
  for (usize i = 0; i < pred.size(); ++i) hits += pred[i] == y[i] ? 1 : 0;
  EXPECT_EQ(ev.correct, hits);
}

TEST(Workspace, ZeroAllocSteadyStateForwardBackward) {
  sys::Rng rng(46);
  auto m = make_conv_dense(rng);
  const Tensor x = random_input(3, rng);
  const std::vector<u32> y{1, 0, 2};

  // Warm up: first pass creates every slot and sizes every buffer.
  m->zero_grad();
  m->loss_and_grad(x, y);
  m->evaluate_batch(x, y);
  const usize warm = m->workspace().alloc_events();
  const usize warm_capacity = m->workspace().slot_capacity();
  const float* logits_storage = m->forward_cached(x).data();
  ASSERT_GT(warm, 0u);

  for (int iter = 0; iter < 5; ++iter) {
    m->zero_grad();
    m->loss_and_grad(x, y);
    m->evaluate_batch(x, y);
  }
  EXPECT_EQ(m->workspace().alloc_events(), warm)
      << "steady-state forward/backward grew the workspace arena";
  // Reallocation of slot storage would escape alloc_events(); the capacity
  // total and the stable logits pointer pin it down.
  EXPECT_EQ(m->workspace().slot_capacity(), warm_capacity)
      << "steady-state iterations reallocated slot tensor storage";
  EXPECT_EQ(m->forward_cached(x).data(), logits_storage)
      << "steady-state forward moved the cached logits storage";
}

TEST(Workspace, ZeroAllocAcrossIncrementalProbes) {
  sys::Rng rng(47);
  auto m = make_conv_dense(rng);
  const Tensor x = random_input(2, rng);
  quant::QuantizedModel qm(*m);

  m->forward_cached(x);
  for (usize l = 0; l < qm.num_layers(); ++l) {
    qm.flip({l, 0, 7});
    m->forward_from(qm.layer(l).net_layer);
    qm.flip({l, 0, 7});
  }
  const usize warm = m->workspace().alloc_events();
  m->forward_cached(x);
  for (usize l = 0; l < qm.num_layers(); ++l) {
    qm.flip({l, 0, 7});
    m->forward_from(qm.layer(l).net_layer);
    qm.flip({l, 0, 7});
  }
  EXPECT_EQ(m->workspace().alloc_events(), warm);
}

TEST(FusedInt8, ProbeForwardMatchesMaterializedPathAcrossRandomFlips) {
  // Twin models with identical weights: `fused` keeps the resident packed
  // panels attached (a flip updates one code + one panel float), `plain` has
  // them detached so every forward re-packs the materialized float weights.
  // Every probe -- including out-of-order flip/unflip sequences riding
  // forward_from over a deliberately dirty cache -- must agree byte-for-byte.
  sys::Rng rng_a(51), rng_b(51);
  auto fused_model = make_conv_dense(rng_a);
  auto plain_model = make_conv_dense(rng_b);
  sys::Rng xrng(52);
  const Tensor x = random_input(3, xrng);
  quant::QuantizedModel fused(*fused_model);
  quant::QuantizedModel plain(*plain_model);
  plain.set_fused(false);
  ASSERT_TRUE(fused.fused());
  ASSERT_FALSE(plain.fused());

  EXPECT_TRUE(bitwise_equal(fused_model->forward_cached(x), plain_model->forward_cached(x)));

  sys::Rng order(53);
  for (int probe = 0; probe < 16; ++probe) {
    const usize l = order.uniform(fused.num_layers());
    const quant::BitLocation loc{l, order.uniform(fused.layer(l).size()),
                                 static_cast<u32>(order.uniform(8))};
    fused.flip(loc);
    plain.flip(loc);
    const Tensor a = fused_model->forward_from(fused.layer(l).net_layer);
    const Tensor b = plain_model->forward_from(plain.layer(l).net_layer);
    EXPECT_TRUE(bitwise_equal(a, b)) << "probe " << probe << " layer " << l;
    if (probe % 3 != 0) {  // leave some flips committed, unflip the rest
      fused.flip(loc);
      plain.flip(loc);
    }
  }
  // Restore-to-snapshot (the diff-aware path) must land both models on
  // byte-identical logits again.
  const auto snap = fused.snapshot();
  plain.restore(snap);
  fused.restore(snap);
  EXPECT_TRUE(bitwise_equal(fused_model->forward_from(0), plain_model->forward_from(0)));
}

TEST(FusedInt8, SetFusedTogglesWithoutChangingResults) {
  sys::Rng rng(54);
  auto m = make_conv_dense(rng);
  sys::Rng xrng(55);
  const Tensor x = random_input(2, xrng);
  quant::QuantizedModel qm(*m);
  const Tensor with_fused = m->forward_cached(x);
  qm.set_fused(false);
  const Tensor without = m->forward_cached(x);
  qm.set_fused(true);
  const Tensor again = m->forward_cached(x);
  EXPECT_TRUE(bitwise_equal(with_fused, without));
  EXPECT_TRUE(bitwise_equal(with_fused, again));
}

TEST(IncrementalEval, MatchesFullEvaluationAfterFlipBursts) {
  // evaluate_batch_incremental must equal a from-scratch evaluate_batch after
  // arbitrary committed flips (same batch -> frontier reuse), and fall back
  // to a full forward transparently when the batch changes between calls.
  sys::Rng rng_a(56), rng_b(56);
  auto probed = make_conv_dense(rng_a);
  auto twin = make_conv_dense(rng_b);
  sys::Rng xrng(57);
  const Tensor x = random_input(4, xrng);
  const Tensor other = random_input(4, xrng);
  const std::vector<u32> y{0, 2, 1, 3};
  quant::QuantizedModel qm(*probed);
  quant::QuantizedModel qm_twin(*twin);

  sys::Rng order(58);
  for (int burst = 0; burst < 6; ++burst) {
    for (int f = 0; f < 3; ++f) {
      const usize l = order.uniform(qm.num_layers());
      const quant::BitLocation loc{l, order.uniform(qm.layer(l).size()),
                                   static_cast<u32>(order.uniform(8))};
      qm.flip(loc);
      qm_twin.flip(loc);
    }
    const BatchEval inc = probed->evaluate_batch_incremental(x, y);
    const BatchEval full = twin->evaluate_batch(x, y);
    EXPECT_EQ(inc.loss, full.loss) << "burst " << burst;
    EXPECT_EQ(inc.accuracy, full.accuracy) << "burst " << burst;
    if (burst % 2 == 1) {
      // Interleave an evaluation on a different batch: the next incremental
      // call sees a foreign cache and must take the full-forward fallback.
      const BatchEval inc_other = probed->evaluate_batch_incremental(other, y);
      const BatchEval full_other = twin->evaluate_batch(other, y);
      EXPECT_EQ(inc_other.loss, full_other.loss);
    }
  }
}

TEST(IncrementalEval, LossAndGradMatchesFullBitwise) {
  // loss_and_grad_incremental re-forwards only the stale suffix; the loss AND
  // every accumulated gradient buffer must be byte-identical to the
  // full-forward loss_and_grad of an identical twin.
  sys::Rng rng_a(59), rng_b(59);
  auto probed = make_conv_dense(rng_a);
  auto twin = make_conv_dense(rng_b);
  sys::Rng xrng(60);
  const Tensor x = random_input(3, xrng);
  const std::vector<u32> y{1, 3, 0};
  quant::QuantizedModel qm(*probed);
  quant::QuantizedModel qm_twin(*twin);

  // Prime the cache, then commit a flip and compare a full BFA-style
  // gradient pass.
  probed->zero_grad();
  probed->loss_and_grad_incremental(x, y);
  sys::Rng order(61);
  for (int step = 0; step < 5; ++step) {
    const usize l = order.uniform(qm.num_layers());
    const quant::BitLocation loc{l, order.uniform(qm.layer(l).size()),
                                 static_cast<u32>(order.uniform(8))};
    qm.flip(loc);
    qm_twin.flip(loc);
    probed->zero_grad();
    twin->zero_grad();
    const double li = probed->loss_and_grad_incremental(x, y).loss;
    const double lf = twin->loss_and_grad(x, y).loss;
    EXPECT_EQ(li, lf) << "step " << step;
    auto pp = probed->params();
    auto tp = twin->params();
    ASSERT_EQ(pp.size(), tp.size());
    for (usize i = 0; i < pp.size(); ++i) {
      EXPECT_TRUE(bitwise_equal(*pp[i].grad, *tp[i].grad))
          << "grad " << pp[i].name << " step " << step;
    }
  }
}

TEST(Engine, LogitsAndGradientsByteIdenticalAtEveryTeamSize) {
  // Whole-model sweep over GEMM team sizes on shapes big enough to cross the
  // parallel work threshold: forward logits and backward gradients must be
  // byte-identical to the serial run (threading partitions outputs only).
  ThreadsGuard guard;
  const usize hw = std::max<usize>(1, std::thread::hardware_concurrency());
  auto make = [] { return models::make_by_name("vgg11", 10, /*seed=*/3); };
  sys::Rng xrng(62);
  Tensor x({8, 3, 12, 12});
  for (usize i = 0; i < x.size(); ++i) x[i] = static_cast<float>(xrng.normal(0.0, 1.0));
  const std::vector<u32> y{0, 1, 2, 3, 4, 5, 6, 7};

  gemm::set_threads(1);
  auto serial = make();
  serial->zero_grad();
  const double serial_loss = serial->loss_and_grad(x, y).loss;
  const Tensor serial_logits = serial->forward_cached(x);
  auto serial_params = serial->params();

  for (const usize teams : {usize{2}, usize{4}, hw}) {
    gemm::set_threads(teams);
    auto threaded = make();
    threaded->zero_grad();
    const double loss = threaded->loss_and_grad(x, y).loss;
    EXPECT_EQ(loss, serial_loss) << "teams=" << teams;
    EXPECT_TRUE(bitwise_equal(threaded->forward_cached(x), serial_logits))
        << "teams=" << teams;
    auto params = threaded->params();
    ASSERT_EQ(params.size(), serial_params.size());
    for (usize i = 0; i < params.size(); ++i) {
      EXPECT_TRUE(bitwise_equal(*params[i].grad, *serial_params[i].grad))
          << "teams=" << teams << " grad " << params[i].name;
    }
  }
}

TEST(Workspace, ZeroAllocSteadyStateUnderThreadedProbes) {
  // The threaded arena invariant: once per-team-slot scratch is warm, probe
  // loops at a fixed team size grow nothing -- alloc events and total float
  // capacity both stay flat.
  ThreadsGuard guard;
  gemm::set_threads(4);
  auto m = models::make_by_name("vgg11", 10, /*seed=*/4);
  sys::Rng rng(63);
  Tensor x({8, 3, 12, 12});
  for (usize i = 0; i < x.size(); ++i) x[i] = static_cast<float>(rng.normal(0.0, 1.0));
  const std::vector<u32> y{0, 1, 2, 3, 4, 5, 6, 7};
  quant::QuantizedModel qm(*m);

  auto probe_round = [&] {
    m->zero_grad();
    m->loss_and_grad_incremental(x, y);
    for (usize l = 0; l < qm.num_layers(); ++l) {
      qm.flip({l, 1, 7});
      m->forward_from(qm.layer(l).net_layer);
      qm.flip({l, 1, 7});
    }
    m->evaluate_batch_incremental(x, y);
  };
  probe_round();
  probe_round();  // second pass: every slot/buffer sized for the worst case
  const usize warm = m->workspace().alloc_events();
  const usize warm_capacity = m->workspace().slot_capacity();
  for (int iter = 0; iter < 4; ++iter) probe_round();
  EXPECT_EQ(m->workspace().alloc_events(), warm)
      << "threaded steady-state probes grew the workspace arena";
  EXPECT_EQ(m->workspace().slot_capacity(), warm_capacity)
      << "threaded steady-state probes reallocated arena storage";
}

TEST(FusedInt8, LoadStateDropsResidentPanelsInsteadOfGoingStale) {
  // Direct weight mutation bypassing the QuantizedModel (Model::load_state)
  // must not leave inference reading a stale resident panel: the guard drops
  // the panels and invalidates the cache, so both the plain forward and the
  // incremental evaluation honor the restored weights.
  sys::Rng rng(64);
  auto m = make_conv_dense(rng);
  sys::Rng xrng(65);
  const Tensor x = random_input(2, xrng);
  const std::vector<u32> y{1, 0};
  const auto clean = m->save_state();
  const Tensor clean_logits = m->forward_cached(x);
  const double clean_loss = m->evaluate_batch(x, y).loss;

  quant::QuantizedModel qm(*m);  // attaches panels, quantizes the weights
  m->evaluate_batch_incremental(x, y);  // cache now holds quantized activations
  m->load_state(clean);
  EXPECT_TRUE(bitwise_equal(m->forward_cached(x), clean_logits))
      << "forward read a stale resident panel after load_state";
  EXPECT_EQ(m->evaluate_batch_incremental(x, y).loss, clean_loss)
      << "incremental evaluation reused a stale cache after load_state";
}

TEST(ForwardFrom, WorksOnResNetBlocks) {
  // Residual blocks nest Sequentials inside the top-level net; a flip inside
  // a block must map to the block's top-level index.
  auto m = models::make_resnet20_sub(4, 11);
  sys::Rng rng(48);
  Tensor x({2, 3, 8, 8});
  for (usize i = 0; i < x.size(); ++i) x[i] = static_cast<float>(rng.normal(0.0, 1.0));
  quant::QuantizedModel qm(*m);

  for (usize l = 0; l < qm.num_layers(); l += 3) {
    m->forward_cached(x);
    qm.flip({l, qm.layer(l).size() / 3, 5});
    const Tensor incremental = m->forward_from(qm.layer(l).net_layer);
    const Tensor full = m->forward_cached(x);
    EXPECT_TRUE(bitwise_equal(incremental, full)) << "quant layer " << l;
    qm.flip({l, qm.layer(l).size() / 3, 5});
  }
}

}  // namespace
}  // namespace dnnd::nn
