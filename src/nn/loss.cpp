#include "nn/loss.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace dnnd::nn {

namespace {
/// Writes softmax probabilities of one row into `probs` (stable form).
void row_softmax(const float* logits, usize c, std::vector<double>& probs) {
  double mx = logits[0];
  for (usize j = 1; j < c; ++j) mx = std::max(mx, static_cast<double>(logits[j]));
  double denom = 0.0;
  for (usize j = 0; j < c; ++j) {
    probs[j] = std::exp(static_cast<double>(logits[j]) - mx);
    denom += probs[j];
  }
  for (usize j = 0; j < c; ++j) probs[j] /= denom;
}

/// Per-thread softmax scratch so the loss helpers allocate nothing in steady
/// state (the campaign harness evaluates models from many threads at once).
std::vector<double>& probs_scratch(usize c) {
  thread_local std::vector<double> probs;
  if (probs.size() < c) probs.resize(c);
  return probs;
}

usize argmax_row(const float* row, usize c) {
  usize best = 0;
  for (usize j = 1; j < c; ++j) {
    if (row[j] > row[best]) best = j;
  }
  return best;
}

/// Shared per-row evaluation: softmax into `probs`, cross-entropy term for
/// label `y`, and the argmax prediction. Single source of the clamp and
/// stabilization all loss entry points must agree on bit-for-bit.
double row_loss_and_pred(const float* row, usize c, u32 y, std::vector<double>& probs,
                         usize& pred) {
  row_softmax(row, c, probs);
  pred = argmax_row(row, c);
  return -std::log(std::max(probs[y], 1e-12));
}

double row_loss_and_hit(const float* row, usize c, u32 y, std::vector<double>& probs,
                        bool& hit) {
  usize pred = 0;
  const double loss = row_loss_and_pred(row, c, y, probs, pred);
  hit = pred == y;
  return loss;
}
}  // namespace

void softmax_cross_entropy_into(const Tensor& logits, const std::vector<u32>& labels,
                                LossResult& out) {
  assert(logits.rank() == 2);
  const usize n = logits.dim(0), c = logits.dim(1);
  assert(labels.size() == n);
  out.dlogits.resize({n, c});
  out.correct = 0;
  std::vector<double>& probs = probs_scratch(c);
  double total = 0.0;
  for (usize i = 0; i < n; ++i) {
    const float* row = logits.data() + i * c;
    const u32 y = labels[i];
    assert(y < c);
    bool hit = false;
    total += row_loss_and_hit(row, c, y, probs, hit);
    if (hit) out.correct += 1;
    for (usize j = 0; j < c; ++j) {
      out.dlogits.at2(i, j) =
          static_cast<float>((probs[j] - (j == y ? 1.0 : 0.0)) / static_cast<double>(n));
    }
  }
  out.loss = total / static_cast<double>(n);
}

LossResult softmax_cross_entropy(const Tensor& logits, const std::vector<u32>& labels) {
  LossResult out;
  softmax_cross_entropy_into(logits, labels, out);
  return out;
}

double softmax_cross_entropy_loss(const Tensor& logits, const std::vector<u32>& labels) {
  assert(logits.rank() == 2);
  const usize n = logits.dim(0), c = logits.dim(1);
  std::vector<double>& probs = probs_scratch(c);
  double total = 0.0;
  for (usize i = 0; i < n; ++i) {
    bool hit = false;
    total += row_loss_and_hit(logits.data() + i * c, c, labels[i], probs, hit);
  }
  return total / static_cast<double>(n);
}

BatchEval evaluate_logits(const Tensor& logits, const std::vector<u32>& labels) {
  assert(logits.rank() == 2);
  const usize n = logits.dim(0), c = logits.dim(1);
  assert(labels.size() == n);
  std::vector<double>& probs = probs_scratch(c);
  BatchEval out;
  double total = 0.0;
  for (usize i = 0; i < n; ++i) {
    bool hit = false;
    total += row_loss_and_hit(logits.data() + i * c, c, labels[i], probs, hit);
    if (hit) out.correct += 1;
  }
  out.loss = total / static_cast<double>(n == 0 ? 1 : n);
  out.accuracy = static_cast<double>(out.correct) / static_cast<double>(n == 0 ? 1 : n);
  return out;
}

void evaluate_logits_per_class(const Tensor& logits, const std::vector<u32>& labels,
                               u32 source, u32 target, PerClassEval& out) {
  assert(logits.rank() == 2);
  const usize n = logits.dim(0), c = logits.dim(1);
  assert(labels.size() == n);
  out.class_correct.resize(c);
  out.class_total.resize(c);
  std::fill(out.class_correct.begin(), out.class_correct.end(), usize{0});
  std::fill(out.class_total.begin(), out.class_total.end(), usize{0});
  out.rows = n;
  out.correct = 0;
  out.source_rows = 0;
  out.source_to_target = 0;
  out.other_rows = 0;
  out.other_correct = 0;
  std::vector<double>& probs = probs_scratch(c);
  double total = 0.0;
  for (usize i = 0; i < n; ++i) {
    const u32 y = labels[i];
    assert(y < c);
    usize pred = 0;
    total += row_loss_and_pred(logits.data() + i * c, c, y, probs, pred);
    const bool hit = pred == y;
    out.correct += hit;
    out.class_total[y] += 1;
    out.class_correct[y] += hit;
    const bool is_source = source == kAllSources ? y != target : y == source;
    if (is_source) {
      out.source_rows += 1;
      out.source_to_target += pred == target;
    } else {
      out.other_rows += 1;
      out.other_correct += hit;
    }
  }
  out.loss = total / static_cast<double>(n == 0 ? 1 : n);
}

double targeted_cross_entropy(const Tensor& logits, const std::vector<u32>& labels,
                              u32 source, u32 target, double stealth_weight,
                              Tensor* dlogits) {
  assert(logits.rank() == 2);
  const usize n = logits.dim(0), c = logits.dim(1);
  assert(labels.size() == n);
  // Group sizes first: each group's terms are averaged over ITS row count, so
  // a lone source row weighs as much as the whole keep-others term.
  usize n_src = 0;
  for (usize i = 0; i < n; ++i) {
    const u32 y = labels[i];
    n_src += source == kAllSources ? y != target : y == source;
  }
  const usize n_other = n - n_src;
  if (dlogits != nullptr) dlogits->resize({n, c});
  std::vector<double>& probs = probs_scratch(c);
  double total = 0.0;
  for (usize i = 0; i < n; ++i) {
    const u32 y = labels[i];
    assert(y < c);
    const bool is_source = source == kAllSources ? y != target : y == source;
    // Source rows pull toward the target label; the rest hold their true
    // label, scaled by the stealth weight.
    const u32 goal = is_source ? target : y;
    const double weight =
        is_source ? 1.0 / static_cast<double>(n_src)
                  : stealth_weight / static_cast<double>(n_other == 0 ? 1 : n_other);
    row_softmax(logits.data() + i * c, c, probs);
    total += weight * -std::log(std::max(probs[goal], 1e-12));
    if (dlogits != nullptr) {
      for (usize j = 0; j < c; ++j) {
        dlogits->at2(i, j) =
            static_cast<float>(weight * (probs[j] - (j == goal ? 1.0 : 0.0)));
      }
    }
  }
  return total;
}

std::vector<u32> argmax_rows(const Tensor& logits) {
  const usize n = logits.dim(0), c = logits.dim(1);
  std::vector<u32> out(n);
  for (usize i = 0; i < n; ++i) {
    out[i] = static_cast<u32>(argmax_row(logits.data() + i * c, c));
  }
  return out;
}

}  // namespace dnnd::nn
