#include "nn/gemm.hpp"

#include <algorithm>
#include <atomic>

#include "nn/workspace.hpp"

namespace dnnd::nn::gemm {

namespace {

std::atomic<bool> g_force_naive{false};

/// B rows interleaved per panel: panel[k * kNr + r] = B[(n0 + r) * ldb + k].
/// With 8 independent accumulators the inner k loop reads one contiguous
/// 8-float line per step -- vectorizable across the accumulators while each
/// accumulator still sees its terms in ascending k.
constexpr usize kNr = 8;

/// M tile: bounds the live span of A rows streamed against one packed panel.
constexpr usize kMc = 128;

void pack_panel(const float* B, usize ldb, usize rows, usize K, float* panel) {
  for (usize k = 0; k < K; ++k) {
    float* dst = panel + k * kNr;
    for (usize r = 0; r < rows; ++r) dst[r] = B[r * ldb + k];
    for (usize r = rows; r < kNr; ++r) dst[r] = 0.0f;
  }
}

inline float bias_for(const float* bias, Bias kind, usize n) {
  return kind == Bias::kPerCol ? bias[n] : 0.0f;
}

}  // namespace

void set_force_naive(bool on) { g_force_naive.store(on, std::memory_order_relaxed); }
bool force_naive() { return g_force_naive.load(std::memory_order_relaxed); }

usize packed_b_size(usize N, usize K) { return ((N + kNr - 1) / kNr) * kNr * K; }

void pack_b(const float* B, usize ldb, usize N, usize K, float* packed) {
  for (usize n0 = 0; n0 < N; n0 += kNr) {
    pack_panel(B + n0 * ldb, ldb, std::min(kNr, N - n0), K, packed + n0 * K);
  }
}

void gemm_nt_prepacked(usize M, usize N, usize K, const float* A, usize lda,
                       const float* packed_b, float* C, usize crs, usize ccs,
                       const float* bias, Bias bias_kind) {
  if (M == 0 || N == 0) return;
  constexpr usize kMr = 8;  // A rows per register tile
  for (usize n0 = 0; n0 < N; n0 += kNr) {
    const usize rows = std::min(kNr, N - n0);
    const float* panel = packed_b + n0 * K;
    for (usize m0 = 0; m0 < M; m0 += kMc) {
      const usize m1 = std::min(M, m0 + kMc);
      usize m = m0;
      // 8x8 register tile: one panel line feeds eight A rows per k step (the
      // shape GCC vectorizes best here). Each of the 64 accumulators is still
      // a single float advanced in ascending k, so the tiling cannot change
      // any output bit.
      for (; m + kMr <= m1; m += kMr) {
        const float* a[kMr];
        for (usize i = 0; i < kMr; ++i) a[i] = A + (m + i) * lda;
        float acc[kMr][kNr];
        for (usize i = 0; i < kMr; ++i) {
          for (usize r = 0; r < kNr; ++r) {
            acc[i][r] = bias_for(bias, bias_kind, n0 + r < N ? n0 + r : N - 1);
          }
        }
        const float* p = panel;
        for (usize k = 0; k < K; ++k, p += kNr) {
          for (usize i = 0; i < kMr; ++i) {
            const float av = a[i][k];
            for (usize r = 0; r < kNr; ++r) acc[i][r] += av * p[r];
          }
        }
        for (usize i = 0; i < kMr; ++i) {
          float* c = C + (m + i) * crs + n0 * ccs;
          for (usize r = 0; r < rows; ++r) c[r * ccs] = acc[i][r];
        }
      }
      for (; m < m1; ++m) {
        const float* a = A + m * lda;
        float acc[kNr];
        for (usize r = 0; r < kNr; ++r) {
          acc[r] = bias_for(bias, bias_kind, n0 + r < N ? n0 + r : N - 1);
        }
        const float* p = panel;
        for (usize k = 0; k < K; ++k, p += kNr) {
          const float av = a[k];
          for (usize r = 0; r < kNr; ++r) acc[r] += av * p[r];
        }
        float* c = C + m * crs + n0 * ccs;
        for (usize r = 0; r < rows; ++r) c[r * ccs] = acc[r];
      }
    }
  }
}

void gemm_nt_strided(usize M, usize N, usize K, const float* A, usize lda, const float* B,
                     usize ldb, float* C, usize crs, usize ccs, const float* bias,
                     Bias bias_kind, Workspace& ws) {
  if (M == 0 || N == 0) return;
  float* packed = ws.pack_buffer(packed_b_size(N, K));
  pack_b(B, ldb, N, K, packed);
  gemm_nt_prepacked(M, N, K, A, lda, packed, C, crs, ccs, bias, bias_kind);
}

void gemm_nt(usize M, usize N, usize K, const float* A, usize lda, const float* B, usize ldb,
             float* C, usize ldc, const float* bias, Bias bias_kind, Workspace& ws) {
  gemm_nt_strided(M, N, K, A, lda, B, ldb, C, ldc, 1, bias, bias_kind, ws);
}

}  // namespace dnnd::nn::gemm
