// Fig. 1(a): RowHammer thresholds across DRAM generations, plus a simulated
// hammer-count-to-first-flip per generation to confirm the fault model
// honours each preset.
#include "bench_util.hpp"
#include "rowhammer/attacker.hpp"

using namespace dnnd;

int main() {
  bench::banner("Fig. 1(a) -- RowHammer threshold trend across DRAM generations",
                "paper Fig. 1(a), data from Kim et al. ISCA'20");

  sys::Table table({"Generation", "T_RH (paper)", "first flip at (sim ACTs)",
                    "vs DDR3(new)"});
  const double ddr3_new = dram::rowhammer_threshold(dram::DeviceGen::kDdr3New);
  for (auto gen : {dram::DeviceGen::kDdr3Old, dram::DeviceGen::kDdr3New,
                   dram::DeviceGen::kDdr4Old, dram::DeviceGen::kDdr4New,
                   dram::DeviceGen::kLpddr4Old, dram::DeviceGen::kLpddr4New}) {
    dram::DramConfig cfg = dram::DramConfig::preset(gen);
    cfg.geo = dram::Geometry{1, 2, 32, 256};  // tiny device: fast hammer loop
    dram::DramDevice dev(cfg);
    rowhammer::HammerModelConfig hcfg;
    hcfg.p_vulnerable = 0.2;
    rowhammer::HammerModel model(dev, hcfg);
    rowhammer::HammerAttacker attacker(dev, sys::Rng(1));
    const dram::RowAddr victim{0, 0, 10};
    std::vector<u8> ones(cfg.geo.row_bytes, 0xFF);
    dev.write_row(victim, ones);
    // Hammer in bursts until the first flip appears.
    const dram::RowAddr aggs[2] = {{0, 0, 9}, {0, 0, 11}};
    u64 acts = 0;
    const u64 burst = std::max<u64>(64, cfg.t_rh / 64);
    while (model.flips_injected() == 0 && acts < 3ull * cfg.t_rh) {
      attacker.hammer(aggs, burst);
      acts += burst;
    }
    table.add_row({to_string(gen), sys::fmt_count(cfg.t_rh), sys::fmt_count(acts),
                   sys::fmt(ddr3_new / cfg.t_rh, 2) + "x"});
  }
  table.print();
  std::printf(
      "\nShape check (paper): LPDDR4(new) flips with ~4.5x fewer hammers than\n"
      "DDR3(new); the simulated first-flip count tracks each preset's T_RH.\n");
  return 0;
}
