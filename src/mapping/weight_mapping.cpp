#include "mapping/weight_mapping.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

#include "sys/rng.hpp"

namespace dnnd::mapping {

using dram::RowAddr;

WeightMapping::WeightMapping(const quant::QuantizedModel& qm, const dram::DramConfig& cfg,
                             MappingConfig mapping_cfg)
    : cfg_(mapping_cfg), geo_(cfg.geo) {
  // Global weight ordinals per layer.
  usize total = 0;
  for (usize l = 0; l < qm.num_layers(); ++l) {
    layer_offsets_.push_back(total);
    total += qm.layer(l).size();
  }
  layer_offsets_.push_back(total);

  const usize rows_needed = (total + geo_.row_bytes - 1) / geo_.row_bytes;

  // Subarray visit order: all (bank, subarray) pairs, seeded shuffle, so data
  // rows spread unevenly but widely (threat-model assumption 2).
  sys::Rng rng(cfg_.placement_seed);
  std::vector<std::pair<u32, u32>> subarrays;
  for (u32 b = 0; b < geo_.banks; ++b) {
    for (u32 s = 0; s < geo_.subarrays_per_bank; ++s) subarrays.emplace_back(b, s);
  }
  rng.shuffle(subarrays);

  // Within each subarray: usable rows start at a jittered offset and step by
  // 3 when aggressor gaps are requested (weight row + free rows either side).
  const u32 reserved = cfg_.reserved_rows_per_subarray;
  if (reserved + 4 >= geo_.rows_per_subarray) {
    throw std::invalid_argument("WeightMapping: reserved region leaves no usable rows");
  }
  const u32 step = cfg_.leave_aggressor_gaps ? 3 : 1;
  std::vector<u32> next_row(subarrays.size());
  for (usize i = 0; i < subarrays.size(); ++i) {
    next_row[i] = 1 + static_cast<u32>(rng.uniform(step));
  }

  row_index_of_flat_.assign(static_cast<usize>(geo_.total_rows()), -1);
  usize placed = 0;
  usize cursor = 0;
  usize exhausted = 0;
  while (spans_.size() < rows_needed) {
    if (exhausted == subarrays.size()) {
      throw std::invalid_argument("WeightMapping: device too small for model weights");
    }
    const usize si = cursor % subarrays.size();
    cursor++;
    const auto [bank, sub] = subarrays[si];
    const u32 limit = geo_.rows_per_subarray - reserved;
    if (next_row[si] >= limit) {
      ++exhausted;
      continue;
    }
    exhausted = 0;
    const RowAddr row{bank, sub, next_row[si]};
    next_row[si] += step;
    RowSpan span;
    span.row = row;
    span.first_weight = placed;
    span.count = std::min<usize>(geo_.row_bytes, total - placed);
    placed += span.count;
    row_index_of_flat_[static_cast<usize>(flat_row_id(geo_, row))] =
        static_cast<i64>(spans_.size());
    rows_.push_back(row);
    spans_.push_back(span);
  }
}

Placement WeightMapping::locate(usize layer, usize index) const {
  assert(layer + 1 < layer_offsets_.size());
  const usize global = layer_offsets_[layer] + index;
  assert(global < layer_offsets_.back());
  const usize span_idx = global / geo_.row_bytes;
  return Placement{spans_[span_idx].row, global % geo_.row_bytes};
}

const WeightMapping::RowSpan* WeightMapping::span_for(const RowAddr& row) const {
  const i64 idx = row_index_of_flat_[static_cast<usize>(flat_row_id(geo_, row))];
  return idx < 0 ? nullptr : &spans_[static_cast<usize>(idx)];
}

std::optional<WeightLocation> WeightMapping::weight_at(const RowAddr& row, usize col) const {
  const RowSpan* span = span_for(row);
  if (span == nullptr || col >= span->count) return std::nullopt;
  const usize global = span->first_weight + col;
  // Find the layer via the offsets table (upper_bound - 1).
  const auto it = std::upper_bound(layer_offsets_.begin(), layer_offsets_.end(), global);
  const usize layer = static_cast<usize>(it - layer_offsets_.begin()) - 1;
  return WeightLocation{layer, global - layer_offsets_[layer]};
}

usize WeightMapping::weights_in_row(const RowAddr& row) const {
  const RowSpan* span = span_for(row);
  return span == nullptr ? 0 : span->count;
}

void WeightMapping::upload(const quant::QuantizedModel& qm, dram::DramDevice& dev,
                           const dram::RowRemapper& remap) const {
  for (const RowSpan& span : spans_) {
    const RowAddr phys = remap.to_physical(span.row);
    for (usize c = 0; c < span.count; ++c) {
      const auto w = weight_at(span.row, c);
      assert(w.has_value());
      dev.poke(phys, c, static_cast<u8>(qm.get_q(w->layer, w->index)));
    }
  }
}

void WeightMapping::download(quant::QuantizedModel& qm, const dram::DramDevice& dev,
                             const dram::RowRemapper& remap) const {
  for (const RowSpan& span : spans_) {
    const RowAddr phys = remap.to_physical(span.row);
    for (usize c = 0; c < span.count; ++c) {
      const auto w = weight_at(span.row, c);
      assert(w.has_value());
      qm.set_q(w->layer, w->index, static_cast<i8>(dev.peek(phys, c)));
    }
  }
}

}  // namespace dnnd::mapping
