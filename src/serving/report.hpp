// ServingReport: the bench_serving JSON artifact -- one document carrying
// the resolved configuration and one RegimeStats block per serving regime
// (defense off / defense on / defense on + live attack).
//
// to_json() is byte-stable for identical inputs (sys::JsonWriter). The
// strict loader mirrors campaign_from_json: every field is required, and a
// missing or mistyped one names itself and its location instead of loading
// as a plausible-looking report. validate() checks the cross-field
// invariants CI gates on (percentile ordering, throughput positivity,
// admission accounting, histogram consistency).
#pragma once

#include <string>
#include <vector>

#include "serving/server.hpp"

namespace dnnd::serving {

struct ServingReport {
  std::string model;   ///< zoo arch served
  usize threads = 0;   ///< resolved GEMM team size
  std::string simd;    ///< active kernel ISA name
  ServeConfig config;  ///< resolved knobs (post-normalize)
  std::vector<RegimeStats> regimes;

  [[nodiscard]] std::string to_json() const;
};

/// Strict inverse of ServingReport::to_json(); throws sys::JsonParseError
/// on any missing/mistyped field.
ServingReport serving_report_from_json(std::string_view json);

/// Cross-field invariants; throws std::runtime_error naming the first
/// violated one:
///  - at least one regime; regime names unique;
///  - per regime: admitted + dropped == requests, histogram sums to
///    admitted, batch count matches the histogram, p50 <= p99 <= p999,
///    achieved_rps > 0 and latencies_seen == admitted when any request was
///    admitted, accuracies in [0, 1].
void validate_serving_report(const ServingReport& report);

/// The deterministic projection of a report: one line per regime with every
/// byte-gated field (digest, counts, accuracies) and none of the wall-clock
/// ones. Two runs of bench_serving with the same knobs must produce
/// identical projections regardless of DNND_THREADS -- the CI determinism
/// gate diffs exactly this string.
std::string deterministic_projection(const ServingReport& report);

}  // namespace dnnd::serving
