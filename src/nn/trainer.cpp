#include "nn/trainer.hpp"

#include <cstdio>
#include <numeric>

namespace dnnd::nn {

TrainReport train(Model& model, const SplitDataset& data, const TrainConfig& cfg) {
  SgdOptimizer opt(model, cfg.sgd);
  sys::Rng rng(cfg.shuffle_seed);
  const usize n = data.train.size();
  std::vector<usize> order(n);
  std::iota(order.begin(), order.end(), usize{0});

  TrainReport report;
  for (usize epoch = 0; epoch < cfg.epochs; ++epoch) {
    if (epoch > 0 && cfg.decay_every > 0 && epoch % cfg.decay_every == 0) {
      opt.set_lr(opt.lr() * cfg.lr_decay);
    }
    rng.shuffle(order);
    double epoch_loss = 0.0;
    usize batches = 0;
    for (usize start = 0; start + cfg.batch_size <= n; start += cfg.batch_size) {
      std::vector<usize> idx(order.begin() + static_cast<isize>(start),
                             order.begin() + static_cast<isize>(start + cfg.batch_size));
      auto [x, y] = data.train.gather(idx);
      model.zero_grad();
      const LossResult& res = model.loss_and_grad(x, y, /*train_mode=*/true);
      opt.step();
      epoch_loss += res.loss;
      ++batches;
    }
    epoch_loss /= static_cast<double>(batches == 0 ? 1 : batches);
    report.epoch_loss.push_back(epoch_loss);
    if (cfg.verbose) {
      std::printf("[train %s] epoch %zu/%zu loss=%.4f lr=%.4f\n", model.name().c_str(),
                  epoch + 1, cfg.epochs, epoch_loss, opt.lr());
    }
  }
  report.train_accuracy = evaluate(model, data.train);
  report.test_accuracy = evaluate(model, data.test);
  return report;
}

double evaluate(Model& model, const Dataset& data, usize batch_size) {
  const usize n = data.size();
  usize hits = 0;
  for (usize start = 0; start < n; start += batch_size) {
    const usize count = std::min(batch_size, n - start);
    std::vector<usize> idx(count);
    std::iota(idx.begin(), idx.end(), start);
    auto [x, y] = data.gather(idx);
    hits += model.evaluate_batch(x, y).correct;
  }
  return static_cast<double>(hits) / static_cast<double>(n == 0 ? 1 : n);
}

double evaluate_loss(Model& model, const Dataset& data, usize batch_size) {
  const usize n = data.size();
  double total = 0.0;
  usize seen = 0;
  for (usize start = 0; start < n; start += batch_size) {
    const usize count = std::min(batch_size, n - start);
    std::vector<usize> idx(count);
    std::iota(idx.begin(), idx.end(), start);
    auto [x, y] = data.gather(idx);
    total += model.loss(x, y) * static_cast<double>(count);
    seen += count;
  }
  return total / static_cast<double>(seen == 0 ? 1 : seen);
}

}  // namespace dnnd::nn
