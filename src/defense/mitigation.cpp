#include "defense/mitigation.hpp"

// The interface is header-only; this TU anchors the vtable.
namespace dnnd::defense {}
