// Analytic security & performance model of paper Sec. 5.1 (Figs. 8a/8b and
// the power comparison).
//
// Formulas from the paper:
//   T_swap            = 3 x T_AAP                     (T_AAP = 90 ns)
//   hammer window W   = T_ACT x T_RH                  (time to reach T_RH)
//   max swaps / W     = W / T_swap                    (per-bank swap budget)
//   Tn                = W + T_swap x Ns
//   swaps per Tref N  = (Tref / Tn) x Ns
//
// Two quantities are anchored to the paper's reported operating points and
// scaled from first principles (documented in EXPERIMENTS.md):
//   * max BFAs defended: the attacker can launch at most
//     banks x parallel_factor x Tref / (T_ACT x T_RH) hammer campaigns per
//     refresh window (bank-parallel double-sided attack); the paper's
//     7K/14K/28K/55K points at T_RH = 8k/4k/2k/1k fix parallel_factor.
//   * time-to-break: each white-box attempt costs T_ACT x T_RH; the expected
//     number of failed attempts before a scheduling escape is a
//     framework constant K (DNN-Defender's randomized swap chain gives a
//     larger K than SHADOW's deterministic shuffle pool). K is anchored at
//     the paper's T_RH = 4k values (1180 / 894 days); TTB then scales
//     linearly with T_RH, reproducing the figure's 71/142/286/572-day gaps.
#pragma once

#include <string>
#include <vector>

#include "sys/energy_model.hpp"

namespace dnnd::core {

struct SecurityParams {
  sys::LatencyParams timing{};
  sys::EnergyParams energy = sys::EnergyParams::ddr4();
  u32 banks = 16;
  /// Effective attack parallelism beyond bank count (double-sided pairs +
  /// command interleaving); anchored to the paper's max-BFA points.
  double parallel_factor = 2.42;
  /// Expected failed attempts before an escape (anchored at T_RH=4k).
  double k_dd = 0.0;      ///< 0 = derive from the 1180-day anchor
  double k_shadow = 0.0;  ///< 0 = derive from the 894-day anchor
  /// Normal (non-defense) DRAM activity power of the loaded 32GB DIMM; the
  /// defense delta rides on top of this. Calibrated so the DD-vs-SHADOW
  /// total-power gap at T_RH=1k matches the paper's ~1.6%.
  double baseline_traffic_mw = 900.0;
  /// SRS performs controller-level swaps lazily (its design goal is a low
  /// swap rate); swaps per defended campaign, calibrated to the paper's
  /// "3.4x improvement over SRS" power claim. DD/SHADOW act once per
  /// campaign by construction.
  double srs_swaps_per_campaign = 0.128;
};

/// One Fig.-8(a) operating point.
struct SecurityPoint {
  u32 t_rh = 0;
  Picoseconds window = 0;          ///< W = T_ACT x T_RH
  u64 max_swaps_per_window = 0;    ///< W / T_swap
  u64 max_bfa_defended = 0;        ///< attack campaigns defendable per Tref
  double ttb_days_dd = 0.0;        ///< time-to-break, DNN-Defender
  double ttb_days_shadow = 0.0;    ///< time-to-break, SHADOW
};

class SecurityModel {
 public:
  explicit SecurityModel(SecurityParams params = {});

  [[nodiscard]] SecurityPoint analyze(u32 t_rh) const;

  /// Fig. 8(b): defense latency consumed within one Tref when defending
  /// `n_bfas` attack campaigns at threshold `t_rh`. Latency saturates once
  /// n_bfas exceeds the per-window capacity. framework: "dd" or "shadow".
  [[nodiscard]] double latency_per_tref_ms(const std::string& framework, u32 t_rh,
                                           u64 n_bfas) const;

  /// Defense energy spent in one Tref at full defended load (power analysis).
  [[nodiscard]] Femtojoules energy_per_tref(const std::string& framework, u32 t_rh) const;

  /// Average defense power (mW) over a Tref at full load.
  [[nodiscard]] double defense_power_mw(const std::string& framework, u32 t_rh) const;

  /// Total system power (background + defense) in mW -- basis of the paper's
  /// "1.6% power saving vs SHADOW-1k" claim.
  [[nodiscard]] double total_power_mw(const std::string& framework, u32 t_rh) const;

  [[nodiscard]] const SecurityParams& params() const { return params_; }

  /// Per-defended-campaign cost: DD = 3 AAPs; SHADOW = shuffle of both
  /// victims through the reserved row (6 AAPs) + in-DRAM metadata (2 AAPs).
  [[nodiscard]] Picoseconds cost_per_bfa(const std::string& framework) const;

 private:
  SecurityParams params_;
  double k_dd_;
  double k_shadow_;
};

}  // namespace dnnd::core
