#include <gtest/gtest.h>

#include "rowhammer/attacker.hpp"
#include "rowhammer/hammer_model.hpp"

namespace dnnd::rowhammer {
namespace {

using dram::DramConfig;
using dram::DramDevice;
using dram::RowAddr;

DramConfig small_config(u32 t_rh = 1000) {
  DramConfig cfg = DramConfig::sim_small();
  cfg.t_rh = t_rh;
  return cfg;
}

HammerModelConfig dense_cells() {
  HammerModelConfig h;
  h.p_vulnerable = 0.2;  // plenty of flippable cells for small-row tests
  h.threshold_spread = 0.5;
  h.seed = 99;
  return h;
}

class HammerTest : public ::testing::Test {
 protected:
  HammerTest() : dev_(small_config()), model_(dev_, dense_cells()), attacker_(dev_, sys::Rng(5)) {}

  void fill_row(const RowAddr& r, u8 value) {
    std::vector<u8> data(dev_.config().geo.row_bytes, value);
    dev_.write_row(r, data);
  }

  DramDevice dev_;
  HammerModel model_;
  HammerAttacker attacker_;
};

TEST_F(HammerTest, NoFlipsBelowThreshold) {
  fill_row({0, 0, 10}, 0xFF);
  const auto res = attacker_.double_sided({0, 0, 10}, dev_.config().t_rh / 2);
  EXPECT_FALSE(res.any_flip());
  EXPECT_EQ(model_.flips_injected(), 0u);
}

TEST_F(HammerTest, FlipsAppearPastThreshold) {
  fill_row({0, 0, 10}, 0xFF);
  const auto res = attacker_.double_sided({0, 0, 10}, 2 * dev_.config().t_rh);
  EXPECT_TRUE(res.any_flip());
  EXPECT_GT(model_.flips_injected(), 0u);
}

TEST_F(HammerTest, FirstFlipRequiresAtLeastThresholdDisturbance) {
  fill_row({0, 0, 10}, 0xFF);
  // Hammer one ACT at a time; record the count at the first observed flip.
  const RowAddr aggressors[2] = {{0, 0, 9}, {0, 0, 11}};
  u64 acts = 0;
  while (!model_.flips_injected() && acts < 3 * dev_.config().t_rh) {
    attacker_.hammer(aggressors, 2);
    acts += 2;
  }
  ASSERT_GT(model_.flips_injected(), 0u) << "no flip within 3x threshold";
  // Double-sided: each aggressor pair adds 2 disturbances to the victim, so
  // the flip cannot appear before t_rh aggressor ACTs.
  EXPECT_GE(acts, dev_.config().t_rh);
}

TEST_F(HammerTest, DisturbanceConfinedToNeighbors) {
  fill_row({0, 0, 10}, 0xFF);
  fill_row({0, 0, 13}, 0xFF);
  attacker_.double_sided({0, 0, 10}, 2 * dev_.config().t_rh);
  // Row 13 is 2+ rows away from both aggressors (9 and 11): untouched.
  EXPECT_EQ(model_.disturbance({0, 0, 13}), 0u);
  for (u8 b : dev_.peek_row({0, 0, 13})) EXPECT_EQ(b, 0xFF);
}

TEST_F(HammerTest, RefreshResetsProgress) {
  fill_row({0, 0, 10}, 0xFF);
  const RowAddr aggressors[2] = {{0, 0, 9}, {0, 0, 11}};
  // Hammer to 90% of threshold, refresh, hammer another 90%: no flip ever.
  const u64 burst = dev_.config().t_rh * 9 / 10;
  attacker_.hammer(aggressors, burst);
  dev_.refresh_all();
  attacker_.hammer(aggressors, burst);
  EXPECT_EQ(model_.flips_injected(), 0u);
}

TEST_F(HammerTest, RewriteRearmsFlippedCells) {
  fill_row({0, 0, 10}, 0xFF);
  attacker_.double_sided({0, 0, 10}, 2 * dev_.config().t_rh);
  const u64 first = model_.flips_injected();
  ASSERT_GT(first, 0u);
  // Rewriting the row recharges the cells; the same attack flips them again.
  fill_row({0, 0, 10}, 0xFF);
  attacker_.double_sided({0, 0, 10}, 2 * dev_.config().t_rh);
  EXPECT_GT(model_.flips_injected(), first);
}

TEST_F(HammerTest, DirectionalCellsOnlyFlipChargedState) {
  // All-zero row: only anti-cells (0->1) can flip.
  fill_row({0, 0, 20}, 0x00);
  const auto res = attacker_.double_sided({0, 0, 20}, 2 * dev_.config().t_rh);
  for (const auto& f : res.flips) {
    EXPECT_EQ(f.before & (1u << f.bit), 0u) << "flip started from 0";
    EXPECT_NE(f.after & (1u << f.bit), 0u) << "flip went to 1";
  }
}

TEST_F(HammerTest, OnesRowOnlyFlipsToZero) {
  fill_row({0, 0, 30}, 0xFF);
  const auto res = attacker_.double_sided({0, 0, 30}, 2 * dev_.config().t_rh);
  ASSERT_TRUE(res.any_flip());
  for (const auto& f : res.flips) {
    EXPECT_NE(f.before & (1u << f.bit), 0u);
    EXPECT_EQ(f.after & (1u << f.bit), 0u);
  }
}

TEST_F(HammerTest, SingleSidedWeakerThanDoubleSided) {
  fill_row({0, 0, 40}, 0xFF);
  // Same ACT budget: single-sided delivers ~half the disturbance.
  const u64 budget = dev_.config().t_rh + dev_.config().t_rh / 2;
  const auto single = attacker_.single_sided({0, 0, 40}, budget);
  fill_row({0, 0, 40}, 0xFF);
  dev_.refresh_all();
  const auto dbl = attacker_.double_sided({0, 0, 40}, budget);
  EXPECT_GE(dbl.flips.size(), single.flips.size());
  EXPECT_TRUE(dbl.any_flip());
  EXPECT_FALSE(single.any_flip());  // budget < 2x threshold
}

TEST_F(HammerTest, SusceptibilityIsDeterministicPerSeed) {
  DramDevice dev2(small_config());
  HammerModel model2(dev2, dense_cells());
  const auto& a = model_.vulnerable_cells({0, 1, 17});
  const auto& b = model2.vulnerable_cells({0, 1, 17});
  ASSERT_EQ(a.size(), b.size());
  for (usize i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].col, b[i].col);
    EXPECT_EQ(a[i].bit, b[i].bit);
    EXPECT_EQ(a[i].threshold, b[i].threshold);
    EXPECT_EQ(a[i].one_to_zero, b[i].one_to_zero);
  }
}

TEST_F(HammerTest, SusceptibilityDiffersAcrossSeeds) {
  DramDevice dev2(small_config());
  HammerModelConfig other = dense_cells();
  other.seed = 12345;
  HammerModel model2(dev2, other);
  const auto& a = model_.vulnerable_cells({0, 1, 17});
  const auto& b = model2.vulnerable_cells({0, 1, 17});
  // Same density but different cells.
  bool identical = a.size() == b.size();
  if (identical) {
    for (usize i = 0; i < a.size(); ++i) {
      if (a[i].col != b[i].col || a[i].bit != b[i].bit) {
        identical = false;
        break;
      }
    }
  }
  EXPECT_FALSE(identical);
}

TEST_F(HammerTest, VulnerableDensityTracksConfig) {
  usize total = 0, rows = 0;
  for (u32 r = 0; r < 32; ++r) {
    total += model_.vulnerable_cells({1, 0, r}).size();
    ++rows;
  }
  const double density = static_cast<double>(total) /
                         (static_cast<double>(rows) * dev_.config().geo.row_bytes * 8);
  EXPECT_NEAR(density, dense_cells().p_vulnerable, 0.05);
}

TEST_F(HammerTest, ThresholdsWithinSpread) {
  const u64 t_rh = dev_.config().t_rh;
  for (const auto& c : model_.vulnerable_cells({0, 2, 5})) {
    EXPECT_GE(c.threshold, t_rh);
    EXPECT_LE(c.threshold,
              t_rh + static_cast<u64>(dense_cells().threshold_spread * t_rh) + 1);
  }
}

TEST_F(HammerTest, CellInfoFindsKnownCells) {
  const auto& cells = model_.vulnerable_cells({0, 3, 7});
  ASSERT_FALSE(cells.empty());
  const auto info = model_.cell_info({0, 3, 7}, cells[0].col, cells[0].bit);
  ASSERT_TRUE(info.has_value());
  EXPECT_EQ(info->threshold, cells[0].threshold);
  // A (col,bit) beyond the row is never vulnerable.
  EXPECT_FALSE(model_.cell_info({0, 3, 7}, 0, 0).has_value() &&
               cells.size() == 0);
}

TEST_F(HammerTest, TemplatingDiscoversOracleCells) {
  // Templating with a generous budget must discover exactly the cells whose
  // threshold fits in the budget, with correct directions.
  const u64 budget = 2 * dev_.config().t_rh;  // > max threshold (1.5x)
  const auto found = attacker_.template_rows(1, 1, 10, 13, budget);
  for (const auto& e : found) {
    const auto info = model_.cell_info(e.row, e.col, e.bit);
    ASSERT_TRUE(info.has_value())
        << "templating found a cell the oracle does not know: row=" << e.row.row
        << " col=" << e.col << " bit=" << e.bit;
    EXPECT_EQ(info->one_to_zero, e.one_to_zero);
  }
  // And it must find at least the interior cells of the middle probed row.
  usize oracle_cells = model_.vulnerable_cells({1, 1, 11}).size();
  usize found_mid = 0;
  for (const auto& e : found) found_mid += (e.row.row == 11);
  EXPECT_GE(found_mid, oracle_cells / 2);
}

TEST_F(HammerTest, PostActHookFires) {
  u64 hooks = 0;
  attacker_.set_post_act_hook([&] { ++hooks; });
  const RowAddr aggressors[2] = {{0, 0, 3}, {0, 0, 5}};
  attacker_.hammer(aggressors, 100);
  EXPECT_EQ(hooks, 100u);
}

TEST(HammerEdge, TopEdgeVictimFallsBackToLowerAggressor) {
  DramConfig cfg = small_config();
  DramDevice dev(cfg);
  HammerModel model(dev, dense_cells());
  HammerAttacker attacker(dev, sys::Rng(3));
  const u32 last = cfg.geo.rows_per_subarray - 1;
  std::vector<u8> ones(cfg.geo.row_bytes, 0xFF);
  dev.write_row({0, 0, last}, ones);
  // Single-sided alternates aggressor/dummy, so the victim sees one
  // disturbance per two ACTs; 4x T_RH covers the full threshold spread.
  const auto res = attacker.single_sided({0, 0, last}, 4 * cfg.t_rh);
  EXPECT_TRUE(res.any_flip());  // aggressor row last-1 works
}

TEST(HammerEdge, BlastRadiusTwoReachesSecondNeighbor) {
  DramConfig cfg = small_config();
  cfg.blast_radius = 2;
  DramDevice dev(cfg);
  HammerModel model(dev, dense_cells());
  std::vector<u8> ones(cfg.geo.row_bytes, 0xFF);
  dev.write_row({0, 0, 12}, ones);
  // Hammer row 10: victims are 9,11 (d=1) and 8,12 (d=2).
  HammerAttacker attacker(dev, sys::Rng(3));
  const RowAddr aggressors[2] = {{0, 0, 10}, {0, 1, 0}};  // dummy in other subarray
  attacker.hammer(aggressors, 4 * cfg.t_rh);
  EXPECT_GT(model.disturbance({0, 0, 12}), 0u);
}

}  // namespace
}  // namespace dnnd::rowhammer
