#include "core/swap_scheduler.hpp"

#include <sstream>

namespace dnnd::core {

namespace {
std::string step_label(usize swap_index, u32 step) {
  std::ostringstream out;
  switch (step) {
    case 1: out << "copy random (swap " << swap_index + 1 << ")"; break;
    case 2: out << "copy target #" << swap_index + 1; break;
    case 3: out << "copy random back (swap " << swap_index + 1 << ")"; break;
    case 4: out << "copy non-target #" << swap_index + 1; break;
  }
  return out.str();
}
}  // namespace

Timeline build_swap_timeline(usize n_swaps, Picoseconds t_aap, bool pipelined) {
  Timeline tl;
  Picoseconds t = 0;
  auto push = [&](usize swap, u32 step) {
    tl.ops.push_back(TimelineOp{swap, step, t, t + t_aap, step_label(swap, step)});
    t += t_aap;
  };
  for (usize s = 0; s < n_swaps; ++s) {
    if (pipelined) {
      // Swap 0 needs its own step 1 (RNG-selected random row). Later swaps
      // reuse the previous swap's step 4 as their step 1.
      if (s == 0) push(s, 1);
      push(s, 2);
      push(s, 3);
      push(s, 4);  // doubles as step 1 of swap s+1
    } else {
      push(s, 1);
      push(s, 2);
      push(s, 3);
      push(s, 4);
    }
  }
  tl.makespan = t;
  return tl;
}

u64 max_protected_rows(const sys::LatencyParams& timing, u32 t_rh) {
  const Picoseconds window = timing.t_act * static_cast<Picoseconds>(t_rh);
  return static_cast<u64>(window / timing.t_swap());
}

Picoseconds swap_interval_for(usize n_targets, const sys::LatencyParams& timing, u32 t_rh) {
  if (n_targets == 0) return 0;
  const Picoseconds window = timing.t_act * static_cast<Picoseconds>(t_rh);
  const Picoseconds interval = window / static_cast<Picoseconds>(n_targets);
  // Infeasible when swaps would have to overlap (interval below t_swap).
  return interval < timing.t_swap() ? 0 : interval;
}

}  // namespace dnnd::core
