#include "nn/loss.hpp"

#include <cassert>
#include <cmath>

namespace dnnd::nn {

namespace {
/// Writes softmax probabilities of one row into `probs` (stable form).
void row_softmax(const float* logits, usize c, std::vector<double>& probs) {
  double mx = logits[0];
  for (usize j = 1; j < c; ++j) mx = std::max(mx, static_cast<double>(logits[j]));
  double denom = 0.0;
  for (usize j = 0; j < c; ++j) {
    probs[j] = std::exp(static_cast<double>(logits[j]) - mx);
    denom += probs[j];
  }
  for (usize j = 0; j < c; ++j) probs[j] /= denom;
}
}  // namespace

LossResult softmax_cross_entropy(const Tensor& logits, const std::vector<u32>& labels) {
  assert(logits.rank() == 2);
  const usize n = logits.dim(0), c = logits.dim(1);
  assert(labels.size() == n);
  LossResult out;
  out.dlogits = Tensor({n, c});
  std::vector<double> probs(c);
  double total = 0.0;
  for (usize i = 0; i < n; ++i) {
    const float* row = logits.data() + i * c;
    row_softmax(row, c, probs);
    const u32 y = labels[i];
    assert(y < c);
    total += -std::log(std::max(probs[y], 1e-12));
    usize best = 0;
    for (usize j = 1; j < c; ++j) {
      if (row[j] > row[best]) best = j;
    }
    if (best == y) out.correct += 1;
    for (usize j = 0; j < c; ++j) {
      out.dlogits.at2(i, j) =
          static_cast<float>((probs[j] - (j == y ? 1.0 : 0.0)) / static_cast<double>(n));
    }
  }
  out.loss = total / static_cast<double>(n);
  return out;
}

double softmax_cross_entropy_loss(const Tensor& logits, const std::vector<u32>& labels) {
  assert(logits.rank() == 2);
  const usize n = logits.dim(0), c = logits.dim(1);
  std::vector<double> probs(c);
  double total = 0.0;
  for (usize i = 0; i < n; ++i) {
    row_softmax(logits.data() + i * c, c, probs);
    total += -std::log(std::max(probs[labels[i]], 1e-12));
  }
  return total / static_cast<double>(n);
}

std::vector<u32> argmax_rows(const Tensor& logits) {
  const usize n = logits.dim(0), c = logits.dim(1);
  std::vector<u32> out(n);
  for (usize i = 0; i < n; ++i) {
    const float* row = logits.data() + i * c;
    usize best = 0;
    for (usize j = 1; j < c; ++j) {
      if (row[j] > row[best]) best = j;
    }
    out[i] = static_cast<u32>(best);
  }
  return out;
}

}  // namespace dnnd::nn
