#include "quant/quantizer.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cmath>

namespace dnnd::quant {

QuantizedModel::QuantizedModel(nn::Model& model) : model_(model) {
  for (auto& p : model_.quantizable_params()) {
    QuantizedLayer ql;
    ql.name = p.name;
    ql.value = p.value;
    ql.grad = p.grad;
    ql.net_layer = p.top_layer;
    const float amax = p.value->abs_max();
    ql.scale = amax > 0.0f ? amax / 127.0f : 1.0f;
    ql.q.resize(p.value->size());
    for (usize i = 0; i < ql.q.size(); ++i) {
      const float w = (*p.value)[i];
      const long r = std::lround(w / ql.scale);
      ql.q[i] = static_cast<i8>(std::clamp<long>(r, -128, 127));
    }
    layers_.push_back(std::move(ql));
  }
  materialize();
}

u64 QuantizedModel::total_weights() const {
  u64 n = 0;
  for (const auto& l : layers_) n += l.size();
  return n;
}

void QuantizedModel::materialize() {
  for (auto& l : layers_) {
    for (usize i = 0; i < l.q.size(); ++i) {
      (*l.value)[i] = static_cast<float>(l.q[i]) * l.scale;
    }
  }
  model_.invalidate_from(0);
}

void QuantizedModel::flip(const BitLocation& loc) {
  QuantizedLayer& l = layers_.at(loc.layer);
  assert(loc.index < l.size());
  l.q[loc.index] = flip_bit_value(l.q[loc.index], loc.bit);
  (*l.value)[loc.index] = static_cast<float>(l.q[loc.index]) * l.scale;
  // Keep the incremental-forward cache honest: activations computed from the
  // pre-flip weight are stale from this layer on.
  model_.invalidate_from(l.net_layer);
}

i8 QuantizedModel::get_q(usize layer, usize index) const {
  return layers_.at(layer).q.at(index);
}

void QuantizedModel::set_q(usize layer, usize index, i8 code) {
  QuantizedLayer& l = layers_.at(layer);
  l.q.at(index) = code;
  (*l.value)[index] = static_cast<float>(code) * l.scale;
  model_.invalidate_from(l.net_layer);
}

std::vector<std::vector<i8>> QuantizedModel::snapshot() const {
  std::vector<std::vector<i8>> snap;
  snap.reserve(layers_.size());
  for (const auto& l : layers_) snap.push_back(l.q);
  return snap;
}

void QuantizedModel::restore(const std::vector<std::vector<i8>>& snap) {
  assert(snap.size() == layers_.size());
  for (usize i = 0; i < layers_.size(); ++i) {
    assert(snap[i].size() == layers_[i].q.size());
    layers_[i].q = snap[i];
  }
  materialize();
}

u64 QuantizedModel::hamming_distance(const std::vector<std::vector<i8>>& snap) const {
  assert(snap.size() == layers_.size());
  u64 dist = 0;
  for (usize i = 0; i < layers_.size(); ++i) {
    for (usize j = 0; j < layers_[i].q.size(); ++j) {
      dist += std::popcount(static_cast<u8>(layers_[i].q[j] ^ snap[i][j]));
    }
  }
  return dist;
}

}  // namespace dnnd::quant
