// Priority Protection Mechanism (paper Sec. 4): the defender runs the SAME
// progressive bit-search an attacker would, on its own copy of the model,
// for multiple rounds. Round R_c flips bits until accuracy reaches the
// random-guess level, records them, restores the model, and excludes them
// from round R_{c+1}. The union of all rounds -- in round order -- is the
// priority list of vulnerable bits; their DRAM rows become the defender's
// target rows. More rounds = more secured bits = stronger protection
// (Fig. 9's SB knob).
#pragma once

#include "attack/bfa.hpp"
#include "mapping/weight_mapping.hpp"

namespace dnnd::core {

struct ProfilerConfig {
  usize rounds = 4;
  attack::BfaConfig bfa{};
};

struct ProfileResult {
  /// Vulnerable bits in priority order (round 1 flips first).
  std::vector<quant::BitLocation> priority_bits;
  /// Number of bits contributed by each round.
  std::vector<usize> round_sizes;

  [[nodiscard]] usize total_bits() const { return priority_bits.size(); }

  /// The first `n` bits as a skip/secured set (n = 0 -> all).
  [[nodiscard]] quant::BitSkipSet secured_set(usize n = 0) const;
};

class PriorityProfiler {
 public:
  /// The profiler owns a scratch copy workflow over `qm`: it flips bits
  /// during the search but restores the initial snapshot after every round
  /// and at the end, leaving the model unmodified.
  PriorityProfiler(quant::QuantizedModel& qm, nn::Tensor attack_x, std::vector<u32> attack_y,
                   ProfilerConfig cfg = {});

  /// Runs the multi-round profiling (paper Algorithm: flips are committed
  /// within a round and restored between rounds).
  ProfileResult profile();

  /// Profiles the exact trajectory of a *fully blocked* adaptive attacker:
  /// each selection runs the progressive search on the clean model with all
  /// previously profiled bits excluded -- the state an attacker sees when
  /// every attempt is refreshed away. Protecting this set makes the white-box
  /// attack propose only already-secured bits, so nothing ever lands.
  ProfileResult profile_blocked_attacker(usize n_bits);

  /// Maps profiled bits to the (deduplicated) DRAM rows holding them, in
  /// priority order -- the defender's target rows. Limited to the first
  /// `max_bits` bits when non-zero.
  static std::vector<dram::RowAddr> target_rows(const ProfileResult& result,
                                                const mapping::WeightMapping& mapping,
                                                usize max_bits = 0);

 private:
  quant::QuantizedModel& qm_;
  nn::Tensor attack_x_;
  std::vector<u32> attack_y_;
  ProfilerConfig cfg_;
};

/// Fast large-scale profiling: the clean model's top `n_bits` bits by the
/// same first-order criterion BFA's intra-layer search ranks with (one
/// gradient pass). This matches the state a fully-blocked adaptive attacker
/// keeps proposing from, and makes the paper's 10^3..10^4-bit secured sets
/// (Fig. 9) tractable where the exact profiler (actual-loss evaluation per
/// bit) is not. `chunk` is accepted for API stability and ignored.
ProfileResult fast_gradient_profile(quant::QuantizedModel& qm, const nn::Tensor& attack_x,
                                    const std::vector<u32>& attack_y, usize n_bits,
                                    usize chunk = 0);

}  // namespace dnnd::core
