// dnnd_serving_check: gates a bench_serving JSON artifact.
//
// Loads the document under the strict serving_report_from_json parser (every
// field required and typed; a truncated artifact fails loudly) and checks
// the cross-field invariants: percentile monotonicity (p50 <= p99 <= p999),
// positive achieved throughput, admission accounting, histogram
// consistency. With --digest, prints the deterministic projection (digest +
// counts + accuracies per regime, no wall-clock fields) to stdout -- the CI
// determinism gate diffs this output across DNND_THREADS values.
//
// Exit codes: 0 = valid, 1 = invariant violation, 2 = usage/I/O/parse error.
//
// Usage: dnnd_serving_check [--digest] [--quiet] <report.json>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "serving/report.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr, "usage: %s [--digest] [--quiet] <report.json>\n", argv0);
  return 2;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  bool digest = false;
  bool quiet = false;
  std::string path;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--digest") == 0) {
      digest = true;
    } else if (std::strcmp(argv[i], "--quiet") == 0 || std::strcmp(argv[i], "-q") == 0) {
      quiet = true;
    } else if (argv[i][0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", argv[i]);
      return usage(argv[0]);
    } else if (path.empty()) {
      path = argv[i];
    } else {
      return usage(argv[0]);
    }
  }
  if (path.empty()) return usage(argv[0]);

  dnnd::serving::ServingReport report;
  try {
    report = dnnd::serving::serving_report_from_json(read_file(path));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dnnd_serving_check: %s\n", e.what());
    return 2;
  }
  try {
    dnnd::serving::validate_serving_report(report);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dnnd_serving_check: %s\n", e.what());
    return 1;
  }
  if (digest) {
    std::printf("%s", dnnd::serving::deterministic_projection(report).c_str());
  } else if (!quiet) {
    std::printf("%s: ok (%zu regimes, model %s, %zu threads)\n", path.c_str(),
                report.regimes.size(), report.model.c_str(), report.threads);
  }
  return 0;
}
