// Software (training/inference-time) BFA defenses compared in Table 3:
//   * Binary weight (He et al., CVPR'20): 1-bit weights limit per-flip damage.
//   * Piece-wise clustering (He et al., CVPR'20): a regularizer pulls each
//     layer's weights toward two clusters, removing the outliers BFA exploits.
//   * Weight reconstruction (Li et al., DAC'20): inference-time clamping of
//     codes to deployment-profiled bounds neutralises large flipped weights.
//   * RA-BNN (Rakin et al., 2021): robust binary network (modelled as a
//     wider binary-weight net; see DESIGN.md for the simplification note).
//   * Model capacity scaling (x16 in the paper): built via the zoo's
//     width_mult knob.
// These carry training overhead and/or clean-accuracy loss -- the trade-off
// DNN-Defender avoids.
#pragma once

#include "nn/dataset.hpp"
#include "nn/model.hpp"
#include "quant/quantizer.hpp"

namespace dnnd::defense::software {

// ----------------------------------------------------------------------
// Binary-weight representation + its BFA
// ----------------------------------------------------------------------

/// Binary-weight view of a model: per-layer alpha = mean|w|, weight =
/// alpha * sign. The attack surface shrinks to one (sign) bit per weight.
class BinaryWeightModel {
 public:
  explicit BinaryWeightModel(nn::Model& model);

  [[nodiscard]] usize num_layers() const { return layers_.size(); }
  [[nodiscard]] usize layer_size(usize l) const { return layers_.at(l).sign.size(); }
  [[nodiscard]] u64 total_bits() const;

  [[nodiscard]] bool is_positive(usize layer, usize index) const;
  /// Flips the sign bit of one weight (and the materialized float weight).
  void flip(usize layer, usize index);

  /// Rewrites all float weights as alpha * sign.
  void materialize();

  [[nodiscard]] nn::Model& model() { return model_; }
  [[nodiscard]] float alpha(usize layer) const { return layers_.at(layer).alpha; }
  [[nodiscard]] nn::Tensor& grad(usize layer) { return *layers_.at(layer).grad; }

 private:
  struct BinLayer {
    nn::Tensor* value;
    nn::Tensor* grad;
    float alpha;
    std::vector<i8> sign;  ///< +1 / -1
  };
  nn::Model& model_;
  std::vector<BinLayer> layers_;
};

struct BinaryAttackResult {
  usize flips = 0;
  double final_accuracy = 0.0;
  bool reached_stop = false;
};

/// Progressive bit search adapted to sign bits: candidates ranked by the
/// first-order gain of a sign flip, dL = g * (-2 * alpha * sign).
BinaryAttackResult attack_binary(BinaryWeightModel& bm, const nn::Tensor& attack_x,
                                 const std::vector<u32>& attack_y, usize max_flips,
                                 double stop_accuracy, usize layers_evaluated = 6);

// ----------------------------------------------------------------------
// Training-time defenses
// ----------------------------------------------------------------------

/// Fine-tunes with the piece-wise clustering penalty: each weight is pulled
/// toward the nearer of {-mu_l, +mu_l} (mu_l = mean|w| per layer) with
/// strength lambda. Returns the achieved test accuracy.
double piecewise_clustering_finetune(nn::Model& model, const nn::SplitDataset& data,
                                     double lambda, usize epochs, double lr, u64 seed);

/// Straight-through-estimator fine-tuning for binary weights: forward/backward
/// run on binarized weights, updates flow to latent float weights. Leaves the
/// model with deployed (binarized) weights and returns test accuracy.
/// Naive post-hoc binarization destroys conv nets; real binary-weight
/// defenses train the binary representation, which this reproduces.
double binary_finetune(nn::Model& model, const nn::SplitDataset& data, usize epochs,
                       double lr, u64 seed);

// ----------------------------------------------------------------------
// Inference-time defense
// ----------------------------------------------------------------------

/// Weight reconstruction: at deployment, records per-layer absolute-code
/// bounds at a percentile; apply() clamps codes back inside the bounds
/// (undoing the out-of-range values MSB flips create). The default 97th
/// percentile balances catching MSB outliers against clamping legitimate
/// large weights (with max-scaled symmetric quantization some code always
/// sits at +-127, so a loose bound would never catch anything).
class ReconstructionGuard {
 public:
  ReconstructionGuard(const quant::QuantizedModel& qm, double percentile = 0.97);

  /// Clamps all codes to the recorded bounds and re-materializes.
  /// Returns the number of corrected weights.
  usize apply(quant::QuantizedModel& qm) const;

  [[nodiscard]] i8 bound(usize layer) const { return bounds_.at(layer); }

 private:
  std::vector<i8> bounds_;
};

}  // namespace dnnd::defense::software
