// Fig. 9: adaptive white-box BFA against DNN-Defender for increasing numbers
// of Secured Bits (SB), on (a) VGG-11 / CIFAR-10-like, (b) ResNet-18 /
// ImageNet-like, (c) ResNet-34 / ImageNet-like.
//
// Semantics follow the paper's priority-protection mechanism: the profiled
// SB bits select *target rows*, and DNN-Defender protects the whole row, so
// the attacker-visible secured set is the row expansion of the SB prefix.
// The x-axis is SB + additional landed flips, as in the paper.
//
// Scale note (EXPERIMENTS.md): on our ~10^4-weight stand-in models nearly
// every weight row holds catastrophic bits, so the intermediate-SB curves
// compress toward the unprotected one (small models lack the redundancy
// that flattens the paper's mid-SB curves); the endpoints -- unprotected
// collapse within a few flips, and near-clean accuracy at full row
// coverage (the paper's "~4% of bits -> random-attack level") -- reproduce.
#include "attack/adaptive_attack.hpp"
#include "bench_util.hpp"
#include "core/priority_profiler.hpp"
#include "mapping/weight_mapping.hpp"

using namespace dnnd;

namespace {

struct PanelSpec {
  const char* label;
  const char* arch;
  nn::SynthSpec data_spec;
  usize epochs;
};

/// Row-expanded secured set for the first `sb` profiled bits (0 = all weight
/// rows -- complete priority coverage). Returns the row count via rows_out.
quant::BitSkipSet secured_rows(const core::ProfileResult& profile, usize sb,
                               const mapping::WeightMapping& map, usize* rows_out) {
  std::vector<dram::RowAddr> rows;
  if (sb == 0) {
    rows = map.weight_rows();
  } else {
    rows = core::PriorityProfiler::target_rows(profile, map, sb);
  }
  *rows_out = rows.size();
  quant::BitSkipSet set;
  for (const auto& row : rows) {
    const usize count = map.weights_in_row(row);
    for (usize col = 0; col < count; ++col) {
      const auto w = map.weight_at(row, col);
      for (u32 b = 0; b < 8; ++b) set.insert({w->layer, w->index, b});
    }
  }
  return set;
}

void run_panel(const PanelSpec& panel) {
  const bool small = bench::small_scale();
  std::printf("\n--- Fig. 9(%s): %s ---\n", panel.label, panel.arch);
  auto data = nn::make_synthetic(panel.data_spec);
  auto model = bench::train_model(panel.arch, data, panel.epochs);
  auto [ax, ay] = data.test.head(small ? 20 : 28);
  auto [ex, ey] = data.test.head(small ? 100 : 240);
  quant::QuantizedModel qm(*model);
  const auto clean_snapshot = qm.snapshot();
  const mapping::WeightMapping map(qm, dram::DramConfig::nn_scaled());

  // SB levels: trajectory prefixes (the exact blocked-attacker search order)
  // plus the full-coverage level the defender deploys in practice.
  std::vector<usize> sb_levels = small ? std::vector<usize>{8, 32}
                                       : std::vector<usize>{8, 16, 32, 64};
  const usize max_traj = sb_levels.back();
  bench::Stopwatch prof_sw;
  core::PriorityProfiler profiler(qm, ax, ay);
  const auto profile = profiler.profile_blocked_attacker(max_traj);
  std::printf("[setup] profiled %zu trajectory bits in %.1fs; %zu weight rows total\n",
              profile.total_bits(), prof_sw.seconds(), map.weight_rows().size());

  const usize extra = small ? 20 : 40;
  const usize step = 10;

  std::vector<std::string> headers{"Secured Bits", "rows"};
  for (usize k = 0; k <= extra; k += step) headers.push_back("SB+" + std::to_string(k));
  sys::Table table(headers);
  auto run_level = [&](const std::string& label, usize sb) {
    usize n_rows = 0;
    const auto secured = secured_rows(profile, sb, map, &n_rows);
    attack::AdaptiveAttackConfig cfg;
    cfg.max_additional_flips = extra;
    cfg.measure_every = step;
    attack::AdaptiveWhiteBoxAttack attack(qm, ax, ay, ex, ey, cfg);
    const auto res = attack.run(secured);
    std::vector<std::string> row{label, std::to_string(n_rows)};
    for (usize i = 0; i + 2 < headers.size(); ++i) {
      row.push_back(i < res.accuracy_trace.size()
                        ? sys::fmt(100.0 * res.accuracy_trace[i], 1)
                        : sys::fmt(100.0 * res.accuracy_trace.back(), 1));
    }
    table.add_row(row);
    qm.restore(clean_snapshot);
  };
  run_level("none (baseline)", 1);  // 1 bit -> 1 row: effectively unprotected
  for (usize sb : sb_levels) run_level(std::to_string(sb), sb);
  run_level("full row coverage", 0);
  table.print();
}

}  // namespace

int main() {
  bench::banner("Fig. 9 -- Adaptive white-box BFA vs Secured Bits (SB)",
                "paper Fig. 9(a-c): more SB -> more attacker effort; full coverage -> flat");
  run_panel({"a", "vgg11", nn::SynthSpec::cifar10_like(), 6});
  run_panel({"b", "resnet18", nn::SynthSpec::imagenet_like(), 6});
  run_panel({"c", "resnet34", nn::SynthSpec::imagenet_like(), 6});
  std::printf(
      "\nShape check (paper): the x-axis is SB + landed flips, so higher-SB\n"
      "curves cost the attacker more total iterations for equal damage; at\n"
      "full priority coverage the white-box attack lands nothing and the\n"
      "curve stays at clean accuracy -- the paper's downgrade-to-random\n"
      "endpoint. Mid-SB gradation is compressed on this small substrate\n"
      "(see EXPERIMENTS.md).\n");
  return 0;
}
