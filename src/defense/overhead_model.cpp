#include "defense/overhead_model.hpp"

#include <sstream>

namespace dnnd::defense {

namespace {
constexpr u64 kKB = 1024;
constexpr u64 kMB = 1024 * 1024;

std::string fmt_bytes(u64 bytes) {
  std::ostringstream out;
  if (bytes == 0) {
    out << "0";
  } else if (bytes >= kMB) {
    out.precision(3);
    out << static_cast<double>(bytes) / static_cast<double>(kMB) << "MB";
  } else {
    out.precision(3);
    out << static_cast<double>(bytes) / static_cast<double>(kKB) << "KB";
  }
  return out.str();
}
}  // namespace

std::vector<OverheadEntry> overhead_table(const dram::DramConfig& cfg) {
  std::vector<OverheadEntry> rows;
  const u64 total_rows = cfg.geo.total_rows();
  const u64 rows_per_bank = cfg.geo.rows_per_bank();

  {
    // Graphene (MICRO'20): Misra-Gries tables in SRAM + CAM for row tags.
    OverheadEntry e;
    e.framework = "Graphene";
    e.involved_memory = "CAM-SRAM";
    e.cam_bytes = static_cast<u64>(0.53 * static_cast<double>(kMB));
    e.sram_bytes = static_cast<u64>(1.12 * static_cast<double>(kMB));
    e.area_overhead = "1 counter";
    rows.push_back(e);
  }
  {
    // Hydra (ISCA'22): small SRAM cache + DRAM-resident counter groups.
    OverheadEntry e;
    e.framework = "Hydra";
    e.involved_memory = "SRAM-DRAM";
    e.sram_bytes = 56 * kKB;
    e.dram_bytes = 4 * kMB;
    e.area_overhead = "1 counter";
    rows.push_back(e);
  }
  {
    // TWiCE (ISCA'19): large SRAM table + CAM.
    OverheadEntry e;
    e.framework = "TWiCE";
    e.involved_memory = "SRAM-CAM";
    e.sram_bytes = static_cast<u64>(3.16 * static_cast<double>(kMB));
    e.cam_bytes = static_cast<u64>(1.6 * static_cast<double>(kMB));
    e.area_overhead = "1 counter";
    rows.push_back(e);
  }
  {
    // Counter per Row: one 8-byte counter per DRAM row, stored in DRAM.
    // Derivable: 32GB / 8KB rows = 4M rows -> 32MB.
    OverheadEntry e;
    e.framework = "CounterPerRow";
    e.involved_memory = "DRAM";
    e.dram_bytes = total_rows * 8;
    std::ostringstream area;
    area << rows_per_bank / 16 << " counters";  // per-mat counters, paper: 16384
    e.area_overhead = area.str();
    rows.push_back(e);
  }
  {
    // Counter Tree (CAL'16): log-structured counters, 1/16 of per-row cost.
    OverheadEntry e;
    e.framework = "CounterTree";
    e.involved_memory = "DRAM";
    e.dram_bytes = total_rows * 8 / 16;
    std::ostringstream area;
    area << rows_per_bank / 256 << " counters";  // paper: 1024
    e.area_overhead = area.str();
    rows.push_back(e);
  }
  {
    // RRS (ASPLOS'22): swap indirection tables in DRAM + SRAM trackers (size
    // not reported in the original).
    OverheadEntry e;
    e.framework = "RRS";
    e.involved_memory = "DRAM-SRAM";
    e.dram_bytes = 4 * kMB;
    e.sram_bytes = 0;  // NR in the source paper
    e.capacity_detail = fmt_bytes(e.dram_bytes) + " (DRAM) + NR (SRAM)";
    e.area_overhead = "NULL";
    rows.push_back(e);
  }
  {
    // SRS (2022): reduced-counter variant of RRS.
    OverheadEntry e;
    e.framework = "SRS";
    e.involved_memory = "DRAM-SRAM";
    e.dram_bytes = static_cast<u64>(1.26 * static_cast<double>(kMB));
    e.sram_bytes = 0;  // NR in the source paper
    e.capacity_detail = fmt_bytes(e.dram_bytes) + " (DRAM) + NR (SRAM)";
    e.area_overhead = "NULL";
    rows.push_back(e);
  }
  {
    // SHADOW (HPCA'23): a handful of reserved rows dedicated to shuffling.
    // Derivable: 20 reserved rows x 8KB = 0.16MB at the paper's geometry.
    OverheadEntry e;
    e.framework = "SHADOW";
    e.involved_memory = "DRAM";
    e.dram_bytes = 20 * cfg.geo.row_bytes;
    e.area_overhead = "0.6%";
    rows.push_back(e);
  }
  {
    // P-PIM (DATE'23): in-DRAM LUT region for RH self-protection.
    OverheadEntry e;
    e.framework = "P-PIM";
    e.involved_memory = "DRAM";
    e.dram_bytes = static_cast<u64>(4.125 * static_cast<double>(kMB));
    e.area_overhead = "0.34%";
    rows.push_back(e);
  }
  rows.push_back(dnn_defender_overhead(cfg));

  for (auto& e : rows) {
    if (e.capacity_detail.empty()) {
      std::ostringstream d;
      bool first = true;
      auto part = [&](u64 bytes, const char* kind) {
        if (bytes == 0) return;
        if (!first) d << " + ";
        d << fmt_bytes(bytes) << " (" << kind << ")";
        first = false;
      };
      part(e.dram_bytes, "DRAM");
      part(e.sram_bytes, "SRAM");
      part(e.cam_bytes, "CAM");
      if (first) d << "0";
      e.capacity_detail = d.str();
    }
  }
  return rows;
}

OverheadEntry dnn_defender_overhead(const dram::DramConfig& /*cfg*/) {
  // DNN-Defender: zero capacity overhead -- the reserved rows buffer live
  // data during the swap chain, so no row is lost to the mechanism; the only
  // cost is the controller-side swap sequencer + RNG (0.02% area).
  OverheadEntry e;
  e.framework = "DNN-Defender";
  e.involved_memory = "DRAM";
  e.area_overhead = "0.02%";
  return e;
}

}  // namespace dnnd::defense
