#include "defense/shadow.hpp"

namespace dnnd::defense {

using dram::RowAddr;

Shadow::Shadow(dram::DramDevice& device, dram::RowRemapper& remap, ShadowConfig cfg)
    : Mitigation(device, remap), cfg_(cfg), rng_(cfg.seed) {}

u32 Shadow::reserved_row() const { return device_.config().geo.rows_per_subarray - 1; }

void Shadow::on_activate(const RowAddr& row, Picoseconds /*now*/) {
  if (in_maintenance()) return;
  // SHADOW keeps its activation metadata inside DRAM (no SRAM cost).
  const u64 id = flat_row_id(device_.config().geo, row);
  const u64 count = ++act_counts_[id];
  const u64 threshold = static_cast<u64>(
      cfg_.shuffle_threshold_fraction * static_cast<double>(device_.config().t_rh));
  if (count < threshold || threshold == 0) return;
  act_counts_[id] = 0;
  maintenance([&] {
    const auto& geo = device_.config().geo;
    if (row.row >= 1) shuffle_victim(RowAddr{row.bank, row.subarray, row.row - 1});
    if (row.row + 1 < geo.rows_per_subarray - 1) {  // reserved row is the last
      shuffle_victim(RowAddr{row.bank, row.subarray, row.row + 1});
    }
  });
}

void Shadow::shuffle_victim(const RowAddr& v) {
  const auto& geo = device_.config().geo;
  const u32 res = reserved_row();
  if (v.row == res) return;
  // Random destination: any non-reserved row of the subarray except v.
  u32 dest;
  do {
    dest = static_cast<u32>(rng_.uniform(res));
  } while (dest == v.row);
  const RowAddr d{v.bank, v.subarray, dest};
  // Three in-subarray copies through the reserved row.
  device_.rowclone_fpm(v.bank, v.subarray, v.row, res);   // victim -> reserved
  device_.rowclone_fpm(v.bank, v.subarray, d.row, v.row); // displaced -> victim slot
  device_.rowclone_fpm(v.bank, v.subarray, res, d.row);   // reserved -> displaced slot
  remap_.swap_logical(remap_.to_logical(v), remap_.to_logical(d));
  // Both physical slots now hold rewritten data; their counters restart.
  act_counts_.erase(flat_row_id(geo, v));
  act_counts_.erase(flat_row_id(geo, d));
  ++shuffles_;
  stats_.maintenance_ops += 1;
}

}  // namespace dnnd::defense
