// DRAM geometry, timing, and device-generation presets.
//
// The simulator is transaction-level: each command advances a picosecond
// clock by its timing-class cost (tRC for ACT-PRE cycles, tAAP for RowClone
// pairs, ...). This is the granularity at which the paper reasons
// (T_swap = 3 x T_AAP, attack window = T_ACT x T_RH), so nothing finer is
// needed to reproduce its analyses.
#pragma once

#include <string>

#include "sys/energy_model.hpp"
#include "sys/types.hpp"

namespace dnnd::dram {

/// DRAM device generations with the RowHammer thresholds reported in the
/// paper's Fig. 1(a) (data from Kim et al., ISCA'20 as cited there).
enum class DeviceGen {
  kDdr3Old,
  kDdr3New,
  kDdr4Old,
  kDdr4New,
  kLpddr4Old,
  kLpddr4New,
};

/// Human-readable generation name ("DDR3 (old)", ...).
std::string to_string(DeviceGen gen);

/// RowHammer threshold T_RH (hammer count to first bit flip) for a
/// generation, per Fig. 1(a): DDR3(old)=139K ... LPDDR4(new)=4.8K.
u32 rowhammer_threshold(DeviceGen gen);

/// Physical organisation of one simulated channel.
struct Geometry {
  u32 banks = 8;
  u32 subarrays_per_bank = 8;
  u32 rows_per_subarray = 128;
  u32 row_bytes = 1024;  ///< row (page) size in bytes

  [[nodiscard]] u64 rows_per_bank() const {
    return static_cast<u64>(subarrays_per_bank) * rows_per_subarray;
  }
  [[nodiscard]] u64 total_rows() const { return static_cast<u64>(banks) * rows_per_bank(); }
  [[nodiscard]] u64 total_bytes() const { return total_rows() * row_bytes; }
};

/// Complete configuration of a simulated device.
struct DramConfig {
  Geometry geo;
  sys::LatencyParams timing;
  sys::EnergyParams energy = sys::EnergyParams::ddr4();
  DeviceGen gen = DeviceGen::kLpddr4New;
  u32 t_rh = 4'800;        ///< RowHammer threshold in ACTs within a refresh window
  u32 blast_radius = 1;    ///< +-rows disturbed by an aggressor (1 = immediate neighbours)
  u32 refresh_steps = 64;  ///< distributed-refresh slices per Tref window

  /// Tiny geometry for unit tests (256 KB).
  static DramConfig sim_small();
  /// Default simulation geometry (8 MB) with LPDDR4(new) threshold.
  static DramConfig sim_default();
  /// Scaled row granularity for DNN experiments: 64-byte rows so the zoo's
  /// miniature models (~7k weights, ~1000x smaller than the paper's) spread
  /// over ~100+ rows, preserving the paper's weights-per-row ratio and
  /// making row-granular protection meaningfully partial (Fig. 9's SB sweep).
  static DramConfig nn_scaled();
  /// Geometry matching the paper's overhead analysis (32 GB, 16 banks).
  /// For analytic use only -- do not instantiate a DramDevice with it.
  static DramConfig paper_32gb();
  /// Preset for a device generation: threshold + energy family.
  static DramConfig preset(DeviceGen gen);
};

/// Address of one physical row.
struct RowAddr {
  u32 bank = 0;
  u32 subarray = 0;
  u32 row = 0;  ///< index within the subarray

  friend bool operator==(const RowAddr&, const RowAddr&) = default;
};

/// Flattened unique id of a row in [0, total_rows).
u64 flat_row_id(const Geometry& geo, const RowAddr& a);

/// Inverse of flat_row_id.
RowAddr unflatten_row_id(const Geometry& geo, u64 id);

}  // namespace dnnd::dram
