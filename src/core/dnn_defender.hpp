// DNN-Defender -- the paper's contribution: a victim-focused, in-DRAM,
// priority-driven swap defense for quantized DNN weights.
//
// Given the target rows selected by the PriorityProfiler, the defender swaps
// every target once per RowHammer window (t_act * T_RH), spreading swaps
// uniformly so no target can accumulate T_RH disturbances between two
// refreshes. Swaps run the four-step RowClone chain of SwapEngine, cycling
// the configured non-target victim rows through step 4 so they get low-cost
// protection too (Algorithm 1). Purely time-scheduled: no per-row counters,
// no SRAM/CAM, no capacity overhead.
#pragma once

#include <vector>

#include "core/swap_engine.hpp"
#include "core/swap_scheduler.hpp"
#include "defense/mitigation.hpp"

namespace dnnd::core {

struct DnnDefenderConfig {
  u32 reserved_rows_per_subarray = 1;
  /// 0 = derive from the hammer window: interval = (t_act * T_RH) / #targets.
  Picoseconds swap_interval = 0;
  /// Step-4 staging (Fig. 6 pipelining). Disable for the serial-swap ablation.
  bool enable_staging = true;
  u64 seed = 0xDD5EED;
};

class DnnDefender final : public defense::Mitigation {
 public:
  DnnDefender(dram::DramDevice& device, dram::RowRemapper& remap, DnnDefenderConfig cfg = {});

  [[nodiscard]] std::string name() const override { return "DNN-Defender"; }

  /// Installs the protection sets. `targets` in priority order (profiler
  /// output); `non_targets` are lower-priority victim rows cycled through
  /// step 4. Resets the schedule.
  void set_protected_rows(std::vector<dram::RowAddr> targets,
                          std::vector<dram::RowAddr> non_targets);

  /// Executes all swaps that are due at device.now(). Call often (the
  /// protected system pumps this from the attacker's post-ACT hook).
  void tick() override;

  /// True if `logical` is one of the defended target rows.
  [[nodiscard]] bool is_target(const dram::RowAddr& logical) const;

  [[nodiscard]] const std::vector<dram::RowAddr>& targets() const { return targets_; }
  [[nodiscard]] const std::vector<dram::RowAddr>& non_targets() const { return non_targets_; }
  [[nodiscard]] const SwapStats& swap_stats() const { return engine_.stats(); }
  [[nodiscard]] Picoseconds swap_interval() const { return interval_; }

  /// Protection feasibility: targets this bank count vs. the window budget.
  [[nodiscard]] bool schedule_feasible() const { return feasible_; }

 private:
  void recompute_schedule();

  DnnDefenderConfig cfg_;
  SwapEngine engine_;
  sys::Rng rng_;
  std::vector<dram::RowAddr> targets_;
  std::vector<dram::RowAddr> non_targets_;
  usize target_cursor_ = 0;
  usize non_target_cursor_ = 0;
  Picoseconds interval_ = 0;
  Picoseconds next_due_ = 0;
  bool feasible_ = true;
};

}  // namespace dnnd::core
