#include "nn/layers.hpp"

#include <cassert>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

#include "nn/gemm.hpp"
#include "nn/reference.hpp"
#include "nn/simd.hpp"
#include "nn/thread_pool.hpp"

namespace dnnd::nn {

namespace {

// Single source of truth for the Dense/Conv2d backward loop bodies. The
// serial path runs one pass with both flags on; the threaded path runs a
// dx-only pass partitioned over samples and a dweight/dbias-only pass
// partitioned over outputs. Every gradient element receives exactly the same
// terms in the same order in all three instantiations (dx[i] over ascending
// outputs, dweight/dbias[o] over ascending samples), so serial and threaded
// results are byte-identical.

template <bool kDx, bool kDw>
void dense_backward_span(const Tensor& dy, const Tensor& x, const Tensor& weight, usize in,
                         usize i_lo, usize i_hi, usize o_lo, usize o_hi, Tensor& dx,
                         Tensor& dweight, Tensor& dbias) {
  for (usize i = i_lo; i < i_hi; ++i) {
    const float* xi = x.data() + i * in;
    float* dxi = dx.data() + i * in;
    for (usize o = o_lo; o < o_hi; ++o) {
      const float g = dy.at2(i, o);
      if (g == 0.0f) continue;
      const float* w = weight.data() + o * in;
      float* dw = dweight.data() + o * in;
      if constexpr (kDw) dbias[o] += g;
      for (usize j = 0; j < in; ++j) {
        if constexpr (kDw) dw[j] += g * xi[j];
        if constexpr (kDx) dxi[j] += g * w[j];
      }
    }
  }
}

template <bool kDx, bool kDw>
void conv_backward_span(const ConvGeom& g, const Tensor& dy, const Tensor& x,
                        const Tensor& weight, usize b_lo, usize b_hi, usize oc_lo,
                        usize oc_hi, Tensor& dx, Tensor& dweight, Tensor& dbias) {
  const usize K = g.patch_size();
  for (usize b = b_lo; b < b_hi; ++b) {
    const float* xb = x.data() + b * g.in_ch * g.h * g.w;
    float* dxb = dx.data() + b * g.in_ch * g.h * g.w;
    for (usize oc = oc_lo; oc < oc_hi; ++oc) {
      float* dwoc = dweight.data() + oc * K;
      const float* woc = weight.data() + oc * K;
      for (usize i = 0; i < g.oh; ++i) {
        for (usize j = 0; j < g.ow; ++j) {
          const float gy = dy.at4(b, oc, i, j);
          if (gy == 0.0f) continue;
          if constexpr (kDw) dbias[oc] += gy;
          for_each_patch_row(
              g, i, j,
              [&](usize kk_row, usize ic, usize hi, usize kj_lo, usize kj_hi, usize wj_lo,
                  bool row_valid) {
                if (!row_valid) return;
                const float* xrow = xb + (ic * g.h + hi) * g.w + wj_lo;
                float* dxrow = dxb + (ic * g.h + hi) * g.w + wj_lo;
                float* dwrow = dwoc + kk_row + kj_lo;
                const float* wrow = woc + kk_row + kj_lo;
                const usize span = kj_hi - kj_lo;
                for (usize t = 0; t < span; ++t) {
                  if constexpr (kDw) dwrow[t] += gy * xrow[t];
                  if constexpr (kDx) dxrow[t] += gy * wrow[t];
                }
              });
        }
      }
    }
  }
}

}  // namespace

// ----------------------------------------------------------------- Layer ----

Tensor Layer::forward(const Tensor& x, bool train) {
  if (!legacy_ws_) legacy_ws_ = std::make_unique<Workspace>();
  Tensor y;
  forward_into(x, y, train, *legacy_ws_);
  return y;
}

Tensor Layer::backward(const Tensor& dy) {
  if (!legacy_ws_) legacy_ws_ = std::make_unique<Workspace>();
  Tensor dx;
  backward_into(dy, dx, *legacy_ws_);
  return dx;
}

// ---------------------------------------------------------------- Dense ----

Dense::Dense(usize in_features, usize out_features, sys::Rng& rng)
    : weight(Tensor::he_normal({out_features, in_features}, in_features, rng)),
      bias(Tensor::zeros({out_features})),
      dweight(Tensor::zeros({out_features, in_features})),
      dbias(Tensor::zeros({out_features})),
      in_(in_features),
      out_(out_features) {}

void Dense::forward_into(const Tensor& x, Tensor& y, bool /*train*/, Workspace& ws) {
  assert(x.rank() == 2 && x.dim(1) == in_);
  x_cache_ = x;
  record_act(x);
  const usize n = x.dim(0);
  y.resize({n, out_});
  if (gemm::force_naive()) {
    reference::dense_forward(x, weight, bias, y);
    return;
  }
  // True-integer regime: quantize the input rows and run the int8 GEMM over
  // the raw weight codes -- no dequantized floats anywhere on the path.
  if (const Int8Pack& ip = int8_pack(); ip.panel != nullptr && simd::int8_enabled()) {
    const float sa =
        ip.act_scale > 0.0f ? ip.act_scale : gemm::activation_scale(x.data(), n, in_, in_);
    i8* qa = ws.qa_buffer(n * gemm::padded_k_int8(in_));
    gemm::quantize_activations(x.data(), n, in_, in_, sa, qa);
    gemm::gemm_nt_int8(n, out_, in_, qa, ip.panel, y.data(), out_, 1, bias.data(),
                       gemm::Bias::kPerCol, sa * ip.weight_scale);
    return;
  }
  // y = x W^T + b: both operands K-major, bias per output feature (column).
  // With a resident panel attached (fused int8 path) the pack step vanishes:
  // the panel already holds exactly what pack_b(weight) would produce.
  if (const float* panel = packed_weight(); panel != nullptr) {
    gemm::gemm_nt_prepacked(n, out_, in_, x.data(), in_, panel, y.data(), out_, 1,
                            bias.data(), gemm::Bias::kPerCol);
    return;
  }
  gemm::gemm_nt(n, out_, in_, x.data(), in_, weight.data(), in_, y.data(), out_, bias.data(),
                gemm::Bias::kPerCol, ws);
}

void Dense::backward_into(const Tensor& dy, Tensor& dx, Workspace& /*ws*/) {
  const usize n = x_cache_.dim(0);
  assert(dy.rank() == 2 && dy.dim(0) == n && dy.dim(1) == out_);
  dx.resize({n, in_});
  dx.zero();
  const usize macs = n * out_ * in_;
  if (gemm::plan_teams(std::max(n, out_), macs) <= 1) {
    dense_backward_span<true, true>(dy, x_cache_, weight, in_, 0, n, 0, out_, dx, dweight,
                                    dbias);
    return;
  }
  // Threaded: two race-free passes over the shared loop body -- dx rows are
  // per-sample disjoint, dweight/dbias rows per-output disjoint (see
  // dense_backward_span for the byte-identity argument).
  ThreadPool::instance().parallel(gemm::plan_teams(n, macs), [&](usize slot, usize nslots) {
    const usize chunk = (n + nslots - 1) / nslots;
    const usize lo = std::min(n, slot * chunk), hi = std::min(n, lo + chunk);
    dense_backward_span<true, false>(dy, x_cache_, weight, in_, lo, hi, 0, out_, dx, dweight,
                                     dbias);
  });
  ThreadPool::instance().parallel(gemm::plan_teams(out_, macs), [&](usize slot, usize nslots) {
    const usize chunk = (out_ + nslots - 1) / nslots;
    const usize lo = std::min(out_, slot * chunk), hi = std::min(out_, lo + chunk);
    dense_backward_span<false, true>(dy, x_cache_, weight, in_, 0, n, lo, hi, dx, dweight,
                                     dbias);
  });
}

std::vector<ParamRef> Dense::params() {
  return {{"weight", &weight, &dweight, /*quantizable=*/true, /*top_layer=*/0, this},
          {"bias", &bias, &dbias, /*quantizable=*/false, /*top_layer=*/0, this}};
}

// --------------------------------------------------------------- Conv2d ----

Conv2d::Conv2d(usize in_ch, usize out_ch, usize kernel, usize stride, usize padding,
               sys::Rng& rng)
    : weight(Tensor::he_normal({out_ch, in_ch, kernel, kernel}, in_ch * kernel * kernel, rng)),
      bias(Tensor::zeros({out_ch})),
      dweight(Tensor::zeros({out_ch, in_ch, kernel, kernel})),
      dbias(Tensor::zeros({out_ch})),
      in_ch_(in_ch),
      out_ch_(out_ch),
      k_(kernel),
      stride_(stride),
      pad_(padding) {}

void Conv2d::im2col(const Tensor& x, usize b, const ConvGeom& g, float* col) const {
  im2col_range(x, b, g, 0, g.oh * g.ow, col);
}

void Conv2d::im2col_range(const Tensor& x, usize b, const ConvGeom& g, usize p_lo,
                          usize p_hi, float* col) const {
  const float* xb = x.data() + b * g.in_ch * g.h * g.w;
  const usize K = g.patch_size();
  for (usize p = p_lo; p < p_hi; ++p) {
    const usize oi = p / g.ow, oj = p % g.ow;
    float* cp = col + p * K;
    for_each_patch_row(
        g, oi, oj,
        [&](usize kk_row, usize ic, usize hi, usize kj_lo, usize kj_hi, usize wj_lo,
            bool row_valid) {
          float* dst = cp + kk_row;
          if (!row_valid) {
            for (usize kj = 0; kj < k_; ++kj) dst[kj] = 0.0f;
            return;
          }
          // Spans are at most k (<= 3 in the zoo): an inline loop beats a
          // variable-size memcpy call.
          const float* src = xb + (ic * g.h + hi) * g.w + wj_lo;
          for (usize kj = 0; kj < kj_lo; ++kj) dst[kj] = 0.0f;
          for (usize kj = kj_lo; kj < kj_hi; ++kj) dst[kj] = src[kj - kj_lo];
          for (usize kj = kj_hi; kj < k_; ++kj) dst[kj] = 0.0f;
        });
  }
}

void Conv2d::gather_taps_i8(const i8* xq, const ConvGeom& g, i8* T) const {
  const usize K = g.patch_size();
  const usize P = g.oh * g.ow;
  // Small-image fast path (every conv in the zoo): copy each channel into a
  // zero-bordered padded plane once, after which EVERY (tap, output-row)
  // span is one unconditional 16-byte load/store -- no bounds branches and
  // no per-span libc calls, which otherwise dominate (taps * oh tiny
  // memcpy/memset calls per sample). The 16-byte stores overrun each ow-span
  // into bytes that ascending (oi, then k) iteration rewrites immediately
  // after; only the very last store runs past row K-1, into the quad-pad
  // rows (re-zeroed below) or the caller-provided 15-byte slack.
  constexpr usize kPaddedCap = 8192;
  const usize ph = g.h + 2 * g.pad, pw = g.w + 2 * g.pad;
  if (g.stride == 1 && g.ow <= 16 && g.in_ch * ph * pw + 16 <= kPaddedCap) {
    alignas(16) i8 pp[kPaddedCap];
    std::memset(pp, 0, g.in_ch * ph * pw);
    for (usize ic = 0; ic < g.in_ch; ++ic) {
      for (usize i = 0; i < g.h; ++i) {
        std::memcpy(pp + (ic * ph + i + g.pad) * pw + g.pad, xq + (ic * g.h + i) * g.w,
                    g.w);
      }
    }
    usize k = 0;
    for (usize ic = 0; ic < g.in_ch; ++ic) {
      const i8* base = pp + ic * ph * pw;
      for (usize ki = 0; ki < k_; ++ki) {
        for (usize kj = 0; kj < k_; ++kj, ++k) {
          // Padded coords: input row oi+ki, column offset kj (stride 1).
          const i8* src = base + ki * pw + kj;
          i8* row = T + k * P;
          for (usize oi = 0; oi < g.oh; ++oi) {
            __builtin_memcpy(row + oi * g.ow, src + oi * pw, 16);
          }
        }
      }
    }
    const usize K4 = gemm::padded_k_int8(K);
    if (K4 > K) std::memset(T + K * P, 0, (K4 - K) * P);
    return;
  }
  usize k = 0;
  for (usize ic = 0; ic < g.in_ch; ++ic) {
    const i8* plane = xq + ic * g.h * g.w;
    for (usize ki = 0; ki < k_; ++ki) {
      for (usize kj = 0; kj < k_; ++kj, ++k) {
        i8* row = T + k * P;
        for (usize oi = 0; oi < g.oh; ++oi) {
          i8* dst = row + oi * g.ow;
          const isize hi =
              static_cast<isize>(oi * g.stride + ki) - static_cast<isize>(g.pad);
          if (hi < 0 || hi >= static_cast<isize>(g.h)) {
            std::memset(dst, 0, g.ow);
            continue;
          }
          const i8* src_row = plane + static_cast<usize>(hi) * g.w;
          if (g.stride == 1) {
            // wj = oj + kj - pad sweeps a contiguous input span: one memcpy
            // per output row, zero-filled where it hangs over the padding.
            const isize wj0 = static_cast<isize>(kj) - static_cast<isize>(g.pad);
            const usize lo = wj0 < 0 ? static_cast<usize>(-wj0) : 0;
            const isize span_end = static_cast<isize>(g.w) - wj0;
            usize hi_oj = span_end < 0 ? 0
                                       : std::min(static_cast<usize>(span_end), g.ow);
            if (hi_oj < lo) hi_oj = lo;
            std::memset(dst, 0, lo);
            std::memcpy(dst + lo, src_row + wj0 + static_cast<isize>(lo), hi_oj - lo);
            std::memset(dst + hi_oj, 0, g.ow - hi_oj);
          } else {
            for (usize oj = 0; oj < g.ow; ++oj) {
              const isize wj =
                  static_cast<isize>(oj * g.stride + kj) - static_cast<isize>(g.pad);
              dst[oj] =
                  (wj >= 0 && wj < static_cast<isize>(g.w)) ? src_row[wj] : i8{0};
            }
          }
        }
      }
    }
  }
  const usize K4 = gemm::padded_k_int8(K);
  if (K4 > K) std::memset(T + K * P, 0, (K4 - K) * P);
}

void Conv2d::forward_into(const Tensor& x, Tensor& y, bool /*train*/, Workspace& ws) {
  assert(x.rank() == 4 && x.dim(1) == in_ch_);
  x_cache_ = x;
  record_act(x);
  const usize n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const usize oh = out_size(h), ow = out_size(w);
  y.resize({n, out_ch_, oh, ow});
  if (gemm::force_naive()) {
    reference::conv2d_forward(x, weight, bias, stride_, pad_, y);
    return;
  }
  // Lowering: per sample, y[oc, p] = bias[oc] + dot(col[p, :], W[oc, :]) over
  // the patch dimension. Patches stream as GEMM rows against the packed
  // weight panels (the small operand), and the strided store writes the NCHW
  // slice directly. The padded taps contribute exact zeros in the same
  // (ic, ki, kj) positions the naive loops skipped, so the accumulation is
  // bit-identical (adding a signed zero never changes a non-negative-zero
  // accumulator, and the accumulator can only be -0.0 if the bias is).
  const ConvGeom g = geom(h, w);
  const usize K = g.patch_size(), P = oh * ow;
  // True-integer regime: the sample's input slice is quantized ONCE (it is
  // a few hundred values; the col buffer repeats each up to k*k times), then
  // the tap-major code gather streams each tap's output plane as contiguous
  // byte spans and interleave_quads_i8 zips four taps at a time into the
  // GEMM's quad-major A panel -- byte-identical to quantizing a float
  // im2col, at a quarter of the gather traffic and none of the per-patch
  // scatter or rounding. The calibrated scale covers the patches (every
  // entry is an input value or an exact padding zero); the uncalibrated
  // fallback derives a per-sample scale from the input slice, which depends
  // only on that sample -- deterministic at any batch or patch split.
  const Int8Pack int8 = int8_pack();
  const bool use_int8 = int8.panel != nullptr && simd::int8_enabled();
  const usize teams = gemm::plan_teams(n, n * P * K * out_ch_);
  if (use_int8) {
    const usize K4 = gemm::padded_k_int8(K);
    const usize chw = in_ch_ * h * w;
    // qa holds the quad-major A panel [0, P*K4) and the tap-major gather
    // staging T [P*K4, 2*P*K4), plus the gather's 16-byte store slack.
    auto int8_sample = [&](usize b, i8* qx, i8* qa) {
      const float* xb = x.data() + b * chw;
      const float sa =
          int8.act_scale > 0.0f ? int8.act_scale : gemm::activation_scale(xb, 1, chw, chw);
      gemm::quantize_activations(xb, 1, chw, chw, sa, qx);
      i8* T = qa + P * K4;
      gather_taps_i8(qx, g, T);
      simd::interleave_quads_i8(T, P, K4 / 4, qa);
      gemm::gemm_nt_int8(P, out_ch_, K, qa, int8.panel, y.data() + b * out_ch_ * P, 1, P,
                         bias.data(), gemm::Bias::kPerCol, sa * int8.weight_scale);
    };
    if (teams > 1) {
      ws.reserve_team(teams);
      ThreadPool::instance().parallel(teams, [&](usize slot, usize nslots) {
        const usize chunk = (n + nslots - 1) / nslots;
        const usize lo = std::min(n, slot * chunk), hi = std::min(n, lo + chunk);
        if (lo >= hi) return;
        i8* qx = ws.qx_buffer(gemm::padded_k_int8(chw), slot);
        i8* qa = ws.qa_buffer(2 * P * K4 + 16, slot);
        for (usize b = lo; b < hi; ++b) int8_sample(b, qx, qa);
      });
      return;
    }
    // Single-probe batches run the per-sample GEMM's internal threading
    // instead; the quantize + gather ahead of it are byte-bound and cheap.
    i8* qx = ws.qx_buffer(gemm::padded_k_int8(chw));
    i8* qa = ws.qa_buffer(2 * P * K4 + 16);
    for (usize b = 0; b < n; ++b) int8_sample(b, qx, qa);
    return;
  }
  const float* packed_w = packed_weight();
  if (packed_w == nullptr) {
    float* fresh = ws.pack_buffer(gemm::packed_b_size(out_ch_, K));
    gemm::pack_b(weight.data(), K, out_ch_, K, fresh);  // once, not per sample
    packed_w = fresh;
  }
  // One sample's lowered GEMM over an already-gathered col buffer.
  auto gemm_sample = [&](usize b, const float* col) {
    gemm::gemm_nt_prepacked(P, out_ch_, K, col, K, packed_w, y.data() + b * out_ch_ * P, 1,
                            P, bias.data(), gemm::Bias::kPerCol);
  };
  // Samples are independent GEMMs over disjoint output slices: partition the
  // batch into contiguous chunks across the team (per-slot col buffers), and
  // let the per-sample GEMM parallelise internally instead when the batch is
  // a single sample. Either split is bit-transparent.
  if (teams > 1) {
    ws.reserve_team(teams);
    ThreadPool::instance().parallel(teams, [&](usize slot, usize nslots) {
      const usize chunk = (n + nslots - 1) / nslots;
      const usize lo = std::min(n, slot * chunk), hi = std::min(n, lo + chunk);
      if (lo >= hi) return;
      float* col = ws.col_buffer(P * K, slot);
      for (usize b = lo; b < hi; ++b) {
        im2col(x, b, g, col);
        gemm_sample(b, col);
      }
    });
    return;
  }
  // Batch too small to split (a BFA probe forwards one sample at a time):
  // thread the im2col gather itself so patch materialization stops
  // serializing ahead of the threaded GEMM. Disjoint patch ranges write
  // disjoint rows of the one shared col buffer (sized here, OUTSIDE the
  // region, so no slot ever grows it), and every element is computed exactly
  // as the serial gather computes it -- byte-identical by construction.
  float* col = ws.col_buffer(P * K);
  const usize gather_teams = gemm::plan_teams(P, P * K);
  for (usize b = 0; b < n; ++b) {
    if (gather_teams > 1) {
      ThreadPool::instance().parallel(gather_teams, [&](usize slot, usize nslots) {
        const usize chunk = (P + nslots - 1) / nslots;
        const usize lo = std::min(P, slot * chunk), hi = std::min(P, lo + chunk);
        if (lo < hi) im2col_range(x, b, g, lo, hi, col);
      });
    } else {
      im2col(x, b, g, col);
    }
    gemm_sample(b, col);
  }
}

void Conv2d::backward_into(const Tensor& dy, Tensor& dx, Workspace& /*ws*/) {
  const Tensor& x = x_cache_;
  const usize n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const usize oh = dy.dim(2), ow = dy.dim(3);
  const ConvGeom g = geom(h, w);
  assert(g.oh == oh && g.ow == ow);
  const usize K = g.patch_size();
  dx.resize({n, in_ch_, h, w});
  dx.zero();
  const usize macs = n * out_ch_ * oh * ow * K;
  if (gemm::plan_teams(std::max(n, out_ch_), macs) <= 1) {
    conv_backward_span<true, true>(g, dy, x, weight, 0, n, 0, out_ch_, dx, dweight, dbias);
    return;
  }
  // Threaded: two race-free passes over the shared loop body -- dx slices are
  // per-sample disjoint, dweight/dbias rows per-output-channel disjoint (see
  // conv_backward_span for the byte-identity argument).
  ThreadPool::instance().parallel(gemm::plan_teams(n, macs), [&](usize slot, usize nslots) {
    const usize chunk = (n + nslots - 1) / nslots;
    const usize lo = std::min(n, slot * chunk), hi = std::min(n, lo + chunk);
    conv_backward_span<true, false>(g, dy, x, weight, lo, hi, 0, out_ch_, dx, dweight, dbias);
  });
  ThreadPool::instance().parallel(gemm::plan_teams(out_ch_, macs),
                                  [&](usize slot, usize nslots) {
    const usize chunk = (out_ch_ + nslots - 1) / nslots;
    const usize lo = std::min(out_ch_, slot * chunk), hi = std::min(out_ch_, lo + chunk);
    conv_backward_span<false, true>(g, dy, x, weight, 0, n, lo, hi, dx, dweight, dbias);
  });
}

std::vector<ParamRef> Conv2d::params() {
  return {{"weight", &weight, &dweight, /*quantizable=*/true, /*top_layer=*/0, this},
          {"bias", &bias, &dbias, /*quantizable=*/false, /*top_layer=*/0, this}};
}

// ----------------------------------------------------------------- ReLU ----

void ReLU::forward_into(const Tensor& x, Tensor& y, bool /*train*/, Workspace& /*ws*/) {
  mask_.resize(x.shape());
  y.resize(x.shape());
  for (usize i = 0; i < x.size(); ++i) {
    const bool pos = x[i] > 0.0f;
    mask_[i] = pos ? 1.0f : 0.0f;
    y[i] = pos ? x[i] : 0.0f;
  }
}

void ReLU::backward_into(const Tensor& dy, Tensor& dx, Workspace& /*ws*/) {
  assert(dy.size() == mask_.size());
  dx.resize(dy.shape());
  for (usize i = 0; i < dy.size(); ++i) dx[i] = dy[i] * mask_[i];
}

// ------------------------------------------------------------ MaxPool2d ----

void MaxPool2d::forward_into(const Tensor& x, Tensor& y, bool /*train*/, Workspace& /*ws*/) {
  assert(x.rank() == 4);
  in_shape_ = x.shape();
  const usize n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const usize oh = h / 2, ow = w / 2;
  y.resize({n, c, oh, ow});
  argmax_.assign(n * c * oh * ow, 0);
  usize out_idx = 0;
  for (usize b = 0; b < n; ++b) {
    for (usize ch = 0; ch < c; ++ch) {
      for (usize i = 0; i < oh; ++i) {
        for (usize j = 0; j < ow; ++j) {
          float best = -std::numeric_limits<float>::infinity();
          usize best_idx = 0;
          for (usize di = 0; di < 2; ++di) {
            for (usize dj = 0; dj < 2; ++dj) {
              const usize hi = i * 2 + di, wj = j * 2 + dj;
              const usize idx = ((b * c + ch) * h + hi) * w + wj;
              if (x[idx] > best) {
                best = x[idx];
                best_idx = idx;
              }
            }
          }
          y.at4(b, ch, i, j) = best;
          argmax_[out_idx++] = best_idx;
        }
      }
    }
  }
}

void MaxPool2d::backward_into(const Tensor& dy, Tensor& dx, Workspace& /*ws*/) {
  dx.resize(in_shape_);
  dx.zero();
  for (usize i = 0; i < dy.size(); ++i) dx[argmax_[i]] += dy[i];
}

// -------------------------------------------------------- GlobalAvgPool ----

void GlobalAvgPool::forward_into(const Tensor& x, Tensor& y, bool /*train*/, Workspace& /*ws*/) {
  assert(x.rank() == 4);
  in_shape_ = x.shape();
  const usize n = x.dim(0), c = x.dim(1), hw = x.dim(2) * x.dim(3);
  y.resize({n, c});
  for (usize b = 0; b < n; ++b) {
    for (usize ch = 0; ch < c; ++ch) {
      double acc = 0.0;
      const float* p = x.data() + (b * c + ch) * hw;
      for (usize i = 0; i < hw; ++i) acc += p[i];
      y.at2(b, ch) = static_cast<float>(acc / static_cast<double>(hw));
    }
  }
}

void GlobalAvgPool::backward_into(const Tensor& dy, Tensor& dx, Workspace& /*ws*/) {
  const usize n = in_shape_[0], c = in_shape_[1], hw = in_shape_[2] * in_shape_[3];
  dx.resize(in_shape_);
  const float inv = 1.0f / static_cast<float>(hw);
  for (usize b = 0; b < n; ++b) {
    for (usize ch = 0; ch < c; ++ch) {
      const float g = dy.at2(b, ch) * inv;
      float* p = dx.data() + (b * c + ch) * hw;
      for (usize i = 0; i < hw; ++i) p[i] = g;
    }
  }
}

// -------------------------------------------------------------- Flatten ----

void Flatten::forward_into(const Tensor& x, Tensor& y, bool /*train*/, Workspace& /*ws*/) {
  in_shape_ = x.shape();
  usize f = 1;
  for (usize i = 1; i < x.rank(); ++i) f *= x.dim(i);
  y.resize({x.dim(0), f});
  std::memcpy(y.data(), x.data(), x.size() * sizeof(float));
}

void Flatten::backward_into(const Tensor& dy, Tensor& dx, Workspace& /*ws*/) {
  dx.resize(in_shape_);
  std::memcpy(dx.data(), dy.data(), dy.size() * sizeof(float));
}

// ---------------------------------------------------------- BatchNorm2d ----

BatchNorm2d::BatchNorm2d(usize channels, float momentum, float eps)
    : gamma(Tensor::full({channels}, 1.0f)),
      beta(Tensor::zeros({channels})),
      dgamma(Tensor::zeros({channels})),
      dbeta(Tensor::zeros({channels})),
      running_mean(Tensor::zeros({channels})),
      running_var(Tensor::full({channels}, 1.0f)),
      channels_(channels),
      momentum_(momentum),
      eps_(eps) {}

void BatchNorm2d::forward_into(const Tensor& x, Tensor& y, bool train, Workspace& /*ws*/) {
  assert(x.rank() == 4 && x.dim(1) == channels_);
  in_shape_ = x.shape();
  const usize n = x.dim(0), c = channels_, hw = x.dim(2) * x.dim(3);
  const usize count = n * hw;
  batch_mean_.assign(c, 0.0f);
  batch_inv_std_.assign(c, 0.0f);
  y.resize(x.shape());
  x_hat_.resize(x.shape());
  // Channels are fully independent (statistics, normalisation, and running-
  // stat updates all live per channel), so a channel partition is trivially
  // byte-identical to the serial loop.
  ThreadPool::instance().parallel(
      gemm::plan_teams(c, 3 * x.size()), [&](usize slot, usize nslots) {
        const usize chunk = (c + nslots - 1) / nslots;
        const usize ch_lo = std::min(c, slot * chunk), ch_hi = std::min(c, ch_lo + chunk);
        for (usize ch = ch_lo; ch < ch_hi; ++ch) {
          double mean = 0.0, var = 0.0;
          if (train) {
            for (usize b = 0; b < n; ++b) {
              const float* p = x.data() + (b * c + ch) * hw;
              for (usize i = 0; i < hw; ++i) mean += p[i];
            }
            mean /= static_cast<double>(count);
            for (usize b = 0; b < n; ++b) {
              const float* p = x.data() + (b * c + ch) * hw;
              for (usize i = 0; i < hw; ++i) {
                const double d = p[i] - mean;
                var += d * d;
              }
            }
            var /= static_cast<double>(count);
            running_mean[ch] = (1.0f - momentum_) * running_mean[ch] +
                               momentum_ * static_cast<float>(mean);
            running_var[ch] =
                (1.0f - momentum_) * running_var[ch] + momentum_ * static_cast<float>(var);
          } else {
            mean = running_mean[ch];
            var = running_var[ch];
          }
          const float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
          batch_mean_[ch] = static_cast<float>(mean);
          batch_inv_std_[ch] = inv_std;
          for (usize b = 0; b < n; ++b) {
            const float* p = x.data() + (b * c + ch) * hw;
            float* xh = x_hat_.data() + (b * c + ch) * hw;
            float* yp = y.data() + (b * c + ch) * hw;
            for (usize i = 0; i < hw; ++i) {
              xh[i] = (p[i] - static_cast<float>(mean)) * inv_std;
              yp[i] = gamma[ch] * xh[i] + beta[ch];
            }
          }
        }
      });
}

void BatchNorm2d::backward_into(const Tensor& dy, Tensor& dx, Workspace& /*ws*/) {
  const usize n = in_shape_[0], c = channels_, hw = in_shape_[2] * in_shape_[3];
  const double count = static_cast<double>(n * hw);
  dx.resize(in_shape_);
  // Per-channel independent (reductions, dgamma/dbeta, and dx slices), so the
  // channel partition is byte-identical to the serial loop.
  ThreadPool::instance().parallel(
      gemm::plan_teams(c, 4 * dy.size()), [&](usize slot, usize nslots) {
        const usize chunk = (c + nslots - 1) / nslots;
        const usize ch_lo = std::min(c, slot * chunk), ch_hi = std::min(c, ch_lo + chunk);
        for (usize ch = ch_lo; ch < ch_hi; ++ch) {
          // Standard batch-norm backward using cached x_hat and inv_std.
          double sum_dy = 0.0, sum_dy_xhat = 0.0;
          for (usize b = 0; b < n; ++b) {
            const float* gy = dy.data() + (b * c + ch) * hw;
            const float* xh = x_hat_.data() + (b * c + ch) * hw;
            for (usize i = 0; i < hw; ++i) {
              sum_dy += gy[i];
              sum_dy_xhat += static_cast<double>(gy[i]) * xh[i];
            }
          }
          dbeta[ch] += static_cast<float>(sum_dy);
          dgamma[ch] += static_cast<float>(sum_dy_xhat);
          const float g = gamma[ch], inv_std = batch_inv_std_[ch];
          for (usize b = 0; b < n; ++b) {
            const float* gy = dy.data() + (b * c + ch) * hw;
            const float* xh = x_hat_.data() + (b * c + ch) * hw;
            float* gx = dx.data() + (b * c + ch) * hw;
            for (usize i = 0; i < hw; ++i) {
              gx[i] = static_cast<float>(
                  static_cast<double>(g) * inv_std *
                  (static_cast<double>(gy[i]) - sum_dy / count -
                   static_cast<double>(xh[i]) * sum_dy_xhat / count));
            }
          }
        }
      });
}

std::vector<ParamRef> BatchNorm2d::params() {
  return {{"gamma", &gamma, &dgamma, /*quantizable=*/false},
          {"beta", &beta, &dbeta, /*quantizable=*/false}};
}

// ------------------------------------------------------------ Sequential ----

const Tensor& Sequential::forward_cached(const Tensor& x, bool train, Workspace& ws) {
  Tensor& x0 = ws.slot(this, Workspace::SlotKind::kActivation, 0);
  x0 = x;
  const Tensor* in = &x0;
  for (usize i = 0; i < layers_.size(); ++i) {
    Tensor& out = ws.slot(this, Workspace::SlotKind::kActivation, i + 1);
    layers_[i]->forward_into(*in, out, train, ws);
    in = &out;
  }
  clean_frontier_ = layers_.size();
  cache_ws_ = &ws;
  return *in;
}

const Tensor& Sequential::forward_from(usize first_changed, bool train, Workspace& ws) {
  if (cache_ws_ != &ws) {
    throw std::logic_error(
        "Sequential::forward_from: no cached forward to reuse in this workspace");
  }
  // Activations beyond the clean frontier may carry an earlier probe's
  // perturbation; restart from whichever is earlier.
  const usize start = std::min(first_changed, clean_frontier_);
  const Tensor* in = &ws.slot(this, Workspace::SlotKind::kActivation, start);
  for (usize i = start; i < layers_.size(); ++i) {
    Tensor& out = ws.slot(this, Workspace::SlotKind::kActivation, i + 1);
    layers_[i]->forward_into(*in, out, train, ws);
    in = &out;
  }
  clean_frontier_ = std::min(first_changed, layers_.size());
  return *in;
}

const Tensor& Sequential::backward_cached(const Tensor& dy, Workspace& ws) {
  const Tensor* g = &dy;
  for (usize i = layers_.size(); i-- > 0;) {
    Tensor& gx = ws.slot(this, Workspace::SlotKind::kGradient, i);
    layers_[i]->backward_into(*g, gx, ws);
    g = &gx;
  }
  return *g;
}

void Sequential::forward_into(const Tensor& x, Tensor& y, bool train, Workspace& ws) {
  y = forward_cached(x, train, ws);
}

void Sequential::backward_into(const Tensor& dy, Tensor& dx, Workspace& ws) {
  dx = backward_cached(dy, ws);
}

std::vector<Tensor*> Sequential::state_tensors() {
  std::vector<Tensor*> out;
  for (auto& l : layers_) {
    for (Tensor* t : l->state_tensors()) out.push_back(t);
  }
  return out;
}

std::vector<ParamRef> Sequential::params() {
  std::vector<ParamRef> out;
  for (usize i = 0; i < layers_.size(); ++i) {
    for (auto& p : layers_[i]->params()) {
      p.name = std::to_string(i) + "." + layers_[i]->name() + "." + p.name;
      // The outermost Sequential wins, so after Model::params() this is the
      // index within the model's top-level net -- the forward_from argument.
      p.top_layer = i;
      out.push_back(p);
    }
  }
  return out;
}

// --------------------------------------------------------- ResidualBlock ----

ResidualBlock::ResidualBlock(usize in_ch, usize out_ch, usize stride, sys::Rng& rng) {
  body_.add(std::make_unique<Conv2d>(in_ch, out_ch, 3, stride, 1, rng));
  body_.add(std::make_unique<BatchNorm2d>(out_ch));
  body_.add(std::make_unique<ReLU>());
  body_.add(std::make_unique<Conv2d>(out_ch, out_ch, 3, 1, 1, rng));
  body_.add(std::make_unique<BatchNorm2d>(out_ch));
  if (stride != 1 || in_ch != out_ch) {
    projection_ = std::make_unique<Sequential>();
    projection_->add(std::make_unique<Conv2d>(in_ch, out_ch, 1, stride, 0, rng));
    projection_->add(std::make_unique<BatchNorm2d>(out_ch));
  }
}

void ResidualBlock::forward_into(const Tensor& x, Tensor& y, bool train, Workspace& ws) {
  const Tensor& f = body_.forward_cached(x, train, ws);
  const Tensor& s = projection_ ? projection_->forward_cached(x, train, ws) : x;
  assert(f.size() == s.size());
  y.resize(f.shape());
  sum_mask_.resize(f.shape());
  for (usize i = 0; i < f.size(); ++i) {
    const float v = f[i] + s[i];
    const bool pos = v > 0.0f;
    sum_mask_[i] = pos ? 1.0f : 0.0f;
    y[i] = pos ? v : 0.0f;
  }
}

void ResidualBlock::backward_into(const Tensor& dy, Tensor& dx, Workspace& ws) {
  Tensor& dsum = ws.slot(this, Workspace::SlotKind::kScratch, 0);
  dsum.resize(dy.shape());
  for (usize i = 0; i < dy.size(); ++i) dsum[i] = dy[i] * sum_mask_[i];
  dx = body_.backward_cached(dsum, ws);
  if (projection_) {
    dx.add_(projection_->backward_cached(dsum, ws));
  } else {
    dx.add_(dsum);
  }
}

std::vector<Tensor*> ResidualBlock::state_tensors() {
  std::vector<Tensor*> out = body_.state_tensors();
  if (projection_) {
    for (Tensor* t : projection_->state_tensors()) out.push_back(t);
  }
  return out;
}

std::vector<ParamRef> ResidualBlock::params() {
  std::vector<ParamRef> out;
  for (auto& p : body_.params()) {
    p.name = "body." + p.name;
    out.push_back(p);
  }
  if (projection_) {
    for (auto& p : projection_->params()) {
      p.name = "proj." + p.name;
      out.push_back(p);
    }
  }
  return out;
}

}  // namespace dnnd::nn
