#include "nn/loss.hpp"

#include <cassert>
#include <cmath>

namespace dnnd::nn {

namespace {
/// Writes softmax probabilities of one row into `probs` (stable form).
void row_softmax(const float* logits, usize c, std::vector<double>& probs) {
  double mx = logits[0];
  for (usize j = 1; j < c; ++j) mx = std::max(mx, static_cast<double>(logits[j]));
  double denom = 0.0;
  for (usize j = 0; j < c; ++j) {
    probs[j] = std::exp(static_cast<double>(logits[j]) - mx);
    denom += probs[j];
  }
  for (usize j = 0; j < c; ++j) probs[j] /= denom;
}

/// Per-thread softmax scratch so the loss helpers allocate nothing in steady
/// state (the campaign harness evaluates models from many threads at once).
std::vector<double>& probs_scratch(usize c) {
  thread_local std::vector<double> probs;
  if (probs.size() < c) probs.resize(c);
  return probs;
}

usize argmax_row(const float* row, usize c) {
  usize best = 0;
  for (usize j = 1; j < c; ++j) {
    if (row[j] > row[best]) best = j;
  }
  return best;
}

/// Shared per-row evaluation: softmax into `probs`, cross-entropy term for
/// label `y`, and whether the argmax hits it. Single source of the clamp and
/// stabilization all loss entry points must agree on bit-for-bit.
double row_loss_and_hit(const float* row, usize c, u32 y, std::vector<double>& probs,
                        bool& hit) {
  row_softmax(row, c, probs);
  hit = argmax_row(row, c) == y;
  return -std::log(std::max(probs[y], 1e-12));
}
}  // namespace

void softmax_cross_entropy_into(const Tensor& logits, const std::vector<u32>& labels,
                                LossResult& out) {
  assert(logits.rank() == 2);
  const usize n = logits.dim(0), c = logits.dim(1);
  assert(labels.size() == n);
  out.dlogits.resize({n, c});
  out.correct = 0;
  std::vector<double>& probs = probs_scratch(c);
  double total = 0.0;
  for (usize i = 0; i < n; ++i) {
    const float* row = logits.data() + i * c;
    const u32 y = labels[i];
    assert(y < c);
    bool hit = false;
    total += row_loss_and_hit(row, c, y, probs, hit);
    if (hit) out.correct += 1;
    for (usize j = 0; j < c; ++j) {
      out.dlogits.at2(i, j) =
          static_cast<float>((probs[j] - (j == y ? 1.0 : 0.0)) / static_cast<double>(n));
    }
  }
  out.loss = total / static_cast<double>(n);
}

LossResult softmax_cross_entropy(const Tensor& logits, const std::vector<u32>& labels) {
  LossResult out;
  softmax_cross_entropy_into(logits, labels, out);
  return out;
}

double softmax_cross_entropy_loss(const Tensor& logits, const std::vector<u32>& labels) {
  assert(logits.rank() == 2);
  const usize n = logits.dim(0), c = logits.dim(1);
  std::vector<double>& probs = probs_scratch(c);
  double total = 0.0;
  for (usize i = 0; i < n; ++i) {
    bool hit = false;
    total += row_loss_and_hit(logits.data() + i * c, c, labels[i], probs, hit);
  }
  return total / static_cast<double>(n);
}

BatchEval evaluate_logits(const Tensor& logits, const std::vector<u32>& labels) {
  assert(logits.rank() == 2);
  const usize n = logits.dim(0), c = logits.dim(1);
  assert(labels.size() == n);
  std::vector<double>& probs = probs_scratch(c);
  BatchEval out;
  double total = 0.0;
  for (usize i = 0; i < n; ++i) {
    bool hit = false;
    total += row_loss_and_hit(logits.data() + i * c, c, labels[i], probs, hit);
    if (hit) out.correct += 1;
  }
  out.loss = total / static_cast<double>(n == 0 ? 1 : n);
  out.accuracy = static_cast<double>(out.correct) / static_cast<double>(n == 0 ? 1 : n);
  return out;
}

std::vector<u32> argmax_rows(const Tensor& logits) {
  const usize n = logits.dim(0), c = logits.dim(1);
  std::vector<u32> out(n);
  for (usize i = 0; i < n; ++i) {
    out[i] = static_cast<u32>(argmax_row(logits.data() + i * c, c));
  }
  return out;
}

}  // namespace dnnd::nn
