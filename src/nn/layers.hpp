// Neural-network layers with full forward/backward passes. Every layer caches
// what its backward pass needs during forward; backward accumulates parameter
// gradients (call Model::zero_grad between batches) and returns dL/dx.
//
// The compute API is arena-based: forward_into/backward_into write into
// caller-provided tensors and draw all scratch from a Workspace, so the
// steady state performs zero heap allocations. Dense and Conv2d lower onto
// the cache-blocked GEMM in nn/gemm.hpp (Conv2d via im2col) while preserving
// the naive loops' per-output accumulation order bit-exactly. The
// value-returning forward/backward wrappers remain for tests and one-off use.
#pragma once

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "nn/conv_patch.hpp"
#include "nn/tensor.hpp"
#include "nn/workspace.hpp"

namespace dnnd::nn {

class Layer;

/// A named view of one parameter tensor and its gradient buffer.
/// `quantizable` marks weights the BFA threat model targets (conv/dense
/// weights); biases and batch-norm affine parameters are not quantized,
/// matching the paper's 8-bit weight-only quantization.
struct ParamRef {
  std::string name;
  Tensor* value = nullptr;
  Tensor* grad = nullptr;
  bool quantizable = false;
  /// Index of the layer that owns this parameter within the outermost
  /// Sequential that enumerated it (the Model's net for Model::params()).
  /// This is the `first_changed` argument Sequential::forward_from needs to
  /// incrementally re-evaluate after the parameter is perturbed.
  usize top_layer = 0;
  /// The layer object the parameter belongs to (the innermost one, not a
  /// wrapping Sequential). QuantizedModel uses it to attach resident packed
  /// weight panels to Dense/Conv2d for the fused int8 forward path.
  Layer* owner = nullptr;
};

/// Abstract layer.
class Layer {
 public:
  virtual ~Layer() = default;

  /// Computes the layer output into `y` (resized as needed). `train` toggles
  /// batch-statistics behaviour (BatchNorm) -- it does not change caching;
  /// backward is always legal after forward. All scratch comes from `ws`;
  /// with stable shapes and workspace this allocates nothing.
  virtual void forward_into(const Tensor& x, Tensor& y, bool train, Workspace& ws) = 0;

  /// Propagates dL/dy -> dL/dx into `dx`, accumulating parameter gradients.
  virtual void backward_into(const Tensor& dy, Tensor& dx, Workspace& ws) = 0;

  /// Value-returning convenience wrappers over the arena API. They run
  /// against a layer-owned workspace; the engine paths (Model, attacks)
  /// use the *_into forms with the model's workspace instead.
  Tensor forward(const Tensor& x, bool train);
  Tensor backward(const Tensor& dy);

  /// Parameter views (empty for stateless layers).
  virtual std::vector<ParamRef> params() { return {}; }

  /// Non-parameter persistent state (BatchNorm running statistics). Needed
  /// to snapshot/restore a model completely.
  virtual std::vector<Tensor*> state_tensors() { return {}; }

  [[nodiscard]] virtual std::string name() const = 0;

  /// Fused int8 residency: `panel` is a pre-packed weight panel (gemm::pack_b
  /// layout over the layer's {dim(0), size/dim(0)} weight matrix) that the
  /// provider (quant::QuantizedModel) keeps bit-identical to
  /// pack_b(weight) at all times. Layers whose forward lowers onto a packed
  /// GEMM B operand (Dense, Conv2d) consume it directly instead of re-packing
  /// `weight` every call; for every other layer attaching is inert.
  void attach_packed_weight(const float* panel) { resident_pack_ = panel; }
  void detach_packed_weight(const float* panel) {
    if (resident_pack_ == panel) resident_pack_ = nullptr;
  }
  /// Guard hook for code that mutates parameter tensors directly instead of
  /// through quant::QuantizedModel (Model::load_state, the optimizer): drops
  /// any attached panel (float and int8) so forward falls back to reading the
  /// float weights -- slower but never stale. QuantizedModel::set_fused(true)
  /// re-attaches.
  void drop_packed_weight() {
    resident_pack_ = nullptr;
    int8_pack_ = {};
  }
  [[nodiscard]] const float* packed_weight() const { return resident_pack_; }

  /// True-integer int8 residency (the DNND_INT8 regime): raw weight codes in
  /// gemm::pack_b_q8 layout plus the symmetric scales needed to requantize.
  /// act_scale == 0 means "uncalibrated": forward derives a per-call scale
  /// from the live input instead (deterministic, but costs an extra pass and
  /// floats the quantization grid per batch).
  struct Int8Pack {
    const i8* panel = nullptr;
    float weight_scale = 1.0f;
    float act_scale = 0.0f;
  };
  void attach_int8_pack(const Int8Pack& pack) { int8_pack_ = pack; }
  void detach_int8_pack(const i8* panel) {
    if (int8_pack_.panel == panel) int8_pack_ = {};
  }
  [[nodiscard]] const Int8Pack& int8_pack() const { return int8_pack_; }

  /// Activation-calibration probe: while set, every Dense/Conv2d forward
  /// folds max|input| into *sink. QuantizedModel::calibrate_int8 points it at
  /// the per-layer amax accumulator for one recording pass, then clears it.
  void set_act_probe(float* sink) { act_probe_ = sink; }

 protected:
  /// Called by quantizable layers at the top of forward_into.
  void record_act(const Tensor& x) {
    if (act_probe_ != nullptr) *act_probe_ = std::max(*act_probe_, x.abs_max());
  }

 private:
  std::unique_ptr<Workspace> legacy_ws_;  ///< lazily created for the wrappers
  const float* resident_pack_ = nullptr;
  Int8Pack int8_pack_;
  float* act_probe_ = nullptr;
};

/// Fully-connected layer: y = x W^T + b, W: {out, in}.
class Dense final : public Layer {
 public:
  Dense(usize in_features, usize out_features, sys::Rng& rng);

  void forward_into(const Tensor& x, Tensor& y, bool train, Workspace& ws) override;
  void backward_into(const Tensor& dy, Tensor& dx, Workspace& ws) override;
  std::vector<ParamRef> params() override;
  [[nodiscard]] std::string name() const override { return "dense"; }

  [[nodiscard]] usize in_features() const { return in_; }
  [[nodiscard]] usize out_features() const { return out_; }

  Tensor weight;  ///< {out, in}
  Tensor bias;    ///< {out}
  Tensor dweight;
  Tensor dbias;

 private:
  usize in_, out_;
  Tensor x_cache_;
};

/// 2-D convolution, square kernel, NCHW. y = conv(x, W) + b, computed as a
/// GEMM over im2col patches (weight rows x patch rows).
class Conv2d final : public Layer {
 public:
  Conv2d(usize in_ch, usize out_ch, usize kernel, usize stride, usize padding, sys::Rng& rng);

  void forward_into(const Tensor& x, Tensor& y, bool train, Workspace& ws) override;
  void backward_into(const Tensor& dy, Tensor& dx, Workspace& ws) override;
  std::vector<ParamRef> params() override;
  [[nodiscard]] std::string name() const override { return "conv2d"; }

  [[nodiscard]] usize out_size(usize in_size) const { return (in_size + 2 * pad_ - k_) / stride_ + 1; }

  Tensor weight;  ///< {out_ch, in_ch, k, k}
  Tensor bias;    ///< {out_ch}
  Tensor dweight;
  Tensor dbias;

 private:
  [[nodiscard]] ConvGeom geom(usize h, usize w) const {
    return {in_ch_, k_, stride_, pad_, h, w, out_size(h), out_size(w)};
  }
  /// Gathers sample `b`'s patches into `col`, patch-major: col[p*K + kk].
  void im2col(const Tensor& x, usize b, const ConvGeom& g, float* col) const;
  /// Gathers only patches [p_lo, p_hi) of sample b into col (row p at
  /// col + p * patch_size). Disjoint ranges touch disjoint col rows, so the
  /// threaded gather in forward_into can partition one sample's patches
  /// across a pool team into one shared buffer, byte-identically.
  void im2col_range(const Tensor& x, usize b, const ConvGeom& g, usize p_lo, usize p_hi,
                    float* col) const;
  /// Int8 gather over a pre-quantized input slice `xq` (the sample's
  /// in_ch*h*w codes), TAP-major: T row k (flat tap (ic, ki, kj)) holds that
  /// tap's code for every output pixel p -- for stride 1 each T row is just
  /// a shifted copy of input rows, so the gather runs as oh memcpys of
  /// ow-byte spans per tap instead of P per-patch scatter lambdas. Rows
  /// K..padded_k_int8(K) are zeroed; simd::interleave_quads_i8 then zips T
  /// into the GEMM's quad-major A panel. Gathering codes commutes exactly
  /// with quantizing gathered floats -- every patch entry is an input value
  /// (same code either way) or an exact padding zero (code 0) -- so the
  /// pipeline is byte-identical to quantizing a float im2col. `T` must have
  /// 16 bytes of slack past padded_k_int8(K) * oh * ow: the small-image fast
  /// path writes whole 16-byte lanes whose tails are rewritten by later rows
  /// (the final one lands in the slack).
  void gather_taps_i8(const i8* xq, const ConvGeom& g, i8* T) const;

  usize in_ch_, out_ch_, k_, stride_, pad_;
  Tensor x_cache_;
};

/// Elementwise max(x, 0).
class ReLU final : public Layer {
 public:
  void forward_into(const Tensor& x, Tensor& y, bool train, Workspace& ws) override;
  void backward_into(const Tensor& dy, Tensor& dx, Workspace& ws) override;
  [[nodiscard]] std::string name() const override { return "relu"; }

 private:
  Tensor mask_;  ///< 1 where x > 0
};

/// 2x2 max pooling with stride 2 (the only configuration the zoo needs).
class MaxPool2d final : public Layer {
 public:
  void forward_into(const Tensor& x, Tensor& y, bool train, Workspace& ws) override;
  void backward_into(const Tensor& dy, Tensor& dx, Workspace& ws) override;
  [[nodiscard]] std::string name() const override { return "maxpool2d"; }

 private:
  std::vector<usize> argmax_;  ///< flat input index chosen per output element
  std::vector<usize> in_shape_;
};

/// Global average pooling: {N,C,H,W} -> {N,C}.
class GlobalAvgPool final : public Layer {
 public:
  void forward_into(const Tensor& x, Tensor& y, bool train, Workspace& ws) override;
  void backward_into(const Tensor& dy, Tensor& dx, Workspace& ws) override;
  [[nodiscard]] std::string name() const override { return "gap"; }

 private:
  std::vector<usize> in_shape_;
};

/// {N,C,H,W} -> {N, C*H*W}.
class Flatten final : public Layer {
 public:
  void forward_into(const Tensor& x, Tensor& y, bool train, Workspace& ws) override;
  void backward_into(const Tensor& dy, Tensor& dx, Workspace& ws) override;
  [[nodiscard]] std::string name() const override { return "flatten"; }

 private:
  std::vector<usize> in_shape_;
};

/// Per-channel batch normalisation for NCHW tensors with running statistics.
class BatchNorm2d final : public Layer {
 public:
  explicit BatchNorm2d(usize channels, float momentum = 0.1f, float eps = 1e-5f);

  void forward_into(const Tensor& x, Tensor& y, bool train, Workspace& ws) override;
  void backward_into(const Tensor& dy, Tensor& dx, Workspace& ws) override;
  std::vector<ParamRef> params() override;
  std::vector<Tensor*> state_tensors() override { return {&running_mean, &running_var}; }
  [[nodiscard]] std::string name() const override { return "batchnorm2d"; }

  Tensor gamma, beta, dgamma, dbeta;
  Tensor running_mean, running_var;

 private:
  usize channels_;
  float momentum_, eps_;
  // caches for backward
  Tensor x_hat_;
  std::vector<float> batch_mean_, batch_inv_std_;
  std::vector<usize> in_shape_;
};

/// Executes contained layers in order. Used standalone and as the body of
/// residual blocks. Caches every layer's activation in the workspace, which
/// is what makes incremental re-evaluation (forward_from) possible.
class Sequential final : public Layer {
 public:
  Sequential() = default;

  void add(std::unique_ptr<Layer> layer) { layers_.push_back(std::move(layer)); }
  [[nodiscard]] usize layer_count() const { return layers_.size(); }
  [[nodiscard]] Layer& layer(usize i) { return *layers_.at(i); }

  /// Runs the full network, caching each layer's activation in `ws` (slots
  /// keyed by this Sequential; slot 0 holds a copy of the input). Returns a
  /// reference to the final activation, valid until the next call using `ws`.
  const Tensor& forward_cached(const Tensor& x, bool train, Workspace& ws);

  /// Incremental re-evaluation after the parameters of layer `first_changed`
  /// (and only that layer) were perturbed: recomputes layers >= the earliest
  /// layer whose cached activation could be stale and returns the new final
  /// activation. Cost scales with the remaining depth, not the full network.
  ///
  /// Contract: a forward_cached on the same input batch and workspace must
  /// precede; interleaved probes at different layers are handled (the
  /// internal frontier tracks how much of the cache is still clean), but the
  /// cached prefix is only valid as long as layers before `first_changed`
  /// keep their parameters. Throws std::logic_error without a prior cache.
  const Tensor& forward_from(usize first_changed, bool train, Workspace& ws);

  /// dL/d(input) of the last forward, via workspace gradient slots.
  const Tensor& backward_cached(const Tensor& dy, Workspace& ws);

  /// Records that the parameters of layer `first_changed` were mutated
  /// outside a probe (e.g. a committed flip), so cached activations beyond it
  /// are stale. O(1); forward_from restarts from the clamped frontier.
  void invalidate_from(usize first_changed) {
    clean_frontier_ = std::min(clean_frontier_, first_changed);
  }

  /// True when `ws` holds this network's activation cache (a forward_cached
  /// ran against it), i.e. forward_from is legal. The cache's input batch is
  /// whatever that forward received -- Model tracks it for the incremental
  /// evaluation helpers.
  [[nodiscard]] bool has_cache(const Workspace& ws) const { return cache_ws_ == &ws; }

  void forward_into(const Tensor& x, Tensor& y, bool train, Workspace& ws) override;
  void backward_into(const Tensor& dy, Tensor& dx, Workspace& ws) override;
  std::vector<ParamRef> params() override;
  std::vector<Tensor*> state_tensors() override;
  [[nodiscard]] std::string name() const override { return "sequential"; }

 private:
  std::vector<std::unique_ptr<Layer>> layers_;
  /// Activations 0..clean_frontier_ in the cache were computed with the
  /// current (un-probed) parameters of their producing layers. The cache
  /// lives in exactly one workspace at a time (cache_ws_); forward_from
  /// against any other workspace is rejected.
  usize clean_frontier_ = 0;
  const Workspace* cache_ws_ = nullptr;
};

/// ResNet basic block: y = relu(F(x) + shortcut(x)), where F is
/// conv-bn-relu-conv-bn and shortcut is identity or a 1x1 projection.
class ResidualBlock final : public Layer {
 public:
  /// stride > 1 or in_ch != out_ch selects a projection shortcut.
  ResidualBlock(usize in_ch, usize out_ch, usize stride, sys::Rng& rng);

  void forward_into(const Tensor& x, Tensor& y, bool train, Workspace& ws) override;
  void backward_into(const Tensor& dy, Tensor& dx, Workspace& ws) override;
  std::vector<ParamRef> params() override;
  std::vector<Tensor*> state_tensors() override;
  [[nodiscard]] std::string name() const override { return "resblock"; }

 private:
  Sequential body_;
  std::unique_ptr<Sequential> projection_;  ///< null for identity shortcut
  Tensor sum_mask_;  ///< relu mask of (F(x) + shortcut)
};

}  // namespace dnnd::nn
