// Softmax cross-entropy loss (the inference loss L that the BFA maximises).
#pragma once

#include <vector>

#include "nn/tensor.hpp"

namespace dnnd::nn {

/// Result of a loss evaluation over a batch.
struct LossResult {
  double loss = 0.0;      ///< mean cross-entropy
  Tensor dlogits;         ///< gradient w.r.t. the logits (already /N)
  usize correct = 0;      ///< argmax hits, for accuracy bookkeeping
};

/// Loss plus argmax accuracy derived from one logits tensor -- the shared
/// evaluation result of Model::evaluate_batch / evaluate_logits, which
/// replaces the loss-then-second-forward-for-accuracy pattern.
struct BatchEval {
  double loss = 0.0;
  double accuracy = 0.0;  ///< correct / batch size
  usize correct = 0;      ///< argmax hits
};

/// Source-class sentinel for the targeted helpers below: every class except
/// the target counts as a source (the T-BFA N-to-1 regime).
inline constexpr u32 kAllSources = 0xFFFFFFFFu;

/// Per-class breakdown of one logits evaluation plus the bookkeeping a
/// class-targeted (T-BFA) attack needs for a source->target pair: how many
/// source-class rows the model redirects to the target (attack success) and
/// how accurate it stays on everything outside the source set (stealth).
/// Computed from the same single logits tensor as evaluate_logits; the
/// vectors are resized, not reallocated, so a reused instance is
/// allocation-free in steady state.
struct PerClassEval {
  double loss = 0.0;  ///< mean cross-entropy w.r.t. the true labels
  usize rows = 0;
  usize correct = 0;  ///< argmax hits on the true labels
  std::vector<usize> class_correct;  ///< per true class
  std::vector<usize> class_total;    ///< per true class

  usize source_rows = 0;       ///< rows whose true label is in the source set
  usize source_to_target = 0;  ///< source rows predicted as the target class
  usize other_rows = 0;        ///< rows outside the source set
  usize other_correct = 0;     ///< argmax hits among those

  [[nodiscard]] double accuracy() const {
    return static_cast<double>(correct) / static_cast<double>(rows == 0 ? 1 : rows);
  }
  /// Fraction of source rows redirected to the target class.
  [[nodiscard]] double attack_success_rate() const {
    return static_cast<double>(source_to_target) /
           static_cast<double>(source_rows == 0 ? 1 : source_rows);
  }
  /// Accuracy restricted to rows outside the source set (the stealth metric).
  [[nodiscard]] double other_accuracy() const {
    return static_cast<double>(other_correct) /
           static_cast<double>(other_rows == 0 ? 1 : other_rows);
  }
};

/// Computes mean softmax cross-entropy and its gradient for logits {N, C}.
LossResult softmax_cross_entropy(const Tensor& logits, const std::vector<u32>& labels);

/// In-place variant: writes into `out` (dlogits resized, not reallocated in
/// steady state). Identical arithmetic to softmax_cross_entropy.
void softmax_cross_entropy_into(const Tensor& logits, const std::vector<u32>& labels,
                                LossResult& out);

/// Loss only (no gradient allocation) -- used by attack inner loops where
/// only the scalar matters.
double softmax_cross_entropy_loss(const Tensor& logits, const std::vector<u32>& labels);

/// Loss and argmax accuracy from one logits tensor, allocation-free. The
/// loss matches softmax_cross_entropy_loss and the accuracy matches
/// argmax_rows-based counting bit-for-bit.
BatchEval evaluate_logits(const Tensor& logits, const std::vector<u32>& labels);

/// Per-class variant of evaluate_logits for a source->target pair (`source`
/// may be kAllSources). Same softmax / clamp / first-max-wins argmax as every
/// other entry point, so loss and overall counts agree with evaluate_logits
/// bit-for-bit; writes into `out` without allocating in steady state.
void evaluate_logits_per_class(const Tensor& logits, const std::vector<u32>& labels,
                               u32 source, u32 target, PerClassEval& out);

/// Targeted cross-entropy objective of the T-BFA family: the mean CE of
/// source rows toward the TARGET label, plus stealth_weight times the mean CE
/// of non-source rows toward their TRUE labels (the keep-other-classes term;
/// pass 0 for the unconstrained variants). The attacker MINIMIZES this.
/// When `dlogits` is non-null it receives dL/dlogits (resized, not
/// reallocated in steady state); rows of an empty group contribute zero.
double targeted_cross_entropy(const Tensor& logits, const std::vector<u32>& labels,
                              u32 source, u32 target, double stealth_weight,
                              Tensor* dlogits = nullptr);

/// Argmax class per row of logits {N, C}.
std::vector<u32> argmax_rows(const Tensor& logits);

}  // namespace dnnd::nn
