// Serving subsystem tests: deterministic plan (arrivals, coalescing, drops,
// ticks), latency reservoir vs a sorted-copy oracle, bounded-queue edge
// cases, report round trip + validation, and the end-to-end decision-stream
// determinism gate across GEMM thread counts.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <thread>
#include <vector>

#include "core/priority_profiler.hpp"
#include "quant/quantizer.hpp"
#include "serving/report.hpp"
#include "serving/server.hpp"
#include "serving/serving.hpp"
#include "sys/json.hpp"
#include "system/protected_system.hpp"
#include "test_util.hpp"

namespace dnnd::serving {
namespace {

ServeConfig small_config() {
  ServeConfig cfg;
  cfg.rate_rps = 3000;
  cfg.duration_ms = 30;
  cfg.batch_cap = 4;
  cfg.max_wait_us = 1500;
  cfg.queue_depth = 32;
  cfg.seed = 77;
  cfg.attack_every = 4;
  cfg.normalize();
  return cfg;
}

TEST(PoissonSchedule, ReproducibleAndSeedSensitive) {
  const ServeConfig cfg = small_config();
  const auto a = poisson_schedule(cfg, 100);
  const auto b = poisson_schedule(cfg, 100);
  ASSERT_EQ(a.size(), b.size());
  for (usize i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, b[i].id);
    EXPECT_EQ(a[i].arrival_ns, b[i].arrival_ns);
    EXPECT_EQ(a[i].sample, b[i].sample);
  }
  EXPECT_GT(a.size(), 0u);  // 3000 rps for 30 ms: ~90 arrivals

  ServeConfig other = cfg;
  other.seed = 78;
  const auto c = poisson_schedule(other, 100);
  bool differs = c.size() != a.size();
  for (usize i = 0; !differs && i < a.size(); ++i) {
    differs = a[i].arrival_ns != c[i].arrival_ns;
  }
  EXPECT_TRUE(differs);

  // Arrivals are sorted, ids sequential, samples in range.
  for (usize i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].id, i);
    if (i > 0) {
      EXPECT_GE(a[i].arrival_ns, a[i - 1].arrival_ns);
    }
    EXPECT_LT(a[i].sample, 100u);
  }
}

TEST(ServingPlan, BatchesPartitionAdmittedUnderTheCap) {
  const ServeConfig cfg = small_config();
  const ServingPlan plan = plan_serving(cfg, 100);
  ASSERT_GT(plan.batches.size(), 0u);

  EXPECT_EQ(plan.admitted.size() + plan.dropped.size(), plan.arrivals.size());

  usize consumed = 0;
  u64 prev_finish = 0;
  usize hist_mass = 0, hist_batches = 0;
  for (const PlannedBatch& b : plan.batches) {
    EXPECT_EQ(b.first, consumed);          // batches partition plan.admitted
    EXPECT_GE(b.count, 1u);
    EXPECT_LE(b.count, cfg.batch_cap);
    // A batch cannot close before its members arrived, and the single
    // virtual server never overlaps service windows.
    const Request& head = plan.arrivals[plan.admitted[b.first]];
    const Request& tail = plan.arrivals[plan.admitted[b.first + b.count - 1]];
    EXPECT_GE(b.close_ns, tail.arrival_ns);
    // Deadline property: composition freezes within max_wait of the instant
    // the server turned to the head (close <= max(head deadline, prev
    // finish) in the single-server model).
    EXPECT_LE(b.close_ns, std::max<u64>(head.arrival_ns + cfg.max_wait_us * 1000ULL,
                                        prev_finish));
    EXPECT_GE(b.close_ns, prev_finish);
    EXPECT_EQ(b.finish_ns,
              b.close_ns + cfg.service_ns_base + b.count * cfg.service_ns_per_req);
    prev_finish = b.finish_ns;
    consumed += b.count;
  }
  EXPECT_EQ(consumed, plan.admitted.size());
  for (usize size = 0; size < plan.batch_histogram.size(); ++size) {
    hist_mass += size * plan.batch_histogram[size];
    hist_batches += plan.batch_histogram[size];
  }
  EXPECT_EQ(hist_mass, plan.admitted.size());
  EXPECT_EQ(hist_batches, plan.batches.size());

  // Digest pins the whole decision stream; identical inputs reproduce it.
  EXPECT_EQ(plan_serving(cfg, 100).digest, plan.digest);
  // Ticks cover the virtual horizon at the configured period.
  EXPECT_EQ(plan.ticks, plan.last_finish_ns() / (cfg.tick_every_us * 1000ULL));
}

TEST(ServingPlan, EmptyArrivalWindowYieldsEmptyPlan) {
  // 1 rps over 1 ms: the first exponential gap (mean 1 s) exceeds the
  // window for this seed -- the deterministic empty-window edge case.
  ServeConfig cfg;
  cfg.rate_rps = 1;
  cfg.duration_ms = 1;
  cfg.seed = 5;
  cfg.normalize();
  const ServingPlan plan = plan_serving(cfg, 10);
  ASSERT_TRUE(plan.arrivals.empty());
  EXPECT_TRUE(plan.batches.empty());
  EXPECT_TRUE(plan.admitted.empty());
  EXPECT_TRUE(plan.dropped.empty());
  EXPECT_EQ(plan.queue_peak, 0u);
  EXPECT_EQ(plan.last_finish_ns(), 0u);
  EXPECT_EQ(plan.ticks, 0u);
}

TEST(ServingPlan, SingleRequestClosesAtItsDeadline) {
  // Exactly one arrival: the batch must wait out max_wait (cap can never
  // fill) and dispatch with a single member at head arrival + deadline.
  ServeConfig cfg;
  cfg.rate_rps = 50;
  cfg.duration_ms = 10;
  cfg.max_wait_us = 700;
  cfg.seed = 5;
  cfg.normalize();
  const ServingPlan plan = plan_serving(cfg, 10);
  ASSERT_EQ(plan.arrivals.size(), 1u) << "seed drift: pick a seed with one arrival";
  ASSERT_EQ(plan.batches.size(), 1u);
  EXPECT_EQ(plan.batches[0].count, 1u);
  EXPECT_EQ(plan.batches[0].close_ns,
            plan.arrivals[0].arrival_ns + cfg.max_wait_us * 1000ULL);
  EXPECT_EQ(plan.queue_peak, 1u);
}

TEST(ServingPlan, OverloadDropsAreAccounted) {
  // 200k rps against a ~1.1 ms-per-batch virtual server with a 4-deep
  // queue: most arrivals must be dropped, and every arrival is accounted
  // exactly once.
  ServeConfig cfg;
  cfg.rate_rps = 200'000;
  cfg.duration_ms = 10;
  cfg.batch_cap = 2;
  cfg.queue_depth = 4;
  cfg.max_wait_us = 100;
  cfg.service_ns_base = 1'000'000;
  cfg.seed = 9;
  cfg.normalize();
  const ServingPlan plan = plan_serving(cfg, 10);
  ASSERT_GT(plan.arrivals.size(), 100u);
  EXPECT_GT(plan.dropped.size(), 0u);
  EXPECT_EQ(plan.admitted.size() + plan.dropped.size(), plan.arrivals.size());
  EXPECT_LE(plan.queue_peak, cfg.queue_depth);
  // Dropped arrivals never appear in any batch.
  usize batched = 0;
  for (const PlannedBatch& b : plan.batches) batched += b.count;
  EXPECT_EQ(batched, plan.admitted.size());
}

TEST(LatencyReservoir, PercentileMatchesSortedOracle) {
  sys::Rng rng(123);
  for (const usize n : {usize{1}, usize{2}, usize{5}, usize{97}, usize{500}}) {
    std::vector<u64> values(n);
    for (auto& v : values) v = rng.uniform(1'000'000);
    LatencyReservoir res(n, /*seed=*/1);  // cap == n: retains everything
    for (const u64 v : values) res.add(v);

    std::vector<u64> sorted = values;
    std::sort(sorted.begin(), sorted.end());
    for (const double p : {1.0, 50.0, 90.0, 99.0, 99.9, 100.0}) {
      const auto rank = static_cast<usize>(std::ceil(p / 100.0 * static_cast<double>(n)));
      const u64 oracle = sorted[std::max<usize>(rank, 1) - 1];
      EXPECT_EQ(res.percentile(p), oracle) << "n=" << n << " p=" << p;
    }
    EXPECT_EQ(res.percentile(0.0), sorted.front());  // p <= 0: minimum
    EXPECT_EQ(res.percentile(-5.0), sorted.front());
  }
}

TEST(LatencyReservoir, CapsRetentionAndCountsEverything) {
  LatencyReservoir res(10, /*seed=*/7);
  EXPECT_EQ(res.percentile(50.0), 0u);  // empty reservoir
  for (u64 v = 1; v <= 1000; ++v) res.add(v);
  EXPECT_EQ(res.seen(), 1000u);
  ASSERT_EQ(res.samples().size(), 10u);
  for (const u64 s : res.samples()) {
    EXPECT_GE(s, 1u);
    EXPECT_LE(s, 1000u);
  }
  // Percentiles come from the retained sample.
  const u64 p50 = res.percentile(50.0);
  EXPECT_TRUE(std::find(res.samples().begin(), res.samples().end(), p50) !=
              res.samples().end());
}

TEST(BoundedRequestQueue, OverflowAndOrdering) {
  BoundedRequestQueue q(3);
  EXPECT_TRUE(q.try_push(1));
  EXPECT_TRUE(q.try_push(2));
  EXPECT_TRUE(q.try_push(3));
  EXPECT_FALSE(q.try_push(4));  // full -> drop
  EXPECT_EQ(q.peak(), 3u);
  EXPECT_EQ(q.pop(), 1u);  // FIFO
  EXPECT_TRUE(q.try_push(4));  // room again
  EXPECT_EQ(q.pop(), 2u);
  EXPECT_EQ(q.pop(), 3u);
  EXPECT_EQ(q.pop(), 4u);
}

TEST(BoundedRequestQueue, CleanShutdownWithInFlightConsumer) {
  BoundedRequestQueue q(4);
  std::vector<usize> got;
  std::thread consumer([&] {
    while (auto item = q.pop()) got.push_back(*item);
  });
  EXPECT_TRUE(q.push(10));
  EXPECT_TRUE(q.push(11));
  q.close();  // consumer may still be mid-pop; it must drain then stop
  consumer.join();
  EXPECT_EQ(got, (std::vector<usize>{10, 11}));
  EXPECT_FALSE(q.push(12));      // closed
  EXPECT_FALSE(q.try_push(12));  // closed
  EXPECT_EQ(q.pop(), std::nullopt);
}

// ----- end-to-end regime determinism ----------------------------------------

RegimeStats run_test_regime(const ServeConfig& cfg, bool defended, bool attacked) {
  auto model = testutil::trained_mlp();
  const nn::SplitDataset& data = testutil::easy_data();
  auto [ex, ey] = data.test.head(100);
  auto [ax, ay] = data.test.head(32);
  quant::QuantizedModel qm(*model);
  system::ProtectedSystemConfig scfg;
  scfg.seed = cfg.seed;
  system::ProtectedSystem psys(qm, scfg);
  if (defended) {
    core::PriorityProfiler profiler(qm, ax, ay);
    psys.install_dnn_defender(profiler.profile_blocked_attacker(40));
  }
  return serve_regime("test", psys, data.test, ex, ey, ax, ay, cfg, attacked);
}

TEST(ServeRegime, StatsReplayThePlanExactly) {
  const ServeConfig cfg = small_config();
  const ServingPlan plan = plan_serving(cfg, testutil::easy_data().test.size());
  const RegimeStats stats = run_test_regime(cfg, /*defended=*/false, /*attacked=*/false);
  EXPECT_EQ(stats.requests, plan.arrivals.size());
  EXPECT_EQ(stats.admitted, plan.admitted.size());
  EXPECT_EQ(stats.dropped, plan.dropped.size());
  EXPECT_EQ(stats.batches, plan.batches.size());
  EXPECT_EQ(stats.batch_histogram, plan.batch_histogram);
  EXPECT_EQ(stats.queue_peak, plan.queue_peak);
  EXPECT_EQ(stats.ticks, plan.ticks);
  EXPECT_EQ(stats.latencies_seen, stats.admitted);
  EXPECT_GT(stats.accuracy_before, 0.5);
  EXPECT_DOUBLE_EQ(stats.accuracy_before, stats.accuracy_after);  // no attack
}

TEST(ServeRegime, DecisionStreamIsIdenticalAcrossGemmThreadCounts) {
  const ServeConfig cfg = small_config();
  const testutil::ThreadsGuard guard;
  nn::gemm::set_threads(1);
  const RegimeStats t1 = run_test_regime(cfg, /*defended=*/true, /*attacked=*/true);
  nn::gemm::set_threads(2);
  const RegimeStats t2 = run_test_regime(cfg, /*defended=*/true, /*attacked=*/true);
  // Every deterministic field must be byte-identical; wall-clock fields
  // (p50/p99/p999, achieved_rps, wall_seconds) are explicitly NOT compared.
  EXPECT_EQ(t1.digest, t2.digest);
  EXPECT_EQ(t1.requests, t2.requests);
  EXPECT_EQ(t1.dropped, t2.dropped);
  EXPECT_EQ(t1.batches, t2.batches);
  EXPECT_EQ(t1.batch_histogram, t2.batch_histogram);
  EXPECT_EQ(t1.ticks, t2.ticks);
  EXPECT_EQ(t1.attack_attempts, t2.attack_attempts);
  EXPECT_EQ(t1.attack_landed, t2.attack_landed);
  EXPECT_EQ(t1.attack_blocked, t2.attack_blocked);
  EXPECT_DOUBLE_EQ(t1.accuracy_before, t2.accuracy_before);
  EXPECT_DOUBLE_EQ(t1.accuracy_after, t2.accuracy_after);
  EXPECT_GT(t1.attack_attempts, 0u);  // the attacker actually ran
  // And a same-thread-count rerun reproduces the digest too.
  nn::gemm::set_threads(1);
  const RegimeStats t3 = run_test_regime(cfg, /*defended=*/true, /*attacked=*/true);
  EXPECT_EQ(t1.digest, t3.digest);
}

// ----- report ----------------------------------------------------------------

ServingReport sample_report() {
  ServingReport report;
  report.model = "mlp";
  report.threads = 2;
  report.simd = "scalar";
  report.config = small_config();
  RegimeStats r;
  r.name = "defense-off";
  r.requests = 10;
  r.admitted = 8;
  r.dropped = 2;
  r.batches = 4;
  r.batch_histogram = {0, 1, 2, 1};  // one 1-batch, two 2-batches, one 3-batch = 8 reqs
  r.queue_peak = 3;
  r.ticks = 5;
  r.accuracy_before = 0.9;
  r.accuracy_after = 0.85;
  r.digest = 0xFEEDFACEFEEDFACEull;  // > 2^53: exercises lexeme-exact as_u64
  r.offered_rps = 333.3;
  r.achieved_rps = 320.0;
  r.wall_seconds = 0.03;
  r.p50_ns = 100;
  r.p99_ns = 200;
  r.p999_ns = 300;
  r.latencies_seen = 8;
  report.regimes.push_back(r);
  return report;
}

TEST(ServingReport, JsonRoundTripIsByteIdentical) {
  const ServingReport report = sample_report();
  const std::string json = report.to_json();
  const ServingReport loaded = serving_report_from_json(json);
  EXPECT_EQ(loaded.to_json(), json);
  EXPECT_EQ(loaded.regimes[0].digest, 0xFEEDFACEFEEDFACEull);
  EXPECT_NO_THROW(validate_serving_report(loaded));
  EXPECT_EQ(deterministic_projection(loaded), deterministic_projection(report));
}

TEST(ServingReport, LoaderRejectsMissingFields) {
  const std::string json = sample_report().to_json();
  // Rename each required key in turn (keeps the JSON well-formed but the
  // member missing); the strict loader must refuse every mutant.
  for (const char* key : {"\"digest\"", "\"ticks\"", "\"config\"", "\"p999_ns\"",
                          "\"batch_histogram\"", "\"accuracy_after\""}) {
    std::string broken = json;
    const auto pos = broken.find(key);
    ASSERT_NE(pos, std::string::npos) << key;
    broken[pos + 1] = 'x';  // "digest" -> "xigest": same length, missing key
    EXPECT_THROW(serving_report_from_json(broken), sys::JsonParseError) << key;
  }
  EXPECT_THROW(serving_report_from_json(R"({"bench":"bench_grid"})"),
               sys::JsonParseError);  // wrong document type
}

TEST(ServingReport, ValidateCatchesInvariantViolations) {
  {
    ServingReport r = sample_report();
    r.regimes[0].p50_ns = 500;  // > p99
    EXPECT_THROW(validate_serving_report(r), std::runtime_error);
  }
  {
    ServingReport r = sample_report();
    r.regimes[0].dropped = 5;  // admitted + dropped != requests
    EXPECT_THROW(validate_serving_report(r), std::runtime_error);
  }
  {
    ServingReport r = sample_report();
    r.regimes[0].achieved_rps = 0.0;  // admitted > 0 but no throughput
    EXPECT_THROW(validate_serving_report(r), std::runtime_error);
  }
  {
    ServingReport r = sample_report();
    r.regimes[0].batch_histogram[1] = 9;  // histogram mass != admitted
    EXPECT_THROW(validate_serving_report(r), std::runtime_error);
  }
  {
    ServingReport r = sample_report();
    r.regimes[0].accuracy_after = 1.5;
    EXPECT_THROW(validate_serving_report(r), std::runtime_error);
  }
  {
    ServingReport r = sample_report();
    r.regimes.push_back(r.regimes[0]);  // duplicate name
    EXPECT_THROW(validate_serving_report(r), std::runtime_error);
  }
  {
    ServingReport r = sample_report();
    r.regimes.clear();
    EXPECT_THROW(validate_serving_report(r), std::runtime_error);
  }
}

}  // namespace
}  // namespace dnnd::serving
