// Fig. 6: the pipelined four-step swap timeline -- step 4 of swap n doubles
// as step 1 of swap n+1 -- vs. naive serial swaps, both analytically and
// measured on the simulated device (ablation of the paper's parallelism).
#include "bench_util.hpp"
#include "core/swap_engine.hpp"
#include "core/swap_scheduler.hpp"

using namespace dnnd;

namespace {

void print_timeline(const core::Timeline& tl, usize max_ops) {
  for (usize i = 0; i < tl.ops.size() && i < max_ops; ++i) {
    const auto& op = tl.ops[i];
    std::printf("  t=%7.0fns  swap %zu step %u  %s\n", ps_to_ns(op.start), op.swap_index + 1,
                op.step, op.label.c_str());
  }
  if (tl.ops.size() > max_ops) std::printf("  ... (%zu ops total)\n", tl.ops.size());
}

double measured_avg_aaps(bool pipelined, usize swaps) {
  dram::DramConfig cfg = dram::DramConfig::sim_small();
  dram::DramDevice dev(cfg);
  dram::RowRemapper remap(cfg.geo);
  core::SwapEngine engine(dev, remap);
  sys::Rng rng(7);
  for (usize i = 0; i < swaps; ++i) {
    const dram::RowAddr target{0, 0, static_cast<u32>(4 + (i % 8) * 2)};
    const dram::RowAddr nt{0, 0, static_cast<u32>(30 + (i % 8) * 2)};
    // Serial ablation: discard the staged non-target so every swap runs all
    // four steps itself (step 1 cannot overlap the previous step 4).
    if (!pipelined) engine.reset_pipeline();
    engine.protect(target, &nt, rng);
  }
  return static_cast<double>(engine.stats().aaps) / static_cast<double>(swaps);
}

}  // namespace

int main() {
  bench::banner("Fig. 6 -- Pipelined swap timeline (step-4/step-1 overlap)",
                "paper Fig. 6 and the T_swap = 3 x T_AAP analysis of Sec. 5.1");
  const Picoseconds t_aap = sys::LatencyParams{}.t_aap;
  constexpr usize kSwaps = 5;

  std::printf("\nPipelined timeline (%zu swaps):\n", kSwaps);
  const auto pipelined = core::build_swap_timeline(kSwaps, t_aap, true);
  print_timeline(pipelined, 16);
  std::printf("\nSerial timeline (%zu swaps):\n", kSwaps);
  const auto serial = core::build_swap_timeline(kSwaps, t_aap, false);
  print_timeline(serial, 8);

  sys::Table table({"Schedule", "AAPs", "Makespan (ns)", "ns per swap"});
  table.add_row({"pipelined (paper)", std::to_string(pipelined.op_count()),
                 sys::fmt(ps_to_ns(pipelined.makespan), 0),
                 sys::fmt(ps_to_ns(pipelined.makespan) / kSwaps, 0)});
  table.add_row({"serial (ablation)", std::to_string(serial.op_count()),
                 sys::fmt(ps_to_ns(serial.makespan), 0),
                 sys::fmt(ps_to_ns(serial.makespan) / kSwaps, 0)});
  table.print();

  std::printf("\nMeasured on the simulated device (64 swaps):\n");
  sys::Table measured({"Mode", "avg AAPs / swap"});
  measured.add_row({"pipelined (step-4 staging)", sys::fmt(measured_avg_aaps(true, 64), 3)});
  measured.add_row({"serial (cold every swap)", sys::fmt(measured_avg_aaps(false, 64), 3)});
  measured.print();

  std::printf(
      "\nShape check (paper): steady-state swap cost is 3 x T_AAP = %.0f ns; the\n"
      "serial ablation pays 4 x T_AAP = %.0f ns per swap.\n",
      ps_to_ns(3 * t_aap), ps_to_ns(4 * t_aap));
  return 0;
}
