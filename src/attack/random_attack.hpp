// Random bit-flip attack baseline (the paper's Fig. 1(b) comparison): flips
// uniformly-random weight bits. Orders of magnitude less effective than the
// targeted BFA -- the gap DNN-Defender aims to restore.
#pragma once

#include "nn/dataset.hpp"
#include "quant/bit_gradient.hpp"
#include "sys/rng.hpp"

namespace dnnd::attack {

struct RandomAttackResult {
  std::vector<quant::BitLocation> flips;
  /// Accuracy measured after every `measure_every` flips (index 0 = before
  /// any flip).
  std::vector<double> accuracy_trace;
};

class RandomBitAttack {
 public:
  RandomBitAttack(quant::QuantizedModel& qm, sys::Rng rng) : qm_(qm), rng_(rng) {}

  /// Flips one uniformly random bit (over all weight bits), skipping `skip`.
  quant::BitLocation flip_one(const quant::BitSkipSet& skip = {});

  /// Flips `n_flips` random bits, recording accuracy on (x, y) every
  /// `measure_every` flips. Throws std::invalid_argument when
  /// `measure_every` is zero (the sampling period has no "never" setting).
  RandomAttackResult run(usize n_flips, const nn::Tensor& x, const std::vector<u32>& y,
                         usize measure_every = 10);

 private:
  quant::QuantizedModel& qm_;
  sys::Rng rng_;
};

}  // namespace dnnd::attack
