#include <gtest/gtest.h>

#include <cmath>

#include "nn/dataset.hpp"
#include "nn/layers.hpp"
#include "nn/loss.hpp"
#include "nn/model.hpp"
#include "nn/optimizer.hpp"
#include "nn/trainer.hpp"

namespace dnnd::nn {
namespace {

// ---------------------------------------------------------------- Tensor ----

TEST(Tensor, ShapeAndSize) {
  Tensor t({2, 3, 4, 5});
  EXPECT_EQ(t.size(), 120u);
  EXPECT_EQ(t.rank(), 4u);
  EXPECT_EQ(t.dim(2), 4u);
  for (usize i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(Tensor, At4RowMajorLayout) {
  Tensor t({2, 3, 4, 5});
  t.at4(1, 2, 3, 4) = 7.0f;
  EXPECT_EQ(t[((1 * 3 + 2) * 4 + 3) * 5 + 4], 7.0f);
}

TEST(Tensor, ReshapePreservesData) {
  Tensor t({2, 6});
  for (usize i = 0; i < 12; ++i) t[i] = static_cast<float>(i);
  Tensor r = t.reshaped({3, 4});
  EXPECT_EQ(r.dim(0), 3u);
  for (usize i = 0; i < 12; ++i) EXPECT_EQ(r[i], static_cast<float>(i));
}

TEST(Tensor, Reductions) {
  Tensor t({4});
  t[0] = -3.0f;
  t[1] = 1.0f;
  t[2] = 2.0f;
  t[3] = 0.5f;
  EXPECT_FLOAT_EQ(t.min(), -3.0f);
  EXPECT_FLOAT_EQ(t.max(), 2.0f);
  EXPECT_FLOAT_EQ(t.abs_max(), 3.0f);
  EXPECT_DOUBLE_EQ(t.sum(), 0.5);
}

TEST(Tensor, HeNormalVariance) {
  sys::Rng rng(3);
  Tensor t = Tensor::he_normal({10000}, 50, rng);
  double var = 0.0;
  for (usize i = 0; i < t.size(); ++i) var += static_cast<double>(t[i]) * t[i];
  var /= static_cast<double>(t.size());
  EXPECT_NEAR(var, 2.0 / 50.0, 0.01);
}

// -------------------------------------------------- finite-difference util --

/// Checks layer gradients against central finite differences using the probe
/// loss L = sum(c .* y) for a fixed random projection c.
void check_gradients(Layer& layer, const std::vector<usize>& in_shape, u64 seed,
                     double tol = 2e-2) {
  sys::Rng rng(seed);
  Tensor x(in_shape);
  for (usize i = 0; i < x.size(); ++i) x[i] = static_cast<float>(rng.normal(0.0, 1.0));

  Tensor y = layer.forward(x, /*train=*/true);
  Tensor c(y.shape());
  for (usize i = 0; i < c.size(); ++i) c[i] = static_cast<float>(rng.normal(0.0, 1.0));

  for (auto& p : layer.params()) p.grad->zero();
  Tensor dx = layer.backward(c);

  auto probe_loss = [&](Layer& l) {
    Tensor out = l.forward(x, /*train=*/true);
    double loss = 0.0;
    for (usize i = 0; i < out.size(); ++i) loss += static_cast<double>(c[i]) * out[i];
    return loss;
  };

  constexpr double kEps = 1e-3;
  // Input gradient, spot-checked on a stride (full check is O(n^2) forwards).
  const usize stride_x = std::max<usize>(1, x.size() / 24);
  for (usize i = 0; i < x.size(); i += stride_x) {
    const float saved = x[i];
    x[i] = saved + static_cast<float>(kEps);
    const double lp = probe_loss(layer);
    x[i] = saved - static_cast<float>(kEps);
    const double lm = probe_loss(layer);
    x[i] = saved;
    const double numeric = (lp - lm) / (2 * kEps);
    EXPECT_NEAR(dx[i], numeric, tol * std::max(1.0, std::fabs(numeric)))
        << "input grad mismatch at " << i;
  }
  // Parameter gradients (forward uses train=true so BN uses batch stats and
  // the analytic path matches the numeric probe).
  layer.forward(x, true);
  for (auto& p : layer.params()) p.grad->zero();
  layer.backward(c);
  for (auto& p : layer.params()) {
    const usize stride_w = std::max<usize>(1, p.value->size() / 16);
    for (usize i = 0; i < p.value->size(); i += stride_w) {
      const float saved = (*p.value)[i];
      (*p.value)[i] = saved + static_cast<float>(kEps);
      const double lp = probe_loss(layer);
      (*p.value)[i] = saved - static_cast<float>(kEps);
      const double lm = probe_loss(layer);
      (*p.value)[i] = saved;
      const double numeric = (lp - lm) / (2 * kEps);
      EXPECT_NEAR((*p.grad)[i], numeric, tol * std::max(1.0, std::fabs(numeric)))
          << "param " << p.name << " grad mismatch at " << i;
    }
  }
}

// ---------------------------------------------------------------- layers ----

TEST(Dense, ForwardKnownValues) {
  sys::Rng rng(1);
  Dense d(2, 2, rng);
  d.weight[0] = 1.0f;  // W = [[1,2],[3,4]]
  d.weight[1] = 2.0f;
  d.weight[2] = 3.0f;
  d.weight[3] = 4.0f;
  d.bias[0] = 0.5f;
  d.bias[1] = -0.5f;
  Tensor x({1, 2});
  x[0] = 1.0f;
  x[1] = -1.0f;
  Tensor y = d.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 1.0f - 2.0f + 0.5f);
  EXPECT_FLOAT_EQ(y[1], 3.0f - 4.0f - 0.5f);
}

TEST(Dense, GradientCheck) {
  sys::Rng rng(2);
  Dense d(5, 4, rng);
  check_gradients(d, {3, 5}, 20);
}

TEST(Conv2d, OutputShape) {
  sys::Rng rng(3);
  Conv2d c(3, 8, 3, 1, 1, rng);
  Tensor x({2, 3, 12, 12});
  Tensor y = c.forward(x, false);
  EXPECT_EQ(y.shape(), (std::vector<usize>{2, 8, 12, 12}));
  Conv2d s(3, 4, 3, 2, 1, rng);
  EXPECT_EQ(s.forward(x, false).shape(), (std::vector<usize>{2, 4, 6, 6}));
}

TEST(Conv2d, IdentityKernelPassesThrough) {
  sys::Rng rng(4);
  Conv2d c(1, 1, 3, 1, 1, rng);
  c.weight.zero();
  c.weight.at4(0, 0, 1, 1) = 1.0f;  // center tap
  c.bias.zero();
  Tensor x({1, 1, 4, 4});
  for (usize i = 0; i < x.size(); ++i) x[i] = static_cast<float>(i);
  Tensor y = c.forward(x, false);
  for (usize i = 0; i < x.size(); ++i) EXPECT_FLOAT_EQ(y[i], x[i]);
}

TEST(Conv2d, GradientCheck) {
  sys::Rng rng(5);
  Conv2d c(2, 3, 3, 1, 1, rng);
  check_gradients(c, {2, 2, 5, 5}, 21);
}

TEST(Conv2d, GradientCheckStride2) {
  sys::Rng rng(6);
  Conv2d c(2, 2, 3, 2, 1, rng);
  check_gradients(c, {1, 2, 6, 6}, 22);
}

TEST(ReLU, ForwardBackwardMasks) {
  ReLU r;
  Tensor x({4});
  x[0] = -1.0f;
  x[1] = 2.0f;
  x[2] = 0.0f;
  x[3] = 3.0f;
  Tensor y = r.forward(x, false);
  EXPECT_FLOAT_EQ(y[0], 0.0f);
  EXPECT_FLOAT_EQ(y[1], 2.0f);
  EXPECT_FLOAT_EQ(y[2], 0.0f);
  Tensor dy = Tensor::full({4}, 1.0f);
  Tensor dx = r.backward(dy);
  EXPECT_FLOAT_EQ(dx[0], 0.0f);
  EXPECT_FLOAT_EQ(dx[1], 1.0f);
  EXPECT_FLOAT_EQ(dx[2], 0.0f);
  EXPECT_FLOAT_EQ(dx[3], 1.0f);
}

TEST(MaxPool, ForwardPicksMaxAndRoutesGradient) {
  MaxPool2d p;
  Tensor x({1, 1, 2, 2});
  x[0] = 1.0f;
  x[1] = 5.0f;
  x[2] = 3.0f;
  x[3] = 2.0f;
  Tensor y = p.forward(x, false);
  ASSERT_EQ(y.size(), 1u);
  EXPECT_FLOAT_EQ(y[0], 5.0f);
  Tensor dy = Tensor::full({1, 1, 1, 1}, 2.0f);
  Tensor dx = p.backward(dy);
  EXPECT_FLOAT_EQ(dx[1], 2.0f);
  EXPECT_FLOAT_EQ(dx[0], 0.0f);
}

TEST(GlobalAvgPool, ForwardAndGradient) {
  GlobalAvgPool g;
  Tensor x({1, 2, 2, 2});
  for (usize i = 0; i < 8; ++i) x[i] = static_cast<float>(i);
  Tensor y = g.forward(x, false);
  EXPECT_FLOAT_EQ(y.at2(0, 0), 1.5f);
  EXPECT_FLOAT_EQ(y.at2(0, 1), 5.5f);
  Tensor dy({1, 2});
  dy[0] = 4.0f;
  dy[1] = 8.0f;
  Tensor dx = g.backward(dy);
  EXPECT_FLOAT_EQ(dx[0], 1.0f);
  EXPECT_FLOAT_EQ(dx[7], 2.0f);
}

TEST(Flatten, RoundTrip) {
  Flatten f;
  Tensor x({2, 3, 2, 2});
  for (usize i = 0; i < x.size(); ++i) x[i] = static_cast<float>(i);
  Tensor y = f.forward(x, false);
  EXPECT_EQ(y.shape(), (std::vector<usize>{2, 12}));
  Tensor dx = f.backward(y);
  EXPECT_EQ(dx.shape(), x.shape());
  for (usize i = 0; i < x.size(); ++i) EXPECT_EQ(dx[i], x[i]);
}

TEST(BatchNorm, NormalizesBatchStatistics) {
  BatchNorm2d bn(2);
  sys::Rng rng(7);
  Tensor x({8, 2, 3, 3});
  for (usize i = 0; i < x.size(); ++i) x[i] = static_cast<float>(rng.normal(3.0, 2.0));
  Tensor y = bn.forward(x, /*train=*/true);
  // Per-channel mean ~0, var ~1.
  const usize hw = 9;
  for (usize c = 0; c < 2; ++c) {
    double mean = 0.0, var = 0.0;
    for (usize n = 0; n < 8; ++n) {
      for (usize i = 0; i < hw; ++i) mean += y.data()[(n * 2 + c) * hw + i];
    }
    mean /= 72.0;
    for (usize n = 0; n < 8; ++n) {
      for (usize i = 0; i < hw; ++i) {
        const double d = y.data()[(n * 2 + c) * hw + i] - mean;
        var += d * d;
      }
    }
    var /= 72.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(BatchNorm, EvalUsesRunningStats) {
  BatchNorm2d bn(1);
  Tensor x({4, 1, 2, 2});
  for (usize i = 0; i < x.size(); ++i) x[i] = static_cast<float>(i);
  for (int rep = 0; rep < 50; ++rep) bn.forward(x, true);  // converge running stats
  Tensor y_eval = bn.forward(x, false);
  Tensor y_train = bn.forward(x, true);
  for (usize i = 0; i < y_eval.size(); ++i) EXPECT_NEAR(y_eval[i], y_train[i], 0.05);
}

TEST(BatchNorm, GradientCheck) {
  BatchNorm2d bn(3);
  check_gradients(bn, {4, 3, 2, 2}, 23, 5e-2);
}

TEST(Residual, IdentityBlockShapes) {
  sys::Rng rng(8);
  ResidualBlock block(4, 4, 1, rng);
  Tensor x({2, 4, 6, 6});
  EXPECT_EQ(block.forward(x, true).shape(), x.shape());
}

TEST(Residual, ProjectionBlockDownsamples) {
  sys::Rng rng(9);
  ResidualBlock block(4, 8, 2, rng);
  Tensor x({2, 4, 6, 6});
  EXPECT_EQ(block.forward(x, true).shape(), (std::vector<usize>{2, 8, 3, 3}));
}

TEST(Residual, GradientCheckIdentity) {
  sys::Rng rng(10);
  ResidualBlock block(2, 2, 1, rng);
  check_gradients(block, {2, 2, 4, 4}, 24, 5e-2);
}

TEST(Residual, GradientCheckProjection) {
  sys::Rng rng(11);
  ResidualBlock block(2, 4, 2, rng);
  check_gradients(block, {2, 2, 4, 4}, 25, 5e-2);
}

// ------------------------------------------------------------------ loss ----

TEST(Loss, UniformLogitsGiveLogC) {
  Tensor logits({2, 4});
  const auto res = softmax_cross_entropy(logits, {0, 3});
  EXPECT_NEAR(res.loss, std::log(4.0), 1e-9);
}

TEST(Loss, GradientRowsSumToZero) {
  sys::Rng rng(12);
  Tensor logits({3, 5});
  for (usize i = 0; i < logits.size(); ++i) logits[i] = static_cast<float>(rng.normal());
  const auto res = softmax_cross_entropy(logits, {1, 4, 2});
  for (usize n = 0; n < 3; ++n) {
    double row = 0.0;
    for (usize c = 0; c < 5; ++c) row += res.dlogits.at2(n, c);
    EXPECT_NEAR(row, 0.0, 1e-6);
  }
}

TEST(Loss, GradientMatchesFiniteDifference) {
  sys::Rng rng(13);
  Tensor logits({2, 3});
  for (usize i = 0; i < logits.size(); ++i) logits[i] = static_cast<float>(rng.normal());
  const std::vector<u32> labels{2, 0};
  const auto res = softmax_cross_entropy(logits, labels);
  constexpr double kEps = 1e-4;
  for (usize i = 0; i < logits.size(); ++i) {
    const float saved = logits[i];
    logits[i] = saved + static_cast<float>(kEps);
    const double lp = softmax_cross_entropy_loss(logits, labels);
    logits[i] = saved - static_cast<float>(kEps);
    const double lm = softmax_cross_entropy_loss(logits, labels);
    logits[i] = saved;
    EXPECT_NEAR(res.dlogits[i], (lp - lm) / (2 * kEps), 1e-4);
  }
}

TEST(Loss, ArgmaxRows) {
  Tensor logits({2, 3});
  logits.at2(0, 1) = 5.0f;
  logits.at2(1, 2) = 3.0f;
  const auto pred = argmax_rows(logits);
  EXPECT_EQ(pred[0], 1u);
  EXPECT_EQ(pred[1], 2u);
}

TEST(Loss, PerClassEvalMatchesNaiveOracle) {
  sys::Rng rng(17);
  constexpr usize kRows = 32;
  constexpr usize kClasses = 5;
  Tensor logits({kRows, kClasses});
  std::vector<u32> labels(kRows);
  for (usize i = 0; i < logits.size(); ++i) logits[i] = static_cast<float>(rng.normal());
  for (usize n = 0; n < kRows; ++n) labels[n] = static_cast<u32>(rng.uniform(kClasses));

  constexpr u32 kSource = 2;
  constexpr u32 kTarget = 0;
  PerClassEval pce;
  evaluate_logits_per_class(logits, labels, kSource, kTarget, pce);

  // Overall loss/accuracy must agree exactly with the untargeted evaluator
  // (same single-logits-tensor contract).
  const BatchEval ev = evaluate_logits(logits, labels);
  EXPECT_DOUBLE_EQ(pce.loss, ev.loss);
  EXPECT_EQ(pce.rows, kRows);
  EXPECT_DOUBLE_EQ(pce.accuracy(), ev.accuracy);

  // Naive oracle: recount everything from argmax_rows.
  const auto pred = argmax_rows(logits);
  std::vector<usize> cls_correct(kClasses, 0);
  std::vector<usize> cls_total(kClasses, 0);
  usize src_rows = 0, src_to_tgt = 0, other_rows = 0, other_correct = 0;
  for (usize n = 0; n < kRows; ++n) {
    ++cls_total[labels[n]];
    if (pred[n] == labels[n]) ++cls_correct[labels[n]];
    if (labels[n] == kSource) {
      ++src_rows;
      src_to_tgt += pred[n] == kTarget;
    } else {
      ++other_rows;
      other_correct += pred[n] == labels[n];
    }
  }
  ASSERT_EQ(pce.class_total.size(), kClasses);
  for (usize c = 0; c < kClasses; ++c) {
    EXPECT_EQ(pce.class_total[c], cls_total[c]) << "class " << c;
    EXPECT_EQ(pce.class_correct[c], cls_correct[c]) << "class " << c;
  }
  EXPECT_EQ(pce.source_rows, src_rows);
  EXPECT_EQ(pce.source_to_target, src_to_tgt);
  EXPECT_EQ(pce.other_rows, other_rows);
  EXPECT_EQ(pce.other_correct, other_correct);
}

TEST(Loss, PerClassEvalAllSourcesTreatsEveryNonTargetRowAsSource) {
  Tensor logits({4, 3});
  // Rows predict: 1, 1, 0, 2.
  logits.at2(0, 1) = 3.0f;
  logits.at2(1, 1) = 3.0f;
  logits.at2(2, 0) = 3.0f;
  logits.at2(3, 2) = 3.0f;
  const std::vector<u32> labels{0, 1, 2, 2};
  PerClassEval pce;
  evaluate_logits_per_class(logits, labels, kAllSources, /*target=*/1, pce);
  // Sources are the rows whose TRUE label != target: rows 0, 2, 3.
  EXPECT_EQ(pce.source_rows, 3u);
  EXPECT_EQ(pce.source_to_target, 1u);  // only row 0 is predicted as class 1
  // The non-source rows are the true-target rows; row 1 is correct.
  EXPECT_EQ(pce.other_rows, 1u);
  EXPECT_EQ(pce.other_correct, 1u);
}

TEST(Loss, PerClassEvalArgmaxTieBreaksToFirstMax) {
  // All-equal logits: the first class wins, in both the untargeted and the
  // per-class evaluator (shared argmax) -- pinned so a refactor that flips
  // tie-breaking cannot silently shift ASR.
  Tensor logits({2, 3});
  const std::vector<u32> labels{0, 1};
  const auto pred = argmax_rows(logits);
  EXPECT_EQ(pred[0], 0u);
  EXPECT_EQ(pred[1], 0u);
  PerClassEval pce;
  evaluate_logits_per_class(logits, labels, /*source=*/1, /*target=*/0, pce);
  EXPECT_EQ(pce.correct, 1u);           // row 0 only
  EXPECT_EQ(pce.source_rows, 1u);       // row 1
  EXPECT_EQ(pce.source_to_target, 1u);  // tie-break sends row 1 to class 0
}

TEST(Loss, TargetedCrossEntropyGradientMatchesFiniteDifference) {
  sys::Rng rng(19);
  Tensor logits({3, 4});
  for (usize i = 0; i < logits.size(); ++i) logits[i] = static_cast<float>(rng.normal());
  const std::vector<u32> labels{2, 0, 1};
  constexpr u32 kSource = 2;
  constexpr u32 kTarget = 0;
  constexpr double kStealth = 0.7;
  Tensor dlogits;
  const double loss =
      targeted_cross_entropy(logits, labels, kSource, kTarget, kStealth, &dlogits);
  EXPECT_GT(loss, 0.0);
  // eps large enough that float-rounded logit perturbations stay accurate
  // (the per-group 1/n weights make gradient entries O(1), so 1e-4 eps left
  // ~1e-4 rounding noise in the quotient).
  constexpr double kEps = 1e-3;
  for (usize i = 0; i < logits.size(); ++i) {
    const float saved = logits[i];
    logits[i] = saved + static_cast<float>(kEps);
    const double lp = targeted_cross_entropy(logits, labels, kSource, kTarget, kStealth);
    logits[i] = saved - static_cast<float>(kEps);
    const double lm = targeted_cross_entropy(logits, labels, kSource, kTarget, kStealth);
    logits[i] = saved;
    EXPECT_NEAR(dlogits[i], (lp - lm) / (2 * kEps), 1e-3) << "logit " << i;
  }
}

// --------------------------------------------------------------- dataset ----

TEST(Dataset, DeterministicGeneration) {
  const auto a = make_synthetic(SynthSpec::cifar10_like());
  const auto b = make_synthetic(SynthSpec::cifar10_like());
  ASSERT_EQ(a.train.size(), b.train.size());
  for (usize i = 0; i < a.train.images.size(); i += 97) {
    EXPECT_EQ(a.train.images[i], b.train.images[i]);
  }
  EXPECT_EQ(a.train.labels, b.train.labels);
}

TEST(Dataset, HeadIsClassBalanced) {
  const auto data = make_synthetic(SynthSpec::cifar10_like());
  auto [x, y] = data.test.head(20);
  std::vector<int> counts(10, 0);
  for (u32 label : y) counts[label]++;
  for (int c : counts) EXPECT_EQ(c, 2);
}

TEST(Dataset, GatherCopiesRightSamples) {
  const auto data = make_synthetic(SynthSpec::cifar10_like());
  auto [x, y] = data.train.gather({5, 10});
  EXPECT_EQ(x.dim(0), 2u);
  EXPECT_EQ(y[0], data.train.labels[5]);
  EXPECT_EQ(y[1], data.train.labels[10]);
  const usize chw = x.size() / 2;
  for (usize i = 0; i < chw; i += 13) {
    EXPECT_EQ(x[i], data.train.images[5 * chw + i]);
  }
}

TEST(Dataset, SpecsShapeTheSet) {
  SynthSpec spec;
  spec.num_classes = 3;
  spec.train_per_class = 5;
  spec.test_per_class = 2;
  spec.channels = 1;
  spec.height = 6;
  spec.width = 6;
  const auto data = make_synthetic(spec);
  EXPECT_EQ(data.train.size(), 15u);
  EXPECT_EQ(data.test.size(), 6u);
  EXPECT_EQ(data.train.images.shape(), (std::vector<usize>{15, 1, 6, 6}));
}

// --------------------------------------------------- model/optim/trainer ----

TEST(Model, ParamEnumerationAndZeroGrad) {
  sys::Rng rng(14);
  Model m("t");
  m.add(std::make_unique<Dense>(4, 3, rng));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<Dense>(3, 2, rng));
  const auto params = m.params();
  ASSERT_EQ(params.size(), 4u);  // 2x (weight, bias)
  EXPECT_TRUE(params[0].quantizable);
  EXPECT_FALSE(params[1].quantizable);
  EXPECT_EQ(m.weight_count(), 4u * 3u + 3u * 2u);
  // Gradients accumulate, zero_grad clears. Mixed-sign inputs keep the
  // hidden ReLU units alive for any init seed.
  Tensor x({2, 4});
  for (usize i = 0; i < x.size(); ++i) {
    x[i] = (i % 2 == 0 ? 1.0f : -1.0f) * (0.5f + 0.25f * static_cast<float>(i));
  }
  m.loss_and_grad(x, {0, 1});
  double gsum = 0.0;
  for (auto& p : m.params()) gsum += p.grad->l2_norm();
  EXPECT_GT(gsum, 0.0);
  m.zero_grad();
  for (auto& p : m.params()) EXPECT_DOUBLE_EQ(p.grad->sum(), 0.0);
}

TEST(Optimizer, ReducesLossOnToyProblem) {
  sys::Rng rng(15);
  Model m("toy");
  m.add(std::make_unique<Dense>(2, 8, rng));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<Dense>(8, 2, rng));
  // XOR-ish separable data.
  Tensor x({4, 2});
  x.at2(0, 0) = 1.0f;
  x.at2(1, 1) = 1.0f;
  x.at2(2, 0) = -1.0f;
  x.at2(3, 1) = -1.0f;
  const std::vector<u32> y{0, 1, 0, 1};
  SgdConfig cfg;
  cfg.lr = 0.1;
  SgdOptimizer opt(m, cfg);
  const double initial = m.loss(x, y);
  for (int i = 0; i < 100; ++i) {
    m.zero_grad();
    m.loss_and_grad(x, y);
    opt.step();
  }
  EXPECT_LT(m.loss(x, y), initial * 0.2);
  EXPECT_DOUBLE_EQ(m.accuracy(x, y), 1.0);
}

TEST(Model, SaveLoadStateRoundTripsBatchNorm) {
  sys::Rng rng(21);
  Model m("bn");
  m.add(std::make_unique<Conv2d>(1, 2, 3, 1, 1, rng));
  m.add(std::make_unique<BatchNorm2d>(2));
  m.add(std::make_unique<GlobalAvgPool>());
  m.add(std::make_unique<Dense>(2, 2, rng));
  Tensor x({4, 1, 4, 4});
  for (usize i = 0; i < x.size(); ++i) x[i] = static_cast<float>(i % 7) - 3.0f;
  m.forward(x, /*train=*/true);  // moves the running statistics
  const auto snap = m.save_state();
  const Tensor before = m.forward(x, /*train=*/false);
  for (int i = 0; i < 5; ++i) m.forward(x, /*train=*/true);  // drift stats further
  (*m.params()[0].value)[0] += 1.0f;                          // and damage a weight
  m.load_state(snap);
  const Tensor after = m.forward(x, /*train=*/false);
  for (usize i = 0; i < before.size(); ++i) {
    EXPECT_FLOAT_EQ(after[i], before[i]) << "state restore must reproduce inference";
  }
}

TEST(Trainer, LearnsEasySyntheticTask) {
  SynthSpec spec;
  spec.num_classes = 4;
  spec.train_per_class = 60;
  spec.test_per_class = 20;
  spec.channels = 1;
  spec.height = 8;
  spec.width = 8;
  spec.noise = 0.8;
  spec.seed = 555;
  const auto data = make_synthetic(spec);
  sys::Rng rng(16);
  Model m("mlp");
  m.add(std::make_unique<Flatten>());
  m.add(std::make_unique<Dense>(64, 24, rng));
  m.add(std::make_unique<ReLU>());
  m.add(std::make_unique<Dense>(24, 4, rng));
  TrainConfig cfg;
  cfg.epochs = 5;
  const auto report = train(m, data, cfg);
  EXPECT_GT(report.test_accuracy, 0.85);
  EXPECT_LT(report.epoch_loss.back(), report.epoch_loss.front());
  EXPECT_NEAR(evaluate(m, data.test), report.test_accuracy, 1e-9);
}

}  // namespace
}  // namespace dnnd::nn
