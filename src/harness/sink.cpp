#include "harness/sink.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace dnnd::harness {

namespace fs = std::filesystem;

namespace {

void write_text_file(const std::string& path, const std::string& text) {
  const fs::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    fs::create_directories(p.parent_path(), ec);
    if (ec) {
      throw std::runtime_error("cannot create directory " + p.parent_path().string() + ": " +
                               ec.message());
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out << text;
  if (!out) throw std::runtime_error("write failed: " + path);
}

/// Writes `text` through an already-claimed O_EXCL fd; closes it. On failure
/// the claimed slot is released (unlinked) so another writer can take it.
void write_claimed_fd(int fd, const std::string& path, const std::string& text) {
  usize off = 0;
  while (off < text.size()) {
    const ssize_t n = ::write(fd, text.data() + off, text.size() - off);
    if (n < 0) {
      if (errno == EINTR) continue;
      const int err = errno;
      ::close(fd);
      ::unlink(path.c_str());
      throw std::runtime_error("write failed: " + path + ": " + std::strerror(err));
    }
    off += static_cast<usize>(n);
  }
  if (::close(fd) != 0) {
    const int err = errno;
    ::unlink(path.c_str());
    throw std::runtime_error("close failed: " + path + ": " + std::strerror(err));
  }
}

}  // namespace

void StdoutSink::write_text(const std::string& text) {
  std::fwrite(text.data(), 1, text.size(), stdout);
}

void FileSink::write_text(const std::string& text) { write_text_file(path_, text); }

std::string RunDirectorySink::slot_path(usize i) const {
  char name[64];
  std::snprintf(name, sizeof(name), "%s-%04zu.json", stem_.c_str(), i);
  return (fs::path(dir_) / name).string();
}

std::string RunDirectorySink::next_path() const {
  for (usize i = 1; i < 10000; ++i) {
    const std::string candidate = slot_path(i);
    if (!fs::exists(candidate)) return candidate;
  }
  throw std::runtime_error("run directory full: " + dir_);
}

void RunDirectorySink::write_text(const std::string& text) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) throw std::runtime_error("cannot create directory " + dir_ + ": " + ec.message());
  // Claim the slot atomically with O_EXCL: an exists-then-open sequence
  // races against concurrent writers (both see slot N free, the second
  // truncates the first's run). With O_EXCL the loser of the race gets
  // EEXIST and probes the next slot instead of clobbering.
  for (usize i = 1; i < 10000; ++i) {
    const std::string candidate = slot_path(i);
    const int fd = ::open(candidate.c_str(), O_WRONLY | O_CREAT | O_EXCL, 0644);
    if (fd < 0) {
      if (errno == EEXIST) continue;
      throw std::runtime_error("cannot open " + candidate + " for writing: " +
                               std::strerror(errno));
    }
    write_claimed_fd(fd, candidate, text);
    return;
  }
  throw std::runtime_error("run directory full: " + dir_);
}

std::unique_ptr<CampaignSink> sink_from_env(const std::string& stem) {
  if (const char* out = std::getenv("DNND_JSON_OUT"); out != nullptr && out[0] != '\0') {
    const std::string path(out);
    if (path.back() == '/' || fs::is_directory(path)) {
      return std::make_unique<RunDirectorySink>(path, stem);
    }
    // A plain-file destination must be unambiguous: an existing file, or a
    // fresh *.json path. A not-yet-existing extensionless path is usually a
    // run directory missing its trailing slash -- were it treated as a
    // FileSink, every process sharing the variable would overwrite the same
    // file. Refuse loudly instead of corrupting the run.
    const bool json_named = path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0;
    if (!json_named && !fs::exists(path)) {
      throw std::runtime_error(
          "ambiguous DNND_JSON_OUT \"" + path +
          "\": not an existing path, no trailing '/' (run directory), no .json suffix "
          "(single file) -- append '/' for a run directory or '.json' for a file");
    }
    return std::make_unique<FileSink>(path);
  }
  if (const char* dump = std::getenv("DNND_JSON"); dump != nullptr && dump[0] == '1') {
    return std::make_unique<StdoutSink>();
  }
  return nullptr;
}

SinkWriteStatus write_document_from_env(const std::string& json, const std::string& stem,
                                        std::string* destination) {
  std::unique_ptr<CampaignSink> sink;
  try {
    sink = sink_from_env(stem);
  } catch (const std::exception& e) {
    // An unusable DNND_JSON_OUT is a failed persist, not a no-op: the caller
    // asked for an artifact and must not exit 0 without one.
    std::fprintf(stderr, "[sink] FAILED to persist %s: %s\n", stem.c_str(), e.what());
    return SinkWriteStatus::kFailed;
  }
  if (!sink) return SinkWriteStatus::kNoSink;
  if (destination != nullptr) *destination = sink->describe();
  try {
    sink->write_text(json + "\n");
  } catch (const std::exception& e) {
    // Called at the tail of bench mains, after the sweep: losing the whole
    // run to an unwritable path would be worse than a loud stderr line.
    std::fprintf(stderr, "[sink] FAILED to persist %s to %s: %s\n", stem.c_str(),
                 sink->describe().c_str(), e.what());
    return SinkWriteStatus::kFailed;
  }
  return SinkWriteStatus::kWritten;
}

SinkWriteStatus write_campaign_from_env(const CampaignResult& campaign,
                                        std::string* destination) {
  return write_document_from_env(campaign.to_json(), "campaign", destination);
}

}  // namespace dnnd::harness
