#include "serving/server.hpp"

#include <cassert>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <thread>

#include "attack/bfa.hpp"

namespace dnnd::serving {

namespace {

using steady = std::chrono::steady_clock;

/// Rendezvous between the server loop and the attacker thread. The model
/// workspace and the DRAM device are shared and not thread-safe, so attack
/// slots are strictly serialized: the server parks on `done` while the
/// attacker works, which also keeps the decision stream independent of
/// thread scheduling.
struct AttackerChannel {
  std::mutex mu;
  std::condition_variable cv;
  bool requested = false;
  bool done = false;
  bool stop = false;

  void request_and_wait() {
    std::unique_lock<std::mutex> lock(mu);
    requested = true;
    cv.notify_all();
    cv.wait(lock, [&] { return done; });
    done = false;
  }

  /// Attacker side: true = one slot granted, false = shutdown.
  bool await_slot() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return requested || stop; });
    if (stop && !requested) return false;
    requested = false;
    return true;
  }

  void mark_done() {
    const std::lock_guard<std::mutex> lock(mu);
    done = true;
    cv.notify_all();
  }

  void shutdown() {
    const std::lock_guard<std::mutex> lock(mu);
    stop = true;
    cv.notify_all();
  }
};

}  // namespace

RegimeStats serve_regime(const std::string& name, system::ProtectedSystem& psys,
                         const nn::Dataset& pool, const nn::Tensor& eval_x,
                         const std::vector<u32>& eval_y, const nn::Tensor& attack_x,
                         const std::vector<u32>& attack_y, const ServeConfig& cfg,
                         bool attack_on) {
  RegimeStats stats;
  stats.name = name;

  const ServingPlan plan = plan_serving(cfg, pool.size());
  stats.requests = plan.arrivals.size();
  stats.admitted = plan.admitted.size();
  stats.dropped = plan.dropped.size();
  stats.batches = plan.batches.size();
  stats.batch_histogram = plan.batch_histogram;
  stats.queue_peak = plan.queue_peak;
  stats.offered_rps = static_cast<double>(stats.requests) /
                      (static_cast<double>(cfg.duration_ms) / 1e3);

  nn::Model& model = psys.qm().model();
  stats.accuracy_before = model.evaluate_batch(eval_x, eval_y).accuracy;

  u64 digest = plan.digest;

  // ----- attacker thread -----------------------------------------------------
  AttackerChannel channel;
  std::thread attacker;
  if (attack_on) {
    attacker = std::thread([&] {
      // Mirrors ProtectedSystem::run_white_box_attack's inner loop: propose
      // on the synced white-box copy, undo the search's local commit (DRAM
      // is authoritative), carry the flip through the device, learn blocks.
      attack::BfaConfig bcfg;
      attack::ProgressiveBitSearch search(psys.qm(), attack_x, attack_y, bcfg);
      quant::BitSkipSet learned_blocked;
      while (channel.await_slot()) {
        auto rec = search.step(learned_blocked);
        if (rec.has_value()) {
          psys.qm().flip(rec->loc);  // undo the search's commit
          const attack::FlipAttempt attempt = psys.attack_bit(rec->loc);
          stats.attack_attempts += 1;
          if (attempt.success) {
            stats.attack_landed += 1;
          } else {
            stats.attack_blocked += 1;
            learned_blocked.insert(rec->loc);
          }
          // The server is parked on mark_done(), so this interleaves at a
          // deterministic point of the decision stream.
          digest = sys::hash_combine(digest, rec->loc.key(),
                                     static_cast<u64>(attempt.success));
        } else {
          digest = sys::hash_combine(digest, sys::stable_hash64("bfa-exhausted"));
        }
        channel.mark_done();
      }
    });
  }

  // ----- open-loop generator thread ------------------------------------------
  BoundedRequestQueue queue(cfg.queue_depth);
  const steady::time_point t0 = steady::now();
  std::thread generator([&] {
    // Paces ADMITTED requests only: the plan already charged the drops at
    // their virtual arrival instants, so the executor must not re-drop
    // under wall-clock jitter (composition would diverge from the plan).
    for (const usize idx : plan.admitted) {
      const Request& r = plan.arrivals[idx];
      std::this_thread::sleep_until(t0 + std::chrono::nanoseconds(r.arrival_ns));
      if (!queue.push(idx)) return;  // closed early (unreachable in practice)
    }
    queue.close();
  });

  // ----- server loop (this thread) -------------------------------------------
  LatencyReservoir reservoir(cfg.reservoir, cfg.seed);
  const u64 tick_ns = static_cast<u64>(cfg.tick_every_us) * 1000ULL;
  usize ticks_done = 0;
  nn::Tensor batch_x;
  std::vector<u32> batch_y;
  std::vector<usize> members;
  std::vector<usize> sample_idx;
  for (const PlannedBatch& b : plan.batches) {
    members.clear();
    for (usize k = 0; k < b.count; ++k) {
      const auto item = queue.pop();
      if (!item.has_value()) break;  // closed early (shutdown path)
      members.push_back(*item);
    }
    // The generator feeds admitted requests in plan order through a FIFO,
    // so the popped ids replay plan.admitted exactly; folding them into the
    // digest pins the real pipeline against the plan.
    for (usize k = 0; k < members.size(); ++k) {
      assert(members[k] == plan.admitted[b.first + k]);
      digest = sys::hash_combine(digest, plan.arrivals[members[k]].id);
    }
    if (members.empty()) break;

    // Defender maintenance scheduled in VIRTUAL time: pump every periodic
    // tick due by this batch's finish instant. With no attack there are no
    // DRAM commands, so this is the only thing advancing the device clock.
    while (tick_ns > 0 && (ticks_done + 1) * tick_ns <= b.finish_ns) {
      ticks_done += 1;
      psys.advance_time_to(static_cast<Picoseconds>(ticks_done * tick_ns) * 1000);
    }

    if (b.attack_before && attack_on) channel.request_and_wait();

    sample_idx.clear();
    for (const usize idx : members) sample_idx.push_back(plan.arrivals[idx].sample);
    pool.gather_into(sample_idx, batch_x, batch_y);
    const nn::BatchEval eval = model.evaluate_batch(batch_x, batch_y);
    digest = sys::hash_combine(digest, eval.correct);

    const steady::time_point now = steady::now();
    for (const usize idx : members) {
      const auto arrival = t0 + std::chrono::nanoseconds(plan.arrivals[idx].arrival_ns);
      const auto waited = std::chrono::duration_cast<std::chrono::nanoseconds>(
          now - arrival);
      reservoir.add(waited.count() > 0 ? static_cast<u64>(waited.count()) : 0);
    }
  }
  stats.wall_seconds =
      std::chrono::duration_cast<std::chrono::duration<double>>(steady::now() - t0).count();

  queue.close();
  generator.join();
  if (attack_on) {
    channel.shutdown();
    attacker.join();
  }

  stats.ticks = ticks_done;
  digest = sys::hash_combine(digest, ticks_done);
  stats.digest = digest;
  stats.accuracy_after = model.evaluate_batch(eval_x, eval_y).accuracy;

  stats.latencies_seen = reservoir.seen();
  stats.p50_ns = reservoir.percentile(50.0);
  stats.p99_ns = reservoir.percentile(99.0);
  stats.p999_ns = reservoir.percentile(99.9);
  stats.achieved_rps = stats.wall_seconds > 0.0
                           ? static_cast<double>(stats.admitted) / stats.wall_seconds
                           : 0.0;
  return stats;
}

}  // namespace dnnd::serving
