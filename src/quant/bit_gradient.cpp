#include "quant/bit_gradient.hpp"

#include <algorithm>
#include <cassert>

namespace dnnd::quant {

std::vector<BitLocation> BitSkipSet::to_vector() const {
  std::vector<BitLocation> out;
  out.reserve(keys_.size());
  for (u64 k : keys_) out.push_back(BitLocation::from_key(k));
  return out;
}

double flip_gain(const QuantizedLayer& layer, usize index, u32 bit) {
  assert(index < layer.size());
  const i8 q = layer.q[index];
  const double g = (*layer.grad)[index];
  const double dq = (get_bit(q, bit) ? -1.0 : 1.0) * bit_weight(bit);
  return g * static_cast<double>(layer.scale) * dq;
}

std::vector<FlipCandidate> top_k_flips(const QuantizedLayer& layer, usize layer_index, usize k,
                                       const BitSkipSet& skip) {
  std::vector<FlipCandidate> best;
  best.reserve(k + 1);
  for (usize i = 0; i < layer.size(); ++i) {
    const double g = (*layer.grad)[i];
    if (g == 0.0) continue;
    const double s_abs = std::abs(g) * static_cast<double>(layer.scale);
    // The largest achievable first-order gain for this weight is via the
    // sign bit (|dq| = 128); prune weights that cannot beat the current
    // k-th best even with the sign bit.
    if (best.size() == k && s_abs * 128.0 <= best.back().estimated_gain) continue;
    for (u32 bit = 0; bit < 8; ++bit) {
      const double gain = flip_gain(layer, i, bit);
      if (gain <= 0.0) continue;
      if (best.size() == k && gain <= best.back().estimated_gain) continue;
      BitLocation loc{layer_index, i, bit};
      if (skip.contains(loc)) continue;
      // Insert keeping `best` sorted descending by gain.
      FlipCandidate cand{loc, gain};
      auto pos = std::upper_bound(best.begin(), best.end(), cand,
                                  [](const FlipCandidate& a, const FlipCandidate& b) {
                                    return a.estimated_gain > b.estimated_gain;
                                  });
      best.insert(pos, cand);
      if (best.size() > k) best.pop_back();
    }
  }
  return best;
}

}  // namespace dnnd::quant
