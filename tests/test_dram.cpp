#include <gtest/gtest.h>

#include <set>

#include "dram/dram_device.hpp"
#include "dram/row_remapper.hpp"
#include "sys/rng.hpp"

namespace dnnd::dram {
namespace {

using namespace dnnd::time_literals;

TEST(Geometry, SizeArithmetic) {
  Geometry g{.banks = 2, .subarrays_per_bank = 4, .rows_per_subarray = 64, .row_bytes = 512};
  EXPECT_EQ(g.rows_per_bank(), 256u);
  EXPECT_EQ(g.total_rows(), 512u);
  EXPECT_EQ(g.total_bytes(), 512u * 512u);
}

class RowIdRoundtrip : public ::testing::TestWithParam<Geometry> {};

TEST_P(RowIdRoundtrip, FlatUnflattenInverse) {
  const Geometry geo = GetParam();
  for (u64 id = 0; id < geo.total_rows(); id += 7) {
    const RowAddr a = unflatten_row_id(geo, id);
    EXPECT_EQ(flat_row_id(geo, a), id);
    EXPECT_LT(a.bank, geo.banks);
    EXPECT_LT(a.subarray, geo.subarrays_per_bank);
    EXPECT_LT(a.row, geo.rows_per_subarray);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Geometries, RowIdRoundtrip,
    ::testing::Values(Geometry{2, 4, 64, 512}, Geometry{8, 8, 128, 1024},
                      Geometry{1, 1, 16, 64}, Geometry{3, 5, 33, 128}));

TEST(DeviceGen, ThresholdsMatchFig1a) {
  EXPECT_EQ(rowhammer_threshold(DeviceGen::kDdr3Old), 139'000u);
  EXPECT_EQ(rowhammer_threshold(DeviceGen::kDdr3New), 22'400u);
  EXPECT_EQ(rowhammer_threshold(DeviceGen::kDdr4Old), 17'500u);
  EXPECT_EQ(rowhammer_threshold(DeviceGen::kDdr4New), 10'000u);
  EXPECT_EQ(rowhammer_threshold(DeviceGen::kLpddr4Old), 16'800u);
  EXPECT_EQ(rowhammer_threshold(DeviceGen::kLpddr4New), 4'800u);
}

TEST(DeviceGen, Lpddr4NewIsWeakest) {
  // The paper's motivation: ~4.5x fewer hammers on LPDDR4(new) vs DDR3(new).
  const double ratio = static_cast<double>(rowhammer_threshold(DeviceGen::kDdr3New)) /
                       rowhammer_threshold(DeviceGen::kLpddr4New);
  EXPECT_NEAR(ratio, 4.67, 0.3);
}

TEST(Config, PresetsCarryThreshold) {
  for (auto gen : {DeviceGen::kDdr3Old, DeviceGen::kDdr4New, DeviceGen::kLpddr4New}) {
    EXPECT_EQ(DramConfig::preset(gen).t_rh, rowhammer_threshold(gen));
  }
}

TEST(Config, InstantiatingPaperGeometryThrows) {
  EXPECT_THROW(DramDevice dev(DramConfig::paper_32gb()), std::invalid_argument);
}

class DeviceTest : public ::testing::Test {
 protected:
  DeviceTest() : dev_(DramConfig::sim_small()) {}
  DramDevice dev_;
};

TEST_F(DeviceTest, FreshDeviceIsZeroed) {
  EXPECT_EQ(dev_.peek({0, 0, 0}, 0), 0);
  EXPECT_EQ(dev_.peek({1, 3, 63}, 511), 0);
}

TEST_F(DeviceTest, PokePeekRoundtrip) {
  dev_.poke({1, 2, 3}, 17, 0xAB);
  EXPECT_EQ(dev_.peek({1, 2, 3}, 17), 0xAB);
  EXPECT_EQ(dev_.peek({1, 2, 3}, 18), 0x00);
}

TEST_F(DeviceTest, WriteReadRowRoundtrip) {
  std::vector<u8> data(dev_.config().geo.row_bytes);
  for (usize i = 0; i < data.size(); ++i) data[i] = static_cast<u8>(i * 7 + 3);
  const RowAddr row{0, 1, 5};
  dev_.write_row(row, data);
  EXPECT_EQ(dev_.read_row(row), data);
}

TEST_F(DeviceTest, ActivateOpensRowAndChargesTime) {
  const Picoseconds t0 = dev_.now();
  dev_.activate({0, 0, 3});
  EXPECT_EQ(dev_.now() - t0, dev_.config().timing.t_act);
  EXPECT_EQ(dev_.stats().n_act, 1u);
  EXPECT_EQ(dev_.open_row(0), 3);
}

TEST_F(DeviceTest, ReactivatingOpenRowIsFree) {
  dev_.activate({0, 0, 3});
  const auto acts = dev_.stats().n_act;
  const auto t = dev_.now();
  dev_.activate({0, 0, 3});
  EXPECT_EQ(dev_.stats().n_act, acts);
  EXPECT_EQ(dev_.now(), t);
}

TEST_F(DeviceTest, ActivatingOtherRowImplicitlyPrecharges) {
  dev_.activate({0, 0, 3});
  dev_.activate({0, 0, 9});
  EXPECT_EQ(dev_.stats().n_act, 2u);
  EXPECT_EQ(dev_.stats().n_pre, 1u);
  EXPECT_EQ(dev_.open_row(0), 9);
}

TEST_F(DeviceTest, BanksHaveIndependentRowBuffers) {
  dev_.activate({0, 0, 3});
  dev_.activate({1, 0, 7});
  EXPECT_EQ(dev_.open_row(0), 3);
  EXPECT_EQ(dev_.open_row(1), 7 + 0);  // subarray 0
  EXPECT_EQ(dev_.stats().n_pre, 0u);
}

TEST_F(DeviceTest, PrechargeIdempotent) {
  dev_.precharge(0);
  EXPECT_EQ(dev_.stats().n_pre, 0u);  // nothing open: no command
  dev_.activate({0, 0, 1});
  dev_.precharge(0);
  dev_.precharge(0);
  EXPECT_EQ(dev_.stats().n_pre, 1u);
  EXPECT_EQ(dev_.open_row(0), -1);
}

TEST_F(DeviceTest, RowCloneFpmCopiesData) {
  std::vector<u8> data(dev_.config().geo.row_bytes, 0x5A);
  dev_.write_row({0, 2, 10}, data);
  dev_.rowclone_fpm(0, 2, 10, 20);
  EXPECT_EQ(dev_.read_row({0, 2, 20}), data);
  // Source unchanged (copy, not move).
  EXPECT_EQ(dev_.read_row({0, 2, 10}), data);
}

TEST_F(DeviceTest, RowCloneFpmCostsOneAap) {
  const Picoseconds t0 = dev_.now();
  const auto e0 = dev_.stats().energy;
  dev_.rowclone_fpm(0, 0, 1, 2);
  EXPECT_EQ(dev_.now() - t0, dev_.config().timing.t_aap);
  EXPECT_EQ(dev_.stats().n_aap, 1u);
  EXPECT_EQ(dev_.stats().energy - e0, dev_.config().energy.aap);
}

TEST_F(DeviceTest, RowCloneSameRowIsNoop) {
  dev_.rowclone_fpm(0, 0, 5, 5);
  EXPECT_EQ(dev_.stats().n_aap, 0u);
}

TEST_F(DeviceTest, RowClonePsmCopiesAcrossBanks) {
  std::vector<u8> data(dev_.config().geo.row_bytes, 0x3C);
  dev_.write_row({0, 1, 4}, data);
  dev_.rowclone_psm({0, 1, 4}, {1, 2, 8});
  EXPECT_EQ(dev_.read_row({1, 2, 8}), data);
  EXPECT_EQ(dev_.stats().n_psm_copy, 1u);
}

TEST_F(DeviceTest, PsmSlowerThanFpm) {
  DramDevice a(DramConfig::sim_small());
  DramDevice b(DramConfig::sim_small());
  a.rowclone_fpm(0, 0, 1, 2);
  b.rowclone_psm({0, 0, 1}, {1, 0, 2});
  EXPECT_GT(b.now(), a.now());
}

TEST_F(DeviceTest, ForceFlipTogglesBitAndCounts) {
  dev_.poke({0, 0, 7}, 3, 0b0000'1000);
  dev_.force_flip_bit({0, 0, 7}, 3, 3);
  EXPECT_EQ(dev_.peek({0, 0, 7}, 3), 0);
  dev_.force_flip_bit({0, 0, 7}, 3, 7);
  EXPECT_EQ(dev_.peek({0, 0, 7}, 3), 0b1000'0000);
  EXPECT_EQ(dev_.stats().n_bitflips, 2u);
}

TEST_F(DeviceTest, RefreshAllTouchesEveryRowOncePerWindow) {
  struct Counter : RowEventListener {
    std::vector<int> restores;
    explicit Counter(usize n) : restores(n, 0) {}
    void on_activate(const RowAddr&, Picoseconds) override {}
    void on_restore(const RowAddr& r, Picoseconds, RestoreKind k) override {
      if (k == RestoreKind::kRefresh) restores[flat_row_id(Geometry{2, 4, 64, 512}, r)]++;
    }
  } counter(dev_.config().geo.total_rows());
  dev_.add_listener(&counter);
  dev_.refresh_all();
  dev_.remove_listener(&counter);
  for (int c : counter.restores) EXPECT_EQ(c, 1);
  EXPECT_EQ(dev_.stats().n_ref, dev_.config().refresh_steps);
}

TEST_F(DeviceTest, ListenerEventKinds) {
  struct Recorder : RowEventListener {
    int activates = 0, refresh_restores = 0, rewrite_restores = 0;
    void on_activate(const RowAddr&, Picoseconds) override { ++activates; }
    void on_restore(const RowAddr&, Picoseconds, RestoreKind k) override {
      (k == RestoreKind::kRefresh ? refresh_restores : rewrite_restores)++;
    }
  } rec;
  dev_.add_listener(&rec);
  dev_.activate({0, 0, 1});  // activate + refresh-restore
  EXPECT_EQ(rec.activates, 1);
  EXPECT_EQ(rec.refresh_restores, 1);
  std::vector<u8> data(dev_.config().geo.row_bytes, 1);
  dev_.write_row({0, 0, 1}, data);  // rewrite restores (per burst)
  EXPECT_GT(rec.rewrite_restores, 0);
  const int rewrites_before = rec.rewrite_restores;
  dev_.rowclone_fpm(0, 0, 1, 2);  // src refresh + dst rewrite
  EXPECT_EQ(rec.rewrite_restores, rewrites_before + 1);
  dev_.remove_listener(&rec);
}

TEST_F(DeviceTest, AdvanceMovesClockWithoutCommands) {
  const auto stats_before = dev_.stats().n_act;
  dev_.advance(5_us);
  EXPECT_EQ(dev_.now(), 5_us);
  EXPECT_EQ(dev_.stats().n_act, stats_before);
}

TEST(StatsTest, SummaryMentionsCounters) {
  Stats s;
  s.n_act = 3;
  s.n_aap = 2;
  const std::string text = s.summary();
  EXPECT_NE(text.find("ACT=3"), std::string::npos);
  EXPECT_NE(text.find("AAP=2"), std::string::npos);
  s.reset();
  EXPECT_EQ(s.n_act, 0u);
}

// ---------------------------------------------------------- RowRemapper ----

TEST(Remapper, StartsAsIdentity) {
  RowRemapper remap(DramConfig::sim_small().geo);
  EXPECT_TRUE(remap.is_identity());
  const RowAddr a{1, 2, 3};
  EXPECT_EQ(remap.to_physical(a), a);
  EXPECT_EQ(remap.to_logical(a), a);
}

TEST(Remapper, SwapExchangesBackings) {
  RowRemapper remap(DramConfig::sim_small().geo);
  const RowAddr a{0, 0, 1}, b{0, 0, 9};
  remap.swap_logical(a, b);
  EXPECT_EQ(remap.to_physical(a), b);
  EXPECT_EQ(remap.to_physical(b), a);
  EXPECT_EQ(remap.to_logical(a), b);
  EXPECT_EQ(remap.to_logical(b), a);
  EXPECT_FALSE(remap.is_identity());
  EXPECT_EQ(remap.swap_count(), 1u);
}

TEST(Remapper, DoubleSwapRestoresIdentity) {
  RowRemapper remap(DramConfig::sim_small().geo);
  const RowAddr a{1, 1, 1}, b{0, 3, 60};
  remap.swap_logical(a, b);
  remap.swap_logical(a, b);
  EXPECT_TRUE(remap.is_identity());
}

// Property: after ANY sequence of swaps, the mapping stays a bijection and
// logical->physical->logical round-trips for every row (both directions).
TEST(Remapper, RoundTripsAfterArbitrarySwapSequence) {
  const Geometry geo = DramConfig::sim_small().geo;
  RowRemapper remap(geo);
  sys::Rng rng(0xC0FFEE);
  const usize n_swaps = 500;
  for (usize i = 0; i < n_swaps; ++i) {
    const RowAddr a = unflatten_row_id(geo, rng.uniform(geo.total_rows()));
    const RowAddr b = unflatten_row_id(geo, rng.uniform(geo.total_rows()));
    remap.swap_logical(a, b);
  }
  EXPECT_EQ(remap.swap_count(), n_swaps);
  std::set<u64> backing;
  for (u64 id = 0; id < geo.total_rows(); ++id) {
    const RowAddr logical = unflatten_row_id(geo, id);
    const RowAddr phys = remap.to_physical(logical);
    EXPECT_EQ(remap.to_logical(phys), logical) << "row " << id;
    EXPECT_EQ(remap.to_physical(remap.to_logical(logical)), logical) << "row " << id;
    EXPECT_TRUE(backing.insert(flat_row_id(geo, phys)).second)
        << "physical row backs two logical rows";
  }
  EXPECT_EQ(backing.size(), geo.total_rows());
}

TEST(Remapper, ChainedSwapsComposeCorrectly) {
  RowRemapper remap(DramConfig::sim_small().geo);
  const RowAddr a{0, 0, 1}, b{0, 0, 2}, c{0, 0, 3};
  remap.swap_logical(a, b);  // a->2, b->1
  remap.swap_logical(b, c);  // b->3, c->1
  EXPECT_EQ(remap.to_physical(a), (RowAddr{0, 0, 2}));
  EXPECT_EQ(remap.to_physical(b), (RowAddr{0, 0, 3}));
  EXPECT_EQ(remap.to_physical(c), (RowAddr{0, 0, 1}));
  // Inverse is consistent everywhere.
  for (const auto& r : {a, b, c}) EXPECT_EQ(remap.to_logical(remap.to_physical(r)), r);
}

}  // namespace
}  // namespace dnnd::dram
