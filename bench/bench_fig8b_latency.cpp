// Fig. 8(b): defense latency per refresh window (Tref) as the number of BFAs
// grows, for SHADOW and DNN-Defender (LDD) at T_RH in {1k, 2k, 4k, 8k}.
#include "bench_util.hpp"
#include "core/security_model.hpp"

using namespace dnnd;

int main() {
  bench::banner("Fig. 8(b) -- Latency per Tref vs number of BFAs",
                "paper Fig. 8(b); series saturate at each threshold's capacity");
  core::SecurityModel model;
  const std::vector<u64> bfa_points{1'000, 3'500, 7'000, 14'000, 28'000, 55'000};

  std::vector<std::string> headers{"Series"};
  for (u64 n : bfa_points) headers.push_back(sys::fmt_count(n));
  sys::Table table(headers);
  for (const std::string fw : {"shadow", "dd"}) {
    for (u32 t_rh : {8000u, 4000u, 2000u, 1000u}) {
      std::vector<std::string> row{(fw == "dd" ? "LDD" : "Shadow") +
                                   std::to_string(t_rh / 1000) + "k (ms)"};
      for (u64 n : bfa_points) {
        row.push_back(sys::fmt(model.latency_per_tref_ms(fw, t_rh, n), 2));
      }
      table.add_row(row);
    }
  }
  table.print();

  std::printf("\nSaturation points (max BFAs defendable per Tref):\n");
  for (u32 t_rh : {1000u, 2000u, 4000u, 8000u}) {
    const auto p = model.analyze(t_rh);
    std::printf("  T_RH=%uk: %s BFAs\n", t_rh / 1000,
                sys::fmt_count(p.max_bfa_defended).c_str());
  }
  std::printf(
      "\nShape check (paper): latency rises with the number of BFAs and then\n"
      "plateaus at each threshold's capacity (7K/14K/28K/55K); DNN-Defender\n"
      "sits below SHADOW at the same threshold in every column.\n");
  return 0;
}
