#include "sys/json.hpp"

#include <cstdio>

namespace dnnd::sys {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

void JsonWriter::comma_if_needed() {
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma_if_needed();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_if_needed();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  comma_if_needed();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  // The upcoming value must not emit another comma for this slot.
  needs_comma_.back() = false;
  // Mark that after the value, a comma is due. We re-set it in value()/begin_*.
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma_if_needed();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string_view(v)); }

JsonWriter& JsonWriter::value(double v) {
  comma_if_needed();
  out_ += json_number(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma_if_needed();
  out_ += v ? "true" : "false";
  return *this;
}

}  // namespace dnnd::sys
