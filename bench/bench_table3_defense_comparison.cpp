// Table 3: comparison of DNN-Defender with software (training/inference-time)
// BFA defenses and generic hardware defenses, on a ResNet-20 stand-in trained
// on the CIFAR-10-like dataset. Reports clean accuracy, post-attack accuracy,
// and the number of bit flips the attack spent.
//
// Driven by the scenario-sweep harness: the grid comes from
// harness::table3_scenarios and runs on a thread pool (DNND_THREADS env var,
// default = hardware concurrency). Results are deterministic regardless of
// thread count; set DNND_JSON=1 to dump the structured results as JSON to
// stdout, or DNND_JSON_OUT=<path> to persist them through a file sink.
#include "bench_util.hpp"
#include "harness/campaign.hpp"
#include "harness/registry.hpp"
#include "harness/sink.hpp"

using namespace dnnd;

int main() {
  bench::banner("Table 3 -- DNN-Defender vs software & hardware BFA defenses",
                "paper Table 3: ResNet-20 on CIFAR-10, clean/post-attack acc, flips");
  const bool small = bench::small_scale();

  harness::CampaignConfig cfg;
  cfg.threads = harness::env_threads();
  cfg.verbose = true;
  harness::CampaignRunner runner(cfg);
  const auto campaign = runner.run(harness::table3_scenarios(small));

  sys::Table table({"Model / Defense", "Clean Acc (%)", "Post-Attack Acc (%)", "ASR (%)",
                    "Bit-Flips #"});
  for (const auto& r : campaign.results) {
    // ASR only exists for the targeted (tbfa-*) attack family; Table 3's
    // paper rows are untargeted, so they show a dash unless the grid is
    // extended with targeted cells.
    const bool targeted = r.attack.rfind("tbfa", 0) == 0;
    table.add_row({r.label, sys::fmt(100.0 * r.clean_accuracy, 2),
                   sys::fmt(100.0 * r.post_accuracy, 2),
                   targeted ? sys::fmt(100.0 * r.attack_success_rate, 2) : "-",
                   r.ok ? r.flips : "ERROR: " + r.error});
  }
  table.print();
  std::printf(
      "\nShape check (paper): the baseline collapses to random guess within a\n"
      "few dozen flips; training-based defenses raise the flip count but cost\n"
      "clean accuracy; RRS/SRS only slow the attack; SHADOW and DNN-Defender\n"
      "block it, and only DNN-Defender keeps post-attack accuracy exactly at\n"
      "the clean level with zero training overhead.\n");
  std::printf("[harness] %zu scenarios on %zu threads in %.1fs\n", campaign.results.size(),
              campaign.threads_used, campaign.total_seconds);
  // A configured sink that failed to persist (e.g. unwritable DNND_JSON_OUT)
  // must fail the bench: CI gates on the artifact existing.
  return harness::write_campaign_from_env(campaign) == harness::SinkWriteStatus::kFailed ? 1
                                                                                         : 0;
}
