// Full protection workflow on a ResNet stand-in: train -> quantize -> map to
// DRAM -> multi-round priority profiling -> install DNN-Defender -> adaptive
// white-box attack -> report. Mirrors the deployment flow of paper Sec. 4.
#include <cstdio>

#include "attack/adaptive_attack.hpp"
#include "models/model_zoo.hpp"
#include "nn/trainer.hpp"
#include "system/protected_system.hpp"

using namespace dnnd;

int main() {
  // Train the victim model.
  auto data = nn::make_synthetic(nn::SynthSpec::cifar10_like());
  auto model = models::make_resnet20_sub(data.spec.num_classes, /*seed=*/3);
  nn::TrainConfig tcfg;
  tcfg.epochs = 6;
  const auto report = nn::train(*model, data, tcfg);
  std::printf("victim: %s, %zu weights, clean accuracy %.2f%%\n", model->name().c_str(),
              model->weight_count(), 100.0 * report.test_accuracy);

  quant::QuantizedModel qm(*model);
  auto [attack_x, attack_y] = data.test.head(32);
  auto [eval_x, eval_y] = data.test.head(240);

  // Deploy into DRAM.
  system::ProtectedSystemConfig scfg;
  scfg.dram = dram::DramConfig::nn_scaled();
  system::ProtectedSystem sys(qm, scfg);
  std::printf("deployed across %zu DRAM rows (%u banks)\n",
              sys.mapping().weight_rows().size(), scfg.dram.geo.banks);

  // Multi-round priority profiling (the defender runs the attacker's own
  // search; each round excludes the previous rounds' bits).
  core::ProfilerConfig pcfg;
  pcfg.rounds = 4;
  core::PriorityProfiler profiler(qm, attack_x, attack_y, pcfg);
  const auto profile = profiler.profile();
  std::printf("profiled %zu vulnerable bits over %zu rounds:", profile.total_bits(),
              profile.round_sizes.size());
  for (usize r = 0; r < profile.round_sizes.size(); ++r) {
    std::printf(" R%zu=%zu", r + 1, profile.round_sizes[r]);
  }
  std::printf("\n");

  // Install the defense.
  auto& dd = sys.install_dnn_defender(profile);
  std::printf("DNN-Defender: %zu target rows, %zu non-target rows, swap interval %.1f us "
              "(schedule %s)\n",
              dd.targets().size(), dd.non_targets().size(), ps_to_us(dd.swap_interval()),
              dd.schedule_feasible() ? "feasible" : "best-effort");

  // Full-stack white-box attack: the attacker knows the defense, the mapping,
  // and the remap state, and drives real hammer campaigns in the simulator.
  const auto res = sys.run_white_box_attack(attack_x, attack_y, eval_x, eval_y,
                                            /*max_attempts=*/20, /*stop_accuracy=*/0.0);
  std::printf("\nwhite-box attack: %zu attempts -> %zu blocked, %zu landed\n", res.attempts,
              res.blocked, res.landed);
  std::printf("accuracy: %.2f%% -> %.2f%%\n", 100.0 * res.initial_accuracy,
              100.0 * res.final_accuracy);

  // Defense cost accounting.
  const auto& stats = dd.swap_stats();
  std::printf("\ndefense cost: %llu swaps (%llu AAPs, %.1f%% staged), "
              "%.2f ms bus time, %.2f uJ\n",
              static_cast<unsigned long long>(stats.swaps),
              static_cast<unsigned long long>(stats.aaps),
              100.0 * static_cast<double>(stats.staged_swaps) /
                  static_cast<double>(stats.swaps == 0 ? 1 : stats.swaps),
              ps_to_ms(dd.stats().time_spent), fj_to_uj(dd.stats().energy_spent));
  std::printf("device: %s\n", sys.device().stats().summary().c_str());
  return 0;
}
