#include "serving/serving.hpp"

#include <algorithm>
#include <cmath>
#include <deque>

#include "sys/env.hpp"

namespace dnnd::serving {

void ServeConfig::normalize() {
  rate_rps = std::max<usize>(rate_rps, 1);
  duration_ms = std::max<usize>(duration_ms, 1);
  batch_cap = std::max<usize>(batch_cap, 1);
  queue_depth = std::max<usize>(queue_depth, 1);
  // A forming batch lives inside the admission queue; a cap beyond the queue
  // depth could never fill and would skew the deadline accounting.
  batch_cap = std::min(batch_cap, queue_depth);
  reservoir = std::max<usize>(reservoir, 1);
}

ServeConfig serve_config_from_env() {
  ServeConfig cfg;
  cfg.rate_rps = sys::env_usize("DNND_SERVE_RATE", cfg.rate_rps);
  cfg.duration_ms = sys::env_usize("DNND_SERVE_DURATION_MS", cfg.duration_ms);
  cfg.batch_cap = sys::env_usize("DNND_SERVE_BATCH_CAP", cfg.batch_cap);
  cfg.max_wait_us = sys::env_usize("DNND_SERVE_MAX_WAIT_US", cfg.max_wait_us);
  cfg.queue_depth = sys::env_usize("DNND_SERVE_QUEUE", cfg.queue_depth);
  cfg.seed = sys::env_usize("DNND_SERVE_SEED", static_cast<usize>(cfg.seed));
  cfg.tick_every_us = sys::env_usize("DNND_SERVE_TICK_US", cfg.tick_every_us);
  cfg.attack_every = sys::env_usize("DNND_SERVE_ATTACK_EVERY", cfg.attack_every);
  cfg.reservoir = sys::env_usize("DNND_SERVE_RESERVOIR", cfg.reservoir);
  cfg.normalize();
  return cfg;
}

std::vector<Request> poisson_schedule(const ServeConfig& cfg, usize num_samples) {
  sys::Rng rng = sys::Rng(cfg.seed).split("arrivals");
  const double mean_gap_ns = 1e9 / static_cast<double>(cfg.rate_rps);
  const u64 horizon_ns = static_cast<u64>(cfg.duration_ms) * 1'000'000ULL;
  std::vector<Request> out;
  double t = 0.0;
  for (u64 id = 0;; ++id) {
    // Exponential gap by inversion; 1 - u is in (0, 1] so log() is finite.
    const double u = rng.uniform01();
    t += -std::log(1.0 - u) * mean_gap_ns;
    if (t >= static_cast<double>(horizon_ns)) break;
    Request r;
    r.id = id;
    r.arrival_ns = static_cast<u64>(t);
    r.sample = num_samples == 0 ? 0 : static_cast<u32>(rng.uniform(num_samples));
    out.push_back(r);
  }
  return out;
}

namespace {

u64 mix(u64 acc, u64 v) { return sys::hash_combine(acc, v); }

}  // namespace

ServingPlan plan_serving(const ServeConfig& cfg, usize num_samples) {
  ServingPlan plan;
  plan.arrivals = poisson_schedule(cfg, num_samples);
  plan.batch_histogram.assign(cfg.batch_cap + 1, 0);

  const u64 wait_ns = static_cast<u64>(cfg.max_wait_us) * 1000ULL;
  const usize n = plan.arrivals.size();

  std::deque<usize> queue;  ///< admitted, not yet batched (indices)
  usize next = 0;           ///< next arrival to consider
  u64 server_free = 0;      ///< virtual time the server goes idle

  // Admission at one arrival instant: the queue either has room or the
  // request is dropped on the floor (open-loop clients do not retry).
  auto admit = [&](usize i) {
    if (queue.size() >= cfg.queue_depth) {
      plan.dropped.push_back(i);
      return;
    }
    queue.push_back(i);
    plan.admitted.push_back(i);
    plan.queue_peak = std::max(plan.queue_peak, queue.size());
  };

  usize admitted_consumed = 0;  ///< prefix of plan.admitted already batched
  while (next < n || !queue.empty()) {
    if (queue.empty()) {
      // Idle server: jump to the next arrival.
      server_free = std::max(server_free, plan.arrivals[next].arrival_ns);
      admit(next++);
      if (queue.empty()) continue;  // depth 0 is normalized away; safety
    }
    // The server turns to the queue at t_open; everything that arrived by
    // then joins the admission queue first (this is where overload drops).
    const u64 t_open = std::max(server_free, plan.arrivals[queue.front()].arrival_ns);
    while (next < n && plan.arrivals[next].arrival_ns <= t_open) admit(next++);

    // Coalesce: close when the cap fills or at head arrival + max_wait,
    // but never before t_open (a stale deadline closes immediately).
    const u64 deadline = plan.arrivals[queue.front()].arrival_ns + wait_ns;
    u64 close = t_open;
    if (queue.size() < cfg.batch_cap) {
      while (queue.size() < cfg.batch_cap && next < n &&
             plan.arrivals[next].arrival_ns <= deadline) {
        close = std::max(t_open, plan.arrivals[next].arrival_ns);
        admit(next++);
      }
      if (queue.size() < cfg.batch_cap) close = std::max(t_open, deadline);
    }

    PlannedBatch b;
    b.first = admitted_consumed;
    b.count = std::min(queue.size(), cfg.batch_cap);
    b.close_ns = close;
    b.finish_ns = close + cfg.service_ns_base +
                  static_cast<u64>(b.count) * cfg.service_ns_per_req;
    b.attack_before =
        cfg.attack_every > 0 && !plan.batches.empty() &&
        plan.batches.size() % cfg.attack_every == 0;
    for (usize k = 0; k < b.count; ++k) queue.pop_front();
    admitted_consumed += b.count;
    plan.batch_histogram[b.count] += 1;
    server_free = b.finish_ns;
    plan.batches.push_back(b);
  }

  const u64 tick_ns = static_cast<u64>(cfg.tick_every_us) * 1000ULL;
  plan.ticks = tick_ns == 0 ? 0 : static_cast<usize>(plan.last_finish_ns() / tick_ns);

  // Digest: every decision the executor must reproduce, in order. Excludes
  // anything wall-clock.
  u64 d = sys::stable_hash64("serving-plan-v1");
  d = mix(d, n);
  for (const Request& r : plan.arrivals) {
    d = mix(d, sys::hash_combine(r.id, r.arrival_ns, r.sample));
  }
  for (usize i : plan.dropped) d = mix(d, 0x6D72u ^ i);
  for (const PlannedBatch& b : plan.batches) {
    d = mix(d, sys::hash_combine(b.first, b.count, b.close_ns,
                                 static_cast<u64>(b.attack_before)));
  }
  d = mix(d, plan.queue_peak);
  d = mix(d, plan.ticks);
  plan.digest = d;
  return plan;
}

// ----- LatencyReservoir ------------------------------------------------------

LatencyReservoir::LatencyReservoir(usize capacity, u64 seed)
    : cap_(std::max<usize>(capacity, 1)), rng_(sys::Rng(seed).split("reservoir")) {
  samples_.reserve(cap_);
}

void LatencyReservoir::add(u64 latency_ns) {
  seen_ += 1;
  if (samples_.size() < cap_) {
    samples_.push_back(latency_ns);
    return;
  }
  // Algorithm R: the i-th value (1-based) replaces a random slot with
  // probability cap/i, keeping every prefix uniformly represented.
  const u64 j = rng_.uniform(seen_);
  if (j < cap_) samples_[static_cast<usize>(j)] = latency_ns;
}

u64 LatencyReservoir::percentile(double p) const {
  if (samples_.empty()) return 0;
  std::vector<u64> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const auto n = static_cast<double>(sorted.size());
  const double rank = std::ceil(std::clamp(p, 0.0, 100.0) / 100.0 * n);
  const usize idx = rank < 1.0 ? 0 : static_cast<usize>(rank) - 1;
  return sorted[std::min(idx, sorted.size() - 1)];
}

// ----- BoundedRequestQueue ---------------------------------------------------

BoundedRequestQueue::BoundedRequestQueue(usize depth) : depth_(std::max<usize>(depth, 1)) {}

usize BoundedRequestQueue::size() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return items_.size() - head_;
}

usize BoundedRequestQueue::peak() const {
  const std::lock_guard<std::mutex> lock(mu_);
  return peak_;
}

bool BoundedRequestQueue::push(usize item) {
  std::unique_lock<std::mutex> lock(mu_);
  not_full_.wait(lock, [&] { return closed_ || items_.size() - head_ < depth_; });
  if (closed_) return false;
  items_.push_back(item);
  peak_ = std::max(peak_, items_.size() - head_);
  not_empty_.notify_one();
  return true;
}

bool BoundedRequestQueue::try_push(usize item) {
  const std::lock_guard<std::mutex> lock(mu_);
  if (closed_ || items_.size() - head_ >= depth_) return false;
  items_.push_back(item);
  peak_ = std::max(peak_, items_.size() - head_);
  not_empty_.notify_one();
  return true;
}

std::optional<usize> BoundedRequestQueue::pop() {
  std::unique_lock<std::mutex> lock(mu_);
  not_empty_.wait(lock, [&] { return closed_ || items_.size() > head_; });
  if (items_.size() == head_) return std::nullopt;  // closed and drained
  const usize item = items_[head_++];
  if (head_ == items_.size()) {
    items_.clear();
    head_ = 0;
  }
  not_full_.notify_one();
  return item;
}

void BoundedRequestQueue::close() {
  const std::lock_guard<std::mutex> lock(mu_);
  closed_ = true;
  not_full_.notify_all();
  not_empty_.notify_all();
}

}  // namespace dnnd::serving
