#include "nn/model.hpp"

#include <cstring>

namespace dnnd::nn {

std::vector<ParamRef> Model::quantizable_params() {
  std::vector<ParamRef> out;
  for (auto& p : params()) {
    if (p.quantizable) out.push_back(p);
  }
  return out;
}

void Model::zero_grad() {
  for (auto& p : params()) p.grad->zero();
}

std::vector<Tensor> Model::save_state() {
  std::vector<Tensor> out;
  for (auto& p : params()) out.push_back(*p.value);
  for (Tensor* t : net_.state_tensors()) out.push_back(*t);
  return out;
}

void Model::load_state(const std::vector<Tensor>& snapshot) {
  usize i = 0;
  for (auto& p : params()) {
    *p.value = snapshot.at(i++);
    // The mutation bypasses any attached QuantizedModel: drop resident packed
    // panels so forward reads the restored floats instead of a stale panel.
    if (p.owner != nullptr) p.owner->drop_packed_weight();
  }
  for (Tensor* t : net_.state_tensors()) *t = snapshot.at(i++);
  // Every cached activation is stale now; incremental evaluation must not
  // reuse any of them.
  net_.invalidate_from(0);
}

usize Model::param_count() {
  usize n = 0;
  for (auto& p : params()) n += p.value->size();
  return n;
}

usize Model::weight_count() {
  usize n = 0;
  for (auto& p : quantizable_params()) n += p.value->size();
  return n;
}

const LossResult& Model::loss_and_grad(const Tensor& x, const std::vector<u32>& labels,
                                       bool train_mode) {
  const Tensor& logits = forward_cached(x, train_mode);
  softmax_cross_entropy_into(logits, labels, loss_scratch_);
  net_.backward_cached(loss_scratch_.dlogits, ws_);
  return loss_scratch_;
}

const Tensor& Model::forward_incremental(const Tensor& x) {
  const bool reusable = net_.has_cache(ws_) && last_input_ == x.data() &&
                        last_input_size_ == x.size() && !last_train_ && x.size() > 0 &&
                        std::memcmp(&last_edge_[0], x.data(), sizeof(float)) == 0 &&
                        std::memcmp(&last_edge_[1], x.data() + x.size() - 1,
                                    sizeof(float)) == 0;
  if (!reusable) return forward_cached(x, /*train=*/false);
  // Same batch, eval mode: re-run only layers at/beyond the invalidation
  // frontier (forward_from clamps to it internally).
  return net_.forward_from(net_.layer_count(), /*train=*/false, ws_);
}

const LossResult& Model::loss_and_grad_incremental(const Tensor& x,
                                                   const std::vector<u32>& labels) {
  const Tensor& logits = forward_incremental(x);
  softmax_cross_entropy_into(logits, labels, loss_scratch_);
  net_.backward_cached(loss_scratch_.dlogits, ws_);
  return loss_scratch_;
}

double Model::loss(const Tensor& x, const std::vector<u32>& labels) {
  const Tensor& logits = forward_cached(x, /*train=*/false);
  return softmax_cross_entropy_loss(logits, labels);
}

BatchEval Model::evaluate_batch(const Tensor& x, const std::vector<u32>& labels) {
  const Tensor& logits = forward_cached(x, /*train=*/false);
  return evaluate_logits(logits, labels);
}

void Model::evaluate_batch_per_class(const Tensor& x, const std::vector<u32>& labels,
                                     u32 source, u32 target, PerClassEval& out) {
  const Tensor& logits = forward_cached(x, /*train=*/false);
  evaluate_logits_per_class(logits, labels, source, target, out);
}

BatchEval Model::evaluate_batch_incremental(const Tensor& x, const std::vector<u32>& labels) {
  return evaluate_logits(forward_incremental(x), labels);
}

double Model::accuracy(const Tensor& x, const std::vector<u32>& labels) {
  return evaluate_batch(x, labels).accuracy;
}

}  // namespace dnnd::nn
