#include "nn/layers.hpp"

#include <cassert>
#include <cmath>
#include <limits>

namespace dnnd::nn {

// ---------------------------------------------------------------- Dense ----

Dense::Dense(usize in_features, usize out_features, sys::Rng& rng)
    : weight(Tensor::he_normal({out_features, in_features}, in_features, rng)),
      bias(Tensor::zeros({out_features})),
      dweight(Tensor::zeros({out_features, in_features})),
      dbias(Tensor::zeros({out_features})),
      in_(in_features),
      out_(out_features) {}

Tensor Dense::forward(const Tensor& x, bool /*train*/) {
  assert(x.rank() == 2 && x.dim(1) == in_);
  x_cache_ = x;
  const usize n = x.dim(0);
  Tensor y({n, out_});
  for (usize i = 0; i < n; ++i) {
    const float* xi = x.data() + i * in_;
    for (usize o = 0; o < out_; ++o) {
      const float* w = weight.data() + o * in_;
      float acc = bias[o];
      for (usize j = 0; j < in_; ++j) acc += w[j] * xi[j];
      y.at2(i, o) = acc;
    }
  }
  return y;
}

Tensor Dense::backward(const Tensor& dy) {
  const usize n = x_cache_.dim(0);
  assert(dy.rank() == 2 && dy.dim(0) == n && dy.dim(1) == out_);
  Tensor dx({n, in_});
  for (usize i = 0; i < n; ++i) {
    const float* xi = x_cache_.data() + i * in_;
    float* dxi = dx.data() + i * in_;
    for (usize o = 0; o < out_; ++o) {
      const float g = dy.at2(i, o);
      if (g == 0.0f) continue;
      const float* w = weight.data() + o * in_;
      float* dw = dweight.data() + o * in_;
      dbias[o] += g;
      for (usize j = 0; j < in_; ++j) {
        dw[j] += g * xi[j];
        dxi[j] += g * w[j];
      }
    }
  }
  return dx;
}

std::vector<ParamRef> Dense::params() {
  return {{"weight", &weight, &dweight, /*quantizable=*/true},
          {"bias", &bias, &dbias, /*quantizable=*/false}};
}

// --------------------------------------------------------------- Conv2d ----

Conv2d::Conv2d(usize in_ch, usize out_ch, usize kernel, usize stride, usize padding,
               sys::Rng& rng)
    : weight(Tensor::he_normal({out_ch, in_ch, kernel, kernel}, in_ch * kernel * kernel, rng)),
      bias(Tensor::zeros({out_ch})),
      dweight(Tensor::zeros({out_ch, in_ch, kernel, kernel})),
      dbias(Tensor::zeros({out_ch})),
      in_ch_(in_ch),
      out_ch_(out_ch),
      k_(kernel),
      stride_(stride),
      pad_(padding) {}

Tensor Conv2d::forward(const Tensor& x, bool /*train*/) {
  assert(x.rank() == 4 && x.dim(1) == in_ch_);
  x_cache_ = x;
  const usize n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const usize oh = out_size(h), ow = out_size(w);
  Tensor y({n, out_ch_, oh, ow});
  for (usize b = 0; b < n; ++b) {
    for (usize oc = 0; oc < out_ch_; ++oc) {
      for (usize i = 0; i < oh; ++i) {
        for (usize j = 0; j < ow; ++j) {
          float acc = bias[oc];
          for (usize ic = 0; ic < in_ch_; ++ic) {
            for (usize ki = 0; ki < k_; ++ki) {
              const isize hi = static_cast<isize>(i * stride_ + ki) - static_cast<isize>(pad_);
              if (hi < 0 || hi >= static_cast<isize>(h)) continue;
              for (usize kj = 0; kj < k_; ++kj) {
                const isize wj = static_cast<isize>(j * stride_ + kj) - static_cast<isize>(pad_);
                if (wj < 0 || wj >= static_cast<isize>(w)) continue;
                acc += weight.at4(oc, ic, ki, kj) *
                       x.at4(b, ic, static_cast<usize>(hi), static_cast<usize>(wj));
              }
            }
          }
          y.at4(b, oc, i, j) = acc;
        }
      }
    }
  }
  return y;
}

Tensor Conv2d::backward(const Tensor& dy) {
  const Tensor& x = x_cache_;
  const usize n = x.dim(0), h = x.dim(2), w = x.dim(3);
  const usize oh = dy.dim(2), ow = dy.dim(3);
  Tensor dx({n, in_ch_, h, w});
  for (usize b = 0; b < n; ++b) {
    for (usize oc = 0; oc < out_ch_; ++oc) {
      for (usize i = 0; i < oh; ++i) {
        for (usize j = 0; j < ow; ++j) {
          const float g = dy.at4(b, oc, i, j);
          if (g == 0.0f) continue;
          dbias[oc] += g;
          for (usize ic = 0; ic < in_ch_; ++ic) {
            for (usize ki = 0; ki < k_; ++ki) {
              const isize hi = static_cast<isize>(i * stride_ + ki) - static_cast<isize>(pad_);
              if (hi < 0 || hi >= static_cast<isize>(h)) continue;
              for (usize kj = 0; kj < k_; ++kj) {
                const isize wj = static_cast<isize>(j * stride_ + kj) - static_cast<isize>(pad_);
                if (wj < 0 || wj >= static_cast<isize>(w)) continue;
                dweight.at4(oc, ic, ki, kj) +=
                    g * x.at4(b, ic, static_cast<usize>(hi), static_cast<usize>(wj));
                dx.at4(b, ic, static_cast<usize>(hi), static_cast<usize>(wj)) +=
                    g * weight.at4(oc, ic, ki, kj);
              }
            }
          }
        }
      }
    }
  }
  return dx;
}

std::vector<ParamRef> Conv2d::params() {
  return {{"weight", &weight, &dweight, /*quantizable=*/true},
          {"bias", &bias, &dbias, /*quantizable=*/false}};
}

// ----------------------------------------------------------------- ReLU ----

Tensor ReLU::forward(const Tensor& x, bool /*train*/) {
  mask_ = Tensor(x.shape());
  Tensor y(x.shape());
  for (usize i = 0; i < x.size(); ++i) {
    const bool pos = x[i] > 0.0f;
    mask_[i] = pos ? 1.0f : 0.0f;
    y[i] = pos ? x[i] : 0.0f;
  }
  return y;
}

Tensor ReLU::backward(const Tensor& dy) {
  assert(dy.size() == mask_.size());
  Tensor dx(dy.shape());
  for (usize i = 0; i < dy.size(); ++i) dx[i] = dy[i] * mask_[i];
  return dx;
}

// ------------------------------------------------------------ MaxPool2d ----

Tensor MaxPool2d::forward(const Tensor& x, bool /*train*/) {
  assert(x.rank() == 4);
  in_shape_ = x.shape();
  const usize n = x.dim(0), c = x.dim(1), h = x.dim(2), w = x.dim(3);
  const usize oh = h / 2, ow = w / 2;
  Tensor y({n, c, oh, ow});
  argmax_.assign(n * c * oh * ow, 0);
  usize out_idx = 0;
  for (usize b = 0; b < n; ++b) {
    for (usize ch = 0; ch < c; ++ch) {
      for (usize i = 0; i < oh; ++i) {
        for (usize j = 0; j < ow; ++j) {
          float best = -std::numeric_limits<float>::infinity();
          usize best_idx = 0;
          for (usize di = 0; di < 2; ++di) {
            for (usize dj = 0; dj < 2; ++dj) {
              const usize hi = i * 2 + di, wj = j * 2 + dj;
              const usize idx = ((b * c + ch) * h + hi) * w + wj;
              if (x[idx] > best) {
                best = x[idx];
                best_idx = idx;
              }
            }
          }
          y.at4(b, ch, i, j) = best;
          argmax_[out_idx++] = best_idx;
        }
      }
    }
  }
  return y;
}

Tensor MaxPool2d::backward(const Tensor& dy) {
  Tensor dx(in_shape_);
  for (usize i = 0; i < dy.size(); ++i) dx[argmax_[i]] += dy[i];
  return dx;
}

// -------------------------------------------------------- GlobalAvgPool ----

Tensor GlobalAvgPool::forward(const Tensor& x, bool /*train*/) {
  assert(x.rank() == 4);
  in_shape_ = x.shape();
  const usize n = x.dim(0), c = x.dim(1), hw = x.dim(2) * x.dim(3);
  Tensor y({n, c});
  for (usize b = 0; b < n; ++b) {
    for (usize ch = 0; ch < c; ++ch) {
      double acc = 0.0;
      const float* p = x.data() + (b * c + ch) * hw;
      for (usize i = 0; i < hw; ++i) acc += p[i];
      y.at2(b, ch) = static_cast<float>(acc / static_cast<double>(hw));
    }
  }
  return y;
}

Tensor GlobalAvgPool::backward(const Tensor& dy) {
  const usize n = in_shape_[0], c = in_shape_[1], hw = in_shape_[2] * in_shape_[3];
  Tensor dx(in_shape_);
  const float inv = 1.0f / static_cast<float>(hw);
  for (usize b = 0; b < n; ++b) {
    for (usize ch = 0; ch < c; ++ch) {
      const float g = dy.at2(b, ch) * inv;
      float* p = dx.data() + (b * c + ch) * hw;
      for (usize i = 0; i < hw; ++i) p[i] = g;
    }
  }
  return dx;
}

// -------------------------------------------------------------- Flatten ----

Tensor Flatten::forward(const Tensor& x, bool /*train*/) {
  in_shape_ = x.shape();
  usize f = 1;
  for (usize i = 1; i < x.rank(); ++i) f *= x.dim(i);
  return x.reshaped({x.dim(0), f});
}

Tensor Flatten::backward(const Tensor& dy) { return dy.reshaped(in_shape_); }

// ---------------------------------------------------------- BatchNorm2d ----

BatchNorm2d::BatchNorm2d(usize channels, float momentum, float eps)
    : gamma(Tensor::full({channels}, 1.0f)),
      beta(Tensor::zeros({channels})),
      dgamma(Tensor::zeros({channels})),
      dbeta(Tensor::zeros({channels})),
      running_mean(Tensor::zeros({channels})),
      running_var(Tensor::full({channels}, 1.0f)),
      channels_(channels),
      momentum_(momentum),
      eps_(eps) {}

Tensor BatchNorm2d::forward(const Tensor& x, bool train) {
  assert(x.rank() == 4 && x.dim(1) == channels_);
  in_shape_ = x.shape();
  const usize n = x.dim(0), c = channels_, hw = x.dim(2) * x.dim(3);
  const usize count = n * hw;
  batch_mean_.assign(c, 0.0f);
  batch_inv_std_.assign(c, 0.0f);
  Tensor y(x.shape());
  x_hat_ = Tensor(x.shape());
  for (usize ch = 0; ch < c; ++ch) {
    double mean = 0.0, var = 0.0;
    if (train) {
      for (usize b = 0; b < n; ++b) {
        const float* p = x.data() + (b * c + ch) * hw;
        for (usize i = 0; i < hw; ++i) mean += p[i];
      }
      mean /= static_cast<double>(count);
      for (usize b = 0; b < n; ++b) {
        const float* p = x.data() + (b * c + ch) * hw;
        for (usize i = 0; i < hw; ++i) {
          const double d = p[i] - mean;
          var += d * d;
        }
      }
      var /= static_cast<double>(count);
      running_mean[ch] = (1.0f - momentum_) * running_mean[ch] +
                         momentum_ * static_cast<float>(mean);
      running_var[ch] =
          (1.0f - momentum_) * running_var[ch] + momentum_ * static_cast<float>(var);
    } else {
      mean = running_mean[ch];
      var = running_var[ch];
    }
    const float inv_std = 1.0f / std::sqrt(static_cast<float>(var) + eps_);
    batch_mean_[ch] = static_cast<float>(mean);
    batch_inv_std_[ch] = inv_std;
    for (usize b = 0; b < n; ++b) {
      const float* p = x.data() + (b * c + ch) * hw;
      float* xh = x_hat_.data() + (b * c + ch) * hw;
      float* yp = y.data() + (b * c + ch) * hw;
      for (usize i = 0; i < hw; ++i) {
        xh[i] = (p[i] - static_cast<float>(mean)) * inv_std;
        yp[i] = gamma[ch] * xh[i] + beta[ch];
      }
    }
  }
  return y;
}

Tensor BatchNorm2d::backward(const Tensor& dy) {
  const usize n = in_shape_[0], c = channels_, hw = in_shape_[2] * in_shape_[3];
  const double count = static_cast<double>(n * hw);
  Tensor dx(in_shape_);
  for (usize ch = 0; ch < c; ++ch) {
    // Standard batch-norm backward using cached x_hat and inv_std.
    double sum_dy = 0.0, sum_dy_xhat = 0.0;
    for (usize b = 0; b < n; ++b) {
      const float* gy = dy.data() + (b * c + ch) * hw;
      const float* xh = x_hat_.data() + (b * c + ch) * hw;
      for (usize i = 0; i < hw; ++i) {
        sum_dy += gy[i];
        sum_dy_xhat += static_cast<double>(gy[i]) * xh[i];
      }
    }
    dbeta[ch] += static_cast<float>(sum_dy);
    dgamma[ch] += static_cast<float>(sum_dy_xhat);
    const float g = gamma[ch], inv_std = batch_inv_std_[ch];
    for (usize b = 0; b < n; ++b) {
      const float* gy = dy.data() + (b * c + ch) * hw;
      const float* xh = x_hat_.data() + (b * c + ch) * hw;
      float* gx = dx.data() + (b * c + ch) * hw;
      for (usize i = 0; i < hw; ++i) {
        gx[i] = static_cast<float>(
            static_cast<double>(g) * inv_std *
            (static_cast<double>(gy[i]) - sum_dy / count -
             static_cast<double>(xh[i]) * sum_dy_xhat / count));
      }
    }
  }
  return dx;
}

std::vector<ParamRef> BatchNorm2d::params() {
  return {{"gamma", &gamma, &dgamma, /*quantizable=*/false},
          {"beta", &beta, &dbeta, /*quantizable=*/false}};
}

// ------------------------------------------------------------ Sequential ----

Tensor Sequential::forward(const Tensor& x, bool train) {
  Tensor h = x;
  for (auto& l : layers_) h = l->forward(h, train);
  return h;
}

Tensor Sequential::backward(const Tensor& dy) {
  Tensor g = dy;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) g = (*it)->backward(g);
  return g;
}

std::vector<Tensor*> Sequential::state_tensors() {
  std::vector<Tensor*> out;
  for (auto& l : layers_) {
    for (Tensor* t : l->state_tensors()) out.push_back(t);
  }
  return out;
}

std::vector<ParamRef> Sequential::params() {
  std::vector<ParamRef> out;
  for (usize i = 0; i < layers_.size(); ++i) {
    for (auto& p : layers_[i]->params()) {
      p.name = std::to_string(i) + "." + layers_[i]->name() + "." + p.name;
      out.push_back(p);
    }
  }
  return out;
}

// --------------------------------------------------------- ResidualBlock ----

ResidualBlock::ResidualBlock(usize in_ch, usize out_ch, usize stride, sys::Rng& rng) {
  body_.add(std::make_unique<Conv2d>(in_ch, out_ch, 3, stride, 1, rng));
  body_.add(std::make_unique<BatchNorm2d>(out_ch));
  body_.add(std::make_unique<ReLU>());
  body_.add(std::make_unique<Conv2d>(out_ch, out_ch, 3, 1, 1, rng));
  body_.add(std::make_unique<BatchNorm2d>(out_ch));
  if (stride != 1 || in_ch != out_ch) {
    projection_ = std::make_unique<Sequential>();
    projection_->add(std::make_unique<Conv2d>(in_ch, out_ch, 1, stride, 0, rng));
    projection_->add(std::make_unique<BatchNorm2d>(out_ch));
  }
}

Tensor ResidualBlock::forward(const Tensor& x, bool train) {
  x_cache_ = x;
  Tensor f = body_.forward(x, train);
  Tensor s = projection_ ? projection_->forward(x, train) : x;
  assert(f.size() == s.size());
  Tensor y(f.shape());
  sum_mask_ = Tensor(f.shape());
  for (usize i = 0; i < f.size(); ++i) {
    const float v = f[i] + s[i];
    const bool pos = v > 0.0f;
    sum_mask_[i] = pos ? 1.0f : 0.0f;
    y[i] = pos ? v : 0.0f;
  }
  return y;
}

Tensor ResidualBlock::backward(const Tensor& dy) {
  Tensor dsum(dy.shape());
  for (usize i = 0; i < dy.size(); ++i) dsum[i] = dy[i] * sum_mask_[i];
  Tensor dx_body = body_.backward(dsum);
  if (projection_) {
    Tensor dx_proj = projection_->backward(dsum);
    dx_body.add_(dx_proj);
    return dx_body;
  }
  dx_body.add_(dsum);
  return dx_body;
}

std::vector<Tensor*> ResidualBlock::state_tensors() {
  std::vector<Tensor*> out = body_.state_tensors();
  if (projection_) {
    for (Tensor* t : projection_->state_tensors()) out.push_back(t);
  }
  return out;
}

std::vector<ParamRef> ResidualBlock::params() {
  std::vector<ParamRef> out;
  for (auto& p : body_.params()) {
    p.name = "body." + p.name;
    out.push_back(p);
  }
  if (projection_) {
    for (auto& p : projection_->params()) {
      p.name = "proj." + p.name;
      out.push_back(p);
    }
  }
  return out;
}

}  // namespace dnnd::nn
