// CampaignSink: durable destinations for JSON artifacts.
//
// A sink persists one deterministic JSON document somewhere a later process
// can reload it (campaign_from_json, serving_report_from_json) and diff it
// (dnnd_diff, dnnd_serving_check). Three concrete sinks: stdout (the legacy
// DNND_JSON=1 behavior, byte-identical), a single file, and a directory that
// collects one numbered file per run. sink_from_env() wires the env-var
// protocol the bench binaries share; write_campaign_from_env() /
// write_document_from_env() are the one-call conveniences on top of it.
#pragma once

#include <memory>
#include <string>

#include "harness/campaign.hpp"

namespace dnnd::harness {

class CampaignSink {
 public:
  virtual ~CampaignSink() = default;

  /// Persists one newline-terminated JSON document. Throws
  /// std::runtime_error on I/O failure. This is the single primitive every
  /// sink implements; campaign- or report-shaped writes all funnel here.
  virtual void write_text(const std::string& text) = 0;

  /// Persists one campaign (its to_json() plus a trailing newline).
  void write(const CampaignResult& campaign) { write_text(campaign.to_json() + "\n"); }

  /// Human-readable destination ("stdout", the file path, ...).
  [[nodiscard]] virtual std::string describe() const = 0;
};

/// Prints the document to stdout -- byte-identical to the pre-sink
/// `DNND_JSON=1` inline printf in the migrated benches.
class StdoutSink final : public CampaignSink {
 public:
  void write_text(const std::string& text) override;
  [[nodiscard]] std::string describe() const override { return "stdout"; }
};

/// Writes the document to one file, creating parent directories and
/// truncating any previous content.
class FileSink final : public CampaignSink {
 public:
  explicit FileSink(std::string path) : path_(std::move(path)) {}
  void write_text(const std::string& text) override;
  [[nodiscard]] std::string describe() const override { return path_; }

 private:
  std::string path_;
};

/// Collects a directory of runs: each write lands in the next free
/// "<stem>-NNNN.json" slot, so successive campaigns accumulate side by side
/// for cross-run diffing. Slots are claimed atomically (O_CREAT|O_EXCL), so
/// concurrent processes sharing one directory each get their own file --
/// the loser of a slot race probes the next number instead of clobbering.
class RunDirectorySink final : public CampaignSink {
 public:
  explicit RunDirectorySink(std::string dir, std::string stem = "campaign")
      : dir_(std::move(dir)), stem_(std::move(stem)) {}
  void write_text(const std::string& text) override;
  [[nodiscard]] std::string describe() const override { return dir_ + "/" + stem_ + "-*.json"; }

  /// The path the next write would use if no other writer intervenes
  /// (advisory, for tests/logging; write_text() claims its slot atomically
  /// and may land on a later number under contention).
  [[nodiscard]] std::string next_path() const;

 private:
  [[nodiscard]] std::string slot_path(usize i) const;

  std::string dir_;
  std::string stem_;
};

/// Sink selected by the shared bench env protocol:
///  - DNND_JSON_OUT ending in '/' or naming an existing directory
///    -> RunDirectorySink (numbered "<stem>-NNNN.json" slots).
///  - DNND_JSON_OUT naming an existing file or a fresh "*.json" path
///    -> FileSink.
///  - DNND_JSON_OUT naming a not-yet-existing path with neither a trailing
///    '/' nor a ".json" suffix is AMBIGUOUS (usually a run directory missing
///    its slash, which would silently become one overwritten file) and
///    throws std::runtime_error.
///  - otherwise DNND_JSON=1 -> StdoutSink (legacy behavior).
///  - otherwise nullptr (no JSON output requested).
std::unique_ptr<CampaignSink> sink_from_env(const std::string& stem = "campaign");

enum class SinkWriteStatus {
  kNoSink,   ///< no sink configured in the environment; nothing written
  kWritten,  ///< document persisted successfully
  kFailed,   ///< sink configured but the write failed (reported on stderr)
};

/// Convenience for bench drivers: write through sink_from_env() when one is
/// configured; a no-op otherwise. I/O failures are reported on stderr, not
/// thrown (the campaign already printed its table; don't abort the bench).
/// When `destination` is non-null it receives the sink's describe() string.
SinkWriteStatus write_campaign_from_env(const CampaignResult& campaign,
                                        std::string* destination = nullptr);

/// Same protocol for an arbitrary pre-serialized JSON document (the serving
/// report, the inference bench summary, ...). `json` must NOT carry its own
/// trailing newline; `stem` names run-directory slots ("<stem>-NNNN.json").
SinkWriteStatus write_document_from_env(const std::string& json, const std::string& stem,
                                        std::string* destination = nullptr);

}  // namespace dnnd::harness
