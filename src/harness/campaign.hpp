// CampaignRunner: executes a grid of Scenarios across a std::thread pool and
// collects structured, deterministic results.
//
// Determinism contract: results depend only on the scenario list (ids,
// budgets, configs), never on the thread count or completion order. Workers
// claim scenario indices from an atomic counter and write into the matching
// result slot; every RNG is seeded from scenario_seed(). Wall-clock fields
// are the only nondeterministic outputs and are excluded from table()/
// to_json() unless explicitly requested.
#pragma once

#include <functional>
#include <string_view>
#include <vector>

#include "harness/artifact_cache.hpp"
#include "harness/scenario.hpp"
#include "sys/json.hpp"
#include "sys/table.hpp"

namespace dnnd::harness {

struct ScenarioResult;

struct CampaignConfig {
  /// Worker threads; 0 = std::thread::hardware_concurrency().
  usize threads = 0;
  /// Print one line per finished scenario to stderr.
  bool verbose = false;
  /// Invoked once per finished scenario, from the worker thread that ran it
  /// (concurrent invocations for distinct scenarios; never twice for the
  /// same one). The shard protocol checkpoints each cell here. A throwing
  /// hook does not stop the sweep, but CampaignRunner::run rethrows the
  /// first hook failure after all workers join -- a checkpoint that cannot
  /// be persisted must fail the run loudly, not complete it silently.
  std::function<void(const ScenarioResult&)> on_result = {};
};

/// Structured outcome of one scenario.
struct ScenarioResult {
  std::string id;
  std::string label;
  std::string model;
  std::string defense;
  std::string attack;

  bool ok = false;
  std::string error;  ///< set when ok == false; scenario failures never abort a campaign

  double clean_accuracy = 0.0;
  double post_accuracy = 0.0;
  /// T-BFA attacks: fraction of eval-batch source rows predicted as the
  /// target class after the attack. 0 for every other attack kind.
  double attack_success_rate = 0.0;
  /// T-BFA attacks: post-attack eval-batch accuracy outside the source rows
  /// (the stealth metric). 0 for every other attack kind.
  double post_attack_other_acc = 0.0;
  std::string flips;  ///< paper-style flip count (">80", "30 (0 landed)", ...)

  // kDramWhiteBox details
  usize attempts = 0;
  usize landed = 0;
  usize blocked = 0;

  usize secured_bits = 0;        ///< size of the secured set (kAdaptive / defender)
  usize secured_rows = 0;        ///< weight rows covered by the secured set
  u64 total_bits = 0;            ///< attackable weight bits of the quantized model
  std::vector<double> trace;     ///< accuracy curve (record_trace / trace attacks)

  double wall_seconds = 0.0;     ///< nondeterministic; excluded from table/JSON
};

struct CampaignResult {
  std::vector<ScenarioResult> results;  ///< same order as the input scenarios
  usize threads_used = 1;
  double total_seconds = 0.0;
  /// True when the campaign ran under the true-integer forward regime
  /// (DNND_INT8=1). Serialized as an "int8" marker ONLY when set, so
  /// default-regime documents -- and their byte-compare gates -- are
  /// unchanged.
  bool int8_regime = false;

  /// Generic campaign table (deterministic).
  [[nodiscard]] sys::Table table() const;

  /// Deterministic JSON export; timing fields only with include_timing.
  [[nodiscard]] std::string to_json(bool include_timing = false) const;

  /// Result lookup by scenario id; throws std::out_of_range when absent.
  [[nodiscard]] const ScenarioResult& by_id(std::string_view id) const;
};

class CampaignRunner {
 public:
  explicit CampaignRunner(CampaignConfig cfg = {});

  /// Runs all scenarios (parallel when cfg.threads > 1). Exceptions inside a
  /// scenario are captured into its result (ok = false).
  CampaignResult run(const std::vector<Scenario>& scenarios);

  /// Executes one scenario against a cache. Deterministic given (sc, cache
  /// keys); exposed for tests and custom drivers.
  static ScenarioResult run_scenario(const Scenario& sc, ArtifactCache& cache);

  [[nodiscard]] ArtifactCache& cache() { return cache_; }

 private:
  CampaignConfig cfg_;
  ArtifactCache cache_;
};

/// Worker-thread count from the DNND_THREADS env var (0/unset = hardware
/// concurrency) -- the knob the bench binaries expose. Parsed through
/// sys::env_usize, the same validated parser the GEMM team size uses, so a
/// malformed value warns and falls back instead of silently diverging from
/// the engine's reading of the identical variable.
usize env_threads();

/// Serializes one ScenarioResult as the scenario object CampaignResult::
/// to_json() emits -- the single source of the scenario-object shape, shared
/// by whole-campaign documents and the shard protocol's per-cell checkpoint
/// files, so a merged sharded run reassembles to the exact single-process
/// bytes.
void scenario_result_to_json(sys::JsonWriter& w, const ScenarioResult& r,
                             bool include_timing = false);

/// Parses one scenario object (the inverse of scenario_result_to_json) with
/// campaign_from_json's strictness: every field is required, `error` exactly
/// when ok is false, `wall_seconds` exactly when `expect_timing`. `where`
/// names the source in error messages. Throws sys::JsonParseError.
ScenarioResult scenario_result_from_json(const sys::JsonValue& s, bool expect_timing,
                                         const std::string& where);

/// Parses a campaign document produced by CampaignResult::to_json() (with or
/// without timing fields) back into a CampaignResult, so persisted runs can
/// be reloaded and diffed. Round-trips byte-exactly when re-serialized with
/// the matching flag: campaign_from_json(r.to_json()).to_json() == r.to_json()
/// and campaign_from_json(r.to_json(true)).to_json(true) == r.to_json(true).
/// Strict: every field to_json writes is required (the timing fields as a
/// unit -- `threads`/`total_seconds`/per-scenario `wall_seconds` must be all
/// present or all absent, and `error` is required exactly when ok is false),
/// so a truncated or hand-edited baseline throws instead of loading as a
/// plausible zero-flip campaign. Throws sys::JsonParseError on malformed or
/// wrong-shape input.
CampaignResult campaign_from_json(std::string_view json);

}  // namespace dnnd::harness
