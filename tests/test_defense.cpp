#include <gtest/gtest.h>

#include <cmath>

#include "attack/bfa.hpp"
#include "defense/counter_based.hpp"
#include "defense/overhead_model.hpp"
#include "defense/para.hpp"
#include "defense/rrs.hpp"
#include "defense/shadow.hpp"
#include "defense/software_defenses.hpp"
#include "defense/srs.hpp"
#include "rowhammer/attacker.hpp"
#include "test_util.hpp"

namespace dnnd::defense {
namespace {

using dram::DramConfig;
using dram::DramDevice;
using dram::RowAddr;
using dram::RowRemapper;

DramConfig fast_config() {
  DramConfig cfg = DramConfig::sim_small();
  cfg.t_rh = 600;  // keep hammering loops quick
  return cfg;
}

rowhammer::HammerModelConfig dense_cells() {
  rowhammer::HammerModelConfig h;
  h.p_vulnerable = 0.2;
  h.seed = 77;
  return h;
}

/// Hammers the physical neighbourhood of logical row `victim` double-sided
/// while `mitigation` (if any) runs via the post-act hook. The white-box
/// attacker re-resolves the victim's physical location between bursts (it
/// tracks remapping); the verdict is whether the victim's *data* -- wherever
/// it now lives -- lost any bit. A defense that merely relocates intact data
/// does not count as broken.
bool hammer_breaks_row(DramDevice& dev, RowRemapper& remap, defense::Mitigation* mitigation,
                       const RowAddr& victim, u64 acts) {
  rowhammer::HammerAttacker attacker(dev, sys::Rng(5));
  if (mitigation != nullptr) {
    attacker.set_post_act_hook([mitigation] { mitigation->tick(); });
  }
  std::vector<u8> ones(dev.config().geo.row_bytes, 0xFF);
  dev.write_row(remap.to_physical(victim), ones);
  const u64 burst = std::max<u64>(64, dev.config().t_rh / 8);
  for (u64 done = 0; done < acts; done += burst) {
    const RowAddr phys = remap.to_physical(victim);
    if (phys.row == 0 || phys.row + 1 >= dev.config().geo.rows_per_subarray) continue;
    attacker.double_sided(phys, burst);
  }
  const auto data = dev.peek_row(remap.to_physical(victim));
  for (u8 b : data) {
    if (b != 0xFF) return true;
  }
  return false;
}

TEST(Baseline, HammerBreaksUndefendedRow) {
  DramDevice dev(fast_config());
  rowhammer::HammerModel model(dev, dense_cells());
  RowRemapper remap(dev.config().geo);
  EXPECT_TRUE(hammer_breaks_row(dev, remap, nullptr, {0, 1, 20}, 3 * dev.config().t_rh));
}

// ---------------------------------------------------------------- RRS/SRS --

TEST(Rrs, SwapsHotAggressorAndUpdatesRemap) {
  DramDevice dev(fast_config());
  RowRemapper remap(dev.config().geo);
  Rrs rrs(dev, remap);
  // Directly activate one row past the swap threshold.
  rowhammer::HammerAttacker attacker(dev, sys::Rng(1));
  const RowAddr hot{0, 0, 10};
  const RowAddr other{0, 0, 40};
  const RowAddr aggs[2] = {hot, other};
  attacker.hammer(aggs, 2 * dev.config().t_rh);
  EXPECT_GT(rrs.swaps_performed(), 0u);
  EXPECT_GT(rrs.stats().tracker_accesses, 0u);
}

TEST(Rrs, SwapPreservesData) {
  DramDevice dev(fast_config());
  RowRemapper remap(dev.config().geo);
  Rrs rrs(dev, remap);
  const RowAddr hot{0, 0, 10};
  std::vector<u8> payload(dev.config().geo.row_bytes, 0xCD);
  dev.write_row(hot, payload);
  rowhammer::HammerAttacker attacker(dev, sys::Rng(1));
  const RowAddr aggs[2] = {hot, {0, 0, 40}};
  attacker.hammer(aggs, 2 * dev.config().t_rh);
  ASSERT_GT(rrs.swaps_performed(), 0u);
  // The logical row content is intact wherever it physically lives now.
  const RowAddr phys = remap.to_physical(hot);
  for (u8 b : dev.peek_row(phys)) EXPECT_EQ(b, 0xCD);
}

TEST(Rrs, WhiteBoxVictimFocusedAttackDefeatsIt) {
  // The paper's core argument: RRS swaps aggressors, so an attacker who
  // tracks the victim keeps accumulating disturbance and eventually flips.
  DramDevice dev(fast_config());
  rowhammer::HammerModel model(dev, dense_cells());
  RowRemapper remap(dev.config().geo);
  Rrs rrs(dev, remap);
  EXPECT_TRUE(hammer_breaks_row(dev, remap, &rrs, {0, 1, 20}, 4 * dev.config().t_rh))
      << "RRS unexpectedly stopped a physical-adjacency attack";
}

TEST(Srs, IsAnRrsWithSmallerTracker) {
  DramDevice dev(fast_config());
  RowRemapper remap(dev.config().geo);
  Srs srs(dev, remap);
  EXPECT_EQ(srs.name(), "SRS");
  DramDevice dev2(fast_config());
  rowhammer::HammerModel model(dev2, dense_cells());
  RowRemapper remap2(dev2.config().geo);
  Srs srs2(dev2, remap2);
  EXPECT_TRUE(hammer_breaks_row(dev2, remap2, &srs2, {0, 1, 20}, 4 * dev2.config().t_rh));
}

// ----------------------------------------------------------------- SHADOW --

TEST(ShadowDefense, BlocksDoubleSidedHammer) {
  DramDevice dev(fast_config());
  rowhammer::HammerModel model(dev, dense_cells());
  RowRemapper remap(dev.config().geo);
  Shadow shadow(dev, remap);
  EXPECT_FALSE(hammer_breaks_row(dev, remap, &shadow, {0, 1, 20}, 4 * dev.config().t_rh))
      << "SHADOW failed to shuffle the victim before threshold";
  EXPECT_GT(shadow.shuffles_performed(), 0u);
}

TEST(ShadowDefense, ShufflePreservesVictimData) {
  DramDevice dev(fast_config());
  rowhammer::HammerModel model(dev, dense_cells());
  RowRemapper remap(dev.config().geo);
  Shadow shadow(dev, remap);
  const RowAddr victim{0, 1, 20};
  std::vector<u8> payload(dev.config().geo.row_bytes, 0xEE);
  dev.write_row(victim, payload);
  rowhammer::HammerAttacker attacker(dev, sys::Rng(3));
  const RowAddr aggs[2] = {{0, 1, 19}, {0, 1, 21}};
  attacker.hammer(aggs, 2 * dev.config().t_rh);
  ASSERT_GT(shadow.shuffles_performed(), 0u);
  const RowAddr phys = remap.to_physical(victim);
  EXPECT_FALSE(phys == victim) << "victim should have moved";
  for (u8 b : dev.peek_row(phys)) EXPECT_EQ(b, 0xEE);
}

TEST(ShadowDefense, UsesOnlyInDramOps) {
  DramDevice dev(fast_config());
  RowRemapper remap(dev.config().geo);
  Shadow shadow(dev, remap);
  rowhammer::HammerAttacker attacker(dev, sys::Rng(3));
  const RowAddr aggs[2] = {{0, 1, 19}, {0, 1, 21}};
  attacker.hammer(aggs, 2 * dev.config().t_rh);
  EXPECT_EQ(shadow.stats().tracker_accesses, 0u);  // no SRAM
  EXPECT_GT(dev.stats().n_aap, 0u);                // RowClone-based
}

// ---------------------------------------------------------- counter-based --

class CounterPresets : public ::testing::TestWithParam<CounterBasedConfig> {};

TEST_P(CounterPresets, BlocksHammerByNeighborRefresh) {
  DramDevice dev(fast_config());
  rowhammer::HammerModel model(dev, dense_cells());
  RowRemapper remap(dev.config().geo);
  CounterBased defense(dev, remap, GetParam());
  EXPECT_FALSE(hammer_breaks_row(dev, remap, &defense, {0, 1, 20}, 4 * dev.config().t_rh))
      << GetParam().name << " failed";
  EXPECT_GT(defense.refreshes_issued(), 0u);
}

INSTANTIATE_TEST_SUITE_P(AllPresets, CounterPresets,
                         ::testing::Values(CounterBased::graphene(), CounterBased::twice(),
                                           CounterBased::hydra(),
                                           CounterBased::counter_per_row(),
                                           CounterBased::counter_tree()),
                         [](const auto& info) { return info.param.name; });

TEST(CounterBasedCosts, SramVsDramTrackers) {
  DramDevice dev1(fast_config());
  RowRemapper r1(dev1.config().geo);
  CounterBased graphene(dev1, r1, CounterBased::graphene());
  DramDevice dev2(fast_config());
  RowRemapper r2(dev2.config().geo);
  CounterBased cpr(dev2, r2, CounterBased::counter_per_row());
  rowhammer::HammerAttacker a1(dev1, sys::Rng(1)), a2(dev2, sys::Rng(1));
  const RowAddr aggs[2] = {{0, 0, 10}, {0, 0, 40}};
  a1.hammer(aggs, 500);
  a2.hammer(aggs, 500);
  EXPECT_GT(graphene.stats().tracker_accesses, 0u);
  EXPECT_EQ(cpr.stats().tracker_accesses, 0u);  // counters in DRAM instead
  EXPECT_GT(cpr.stats().energy_spent, graphene.stats().energy_spent);
}

// -------------------------------------------------------------------- PARA --

TEST(ParaDefense, ProbabilityOneBlocksEverything) {
  DramDevice dev(fast_config());
  rowhammer::HammerModel model(dev, dense_cells());
  RowRemapper remap(dev.config().geo);
  ParaConfig cfg;
  cfg.refresh_probability = 1.0;
  Para para(dev, remap, cfg);
  EXPECT_FALSE(hammer_breaks_row(dev, remap, &para, {0, 1, 20}, 3 * dev.config().t_rh));
}

TEST(ParaDefense, ProbabilityZeroBlocksNothing) {
  DramDevice dev(fast_config());
  rowhammer::HammerModel model(dev, dense_cells());
  RowRemapper remap(dev.config().geo);
  ParaConfig cfg;
  cfg.refresh_probability = 0.0;
  Para para(dev, remap, cfg);
  EXPECT_TRUE(hammer_breaks_row(dev, remap, &para, {0, 1, 20}, 3 * dev.config().t_rh));
}

// ---------------------------------------------------------- overhead model --

TEST(Overhead, TableCoversAllFrameworks) {
  const auto table = overhead_table(dram::DramConfig::paper_32gb());
  ASSERT_EQ(table.size(), 10u);
  EXPECT_EQ(table.back().framework, "DNN-Defender");
}

TEST(Overhead, OnlyDnnDefenderHasZeroCapacity) {
  for (const auto& e : overhead_table(dram::DramConfig::paper_32gb())) {
    if (e.framework == "DNN-Defender") {
      EXPECT_EQ(e.total_bytes(), 0u);
    } else {
      EXPECT_GT(e.total_bytes(), 0u) << e.framework;
    }
  }
}

TEST(Overhead, CounterPerRowMatchesPaperDerivation) {
  // 32GB / 8KB rows * 8B counters = 32MB (paper Table 2).
  for (const auto& e : overhead_table(dram::DramConfig::paper_32gb())) {
    if (e.framework == "CounterPerRow") {
      EXPECT_EQ(e.dram_bytes, 32ull * 1024 * 1024);
    }
    if (e.framework == "SHADOW") {
      EXPECT_EQ(e.dram_bytes, 20ull * 8192);  // 0.16 MB
    }
  }
}

TEST(Overhead, FastMemoryFlagsMatchPaper) {
  for (const auto& e : overhead_table(dram::DramConfig::paper_32gb())) {
    const bool fast = e.needs_fast_memory();
    if (e.framework == "Graphene" || e.framework == "Hydra" || e.framework == "TWiCE") {
      EXPECT_TRUE(fast) << e.framework;
    }
    if (e.framework == "SHADOW" || e.framework == "P-PIM" ||
        e.framework == "DNN-Defender" || e.framework == "CounterPerRow" ||
        e.framework == "CounterTree") {
      EXPECT_FALSE(fast) << e.framework;
    }
  }
}

// ------------------------------------------------------- software defenses --

TEST(BinaryWeight, FlipNegatesSign) {
  auto model = testutil::trained_mlp();
  software::BinaryWeightModel bm(*model);
  const bool before = bm.is_positive(0, 5);
  bm.flip(0, 5);
  EXPECT_NE(bm.is_positive(0, 5), before);
  EXPECT_EQ(bm.total_bits(), model->weight_count());
}

TEST(BinaryWeight, MaterializedWeightsAreBinary) {
  auto model = testutil::trained_mlp();
  software::BinaryWeightModel bm(*model);
  for (auto& p : model->quantizable_params()) {
    for (usize i = 0; i < p.value->size(); i += 5) {
      const float v = std::fabs((*p.value)[i]);
      bool matches = false;
      for (usize l = 0; l < bm.num_layers(); ++l) {
        if (std::fabs(v - bm.alpha(l)) < 1e-6) matches = true;
      }
      EXPECT_TRUE(matches);
    }
  }
}

TEST(BinaryWeight, PerFlipDamageIsBounded) {
  // The binary-weight defense argument (Table 3): a sign flip moves a weight
  // by exactly 2*alpha (alpha = mean|w|), while an 8-bit MSB flip moves it by
  // 128 quantization steps ~ max|w| -- several times larger. Bounded per-flip
  // damage is what forces the attacker to spend more flips.
  auto m8 = testutil::trained_mlp();
  quant::QuantizedModel qm(*m8);
  auto mb = testutil::trained_mlp();
  software::BinaryWeightModel bm(*mb);
  for (usize l = 0; l < bm.num_layers(); ++l) {
    const double binary_step = 2.0 * bm.alpha(l);
    const double msb_step = 128.0 * qm.layer(l).scale;
    EXPECT_LT(binary_step, msb_step * 0.75)
        << "layer " << l << ": binary flips must be gentler than MSB flips";
  }
  // And the flip really moves the weight by exactly 2*alpha.
  const float before = (*bm.model().quantizable_params()[0].value)[3];
  bm.flip(0, 3);
  const float after = (*bm.model().quantizable_params()[0].value)[3];
  EXPECT_NEAR(std::fabs(after - before), 2.0 * bm.alpha(0), 1e-6);
}

TEST(BinaryWeight, SteFinetuneRecoversAccuracy) {
  // Naive post-hoc binarization of a conv/dense net collapses it; the STE
  // fine-tune must bring it back to a useful level.
  auto model = testutil::trained_mlp();
  const double acc = software::binary_finetune(*model, testutil::easy_data(),
                                               /*epochs=*/3, /*lr=*/0.02, 5);
  EXPECT_GT(acc, 0.6);
  // Deployed weights are exactly binary per layer.
  for (auto& p : model->quantizable_params()) {
    const float mag = std::fabs((*p.value)[0]);
    for (usize i = 0; i < p.value->size(); i += 7) {
      EXPECT_NEAR(std::fabs((*p.value)[i]), mag, 1e-6);
    }
  }
}

TEST(PiecewiseClustering, KeepsAccuracyReasonable) {
  auto model = testutil::trained_mlp();
  const double before = nn::evaluate(*model, testutil::easy_data().test);
  const double after = software::piecewise_clustering_finetune(
      *model, testutil::easy_data(), /*lambda=*/0.01, /*epochs=*/2, /*lr=*/0.01, 3);
  EXPECT_GT(after, before - 0.1);
}

TEST(PiecewiseClustering, PullsWeightsTowardTwoClusters) {
  auto model = testutil::trained_mlp();
  software::piecewise_clustering_finetune(*model, testutil::easy_data(), /*lambda=*/0.3,
                                          /*epochs=*/4, /*lr=*/0.01, 3);
  // Weight magnitudes should concentrate: the ratio max|w| / mean|w| shrinks
  // toward 1 as weights move to +-mu.
  for (auto& p : model->quantizable_params()) {
    double mean = 0.0;
    for (usize i = 0; i < p.value->size(); ++i) mean += std::fabs((*p.value)[i]);
    mean /= static_cast<double>(p.value->size());
    EXPECT_LT(p.value->abs_max() / mean, 4.0);
  }
}

TEST(Reconstruction, ClampsMsbFlippedWeight) {
  auto model = testutil::trained_mlp();
  quant::QuantizedModel qm(*model);
  software::ReconstructionGuard guard(qm, 0.999);
  // Flip the sign bit of a small positive code: it becomes very negative.
  usize idx = 0;
  for (usize i = 0; i < qm.layer(0).size(); ++i) {
    if (qm.get_q(0, i) >= 0 && qm.get_q(0, i) < 32) {
      idx = i;
      break;
    }
  }
  qm.flip({0, idx, 7});
  ASSERT_LT(qm.get_q(0, idx), -64);
  const usize corrected = guard.apply(qm);
  EXPECT_GE(corrected, 1u);
  EXPECT_GE(qm.get_q(0, idx), -static_cast<i32>(guard.bound(0)));
}

TEST(Reconstruction, RepairsAttackDamage) {
  auto model = testutil::trained_mlp();
  quant::QuantizedModel qm(*model);
  software::ReconstructionGuard guard(qm);
  auto [ax, ay] = testutil::easy_data().test.head(32);
  attack::BfaConfig cfg;
  cfg.max_flips = 10;
  attack::ProgressiveBitSearch bfa(qm, ax, ay, cfg);
  bfa.run();
  const double attacked_acc = qm.model().accuracy(ax, ay);
  const double attacked_loss = qm.model().loss(ax, ay);
  const usize corrected = guard.apply(qm);
  // The attack's damage comes from out-of-distribution weight magnitudes;
  // the guard must find and shrink some of them, and the (sensitive) loss
  // must improve. Accuracy is quantised over 32 samples, so it may tie.
  EXPECT_GT(corrected, 0u);
  EXPECT_LT(qm.model().loss(ax, ay), attacked_loss);
  EXPECT_GE(qm.model().accuracy(ax, ay), attacked_acc);
}

}  // namespace
}  // namespace dnnd::defense
