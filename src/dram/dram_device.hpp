// Transaction-level DRAM device: banks -> subarrays -> rows of bytes, with a
// per-bank row buffer, command-accurate timing/energy accounting, RowClone
// FPM/PSM in-DRAM copy, distributed refresh, and activation/restore hooks
// that the RowHammer fault model and the mitigations subscribe to.
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "dram/dram_config.hpp"
#include "dram/stats.hpp"

namespace dnnd::dram {

/// How a row's charge was restored.
enum class RestoreKind {
  kRefresh,  ///< cells re-amplified to their *current* value (ACT restore, REF)
  kRewrite,  ///< new data driven into the cells (write, RowClone destination)
};

/// Observer interface for row-level events. The RowHammer model listens to
/// build disturbance counters; counter-based mitigations listen to track
/// aggressors.
class RowEventListener {
 public:
  virtual ~RowEventListener() = default;
  /// A physical row was activated (sense + restore) at time `now`.
  virtual void on_activate(const RowAddr& row, Picoseconds now) = 0;
  /// A physical row's cells were restored at time `now`. Disturbance
  /// accumulated against this row so far can no longer flip it. kRewrite
  /// additionally recharges previously-flipped cells (fresh data).
  virtual void on_restore(const RowAddr& row, Picoseconds now, RestoreKind kind) = 0;
};

/// The simulated device. All mutating commands advance the internal clock and
/// charge energy; `peek/poke/force_flip_bit` bypass timing and model physical
/// effects (fault injection, test setup).
class DramDevice {
 public:
  explicit DramDevice(DramConfig cfg);

  DramDevice(const DramDevice&) = delete;
  DramDevice& operator=(const DramDevice&) = delete;

  // ----- command interface (advances time, charges energy) -----

  /// ACT: opens `row` in its bank (implicitly PREs a different open row).
  /// Fires on_activate and on_restore for the row.
  void activate(const RowAddr& row);

  /// PRE: closes the open row of `bank` (no-op when already closed).
  void precharge(u32 bank);

  /// Reads one 64B burst; requires/establishes the row being open.
  void read_burst(const RowAddr& row, usize burst_index, std::span<u8> out);

  /// Writes one 64B burst; requires/establishes the row being open.
  /// Fires on_restore for the row.
  void write_burst(const RowAddr& row, usize burst_index, std::span<const u8> data);

  /// Convenience: full-row read via ACT + all bursts.
  std::vector<u8> read_row(const RowAddr& row);

  /// Convenience: full-row write via ACT + all bursts. `data` must be
  /// row_bytes long.
  void write_row(const RowAddr& row, std::span<const u8> data);

  /// RowClone-FPM: in-subarray bulk copy src -> dst via back-to-back ACTs
  /// (one tAAP, no channel transfer). Rows must share bank+subarray.
  /// Fires on_activate+on_restore(src) and on_restore(dst).
  void rowclone_fpm(u32 bank, u32 subarray, u32 src_row, u32 dst_row);

  /// RowClone-PSM: inter-bank copy through the internal bus (slower than FPM
  /// but still avoids the off-chip channel).
  void rowclone_psm(const RowAddr& src, const RowAddr& dst);

  /// One distributed-refresh slice: refreshes the next 1/refresh_steps of all
  /// rows (fires on_restore for each). Call refresh_steps times per Tref.
  void refresh_step();

  /// Refreshes every row at once (end-of-window convenience).
  void refresh_all();

  // ----- physical/cell-level access (no timing; models faults & test setup) -----

  [[nodiscard]] u8 peek(const RowAddr& row, usize col) const;
  void poke(const RowAddr& row, usize col, u8 value);
  [[nodiscard]] std::span<const u8> peek_row(const RowAddr& row) const;
  void poke_row(const RowAddr& row, std::span<const u8> data);

  /// Flips one cell (RowHammer fault injection). bit in [0,8).
  void force_flip_bit(const RowAddr& row, usize col, u32 bit);

  // ----- clock / bookkeeping -----

  [[nodiscard]] Picoseconds now() const { return now_; }
  /// Advances the clock without issuing commands (e.g. attacker think time).
  void advance(Picoseconds dt);

  [[nodiscard]] const DramConfig& config() const { return cfg_; }
  [[nodiscard]] Stats& stats() { return stats_; }
  [[nodiscard]] const Stats& stats() const { return stats_; }

  /// Listener registration. Listeners are not owned.
  void add_listener(RowEventListener* l);
  void remove_listener(RowEventListener* l);

  /// Open row of a bank, or -1 when precharged (exposed for tests).
  [[nodiscard]] i64 open_row(u32 bank) const;

 private:
  usize row_offset(const RowAddr& row) const;
  void ensure_open(const RowAddr& row);
  void notify_activate(const RowAddr& row);
  void notify_restore(const RowAddr& row, RestoreKind kind);

  DramConfig cfg_;
  std::vector<u8> cells_;          ///< flat physical storage
  std::vector<i64> open_row_;      ///< per-bank open flat-row-within-bank, -1 = precharged
  std::vector<RowEventListener*> listeners_;
  Stats stats_;
  Picoseconds now_ = 0;
  u64 refresh_cursor_ = 0;  ///< next flat row id for distributed refresh
};

}  // namespace dnnd::dram
