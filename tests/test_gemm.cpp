// Kernel-equivalence property tests: the GEMM/im2col engine path must be
// bitwise identical to the retained naive reference kernels, across
// randomized shapes including odd sizes, stride/padding edges, and batch 1/N.
#include <gtest/gtest.h>

#include <cstring>

#include "nn/gemm.hpp"
#include "nn/layers.hpp"
#include "nn/reference.hpp"
#include "nn/workspace.hpp"

namespace dnnd::nn {
namespace {

void fill_random(Tensor& t, sys::Rng& rng) {
  for (usize i = 0; i < t.size(); ++i) t[i] = static_cast<float>(rng.normal(0.0, 1.0));
}

void expect_bitwise_equal(const Tensor& a, const Tensor& b, const std::string& what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)))
      << what << ": engine and naive outputs differ bitwise";
}

TEST(Gemm, MatchesNaiveDotProduct) {
  sys::Rng rng(101);
  Workspace ws;
  for (int trial = 0; trial < 30; ++trial) {
    const usize M = 1 + rng.uniform(20), N = 1 + rng.uniform(33), K = 1 + rng.uniform(70);
    Tensor a({M, K}), b({N, K}), bias({N});
    fill_random(a, rng);
    fill_random(b, rng);
    fill_random(bias, rng);
    Tensor c({M, N}), ref({M, N});
    gemm::gemm_nt(M, N, K, a.data(), K, b.data(), K, c.data(), N, bias.data(),
                  gemm::Bias::kPerCol, ws);
    for (usize m = 0; m < M; ++m) {
      for (usize n = 0; n < N; ++n) {
        float acc = bias[n];
        for (usize k = 0; k < K; ++k) acc += a[m * K + k] * b[n * K + k];
        ref.at2(m, n) = acc;
      }
    }
    expect_bitwise_equal(c, ref, "gemm_nt trial " + std::to_string(trial));
  }
}

TEST(Gemm, DenseForwardMatchesReference) {
  sys::Rng rng(102);
  for (int trial = 0; trial < 40; ++trial) {
    const usize in = 1 + rng.uniform(40);
    const usize out = 1 + rng.uniform(24);  // crosses the 8-wide panel boundary
    const usize n = trial % 2 == 0 ? 1 : 2 + rng.uniform(5);
    Dense d(in, out, rng);
    Tensor x({n, in});
    fill_random(x, rng);
    fill_random(d.bias, rng);
    const Tensor y = d.forward(x, /*train=*/false);
    Tensor ref({n, out});
    reference::dense_forward(x, d.weight, d.bias, ref);
    expect_bitwise_equal(y, ref, "dense trial " + std::to_string(trial));
  }
}

TEST(Gemm, Conv2dForwardMatchesReference) {
  sys::Rng rng(103);
  for (int trial = 0; trial < 60; ++trial) {
    const usize in_ch = 1 + rng.uniform(4);
    const usize out_ch = 1 + rng.uniform(10);
    const usize k = 1 + rng.uniform(3);       // 1..3
    const usize stride = 1 + rng.uniform(2);  // 1..2
    const usize pad = rng.uniform(k + 1);     // 0..k (includes over-padding edges)
    // Odd and even spatial sizes; must keep at least one output pixel.
    usize h = 3 + rng.uniform(8), w = 3 + rng.uniform(8);
    if (h + 2 * pad < k) h = k;
    if (w + 2 * pad < k) w = k;
    const usize n = trial % 3 == 0 ? 1 : 2 + rng.uniform(3);
    Conv2d c(in_ch, out_ch, k, stride, pad, rng);
    fill_random(c.bias, rng);
    Tensor x({n, in_ch, h, w});
    fill_random(x, rng);
    const Tensor y = c.forward(x, /*train=*/false);
    Tensor ref(y.shape());
    reference::conv2d_forward(x, c.weight, c.bias, stride, pad, ref);
    expect_bitwise_equal(y, ref,
                         "conv trial " + std::to_string(trial) + " k=" + std::to_string(k) +
                             " s=" + std::to_string(stride) + " p=" + std::to_string(pad));
  }
}

TEST(Gemm, ForceNaiveRoutesLayersOntoReference) {
  sys::Rng rng(104);
  Dense d(13, 9, rng);
  Tensor x({3, 13});
  fill_random(x, rng);
  const Tensor engine = d.forward(x, false);
  gemm::set_force_naive(true);
  const Tensor naive = d.forward(x, false);
  gemm::set_force_naive(false);
  ASSERT_FALSE(gemm::force_naive());
  expect_bitwise_equal(engine, naive, "force_naive A/B");
}

}  // namespace
}  // namespace dnnd::nn
