// Campaign regression diff: field-by-field comparison of two CampaignResults
// (typically a committed baseline JSON vs a fresh run) with configurable
// tolerances. This is the library core of the `dnnd_diff` CLI; tests drive
// it directly.
#pragma once

#include <string>
#include <vector>

#include "harness/campaign.hpp"

namespace dnnd::harness {

struct DiffConfig {
  /// Absolute tolerance on clean/post accuracy and trace points
  /// (fractional, i.e. 0.01 == one accuracy percentage point).
  double acc_tol = 0.0;
  /// Tolerance on integer counters: parsed flip counts, attempts, landed,
  /// blocked, secured_bits/rows. At 0 the flips *string* must match exactly
  /// (">8" vs "8" is a different outcome -- stop accuracy never reached vs
  /// reached -- even though the counts agree); a nonzero tolerance compares
  /// leading counts only.
  i64 flip_tol = 0;
  /// When true, scenarios present on only one side are reported but do not
  /// count as regressions (for diffing runs of different grids).
  bool ignore_missing = false;
  /// Final-outcomes-only mode for cross-regime comparisons (e.g. the int8
  /// forward vs the float baseline): gate only ok status and clean/post
  /// accuracy (within acc_tol). Flip counts, attempt counters, and the
  /// per-step trace -- including its LENGTH, a hard regression otherwise --
  /// are reported as notes but never flag a regression, because a different
  /// numeric regime legitimately walks a different attack path.
  bool final_only = false;
};

/// Comparison outcome for one scenario id.
struct ScenarioDelta {
  std::string id;
  bool missing_in_baseline = false;
  bool missing_in_current = false;
  /// At least one field moved beyond its tolerance.
  bool regression = false;

  double clean_delta = 0.0;  ///< current - baseline
  double post_delta = 0.0;
  i64 flip_delta = 0;  ///< parsed numeric flip-count delta; 0 when unparseable

  /// Human-readable field-level differences ("post_accuracy 0.52 -> 0.31").
  std::vector<std::string> notes;
};

struct DiffReport {
  std::vector<ScenarioDelta> deltas;  ///< one entry per scenario with any difference
  usize compared = 0;                 ///< ids present on both sides
  usize regressions = 0;              ///< deltas flagged as regression

  [[nodiscard]] bool ok() const { return regressions == 0; }

  /// Multi-line report; "identical"/"within tolerance" summary when clean.
  [[nodiscard]] std::string to_string() const;
};

/// Leading integer of a paper-style flips string (">80" -> 80,
/// "30 (0 landed)" -> 30). Returns -1 when no leading count is present, the
/// count overflows i64, or the count is followed by anything other than a
/// space-separated annotation -- malformed fields must never parse as a
/// plausible number. diff_campaigns flags an unparseable flips field of a
/// successful scenario as a regression on either side, even when baseline
/// and current match byte-for-byte.
i64 leading_flip_count(const std::string& flips);

/// Compares scenario results by id (order-insensitive). Every field beyond
/// its DiffConfig tolerance flags the scenario as a regression.
DiffReport diff_campaigns(const CampaignResult& baseline, const CampaignResult& current,
                          const DiffConfig& cfg = {});

}  // namespace dnnd::harness
