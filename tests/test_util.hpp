// Shared helpers for the test suite: small trained models and datasets,
// built once per process and cached (training even a tiny MLP takes ~100 ms;
// many tests need one).
#pragma once

#include <memory>

#include "models/model_zoo.hpp"
#include "nn/gemm.hpp"
#include "nn/simd.hpp"
#include "nn/trainer.hpp"
#include "quant/quantizer.hpp"

namespace dnnd::testutil {

/// Restores the process-global GEMM team setting on scope exit, so team-size
/// sweeps cannot leak into later tests. Now the library-side RAII guard the
/// campaign runner itself uses (nn/gemm.hpp).
using ThreadsGuard = nn::gemm::ThreadsGuard;

/// Restores the process-global SIMD knob overrides (force-scalar, FMA, int8
/// regime) on scope exit, so kernel-selection sweeps cannot leak into later
/// tests.
struct SimdGuard {
  int saved_scalar = nn::simd::scalar_override();
  int saved_fma = nn::simd::fma_override();
  int saved_int8 = nn::simd::int8_override();
  ~SimdGuard() {
    nn::simd::set_scalar_override(saved_scalar);
    nn::simd::set_fma_override(saved_fma);
    nn::simd::set_int8_override(saved_int8);
  }
};

/// A small, easy dataset for attack tests: 4 classes, 1x8x8, low noise.
inline const nn::SplitDataset& easy_data() {
  static const nn::SplitDataset data = [] {
    nn::SynthSpec spec;
    spec.num_classes = 4;
    spec.train_per_class = 80;
    spec.test_per_class = 30;
    spec.channels = 1;
    spec.height = 8;
    spec.width = 8;
    spec.noise = 0.8;
    spec.max_shift = 1;
    spec.seed = 1234;
    return nn::make_synthetic(spec);
  }();
  return data;
}

/// A trained MLP on easy_data() -- fresh copy per call (tests mutate models).
inline std::unique_ptr<nn::Model> trained_mlp() {
  auto model = models::make_test_mlp(64, 24, 4, /*seed=*/7);
  nn::TrainConfig cfg;
  cfg.epochs = 5;
  cfg.batch_size = 32;
  nn::train(*model, easy_data(), cfg);
  return model;
}

/// Test accuracy of a freshly-trained MLP (cached; used for baselines).
inline double trained_mlp_accuracy() {
  static const double acc = [] {
    auto m = trained_mlp();
    return nn::evaluate(*m, easy_data().test);
  }();
  return acc;
}

}  // namespace dnnd::testutil
