// ProtectedSystem: the full victim stack. A quantized model's weights live in
// simulated DRAM (via WeightMapping); inference reads them back from the
// device, so RowHammer flips -- and the defense's success in preventing them
// -- propagate to accuracy. The attacker runs the BFA search offline on its
// white-box copy and carries each chosen flip out through DeepHammerAttack,
// while the installed mitigation interleaves its maintenance through the
// post-ACT hook.
#pragma once

#include <memory>

#include "attack/adaptive_attack.hpp"
#include "attack/deephammer.hpp"
#include "core/dnn_defender.hpp"
#include "core/priority_profiler.hpp"

namespace dnnd::system {

struct ProtectedSystemConfig {
  dram::DramConfig dram = dram::DramConfig::sim_default();
  rowhammer::HammerModelConfig hammer{};
  mapping::MappingConfig mapping{};
  attack::DeepHammerConfig deephammer{};
  u64 seed = 0x5E55;
};

/// Outcome of a full-stack white-box attack campaign.
struct SystemAttackResult {
  usize attempts = 0;  ///< flip attempts carried out through DRAM
  usize landed = 0;    ///< flips that materialized in the weights
  usize blocked = 0;   ///< attempts defeated by the defense
  double initial_accuracy = 0.0;
  double final_accuracy = 0.0;
};

class ProtectedSystem {
 public:
  /// Plans the weight layout, uploads the quantized weights into DRAM, and
  /// wires the attack machinery. No defense is active initially.
  ProtectedSystem(quant::QuantizedModel& qm, ProtectedSystemConfig cfg = {});

  // ----- component access -----
  [[nodiscard]] dram::DramDevice& device() { return *device_; }
  [[nodiscard]] dram::RowRemapper& remapper() { return *remap_; }
  [[nodiscard]] rowhammer::HammerModel& hammer_model() { return *hammer_; }
  [[nodiscard]] const mapping::WeightMapping& mapping() const { return *mapping_; }
  [[nodiscard]] quant::QuantizedModel& qm() { return qm_; }
  [[nodiscard]] attack::DeepHammerAttack& deephammer() { return *deephammer_; }

  // ----- defense installation -----

  /// Installs DNN-Defender protecting the rows holding the first `max_bits`
  /// profiled bits (0 = all). Non-target rows = remaining weight rows.
  /// Returns the defender for inspection.
  core::DnnDefender& install_dnn_defender(const core::ProfileResult& profile,
                                          usize max_bits = 0,
                                          core::DnnDefenderConfig cfg = {});

  /// Installs an externally-constructed baseline mitigation (RRS/SRS/SHADOW/
  /// counter-based). The system takes ownership and pumps its tick().
  void install_mitigation(std::unique_ptr<defense::Mitigation> mitigation);

  /// Removes any active mitigation.
  void clear_mitigation();

  [[nodiscard]] defense::Mitigation* mitigation() { return mitigation_.get(); }
  [[nodiscard]] core::DnnDefender* defender() { return defender_; }

  // ----- attack & sync -----

  /// Carries one bit flip attempt through the DRAM substrate, then syncs the
  /// model from DRAM (authoritative state).
  attack::FlipAttempt attack_bit(const quant::BitLocation& loc);

  /// Re-reads all weights from DRAM into the quantized model.
  void sync_model_from_dram();

  /// Re-uploads the quantized model into DRAM (e.g., after software repair).
  void upload_model_to_dram();

  /// Advances the device clock to `target` (no-op if the device is already
  /// there or beyond) and pumps the installed mitigation's tick() once so
  /// time-based maintenance (refresh-window bookkeeping, scheduled swaps)
  /// observes the new time even when no DRAM command fired the post-ACT
  /// hook. Returns true if a mitigation ticked. This is the serving bench's
  /// bridge between virtual batch-close times and the defense schedule.
  bool advance_time_to(Picoseconds target);

  /// All weight bits residing in the defender's target rows -- the Secured
  /// Bits set the adaptive white-box attacker must skip.
  [[nodiscard]] quant::BitSkipSet secured_bits() const;

  /// Full-stack white-box BFA campaign: the attacker proposes flips by
  /// progressive bit search on the synced model, executes each through
  /// DRAM, learns which bits are blocked, and continues until the accuracy
  /// target or the attempt budget is reached. Accuracy is measured on
  /// (eval_x, eval_y).
  SystemAttackResult run_white_box_attack(const nn::Tensor& attack_x,
                                          const std::vector<u32>& attack_y,
                                          const nn::Tensor& eval_x,
                                          const std::vector<u32>& eval_y,
                                          usize max_attempts, double stop_accuracy,
                                          attack::BfaConfig bfa_cfg = {});

 private:
  void install_hook();

  quant::QuantizedModel& qm_;
  ProtectedSystemConfig cfg_;
  std::unique_ptr<dram::DramDevice> device_;
  std::unique_ptr<dram::RowRemapper> remap_;
  std::unique_ptr<rowhammer::HammerModel> hammer_;
  std::unique_ptr<mapping::WeightMapping> mapping_;
  std::unique_ptr<attack::DeepHammerAttack> deephammer_;
  std::unique_ptr<defense::Mitigation> mitigation_;
  core::DnnDefender* defender_ = nullptr;  ///< non-null iff mitigation_ is DD
};

}  // namespace dnnd::system
