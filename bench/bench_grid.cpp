// bench_grid: sweeps the full evaluation cross product -- attack kind x
// software prep x defense x model x device generation -- through the parallel
// scenario harness, prints the campaign table, and persists the campaign
// JSON through the configured CampaignSink (DNND_JSON / DNND_JSON_OUT).
//
// Axes default to the paper-shaped grid and are overridable with
// comma-separated env lists (defaults in parentheses, wider accepted
// vocabulary after "of"):
//   DNND_GRID_MODELS   (vgg11,resnet18,resnet20,resnet34)
//   DNND_GRID_GENS     (lpddr4-new,ddr4-new) of any device_gen_slug value
//   DNND_GRID_ATTACKS  (bfa,binary-bfa,random,adaptive,dram-white-box,
//                       tbfa-n-to-1,tbfa-1-to-1,tbfa-stealthy)
//   DNND_GRID_PREPS    (none,binary-finetune,piecewise-clustering,
//                       reconstruction-guard)
//   DNND_GRID_DEFENSES (none,rrs,srs,shadow,dnn-defender) of none, para,
//                       rrs, srs, shadow, graphene, hydra, dnn-defender
//   DNND_GRID_FULL_PRODUCT=1 keeps cells whose defense cannot engage the
//                            attack (normally pruned).
//   DNND_NAIVE_GEMM=1        forces Dense/Conv2d onto the retained naive
//                            kernels (A/B the GEMM engine's wall-clock win;
//                            results are bitwise identical either way).
//   DNND_INT8=1              true-integer int8 forward regime (requantized
//                            outputs; a DIFFERENT numeric regime -- the
//                            campaign JSON carries an "int8" marker and is
//                            gated with dnnd_diff --final-only, never
//                            byte-compared against float baselines).
//
// `bench_grid --tiny` (or DNND_GRID=tiny) runs the seconds-fast
// tiny_test_grid() instead -- the grid behind the committed regression
// baseline that CI gates with dnnd_diff.
//
// `--shard K/N --dir DIR [--resume]` runs one shard of the grid through the
// resumable run-directory protocol (harness/shard.hpp): each finished cell
// is checkpointed atomically to DIR/cells/, `--resume` re-runs only cells
// without a checkpoint, and `dnnd_shard merge --dir DIR` stitches the shards
// back into a campaign document byte-identical to the unsharded sweep.
#include <cstring>

#include "bench_util.hpp"
#include "harness/campaign.hpp"
#include "harness/registry.hpp"
#include "harness/shard.hpp"
#include "harness/sink.hpp"
#include "nn/gemm.hpp"
#include "nn/simd.hpp"

using namespace dnnd;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--tiny] [--shard K/N --dir DIR [--resume]]\n"
               "  --tiny        run the seconds-fast tiny_test_grid() (CI baseline)\n"
               "  --shard K/N   run only shard K of N through the resumable\n"
               "                run-directory protocol (requires --dir)\n"
               "  --dir DIR     shard run directory (cells land in DIR/cells/)\n"
               "  --resume      skip cells already checkpointed in DIR\n"
               "  axes/env knobs are documented in the header comment and README;\n"
               "  merge shards with: dnnd_shard merge --dir DIR\n",
               argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  bool tiny = false;
  bool resume = false;
  std::string shard_spec;
  std::string shard_dir;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--tiny") {
      tiny = true;
    } else if (arg == "--shard") {
      const char* v = next_value();
      if (v == nullptr || v[0] == '\0') return usage(argv[0]);
      shard_spec = v;
    } else if (arg == "--dir") {
      const char* v = next_value();
      if (v == nullptr || v[0] == '\0') return usage(argv[0]);
      shard_dir = v;
    } else if (arg == "--resume") {
      resume = true;
    } else {
      std::fprintf(stderr, "%s: unknown argument '%s'\n", argv[0], arg.c_str());
      return usage(argv[0]);
    }
  }
  if ((resume || !shard_spec.empty() || !shard_dir.empty()) &&
      (shard_spec.empty() || shard_dir.empty())) {
    std::fprintf(stderr, "%s: --shard and --dir go together (--resume needs both)\n",
                 argv[0]);
    return usage(argv[0]);
  }
  if (const char* v = std::getenv("DNND_GRID"); v != nullptr && std::string(v) == "tiny") {
    tiny = true;
  }
  if (const char* v = std::getenv("DNND_NAIVE_GEMM"); v != nullptr && v[0] == '1') {
    nn::gemm::set_force_naive(true);
    std::printf("[grid] DNND_NAIVE_GEMM=1: naive reference kernels\n");
  }
  if (nn::simd::int8_enabled()) {
    std::printf("[grid] DNND_INT8=1: true-integer forward regime (campaign JSON carries "
                "the \"int8\" marker; gate with dnnd_diff --final-only)\n");
  }

  const bool small = bench::small_scale();
  const bool sharded = !shard_spec.empty();
  if (tiny) {
    bench::banner("Grid sweep -- tiny regression grid",
                  "tiny_test_grid(): every attack path in seconds (CI baseline)");
  } else {
    bench::banner("Grid sweep -- attack x prep x defense x model x generation",
                  "full cross-product sweep of the paper's evaluation axes");
  }
  std::vector<harness::Scenario> grid;
  harness::ShardSpec shard;
  try {
    grid = harness::grid_from_env(tiny, small);
    if (sharded) {
      shard = harness::parse_shard_spec(shard_spec);
      const usize total = grid.size();
      grid = harness::shard_scenarios(grid, shard);
      const usize owned = grid.size();
      if (resume) {
        grid = harness::pending_scenarios(harness::CellCheckpointStore(shard_dir), grid);
      }
      std::printf("[grid] shard %zu/%zu: %zu of %zu owned cells to run (%zu grid total)\n",
                  shard.index + 1, shard.count, grid.size(), owned, total);
    }
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "bench_grid: bad axis or shard value: %s\n", e.what());
    return 2;
  }
  std::printf("[grid] %zu scenarios\n", grid.size());

  harness::CampaignConfig cfg;
  cfg.threads = harness::env_threads();
  cfg.verbose = true;
  if (sharded) {
    const harness::CellCheckpointStore store(shard_dir);
    cfg.on_result = [store](const harness::ScenarioResult& r) { store.write_cell(r); };
  }
  harness::CampaignRunner runner(cfg);
  harness::CampaignResult campaign;
  try {
    campaign = runner.run(grid);
  } catch (const std::exception& e) {
    // A cell that cannot be checkpointed fails the shard loudly.
    std::fprintf(stderr, "bench_grid: %s\n", e.what());
    return 1;
  }

  campaign.table().print();
  std::printf("[harness] %zu scenarios on %zu threads in %.1fs (%.2f scenarios/s%s)\n",
              campaign.results.size(), campaign.threads_used, campaign.total_seconds,
              campaign.total_seconds > 0.0
                  ? static_cast<double>(campaign.results.size()) / campaign.total_seconds
                  : 0.0,
              campaign.int8_regime ? ", int8 regime" : "");

  usize failures = 0;
  if (sharded) {
    // A shard's campaign is partial by construction: the durable artifact is
    // its cell checkpoints, merged later by the coordinator -- not a
    // whole-campaign document through the sink.
    std::printf("[shard] %zu cells checkpointed to %s (merge: dnnd_shard merge --dir %s)\n",
                campaign.results.size(), shard_dir.c_str(), shard_dir.c_str());
  } else {
    // A sink failure after an hours-long sweep must not abort: the table
    // above already carries the results. It still fails the run -- CI gates
    // on the persisted JSON existing.
    std::string destination;
    switch (harness::write_campaign_from_env(campaign, &destination)) {
      case harness::SinkWriteStatus::kNoSink:
        break;
      case harness::SinkWriteStatus::kWritten:
        if (destination != "stdout") {
          std::printf("[sink] campaign JSON -> %s\n", destination.c_str());
        }
        break;
      case harness::SinkWriteStatus::kFailed:
        ++failures;  // already reported on stderr
        break;
    }
  }

  // A failed scenario is a broken sweep, not a defended model -- surface it.
  for (const auto& r : campaign.results) {
    if (!r.ok) {
      std::fprintf(stderr, "[grid] FAILED %s: %s\n", r.id.c_str(), r.error.c_str());
      ++failures;
    }
  }
  return failures == 0 ? 0 : 1;
}
