#include "models/model_zoo.hpp"

#include <stdexcept>
#include <vector>

namespace dnnd::models {

using nn::BatchNorm2d;
using nn::Conv2d;
using nn::Dense;
using nn::Flatten;
using nn::GlobalAvgPool;
using nn::MaxPool2d;
using nn::Model;
using nn::ReLU;
using nn::ResidualBlock;

std::unique_ptr<Model> make_vgg11_sub(usize num_classes, u64 seed, usize width_mult) {
  sys::Rng rng(seed);
  auto m = std::make_unique<Model>("vgg11_sub");
  const usize w1 = 6 * width_mult, w2 = 12 * width_mult, w3 = 16 * width_mult;
  // Block 1: 12x12 -> 6x6
  m->add(std::make_unique<Conv2d>(3, w1, 3, 1, 1, rng));
  m->add(std::make_unique<BatchNorm2d>(w1));
  m->add(std::make_unique<ReLU>());
  m->add(std::make_unique<MaxPool2d>());
  // Block 2: 6x6 -> 3x3
  m->add(std::make_unique<Conv2d>(w1, w2, 3, 1, 1, rng));
  m->add(std::make_unique<BatchNorm2d>(w2));
  m->add(std::make_unique<ReLU>());
  m->add(std::make_unique<MaxPool2d>());
  // Block 3: keeps 3x3 (VGG's deeper conv pairs, miniaturised)
  m->add(std::make_unique<Conv2d>(w2, w3, 3, 1, 1, rng));
  m->add(std::make_unique<BatchNorm2d>(w3));
  m->add(std::make_unique<ReLU>());
  // Classifier
  m->add(std::make_unique<Flatten>());
  m->add(std::make_unique<Dense>(w3 * 3 * 3, 32 * width_mult, rng));
  m->add(std::make_unique<ReLU>());
  m->add(std::make_unique<Dense>(32 * width_mult, num_classes, rng));
  return m;
}

namespace {

std::unique_ptr<Model> make_resnet(const std::string& name, const std::vector<usize>& blocks,
                                   const std::vector<usize>& widths, usize num_classes,
                                   u64 seed, usize width_mult) {
  if (blocks.size() != widths.size()) {
    throw std::invalid_argument("make_resnet: blocks/widths size mismatch");
  }
  sys::Rng rng(seed);
  auto m = std::make_unique<Model>(name);
  const usize stem = widths[0] * width_mult;
  m->add(std::make_unique<Conv2d>(3, stem, 3, 1, 1, rng));
  m->add(std::make_unique<BatchNorm2d>(stem));
  m->add(std::make_unique<ReLU>());
  usize in_ch = stem;
  for (usize s = 0; s < blocks.size(); ++s) {
    const usize out_ch = widths[s] * width_mult;
    for (usize b = 0; b < blocks[s]; ++b) {
      const usize stride = (b == 0 && s > 0) ? 2 : 1;
      m->add(std::make_unique<ResidualBlock>(in_ch, out_ch, stride, rng));
      in_ch = out_ch;
    }
  }
  m->add(std::make_unique<GlobalAvgPool>());
  m->add(std::make_unique<Dense>(in_ch, num_classes, rng));
  return m;
}

}  // namespace

std::unique_ptr<Model> make_resnet18_sub(usize num_classes, u64 seed, usize width_mult) {
  return make_resnet("resnet18_sub", {2, 2, 2, 2}, {5, 8, 12, 16}, num_classes, seed,
                     width_mult);
}

std::unique_ptr<Model> make_resnet20_sub(usize num_classes, u64 seed, usize width_mult) {
  return make_resnet("resnet20_sub", {3, 3, 3}, {4, 8, 12}, num_classes, seed, width_mult);
}

std::unique_ptr<Model> make_resnet34_sub(usize num_classes, u64 seed, usize width_mult) {
  return make_resnet("resnet34_sub", {3, 4, 6, 3}, {5, 8, 12, 16}, num_classes, seed,
                     width_mult);
}

std::unique_ptr<Model> make_test_mlp(usize in_features, usize hidden, usize num_classes,
                                     u64 seed) {
  sys::Rng rng(seed);
  auto m = std::make_unique<Model>("test_mlp");
  m->add(std::make_unique<Flatten>());
  m->add(std::make_unique<Dense>(in_features, hidden, rng));
  m->add(std::make_unique<ReLU>());
  m->add(std::make_unique<Dense>(hidden, num_classes, rng));
  return m;
}

std::unique_ptr<Model> make_by_name(const std::string& name, usize num_classes, u64 seed,
                                    usize width_mult) {
  if (name == "vgg11") return make_vgg11_sub(num_classes, seed, width_mult);
  if (name == "resnet18") return make_resnet18_sub(num_classes, seed, width_mult);
  if (name == "resnet20") return make_resnet20_sub(num_classes, seed, width_mult);
  if (name == "resnet34") return make_resnet34_sub(num_classes, seed, width_mult);
  throw std::invalid_argument("make_by_name: unknown architecture " + name);
}

bool is_known_arch(const std::string& name) {
  return name == "vgg11" || name == "resnet18" || name == "resnet20" || name == "resnet34";
}

}  // namespace dnnd::models
