// Environment-variable knob parsing, shared by every DNND_* integer knob.
//
// Before this helper the tree carried three divergent DNND_THREADS parsers
// (gemm, campaign, bench_inference), all built on bare strtol with no end
// pointer: garbage ("4x"), negative, and overflowing values silently decayed
// to some fallback, so two subsystems could resolve the same environment to
// different team sizes. env_usize is the single replacement: unset/empty
// means "use the fallback", a canonical non-negative decimal integer is the
// value, and anything else is rejected with a one-time stderr warning (never
// silently) before falling back.
#pragma once

#include <optional>
#include <string_view>

#include "sys/types.hpp"

namespace dnnd::sys {

/// Parses a canonical non-negative base-10 integer (surrounding ASCII
/// whitespace allowed). Returns nullopt for anything else: empty, sign
/// prefixes, hex, trailing garbage, or a value that overflows usize.
[[nodiscard]] std::optional<usize> parse_usize(std::string_view text);

/// Reads env var `name` as a usize knob. Unset or empty returns `fallback`;
/// a malformed value (see parse_usize) prints one warning per distinct
/// (name, value) pair to stderr and returns `fallback`. Safe to call from
/// hot paths: no allocation on the well-formed path.
[[nodiscard]] usize env_usize(const char* name, usize fallback);

/// Parses a canonical decimal floating-point value (surrounding ASCII
/// whitespace allowed; optional leading '-'; digits with optional fraction
/// and decimal exponent). Returns nullopt for anything else -- empty input,
/// '+' prefixes, hex floats ("0x1p3", which bare strtod accepts), "inf",
/// "nan", trailing garbage, or a lexeme whose value overflows a finite
/// double. The floating-point sibling of parse_usize: one strict contract
/// for every numeric knob and CLI argument.
[[nodiscard]] std::optional<double> parse_finite_double(std::string_view text);

}  // namespace dnnd::sys
