// Shared patch-iteration helper: the single source of truth for the
// im2col-style index arithmetic that Conv2d's forward (GEMM lowering) and
// backward both need. Before this helper the two passes carried mirrored
// copies of the stride/padding bounds logic; any future geometry change now
// lands in exactly one place.
#pragma once

#include "sys/types.hpp"

namespace dnnd::nn {

/// Geometry of one Conv2d application (square kernel, NCHW).
struct ConvGeom {
  usize in_ch = 0;
  usize k = 0;       ///< kernel size
  usize stride = 1;
  usize pad = 0;
  usize h = 0, w = 0;    ///< input spatial dims
  usize oh = 0, ow = 0;  ///< output spatial dims

  [[nodiscard]] usize patch_size() const { return in_ch * k * k; }
};

/// Invokes fn(kk_row, ic, hi, kj_lo, kj_hi, wj_lo, row_valid) for every
/// kernel row (ic, ki) of output pixel (oi, oj):
///   kk_row        flat patch index of the row's first tap kj=0 (also the
///                 flat offset into one output-channel slice of the weight)
///   hi            input row of this kernel row (meaningless when invalid)
///   [kj_lo,kj_hi) the kj taps that land inside the input; they map to the
///                 contiguous input columns starting at wj_lo (consecutive kj
///                 always hit consecutive wj, for any stride)
///   row_valid     false when the whole kernel row falls into the padding
///                 (then kj_lo == kj_hi == 0)
/// Rows are visited in ascending kk -- the accumulation order of the
/// original naive loops, which the GEMM lowering preserves bit-exactly.
template <typename Fn>
inline void for_each_patch_row(const ConvGeom& g, usize oi, usize oj, Fn&& fn) {
  const isize pad = static_cast<isize>(g.pad);
  const isize wj0 = static_cast<isize>(oj * g.stride) - pad;  // wj of tap kj=0
  // Valid kj range: 0 <= wj0 + kj < w.
  const isize lo = wj0 < 0 ? -wj0 : 0;
  isize hi_excl = static_cast<isize>(g.w) - wj0;
  if (hi_excl > static_cast<isize>(g.k)) hi_excl = static_cast<isize>(g.k);
  const bool cols_valid = hi_excl > lo;
  const usize kj_lo = cols_valid ? static_cast<usize>(lo) : 0;
  const usize kj_hi = cols_valid ? static_cast<usize>(hi_excl) : 0;
  const usize wj_lo = cols_valid ? static_cast<usize>(wj0 + lo) : 0;
  usize kk_row = 0;
  for (usize ic = 0; ic < g.in_ch; ++ic) {
    for (usize ki = 0; ki < g.k; ++ki, kk_row += g.k) {
      const isize hi = static_cast<isize>(oi * g.stride + ki) - pad;
      const bool row_valid = cols_valid && hi >= 0 && hi < static_cast<isize>(g.h);
      fn(kk_row, ic, row_valid ? static_cast<usize>(hi) : 0, row_valid ? kj_lo : 0,
         row_valid ? kj_hi : 0, wj_lo, row_valid);
    }
  }
}

}  // namespace dnnd::nn
