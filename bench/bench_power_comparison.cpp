// Sec. 5.1 power analysis: DNN-Defender vs SHADOW total power (the ~1.6%
// saving at T_RH=1k) and vs SRS/RRS defense energy (the ~3.4x improvement
// from avoiding off-chip row transfers and SRAM trackers).
#include "bench_util.hpp"
#include "core/security_model.hpp"

using namespace dnnd;

int main() {
  bench::banner("Power comparison -- DNN-Defender vs SHADOW / SRS / RRS",
                "paper Sec. 5.1 (1.6% total-power saving vs SHADOW-1k; 3.4x vs SRS)");
  core::SecurityModel model;

  sys::Table table({"T_RH", "DD defense power (mW)", "SHADOW defense power (mW)",
                    "DD total (mW)", "SHADOW total (mW)", "total-power saving"});
  for (u32 t_rh : {1000u, 2000u, 4000u, 8000u}) {
    const double dd_total = model.total_power_mw("dd", t_rh);
    const double sh_total = model.total_power_mw("shadow", t_rh);
    table.add_row({sys::fmt_count(t_rh), sys::fmt(model.defense_power_mw("dd", t_rh), 3),
                   sys::fmt(model.defense_power_mw("shadow", t_rh), 3),
                   sys::fmt(dd_total, 2), sys::fmt(sh_total, 2),
                   sys::fmt(100.0 * (sh_total - dd_total) / sh_total, 2) + "%"});
  }
  table.print();

  std::printf("\nDefense-energy per Tref at full defended load (T_RH = 1k):\n");
  sys::Table energy({"Framework", "energy / Tref (uJ)", "vs DNN-Defender"});
  const double dd_e = static_cast<double>(model.energy_per_tref("dd", 1000));
  for (const std::string fw : {"dd", "shadow", "srs"}) {
    const double e = static_cast<double>(model.energy_per_tref(fw, 1000));
    energy.add_row({fw == "dd" ? "DNN-Defender" : (fw == "srs" ? "SRS/RRS" : "SHADOW"),
                    sys::fmt(fj_to_uj(static_cast<Femtojoules>(e)), 2),
                    sys::fmt(e / dd_e, 2) + "x"});
  }
  energy.print();

  std::printf(
      "\nShape check (paper): the total-power saving vs SHADOW is small (~1.6%%\n"
      "at 1k) because both are in-DRAM; the defense-energy gap vs SRS (~3.4x)\n"
      "comes from its swaps crossing the off-chip channel (one SRS swap costs\n"
      "~27x a DD swap; SRS's lazy swap rate brings the net factor to ~3.4x).\n");
  return 0;
}
