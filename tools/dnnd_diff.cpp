// dnnd_diff: compares two persisted campaign JSON files (CampaignResult
// documents written by a CampaignSink) and reports per-scenario accuracy and
// flip-count deltas.
//
// Exit codes: 0 = no regression (identical or within tolerance),
//             1 = at least one scenario regressed beyond tolerance,
//             2 = usage / I/O / parse error.
//
// Usage:
//   dnnd_diff [--acc-tol FRAC] [--flip-tol N] [--ignore-missing] [--final-only]
//             [--quiet] <baseline.json> <current.json>
#include <cstdio>
#include <fstream>
#include <limits>
#include <sstream>
#include <string>

#include "harness/campaign_diff.hpp"
#include "sys/env.hpp"

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--acc-tol FRAC] [--flip-tol N] [--ignore-missing]\n"
               "          [--final-only] [--quiet] <baseline.json> <current.json>\n"
               "\n"
               "Compares two campaign JSON files (CampaignSink output) scenario by\n"
               "scenario. --acc-tol is an absolute accuracy tolerance as a fraction\n"
               "(0.01 = one percentage point); --flip-tol bounds integer counter\n"
               "drift (flips, attempts, landed, ...). --final-only gates only ok\n"
               "status and clean/post accuracy (cross-regime comparisons, e.g.\n"
               "DNND_INT8=1 vs the float baseline). Exits 1 on regression.\n",
               argv0);
  return 2;
}

/// Tolerance parsing on the strict sys::parse_* contract (the same grammar
/// every DNND_* env knob obeys): a garbage tolerance must be a usage error,
/// not a silent 0 that turns the gate maximally strict (or, with a partial
/// parse like "1e", arbitrarily loose). The shared parsers also reject what
/// bare strtod/strtoll quietly accepted here before -- hex floats ("0x8"
/// parsed as 8.0), "inf"/"nan" (isfinite caught those), and '+' prefixes.
bool parse_double_arg(const char* text, double* out) {
  if (text == nullptr) return false;
  const auto v = dnnd::sys::parse_finite_double(text);
  if (!v.has_value() || *v < 0.0) return false;
  *out = *v;
  return true;
}

bool parse_i64_arg(const char* text, long long* out) {
  if (text == nullptr) return false;
  // Non-negative by contract, so the integer grammar is parse_usize's; the
  // extra bound keeps the value representable in the i64 tolerance field.
  const auto v = dnnd::sys::parse_usize(text);
  constexpr auto kMax = static_cast<dnnd::usize>(std::numeric_limits<long long>::max());
  if (!v.has_value() || *v > kMax) return false;
  *out = static_cast<long long>(*v);
  return true;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace

int main(int argc, char** argv) {
  dnnd::harness::DiffConfig cfg;
  bool quiet = false;
  std::string paths[2];
  int n_paths = 0;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* {
      if (i + 1 >= argc) return nullptr;
      return argv[++i];
    };
    if (arg == "--acc-tol") {
      const char* v = next_value();
      if (v == nullptr || !parse_double_arg(v, &cfg.acc_tol)) {
        std::fprintf(stderr, "--acc-tol: expected a non-negative number, got \"%s\"\n",
                     v == nullptr ? "" : v);
        return usage(argv[0]);
      }
    } else if (arg == "--flip-tol") {
      const char* v = next_value();
      long long tol = 0;
      if (v == nullptr || !parse_i64_arg(v, &tol)) {
        std::fprintf(stderr, "--flip-tol: expected a non-negative integer, got \"%s\"\n",
                     v == nullptr ? "" : v);
        return usage(argv[0]);
      }
      cfg.flip_tol = tol;
    } else if (arg == "--ignore-missing") {
      cfg.ignore_missing = true;
    } else if (arg == "--final-only") {
      cfg.final_only = true;
    } else if (arg == "--quiet" || arg == "-q") {
      quiet = true;
    } else if (arg == "--help" || arg == "-h") {
      usage(argv[0]);
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::fprintf(stderr, "unknown option: %s\n", arg.c_str());
      return usage(argv[0]);
    } else {
      if (n_paths >= 2) return usage(argv[0]);
      paths[n_paths++] = arg;
    }
  }
  if (n_paths != 2) return usage(argv[0]);

  try {
    const auto baseline = dnnd::harness::campaign_from_json(read_file(paths[0]));
    const auto current = dnnd::harness::campaign_from_json(read_file(paths[1]));
    const auto report = dnnd::harness::diff_campaigns(baseline, current, cfg);
    if (!quiet) {
      std::printf("baseline: %s (%zu scenarios)\n", paths[0].c_str(), baseline.results.size());
      std::printf("current:  %s (%zu scenarios)\n", paths[1].c_str(), current.results.size());
      std::printf("%s", report.to_string().c_str());
    }
    return report.ok() ? 0 : 1;
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dnnd_diff: %s\n", e.what());
    return 2;
  }
}
