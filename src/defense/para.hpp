// PARA (Kim et al., ISCA'14): probabilistic adjacent-row activation. On every
// ACT, with probability p, the neighbours are refreshed. Stateless (no
// tracker) but only probabilistically secure; included as the classic
// baseline and for overhead comparison.
#pragma once

#include "defense/mitigation.hpp"

namespace dnnd::defense {

struct ParaConfig {
  double refresh_probability = 0.01;
  u64 seed = 0xBA5A;
};

class Para : public Mitigation {
 public:
  Para(dram::DramDevice& device, dram::RowRemapper& remap, ParaConfig cfg = {})
      : Mitigation(device, remap), cfg_(cfg), rng_(cfg.seed) {}

  [[nodiscard]] std::string name() const override { return "PARA"; }

  void on_activate(const dram::RowAddr& row, Picoseconds /*now*/) override {
    if (in_maintenance()) return;
    if (!rng_.bernoulli(cfg_.refresh_probability)) return;
    maintenance([&] {
      const auto& geo = device_.config().geo;
      if (row.row >= 1) {
        device_.activate(dram::RowAddr{row.bank, row.subarray, row.row - 1});
        device_.precharge(row.bank);
      }
      if (row.row + 1 < geo.rows_per_subarray) {
        device_.activate(dram::RowAddr{row.bank, row.subarray, row.row + 1});
        device_.precharge(row.bank);
      }
      stats_.maintenance_ops += 1;
    });
  }

 private:
  ParaConfig cfg_;
  sys::Rng rng_;
};

}  // namespace dnnd::defense
