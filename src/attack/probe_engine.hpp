// The probe/rank/price/commit loop every searching attacker shares.
//
// One engine step, parameterized by an attack::Objective:
//   (1) zero gradients, objective->prepare(): base objective + bit gradients,
//   (2) exclusion bookkeeping: the caller's skip set plus every bit this
//       engine has already committed (the search never re-flips),
//   (3) intra-layer search: per-layer top-k candidates by first-order gain
//       (quant::top_k_flips over the accumulated gradients),
//   (4) inter-layer search: restrict to the most promising layers, then price
//       each shortlisted candidate EXACTLY by flip -> incremental
//       forward_from(net_layer) -> objective->measure -> unflip,
//   (5) commit the best admissible improving flip (probe_loss_key ordering,
//       so a NaN-saturating probe ranks as +inf: a win for a maximizer, a
//       loss for a minimizer), optionally falling back to the best
//       first-order estimate when the objective allows it.
//
// The constructor owns the shared preamble: freeze int8 activation scales
// over the attack batch (no-op in the float regime) and warm the activation
// cache with one full forward, which also resolves the model's class count.
//
// ProgressiveBitSearch (BFA), TbfaAttack, AdaptiveWhiteBoxAttack, the
// white-box DRAM system loop, and VwaLimitedAttack are all thin drivers over
// this engine; their campaign results are byte-identical to the pre-engine
// per-family loops (the tiny-grid golden gates this at zero tolerance).
#pragma once

#include <optional>

#include "attack/objective.hpp"

namespace dnnd::attack {

/// Ordering key for probe losses: NaN maps to +infinity, everything else to
/// itself. A flip that saturates the logits to +-inf yields NaN cross-entropy
/// (inf - inf inside the softmax); to a loss-maximising attacker that is the
/// most destructive outcome available, not an invisible one -- but NaN
/// compares false under every ordering, so a bare `>` silently discarded
/// exactly those probes. All candidate comparisons go through this key, and
/// committed records carry the normalized (+inf) objective. The key is
/// idempotent, so the engine's running best stays normalized.
double probe_loss_key(double loss);

struct ProbeEngineConfig {
  usize candidates_per_layer = 2;  ///< top-k per layer for the exact evaluation
  usize layers_evaluated = 6;      ///< evaluate only the best n layers by estimate
                                   ///< (0 = all layers; >0 is a perf knob that
                                   ///< rarely changes the argmax)
};

/// One committed engine step.
struct EngineStep {
  quant::BitLocation loc;
  double objective_before = 0.0;  ///< base objective at the top of the step
  double objective_after = 0.0;   ///< committed probe's key-normalized objective
  /// The committed flip's measurement (the probe's scores: committing
  /// restores the exact probed state; re-measured only on fallback).
  ProbeMeasurement best;
  /// True when no evaluated candidate improved the objective and the engine
  /// fell back to the best first-order estimate (greedy escape; never
  /// re-flips a bit, so the search still terminates).
  bool fallback = false;
};

class ProbeEngine {
 public:
  /// `attack_x`/`attack_y` is the attacker's sample batch. `objective` must
  /// outlive the engine (drivers own both).
  ProbeEngine(quant::QuantizedModel& qm, nn::Tensor attack_x, std::vector<u32> attack_y,
              Objective& objective, ProbeEngineConfig cfg = {});

  /// Finds and commits the single best admissible flip not in `skip` (and not
  /// committed by this engine before). Returns nullopt when the candidate
  /// space is exhausted, or when nothing improves and the objective forbids
  /// the first-order fallback.
  std::optional<EngineStep> step(const quant::BitSkipSet& skip);

  [[nodiscard]] quant::QuantizedModel& qm() { return qm_; }
  [[nodiscard]] const nn::Tensor& x() const { return attack_x_; }
  [[nodiscard]] const std::vector<u32>& y() const { return attack_y_; }
  /// Class count from the model's output dimension (NOT the labels present
  /// in the batch, which could omit classes and skew stop thresholds).
  [[nodiscard]] usize num_classes() const { return num_classes_; }
  /// Logits of the constructor's clean warm-up forward. Valid until the next
  /// forward on the model -- drivers use it for clean-state measurements
  /// immediately after construction.
  [[nodiscard]] const nn::Tensor& clean_logits() const { return *clean_logits_; }

 private:
  quant::QuantizedModel& qm_;
  nn::Tensor attack_x_;
  std::vector<u32> attack_y_;
  Objective& objective_;
  ProbeEngineConfig cfg_;
  usize num_classes_;
  const nn::Tensor* clean_logits_;
  quant::BitSkipSet flipped_;  ///< bits this engine has already committed
};

}  // namespace dnnd::attack
