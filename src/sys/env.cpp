#include "sys/env.hpp"

#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <limits>
#include <mutex>
#include <set>
#include <string>

namespace dnnd::sys {

namespace {

bool is_space(char c) { return c == ' ' || c == '\t' || c == '\n' || c == '\r'; }

/// Warns once per (name, value) pair so a garbage knob read on a hot path
/// (gemm::threads() re-reads the environment every call) cannot flood stderr.
void warn_malformed(const char* name, const char* value, usize fallback) {
  static std::mutex mutex;
  static std::set<std::string> warned;
  const std::lock_guard<std::mutex> lock(mutex);
  if (!warned.insert(std::string(name) + "=" + value).second) return;
  std::fprintf(stderr,
               "[dnnd] warning: ignoring malformed %s=\"%s\" "
               "(expected a non-negative integer); using %zu\n",
               name, value, fallback);
}

}  // namespace

std::optional<usize> parse_usize(std::string_view text) {
  usize lo = 0, hi = text.size();
  while (lo < hi && is_space(text[lo])) ++lo;
  while (hi > lo && is_space(text[hi - 1])) --hi;
  if (lo == hi) return std::nullopt;
  constexpr usize kMax = std::numeric_limits<usize>::max();
  usize value = 0;
  for (usize i = lo; i < hi; ++i) {
    const char c = text[i];
    if (c < '0' || c > '9') return std::nullopt;  // sign, hex, trailing junk
    const usize digit = static_cast<usize>(c - '0');
    if (value > (kMax - digit) / 10) return std::nullopt;  // would overflow
    value = value * 10 + digit;
  }
  return value;
}

usize env_usize(const char* name, usize fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || v[0] == '\0') return fallback;
  if (const auto parsed = parse_usize(v); parsed.has_value()) return *parsed;
  warn_malformed(name, v, fallback);
  return fallback;
}

std::optional<double> parse_finite_double(std::string_view text) {
  usize lo = 0, hi = text.size();
  while (lo < hi && is_space(text[lo])) ++lo;
  while (hi > lo && is_space(text[hi - 1])) --hi;
  if (lo == hi) return std::nullopt;

  // Validate the lexeme against the canonical decimal grammar BEFORE calling
  // strtod: strtod itself happily accepts hex floats, "inf"/"nan", and
  // partial parses, which is exactly the laxness this helper exists to ban.
  usize i = lo;
  if (text[i] == '-') ++i;
  auto digits = [&] {
    const usize before = i;
    while (i < hi && text[i] >= '0' && text[i] <= '9') ++i;
    return i > before;
  };
  if (!digits()) return std::nullopt;
  if (i < hi && text[i] == '.') {
    ++i;
    if (!digits()) return std::nullopt;
  }
  if (i < hi && (text[i] == 'e' || text[i] == 'E')) {
    ++i;
    if (i < hi && (text[i] == '+' || text[i] == '-')) ++i;
    if (!digits()) return std::nullopt;
  }
  if (i != hi) return std::nullopt;

  const std::string lexeme(text.substr(lo, hi - lo));
  char* end = nullptr;
  const double v = std::strtod(lexeme.c_str(), &end);
  if (end != lexeme.c_str() + lexeme.size()) return std::nullopt;
  // Overflow saturates to +-HUGE_VAL; a knob that large is a typo, not a
  // tolerance. (Underflow to a tiny finite value or zero is fine.)
  if (!std::isfinite(v)) return std::nullopt;
  return v;
}

}  // namespace dnnd::sys
