#include "core/dnn_defender.hpp"

#include <algorithm>

namespace dnnd::core {

using dram::RowAddr;

DnnDefender::DnnDefender(dram::DramDevice& device, dram::RowRemapper& remap,
                         DnnDefenderConfig cfg)
    : Mitigation(device, remap),
      cfg_(cfg),
      engine_(device, remap, cfg.reserved_rows_per_subarray),
      rng_(cfg.seed) {}

void DnnDefender::set_protected_rows(std::vector<RowAddr> targets,
                                     std::vector<RowAddr> non_targets) {
  targets_ = std::move(targets);
  non_targets_ = std::move(non_targets);
  target_cursor_ = 0;
  non_target_cursor_ = 0;
  engine_.reset_pipeline();
  recompute_schedule();
}

void DnnDefender::recompute_schedule() {
  if (targets_.empty()) {
    interval_ = 0;
    feasible_ = true;
    return;
  }
  if (cfg_.swap_interval > 0) {
    interval_ = cfg_.swap_interval;
    feasible_ = true;
  } else {
    interval_ = swap_interval_for(targets_.size(), device_.config().timing,
                                  device_.config().t_rh);
    feasible_ = interval_ > 0;
    if (!feasible_) {
      // Over-subscribed: protect on a best-effort basis at the swap-rate
      // limit (some targets will rotate slower than the window).
      interval_ = device_.config().timing.t_swap();
    }
  }
  next_due_ = device_.now() + interval_;
}

void DnnDefender::tick() {
  if (targets_.empty() || interval_ == 0) return;
  // Drain only the backlog that existed on entry. Comparing against the live
  // clock would never converge on an infeasible (over-subscribed) schedule,
  // where each swap consumes device time at least as fast as the schedule
  // releases it.
  const Picoseconds deadline = device_.now();
  while (deadline >= next_due_) {
    maintenance([&] {
      const RowAddr target = targets_[target_cursor_];
      target_cursor_ = (target_cursor_ + 1) % targets_.size();
      const RowAddr* non_target = nullptr;
      RowAddr nt;
      if (cfg_.enable_staging && !non_targets_.empty()) {
        nt = non_targets_[non_target_cursor_];
        non_target_cursor_ = (non_target_cursor_ + 1) % non_targets_.size();
        non_target = &nt;
      }
      engine_.protect(target, non_target, rng_);
      stats_.maintenance_ops += 1;
    });
    next_due_ += interval_;
    // Bound the catch-up after long attacker-free gaps.
    if (next_due_ + 1000 * interval_ < device_.now()) {
      next_due_ = device_.now() + interval_;
    }
  }
}

bool DnnDefender::is_target(const RowAddr& logical) const {
  return std::find(targets_.begin(), targets_.end(), logical) != targets_.end();
}

}  // namespace dnnd::core
