#include "core/swap_engine.hpp"

#include <cassert>

namespace dnnd::core {

using dram::RowAddr;

SwapEngine::SwapEngine(dram::DramDevice& device, dram::RowRemapper& remap, u32 reserved_rows)
    : device_(device), remap_(remap), reserved_rows_(reserved_rows == 0 ? 1 : reserved_rows) {
  assert(reserved_rows_ < device_.config().geo.rows_per_subarray);
}

u32 SwapEngine::reserved_row_index() const {
  return device_.config().geo.rows_per_subarray - 1;
}

u32 SwapEngine::reserved_base() const {
  return device_.config().geo.rows_per_subarray - reserved_rows_;
}

u64 SwapEngine::subarray_key(u32 bank, u32 subarray) const {
  return static_cast<u64>(bank) * device_.config().geo.subarrays_per_bank + subarray;
}

u32 SwapEngine::protect(const RowAddr& target_logical, const RowAddr* non_target_logical,
                        sys::Rng& rng) {
  const RowAddr p_target = remap_.to_physical(target_logical);
  const u32 bank = p_target.bank;
  const u32 sub = p_target.subarray;
  const u32 res = reserved_row_index();
  const u64 key = subarray_key(bank, sub);
  u32 aaps = 0;

  // --- choose the "random row": a staged non-target when available ---
  RowAddr random_logical;
  bool staged_hit = false;
  if (auto it = staged_.find(key); it != staged_.end()) {
    const RowAddr p_staged = remap_.to_physical(it->second.logical);
    // The staged row must still live in this subarray (attacker massaging or
    // other defenses may have moved it) and must not be the target itself.
    if (p_staged.bank == bank && p_staged.subarray == sub && p_staged.row < reserved_base() &&
        !(it->second.logical == target_logical)) {
      random_logical = it->second.logical;
      staged_hit = true;
    }
    staged_.erase(it);
  }
  if (!staged_hit) {
    // Cold path: draw a fresh random row in this subarray (paper step 1).
    u32 r;
    do {
      r = static_cast<u32>(rng.uniform(reserved_base()));
    } while (r == p_target.row);
    random_logical = remap_.to_logical(RowAddr{bank, sub, r});
    device_.rowclone_fpm(bank, sub, r, res);  // step 1: random -> reserved
    ++aaps;
    stats_.cold_swaps += 1;
  } else {
    stats_.staged_swaps += 1;
  }

  const RowAddr p_random = remap_.to_physical(random_logical);
  assert(p_random.bank == bank && p_random.subarray == sub);

  // step 2: target -> random row's position (refreshes the target's cells by
  // activation and moves the data the attacker is aiming at).
  device_.rowclone_fpm(bank, sub, p_target.row, p_random.row);
  ++aaps;
  // step 3: reserved (holding the random row's data) -> target's old position.
  device_.rowclone_fpm(bank, sub, res, p_target.row);
  ++aaps;
  remap_.swap_logical(target_logical, random_logical);

  // step 4: stage the non-target row -- refresh + next swap's random row.
  if (non_target_logical != nullptr) {
    const RowAddr p_nt = remap_.to_physical(*non_target_logical);
    if (p_nt.bank == bank && p_nt.subarray == sub && p_nt.row < reserved_base() &&
        !(*non_target_logical == target_logical)) {
      device_.rowclone_fpm(bank, sub, p_nt.row, res);
      ++aaps;
      staged_[key] = Staged{*non_target_logical};
    }
  }

  stats_.swaps += 1;
  stats_.aaps += aaps;
  return aaps;
}

}  // namespace dnnd::core
