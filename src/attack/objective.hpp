// Pluggable attack objectives for the shared ProbeEngine.
//
// Every searching attacker in this codebase prices bit-flip candidates with
// the same machinery (gradient-ranked top-k, flip / incremental forward /
// unflip); what distinguishes the families is WHAT they optimize and under
// which admissibility constraint. An Objective packages exactly that policy:
//
//   prepare()  - compute the base objective on the attack batch and
//                accumulate bit gradients such that quant::top_k_flips ranks
//                candidates whose first-order effect IMPROVES the objective
//                (raises it for a maximizer, lowers it for a minimizer --
//                the minimizers accumulate the NEGATED gradient),
//   measure()  - score one probe from the already-forwarded logits, filling
//                every metric the driver may report plus the admissibility
//                verdict (e.g. the stealthy T-BFA collateral-damage bound),
//   direction() / allow_estimate_fallback() - how probes compare and whether
//                a step with no improving probe may fall back to the best
//                first-order estimate (only the unconstrained untargeted
//                attacker thrashes; targeted and budget-limited ones stop).
#pragma once

#include "nn/dataset.hpp"
#include "nn/loss.hpp"
#include "quant/bit_gradient.hpp"

namespace dnnd::attack {

/// Whether a larger or smaller objective value is a better attack.
enum class SearchDirection {
  kMaximize,  ///< untargeted damage: drive the inference loss up
  kMinimize,  ///< targeted redirection: drive the targeted objective down
};

/// One probe's scores. `objective` is the raw objective value (NaN allowed;
/// the engine normalizes through probe_loss_key); the remaining metrics are
/// whatever the objective's family reports (untargeted fills `accuracy`,
/// targeted fills `asr`/`other_accuracy`).
struct ProbeMeasurement {
  double objective = 0.0;
  double accuracy = 0.0;        ///< attack-batch accuracy (untargeted family)
  double asr = 0.0;             ///< source->target rate (targeted family)
  double other_accuracy = 0.0;  ///< non-source-row accuracy (targeted family)
  /// False when the probe violates an objective-level constraint (stealthy
  /// admission); the engine never commits an inadmissible flip.
  bool admissible = true;
};

class Objective {
 public:
  virtual ~Objective() = default;

  [[nodiscard]] virtual SearchDirection direction() const = 0;
  [[nodiscard]] virtual bool allow_estimate_fallback() const = 0;

  /// Base objective value on the attack batch, with bit gradients accumulated
  /// in `model` (the engine zeroes them first). The forward half must be
  /// incremental so a cache left by the previous step is reused.
  virtual double prepare(nn::Model& model, const nn::Tensor& x,
                         const std::vector<u32>& y) = 0;

  /// Scores one probe from the logits of an (incremental) forward.
  virtual void measure(const nn::Tensor& logits, const std::vector<u32>& y,
                       ProbeMeasurement& out) = 0;
};

/// Untargeted cross-entropy maximizer -- the classic BFA objective (Rakin et
/// al. ICCV'19). With `allow_fallback` false it doubles as the limited-budget
/// VWA objective: an attacker paying for every flip out of a hard budget
/// never spends one on a non-improving first-order estimate.
class UntargetedCeObjective final : public Objective {
 public:
  explicit UntargetedCeObjective(bool allow_fallback = true)
      : allow_fallback_(allow_fallback) {}

  [[nodiscard]] SearchDirection direction() const override {
    return SearchDirection::kMaximize;
  }
  [[nodiscard]] bool allow_estimate_fallback() const override { return allow_fallback_; }

  double prepare(nn::Model& model, const nn::Tensor& x,
                 const std::vector<u32>& y) override {
    return model.loss_and_grad_incremental(x, y).loss;
  }

  void measure(const nn::Tensor& logits, const std::vector<u32>& y,
               ProbeMeasurement& out) override {
    const nn::BatchEval ev = nn::evaluate_logits(logits, y);
    out.objective = ev.loss;
    out.accuracy = ev.accuracy;
    out.admissible = true;
  }

 private:
  bool allow_fallback_;
};

/// Targeted cross-entropy minimizer -- the T-BFA family objective. The
/// engine maximizes top_k_flips' accumulated gradient, so prepare()
/// accumulates d(-L): the flips estimated to LOWER the targeted loss rank
/// first. The stealthy variant's collateral-damage bound is the admission
/// predicate: a probe whose non-source-row accuracy falls more than
/// `stealth_tolerance` below the clean value is inadmissible.
class TargetedCeObjective final : public Objective {
 public:
  /// `stealth_weight` is the keep-other-classes term weight (0 for the
  /// unconstrained variants); `stealthy` enables the admission predicate.
  TargetedCeObjective(u32 source, u32 target, double stealth_weight, bool stealthy,
                      double stealth_tolerance)
      : source_(source),
        target_(target),
        stealth_weight_(stealth_weight),
        stealthy_(stealthy),
        stealth_tolerance_(stealth_tolerance) {}

  /// The clean non-source-row accuracy the stealth bound is measured against;
  /// the driver measures it once on the clean model and installs it here.
  void set_stealth_baseline(double clean_other_accuracy) {
    clean_other_acc_ = clean_other_accuracy;
  }

  [[nodiscard]] SearchDirection direction() const override {
    return SearchDirection::kMinimize;
  }
  /// Deliberately no first-order-estimate fallback: an untargeted attack can
  /// thrash its way out of a plateau, a targeted (and especially a stealthy)
  /// one would only burn budget on flips that hurt its own objective.
  [[nodiscard]] bool allow_estimate_fallback() const override { return false; }

  double prepare(nn::Model& model, const nn::Tensor& x,
                 const std::vector<u32>& y) override {
    const nn::Tensor& logits = model.forward_incremental_logits(x);
    const double base = nn::targeted_cross_entropy(logits, y, source_, target_,
                                                   stealth_weight_, &dlogits_);
    for (usize i = 0; i < dlogits_.size(); ++i) dlogits_[i] = -dlogits_[i];
    model.backward(dlogits_);
    return base;
  }

  void measure(const nn::Tensor& logits, const std::vector<u32>& y,
               ProbeMeasurement& out) override {
    nn::evaluate_logits_per_class(logits, y, source_, target_, scratch_);
    out.objective =
        nn::targeted_cross_entropy(logits, y, source_, target_, stealth_weight_);
    out.asr = scratch_.attack_success_rate();
    out.other_accuracy = scratch_.other_accuracy();
    out.admissible =
        !(stealthy_ && out.other_accuracy < clean_other_acc_ - stealth_tolerance_);
  }

 private:
  u32 source_;
  u32 target_;
  double stealth_weight_;
  bool stealthy_;
  double stealth_tolerance_;
  double clean_other_acc_ = 0.0;
  nn::PerClassEval scratch_;  ///< probe measurements (allocation-free reuse)
  nn::Tensor dlogits_;        ///< gradient scratch for the targeted objective
};

}  // namespace dnnd::attack
