#include "harness/registry.hpp"

#include <algorithm>

namespace dnnd::harness {

namespace {

/// Bench-compatible epoch shrink (bench_util::train_model small mode).
usize scaled_epochs(bool small, usize epochs) {
  return small ? std::max<usize>(2, epochs / 2) : epochs;
}

std::string gen_slug(dram::DeviceGen gen) {
  switch (gen) {
    case dram::DeviceGen::kDdr3Old: return "ddr3-old";
    case dram::DeviceGen::kDdr3New: return "ddr3-new";
    case dram::DeviceGen::kDdr4Old: return "ddr4-old";
    case dram::DeviceGen::kDdr4New: return "ddr4-new";
    case dram::DeviceGen::kLpddr4Old: return "lpddr4-old";
    case dram::DeviceGen::kLpddr4New: return "lpddr4-new";
  }
  return "unknown";
}

}  // namespace

std::vector<Scenario> table3_scenarios(bool small) {
  const usize attack_batch = small ? 24 : 32;
  const usize eval_batch = small ? 120 : 300;
  const usize bfa_budget = small ? 60 : 120;
  const usize binary_budget = small ? 80 : 200;
  const usize hw_attempts = small ? 12 : 30;
  // The legacy serial bench ran every hardware row on ProtectedSystem's
  // default seed; pin it so migrated results match bit-for-bit.
  const u64 legacy_hw_seed = 0x5E55;

  const TrainSpec base{.arch = "resnet20", .width_mult = 1,
                       .epochs = scaled_epochs(small, 6), .seed = 1};
  const TrainSpec wide{.arch = "resnet20", .width_mult = 2,
                       .epochs = scaled_epochs(small, 5), .seed = 2};

  auto common = [&](Scenario sc) {
    sc.dataset = DatasetKind::kCifar10Like;
    sc.attack_batch = attack_batch;
    sc.eval_batch = eval_batch;
    return sc;
  };

  std::vector<Scenario> grid;

  {
    Scenario sc;
    sc.id = "table3/baseline";
    sc.label = "Baseline ResNet-20 (8-bit)";
    sc.train = base;
    sc.attack = AttackKind::kBfa;
    sc.max_flips = bfa_budget;
    grid.push_back(common(sc));
  }
  {
    Scenario sc;
    sc.id = "table3/weight-reconstruction";
    sc.label = "Weight Reconstruction";
    sc.train = base;
    sc.attack = AttackKind::kBfa;
    sc.reconstruction_guard = true;
    sc.defense = "weight-reconstruction";
    sc.max_flips = bfa_budget;
    grid.push_back(common(sc));
  }
  {
    Scenario sc;
    sc.id = "table3/binary";
    sc.label = "Binary weight";
    sc.train = base;
    sc.attack = AttackKind::kBinaryBfa;
    sc.prep = SoftwarePrep::kBinaryFinetune;
    sc.prep_epochs = small ? 2 : 4;
    sc.prep_lr = 0.02;
    sc.defense = "binary-weight";
    sc.max_flips = binary_budget;
    grid.push_back(common(sc));
  }
  {
    Scenario sc;
    sc.id = "table3/piecewise";
    sc.label = "Piece-wise Clustering";
    sc.train = base;
    sc.attack = AttackKind::kBfa;
    sc.prep = SoftwarePrep::kPiecewiseClustering;
    sc.prep_epochs = small ? 1 : 2;
    sc.prep_lr = 0.01;
    sc.prep_lambda = 0.15;
    sc.defense = "piecewise-clustering";
    sc.max_flips = bfa_budget;
    grid.push_back(common(sc));
  }
  {
    Scenario sc;
    sc.id = "table3/capacity-x4";
    sc.label = "Model Capacity x4";
    sc.train = wide;
    sc.attack = AttackKind::kBfa;
    sc.defense = "capacity-x4";
    sc.max_flips = bfa_budget;
    grid.push_back(common(sc));
  }
  {
    Scenario sc;
    sc.id = "table3/ra-bnn";
    sc.label = "RA-BNN (binary, wide)";
    sc.train = wide;
    sc.attack = AttackKind::kBinaryBfa;
    sc.prep = SoftwarePrep::kBinaryFinetune;
    sc.prep_epochs = small ? 2 : 4;
    sc.prep_lr = 0.02;
    sc.defense = "ra-bnn";
    sc.max_flips = binary_budget;
    grid.push_back(common(sc));
  }

  for (const char* name : {"rrs", "srs", "shadow"}) {
    Scenario sc;
    sc.id = std::string("table3/") + name;
    sc.label = name;
    std::transform(sc.label.begin(), sc.label.end(), sc.label.begin(),
                   [](unsigned char c) { return static_cast<char>(std::toupper(c)); });
    sc.train = base;
    sc.attack = AttackKind::kDramWhiteBox;
    sc.mitigation = mitigation_factory(name);
    sc.defense = sc.label;
    sc.dram = dram::DramConfig::nn_scaled();
    sc.hw_attempts = hw_attempts;
    sc.seed_override = legacy_hw_seed;
    grid.push_back(common(sc));
  }
  {
    Scenario sc;
    sc.id = "table3/dnn-defender";
    sc.label = "DNN-Defender";
    sc.train = base;
    sc.attack = AttackKind::kDramWhiteBox;
    sc.use_dnn_defender = true;
    sc.profile_bits = 2 * hw_attempts;
    sc.defense = "DNN-Defender";
    sc.dram = dram::DramConfig::nn_scaled();
    sc.hw_attempts = hw_attempts;
    sc.seed_override = legacy_hw_seed;
    grid.push_back(common(sc));
  }

  return grid;
}

std::vector<Scenario> fig1b_scenarios(bool small) {
  const usize attack_batch = small ? 24 : 32;
  const usize eval_batch = small ? 120 : 300;
  const usize bfa_budget = small ? 15 : 30;
  const usize random_budget = small ? 60 : 150;

  const TrainSpec spec{.arch = "resnet34", .width_mult = 1,
                       .epochs = scaled_epochs(small, 6), .seed = 1};

  auto common = [&](Scenario sc) {
    sc.dataset = DatasetKind::kImagenetLike;
    sc.train = spec;
    sc.attack_batch = attack_batch;
    sc.eval_batch = eval_batch;
    return sc;
  };

  std::vector<Scenario> grid;
  {
    Scenario sc;
    sc.id = "fig1b/bfa";
    sc.label = "Targeted BFA";
    sc.attack = AttackKind::kBfa;
    sc.record_trace = true;
    sc.max_flips = bfa_budget;
    grid.push_back(common(sc));
  }
  {
    Scenario sc;
    sc.id = "fig1b/random";
    sc.label = "Random attack";
    sc.attack = AttackKind::kRandom;
    sc.max_flips = random_budget;
    sc.measure_every = 10;
    sc.seed_override = 3;  // the legacy bench's Rng seed
    grid.push_back(common(sc));
  }
  {
    Scenario sc;
    sc.id = "fig1b/dnn-defender";
    sc.label = "DNN-Defender (full coverage)";
    sc.attack = AttackKind::kAdaptive;
    sc.secure_all_weight_rows = true;
    sc.defense = "DNN-Defender";
    sc.dram = dram::DramConfig::nn_scaled();
    sc.max_flips = random_budget;
    sc.measure_every = 10;
    grid.push_back(common(sc));
  }
  return grid;
}

std::vector<Scenario> tiny_test_grid() {
  const TrainSpec mlp{.arch = "mlp", .width_mult = 1, .epochs = 5, .seed = 7};

  auto common = [&](Scenario sc) {
    sc.dataset = DatasetKind::kTinyEasy;
    sc.train = mlp;
    sc.attack_batch = 32;
    sc.eval_batch = 60;
    return sc;
  };

  std::vector<Scenario> grid;
  {
    Scenario sc;
    sc.id = "tiny/bfa";
    sc.attack = AttackKind::kBfa;
    sc.record_trace = true;
    sc.max_flips = 8;
    grid.push_back(common(sc));
  }
  {
    Scenario sc;
    sc.id = "tiny/weight-reconstruction";
    sc.attack = AttackKind::kBfa;
    sc.reconstruction_guard = true;
    sc.defense = "weight-reconstruction";
    sc.max_flips = 8;
    grid.push_back(common(sc));
  }
  {
    Scenario sc;
    sc.id = "tiny/binary";
    sc.attack = AttackKind::kBinaryBfa;
    sc.prep = SoftwarePrep::kBinaryFinetune;
    sc.prep_epochs = 1;
    sc.defense = "binary-weight";
    sc.max_flips = 12;
    grid.push_back(common(sc));
  }
  {
    Scenario sc;
    sc.id = "tiny/random";
    sc.attack = AttackKind::kRandom;
    sc.max_flips = 40;
    sc.measure_every = 10;
    grid.push_back(common(sc));
  }
  {
    Scenario sc;
    sc.id = "tiny/adaptive";
    sc.attack = AttackKind::kAdaptive;
    sc.secure_all_weight_rows = true;
    sc.defense = "DNN-Defender";
    sc.max_flips = 16;
    sc.measure_every = 8;
    grid.push_back(common(sc));
  }
  {
    Scenario sc;
    sc.id = "tiny/hw-rrs";
    sc.attack = AttackKind::kDramWhiteBox;
    sc.mitigation = mitigation_factory("rrs");
    sc.defense = "RRS";
    sc.hw_attempts = 6;
    grid.push_back(common(sc));
  }
  {
    Scenario sc;
    sc.id = "tiny/hw-dnn-defender";
    sc.attack = AttackKind::kDramWhiteBox;
    sc.use_dnn_defender = true;
    sc.profile_bits = 12;
    sc.defense = "DNN-Defender";
    sc.hw_attempts = 6;
    grid.push_back(common(sc));
  }
  return grid;
}

std::vector<Scenario> enumerate_grid(const GridSpec& spec) {
  std::vector<Scenario> grid;
  for (const auto& model : spec.models) {
    for (const auto gen : spec.generations) {
      for (const auto& defense : spec.defenses) {
        Scenario sc;
        sc.id = "grid/" + model + "/" + gen_slug(gen) + "/" + defense;
        sc.label = model + " + " + defense + " @ " + dram::to_string(gen);
        sc.dataset = spec.dataset;
        sc.train = TrainSpec{.arch = model, .width_mult = 1,
                             .epochs = scaled_epochs(spec.small, 6), .seed = 1};
        sc.attack = AttackKind::kDramWhiteBox;
        sc.defense = defense;
        if (defense == "dnn-defender") {
          sc.use_dnn_defender = true;
          sc.profile_bits = spec.small ? 24 : 60;
        } else if (defense != "none") {
          sc.mitigation = mitigation_factory(defense);
        }
        sc.dram = dram::DramConfig::nn_scaled();
        sc.dram.gen = gen;
        sc.dram.t_rh = dram::rowhammer_threshold(gen);
        sc.attack_batch = spec.small ? 24 : 32;
        sc.eval_batch = spec.small ? 120 : 300;
        sc.hw_attempts = spec.small ? 12 : 30;
        grid.push_back(std::move(sc));
      }
    }
  }
  return grid;
}

}  // namespace dnnd::harness
