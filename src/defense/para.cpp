#include "defense/para.hpp"

// Header-only implementation; this TU anchors the vtable.
namespace dnnd::defense {}
