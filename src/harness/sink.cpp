#include "harness/sink.hpp"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <stdexcept>

namespace dnnd::harness {

namespace fs = std::filesystem;

namespace {

void write_text_file(const std::string& path, const std::string& text) {
  const fs::path p(path);
  if (p.has_parent_path()) {
    std::error_code ec;
    fs::create_directories(p.parent_path(), ec);
    if (ec) {
      throw std::runtime_error("cannot create directory " + p.parent_path().string() + ": " +
                               ec.message());
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) throw std::runtime_error("cannot open " + path + " for writing");
  out << text;
  if (!out) throw std::runtime_error("write failed: " + path);
}

}  // namespace

void StdoutSink::write(const CampaignResult& campaign) {
  std::printf("%s\n", campaign.to_json().c_str());
}

void FileSink::write(const CampaignResult& campaign) {
  write_text_file(path_, campaign.to_json() + "\n");
}

std::string RunDirectorySink::next_path() const {
  for (usize i = 1; i < 10000; ++i) {
    char name[64];
    std::snprintf(name, sizeof(name), "%s-%04zu.json", stem_.c_str(), i);
    const fs::path candidate = fs::path(dir_) / name;
    if (!fs::exists(candidate)) return candidate.string();
  }
  throw std::runtime_error("run directory full: " + dir_);
}

void RunDirectorySink::write(const CampaignResult& campaign) {
  std::error_code ec;
  fs::create_directories(dir_, ec);
  if (ec) throw std::runtime_error("cannot create directory " + dir_ + ": " + ec.message());
  write_text_file(next_path(), campaign.to_json() + "\n");
}

std::unique_ptr<CampaignSink> sink_from_env() {
  if (const char* out = std::getenv("DNND_JSON_OUT"); out != nullptr && out[0] != '\0') {
    const std::string path(out);
    if (path.back() == '/' || fs::is_directory(path)) {
      return std::make_unique<RunDirectorySink>(path);
    }
    return std::make_unique<FileSink>(path);
  }
  if (const char* dump = std::getenv("DNND_JSON"); dump != nullptr && dump[0] == '1') {
    return std::make_unique<StdoutSink>();
  }
  return nullptr;
}

SinkWriteStatus write_campaign_from_env(const CampaignResult& campaign,
                                        std::string* destination) {
  const auto sink = sink_from_env();
  if (!sink) return SinkWriteStatus::kNoSink;
  if (destination != nullptr) *destination = sink->describe();
  try {
    sink->write(campaign);
  } catch (const std::exception& e) {
    // Called at the tail of bench mains, after the sweep: losing the whole
    // run to an unwritable path would be worse than a loud stderr line.
    std::fprintf(stderr, "[sink] FAILED to persist campaign to %s: %s\n",
                 sink->describe().c_str(), e.what());
    return SinkWriteStatus::kFailed;
  }
  return SinkWriteStatus::kWritten;
}

}  // namespace dnnd::harness
