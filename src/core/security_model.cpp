#include "core/security_model.hpp"

#include <cmath>
#include <stdexcept>

namespace dnnd::core {

namespace {
constexpr double kSecondsPerDay = 86'400.0;
constexpr u32 kAnchorTrh = 4'000;
constexpr double kAnchorTtbDd = 1'180.0;      // days, paper Fig. 8(a)
constexpr double kAnchorTtbShadow = 894.0;    // days, paper Fig. 8(a)

bool is_dd(const std::string& f) { return f == "dd" || f == "DNN-Defender"; }
bool is_shadow(const std::string& f) { return f == "shadow" || f == "SHADOW"; }
}  // namespace

SecurityModel::SecurityModel(SecurityParams params) : params_(params) {
  // Derive the framework constants from the paper's T_RH=4k anchors:
  // TTB = K x attempt_cost, attempt_cost = T_ACT x T_RH.
  const double anchor_attempt_s =
      ps_to_s(params_.timing.t_act * static_cast<Picoseconds>(kAnchorTrh));
  k_dd_ = params_.k_dd > 0.0 ? params_.k_dd
                             : kAnchorTtbDd * kSecondsPerDay / anchor_attempt_s;
  k_shadow_ = params_.k_shadow > 0.0 ? params_.k_shadow
                                     : kAnchorTtbShadow * kSecondsPerDay / anchor_attempt_s;
}

SecurityPoint SecurityModel::analyze(u32 t_rh) const {
  SecurityPoint p;
  p.t_rh = t_rh;
  p.window = params_.timing.t_act * static_cast<Picoseconds>(t_rh);
  p.max_swaps_per_window = static_cast<u64>(p.window / params_.timing.t_swap());
  // Attack campaigns per Tref with bank-level parallelism.
  const double campaigns = static_cast<double>(params_.banks) * params_.parallel_factor *
                           static_cast<double>(params_.timing.t_ref_window) /
                           static_cast<double>(p.window);
  p.max_bfa_defended = static_cast<u64>(campaigns);
  const double attempt_s = ps_to_s(p.window);
  p.ttb_days_dd = k_dd_ * attempt_s / kSecondsPerDay;
  p.ttb_days_shadow = k_shadow_ * attempt_s / kSecondsPerDay;
  return p;
}

Picoseconds SecurityModel::cost_per_bfa(const std::string& framework) const {
  if (is_dd(framework)) return params_.timing.t_swap();           // 3 AAPs
  if (is_shadow(framework)) return 8 * params_.timing.t_aap;      // 2 victims x 3 + metadata
  throw std::invalid_argument("SecurityModel: unknown framework " + framework);
}

double SecurityModel::latency_per_tref_ms(const std::string& framework, u32 t_rh,
                                          u64 n_bfas) const {
  const SecurityPoint p = analyze(t_rh);
  const u64 defended = std::min<u64>(n_bfas, p.max_bfa_defended);
  return ps_to_ms(static_cast<Picoseconds>(defended) * cost_per_bfa(framework));
}

Femtojoules SecurityModel::energy_per_tref(const std::string& framework, u32 t_rh) const {
  const SecurityPoint p = analyze(t_rh);
  Femtojoules per_op = 0;
  if (is_dd(framework)) {
    per_op = 3 * params_.energy.aap;
  } else if (is_shadow(framework)) {
    per_op = 8 * params_.energy.aap;
  } else if (framework == "srs" || framework == "SRS" || framework == "rrs" ||
             framework == "RRS") {
    // Controller-mediated swap of two 8KB rows over the channel + tracker,
    // at SRS's lazy swap rate (see SecurityParams::srs_swaps_per_campaign).
    const Femtojoules per_swap = 2 * channel_row_copy_energy(params_.energy, 8192) +
                                 64 * params_.energy.sram_access;
    per_op = static_cast<Femtojoules>(params_.srs_swaps_per_campaign *
                                      static_cast<double>(per_swap));
  } else {
    throw std::invalid_argument("SecurityModel: unknown framework " + framework);
  }
  return static_cast<Femtojoules>(p.max_bfa_defended) * per_op;
}

double SecurityModel::defense_power_mw(const std::string& framework, u32 t_rh) const {
  return sys::average_power_mw(energy_per_tref(framework, t_rh),
                               params_.timing.t_ref_window);
}

double SecurityModel::total_power_mw(const std::string& framework, u32 t_rh) const {
  return params_.baseline_traffic_mw + params_.energy.background_mw +
         defense_power_mw(framework, t_rh);
}

}  // namespace dnnd::core
