// RowHammer fault model.
//
// Physical basis (Kim et al. ISCA'14, revisited ISCA'20): repeatedly
// activating an aggressor row disturbs the charge of physically adjacent
// victim rows; once the accumulated activation count since the victim's last
// refresh crosses a per-cell threshold, susceptible cells flip toward their
// discharged value (true-cells 1->0, anti-cells 0->1).
//
// Model: each cell (row, col, bit) is vulnerable with probability
// p_vulnerable (decided by a seeded hash, so the susceptibility map is a
// stable property of the "chip"); each vulnerable cell draws a personal
// threshold in [T_RH, (1+spread) * T_RH]. A per-row disturbance counter
// accumulates adjacent-aggressor ACTs and resets whenever the row is
// restored. This reproduces exactly the attacker workflow the paper assumes:
// memory templating discovers flippable cells, massaging places victim data
// on them, and hammering past T_RH flips them -- unless a defense refreshes
// the victim first.
#pragma once

#include <optional>
#include <unordered_map>
#include <vector>

#include "dram/dram_device.hpp"
#include "sys/rng.hpp"

namespace dnnd::rowhammer {

/// Tunables of the fault model.
struct HammerModelConfig {
  double p_vulnerable = 0.03;    ///< fraction of cells that can flip at all
  double threshold_spread = 0.5; ///< per-cell threshold in [T_RH, (1+spread)*T_RH]
  u64 seed = 0xD15EA5Eu;         ///< susceptibility map seed ("chip identity")
  bool directional = true;       ///< true-/anti-cell behaviour (flip only from charged state)
};

/// One vulnerable cell of a row, ground truth view (tests & templating oracle).
struct VulnerableCell {
  usize col = 0;          ///< byte within the row
  u32 bit = 0;            ///< bit within the byte
  u64 threshold = 0;      ///< disturbance count at which it flips
  bool one_to_zero = true;///< true-cell (1->0) vs anti-cell (0->1)
};

/// Listens to a DramDevice and injects RowHammer bit flips.
class HammerModel final : public dram::RowEventListener {
 public:
  HammerModel(dram::DramDevice& device, HammerModelConfig cfg);
  ~HammerModel() override;

  HammerModel(const HammerModel&) = delete;
  HammerModel& operator=(const HammerModel&) = delete;

  // RowEventListener
  void on_activate(const dram::RowAddr& row, Picoseconds now) override;
  void on_restore(const dram::RowAddr& row, Picoseconds now, dram::RestoreKind kind) override;

  /// Current disturbance (adjacent ACTs since last restore) of a row.
  [[nodiscard]] u64 disturbance(const dram::RowAddr& row) const;

  /// Ground-truth susceptibility of a row, sorted by ascending threshold.
  /// Attackers should not call this directly -- they discover the same
  /// information through HammerAttacker templating; tests use it as oracle.
  [[nodiscard]] const std::vector<VulnerableCell>& vulnerable_cells(const dram::RowAddr& row);

  /// Ground truth: is a specific cell flippable, and in which direction?
  [[nodiscard]] std::optional<VulnerableCell> cell_info(const dram::RowAddr& row, usize col,
                                                        u32 bit);

  /// Total flips injected by this model.
  [[nodiscard]] u64 flips_injected() const { return flips_injected_; }

  [[nodiscard]] const HammerModelConfig& config() const { return cfg_; }

 private:
  struct RowState {
    u64 disturbance = 0;
    bool cells_built = false;
    std::vector<VulnerableCell> cells;  ///< sorted by threshold
    std::vector<bool> discharged;       ///< cell flipped & not yet rewritten
    usize next_candidate = 0;           ///< index into `cells` for the scan
  };

  RowState& state_for(u64 flat_id, const dram::RowAddr& row);
  void build_cells(RowState& st, const dram::RowAddr& row) const;
  void bump_and_maybe_flip(const dram::RowAddr& victim);

  dram::DramDevice& device_;
  HammerModelConfig cfg_;
  std::unordered_map<u64, RowState> rows_;
  u64 flips_injected_ = 0;
};

}  // namespace dnnd::rowhammer
