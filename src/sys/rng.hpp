// Deterministic, splittable pseudo-random generator (xoshiro256**) plus the
// distribution helpers the simulator needs. Every stochastic component in the
// library draws from an Rng seeded through a named-seed path so runs are
// exactly reproducible.
#pragma once

#include <array>
#include <string_view>
#include <vector>

#include "sys/types.hpp"

namespace dnnd::sys {

/// xoshiro256** 1.0 (Blackman & Vigna). Chosen over std::mt19937 for speed,
/// tiny state, and a well-defined cross-platform bitstream.
class Rng {
 public:
  /// Seeds via splitmix64 expansion of `seed` (seed 0 is valid).
  explicit Rng(u64 seed = 0x9e3779b97f4a7c15ULL);

  /// Derives an independent child stream; used to give each subsystem its own
  /// generator without correlated draws.
  Rng split(std::string_view tag);

  /// Next raw 64 random bits.
  u64 next_u64();

  /// Uniform integer in [0, bound) with rejection sampling (unbiased).
  /// bound must be > 0.
  u64 uniform(u64 bound);

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  i64 uniform_range(i64 lo, i64 hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Standard normal via Box-Muller (cached second value).
  double normal();

  /// Normal with explicit mean/stddev.
  double normal(double mean, double stddev);

  /// True with probability p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    if (v.size() < 2) return;
    for (usize i = v.size() - 1; i > 0; --i) {
      usize j = static_cast<usize>(uniform(i + 1));
      std::swap(v[i], v[j]);
    }
  }

  /// Sample k distinct indices from [0, n). Requires k <= n.
  std::vector<usize> sample_indices(usize n, usize k);

 private:
  std::array<u64, 4> state_{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Stable 64-bit hash of a byte string (FNV-1a), used for named seed
/// derivation and per-cell susceptibility hashing.
u64 stable_hash64(std::string_view s);

/// Mix several integer keys into one 64-bit hash (splitmix-style finalizer).
u64 hash_combine(u64 a, u64 b);
u64 hash_combine(u64 a, u64 b, u64 c);
u64 hash_combine(u64 a, u64 b, u64 c, u64 d);

/// Map a 64-bit hash to a double in [0,1).
double hash_to_unit(u64 h);

}  // namespace dnnd::sys
