// Scenario descriptor for the parallel evaluation harness.
//
// A Scenario is one cell of the paper's evaluation grid: attack kind x
// defense (software prep, inference-time guard, or a hardware
// defense::Mitigation factory) x model/dataset x DramConfig, plus the attack
// budgets. Scenarios are plain data: CampaignRunner executes them on a thread
// pool, and every stochastic component is seeded from the scenario *id*
// (never from thread order), so a grid's results are independent of the
// thread count that produced them.
#pragma once

#include <functional>
#include <iterator>
#include <memory>
#include <string>

#include "defense/mitigation.hpp"
#include "dram/dram_config.hpp"
#include "nn/dataset.hpp"

namespace dnnd::harness {

/// Synthetic dataset families used by the paper's evaluation.
enum class DatasetKind {
  kCifar10Like,   ///< 10-class CIFAR stand-in (Table 3)
  kImagenetLike,  ///< many-class ImageNet stand-in (Fig. 1b)
  kTinyEasy,      ///< 4-class 1x8x8 set for fast unit tests
};

/// How the attacker reaches the weights.
enum class AttackKind {
  kBfa,           ///< progressive bit search on the quantized model
  kBinaryBfa,     ///< sign-bit progressive search on a binary-weight model
  kRandom,        ///< uniformly random bit flips
  kAdaptive,      ///< white-box BFA that skips a secured-bit set
  kDramWhiteBox,  ///< full-stack attack carried through the DRAM simulator
  kTbfaNTo1,      ///< T-BFA: redirect every class to the target class
  kTbfa1To1,      ///< T-BFA: redirect one source class to the target class
  kTbfaStealthy,  ///< T-BFA 1-to-1 under the other-class accuracy constraint
  kVwaLimited,    ///< limited-bit budget attack (best damage at <= B flips)
};

/// True for the class-targeted T-BFA family (the kinds whose results carry
/// an attack-success-rate instead of pure accuracy collapse).
inline constexpr bool is_tbfa(AttackKind kind) {
  return kind == AttackKind::kTbfaNTo1 || kind == AttackKind::kTbfa1To1 ||
         kind == AttackKind::kTbfaStealthy;
}

/// Training-time software defense applied before quantization.
enum class SoftwarePrep {
  kNone,
  kBinaryFinetune,        ///< STE binary-weight training (He et al.)
  kPiecewiseClustering,   ///< clustering regularizer fine-tune (He et al.)
};

/// Every enumerator, in declaration order -- the single source for slug
/// round-trips, axis defaults, and exhaustive tests. A new enum value only
/// needs to be added here and in its to_string switch.
inline constexpr AttackKind kAllAttackKinds[] = {
    AttackKind::kBfa,          AttackKind::kBinaryBfa, AttackKind::kRandom,
    AttackKind::kAdaptive,     AttackKind::kDramWhiteBox,
    AttackKind::kTbfaNTo1,     AttackKind::kTbfa1To1,  AttackKind::kTbfaStealthy,
    AttackKind::kVwaLimited,
};
/// Declared AttackKind count -- bump together with the enum. The assert
/// keeps the array from silently lagging the enum; the runtime round-trip
/// test (test_harness Registry.AxisSlugsRoundTrip) walks [0, count) through
/// to_string/attack_kind_from_string, which additionally catches an
/// enumerator missing from the array or from the to_string switch.
inline constexpr usize kAttackKindCount = 9;
static_assert(std::size(kAllAttackKinds) == kAttackKindCount,
              "kAllAttackKinds must enumerate every AttackKind");
inline constexpr SoftwarePrep kAllSoftwarePreps[] = {
    SoftwarePrep::kNone,
    SoftwarePrep::kBinaryFinetune,
    SoftwarePrep::kPiecewiseClustering,
};

/// Builds a hardware mitigation wired to a scenario's device. Factories keep
/// Scenario copyable and let one descriptor instantiate per-run mitigations.
using MitigationFactory = std::function<std::unique_ptr<defense::Mitigation>(
    dram::DramDevice&, dram::RowRemapper&)>;

/// Model + training recipe (resolved through models::make_by_name, or
/// models::make_test_mlp for the special arch "mlp").
struct TrainSpec {
  std::string arch = "resnet20";
  usize width_mult = 1;
  usize epochs = 6;
  u64 seed = 1;
};

struct Scenario {
  /// Stable unique id, e.g. "table3/rrs". Doubles as the RNG seed source and
  /// the lookup key in campaign results.
  std::string id;
  /// Display name for tables (paper row label).
  std::string label;

  DatasetKind dataset = DatasetKind::kCifar10Like;
  TrainSpec train;

  AttackKind attack = AttackKind::kBfa;

  // ----- defense ----------------------------------------------------------
  SoftwarePrep prep = SoftwarePrep::kNone;
  usize prep_epochs = 2;
  double prep_lr = 0.02;
  double prep_lambda = 0.15;  ///< piece-wise clustering strength
  u64 prep_seed = 5;
  /// Inference-time weight-reconstruction clamp applied after every flip.
  bool reconstruction_guard = false;
  /// Hardware mitigation (kDramWhiteBox only); null = undefended device.
  MitigationFactory mitigation;
  /// Install DNN-Defender via the priority profiler (kDramWhiteBox only).
  bool use_dnn_defender = false;
  /// Profiled bits for use_dnn_defender (profile_blocked_attacker budget).
  usize profile_bits = 60;
  /// kAdaptive: secure every bit of every weight row (full-coverage SB set).
  bool secure_all_weight_rows = false;
  /// Display name of the defense (tables/JSON).
  std::string defense = "none";

  dram::DramConfig dram = dram::DramConfig::nn_scaled();

  // ----- budgets ----------------------------------------------------------
  usize attack_batch = 32;   ///< attacker's gradient/search batch
  usize eval_batch = 300;    ///< held-out accuracy measurement batch
  usize max_flips = 60;      ///< flip budget (software attacks)
  usize vwa_budget = 10;     ///< hard flip budget B (kVwaLimited)
  usize measure_every = 10;  ///< accuracy sampling period (trace attacks)
  usize hw_attempts = 30;    ///< DRAM flip-attempt budget (kDramWhiteBox)
  /// Stop when eval accuracy falls to this; 0 = 1.1 x random-guess level.
  double stop_accuracy = 0.0;
  // T-BFA knobs (is_tbfa(attack) only).
  u32 tbfa_source = 0;            ///< source class (1-to-1 variants)
  u32 tbfa_target = 1;            ///< class the sources are redirected to
  double tbfa_stealth_tol = 0.1;  ///< kTbfaStealthy admissibility tolerance
  /// Record a per-measurement accuracy trace (Fig. 1b style curves).
  bool record_trace = false;

  /// Explicit RNG seed; 0 = derive from `id` (the default and the
  /// recommended mode -- overrides exist to reproduce legacy bench runs).
  u64 seed_override = 0;
};

/// The scenario's RNG seed: `seed_override` if set, else a stable hash of the
/// id. Thread order never contributes.
u64 scenario_seed(const Scenario& sc);

std::string to_string(AttackKind kind);
std::string to_string(DatasetKind kind);
std::string to_string(SoftwarePrep prep);

/// Inverse of to_string(AttackKind); throws std::invalid_argument for
/// unknown slugs. Used by GridSpec axis parsing (bench_grid env overrides).
AttackKind attack_kind_from_string(const std::string& slug);

/// Inverse of to_string(SoftwarePrep); throws std::invalid_argument.
SoftwarePrep software_prep_from_string(const std::string& slug);

/// Synthetic data spec backing a DatasetKind.
nn::SynthSpec dataset_spec(DatasetKind kind);

/// Factory for a baseline hardware mitigation by name:
/// "para", "rrs", "srs", "shadow", "graphene", "hydra".
/// Throws std::invalid_argument for unknown names.
MitigationFactory mitigation_factory(const std::string& name);

}  // namespace dnnd::harness
