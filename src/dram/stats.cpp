#include "dram/stats.hpp"

#include <sstream>

namespace dnnd::dram {

std::string Stats::summary() const {
  std::ostringstream out;
  out << "ACT=" << n_act << " PRE=" << n_pre << " RD=" << n_rd_burst << " WR=" << n_wr_burst
      << " REF=" << n_ref << " AAP=" << n_aap << " PSM=" << n_psm_copy
      << " flips=" << n_bitflips << " busy=" << ps_to_us(busy_time) << "us"
      << " energy=" << fj_to_uj(energy) << "uJ";
  return out.str();
}

}  // namespace dnnd::dram
