// Fig. 1(b): targeted BFA vs random bit flipping on an 8-bit quantized
// ResNet-34 (ImageNet stand-in), and the same targeted attack against a
// DNN-Defender-protected model.
//
// Driven by the scenario-sweep harness (harness::fig1b_scenarios); the three
// curves run as independent scenarios on a thread pool (DNND_THREADS env
// var). Results are deterministic regardless of thread count; DNND_JSON=1 /
// DNND_JSON_OUT=<path> persist the campaign through a sink.
#include "bench_util.hpp"
#include "harness/campaign.hpp"
#include "harness/registry.hpp"
#include "harness/sink.hpp"

using namespace dnnd;

int main() {
  bench::banner("Fig. 1(b) -- Targeted BFA vs random attack vs DNN-Defender",
                "paper Fig. 1(b): 8-bit ResNet-34, <5 targeted flips vs >100 random");
  const bool small = bench::small_scale();

  harness::CampaignConfig cfg;
  cfg.threads = harness::env_threads();
  cfg.verbose = true;
  harness::CampaignRunner runner(cfg);
  const auto campaign = runner.run(harness::fig1b_scenarios(small));

  const auto& bfa = campaign.by_id("fig1b/bfa");
  const auto& random = campaign.by_id("fig1b/random");
  const auto& defended = campaign.by_id("fig1b/dnn-defender");
  for (const auto* r : {&bfa, &random, &defended}) {
    if (!r->ok) {
      std::fprintf(stderr, "scenario %s failed: %s\n", r->id.c_str(), r->error.c_str());
      return 1;
    }
  }
  std::printf("[setup] 8-bit quantized accuracy: %.2f%% (%llu weight bits)\n",
              100.0 * bfa.clean_accuracy, static_cast<unsigned long long>(bfa.total_bits));
  std::printf("[setup] DNN-Defender protects %zu weight rows (%zu secured bits)\n",
              defended.secured_rows, defended.secured_bits);

  // --- print the three series ---
  const std::vector<double>& bfa_curve = bfa.trace;
  const std::vector<double>& random_curve = random.trace;
  const std::vector<double>& defended_curve = defended.trace;
  sys::Table table({"flips", "BFA attack (%)", "random attack (%)", "our defense (%)"});
  const usize rows = std::max({bfa_curve.size(), random_curve.size(), defended_curve.size()});
  for (usize i = 0; i < rows; ++i) {
    auto cell = [&](const std::vector<double>& v, usize flips_per_step) -> std::string {
      return i < v.size() ? sys::fmt(100.0 * v[i], 1) +
                                " @" + std::to_string(i * flips_per_step)
                          : "";
    };
    table.add_row({std::to_string(i), cell(bfa_curve, 1), cell(random_curve, 10),
                   cell(defended_curve, 10)});
  }
  table.print();
  std::printf(
      "\nShape check (paper): the targeted BFA reaches random-guess accuracy in\n"
      "a handful of flips; random flips at 10x the budget barely move accuracy;\n"
      "with DNN-Defender securing the vulnerable bits the attack degrades to\n"
      "the random level (flat curve).\n");
  std::printf("[harness] %zu scenarios on %zu threads in %.1fs\n", campaign.results.size(),
              campaign.threads_used, campaign.total_seconds);
  // A configured sink that failed to persist (e.g. unwritable DNND_JSON_OUT)
  // must fail the bench: CI gates on the artifact existing.
  return harness::write_campaign_from_env(campaign) == harness::SinkWriteStatus::kFailed ? 1
                                                                                         : 0;
}
