// Workspace: a per-model scratch arena for the inference engine.
//
// The engine's hot paths (Sequential::forward_cached / forward_from /
// backward_cached and the GEMM lowering of Dense/Conv2d) never allocate their
// own tensors. Instead every piece of scratch -- per-layer activations, the
// im2col patch buffer, the GEMM pack panel, gradient intermediates, composite
// layer temporaries -- lives in the model's Workspace and is reused across
// iterations. Slots are keyed by (owner pointer, kind, index), created lazily
// on first use, and retain their storage forever after, so the steady state
// (same shapes, same workspace) performs zero heap allocations.
//
// `alloc_events()` counts arena growth (new slots, buffer grows); a constant
// count across iterations is the observable zero-allocation invariant that
// tests/test_inference_engine.cpp pins down.
#pragma once

#include <unordered_map>
#include <vector>

#include "nn/tensor.hpp"

namespace dnnd::nn {

class Workspace {
 public:
  /// Separate key spaces so one owner can hold activations, gradients, and
  /// scratch under the same indices without collisions.
  enum class SlotKind : u32 { kActivation = 0, kGradient = 1, kScratch = 2 };

  /// The (lazily created) tensor slot for (owner, kind, idx). References stay
  /// valid for the workspace lifetime (node-based map).
  Tensor& slot(const void* owner, SlotKind kind, usize idx);

  /// im2col patch buffer of at least `n` floats; grows monotonically.
  float* col_buffer(usize n) { return grow(col_, n); }

  /// GEMM panel-pack buffer of at least `n` floats; distinct from the col
  /// buffer because both are live during a lowered convolution.
  float* pack_buffer(usize n) { return grow(pack_, n); }

  /// Arena growth events so far (slot creations and buffer grows). Constant
  /// across steady-state iterations == no new arena structures. Pair with
  /// slot_capacity() -- which sees reallocation of the slot tensors'
  /// storage -- for the full zero-allocation invariant.
  [[nodiscard]] usize alloc_events() const { return alloc_events_; }

  /// Total allocated floats across slot tensors and the col/pack buffers.
  [[nodiscard]] usize slot_capacity() const {
    usize total = col_.capacity() + pack_.capacity();
    for (const auto& [key, t] : slots_) total += t.capacity();
    return total;
  }

  [[nodiscard]] usize slot_count() const { return slots_.size(); }

 private:
  struct Key {
    const void* owner;
    u32 kind;
    u64 idx;
    bool operator==(const Key&) const = default;
  };
  struct KeyHash {
    usize operator()(const Key& k) const {
      u64 h = reinterpret_cast<u64>(k.owner);
      h = (h ^ (static_cast<u64>(k.kind) << 56) ^ k.idx) * 0x9e3779b97f4a7c15ULL;
      return static_cast<usize>(h ^ (h >> 32));
    }
  };

  float* grow(std::vector<float>& buf, usize n) {
    if (buf.size() < n) {
      buf.resize(n);
      ++alloc_events_;
    }
    return buf.data();
  }

  std::unordered_map<Key, Tensor, KeyHash> slots_;
  std::vector<float> col_;
  std::vector<float> pack_;
  usize alloc_events_ = 0;
};

}  // namespace dnnd::nn
