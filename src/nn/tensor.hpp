// Dense float32 tensor with row-major layout. Shapes follow NCHW for images
// and {N, F} for fully-connected activations. This is deliberately a plain
// value type: layers own their parameter tensors and cache activations as
// Tensor values.
#pragma once

#include <string>
#include <vector>

#include "sys/rng.hpp"
#include "sys/types.hpp"

namespace dnnd::nn {

class Tensor {
 public:
  Tensor() = default;
  /// Allocates zero-initialised storage of the given shape.
  explicit Tensor(std::vector<usize> shape);

  static Tensor zeros(std::vector<usize> shape);
  static Tensor full(std::vector<usize> shape, float value);
  /// He-normal initialisation: N(0, sqrt(2 / fan_in)).
  static Tensor he_normal(std::vector<usize> shape, usize fan_in, sys::Rng& rng);

  [[nodiscard]] const std::vector<usize>& shape() const { return shape_; }
  [[nodiscard]] usize size() const { return data_.size(); }
  /// Allocated storage in elements (>= size); the workspace zero-allocation
  /// tests pin this across steady-state iterations.
  [[nodiscard]] usize capacity() const { return data_.capacity(); }
  [[nodiscard]] usize dim(usize i) const { return shape_.at(i); }
  [[nodiscard]] usize rank() const { return shape_.size(); }

  [[nodiscard]] float* data() { return data_.data(); }
  [[nodiscard]] const float* data() const { return data_.data(); }

  float& operator[](usize i) { return data_[i]; }
  float operator[](usize i) const { return data_[i]; }

  /// 4-D accessor for NCHW tensors (no bounds checks in release).
  float& at4(usize n, usize c, usize h, usize w);
  [[nodiscard]] float at4(usize n, usize c, usize h, usize w) const;

  /// 2-D accessor for {N, F} tensors.
  float& at2(usize n, usize f) { return data_[n * shape_[1] + f]; }
  [[nodiscard]] float at2(usize n, usize f) const { return data_[n * shape_[1] + f]; }

  /// Reinterprets the same storage under a new shape (sizes must match).
  [[nodiscard]] Tensor reshaped(std::vector<usize> new_shape) const;

  /// Reshapes in place without initialising the data. Storage capacity is
  /// retained on shrink and only grows monotonically, so resizing to a
  /// previously seen size never reallocates -- the property the Workspace
  /// arena's zero-allocation steady state relies on.
  void resize(const std::vector<usize>& new_shape);

  void fill(float value);
  void zero() { fill(0.0f); }

  /// Elementwise in-place: this += other (shapes must match).
  void add_(const Tensor& other);
  /// Elementwise in-place: this *= s.
  void scale_(float s);

  [[nodiscard]] float min() const;
  [[nodiscard]] float max() const;
  [[nodiscard]] float abs_max() const;
  [[nodiscard]] double sum() const;
  [[nodiscard]] double l2_norm() const;

  [[nodiscard]] std::string shape_string() const;

 private:
  std::vector<usize> shape_;
  std::vector<float> data_;
};

}  // namespace dnnd::nn
