#include "sys/json.hpp"

#include <cctype>
#include <cerrno>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace dnnd::sys {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  char buf[40];
  std::snprintf(buf, sizeof(buf), "%.10g", v);
  return buf;
}

void JsonWriter::comma_if_needed() {
  if (!needs_comma_.empty()) {
    if (needs_comma_.back()) out_ += ',';
    needs_comma_.back() = true;
  }
}

JsonWriter& JsonWriter::begin_object() {
  comma_if_needed();
  out_ += '{';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  out_ += '}';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  comma_if_needed();
  out_ += '[';
  needs_comma_.push_back(false);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  out_ += ']';
  needs_comma_.pop_back();
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  comma_if_needed();
  out_ += '"';
  out_ += json_escape(k);
  out_ += "\":";
  // The upcoming value must not emit another comma for this slot.
  needs_comma_.back() = false;
  // Mark that after the value, a comma is due. We re-set it in value()/begin_*.
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  comma_if_needed();
  out_ += '"';
  out_ += json_escape(v);
  out_ += '"';
  return *this;
}

JsonWriter& JsonWriter::value(const char* v) { return value(std::string_view(v)); }

JsonWriter& JsonWriter::value(double v) {
  comma_if_needed();
  out_ += json_number(v);
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  comma_if_needed();
  out_ += v ? "true" : "false";
  return *this;
}

// ---- JsonValue --------------------------------------------------------------

namespace {

[[noreturn]] void bad_kind(const char* want) {
  throw JsonParseError(std::string("JsonValue: not a ") + want);
}

}  // namespace

JsonValue JsonValue::null() { return {}; }

JsonValue JsonValue::boolean(bool v) {
  JsonValue j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}

JsonValue JsonValue::number(double v) {
  JsonValue j;
  j.kind_ = Kind::kNumber;
  j.num_ = v;
  j.text_ = json_number(v);
  return j;
}

JsonValue JsonValue::string(std::string v) {
  JsonValue j;
  j.kind_ = Kind::kString;
  j.text_ = std::move(v);
  return j;
}

JsonValue JsonValue::array() {
  JsonValue j;
  j.kind_ = Kind::kArray;
  return j;
}

JsonValue JsonValue::object() {
  JsonValue j;
  j.kind_ = Kind::kObject;
  return j;
}

bool JsonValue::as_bool() const {
  if (!is_bool()) bad_kind("bool");
  return bool_;
}

double JsonValue::as_double() const {
  if (!is_number()) bad_kind("number");
  return num_;
}

u64 JsonValue::as_u64() const {
  if (!is_number()) bad_kind("number");
  // Only a plain non-negative integer lexeme qualifies: strtoull would
  // silently wrap "-7" and truncate "3.5", so reject them like the other
  // typed accessors reject kind mismatches.
  if (text_.empty() ||
      text_.find_first_not_of("0123456789") != std::string::npos) {
    throw JsonParseError("JsonValue: not a non-negative integer: " + text_);
  }
  // Reparse the lexeme so integers above 2^53 survive exactly. strtoull
  // saturates to ULLONG_MAX on overflow instead of failing, so a digits-only
  // lexeme above 2^64-1 must be caught through ERANGE.
  errno = 0;
  char* end = nullptr;
  const u64 v = std::strtoull(text_.c_str(), &end, 10);
  if (errno == ERANGE || end != text_.c_str() + text_.size()) {
    throw JsonParseError("JsonValue: integer out of u64 range: " + text_);
  }
  return v;
}

const std::string& JsonValue::as_string() const {
  if (!is_string()) bad_kind("string");
  return text_;
}

usize JsonValue::size() const {
  if (is_array()) return items_.size();
  if (is_object()) return members_.size();
  bad_kind("container");
}

const JsonValue& JsonValue::operator[](usize i) const {
  if (!is_array()) bad_kind("array");
  if (i >= items_.size()) throw JsonParseError("JsonValue: array index out of range");
  return items_[i];
}

const std::vector<JsonValue>& JsonValue::items() const {
  if (!is_array()) bad_kind("array");
  return items_;
}

void JsonValue::push_back(JsonValue v) {
  if (!is_array()) bad_kind("array");
  items_.push_back(std::move(v));
}

bool JsonValue::contains(std::string_view key) const {
  if (!is_object()) return false;
  for (const auto& [k, v] : members_) {
    if (k == key) return true;
  }
  return false;
}

const JsonValue& JsonValue::at(std::string_view key) const {
  if (!is_object()) bad_kind("object");
  for (const auto& [k, v] : members_) {
    if (k == key) return v;
  }
  throw JsonParseError("JsonValue: missing key \"" + std::string(key) + "\"");
}

const JsonValue& JsonValue::get_or(std::string_view key, const JsonValue& fallback) const {
  if (!is_object()) bad_kind("object");
  for (const auto& [k, v] : members_) {
    if (k == key) return v;
  }
  return fallback;
}

const std::vector<JsonValue::Member>& JsonValue::members() const {
  if (!is_object()) bad_kind("object");
  return members_;
}

void JsonValue::set(std::string key, JsonValue v) {
  if (!is_object()) bad_kind("object");
  for (auto& [k, existing] : members_) {
    if (k == key) {
      existing = std::move(v);
      return;
    }
  }
  members_.emplace_back(std::move(key), std::move(v));
}

std::string JsonValue::dump() const {
  switch (kind_) {
    case Kind::kNull: return "null";
    case Kind::kBool: return bool_ ? "true" : "false";
    case Kind::kNumber: return text_;
    case Kind::kString: return '"' + json_escape(text_) + '"';
    case Kind::kArray: {
      std::string out = "[";
      for (usize i = 0; i < items_.size(); ++i) {
        if (i != 0) out += ',';
        out += items_[i].dump();
      }
      return out + ']';
    }
    case Kind::kObject: {
      std::string out = "{";
      for (usize i = 0; i < members_.size(); ++i) {
        if (i != 0) out += ',';
        out += '"' + json_escape(members_[i].first) + "\":" + members_[i].second.dump();
      }
      return out + '}';
    }
  }
  throw JsonParseError("JsonValue: corrupt kind");
}

// ---- parser -----------------------------------------------------------------

class JsonParser {
 public:
  explicit JsonParser(std::string_view src) : src_(src) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != src_.size()) fail("trailing garbage after document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw JsonParseError("JSON parse error at byte " + std::to_string(pos_) + ": " + why);
  }

  void skip_ws() {
    while (pos_ < src_.size() && (src_[pos_] == ' ' || src_[pos_] == '\t' ||
                                  src_[pos_] == '\n' || src_[pos_] == '\r')) {
      ++pos_;
    }
  }

  char peek() {
    if (pos_ >= src_.size()) fail("unexpected end of input");
    return src_[pos_];
  }

  void expect(char c) {
    if (pos_ >= src_.size() || src_[pos_] != c) {
      fail(std::string("expected '") + c + "'");
    }
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (src_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    switch (peek()) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': return JsonValue::string(parse_string());
      case 't':
        if (!consume_literal("true")) fail("bad literal");
        return JsonValue::boolean(true);
      case 'f':
        if (!consume_literal("false")) fail("bad literal");
        return JsonValue::boolean(false);
      case 'n':
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue::null();
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue obj = JsonValue::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return obj;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      obj.members_.emplace_back(std::move(key), parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == '}') return obj;
      if (c != ',') fail("expected ',' or '}' in object");
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue arr = JsonValue::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return arr;
    }
    while (true) {
      arr.items_.push_back(parse_value());
      skip_ws();
      const char c = peek();
      ++pos_;
      if (c == ']') return arr;
      if (c != ',') fail("expected ',' or ']' in array");
    }
  }

  unsigned parse_hex4() {
    if (pos_ + 4 > src_.size()) fail("truncated \\u escape");
    unsigned code = 0;
    for (int i = 0; i < 4; ++i) {
      const char h = src_[pos_++];
      code <<= 4;
      if (h >= '0' && h <= '9') code |= static_cast<unsigned>(h - '0');
      else if (h >= 'a' && h <= 'f') code |= static_cast<unsigned>(h - 'a' + 10);
      else if (h >= 'A' && h <= 'F') code |= static_cast<unsigned>(h - 'A' + 10);
      else fail("bad hex digit in \\u escape");
    }
    return code;
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= src_.size()) fail("unterminated string");
      const char c = src_[pos_++];
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= src_.size()) fail("unterminated escape");
      const char esc = src_[pos_++];
      switch (esc) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          // The writer only emits \u00XX for control bytes; decode the full
          // range (including UTF-16 surrogate pairs) as UTF-8 for general
          // inputs.
          unsigned code = parse_hex4();
          if (code >= 0xDC00 && code <= 0xDFFF) fail("lone low surrogate in \\u escape");
          if (code >= 0xD800 && code <= 0xDBFF) {
            if (pos_ + 2 > src_.size() || src_[pos_] != '\\' || src_[pos_ + 1] != 'u') {
              fail("high surrogate not followed by \\u escape");
            }
            pos_ += 2;
            const unsigned lo = parse_hex4();
            if (lo < 0xDC00 || lo > 0xDFFF) fail("invalid low surrogate in \\u pair");
            code = 0x10000 + ((code - 0xD800) << 10) + (lo - 0xDC00);
          }
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else if (code < 0x800) {
            out += static_cast<char>(0xC0 | (code >> 6));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else if (code < 0x10000) {
            out += static_cast<char>(0xE0 | (code >> 12));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          } else {
            out += static_cast<char>(0xF0 | (code >> 18));
            out += static_cast<char>(0x80 | ((code >> 12) & 0x3F));
            out += static_cast<char>(0x80 | ((code >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (code & 0x3F));
          }
          break;
        }
        default: fail("unknown escape");
      }
    }
  }

  JsonValue parse_number() {
    const usize start = pos_;
    if (pos_ < src_.size() && src_[pos_] == '-') ++pos_;
    auto digits = [&] {
      const usize before = pos_;
      while (pos_ < src_.size() && std::isdigit(static_cast<unsigned char>(src_[pos_]))) ++pos_;
      return pos_ > before;
    };
    const usize int_start = pos_;
    if (!digits()) fail("invalid number");
    // JSON grammar: the integer part is "0" or a nonzero-led digit run.
    if (src_[int_start] == '0' && pos_ - int_start > 1) fail("leading zero in number");
    if (pos_ < src_.size() && src_[pos_] == '.') {
      ++pos_;
      if (!digits()) fail("digits required after decimal point");
    }
    if (pos_ < src_.size() && (src_[pos_] == 'e' || src_[pos_] == 'E')) {
      ++pos_;
      if (pos_ < src_.size() && (src_[pos_] == '+' || src_[pos_] == '-')) ++pos_;
      if (!digits()) fail("digits required in exponent");
    }
    JsonValue j;
    j.kind_ = JsonValue::Kind::kNumber;
    j.text_ = std::string(src_.substr(start, pos_ - start));
    j.num_ = std::strtod(j.text_.c_str(), nullptr);
    // strtod turns an overflowing lexeme ("1e999") into +-HUGE_VAL; a
    // document carrying a number no double can represent must fail loudly
    // instead of loading as infinity. Underflow (ERANGE with a tiny finite
    // result) is accepted: the nearest representable value is 0-ish, not a
    // lie. as_u64 re-parses integer lexemes itself, so this guard only has
    // to keep the double view honest.
    if (!std::isfinite(j.num_)) fail("number overflows double: " + j.text_);
    return j;
  }

  std::string_view src_;
  usize pos_ = 0;
};

JsonValue parse_json(std::string_view src) { return JsonParser(src).parse_document(); }

}  // namespace dnnd::sys
