// Minimal deterministic JSON reader/writer for campaign result export.
// Writer output is byte-stable for identical values (fixed number formatting,
// insertion-order keys), which the harness determinism tests rely on; the
// parser preserves member order and numeric lexemes so a parse/dump round
// trip of writer output is byte-identical.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>
#include <type_traits>
#include <utility>
#include <vector>

#include "sys/types.hpp"

namespace dnnd::sys {

/// Escapes a string for inclusion inside JSON quotes.
std::string json_escape(std::string_view s);

/// Formats a double with round-trip-stable "%.10g" formatting.
std::string json_number(double v);

/// Streaming JSON builder. Commas and key/value separators are managed
/// automatically; keys appear in insertion order.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Starts a member inside an object; follow with a value or container.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(bool v);

  /// Any integer type (usize, u32, i64, ...). A single template avoids
  /// overload ambiguity on platforms where size_t is a distinct type from
  /// uint64_t.
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  JsonWriter& value(T v) {
    comma_if_needed();
    if constexpr (std::is_signed_v<T>) {
      out_ += std::to_string(static_cast<long long>(v));
    } else {
      out_ += std::to_string(static_cast<unsigned long long>(v));
    }
    return *this;
  }

  [[nodiscard]] const std::string& str() const { return out_; }

 private:
  void comma_if_needed();

  std::string out_;
  std::vector<bool> needs_comma_;  ///< per open container
};

/// Error thrown by parse_json on malformed input; what() carries the byte
/// offset of the failure.
struct JsonParseError : std::runtime_error {
  using std::runtime_error::runtime_error;
};

/// Parsed JSON document node. Objects keep members in source order and
/// numbers keep their source lexeme, so dump() of a parsed JsonWriter
/// document reproduces it byte-for-byte.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  using Member = std::pair<std::string, JsonValue>;

  JsonValue() = default;

  static JsonValue null();
  static JsonValue boolean(bool v);
  static JsonValue number(double v);
  static JsonValue string(std::string v);
  static JsonValue array();
  static JsonValue object();

  [[nodiscard]] Kind kind() const { return kind_; }
  [[nodiscard]] bool is_null() const { return kind_ == Kind::kNull; }
  [[nodiscard]] bool is_bool() const { return kind_ == Kind::kBool; }
  [[nodiscard]] bool is_number() const { return kind_ == Kind::kNumber; }
  [[nodiscard]] bool is_string() const { return kind_ == Kind::kString; }
  [[nodiscard]] bool is_array() const { return kind_ == Kind::kArray; }
  [[nodiscard]] bool is_object() const { return kind_ == Kind::kObject; }

  /// Typed accessors; throw JsonParseError when the kind does not match.
  [[nodiscard]] bool as_bool() const;
  [[nodiscard]] double as_double() const;
  [[nodiscard]] u64 as_u64() const;  ///< lexeme-exact for integers > 2^53
  [[nodiscard]] const std::string& as_string() const;

  // ----- array access -------------------------------------------------------
  [[nodiscard]] usize size() const;  ///< element count (array) / member count (object)
  [[nodiscard]] const JsonValue& operator[](usize i) const;  ///< array element
  [[nodiscard]] const std::vector<JsonValue>& items() const;
  void push_back(JsonValue v);

  // ----- object access ------------------------------------------------------
  [[nodiscard]] bool contains(std::string_view key) const;
  /// Member lookup; throws JsonParseError when absent or not an object.
  [[nodiscard]] const JsonValue& at(std::string_view key) const;
  /// Member lookup returning `fallback` when the key is absent.
  [[nodiscard]] const JsonValue& get_or(std::string_view key, const JsonValue& fallback) const;
  [[nodiscard]] const std::vector<Member>& members() const;
  void set(std::string key, JsonValue v);

  /// Re-serializes with JsonWriter formatting rules (numbers keep their
  /// parsed lexeme), so parse_json(s).dump() == s for writer-produced s.
  [[nodiscard]] std::string dump() const;

 private:
  friend class JsonParser;

  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double num_ = 0.0;
  std::string text_;  ///< string value, or the numeric source lexeme
  std::vector<JsonValue> items_;
  std::vector<Member> members_;
};

/// Parses a complete JSON document (trailing whitespace allowed, anything
/// else after the value is an error). Throws JsonParseError when malformed.
JsonValue parse_json(std::string_view src);

}  // namespace dnnd::sys
