#include "core/priority_profiler.hpp"

#include <algorithm>

namespace dnnd::core {

quant::BitSkipSet ProfileResult::secured_set(usize n) const {
  quant::BitSkipSet set;
  const usize count = (n == 0 || n > priority_bits.size()) ? priority_bits.size() : n;
  for (usize i = 0; i < count; ++i) set.insert(priority_bits[i]);
  return set;
}

PriorityProfiler::PriorityProfiler(quant::QuantizedModel& qm, nn::Tensor attack_x,
                                   std::vector<u32> attack_y, ProfilerConfig cfg)
    : qm_(qm), attack_x_(std::move(attack_x)), attack_y_(std::move(attack_y)), cfg_(cfg) {}

ProfileResult PriorityProfiler::profile() {
  ProfileResult result;
  const auto clean_snapshot = qm_.snapshot();
  quant::BitSkipSet exclude;
  for (usize round = 0; round < cfg_.rounds; ++round) {
    attack::ProgressiveBitSearch search(qm_, attack_x_, attack_y_, cfg_.bfa);
    const attack::BfaResult res = search.run(exclude);
    // Flip everything back (the profiler must not damage the model) and
    // exclude this round's bits from the next round.
    qm_.restore(clean_snapshot);
    if (res.flips.empty()) break;  // search space exhausted
    result.round_sizes.push_back(res.flips.size());
    for (const auto& rec : res.flips) {
      exclude.insert(rec.loc);
      result.priority_bits.push_back(rec.loc);
    }
  }
  return result;
}

ProfileResult PriorityProfiler::profile_blocked_attacker(usize n_bits) {
  ProfileResult result;
  quant::BitSkipSet skip;
  for (usize i = 0; i < n_bits; ++i) {
    // A fresh search per selection: the blocked attacker's model never
    // changes, only its knowledge of which bits are futile.
    attack::ProgressiveBitSearch search(qm_, attack_x_, attack_y_, cfg_.bfa);
    const auto rec = search.step(skip);
    if (!rec.has_value()) break;
    qm_.flip(rec->loc);  // undo the search's commit
    skip.insert(rec->loc);
    result.priority_bits.push_back(rec->loc);
  }
  result.round_sizes.push_back(result.priority_bits.size());
  return result;
}

ProfileResult fast_gradient_profile(quant::QuantizedModel& qm, const nn::Tensor& attack_x,
                                    const std::vector<u32>& attack_y, usize n_bits,
                                    usize chunk) {
  // Two properties matter.
  // Conditioning: a defended attacker whose attempts are all blocked keeps
  // proposing from the CLEAN model, so ranking uses one clean-model gradient
  // pass (no committed flips).
  // Coverage: the progressive search is per-layer -- gradient magnitudes are
  // not comparable across layers (early conv layers have small gradients but
  // catastrophic nonlinear flip impact), so the budget is allocated to every
  // layer proportionally to its size and ranked within the layer. The output
  // interleaves layers by within-layer rank so any prefix (a smaller SB
  // level) is also layer-balanced.
  (void)chunk;
  ProfileResult result;
  nn::Model& model = qm.model();
  model.zero_grad();
  model.loss_and_grad(attack_x, attack_y);
  const quant::BitSkipSet none;
  const u64 total_bits = qm.total_bits();
  std::vector<std::vector<quant::FlipCandidate>> per_layer(qm.num_layers());
  for (usize l = 0; l < qm.num_layers(); ++l) {
    const usize share = static_cast<usize>(
        (static_cast<u64>(n_bits) * qm.layer(l).size() * 8 + total_bits - 1) / total_bits);
    per_layer[l] = quant::top_k_flips(qm.layer(l), l, share, none);
  }
  // Round-robin merge by within-layer rank.
  for (usize rank = 0; result.priority_bits.size() < n_bits; ++rank) {
    bool any = false;
    for (usize l = 0; l < per_layer.size() && result.priority_bits.size() < n_bits; ++l) {
      if (rank < per_layer[l].size()) {
        result.priority_bits.push_back(per_layer[l][rank].loc);
        any = true;
      }
    }
    if (!any) break;  // every layer exhausted
  }
  result.round_sizes.push_back(result.priority_bits.size());
  return result;
}

std::vector<dram::RowAddr> PriorityProfiler::target_rows(const ProfileResult& result,
                                                         const mapping::WeightMapping& mapping,
                                                         usize max_bits) {
  std::vector<dram::RowAddr> rows;
  const usize count = (max_bits == 0 || max_bits > result.priority_bits.size())
                          ? result.priority_bits.size()
                          : max_bits;
  for (usize i = 0; i < count; ++i) {
    const auto& bit = result.priority_bits[i];
    const dram::RowAddr row = mapping.locate(bit.layer, bit.index).row;
    if (std::find(rows.begin(), rows.end(), row) == rows.end()) rows.push_back(row);
  }
  return rows;
}

}  // namespace dnnd::core
