#include "attack/probe_engine.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace dnnd::attack {

double probe_loss_key(double loss) {
  return std::isnan(loss) ? std::numeric_limits<double>::infinity() : loss;
}

ProbeEngine::ProbeEngine(quant::QuantizedModel& qm, nn::Tensor attack_x,
                         std::vector<u32> attack_y, Objective& objective,
                         ProbeEngineConfig cfg)
    : qm_(qm),
      attack_x_(std::move(attack_x)),
      attack_y_(std::move(attack_y)),
      objective_(objective),
      cfg_(cfg) {
  // True-integer regime: every probe forward below goes through the int8
  // path, so the activation scales must be frozen before the first
  // measurement. No-op in the default float regime.
  qm_.ensure_int8_calibrated(attack_x_);
  // One full forward: resolves the class count from the model's output
  // dimension and warms the activation cache the first step() reuses.
  clean_logits_ = &qm_.model().forward_cached(attack_x_, /*train=*/false);
  num_classes_ = clean_logits_->dim(1);
}

std::optional<EngineStep> ProbeEngine::step(const quant::BitSkipSet& skip) {
  nn::Model& model = qm_.model();
  // (1) base objective + bit gradients on the attack batch. The forward half
  // is incremental: when the previous step left a cache on this batch, only
  // layers at/beyond the earliest flip/probe re-run (byte-identical to a
  // full pass). It also (re)populates the activation cache every candidate
  // probe below re-evaluates incrementally from its flip layer onward.
  model.zero_grad();
  const double base = objective_.prepare(model, attack_x_, attack_y_);

  // Effective exclusion: caller's skip set plus everything this engine has
  // already committed (the search never undoes its own flips).
  quant::BitSkipSet exclude = skip;
  exclude.insert_all(flipped_);

  // (2) intra-layer search: per-layer top-k candidates by first-order gain.
  struct LayerBest {
    usize layer;
    std::vector<quant::FlipCandidate> cands;
  };
  std::vector<LayerBest> per_layer;
  for (usize l = 0; l < qm_.num_layers(); ++l) {
    auto cands = quant::top_k_flips(qm_.layer(l), l, cfg_.candidates_per_layer, exclude);
    if (!cands.empty()) per_layer.push_back({l, std::move(cands)});
  }
  if (per_layer.empty()) return std::nullopt;

  // (3) inter-layer search: restrict to the most promising layers, then
  // price candidates' actual objective by flip / forward / unflip.
  if (cfg_.layers_evaluated > 0 && per_layer.size() > cfg_.layers_evaluated) {
    std::partial_sort(per_layer.begin(),
                      per_layer.begin() + static_cast<isize>(cfg_.layers_evaluated),
                      per_layer.end(), [](const LayerBest& a, const LayerBest& b) {
                        return a.cands.front().estimated_gain >
                               b.cands.front().estimated_gain;
                      });
    per_layer.resize(cfg_.layers_evaluated);
  }

  const bool maximize = objective_.direction() == SearchDirection::kMaximize;
  std::optional<quant::BitLocation> best_loc;
  double best_key = probe_loss_key(base);
  ProbeMeasurement best;
  ProbeMeasurement probe;
  for (const LayerBest& lb : per_layer) {
    for (const quant::FlipCandidate& cand : lb.cands) {
      // flip / incremental forward / unflip: only layers at and beyond the
      // flipped tensor are recomputed; every metric the objective reports
      // comes from the single resulting logits tensor.
      qm_.flip(cand.loc);
      const nn::Tensor& logits =
          model.forward_from(qm_.layer(cand.loc.layer).net_layer, /*train=*/false);
      objective_.measure(logits, attack_y_, probe);
      qm_.flip(cand.loc);  // revert
      if (!probe.admissible) {
        continue;  // violates the objective's constraint (stealthy admission)
      }
      // Ordering through probe_loss_key: a probe whose objective saturated to
      // NaN ranks as +inf -- maximally destructive for a maximizer, a sure
      // loss for a minimizer -- instead of comparing false and vanishing.
      // best_key holds the normalized key throughout.
      const double key = probe_loss_key(probe.objective);
      if (maximize ? key > best_key : key < best_key) {
        best_key = key;
        best_loc = cand.loc;
        best = probe;
      }
    }
  }
  bool fallback = false;
  if (!best_loc.has_value()) {
    // No evaluated candidate improved the objective. Objectives that pay for
    // every flip (targeted, budget-limited) stop here; the unconstrained
    // maximizer falls back to the globally best first-order estimate (greedy
    // escape; progress is guaranteed because committed bits are never
    // revisited).
    if (!objective_.allow_estimate_fallback()) return std::nullopt;
    const quant::FlipCandidate* best_est = nullptr;
    for (const LayerBest& lb : per_layer) {
      if (best_est == nullptr || lb.cands.front().estimated_gain > best_est->estimated_gain) {
        best_est = &lb.cands.front();
      }
    }
    best_loc = best_est->loc;
    fallback = true;
  }

  // (4) commit
  qm_.flip(*best_loc);
  flipped_.insert(*best_loc);
  if (fallback) {
    // A fallback flip was never priced: measure the committed state.
    const nn::Tensor& logits =
        model.forward_from(qm_.layer(best_loc->layer).net_layer, /*train=*/false);
    objective_.measure(logits, attack_y_, best);
    best_key = probe_loss_key(best.objective);
  }
  EngineStep out;
  out.loc = *best_loc;
  out.objective_before = base;
  out.objective_after = best_key;
  out.best = best;
  out.fallback = fallback;
  return out;
}

}  // namespace dnnd::attack
