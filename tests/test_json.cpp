#include <gtest/gtest.h>

#include "sys/json.hpp"

namespace dnnd::sys {
namespace {

TEST(JsonParse, ScalarsAndContainers) {
  const JsonValue doc = parse_json(
      R"({"s":"hi","n":3.5,"i":42,"neg":-7,"t":true,"f":false,"z":null,)"
      R"("arr":[1,2,3],"obj":{"k":"v"}})");
  ASSERT_TRUE(doc.is_object());
  EXPECT_EQ(doc.at("s").as_string(), "hi");
  EXPECT_DOUBLE_EQ(doc.at("n").as_double(), 3.5);
  EXPECT_EQ(doc.at("i").as_u64(), 42u);
  EXPECT_DOUBLE_EQ(doc.at("neg").as_double(), -7.0);
  EXPECT_TRUE(doc.at("t").as_bool());
  EXPECT_FALSE(doc.at("f").as_bool());
  EXPECT_TRUE(doc.at("z").is_null());
  ASSERT_EQ(doc.at("arr").size(), 3u);
  EXPECT_DOUBLE_EQ(doc.at("arr")[1].as_double(), 2.0);
  EXPECT_EQ(doc.at("obj").at("k").as_string(), "v");
  EXPECT_TRUE(doc.contains("s"));
  EXPECT_FALSE(doc.contains("missing"));
  EXPECT_THROW(doc.at("missing"), JsonParseError);
}

TEST(JsonParse, StringEscapes) {
  const JsonValue doc = parse_json(R"(["a\"b","x\\y","nl\n","tab\t","u\u0041","ctl\u0007"])");
  EXPECT_EQ(doc[0].as_string(), "a\"b");
  EXPECT_EQ(doc[1].as_string(), "x\\y");
  EXPECT_EQ(doc[2].as_string(), "nl\n");
  EXPECT_EQ(doc[3].as_string(), "tab\t");
  EXPECT_EQ(doc[4].as_string(), "uA");
  EXPECT_EQ(doc[5].as_string(), std::string("ctl") + '\x07');
}

TEST(JsonParse, SurrogatePairsDecodeToUtf8) {
  // U+1F600 escaped as a UTF-16 surrogate pair -> 4-byte UTF-8.
  EXPECT_EQ(parse_json(R"("\ud83d\ude00")").as_string(), "\xF0\x9F\x98\x80");
  // BMP non-ASCII escape decodes as 3-byte UTF-8; raw UTF-8 passes through.
  EXPECT_EQ(parse_json(R"("\u20ac")").as_string(), "\xE2\x82\xAC");
  EXPECT_EQ(parse_json("\"\xE2\x82\xAC\"").as_string(), "\xE2\x82\xAC");
  // Lone or malformed surrogates are errors, not silent CESU-8.
  EXPECT_THROW(parse_json(R"("\ud83d")"), JsonParseError);
  EXPECT_THROW(parse_json(R"("\ud83dx")"), JsonParseError);
  EXPECT_THROW(parse_json(R"("\ud83dA")"), JsonParseError);
  EXPECT_THROW(parse_json(R"("\ude00")"), JsonParseError);
}

TEST(JsonParse, WriterOutputRoundTripsByteExactly) {
  JsonWriter w;
  w.begin_object();
  w.key("name").value("a \"quoted\"\nstring");
  w.key("pi").value(3.25);
  w.key("acc").value(0.9666666667);
  w.key("n").value(static_cast<u64>(7));
  w.key("big").value(static_cast<u64>(18446744073709551615ull));
  w.key("list").begin_array().value(1.0).value(2.0).end_array();
  w.key("nested").begin_object().key("ok").value(true).end_object();
  w.key("none").begin_array().end_array();
  w.end_object();

  const JsonValue doc = parse_json(w.str());
  EXPECT_EQ(doc.dump(), w.str());
  // 2^64-1 does not fit a double; the lexeme-exact accessor must survive it.
  EXPECT_EQ(doc.at("big").as_u64(), 18446744073709551615ull);
}

TEST(JsonParse, NumericLexemesArePreserved) {
  // "%.10g" output re-serializes identically even when the double would
  // print differently through a shortest-representation formatter.
  for (const char* lexeme : {"0.9666666667", "3.25", "-1.5e-09", "42", "0"}) {
    const JsonValue v = parse_json(lexeme);
    EXPECT_EQ(v.dump(), lexeme);
  }
}

TEST(JsonParse, WhitespaceTolerant) {
  const JsonValue doc = parse_json("  {\n\t\"a\" : [ 1 , 2 ] ,\r\n \"b\" : { } }  ");
  EXPECT_EQ(doc.at("a").size(), 2u);
  EXPECT_EQ(doc.at("b").size(), 0u);
}

TEST(JsonParse, MalformedInputsThrow) {
  for (const char* bad : {"", "{", "[1,", "{\"a\":}", "{\"a\" 1}", "tru", "nul", "01x",
                          "\"unterminated", "{\"a\":1} trailing", "[1 2]", "\"bad\\q\"",
                          "\"\\u00g0\"", "{'single':1}", "[1,]", "-", "1.", "1e", "007",
                          "-01.5"}) {
    EXPECT_THROW(parse_json(bad), JsonParseError) << "input: " << bad;
  }
}

TEST(JsonParse, AccessorKindMismatchesThrow) {
  const JsonValue doc = parse_json(R"({"a":[1],"s":"x"})");
  EXPECT_THROW(doc.at("s").as_double(), JsonParseError);
  EXPECT_THROW(doc.at("a").as_string(), JsonParseError);
  EXPECT_THROW(doc.at("a").at("k"), JsonParseError);
  EXPECT_THROW(doc.at("s").as_bool(), JsonParseError);
  EXPECT_THROW(doc.at("a")[5], JsonParseError);
}

TEST(JsonParse, AsU64RejectsNegativeAndFractionalLexemes) {
  EXPECT_THROW(parse_json("-7").as_u64(), JsonParseError);
  EXPECT_THROW(parse_json("3.5").as_u64(), JsonParseError);
  EXPECT_THROW(parse_json("1e3").as_u64(), JsonParseError);
  EXPECT_EQ(parse_json("0").as_u64(), 0u);
  EXPECT_DOUBLE_EQ(parse_json("-7").as_double(), -7.0);  // as_double still fine
}

TEST(JsonParse, AsU64RejectsOverflowingLexemes) {
  // strtoull saturates to ULLONG_MAX on overflow; before the ERANGE check a
  // 21-digit lexeme silently loaded as 2^64-1 -- a corrupted counter in a
  // persisted campaign must fail the load instead.
  EXPECT_EQ(parse_json("18446744073709551615").as_u64(), 18446744073709551615ull);
  EXPECT_THROW(parse_json("18446744073709551616").as_u64(), JsonParseError);  // 2^64
  EXPECT_THROW(parse_json("184467440737095516150").as_u64(), JsonParseError);  // 21 digits
  EXPECT_THROW(parse_json("99999999999999999999999999").as_u64(), JsonParseError);
}

TEST(JsonParse, NumbersOverflowingDoubleAreRejected) {
  // strtod saturates to +-inf on overflow; every arithmetic consumer of
  // as_double would propagate it silently. parse_number rejects at the gate.
  EXPECT_THROW(parse_json("1e999"), JsonParseError);
  EXPECT_THROW(parse_json("-1e999"), JsonParseError);
  EXPECT_THROW(parse_json("[1, 2e308]"), JsonParseError);
  // Underflow to zero (or a denormal) is fine -- the value is representable.
  EXPECT_DOUBLE_EQ(parse_json("1e-999").as_double(), 0.0);
  EXPECT_DOUBLE_EQ(parse_json("1.7e308").as_double(), 1.7e308);
}

TEST(JsonParse, ProgrammaticConstructionAndSet) {
  JsonValue obj = JsonValue::object();
  obj.set("x", JsonValue::number(1.5));
  obj.set("x", JsonValue::number(2.5));  // overwrite keeps position
  obj.set("y", JsonValue::string("s"));
  JsonValue arr = JsonValue::array();
  arr.push_back(JsonValue::boolean(true));
  arr.push_back(JsonValue::null());
  obj.set("arr", std::move(arr));
  EXPECT_EQ(obj.dump(), R"({"x":2.5,"y":"s","arr":[true,null]})");
}

}  // namespace
}  // namespace dnnd::sys
