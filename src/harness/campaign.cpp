#include "harness/campaign.hpp"

#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <stdexcept>
#include <thread>

#include "attack/adaptive_attack.hpp"
#include "attack/random_attack.hpp"
#include "attack/tbfa.hpp"
#include "attack/vwa.hpp"
#include "core/priority_profiler.hpp"
#include "defense/software_defenses.hpp"
#include "mapping/weight_mapping.hpp"
#include "nn/gemm.hpp"
#include "nn/simd.hpp"
#include "nn/thread_pool.hpp"
#include "sys/env.hpp"
#include "sys/json.hpp"
#include "system/protected_system.hpp"

namespace dnnd::harness {

namespace {

double now_seconds() {
  using clock = std::chrono::steady_clock;
  return std::chrono::duration<double>(clock::now().time_since_epoch()).count();
}

std::string flips_or_more(usize flips, bool reached_stop) {
  return reached_stop ? std::to_string(flips) : ">" + std::to_string(flips);
}

/// Secured-bit set covering every bit of every weight row (Fig. 1b's
/// full-coverage DNN-Defender deployment).
quant::BitSkipSet all_weight_row_bits(const quant::QuantizedModel& qm,
                                      const dram::DramConfig& dram, usize& rows_out) {
  const mapping::WeightMapping map(qm, dram);
  rows_out = map.weight_rows().size();
  quant::BitSkipSet secured;
  for (const auto& row : map.weight_rows()) {
    const usize count = map.weights_in_row(row);
    for (usize col = 0; col < count; ++col) {
      const auto w = map.weight_at(row, col);
      if (!w.has_value()) continue;
      for (u32 b = 0; b < 8; ++b) secured.insert({w->layer, w->index, b});
    }
  }
  return secured;
}

void run_scenario_impl(const Scenario& sc, ArtifactCache& cache, ScenarioResult& r) {
  const u64 seed = scenario_seed(sc);
  const nn::SplitDataset& data = cache.dataset(sc.dataset);
  const double stop_acc =
      sc.stop_accuracy > 0.0 ? sc.stop_accuracy : 1.1 / data.spec.num_classes;
  auto model = cache.trained_model(sc.dataset, sc.train);
  auto [ax, ay] = data.test.head(sc.attack_batch);
  auto [ex, ey] = data.test.head(sc.eval_batch);

  // ----- training-time software defense (before quantization) -----
  switch (sc.prep) {
    case SoftwarePrep::kNone:
      break;
    case SoftwarePrep::kBinaryFinetune:
      defense::software::binary_finetune(*model, data, sc.prep_epochs, sc.prep_lr,
                                         sc.prep_seed);
      break;
    case SoftwarePrep::kPiecewiseClustering:
      defense::software::piecewise_clustering_finetune(*model, data, sc.prep_lambda,
                                                       sc.prep_epochs, sc.prep_lr,
                                                       sc.prep_seed);
      break;
  }

  // One forward per evaluation point: loss and accuracy share the logits.
  auto eval_acc = [&] { return model->evaluate_batch(ex, ey).accuracy; };

  if (sc.attack == AttackKind::kBinaryBfa) {
    defense::software::BinaryWeightModel bm(*model);
    r.clean_accuracy = eval_acc();
    const auto res =
        defense::software::attack_binary(bm, ax, ay, sc.max_flips, stop_acc);
    r.post_accuracy = eval_acc();
    r.flips = flips_or_more(res.flips, res.reached_stop);
    return;
  }

  quant::QuantizedModel qm(*model);
  if (nn::simd::int8_enabled()) {
    // Freeze activation scales over both batches every later measurement
    // forwards on, so probes and eval share one quantization grid for the
    // whole scenario.
    qm.calibrate_int8(ax);
    qm.calibrate_int8(ex);
  }
  r.clean_accuracy = eval_acc();
  r.total_bits = qm.total_bits();

  switch (sc.attack) {
    case AttackKind::kBfa: {
      if (sc.reconstruction_guard) {
        // Weight reconstruction (Li et al. DAC'20): clamp after every flip.
        const defense::software::ReconstructionGuard guard(qm);
        attack::BfaConfig bcfg = {};
        bcfg.stop_accuracy = stop_acc;
        attack::ProgressiveBitSearch bfa(qm, ax, ay, bcfg);
        usize flips = 0;
        double acc = r.clean_accuracy;
        while (flips < sc.max_flips && acc > stop_acc) {
          if (!bfa.step({}).has_value()) break;
          ++flips;
          guard.apply(qm);
          acc = eval_acc();
        }
        r.post_accuracy = acc;
        r.flips = flips_or_more(flips, acc <= stop_acc);
      } else if (sc.record_trace) {
        // Fig. 1b-style curve: accuracy after every committed flip, stopping
        // at the random-guess level on the eval batch.
        attack::BfaConfig bcfg = {};
        bcfg.max_flips = sc.max_flips;
        attack::ProgressiveBitSearch bfa(qm, ax, ay, bcfg);
        r.trace.push_back(r.clean_accuracy);
        for (usize i = 0; i < sc.max_flips; ++i) {
          if (!bfa.step({}).has_value()) break;
          r.trace.push_back(eval_acc());
          if (r.trace.back() <= stop_acc) break;
        }
        r.post_accuracy = r.trace.back();
        // Same ">N" not-reached marker as the non-trace branch: a budget- or
        // candidate-exhausted attack that never hit stop accuracy must not
        // report a bare count -- dnnd_diff treats the two spellings as
        // different outcomes.
        r.flips = flips_or_more(r.trace.size() - 1, r.trace.back() <= stop_acc);
      } else {
        attack::BfaConfig bcfg = {};
        bcfg.max_flips = sc.max_flips;
        bcfg.stop_accuracy = stop_acc;
        attack::ProgressiveBitSearch bfa(qm, ax, ay, bcfg);
        const auto res = bfa.run();
        r.post_accuracy = eval_acc();
        r.flips = flips_or_more(res.flips.size(), res.reached_stop);
      }
      return;
    }

    case AttackKind::kRandom: {
      attack::RandomBitAttack rnd(qm, sys::Rng(seed));
      const auto res = rnd.run(sc.max_flips, ex, ey, sc.measure_every);
      r.trace = res.accuracy_trace;
      r.post_accuracy = r.trace.empty() ? r.clean_accuracy : r.trace.back();
      r.flips = std::to_string(res.flips.size());
      return;
    }

    case AttackKind::kAdaptive: {
      quant::BitSkipSet secured;
      if (sc.secure_all_weight_rows) {
        secured = all_weight_row_bits(qm, sc.dram, r.secured_rows);
      }
      attack::AdaptiveAttackConfig acfg = {};
      acfg.max_additional_flips = sc.max_flips;
      acfg.measure_every = sc.measure_every;
      attack::AdaptiveWhiteBoxAttack atk(qm, ax, ay, ex, ey, acfg);
      const auto res = atk.run(secured);
      r.trace = res.accuracy_trace;
      r.secured_bits = secured.size();
      r.post_accuracy = r.trace.empty() ? r.clean_accuracy : r.trace.back();
      r.flips = std::to_string(res.landed_flips.size());
      return;
    }

    case AttackKind::kDramWhiteBox: {
      system::ProtectedSystemConfig scfg;
      scfg.dram = sc.dram;
      scfg.seed = seed;
      system::ProtectedSystem psys(qm, scfg);
      if (sc.use_dnn_defender) {
        core::PriorityProfiler profiler(qm, ax, ay);
        psys.install_dnn_defender(profiler.profile_blocked_attacker(sc.profile_bits));
        r.secured_bits = psys.secured_bits().size();
      } else if (sc.mitigation) {
        psys.install_mitigation(sc.mitigation(psys.device(), psys.remapper()));
      }
      // clean_accuracy was measured right after quantization; neither the
      // DRAM upload nor a defense install changes the weights.
      const auto res =
          psys.run_white_box_attack(ax, ay, ex, ey, sc.hw_attempts, stop_acc);
      r.attempts = res.attempts;
      r.landed = res.landed;
      r.blocked = res.blocked;
      r.post_accuracy = res.final_accuracy;
      r.flips =
          std::to_string(res.attempts) + " (" + std::to_string(res.landed) + " landed)";
      return;
    }

    case AttackKind::kVwaLimited: {
      attack::VwaLimitedConfig vcfg = {};
      vcfg.flip_budget = sc.vwa_budget;
      vcfg.stop_accuracy = stop_acc;
      attack::VwaLimitedAttack atk(qm, ax, ay, vcfg);
      const auto res = atk.run();
      r.post_accuracy = eval_acc();
      // The three outcomes get three flips spellings -- all parseable by
      // leading_flip_count, all distinct under the zero-tolerance gate:
      //   "4"          stop accuracy reached in 4 flips,
      //   "4 (budget)" the whole 4-flip budget spent without reaching stop
      //                (the nominal limited-bit result, NOT a failure),
      //   ">2"         candidates dried up after 2 flips, budget unspent.
      switch (res.outcome) {
        case attack::VwaOutcome::kReachedStop:
          r.flips = std::to_string(res.flips.size());
          break;
        case attack::VwaOutcome::kBudgetExhausted:
          r.flips = std::to_string(res.flips.size()) + " (budget)";
          break;
        case attack::VwaOutcome::kCandidatesExhausted:
          r.flips = ">" + std::to_string(res.flips.size());
          break;
      }
      return;
    }

    case AttackKind::kTbfaNTo1:
    case AttackKind::kTbfa1To1:
    case AttackKind::kTbfaStealthy: {
      attack::TbfaConfig tcfg = {};
      tcfg.variant = sc.attack == AttackKind::kTbfaNTo1   ? attack::TbfaVariant::kNTo1
                     : sc.attack == AttackKind::kTbfa1To1 ? attack::TbfaVariant::k1To1
                                                          : attack::TbfaVariant::kStealthy;
      tcfg.source = sc.tbfa_source;
      tcfg.target = sc.tbfa_target;
      tcfg.stealth_tolerance = sc.tbfa_stealth_tol;
      tcfg.max_flips = sc.max_flips;
      attack::TbfaAttack atk(qm, ax, ay, tcfg);
      const auto res = atk.run();
      // One forward over the eval batch yields all three post-attack numbers;
      // pce.accuracy() counts exactly like evaluate_batch, so post_accuracy
      // stays comparable with every other attack kind's.
      nn::PerClassEval pce;
      model->evaluate_batch_per_class(ex, ey, atk.source_class(), tcfg.target, pce);
      r.post_accuracy = pce.accuracy();
      r.attack_success_rate = pce.attack_success_rate();
      r.post_attack_other_acc = pce.other_accuracy();
      r.flips = flips_or_more(res.flips.size(), res.reached_stop);
      return;
    }

    case AttackKind::kBinaryBfa:
      break;  // handled above
  }
  throw std::logic_error("unhandled attack kind");
}

}  // namespace

ScenarioResult CampaignRunner::run_scenario(const Scenario& sc, ArtifactCache& cache) {
  ScenarioResult r;
  r.id = sc.id;
  r.label = sc.label.empty() ? sc.id : sc.label;
  r.model = sc.train.arch +
            (sc.train.width_mult > 1 ? " (x" + std::to_string(sc.train.width_mult) + ")" : "");
  r.defense = sc.defense;
  r.attack = to_string(sc.attack);
  try {
    run_scenario_impl(sc, cache, r);
    r.ok = true;
  } catch (const std::exception& e) {
    r.ok = false;
    r.error = e.what();
  }
  return r;
}

CampaignRunner::CampaignRunner(CampaignConfig cfg) : cfg_(cfg) {}

CampaignResult CampaignRunner::run(const std::vector<Scenario>& scenarios) {
  CampaignResult out;
  out.results.resize(scenarios.size());
  const usize budget = cfg_.threads != 0
                           ? cfg_.threads
                           : std::max(1u, std::thread::hardware_concurrency());
  const usize threads = std::max<usize>(1, std::min(budget, scenarios.size()));
  out.threads_used = threads;
  out.int8_regime = nn::simd::int8_enabled();

  // Split the thread budget between the two parallelism levels: scenario
  // workers first (coarse, embarrassingly parallel), and whatever is left
  // over per worker goes to each scenario's GEMM team -- so a single big
  // scenario still uses the whole budget through the inference engine.
  // Results are byte-identical for every split (both levels are
  // bit-transparent by construction); the guard restores the caller's
  // setting on every exit path, including exceptions (e.g. std::thread
  // construction failing below).
  const nn::gemm::ThreadsGuard gemm_guard;
  const usize gemm_team = std::max<usize>(1, budget / threads);
  nn::gemm::set_threads(gemm_team);
  if (gemm_team > 1) {
    // A region only spawns its own team's workers; provision for all
    // scenario workers' regions running at once.
    nn::ThreadPool::instance().reserve_workers(threads * (gemm_team - 1));
  }

  const double t0 = now_seconds();
  std::atomic<usize> next{0};
  // First on_result failure, if any: captured here (never thrown across a
  // worker thread) and rethrown after the join so the sweep fails loudly.
  std::mutex hook_mu;
  std::string hook_error;
  auto worker = [&] {
    while (true) {
      const usize i = next.fetch_add(1);
      if (i >= scenarios.size()) return;
      const double s0 = now_seconds();
      ScenarioResult res = run_scenario(scenarios[i], cache_);
      res.wall_seconds = now_seconds() - s0;
      if (cfg_.verbose) {
        std::fprintf(stderr, "[campaign] %-32s %s (%.1fs)\n", res.id.c_str(),
                     res.ok ? "ok" : res.error.c_str(), res.wall_seconds);
      }
      if (cfg_.on_result) {
        try {
          cfg_.on_result(res);
        } catch (const std::exception& e) {
          const std::lock_guard<std::mutex> lock(hook_mu);
          if (hook_error.empty()) {
            hook_error = "on_result hook failed for " + res.id + ": " + e.what();
          }
        }
      }
      out.results[i] = std::move(res);
    }
  };

  if (threads == 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(threads);
    for (usize t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& th : pool) th.join();
  }
  out.total_seconds = now_seconds() - t0;
  if (!hook_error.empty()) throw std::runtime_error(hook_error);
  return out;
}

sys::Table CampaignResult::table() const {
  sys::Table t({"scenario", "model", "defense", "attack", "clean acc (%)", "post acc (%)",
                "asr (%)", "other acc (%)", "flips"});
  for (const auto& r : results) {
    // ASR / other-class accuracy only mean something for the targeted family;
    // a dash keeps the untargeted rows from reading as 0% success.
    const bool targeted = r.attack.rfind("tbfa", 0) == 0;
    t.add_row({r.id, r.model, r.defense, r.attack, sys::fmt(100.0 * r.clean_accuracy, 2),
               sys::fmt(100.0 * r.post_accuracy, 2),
               targeted ? sys::fmt(100.0 * r.attack_success_rate, 2) : "-",
               targeted ? sys::fmt(100.0 * r.post_attack_other_acc, 2) : "-",
               r.ok ? r.flips : "ERROR: " + r.error});
  }
  return t;
}

void scenario_result_to_json(sys::JsonWriter& w, const ScenarioResult& r,
                             bool include_timing) {
  w.begin_object();
  w.key("id").value(r.id);
  w.key("label").value(r.label);
  w.key("model").value(r.model);
  w.key("defense").value(r.defense);
  w.key("attack").value(r.attack);
  w.key("ok").value(r.ok);
  if (!r.ok) w.key("error").value(r.error);
  w.key("clean_accuracy").value(r.clean_accuracy);
  w.key("post_accuracy").value(r.post_accuracy);
  w.key("attack_success_rate").value(r.attack_success_rate);
  w.key("post_attack_other_acc").value(r.post_attack_other_acc);
  w.key("flips").value(r.flips);
  w.key("attempts").value(r.attempts);
  w.key("landed").value(r.landed);
  w.key("blocked").value(r.blocked);
  w.key("secured_bits").value(r.secured_bits);
  w.key("secured_rows").value(r.secured_rows);
  w.key("total_bits").value(r.total_bits);
  w.key("trace").begin_array();
  for (const double v : r.trace) w.value(v);
  w.end_array();
  if (include_timing) w.key("wall_seconds").value(r.wall_seconds);
  w.end_object();
}

std::string CampaignResult::to_json(bool include_timing) const {
  sys::JsonWriter w;
  w.begin_object();
  if (include_timing) {
    w.key("threads").value(threads_used);
    w.key("total_seconds").value(total_seconds);
  }
  // Regime marker, present only when the integer regime produced the numbers:
  // default-regime documents stay byte-identical to every pre-int8 baseline.
  if (int8_regime) w.key("int8").value(true);
  w.key("scenarios").begin_array();
  for (const auto& r : results) scenario_result_to_json(w, r, include_timing);
  w.end_array();
  w.end_object();
  return w.str();
}

const ScenarioResult& CampaignResult::by_id(std::string_view id) const {
  for (const auto& r : results) {
    if (r.id == id) return r;
  }
  throw std::out_of_range("no scenario result with id: " + std::string(id));
}

usize env_threads() { return sys::env_usize("DNND_THREADS", 0); }

namespace {

/// at() with a loader-specific error: names the missing field AND where it
/// was expected, so a truncated baseline fails loudly instead of loading as
/// a plausible-looking campaign.
const sys::JsonValue& require_field(const sys::JsonValue& obj, std::string_view key,
                                    const std::string& where) {
  if (!obj.is_object() || !obj.contains(key)) {
    throw sys::JsonParseError("campaign_from_json: missing required field \"" +
                              std::string(key) + "\" in " + where);
  }
  return obj.at(key);
}

}  // namespace

ScenarioResult scenario_result_from_json(const sys::JsonValue& s, bool expect_timing,
                                         const std::string& where) {
  ScenarioResult r;
  r.id = require_field(s, "id", where).as_string();
  r.label = require_field(s, "label", where).as_string();
  r.model = require_field(s, "model", where).as_string();
  r.defense = require_field(s, "defense", where).as_string();
  r.attack = require_field(s, "attack", where).as_string();
  r.ok = require_field(s, "ok", where).as_bool();
  // to_json writes "error" exactly when the scenario failed.
  if (!r.ok) r.error = require_field(s, "error", where).as_string();
  r.clean_accuracy = require_field(s, "clean_accuracy", where).as_double();
  r.post_accuracy = require_field(s, "post_accuracy", where).as_double();
  r.attack_success_rate = require_field(s, "attack_success_rate", where).as_double();
  r.post_attack_other_acc = require_field(s, "post_attack_other_acc", where).as_double();
  r.flips = require_field(s, "flips", where).as_string();
  r.attempts = static_cast<usize>(require_field(s, "attempts", where).as_u64());
  r.landed = static_cast<usize>(require_field(s, "landed", where).as_u64());
  r.blocked = static_cast<usize>(require_field(s, "blocked", where).as_u64());
  r.secured_bits = static_cast<usize>(require_field(s, "secured_bits", where).as_u64());
  r.secured_rows = static_cast<usize>(require_field(s, "secured_rows", where).as_u64());
  r.total_bits = require_field(s, "total_bits", where).as_u64();
  for (const sys::JsonValue& v : require_field(s, "trace", where).items()) {
    r.trace.push_back(v.as_double());
  }
  if (expect_timing) r.wall_seconds = require_field(s, "wall_seconds", where).as_double();
  return r;
}

CampaignResult campaign_from_json(std::string_view json) {
  const sys::JsonValue doc = sys::parse_json(json);

  CampaignResult out;
  // to_json writes the timing fields as a unit (include_timing on or off);
  // half-present timing means a truncated or hand-edited document, which
  // must not load as a valid campaign with defaulted numbers.
  const bool timed = doc.contains("threads") || doc.contains("total_seconds");
  if (timed) {
    out.threads_used = static_cast<usize>(require_field(doc, "threads", "document").as_u64());
    out.total_seconds = require_field(doc, "total_seconds", "document").as_double();
  }
  if (doc.contains("int8")) out.int8_regime = doc.at("int8").as_bool();

  for (const sys::JsonValue& s : require_field(doc, "scenarios", "document").items()) {
    const std::string where =
        "scenario " + (s.is_object() && s.contains("id") ? s.at("id").as_string()
                                                         : std::to_string(out.results.size()));
    out.results.push_back(scenario_result_from_json(s, timed, where));
  }
  return out;
}

}  // namespace dnnd::harness
