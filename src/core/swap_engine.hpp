// The four-step in-DRAM swap of Fig. 5 -- DNN-Defender's core primitive.
//
//   step 1: random row  -> reserved row   (RowClone AAP)
//   step 2: target row  -> random row's position
//   step 3: reserved    -> target row's old position
//   step 4: non-target  -> reserved row   (refreshes the non-target and
//           stages it as the *next* swap's random row, so step 1 of swap
//           n+1 overlaps step 4 of swap n -- Fig. 6 pipelining)
//
// Net effect per swap: the target row's cells are rewritten (disturbance
// reset), its physical position changes (the attacker must re-target and
// re-massage), the displaced row's data is preserved, and one non-target
// victim row gets a free refresh. Steady-state cost: 3 x T_AAP = 270 ns,
// the paper's T_swap.
#pragma once

#include <unordered_map>

#include "dram/dram_device.hpp"
#include "dram/row_remapper.hpp"
#include "sys/rng.hpp"

namespace dnnd::core {

struct SwapStats {
  u64 swaps = 0;          ///< completed four-step protections
  u64 aaps = 0;           ///< RowClone pairs issued
  u64 cold_swaps = 0;     ///< swaps that needed their own step 1 (no staging)
  u64 staged_swaps = 0;   ///< swaps that reused a staged non-target (pipelined)
};

class SwapEngine {
 public:
  /// `reserved_rows` rows at the top of each subarray form the reserved
  /// region; the engine uses the last row as its bounce buffer.
  SwapEngine(dram::DramDevice& device, dram::RowRemapper& remap, u32 reserved_rows = 1);

  /// Physical row index of the bounce buffer in every subarray.
  [[nodiscard]] u32 reserved_row_index() const;
  /// First row index of the reserved region (rows >= this are reserved).
  [[nodiscard]] u32 reserved_base() const;

  /// Performs one protection swap for `target_logical`. If `non_target_logical`
  /// is non-null and currently resides in the same physical subarray, it is
  /// refreshed and staged for the next swap (step 4). Returns the number of
  /// AAPs issued (3 when a staged row was available, 4 cold).
  u32 protect(const dram::RowAddr& target_logical, const dram::RowAddr* non_target_logical,
              sys::Rng& rng);

  /// Drops all staged state (e.g., at refresh-window boundaries).
  void reset_pipeline() { staged_.clear(); }

  [[nodiscard]] const SwapStats& stats() const { return stats_; }

 private:
  struct Staged {
    dram::RowAddr logical;  ///< row whose data sits in the reserved buffer
  };
  [[nodiscard]] u64 subarray_key(u32 bank, u32 subarray) const;

  dram::DramDevice& device_;
  dram::RowRemapper& remap_;
  u32 reserved_rows_;
  std::unordered_map<u64, Staged> staged_;  ///< per-subarray staged non-target
  SwapStats stats_;
};

}  // namespace dnnd::core
