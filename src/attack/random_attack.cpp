#include "attack/random_attack.hpp"

#include <stdexcept>

namespace dnnd::attack {

quant::BitLocation RandomBitAttack::flip_one(const quant::BitSkipSet& skip) {
  const u64 total_bits = qm_.total_bits();
  for (;;) {
    u64 flat = rng_.uniform(total_bits);
    const u32 bit = static_cast<u32>(flat % 8);
    u64 widx = flat / 8;
    usize layer = 0;
    while (widx >= qm_.layer(layer).size()) {
      widx -= qm_.layer(layer).size();
      ++layer;
    }
    const quant::BitLocation loc{layer, static_cast<usize>(widx), bit};
    if (skip.contains(loc)) continue;
    qm_.flip(loc);
    return loc;
  }
}

RandomAttackResult RandomBitAttack::run(usize n_flips, const nn::Tensor& x,
                                        const std::vector<u32>& y, usize measure_every) {
  if (measure_every == 0) {
    // i % 0 below is undefined behavior, not "measure never".
    throw std::invalid_argument("random attack: measure_every must be nonzero");
  }
  RandomAttackResult result;
  qm_.ensure_int8_calibrated(x);  // no-op in the default float regime
  // Every measurement is on the same batch: after the first full forward,
  // each one re-runs only the layers below the earliest flip since the last
  // measurement (byte-identical to a full evaluate_batch).
  result.accuracy_trace.push_back(qm_.model().evaluate_batch_incremental(x, y).accuracy);
  for (usize i = 1; i <= n_flips; ++i) {
    result.flips.push_back(flip_one());
    if (i % measure_every == 0 || i == n_flips) {
      result.accuracy_trace.push_back(qm_.model().evaluate_batch_incremental(x, y).accuracy);
    }
  }
  return result;
}

}  // namespace dnnd::attack
