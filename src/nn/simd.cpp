#include "nn/simd.hpp"

#include <atomic>

#include "sys/env.hpp"

#if defined(__x86_64__) || defined(__i386__)
#include <immintrin.h>
#define DNND_SIMD_X86 1
#endif

#if defined(__aarch64__)
#include <arm_neon.h>
#define DNND_SIMD_NEON 1
#endif

namespace dnnd::nn::simd {

namespace {

constexpr usize kNr = 8;  ///< lanes per panel line, matching gemm's panel width
constexpr usize kMr = 8;  ///< A rows per register tile

// ---- scalar reference microkernels -----------------------------------------
// These ARE the semantics: every other variant below performs the same IEEE
// multiply and add per (i, k, r), k strictly ascending per accumulator. The
// build compiles with -ffp-contract=off, so `acc += av * p[r]` can never be
// silently fused into an FMA behind the contract's back.

void tile8_scalar(usize K, const float* const* a, const float* panel, float* acc) {
  for (usize k = 0; k < K; ++k, panel += kNr) {
    for (usize i = 0; i < kMr; ++i) {
      const float av = a[i][k];
      float* c = acc + i * kNr;
      for (usize r = 0; r < kNr; ++r) c[r] += av * panel[r];
    }
  }
}

void row1_scalar(usize K, const float* a, const float* panel, float* acc) {
  for (usize k = 0; k < K; ++k, panel += kNr) {
    const float av = a[k];
    for (usize r = 0; r < kNr; ++r) acc[r] += av * panel[r];
  }
}

// ---- AVX2 -------------------------------------------------------------------
// One ymm register per A row holds all eight column accumulators; each k step
// loads one panel line and broadcasts one A element per row. mul then add as
// two distinct instructions keeps the two-rounding scalar semantics; the
// *_fma variants are the opt-in single-rounding fast path.

#ifdef DNND_SIMD_X86

__attribute__((target("avx2"))) void tile8_avx2(usize K, const float* const* a,
                                                const float* panel, float* acc) {
  __m256 c[kMr];
  for (usize i = 0; i < kMr; ++i) c[i] = _mm256_loadu_ps(acc + i * kNr);
  for (usize k = 0; k < K; ++k, panel += kNr) {
    const __m256 b = _mm256_loadu_ps(panel);
    for (usize i = 0; i < kMr; ++i) {
      c[i] = _mm256_add_ps(c[i], _mm256_mul_ps(_mm256_set1_ps(a[i][k]), b));
    }
  }
  for (usize i = 0; i < kMr; ++i) _mm256_storeu_ps(acc + i * kNr, c[i]);
}

__attribute__((target("avx2"))) void row1_avx2(usize K, const float* a, const float* panel,
                                               float* acc) {
  __m256 c = _mm256_loadu_ps(acc);
  for (usize k = 0; k < K; ++k, panel += kNr) {
    c = _mm256_add_ps(c, _mm256_mul_ps(_mm256_set1_ps(a[k]), _mm256_loadu_ps(panel)));
  }
  _mm256_storeu_ps(acc, c);
}

__attribute__((target("avx2,fma"))) void tile8_avx2_fma(usize K, const float* const* a,
                                                        const float* panel, float* acc) {
  __m256 c[kMr];
  for (usize i = 0; i < kMr; ++i) c[i] = _mm256_loadu_ps(acc + i * kNr);
  for (usize k = 0; k < K; ++k, panel += kNr) {
    const __m256 b = _mm256_loadu_ps(panel);
    for (usize i = 0; i < kMr; ++i) {
      c[i] = _mm256_fmadd_ps(_mm256_set1_ps(a[i][k]), b, c[i]);
    }
  }
  for (usize i = 0; i < kMr; ++i) _mm256_storeu_ps(acc + i * kNr, c[i]);
}

__attribute__((target("avx2,fma"))) void row1_avx2_fma(usize K, const float* a,
                                                       const float* panel, float* acc) {
  __m256 c = _mm256_loadu_ps(acc);
  for (usize k = 0; k < K; ++k, panel += kNr) {
    c = _mm256_fmadd_ps(_mm256_set1_ps(a[k]), _mm256_loadu_ps(panel), c);
  }
  _mm256_storeu_ps(acc, c);
}

#endif  // DNND_SIMD_X86

// ---- NEON -------------------------------------------------------------------
// Eight lanes = two q registers per A row. vmul+vadd (not vmla, which the
// compiler may emit as fused FMLA) for the bit-transparent path; vfma for the
// opt-in fast path.

#ifdef DNND_SIMD_NEON

void tile8_neon(usize K, const float* const* a, const float* panel, float* acc) {
  float32x4_t lo[kMr], hi[kMr];
  for (usize i = 0; i < kMr; ++i) {
    lo[i] = vld1q_f32(acc + i * kNr);
    hi[i] = vld1q_f32(acc + i * kNr + 4);
  }
  for (usize k = 0; k < K; ++k, panel += kNr) {
    const float32x4_t blo = vld1q_f32(panel), bhi = vld1q_f32(panel + 4);
    for (usize i = 0; i < kMr; ++i) {
      const float32x4_t av = vdupq_n_f32(a[i][k]);
      lo[i] = vaddq_f32(lo[i], vmulq_f32(av, blo));
      hi[i] = vaddq_f32(hi[i], vmulq_f32(av, bhi));
    }
  }
  for (usize i = 0; i < kMr; ++i) {
    vst1q_f32(acc + i * kNr, lo[i]);
    vst1q_f32(acc + i * kNr + 4, hi[i]);
  }
}

void row1_neon(usize K, const float* a, const float* panel, float* acc) {
  float32x4_t lo = vld1q_f32(acc), hi = vld1q_f32(acc + 4);
  for (usize k = 0; k < K; ++k, panel += kNr) {
    const float32x4_t av = vdupq_n_f32(a[k]);
    lo = vaddq_f32(lo, vmulq_f32(av, vld1q_f32(panel)));
    hi = vaddq_f32(hi, vmulq_f32(av, vld1q_f32(panel + 4)));
  }
  vst1q_f32(acc, lo);
  vst1q_f32(acc + 4, hi);
}

void tile8_neon_fma(usize K, const float* const* a, const float* panel, float* acc) {
  float32x4_t lo[kMr], hi[kMr];
  for (usize i = 0; i < kMr; ++i) {
    lo[i] = vld1q_f32(acc + i * kNr);
    hi[i] = vld1q_f32(acc + i * kNr + 4);
  }
  for (usize k = 0; k < K; ++k, panel += kNr) {
    const float32x4_t blo = vld1q_f32(panel), bhi = vld1q_f32(panel + 4);
    for (usize i = 0; i < kMr; ++i) {
      const float32x4_t av = vdupq_n_f32(a[i][k]);
      lo[i] = vfmaq_f32(lo[i], av, blo);
      hi[i] = vfmaq_f32(hi[i], av, bhi);
    }
  }
  for (usize i = 0; i < kMr; ++i) {
    vst1q_f32(acc + i * kNr, lo[i]);
    vst1q_f32(acc + i * kNr + 4, hi[i]);
  }
}

void row1_neon_fma(usize K, const float* a, const float* panel, float* acc) {
  float32x4_t lo = vld1q_f32(acc), hi = vld1q_f32(acc + 4);
  for (usize k = 0; k < K; ++k, panel += kNr) {
    const float32x4_t av = vdupq_n_f32(a[k]);
    lo = vfmaq_f32(lo, av, vld1q_f32(panel));
    hi = vfmaq_f32(hi, av, vld1q_f32(panel + 4));
  }
  vst1q_f32(acc, lo);
  vst1q_f32(acc + 4, hi);
}

#endif  // DNND_SIMD_NEON

// ---- dispatch ---------------------------------------------------------------

std::atomic<int> g_scalar_override{-1};  ///< -1 env, 0 simd on, 1 scalar
std::atomic<int> g_fma_override{-1};     ///< -1 env, 0 off, 1 on

/// CPUID results never change mid-process; probe once.
struct CpuCaps {
  Isa isa = Isa::kScalar;
  bool fma = false;
};

CpuCaps detect_caps() {
  CpuCaps caps;
#if defined(DNND_SIMD_X86)
  if (__builtin_cpu_supports("avx2")) {
    caps.isa = Isa::kAvx2;
    caps.fma = __builtin_cpu_supports("fma");
  }
#elif defined(DNND_SIMD_NEON)
  caps.isa = Isa::kNeon;
  caps.fma = true;
#endif
  return caps;
}

const CpuCaps& caps() {
  static const CpuCaps c = detect_caps();
  return c;
}

}  // namespace

const char* isa_name(Isa isa) {
  switch (isa) {
    case Isa::kScalar: return "scalar";
    case Isa::kAvx2: return "avx2";
    case Isa::kNeon: return "neon";
  }
  return "scalar";
}

Isa best_isa() { return caps().isa; }

void set_scalar_override(int v) { g_scalar_override.store(v, std::memory_order_relaxed); }
int scalar_override() { return g_scalar_override.load(std::memory_order_relaxed); }

bool force_scalar() {
  const int v = g_scalar_override.load(std::memory_order_relaxed);
  if (v >= 0) return v != 0;
  return sys::env_usize("DNND_SIMD", 1) == 0;
}

void set_fma_override(int v) { g_fma_override.store(v, std::memory_order_relaxed); }
int fma_override() { return g_fma_override.load(std::memory_order_relaxed); }

bool fma_enabled() {
  const int v = g_fma_override.load(std::memory_order_relaxed);
  if (v >= 0) return v != 0;
  return sys::env_usize("DNND_FMA", 0) != 0;
}

Isa active_isa() { return force_scalar() ? Isa::kScalar : best_isa(); }

Kernels active_kernels() {
  const Isa isa = active_isa();
  const bool fuse = fma_enabled() && caps().fma;
  switch (isa) {
#ifdef DNND_SIMD_X86
    case Isa::kAvx2:
      if (fuse) return {tile8_avx2_fma, row1_avx2_fma, isa, true};
      return {tile8_avx2, row1_avx2, isa, false};
#endif
#ifdef DNND_SIMD_NEON
    case Isa::kNeon:
      if (fuse) return {tile8_neon_fma, row1_neon_fma, isa, true};
      return {tile8_neon, row1_neon, isa, false};
#endif
    default:
      break;
  }
  // Scalar never fuses: the fast path only exists where a fused instruction
  // does, and the scalar path doubles as the byte-identity reference.
  return {tile8_scalar, row1_scalar, Isa::kScalar, false};
}

}  // namespace dnnd::nn::simd
