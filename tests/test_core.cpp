#include <gtest/gtest.h>

#include <set>

#include "core/dnn_defender.hpp"
#include "core/priority_profiler.hpp"
#include "core/security_model.hpp"
#include "core/swap_scheduler.hpp"
#include "rowhammer/attacker.hpp"
#include "test_util.hpp"

namespace dnnd::core {
namespace {

using dram::DramConfig;
using dram::DramDevice;
using dram::RowAddr;
using dram::RowRemapper;
using namespace dnnd::time_literals;

// -------------------------------------------------------------- SwapEngine --

class SwapEngineFixture : public ::testing::Test {
 protected:
  SwapEngineFixture()
      : cfg_(DramConfig::sim_small()), dev_(cfg_), remap_(cfg_.geo), engine_(dev_, remap_),
        rng_(3) {}

  void fill_logical(const RowAddr& logical, u8 value) {
    std::vector<u8> data(cfg_.geo.row_bytes, value);
    dev_.poke_row(remap_.to_physical(logical), data);
  }

  u8 first_byte(const RowAddr& logical) { return dev_.peek(remap_.to_physical(logical), 0); }

  DramConfig cfg_;
  DramDevice dev_;
  RowRemapper remap_;
  SwapEngine engine_;
  sys::Rng rng_;
};

TEST_F(SwapEngineFixture, ColdSwapCostsFourAaps) {
  const RowAddr target{0, 0, 10};
  const RowAddr non_target{0, 0, 20};
  const u32 aaps = engine_.protect(target, &non_target, rng_);
  EXPECT_EQ(aaps, 4u);  // step 1 + steps 2-4
  EXPECT_EQ(engine_.stats().cold_swaps, 1u);
}

TEST_F(SwapEngineFixture, WarmSwapCostsThreeAaps) {
  const RowAddr t1{0, 0, 10}, t2{0, 0, 14};
  const RowAddr n1{0, 0, 20}, n2{0, 0, 24};
  engine_.protect(t1, &n1, rng_);
  const u32 aaps = engine_.protect(t2, &n2, rng_);
  EXPECT_EQ(aaps, 3u);  // staged non-target serves as step 1
  EXPECT_EQ(engine_.stats().staged_swaps, 1u);
}

TEST_F(SwapEngineFixture, SteadyStateMatchesPaperTswap) {
  // Over many swaps the marginal cost converges to 3 AAPs = T_swap.
  std::vector<RowAddr> targets, nts;
  for (u32 i = 0; i < 8; ++i) {
    targets.push_back({0, 0, 4 + i * 2});
    nts.push_back({0, 0, 30 + i * 2});
  }
  for (int round = 0; round < 4; ++round) {
    for (usize i = 0; i < targets.size(); ++i) {
      engine_.protect(targets[i], &nts[i], rng_);
    }
  }
  const auto& st = engine_.stats();
  const double avg_aaps = static_cast<double>(st.aaps) / static_cast<double>(st.swaps);
  EXPECT_LT(avg_aaps, 3.1);
  EXPECT_GE(avg_aaps, 3.0);
}

TEST_F(SwapEngineFixture, LogicalDataSurvivesSwaps) {
  const RowAddr target{0, 0, 10};
  const RowAddr non_target{0, 0, 20};
  fill_logical(target, 0xAA);
  fill_logical(non_target, 0xBB);
  for (int i = 0; i < 5; ++i) engine_.protect(target, &non_target, rng_);
  EXPECT_EQ(first_byte(target), 0xAA) << "target data lost through swap chain";
  EXPECT_EQ(first_byte(non_target), 0xBB) << "non-target data lost through staging";
}

TEST_F(SwapEngineFixture, RandomRowDataSurvivesColdSwap) {
  // Whatever random row the cold path picks, its data must be preserved.
  std::vector<u8> fingerprint(cfg_.geo.row_bytes);
  for (u32 r = 0; r < engine_.reserved_base(); ++r) {
    for (usize c = 0; c < fingerprint.size(); ++c) {
      fingerprint[c] = static_cast<u8>(r * 7 + c);
    }
    dev_.poke_row({0, 1, r}, fingerprint);
  }
  const RowAddr target{0, 1, 10};
  engine_.protect(target, nullptr, rng_);
  for (u32 r = 0; r < engine_.reserved_base(); ++r) {
    const RowAddr phys = remap_.to_physical(RowAddr{0, 1, r});
    EXPECT_EQ(dev_.peek(phys, 0), static_cast<u8>(r * 7)) << "row " << r << " corrupted";
  }
}

TEST_F(SwapEngineFixture, SwapRelocatesTarget) {
  const RowAddr target{0, 0, 10};
  engine_.protect(target, nullptr, rng_);
  EXPECT_FALSE(remap_.to_physical(target) == target);
}

TEST_F(SwapEngineFixture, SwapResetsVictimDisturbance) {
  rowhammer::HammerModel hammer(dev_, rowhammer::HammerModelConfig{});
  const RowAddr target{0, 0, 10};
  // Build up disturbance near the threshold.
  rowhammer::HammerAttacker attacker(dev_, sys::Rng(1));
  const RowAddr aggs[2] = {{0, 0, 9}, {0, 0, 11}};
  attacker.hammer(aggs, 500);
  ASSERT_GT(hammer.disturbance(target), 0u);
  engine_.protect(target, nullptr, rng_);
  // The swap's own RowClone ACTs may deposit a disturbance or two on the
  // relocated row when the random row happens to neighbour the target --
  // physically real and harmless (threshold is hundreds).
  EXPECT_LE(hammer.disturbance(remap_.to_physical(target)), 2u);
}

TEST_F(SwapEngineFixture, ResetPipelineForcesColdSwap) {
  const RowAddr t1{0, 0, 10}, n1{0, 0, 20};
  engine_.protect(t1, &n1, rng_);
  engine_.reset_pipeline();
  const u32 aaps = engine_.protect(t1, &n1, rng_);
  EXPECT_EQ(aaps, 4u);
}

// ----------------------------------------------------------- SwapScheduler --

TEST(SwapTimeline, PipelinedMakespanIs3NPlus1) {
  const Picoseconds t_aap = 90'000;
  for (usize n : {1u, 2u, 5u, 10u}) {
    const Timeline tl = build_swap_timeline(n, t_aap, /*pipelined=*/true);
    EXPECT_EQ(tl.makespan, static_cast<Picoseconds>(3 * n + 1) * t_aap) << n;
    EXPECT_EQ(tl.op_count(), 3 * n + 1);
  }
}

TEST(SwapTimeline, SerialMakespanIs4N) {
  const Picoseconds t_aap = 90'000;
  for (usize n : {1u, 2u, 5u, 10u}) {
    const Timeline tl = build_swap_timeline(n, t_aap, /*pipelined=*/false);
    EXPECT_EQ(tl.makespan, static_cast<Picoseconds>(4 * n) * t_aap);
  }
}

TEST(SwapTimeline, OpsAreContiguousAndOrdered) {
  const Timeline tl = build_swap_timeline(3, 90'000, true);
  for (usize i = 1; i < tl.ops.size(); ++i) {
    EXPECT_EQ(tl.ops[i].start, tl.ops[i - 1].end);
  }
  EXPECT_EQ(tl.ops.front().step, 1u);
}

TEST(SwapSchedule, IntervalDividesWindow) {
  sys::LatencyParams timing;
  const Picoseconds interval = swap_interval_for(10, timing, 4800);
  EXPECT_EQ(interval, timing.t_act * 4800 / 10);
  EXPECT_GT(interval, timing.t_swap());
}

TEST(SwapSchedule, InfeasibleWhenTooManyTargets) {
  sys::LatencyParams timing;
  const u64 max_rows = max_protected_rows(timing, 4800);
  EXPECT_EQ(max_rows, static_cast<u64>(timing.t_act * 4800 / timing.t_swap()));
  EXPECT_EQ(swap_interval_for(max_rows * 2, timing, 4800), 0);
  EXPECT_GT(swap_interval_for(max_rows - 1, timing, 4800), 0);
}

// ------------------------------------------------------------- DnnDefender --

class DefenderFixture : public ::testing::Test {
 protected:
  DefenderFixture() : cfg_(make_cfg()), dev_(cfg_), remap_(cfg_.geo) {}

  static DramConfig make_cfg() {
    DramConfig cfg = DramConfig::sim_small();
    cfg.t_rh = 600;
    return cfg;
  }

  DramConfig cfg_;
  DramDevice dev_;
  RowRemapper remap_;
};

TEST_F(DefenderFixture, SwapsHappenOnSchedule) {
  DnnDefender dd(dev_, remap_);
  dd.set_protected_rows({{0, 0, 10}, {0, 1, 10}}, {{0, 0, 20}, {0, 1, 20}});
  EXPECT_TRUE(dd.schedule_feasible());
  // Advance a full window and pump the tick.
  const Picoseconds window = cfg_.timing.t_act * cfg_.t_rh;
  dev_.advance(window);
  dd.tick();
  EXPECT_GE(dd.swap_stats().swaps, 2u) << "each target must be swapped once per window";
}

TEST_F(DefenderFixture, NoTargetsNoSwaps) {
  DnnDefender dd(dev_, remap_);
  dev_.advance(10_ms);
  dd.tick();
  EXPECT_EQ(dd.swap_stats().swaps, 0u);
}

TEST_F(DefenderFixture, IsTargetMatchesInstalledRows) {
  DnnDefender dd(dev_, remap_);
  dd.set_protected_rows({{0, 0, 10}}, {});
  EXPECT_TRUE(dd.is_target({0, 0, 10}));
  EXPECT_FALSE(dd.is_target({0, 0, 11}));
}

TEST_F(DefenderFixture, BlocksWhiteBoxHammer) {
  rowhammer::HammerModelConfig hcfg;
  hcfg.p_vulnerable = 0.2;
  rowhammer::HammerModel hammer(dev_, hcfg);
  DnnDefender dd(dev_, remap_);
  const RowAddr victim{0, 1, 20};
  dd.set_protected_rows({victim}, {{0, 1, 30}});
  rowhammer::HammerAttacker attacker(dev_, sys::Rng(5));
  attacker.set_post_act_hook([&dd] { dd.tick(); });
  std::vector<u8> ones(cfg_.geo.row_bytes, 0xFF);
  dev_.write_row(remap_.to_physical(victim), ones);
  // White-box attacker: chases the victim's physical location each burst.
  for (int burst = 0; burst < 40; ++burst) {
    const RowAddr phys = remap_.to_physical(victim);
    if (phys.row == 0 || phys.row + 1 >= cfg_.geo.rows_per_subarray) continue;
    attacker.double_sided(phys, cfg_.t_rh / 4);
  }
  // Verdict on the victim's *data*, wherever the defense moved it.
  bool corrupted = false;
  for (u8 b : dev_.peek_row(remap_.to_physical(victim))) corrupted |= (b != 0xFF);
  EXPECT_FALSE(corrupted) << "DNN-Defender failed to protect the target row";
  EXPECT_GT(dd.swap_stats().swaps, 0u);
}

TEST_F(DefenderFixture, UnprotectedRowStillBreaks) {
  rowhammer::HammerModelConfig hcfg;
  hcfg.p_vulnerable = 0.2;
  rowhammer::HammerModel hammer(dev_, hcfg);
  DnnDefender dd(dev_, remap_);
  dd.set_protected_rows({{0, 0, 10}}, {});  // protect a different row
  rowhammer::HammerAttacker attacker(dev_, sys::Rng(5));
  attacker.set_post_act_hook([&dd] { dd.tick(); });
  std::vector<u8> ones(cfg_.geo.row_bytes, 0xFF);
  const RowAddr victim{0, 1, 20};
  dev_.write_row(victim, ones);
  const auto res = attacker.double_sided(victim, 3 * cfg_.t_rh);
  EXPECT_TRUE(res.any_flip()) << "defense scope should be limited to targets";
}

TEST_F(DefenderFixture, StagingDisabledStillProtects) {
  rowhammer::HammerModelConfig hcfg;
  hcfg.p_vulnerable = 0.2;
  rowhammer::HammerModel hammer(dev_, hcfg);
  DnnDefenderConfig dcfg;
  dcfg.enable_staging = false;
  DnnDefender dd(dev_, remap_, dcfg);
  const RowAddr victim{0, 1, 20};
  dd.set_protected_rows({victim}, {{0, 1, 30}});
  rowhammer::HammerAttacker attacker(dev_, sys::Rng(5));
  attacker.set_post_act_hook([&dd] { dd.tick(); });
  std::vector<u8> ones(cfg_.geo.row_bytes, 0xFF);
  dev_.write_row(victim, ones);
  for (int burst = 0; burst < 20; ++burst) {
    const RowAddr phys = remap_.to_physical(victim);
    if (phys.row == 0 || phys.row + 1 >= cfg_.geo.rows_per_subarray) continue;
    attacker.double_sided(phys, cfg_.t_rh / 4);
  }
  bool corrupted = false;
  for (u8 b : dev_.peek_row(remap_.to_physical(victim))) corrupted |= (b != 0xFF);
  EXPECT_FALSE(corrupted);
  // Serial swaps: every swap is cold (4 AAPs).
  EXPECT_EQ(dd.swap_stats().staged_swaps, 0u);
}

TEST_F(DefenderFixture, ZeroTargetsIsFeasibleAndInert) {
  DnnDefender dd(dev_, remap_);
  dd.set_protected_rows({}, {});
  EXPECT_TRUE(dd.schedule_feasible());
  EXPECT_EQ(dd.swap_interval(), 0);
  dev_.advance(10_ms);
  dd.tick();
  dev_.advance(10_ms);
  dd.tick();
  EXPECT_EQ(dd.swap_stats().swaps, 0u);
  EXPECT_EQ(dd.stats().maintenance_ops, 0u);
  EXPECT_TRUE(remap_.is_identity());
}

TEST_F(DefenderFixture, InfeasibleScheduleTicksBestEffort) {
  DnnDefender dd(dev_, remap_);
  // More targets than the hammer window has swap slots for: the schedule is
  // infeasible and the defender degrades to best-effort at the rate limit.
  const u64 budget = max_protected_rows(cfg_.timing, cfg_.t_rh);
  std::vector<RowAddr> targets;
  std::vector<RowAddr> non_targets;
  for (u32 bank = 0; bank < cfg_.geo.banks && targets.size() <= 2 * budget; ++bank) {
    for (u32 sa = 0; sa < cfg_.geo.subarrays_per_bank; ++sa) {
      for (u32 row = 0; row + 8 < cfg_.geo.rows_per_subarray; row += 2) {
        targets.push_back({bank, sa, row});
        non_targets.push_back({bank, sa, row + 1});
      }
    }
  }
  ASSERT_GT(targets.size(), budget);
  dd.set_protected_rows(targets, non_targets);
  EXPECT_FALSE(dd.schedule_feasible());
  EXPECT_EQ(dd.swap_interval(), cfg_.timing.t_swap()) << "best-effort at the rate limit";
  // Must make forward progress without faulting or spinning forever.
  dev_.advance(cfg_.timing.t_act * cfg_.t_rh / 4);
  dd.tick();
  EXPECT_GT(dd.swap_stats().swaps, 0u);
  dev_.advance(cfg_.timing.t_act * cfg_.t_rh / 4);
  dd.tick();
  EXPECT_GT(dd.stats().maintenance_ops, 1u);
}

TEST_F(DefenderFixture, StagingDisabledAblationTicksCleanly) {
  DnnDefenderConfig dcfg;
  dcfg.enable_staging = false;
  DnnDefender dd(dev_, remap_, dcfg);
  dd.set_protected_rows({{0, 0, 10}, {0, 1, 10}}, {{0, 0, 20}, {0, 1, 20}});
  EXPECT_TRUE(dd.schedule_feasible());
  const Picoseconds window = cfg_.timing.t_act * cfg_.t_rh;
  dev_.advance(window);
  dd.tick();
  EXPECT_GE(dd.swap_stats().swaps, 2u);
  // The ablation never reuses a staged row: all swaps run cold.
  EXPECT_EQ(dd.swap_stats().staged_swaps, 0u);
  EXPECT_EQ(dd.swap_stats().cold_swaps, dd.swap_stats().swaps);
  EXPECT_GT(dd.stats().time_spent, 0);
}

// --------------------------------------------------------- PriorityProfiler --

class ProfilerFixture : public ::testing::Test {
 protected:
  ProfilerFixture() : model_(testutil::trained_mlp()), qm_(*model_) {
    std::tie(ax_, ay_) = testutil::easy_data().test.head(32);
  }
  std::unique_ptr<nn::Model> model_;
  quant::QuantizedModel qm_;
  nn::Tensor ax_;
  std::vector<u32> ay_;
};

TEST_F(ProfilerFixture, ModelUnchangedAfterProfiling) {
  const auto snap = qm_.snapshot();
  ProfilerConfig cfg;
  cfg.rounds = 2;
  PriorityProfiler profiler(qm_, ax_, ay_, cfg);
  profiler.profile();
  EXPECT_EQ(qm_.hamming_distance(snap), 0u);
}

TEST_F(ProfilerFixture, RoundsProduceDisjointBits) {
  ProfilerConfig cfg;
  cfg.rounds = 3;
  PriorityProfiler profiler(qm_, ax_, ay_, cfg);
  const auto result = profiler.profile();
  EXPECT_EQ(result.round_sizes.size(), 3u);
  std::set<u64> keys;
  for (const auto& bit : result.priority_bits) {
    EXPECT_TRUE(keys.insert(bit.key()).second) << "bit profiled twice";
  }
  EXPECT_EQ(result.total_bits(), keys.size());
}

TEST_F(ProfilerFixture, SecuredSetPrefixes) {
  ProfilerConfig cfg;
  cfg.rounds = 2;
  PriorityProfiler profiler(qm_, ax_, ay_, cfg);
  const auto result = profiler.profile();
  ASSERT_GE(result.total_bits(), 4u);
  const auto small = result.secured_set(3);
  EXPECT_EQ(small.size(), 3u);
  EXPECT_TRUE(small.contains(result.priority_bits[0]));
  EXPECT_FALSE(small.contains(result.priority_bits[3]));
  EXPECT_EQ(result.secured_set().size(), result.total_bits());
}

TEST_F(ProfilerFixture, FirstRoundMatchesPlainBfa) {
  ProfilerConfig cfg;
  cfg.rounds = 1;
  PriorityProfiler profiler(qm_, ax_, ay_, cfg);
  const auto result = profiler.profile();
  auto model2 = testutil::trained_mlp();
  quant::QuantizedModel qm2(*model2);
  attack::ProgressiveBitSearch bfa(qm2, ax_, ay_, cfg.bfa);
  const auto res = bfa.run();
  ASSERT_EQ(result.round_sizes[0], res.flips.size());
  for (usize i = 0; i < res.flips.size(); ++i) {
    EXPECT_EQ(result.priority_bits[i], res.flips[i].loc)
        << "profiler must reuse the attacker's search (paper Sec. 4)";
  }
}

TEST_F(ProfilerFixture, BlockedAttackerProfileMatchesAttackTrajectory) {
  PriorityProfiler profiler(qm_, ax_, ay_);
  const auto profile = profiler.profile_blocked_attacker(8);
  ASSERT_GE(profile.total_bits(), 4u);
  // Replay the fully-blocked attacker: same search, skip = attempted bits,
  // clean model. Its proposals must equal the profile prefix exactly.
  quant::BitSkipSet skip;
  attack::ProgressiveBitSearch search(qm_, ax_, ay_, ProfilerConfig{}.bfa);
  for (usize i = 0; i < profile.total_bits(); ++i) {
    const auto rec = search.step(skip);
    ASSERT_TRUE(rec.has_value());
    qm_.flip(rec->loc);  // blocked: undo
    skip.insert(rec->loc);
    EXPECT_EQ(rec->loc, profile.priority_bits[i]) << "divergence at proposal " << i;
  }
}

TEST_F(ProfilerFixture, BlockedAttackerProfileLeavesModelClean) {
  const auto snap = qm_.snapshot();
  PriorityProfiler profiler(qm_, ax_, ay_);
  profiler.profile_blocked_attacker(6);
  EXPECT_EQ(qm_.hamming_distance(snap), 0u);
}

TEST_F(ProfilerFixture, TargetRowsDeduplicated) {
  ProfilerConfig cfg;
  cfg.rounds = 2;
  PriorityProfiler profiler(qm_, ax_, ay_, cfg);
  const auto result = profiler.profile();
  const mapping::WeightMapping mapping(qm_, DramConfig::nn_scaled());
  const auto rows = PriorityProfiler::target_rows(result, mapping);
  std::set<u64> seen;
  for (const auto& r : rows) {
    EXPECT_TRUE(seen.insert(flat_row_id(DramConfig::nn_scaled().geo, r)).second);
  }
  EXPECT_LE(rows.size(), result.total_bits());
  // max_bits truncation yields a prefix.
  const auto fewer = PriorityProfiler::target_rows(result, mapping, 1);
  ASSERT_GE(fewer.size(), 1u);
  EXPECT_EQ(fewer[0], rows[0]);
}

// ------------------------------------------------------------ SecurityModel --

TEST(SecurityAnalytics, AnchorsMatchPaperFig8a) {
  SecurityModel model;
  const auto p = model.analyze(4000);
  EXPECT_NEAR(p.ttb_days_dd, 1180.0, 1.0);
  EXPECT_NEAR(p.ttb_days_shadow, 894.0, 1.0);
  EXPECT_NEAR(p.ttb_days_dd - p.ttb_days_shadow, 286.0, 1.0);  // "DD protects 286 more days"
}

TEST(SecurityAnalytics, TtbScalesLinearlyWithThreshold) {
  SecurityModel model;
  const auto p1 = model.analyze(1000);
  const auto p8 = model.analyze(8000);
  EXPECT_NEAR(p8.ttb_days_dd / p1.ttb_days_dd, 8.0, 0.01);
  // The figure's annotated protection gaps: 71/142/286/572 days.
  EXPECT_NEAR(p1.ttb_days_dd - p1.ttb_days_shadow, 71.5, 1.0);
  EXPECT_NEAR(p8.ttb_days_dd - p8.ttb_days_shadow, 572.0, 2.0);
}

TEST(SecurityAnalytics, DdAlwaysOutlastsShadow) {
  SecurityModel model;
  for (u32 t : {1000u, 2000u, 4000u, 8000u}) {
    const auto p = model.analyze(t);
    EXPECT_GT(p.ttb_days_dd, p.ttb_days_shadow) << t;
  }
}

TEST(SecurityAnalytics, MaxBfaInverselyProportionalToThreshold) {
  SecurityModel model;
  const auto p1 = model.analyze(1000);
  const auto p2 = model.analyze(2000);
  const auto p4 = model.analyze(4000);
  const auto p8 = model.analyze(8000);
  EXPECT_NEAR(static_cast<double>(p1.max_bfa_defended) / p8.max_bfa_defended, 8.0, 0.1);
  // Paper's operating points: ~55K / 28K / 14K / 7K.
  EXPECT_NEAR(static_cast<double>(p1.max_bfa_defended), 55'000, 1'500);
  EXPECT_NEAR(static_cast<double>(p2.max_bfa_defended), 27'500, 1'000);
  EXPECT_NEAR(static_cast<double>(p4.max_bfa_defended), 13'750, 500);
  EXPECT_NEAR(static_cast<double>(p8.max_bfa_defended), 6'875, 250);
}

TEST(SecurityAnalytics, SwapBudgetMatchesWindowArithmetic) {
  SecurityModel model;
  const auto p = model.analyze(4800);
  const auto& t = model.params().timing;
  EXPECT_EQ(p.window, t.t_act * 4800);
  EXPECT_EQ(p.max_swaps_per_window, static_cast<u64>(p.window / t.t_swap()));
}

TEST(SecurityAnalytics, LatencySaturatesAtCapacity) {
  SecurityModel model;
  const u64 cap = model.analyze(4000).max_bfa_defended;
  const double below = model.latency_per_tref_ms("dd", 4000, cap / 10);
  const double at = model.latency_per_tref_ms("dd", 4000, cap);
  const double beyond = model.latency_per_tref_ms("dd", 4000, cap * 10);
  EXPECT_LT(below, at);
  EXPECT_DOUBLE_EQ(at, beyond);  // plateau (Fig. 8b "limitation")
}

TEST(SecurityAnalytics, DdLatencyBelowShadowEverywhere) {
  SecurityModel model;
  for (u32 t : {1000u, 2000u, 4000u, 8000u}) {
    for (u64 n : {7'000ull, 14'000ull, 28'000ull, 55'000ull}) {
      EXPECT_LT(model.latency_per_tref_ms("dd", t, n),
                model.latency_per_tref_ms("shadow", t, n))
          << "t_rh=" << t << " n=" << n;
    }
  }
}

TEST(SecurityAnalytics, PowerComparisons) {
  SecurityModel model;
  // DD saves a small fraction of total power vs SHADOW at 1k (paper: ~1.6%).
  const double dd = model.total_power_mw("dd", 1000);
  const double shadow = model.total_power_mw("shadow", 1000);
  const double saving = (shadow - dd) / shadow;
  EXPECT_GT(saving, 0.005);
  EXPECT_LT(saving, 0.05);
  // Defense-energy improvement vs SRS is large (paper: ~3.4x).
  const double srs_energy = static_cast<double>(model.energy_per_tref("srs", 1000));
  const double dd_energy = static_cast<double>(model.energy_per_tref("dd", 1000));
  EXPECT_GT(srs_energy / dd_energy, 2.0);
}

TEST(SecurityAnalytics, UnknownFrameworkThrows) {
  SecurityModel model;
  EXPECT_THROW(model.latency_per_tref_ms("para", 1000, 1), std::invalid_argument);
}

}  // namespace
}  // namespace dnnd::core
