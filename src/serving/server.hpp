// Real-threaded executor for a ServingPlan: open-loop generator thread,
// coalescing server loop, optional attacker thread, defender ticks pumped
// through ProtectedSystem::advance_time_to. Wall-clock latencies land in a
// LatencyReservoir; every decision (batch composition, drops, ticks, attack
// targets and outcomes) replays the plan and is folded into a digest that
// must be byte-identical across runs and GEMM thread counts.
#pragma once

#include <string>
#include <vector>

#include "nn/dataset.hpp"
#include "serving/serving.hpp"
#include "system/protected_system.hpp"

namespace dnnd::serving {

/// One serving regime's results. Fields above the wall-clock divider are
/// deterministic (pinned by the digest and the CI byte gates); the latency
/// and throughput numbers below it are real measurements and excluded from
/// every byte comparison.
struct RegimeStats {
  std::string name;

  // ----- deterministic ------------------------------------------------------
  usize requests = 0;  ///< offered arrivals
  usize admitted = 0;
  usize dropped = 0;
  usize batches = 0;
  std::vector<usize> batch_histogram;  ///< [size] -> batch count
  usize queue_peak = 0;                ///< virtual admission-queue peak
  usize ticks = 0;                     ///< defender ticks pumped
  usize attack_attempts = 0;
  usize attack_landed = 0;
  usize attack_blocked = 0;
  double accuracy_before = 0.0;
  double accuracy_after = 0.0;
  u64 digest = 0;  ///< plan digest + attack decisions + prediction stream

  // ----- wall-clock (nondeterministic; never byte-gated) --------------------
  double offered_rps = 0.0;
  double achieved_rps = 0.0;
  double wall_seconds = 0.0;
  u64 p50_ns = 0;
  u64 p99_ns = 0;
  u64 p999_ns = 0;
  u64 latencies_seen = 0;  ///< reservoir input count (== admitted)
};

/// Runs one regime: generates the plan for `cfg` over pool.size() samples,
/// executes it against `psys` (whatever mitigation is installed), and -- when
/// `attack_on` -- lets an attacker thread carry one white-box BFA flip
/// through DRAM at every planned attack slot, proposing flips on
/// (attack_x, attack_y) and learning blocked bits. Accuracy is measured on
/// (eval_x, eval_y) before and after. The caller owns model/system state;
/// run regimes on fresh systems for independent measurements.
RegimeStats serve_regime(const std::string& name, system::ProtectedSystem& psys,
                         const nn::Dataset& pool, const nn::Tensor& eval_x,
                         const std::vector<u32>& eval_y, const nn::Tensor& attack_x,
                         const std::vector<u32>& attack_y, const ServeConfig& cfg,
                         bool attack_on);

}  // namespace dnnd::serving
