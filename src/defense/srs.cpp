#include "defense/srs.hpp"

// Implementation inherited from Rrs; this TU anchors the vtable.
namespace dnnd::defense {}
