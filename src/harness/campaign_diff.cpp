#include "harness/campaign_diff.hpp"

#include <cctype>
#include <cmath>
#include <limits>
#include <map>

#include "sys/table.hpp"

namespace dnnd::harness {

namespace {

std::string fmt_acc(double v) { return sys::fmt(100.0 * v, 4) + "%"; }

}  // namespace

i64 leading_flip_count(const std::string& flips) {
  // Hand-rolled digit walk instead of strtoll: the library call reports
  // neither overflow nor where it stopped, so a malformed flips string could
  // parse as a small plausible count and sail through the regression gate.
  usize i = 0;
  while (i < flips.size() && (flips[i] == '>' || flips[i] == '<' || flips[i] == ' ')) ++i;
  if (i >= flips.size() || !std::isdigit(static_cast<unsigned char>(flips[i]))) return -1;
  constexpr i64 kMax = std::numeric_limits<i64>::max();
  i64 value = 0;
  for (; i < flips.size() && std::isdigit(static_cast<unsigned char>(flips[i])); ++i) {
    const i64 digit = flips[i] - '0';
    if (value > (kMax - digit) / 10) return -1;  // overflow is malformed, not wrapped
    value = value * 10 + digit;
  }
  // The count may only be followed by a paper-style annotation (" (3
  // landed)"); any other suffix means the field was corrupted or renamed.
  if (i < flips.size() && flips[i] != ' ') return -1;
  return value;
}

DiffReport diff_campaigns(const CampaignResult& baseline, const CampaignResult& current,
                          const DiffConfig& cfg) {
  DiffReport report;

  std::map<std::string, const ScenarioResult*> current_by_id;
  for (const auto& r : current.results) current_by_id[r.id] = &r;
  std::map<std::string, const ScenarioResult*> baseline_by_id;
  for (const auto& r : baseline.results) baseline_by_id[r.id] = &r;

  // Baseline order first, then current-only scenarios in their run order.
  for (const auto& b : baseline.results) {
    ScenarioDelta d;
    d.id = b.id;
    const auto it = current_by_id.find(b.id);
    if (it == current_by_id.end()) {
      d.missing_in_current = true;
      d.regression = !cfg.ignore_missing;
      d.notes.push_back("scenario missing from current run");
      report.deltas.push_back(std::move(d));
      continue;
    }
    const ScenarioResult& c = *it->second;
    ++report.compared;

    auto note = [&](std::string text, bool beyond_tol) {
      d.notes.push_back(std::move(text));
      d.regression = d.regression || beyond_tol;
    };
    // Path-shape fields (flips, counters, trace): informational only in
    // final-only mode.
    auto path_note = [&](std::string text, bool beyond_tol) {
      note(std::move(text), beyond_tol && !cfg.final_only);
    };
    auto check_acc = [&](const char* field, double bv, double cv) {
      if (bv == cv) return;
      note(std::string(field) + " " + fmt_acc(bv) + " -> " + fmt_acc(cv),
           std::abs(cv - bv) > cfg.acc_tol);
    };
    auto check_count = [&](const char* field, i64 bv, i64 cv) {
      if (bv == cv) return;
      path_note(std::string(field) + " " + std::to_string(bv) + " -> " + std::to_string(cv),
                std::llabs(cv - bv) > cfg.flip_tol);
    };

    if (b.ok != c.ok) {
      note(std::string("ok ") + (b.ok ? "true" : "false") + " -> " + (c.ok ? "true" : "false"),
           true);
    }
    d.clean_delta = c.clean_accuracy - b.clean_accuracy;
    d.post_delta = c.post_accuracy - b.post_accuracy;
    check_acc("clean_accuracy", b.clean_accuracy, c.clean_accuracy);
    check_acc("post_accuracy", b.post_accuracy, c.post_accuracy);
    // The targeted-attack metrics gate like accuracies: both are fractions of
    // an eval-batch row subset, so acc_tol is the right yardstick.
    check_acc("attack_success_rate", b.attack_success_rate, c.attack_success_rate);
    check_acc("post_attack_other_acc", b.post_attack_other_acc, c.post_attack_other_acc);

    // A successful scenario must carry a parseable flip count on BOTH sides:
    // a malformed/hand-edited baseline field is itself a loud failure, even
    // when the two strings happen to match byte-for-byte.
    const i64 bf = leading_flip_count(b.flips);
    const i64 cf = leading_flip_count(c.flips);
    if (b.ok && bf < 0) path_note("baseline flips unparseable: \"" + b.flips + "\"", true);
    if (c.ok && cf < 0) path_note("current flips unparseable: \"" + c.flips + "\"", true);
    if (b.flips != c.flips) {
      const bool numeric = bf >= 0 && cf >= 0;
      d.flip_delta = numeric ? cf - bf : 0;
      // At zero flip tolerance the spelling itself is gated: ">8" (budget
      // exhausted before stop accuracy) and "8" (stop reached) are different
      // outcomes even though their leading counts match. A nonzero tolerance
      // compares counts only, so marker transitions can ride along with the
      // count drift they imply.
      path_note("flips \"" + b.flips + "\" -> \"" + c.flips + "\"",
                !numeric || cfg.flip_tol == 0 || std::llabs(cf - bf) > cfg.flip_tol);
    }
    check_count("attempts", static_cast<i64>(b.attempts), static_cast<i64>(c.attempts));
    check_count("landed", static_cast<i64>(b.landed), static_cast<i64>(c.landed));
    check_count("blocked", static_cast<i64>(b.blocked), static_cast<i64>(c.blocked));
    check_count("secured_bits", static_cast<i64>(b.secured_bits),
                static_cast<i64>(c.secured_bits));
    check_count("secured_rows", static_cast<i64>(b.secured_rows),
                static_cast<i64>(c.secured_rows));
    check_count("total_bits", static_cast<i64>(b.total_bits), static_cast<i64>(c.total_bits));

    if (b.trace.size() != c.trace.size()) {
      path_note("trace length " + std::to_string(b.trace.size()) + " -> " +
                    std::to_string(c.trace.size()),
                true);
    } else {
      double worst = 0.0;
      usize worst_i = 0;
      for (usize i = 0; i < b.trace.size(); ++i) {
        const double delta = std::abs(c.trace[i] - b.trace[i]);
        if (delta > worst) {
          worst = delta;
          worst_i = i;
        }
      }
      if (worst > 0.0) {
        path_note("trace[" + std::to_string(worst_i) + "] " + fmt_acc(b.trace[worst_i]) +
                      " -> " + fmt_acc(c.trace[worst_i]),
                  worst > cfg.acc_tol);
      }
    }

    if (!d.notes.empty()) report.deltas.push_back(std::move(d));
  }

  for (const auto& c : current.results) {
    if (baseline_by_id.find(c.id) != baseline_by_id.end()) continue;
    ScenarioDelta d;
    d.id = c.id;
    d.missing_in_baseline = true;
    d.regression = !cfg.ignore_missing;
    d.notes.push_back("scenario missing from baseline");
    report.deltas.push_back(std::move(d));
  }

  for (const auto& d : report.deltas) {
    if (d.regression) ++report.regressions;
  }
  return report;
}

std::string DiffReport::to_string() const {
  std::string out;
  if (deltas.empty()) {
    return "identical: " + std::to_string(compared) + " scenarios match exactly\n";
  }
  for (const auto& d : deltas) {
    out += (d.regression ? "REGRESSION " : "within-tol ") + d.id + "\n";
    for (const auto& n : d.notes) out += "    " + n + "\n";
  }
  out += std::to_string(compared) + " compared, " + std::to_string(deltas.size()) +
         " with differences, " + std::to_string(regressions) + " regression(s)\n";
  return out;
}

}  // namespace dnnd::harness
