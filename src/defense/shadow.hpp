// SHADOW (Wi et al., HPCA'23) -- intra-subarray row shuffling. The strongest
// prior mechanism in the paper's comparison and, with DNN-Defender, the only
// one that withstands the complete white-box attack: when an aggressor's
// activation estimate crosses the shuffle threshold, its *victim* rows are
// relocated to a fresh position inside the subarray via in-DRAM copies
// (through one reserved row per subarray). Relocation rewrites the victim's
// cells, resetting accumulated disturbance -- victim-focused protection, like
// DNN-Defender, but triggered reactively per hot aggressor and therefore
// costlier per defended attack (Fig. 8(b)).
#pragma once

#include <unordered_map>

#include "defense/mitigation.hpp"

namespace dnnd::defense {

struct ShadowConfig {
  /// Shuffle when an aggressor's count reaches fraction * T_RH. A double-
  /// sided pair deposits two disturbances per tracked ACT, so the fraction
  /// must stay below 0.5 for the victim to be moved ahead of threshold.
  double shuffle_threshold_fraction = 0.2;
  u64 seed = 0x54AD0;
};

class Shadow : public Mitigation {
 public:
  Shadow(dram::DramDevice& device, dram::RowRemapper& remap, ShadowConfig cfg = {});

  [[nodiscard]] std::string name() const override { return "SHADOW"; }
  void on_activate(const dram::RowAddr& row, Picoseconds now) override;

  [[nodiscard]] u64 shuffles_performed() const { return shuffles_; }

  /// The physical row each subarray dedicates to shuffling (its DRAM
  /// capacity overhead: 1 row per subarray, Table 2's 0.16 MB at 32 GB).
  [[nodiscard]] u32 reserved_row() const;

 private:
  /// Relocates victim `v` to a random free slot of its subarray through the
  /// reserved row: v -> reserved, displaced -> v, reserved -> displaced.
  void shuffle_victim(const dram::RowAddr& v);

  ShadowConfig cfg_;
  sys::Rng rng_;
  std::unordered_map<u64, u64> act_counts_;  ///< in-DRAM per-row counters
  u64 shuffles_ = 0;
};

}  // namespace dnnd::defense
