// Kernel-equivalence property tests: the GEMM/im2col engine path must be
// bitwise identical to the retained naive reference kernels, across
// randomized shapes including odd sizes, stride/padding edges, and batch 1/N.
// The threaded kernel must in turn be byte-identical to the serial one for
// every team size (row-chunk and panel-chunk partitions both), and the fused
// int8 pack must reproduce the float pack bit-for-bit.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "nn/gemm.hpp"
#include "nn/layers.hpp"
#include "nn/reference.hpp"
#include "nn/simd.hpp"
#include "nn/workspace.hpp"
#include "test_util.hpp"

namespace dnnd::nn {
namespace {

using testutil::SimdGuard;
using testutil::ThreadsGuard;

void fill_random(Tensor& t, sys::Rng& rng) {
  for (usize i = 0; i < t.size(); ++i) t[i] = static_cast<float>(rng.normal(0.0, 1.0));
}

void expect_bitwise_equal(const Tensor& a, const Tensor& b, const std::string& what) {
  ASSERT_EQ(a.shape(), b.shape()) << what;
  ASSERT_EQ(0, std::memcmp(a.data(), b.data(), a.size() * sizeof(float)))
      << what << ": engine and naive outputs differ bitwise";
}

TEST(Gemm, MatchesNaiveDotProduct) {
  sys::Rng rng(101);
  Workspace ws;
  for (int trial = 0; trial < 30; ++trial) {
    const usize M = 1 + rng.uniform(20), N = 1 + rng.uniform(33), K = 1 + rng.uniform(70);
    Tensor a({M, K}), b({N, K}), bias({N});
    fill_random(a, rng);
    fill_random(b, rng);
    fill_random(bias, rng);
    Tensor c({M, N}), ref({M, N});
    gemm::gemm_nt(M, N, K, a.data(), K, b.data(), K, c.data(), N, bias.data(),
                  gemm::Bias::kPerCol, ws);
    for (usize m = 0; m < M; ++m) {
      for (usize n = 0; n < N; ++n) {
        float acc = bias[n];
        for (usize k = 0; k < K; ++k) acc += a[m * K + k] * b[n * K + k];
        ref.at2(m, n) = acc;
      }
    }
    expect_bitwise_equal(c, ref, "gemm_nt trial " + std::to_string(trial));
  }
}

TEST(Gemm, DenseForwardMatchesReference) {
  sys::Rng rng(102);
  for (int trial = 0; trial < 40; ++trial) {
    const usize in = 1 + rng.uniform(40);
    const usize out = 1 + rng.uniform(24);  // crosses the 8-wide panel boundary
    const usize n = trial % 2 == 0 ? 1 : 2 + rng.uniform(5);
    Dense d(in, out, rng);
    Tensor x({n, in});
    fill_random(x, rng);
    fill_random(d.bias, rng);
    const Tensor y = d.forward(x, /*train=*/false);
    Tensor ref({n, out});
    reference::dense_forward(x, d.weight, d.bias, ref);
    expect_bitwise_equal(y, ref, "dense trial " + std::to_string(trial));
  }
}

TEST(Gemm, Conv2dForwardMatchesReference) {
  sys::Rng rng(103);
  for (int trial = 0; trial < 60; ++trial) {
    const usize in_ch = 1 + rng.uniform(4);
    const usize out_ch = 1 + rng.uniform(10);
    const usize k = 1 + rng.uniform(3);       // 1..3
    const usize stride = 1 + rng.uniform(2);  // 1..2
    const usize pad = rng.uniform(k + 1);     // 0..k (includes over-padding edges)
    // Odd and even spatial sizes; must keep at least one output pixel.
    usize h = 3 + rng.uniform(8), w = 3 + rng.uniform(8);
    if (h + 2 * pad < k) h = k;
    if (w + 2 * pad < k) w = k;
    const usize n = trial % 3 == 0 ? 1 : 2 + rng.uniform(3);
    Conv2d c(in_ch, out_ch, k, stride, pad, rng);
    fill_random(c.bias, rng);
    Tensor x({n, in_ch, h, w});
    fill_random(x, rng);
    const Tensor y = c.forward(x, /*train=*/false);
    Tensor ref(y.shape());
    reference::conv2d_forward(x, c.weight, c.bias, stride, pad, ref);
    expect_bitwise_equal(y, ref,
                         "conv trial " + std::to_string(trial) + " k=" + std::to_string(k) +
                             " s=" + std::to_string(stride) + " p=" + std::to_string(pad));
  }
}

TEST(Gemm, ThreadedMatchesSerialByteExactOverRandomShapes) {
  // Shapes randomized across both partition regimes: M >= team (row chunks)
  // and M < team (panel chunks), ragged against the 8-wide tile in all of
  // M/N/K, and sizes straddling the parallel work threshold (below it the
  // kernel must fall back to serial -- identical either way).
  ThreadsGuard guard;
  sys::Rng rng(105);
  const usize hw = std::max<usize>(1, std::thread::hardware_concurrency());
  for (int trial = 0; trial < 25; ++trial) {
    usize M, N, K;
    if (trial % 3 == 0) {
      M = 1 + rng.uniform(3);           // fewer rows than any team: panel split
      N = 24 + rng.uniform(80);
      K = 128 + rng.uniform(256);
    } else {
      M = 9 + rng.uniform(120);         // row split, ragged vs the 8-row tile
      N = 1 + rng.uniform(40);
      K = 16 + rng.uniform(96);
    }
    Tensor a({M, K}), b({N, K}), bias({N});
    fill_random(a, rng);
    fill_random(b, rng);
    fill_random(bias, rng);
    const gemm::Bias kind = trial % 4 == 0 ? gemm::Bias::kNone : gemm::Bias::kPerCol;

    Workspace ws_serial;
    Tensor serial({M, N});
    gemm::set_threads(1);
    gemm::gemm_nt(M, N, K, a.data(), K, b.data(), K, serial.data(), N, bias.data(), kind,
                  ws_serial);

    for (const usize teams : {usize{2}, usize{4}, hw}) {
      Workspace ws_t;
      Tensor threaded({M, N});
      threaded.fill(-999.0f);  // stale sentinel: every element must be written
      gemm::set_threads(teams);
      gemm::gemm_nt(M, N, K, a.data(), K, b.data(), K, threaded.data(), N, bias.data(), kind,
                    ws_t);
      expect_bitwise_equal(threaded, serial,
                           "trial " + std::to_string(trial) + " teams=" +
                               std::to_string(teams) + " M=" + std::to_string(M) + " N=" +
                               std::to_string(N) + " K=" + std::to_string(K));
    }

    // And against the naive triple loop, closing the serial==threaded==naive
    // triangle.
    Tensor ref({M, N});
    for (usize m = 0; m < M; ++m) {
      for (usize nn = 0; nn < N; ++nn) {
        float acc = kind == gemm::Bias::kPerCol ? bias[nn] : 0.0f;
        for (usize k = 0; k < K; ++k) acc += a[m * K + k] * b[nn * K + k];
        ref.at2(m, nn) = acc;
      }
    }
    expect_bitwise_equal(serial, ref, "vs naive, trial " + std::to_string(trial));
  }
}

TEST(Gemm, ThreadedConvAndDenseForwardMatchSerial) {
  // Layer-level check: Conv2d's sample-parallel path (per-team-slot col
  // buffers) and Dense's row-split GEMM, big enough to clear the parallel
  // work threshold, against the serial engine and the naive reference.
  ThreadsGuard guard;
  sys::Rng rng(106);
  const usize hw = std::max<usize>(1, std::thread::hardware_concurrency());
  Conv2d conv(4, 9, 3, 1, 1, rng);
  Dense dense(200, 37, rng);
  fill_random(conv.bias, rng);
  fill_random(dense.bias, rng);
  Tensor xc({10, 4, 12, 12}), xd({10, 200});
  fill_random(xc, rng);
  fill_random(xd, rng);

  gemm::set_threads(1);
  const Tensor conv_serial = conv.forward(xc, false);
  const Tensor dense_serial = dense.forward(xd, false);
  Tensor conv_ref(conv_serial.shape()), dense_ref(dense_serial.shape());
  reference::conv2d_forward(xc, conv.weight, conv.bias, 1, 1, conv_ref);
  reference::dense_forward(xd, dense.weight, dense.bias, dense_ref);
  expect_bitwise_equal(conv_serial, conv_ref, "conv serial vs naive");
  expect_bitwise_equal(dense_serial, dense_ref, "dense serial vs naive");

  for (const usize teams : {usize{2}, usize{3}, usize{4}, hw}) {
    gemm::set_threads(teams);
    const Tensor conv_t = conv.forward(xc, false);
    const Tensor dense_t = dense.forward(xd, false);
    expect_bitwise_equal(conv_t, conv_serial, "conv teams=" + std::to_string(teams));
    expect_bitwise_equal(dense_t, dense_serial, "dense teams=" + std::to_string(teams));
  }
}

TEST(Gemm, PackBInt8MatchesFloatPackBitwise) {
  // The fused path's invariant: pack_b_int8(codes, scale) must equal
  // pack_b(materialized floats) byte-for-byte, and packed_index must address
  // exactly the panel float a single code update has to rewrite.
  sys::Rng rng(107);
  for (int trial = 0; trial < 20; ++trial) {
    const usize N = 1 + rng.uniform(40), K = 1 + rng.uniform(60);
    const float scale = 0.001f + static_cast<float>(rng.uniform(1000)) * 1e-4f;
    std::vector<i8> q(N * K);
    for (auto& v : q) v = static_cast<i8>(static_cast<int>(rng.uniform(256)) - 128);

    std::vector<float> floats(N * K);
    for (usize i = 0; i < q.size(); ++i) floats[i] = static_cast<float>(q[i]) * scale;

    const usize panel_size = gemm::packed_b_size(N, K);
    std::vector<float> from_floats(panel_size, -1.0f), from_codes(panel_size, -2.0f);
    gemm::pack_b(floats.data(), K, N, K, from_floats.data());
    gemm::pack_b_int8(q.data(), N, K, scale, from_codes.data());
    ASSERT_EQ(0, std::memcmp(from_floats.data(), from_codes.data(),
                             panel_size * sizeof(float)))
        << "trial " << trial << " N=" << N << " K=" << K;

    // Point update == full repack after one code change.
    const usize idx = rng.uniform(N * K);
    q[idx] = static_cast<i8>(q[idx] ^ 0x40);
    from_codes[gemm::packed_index(idx / K, idx % K, K)] = static_cast<float>(q[idx]) * scale;
    std::vector<float> repacked(panel_size);
    gemm::pack_b_int8(q.data(), N, K, scale, repacked.data());
    ASSERT_EQ(0, std::memcmp(repacked.data(), from_codes.data(), panel_size * sizeof(float)))
        << "point update diverged, trial " << trial;
  }
}

TEST(Gemm, SimdMatchesForcedScalarByteExactOverRandomShapes) {
  // The tentpole invariant: the explicit SIMD register tiles (AVX2/NEON,
  // lane-per-output-column, non-contracted mul+add) must be byte-identical
  // to the forced-scalar microkernels over randomized ragged shapes. On a
  // host without a vector ISA both legs resolve to scalar and the sweep
  // degenerates to a tautology -- which is exactly the CI forced-scalar
  // leg's behavior, so that is fine.
  SimdGuard guard;
  sys::Rng rng(108);
  for (int trial = 0; trial < 40; ++trial) {
    const usize M = 1 + rng.uniform(40), N = 1 + rng.uniform(40), K = 1 + rng.uniform(200);
    Tensor a({M, K}), b({N, K}), bias({N});
    fill_random(a, rng);
    fill_random(b, rng);
    fill_random(bias, rng);
    const gemm::Bias kind = trial % 4 == 0 ? gemm::Bias::kNone : gemm::Bias::kPerCol;

    simd::set_scalar_override(1);
    ASSERT_EQ(simd::active_isa(), simd::Isa::kScalar);
    Workspace ws_scalar;
    Tensor scalar({M, N});
    gemm::gemm_nt(M, N, K, a.data(), K, b.data(), K, scalar.data(), N, bias.data(), kind,
                  ws_scalar);

    simd::set_scalar_override(0);
    ASSERT_EQ(simd::active_isa(), simd::best_isa());
    Workspace ws_simd;
    Tensor vectored({M, N});
    vectored.fill(-999.0f);  // stale sentinel: every element must be written
    gemm::gemm_nt(M, N, K, a.data(), K, b.data(), K, vectored.data(), N, bias.data(), kind,
                  ws_simd);

    expect_bitwise_equal(vectored, scalar,
                         std::string("simd (") + simd::isa_name(simd::best_isa()) +
                             ") trial " + std::to_string(trial) + " M=" + std::to_string(M) +
                             " N=" + std::to_string(N) + " K=" + std::to_string(K));
  }
}

TEST(Gemm, SimdThreadsMatrixMatchesScalarSerial) {
  // The CI matrix in miniature: {scalar, simd} x {1, 4} teams all produce
  // the same bytes as scalar serial, through a whole layer forward.
  SimdGuard simd_guard;
  ThreadsGuard threads_guard;
  sys::Rng rng(109);
  Dense dense(300, 41, rng);
  fill_random(dense.bias, rng);
  Tensor x({12, 300});
  fill_random(x, rng);

  simd::set_scalar_override(1);
  gemm::set_threads(1);
  const Tensor golden = dense.forward(x, false);

  for (const int scalar : {1, 0}) {
    for (const usize teams : {usize{1}, usize{4}}) {
      simd::set_scalar_override(scalar);
      gemm::set_threads(teams);
      const Tensor y = dense.forward(x, false);
      expect_bitwise_equal(y, golden,
                           "scalar_override=" + std::to_string(scalar) +
                               " teams=" + std::to_string(teams));
    }
  }
}

TEST(Gemm, FmaFastPathIsCloseButExcludedFromByteContract) {
  // DNND_FMA=1 is allowed to diverge in rounding (fused single-rounding
  // terms); it must stay numerically close, and switching it back off must
  // return to byte-identity with scalar. On hosts without a fused ISA the
  // fma path IS the default path and the divergence is exactly zero.
  SimdGuard guard;
  sys::Rng rng(110);
  const usize M = 24, N = 19, K = 150;
  Tensor a({M, K}), b({N, K}), bias({N});
  fill_random(a, rng);
  fill_random(b, rng);
  fill_random(bias, rng);

  simd::set_scalar_override(1);
  simd::set_fma_override(0);
  Workspace ws1;
  Tensor scalar({M, N});
  gemm::gemm_nt(M, N, K, a.data(), K, b.data(), K, scalar.data(), N, bias.data(),
                gemm::Bias::kPerCol, ws1);

  simd::set_scalar_override(0);
  simd::set_fma_override(1);
  Workspace ws2;
  Tensor fused({M, N});
  gemm::gemm_nt(M, N, K, a.data(), K, b.data(), K, fused.data(), N, bias.data(),
                gemm::Bias::kPerCol, ws2);
  for (usize i = 0; i < fused.size(); ++i) {
    EXPECT_NEAR(fused[i], scalar[i], 1e-4 * (1.0 + std::abs(scalar[i])))
        << "fma drifted beyond rounding at " << i;
  }

  simd::set_fma_override(0);
  Workspace ws3;
  Tensor back({M, N});
  gemm::gemm_nt(M, N, K, a.data(), K, b.data(), K, back.data(), N, bias.data(),
                gemm::Bias::kPerCol, ws3);
  expect_bitwise_equal(back, scalar, "fma off must restore byte-identity");
}

TEST(Gemm, ThreadedIm2colGatherMatchesSerialByteExact) {
  // Single-sample convolution big enough to clear the parallel-work
  // threshold: the batch cannot be split, so the patch gather itself runs on
  // the pool (disjoint patch ranges into one shared col buffer). Output must
  // be byte-identical to serial and to the naive reference.
  ThreadsGuard guard;
  sys::Rng rng(111);
  Conv2d conv(8, 9, 3, 1, 1, rng);
  fill_random(conv.bias, rng);
  Tensor x({1, 8, 64, 64});  // P = 4096 patches, K = 72: P*K well past the threshold
  fill_random(x, rng);

  gemm::set_threads(1);
  const Tensor serial = conv.forward(x, false);
  Tensor ref(serial.shape());
  reference::conv2d_forward(x, conv.weight, conv.bias, 1, 1, ref);
  expect_bitwise_equal(serial, ref, "serial conv vs naive");

  const usize hw = std::max<usize>(1, std::thread::hardware_concurrency());
  for (const usize teams : {usize{2}, usize{4}, hw}) {
    gemm::set_threads(teams);
    const Tensor threaded = conv.forward(x, false);
    expect_bitwise_equal(threaded, serial, "gather teams=" + std::to_string(teams));
  }
}

TEST(Gemm, AutoThreadsFollowsEnvChangesMidProcess) {
  // Regression for the once-only static cache: with set_threads(0), a
  // mid-process DNND_THREADS change must be visible immediately, so the
  // campaign's budget-split restore and tests agree about the team size.
  ThreadsGuard guard;
  const char* orig = std::getenv("DNND_THREADS");
  const std::string saved = orig != nullptr ? orig : "";

  ASSERT_EQ(setenv("DNND_THREADS", "3", 1), 0);
  gemm::set_threads(0);
  EXPECT_EQ(gemm::threads(), 3u);
  ASSERT_EQ(setenv("DNND_THREADS", "5", 1), 0);
  EXPECT_EQ(gemm::threads(), 5u);
  ASSERT_EQ(unsetenv("DNND_THREADS"), 0);
  EXPECT_EQ(gemm::threads(),
            static_cast<usize>(std::max(1u, std::thread::hardware_concurrency())));
  // Garbage falls back to auto (with a stderr warning), never to a stale or
  // partial parse.
  ASSERT_EQ(setenv("DNND_THREADS", "4x", 1), 0);
  EXPECT_EQ(gemm::threads(),
            static_cast<usize>(std::max(1u, std::thread::hardware_concurrency())));

  if (orig != nullptr) {
    ASSERT_EQ(setenv("DNND_THREADS", saved.c_str(), 1), 0);
  } else {
    ASSERT_EQ(unsetenv("DNND_THREADS"), 0);
  }
}

TEST(Gemm, Int8PanelLayoutAndPointUpdate) {
  // pack_b_q8 must place code (n, k) exactly where packed_q8_index says, and
  // a single-byte point update must reproduce a full repack bit-for-bit --
  // the invariant that makes a bit flip O(1) in the true-integer regime.
  sys::Rng rng(112);
  for (int trial = 0; trial < 20; ++trial) {
    const usize N = 1 + rng.uniform(40), K = 1 + rng.uniform(60);
    std::vector<i8> q(N * K);
    for (auto& v : q) v = static_cast<i8>(static_cast<int>(rng.uniform(256)) - 128);

    const usize size = gemm::packed_b_int8_size(N, K);
    std::vector<i8> panel(size, i8{-1});
    gemm::pack_b_q8(q.data(), N, K, panel.data());
    for (usize n = 0; n < N; ++n) {
      for (usize k = 0; k < K; ++k) {
        ASSERT_EQ(panel[gemm::packed_q8_index(n, k, K)], q[n * K + k])
            << "trial " << trial << " n=" << n << " k=" << k;
      }
    }

    const usize idx = rng.uniform(N * K);
    q[idx] = static_cast<i8>(q[idx] ^ 0x40);
    panel[gemm::packed_q8_index(idx / K, idx % K, K)] = q[idx];
    std::vector<i8> repacked(size, i8{0});
    gemm::pack_b_q8(q.data(), N, K, repacked.data());
    ASSERT_EQ(0, std::memcmp(panel.data(), repacked.data(), size))
        << "point update diverged, trial " << trial;
  }
}

namespace {

/// Random codes with the extreme -128 value forced in (the maddubs-style
/// kernel's hardest case: |w| = 128 only fits the unsigned operand).
std::vector<i8> random_codes(usize n, sys::Rng& rng) {
  std::vector<i8> q(n);
  for (auto& v : q) v = static_cast<i8>(static_cast<int>(rng.uniform(256)) - 128);
  q[rng.uniform(n)] = i8{-128};
  return q;
}

}  // namespace

TEST(Gemm, Int8GemmMatchesIntegerReferenceExactly) {
  // gemm_nt_int8 against a naive int accumulation with the identical
  // requantization epilogue: int32 accumulators make the comparison EXACT
  // (ASSERT_EQ on floats), not a tolerance.
  SimdGuard guard;
  sys::Rng rng(113);
  for (int trial = 0; trial < 30; ++trial) {
    const usize M = 1 + rng.uniform(20), N = 1 + rng.uniform(33), K = 1 + rng.uniform(70);
    const usize K4 = gemm::padded_k_int8(K);
    Tensor a({M, K}), bias({N});
    fill_random(a, rng);
    fill_random(bias, rng);
    const std::vector<i8> q = random_codes(N * K, rng);
    std::vector<i8> panel(gemm::packed_b_int8_size(N, K));
    gemm::pack_b_q8(q.data(), N, K, panel.data());

    const float sa = gemm::activation_scale(a.data(), M, K, K);
    std::vector<i8> qa(M * K4);
    gemm::quantize_activations(a.data(), M, K, K, sa, qa.data());
    const float requant = sa * 0.01f;
    const gemm::Bias kind = trial % 4 == 0 ? gemm::Bias::kNone : gemm::Bias::kPerCol;

    Tensor c({M, N});
    c.fill(-999.0f);  // stale sentinel: every element must be written
    gemm::gemm_nt_int8(M, N, K, qa.data(), panel.data(), c.data(), N, 1, bias.data(), kind,
                       requant);

    for (usize m = 0; m < M; ++m) {
      for (usize n = 0; n < N; ++n) {
        i32 acc = 0;
        for (usize k = 0; k < K; ++k) {
          acc += static_cast<i32>(qa[gemm::packed_a_q8_index(m, k, M)]) *
                 static_cast<i32>(q[n * K + k]);
        }
        const float expect = static_cast<float>(acc) * requant +
                             (kind == gemm::Bias::kPerCol ? bias[n] : 0.0f);
        ASSERT_EQ(c.at2(m, n), expect)
            << "trial " << trial << " m=" << m << " n=" << n << " K=" << K;
      }
    }
  }
}

TEST(Gemm, Int8SimdMatchesScalarByteExactOverRandomShapes) {
  // The int8 tentpole's byte gate: the AVX2 maddubs-style kernel and the
  // scalar reference must agree byte-for-byte (integer accumulation is
  // exact -- ANY difference is a kernel bug, including s16 pair-sum
  // saturation, which the activation clamp to [-127, 127] rules out).
  SimdGuard guard;
  sys::Rng rng(114);
  for (int trial = 0; trial < 40; ++trial) {
    const usize M = 1 + rng.uniform(40), N = 1 + rng.uniform(40), K = 1 + rng.uniform(200);
    const usize K4 = gemm::padded_k_int8(K);
    Tensor a({M, K}), bias({N});
    fill_random(a, rng);
    fill_random(bias, rng);
    const std::vector<i8> q = random_codes(N * K, rng);
    std::vector<i8> panel(gemm::packed_b_int8_size(N, K));
    gemm::pack_b_q8(q.data(), N, K, panel.data());
    const float sa = gemm::activation_scale(a.data(), M, K, K);
    std::vector<i8> qa(M * K4);
    gemm::quantize_activations(a.data(), M, K, K, sa, qa.data());
    const gemm::Bias kind = trial % 4 == 0 ? gemm::Bias::kNone : gemm::Bias::kPerCol;

    simd::set_scalar_override(1);
    Tensor scalar({M, N});
    gemm::gemm_nt_int8(M, N, K, qa.data(), panel.data(), scalar.data(), N, 1, bias.data(),
                       kind, 0.003f);

    simd::set_scalar_override(0);
    Tensor vectored({M, N});
    vectored.fill(-999.0f);
    gemm::gemm_nt_int8(M, N, K, qa.data(), panel.data(), vectored.data(), N, 1, bias.data(),
                       kind, 0.003f);
    expect_bitwise_equal(vectored, scalar,
                         "int8 simd trial " + std::to_string(trial) + " M=" +
                             std::to_string(M) + " N=" + std::to_string(N) + " K=" +
                             std::to_string(K));
  }
}

TEST(Gemm, Int8ThreadedMatchesSerialByteExact) {
  // Both partition regimes (row chunks and panel chunks): int32 addition is
  // associative, so any split is exactly transparent -- byte-gated here.
  ThreadsGuard guard;
  sys::Rng rng(115);
  const usize hw = std::max<usize>(1, std::thread::hardware_concurrency());
  for (int trial = 0; trial < 16; ++trial) {
    usize M, N, K;
    if (trial % 3 == 0) {
      M = 1 + rng.uniform(3);  // fewer rows than any team: panel split
      N = 24 + rng.uniform(80);
      K = 128 + rng.uniform(256);
    } else {
      M = 9 + rng.uniform(120);  // row split, ragged vs the 8-row tile
      N = 1 + rng.uniform(40);
      K = 16 + rng.uniform(96);
    }
    const usize K4 = gemm::padded_k_int8(K);
    Tensor a({M, K}), bias({N});
    fill_random(a, rng);
    fill_random(bias, rng);
    const std::vector<i8> q = random_codes(N * K, rng);
    std::vector<i8> panel(gemm::packed_b_int8_size(N, K));
    gemm::pack_b_q8(q.data(), N, K, panel.data());
    const float sa = gemm::activation_scale(a.data(), M, K, K);
    std::vector<i8> qa(M * K4);
    gemm::quantize_activations(a.data(), M, K, K, sa, qa.data());

    gemm::set_threads(1);
    Tensor serial({M, N});
    gemm::gemm_nt_int8(M, N, K, qa.data(), panel.data(), serial.data(), N, 1, bias.data(),
                       gemm::Bias::kPerCol, 0.005f);
    for (const usize teams : {usize{2}, usize{4}, hw}) {
      gemm::set_threads(teams);
      Tensor threaded({M, N});
      threaded.fill(-999.0f);
      gemm::gemm_nt_int8(M, N, K, qa.data(), panel.data(), threaded.data(), N, 1,
                         bias.data(), gemm::Bias::kPerCol, 0.005f);
      expect_bitwise_equal(threaded, serial,
                           "int8 teams=" + std::to_string(teams) + " trial " +
                               std::to_string(trial));
    }
  }
}

TEST(Gemm, ForceNaiveRoutesLayersOntoReference) {
  sys::Rng rng(104);
  Dense d(13, 9, rng);
  Tensor x({3, 13});
  fill_random(x, rng);
  const Tensor engine = d.forward(x, false);
  gemm::set_force_naive(true);
  const Tensor naive = d.forward(x, false);
  gemm::set_force_naive(false);
  ASSERT_FALSE(gemm::force_naive());
  expect_bitwise_equal(engine, naive, "force_naive A/B");
}

}  // namespace
}  // namespace dnnd::nn
