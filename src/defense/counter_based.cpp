#include "defense/counter_based.hpp"

namespace dnnd::defense {

using dram::RowAddr;

CounterBased::CounterBased(dram::DramDevice& device, dram::RowRemapper& remap,
                           CounterBasedConfig cfg)
    : Mitigation(device, remap), cfg_(std::move(cfg)) {}

u64 CounterBased::track(const RowAddr& row) {
  const auto& geo = device_.config().geo;
  if (cfg_.counters_in_dram) {
    // Counter update pays a DRAM access (the Counter-per-Row / tree /
    // Hydra-miss path); modelled as one burst's worth of time and energy.
    device_.stats().energy += device_.config().energy.rd_burst;
    stats_.energy_spent += device_.config().energy.rd_burst;
  } else {
    charge_tracker_access();
  }
  const u64 id = flat_row_id(geo, row);
  if (cfg_.tracker == TrackerKind::kPerRow || cfg_.tracker == TrackerKind::kTree) {
    return ++counts_[id];  // exact counting, capacity = all rows
  }
  // Summary trackers: bounded entries per bank, Misra-Gries eviction.
  auto it = counts_.find(id);
  if (it != counts_.end()) return ++it->second;
  usize& used = entries_per_bank_[row.bank];
  if (used < cfg_.table_entries) {
    ++used;
    counts_[id] = 1;
    return 1;
  }
  for (auto i = counts_.begin(); i != counts_.end();) {
    if (unflatten_row_id(geo, i->first).bank == row.bank && --i->second == 0) {
      i = counts_.erase(i);
      --used;
    } else {
      ++i;
    }
  }
  return 0;
}

void CounterBased::on_activate(const RowAddr& row, Picoseconds /*now*/) {
  if (in_maintenance()) return;
  const u64 count = track(row);
  const u64 threshold = static_cast<u64>(
      cfg_.refresh_threshold_fraction * static_cast<double>(device_.config().t_rh));
  if (threshold == 0 || count < threshold) return;
  counts_[flat_row_id(device_.config().geo, row)] = 0;
  maintenance([&] { refresh_neighbors(row); });
}

void CounterBased::refresh_neighbors(const RowAddr& hot) {
  const auto& geo = device_.config().geo;
  // An ACT of each victim restores its cells (neighbour-refresh).
  if (hot.row >= 1) {
    device_.activate(RowAddr{hot.bank, hot.subarray, hot.row - 1});
    device_.precharge(hot.bank);
  }
  if (hot.row + 1 < geo.rows_per_subarray) {
    device_.activate(RowAddr{hot.bank, hot.subarray, hot.row + 1});
    device_.precharge(hot.bank);
  }
  ++refreshes_;
  stats_.maintenance_ops += 1;
}

CounterBasedConfig CounterBased::graphene() {
  CounterBasedConfig c;
  c.name = "Graphene";
  c.tracker = TrackerKind::kMisraGries;
  c.refresh_threshold_fraction = 0.25;
  c.table_entries = 256;  // generous CAM+SRAM tables
  return c;
}

CounterBasedConfig CounterBased::twice() {
  CounterBasedConfig c;
  c.name = "TWiCE";
  c.tracker = TrackerKind::kMisraGries;
  c.refresh_threshold_fraction = 0.25;
  c.table_entries = 512;  // larger table, pruned periodically
  return c;
}

CounterBasedConfig CounterBased::hydra() {
  CounterBasedConfig c;
  c.name = "Hydra";
  c.tracker = TrackerKind::kHybrid;
  c.refresh_threshold_fraction = 0.25;
  c.table_entries = 64;        // small SRAM cache
  c.counters_in_dram = true;   // backed by DRAM counter groups
  return c;
}

CounterBasedConfig CounterBased::counter_per_row() {
  CounterBasedConfig c;
  c.name = "CounterPerRow";
  c.tracker = TrackerKind::kPerRow;
  c.refresh_threshold_fraction = 0.25;
  c.counters_in_dram = true;
  return c;
}

CounterBasedConfig CounterBased::counter_tree() {
  CounterBasedConfig c;
  c.name = "CounterTree";
  c.tracker = TrackerKind::kTree;
  c.refresh_threshold_fraction = 0.25;
  c.counters_in_dram = true;
  return c;
}

}  // namespace dnnd::defense
