// Thread-safe memoization of the expensive, shared scenario prerequisites:
// synthetic datasets and trained model weights. Many grid cells attack the
// same trained model; training it once per (arch, dataset, width, epochs,
// seed) key keeps a parallel campaign from redundantly retraining per cell.
//
// Determinism: an entry's content depends only on its key (training is
// single-threaded and fully seeded), so whichever worker populates the cache
// first, every scenario observes identical weights -- thread schedule cannot
// leak into results.
#pragma once

#include <map>
#include <memory>
#include <mutex>
#include <string>

#include "harness/scenario.hpp"
#include "nn/model.hpp"
#include "nn/trainer.hpp"

namespace dnnd::harness {

class ArtifactCache {
 public:
  /// The (cached) dataset for a kind. The reference stays valid for the
  /// cache's lifetime; datasets are immutable after construction.
  const nn::SplitDataset& dataset(DatasetKind kind);

  /// A freshly-constructed model carrying cached trained weights. Each call
  /// returns an independent instance (scenarios mutate their models).
  std::unique_ptr<nn::Model> trained_model(DatasetKind data, const TrainSpec& spec);

 private:
  struct DatasetEntry {
    std::mutex mu;
    std::unique_ptr<nn::SplitDataset> data;
  };
  struct ModelEntry {
    std::mutex mu;
    bool ready = false;
    std::vector<nn::Tensor> state;  ///< trained save_state snapshot
  };

  /// Builds an untrained model instance for a spec ("mlp" = test MLP).
  std::unique_ptr<nn::Model> build_model(const nn::SplitDataset& data, const TrainSpec& spec);

  std::mutex mu_;  ///< guards the maps; entries carry their own locks
  std::map<int, std::unique_ptr<DatasetEntry>> datasets_;
  std::map<std::string, std::unique_ptr<ModelEntry>> models_;
};

}  // namespace dnnd::harness
