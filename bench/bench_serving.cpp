// bench_serving: inference serving under live RowHammer attack and defense.
//
// An open-loop Poisson request stream (seeded, reproducible) feeds a bounded
// admission queue and a batch coalescer in front of the GEMM engine; the
// installed mitigation's tick() interleaves on a virtual-time schedule, and
// an attacker thread optionally carries white-box BFA flips through the
// DRAM substrate at planned batch boundaries. Three regimes run on fresh
// systems over the same arrival schedule:
//
//   defense-off          undefended device, no attack (latency floor)
//   defense-on           DNN-Defender installed, no attack (defense cost)
//   defense-on+attack    DNN-Defender vs the live attacker (the paper's case)
//
// Wall-clock latencies (p50/p99/p999, achieved rps) are real measurements
// and excluded from every byte gate; the arrival schedule, batch
// composition, drop accounting, tick count, and attack decision stream are
// deterministic in DNND_SERVE_SEED and pinned across runs and DNND_THREADS
// by each regime's digest (tests/test_serving.cpp and the CI smoke leg).
//
// Knobs: DNND_SERVE_RATE, DNND_SERVE_DURATION_MS, DNND_SERVE_BATCH_CAP,
// DNND_SERVE_MAX_WAIT_US, DNND_SERVE_QUEUE, DNND_SERVE_SEED,
// DNND_SERVE_TICK_US, DNND_SERVE_ATTACK_EVERY, DNND_SERVE_RESERVOIR, plus
// DNND_BENCH_MODEL / DNND_THREADS / DNND_SIMD from the engine. `--tiny`
// swaps in the 4-class test set and the test MLP for a ~2s CI smoke run.
//
// JSON artifact: the ServingReport document, persisted through the shared
// DNND_JSON_OUT sink protocol (stem "serving") and always printed to stdout.
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.hpp"
#include "core/priority_profiler.hpp"
#include "harness/artifact_cache.hpp"
#include "harness/sink.hpp"
#include "nn/gemm.hpp"
#include "nn/simd.hpp"
#include "quant/quantizer.hpp"
#include "serving/report.hpp"
#include "sys/table.hpp"
#include "system/protected_system.hpp"

using namespace dnnd;

namespace {

struct RegimeSetup {
  bool defended = false;
  bool attacked = false;
};

/// Runs one regime on a FRESH quantized model + protected system so the
/// regimes are independent measurements over the identical arrival schedule.
serving::RegimeStats run_regime(const std::string& name, const RegimeSetup& setup,
                                harness::ArtifactCache& cache, harness::DatasetKind dataset,
                                const harness::TrainSpec& train, const serving::ServeConfig& cfg,
                                const nn::Dataset& pool, const nn::Tensor& eval_x,
                                const std::vector<u32>& eval_y, const nn::Tensor& attack_x,
                                const std::vector<u32>& attack_y) {
  auto model = cache.trained_model(dataset, train);
  quant::QuantizedModel qm(*model);
  system::ProtectedSystemConfig scfg;
  scfg.seed = cfg.seed;
  system::ProtectedSystem psys(qm, scfg);
  if (setup.defended) {
    core::PriorityProfiler profiler(qm, attack_x, attack_y);
    psys.install_dnn_defender(profiler.profile_blocked_attacker(60));
  }
  return serving::serve_regime(name, psys, pool, eval_x, eval_y, attack_x, attack_y, cfg,
                               setup.attacked);
}

}  // namespace

int main(int argc, char** argv) {
  bool tiny = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--tiny") == 0) {
      tiny = true;
    } else {
      std::fprintf(stderr, "usage: %s [--tiny]\n", argv[0]);
      return 2;
    }
  }

  const char* model_env = std::getenv("DNND_BENCH_MODEL");
  const std::string arch =
      tiny ? "mlp" : (model_env != nullptr && model_env[0] != '\0' ? model_env : "resnet20");
  const harness::DatasetKind dataset =
      tiny ? harness::DatasetKind::kTinyEasy : harness::DatasetKind::kCifar10Like;
  const harness::TrainSpec train{.arch = arch, .width_mult = 1,
                                 .epochs = tiny ? usize{5} : usize{6},
                                 .seed = tiny ? u64{7} : u64{1}};
  const serving::ServeConfig cfg = serving::serve_config_from_env();

  bench::banner("Serving under attack -- open-loop traffic, coalescing, live defense",
                "engine traffic bench (BENCH trajectory; not a paper figure)");
  std::printf("[load] %zu rps offered for %zu ms, batch cap %zu, max wait %zu us, "
              "queue %zu, seed %llu\n",
              cfg.rate_rps, cfg.duration_ms, cfg.batch_cap, cfg.max_wait_us, cfg.queue_depth,
              static_cast<unsigned long long>(cfg.seed));
  std::printf("[threads] GEMM team size: %zu\n", nn::gemm::threads());

  harness::ArtifactCache cache;
  const nn::SplitDataset& data = cache.dataset(dataset);
  auto [ex, ey] = data.test.head(std::min<usize>(data.test.size(), 160));
  auto [ax, ay] = data.test.head(32);

  serving::ServingReport report;
  report.model = arch;
  report.threads = nn::gemm::threads();
  report.simd = nn::simd::isa_name(nn::simd::active_isa());
  report.config = cfg;

  const std::pair<std::string, RegimeSetup> regimes[] = {
      {"defense-off", {.defended = false, .attacked = false}},
      {"defense-on", {.defended = true, .attacked = false}},
      {"defense-on+attack", {.defended = true, .attacked = true}},
  };
  for (const auto& [name, setup] : regimes) {
    report.regimes.push_back(run_regime(name, setup, cache, dataset, train, cfg, data.test,
                                        ex, ey, ax, ay));
  }

  sys::Table table({"Regime", "req", "drop", "batches", "p50 us", "p99 us", "p99.9 us",
                    "ach. rps", "ticks", "atk L/B", "acc before", "acc after"});
  for (const serving::RegimeStats& r : report.regimes) {
    table.add_row({r.name, sys::fmt_count(r.requests), sys::fmt_count(r.dropped),
                   sys::fmt_count(r.batches), sys::fmt(static_cast<double>(r.p50_ns) / 1e3, 1),
                   sys::fmt(static_cast<double>(r.p99_ns) / 1e3, 1),
                   sys::fmt(static_cast<double>(r.p999_ns) / 1e3, 1),
                   sys::fmt(r.achieved_rps, 0), sys::fmt_count(r.ticks),
                   sys::fmt_count(r.attack_landed) + "/" + sys::fmt_count(r.attack_blocked),
                   sys::fmt(100.0 * r.accuracy_before, 2) + "%",
                   sys::fmt(100.0 * r.accuracy_after, 2) + "%"});
  }
  table.print();
  std::printf("\nDecision-stream digests (byte-gated; wall-clock fields are not):\n%s",
              serving::deterministic_projection(report).c_str());

  try {
    serving::validate_serving_report(report);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "bench_serving: self-check failed: %s\n", e.what());
    return 1;
  }

  const std::string json = report.to_json();
  std::printf("%s\n", json.c_str());
  std::string destination;
  switch (harness::write_document_from_env(json, "serving", &destination)) {
    case harness::SinkWriteStatus::kWritten:
      std::printf("[sink] serving JSON -> %s\n", destination.c_str());
      break;
    case harness::SinkWriteStatus::kFailed:
      return 1;
    case harness::SinkWriteStatus::kNoSink:
      break;
  }
  return 0;
}
