// Model: a Sequential network plus the bookkeeping the trainer, quantizer,
// and attacks need -- flat parameter enumeration, gradient reset, batch
// forward/backward, and prediction helpers.
//
// The model owns the Workspace arena its network computes in: forward_cached
// runs the full net and caches every layer activation there (zero heap
// allocations in steady state), and forward_from(k) incrementally re-
// evaluates layers >= k over the cached prefix -- the probe primitive the
// BFA-family attacks use to price candidate bit flips at a cost proportional
// to the remaining depth instead of the whole network.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/layers.hpp"
#include "nn/loss.hpp"

namespace dnnd::nn {

class Model {
 public:
  explicit Model(std::string name) : name_(std::move(name)) {}

  /// Appends a layer to the network.
  void add(std::unique_ptr<Layer> layer) { net_.add(std::move(layer)); }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Sequential& net() { return net_; }
  [[nodiscard]] Workspace& workspace() { return ws_; }

  /// Full forward pass through the model workspace; returns a reference to
  /// the cached logits (valid until the next forward/backward on this model).
  /// `train` selects batch statistics for BatchNorm.
  const Tensor& forward_cached(const Tensor& x, bool train = false) {
    last_input_ = x.data();
    last_input_size_ = x.size();
    last_edge_[0] = x.size() > 0 ? x[0] : 0.0f;
    last_edge_[1] = x.size() > 0 ? x[x.size() - 1] : 0.0f;
    last_train_ = train;
    return net_.forward_cached(x, train, ws_);
  }

  /// Incremental re-evaluation after perturbing parameters of top-level layer
  /// `first_changed` (see Sequential::forward_from for the cache contract).
  const Tensor& forward_from(usize first_changed, bool train = false) {
    return net_.forward_from(first_changed, train, ws_);
  }

  /// Marks cached activations beyond top-level layer `first_changed` stale
  /// after a parameter mutation (committed flips route through this via
  /// QuantizedModel so a later forward_from cannot read pre-flip state).
  void invalidate_from(usize first_changed) { net_.invalidate_from(first_changed); }

  /// Value-returning forward for callers that keep the logits.
  Tensor forward(const Tensor& x, bool train = false) { return forward_cached(x, train); }

  /// Backward pass from dL/dlogits.
  void backward(const Tensor& dlogits) { net_.backward_cached(dlogits, ws_); }

  /// All parameters in declaration order with hierarchical names.
  std::vector<ParamRef> params() { return net_.params(); }

  /// Only the BFA-targetable (quantizable) weight tensors.
  std::vector<ParamRef> quantizable_params();

  /// Zeroes every gradient buffer.
  void zero_grad();

  /// Complete value snapshot: all parameters plus persistent layer state
  /// (BatchNorm running statistics). Restoring reproduces inference exactly.
  [[nodiscard]] std::vector<Tensor> save_state();
  void load_state(const std::vector<Tensor>& snapshot);

  /// Total parameter count (all) and quantizable weight count.
  [[nodiscard]] usize param_count();
  [[nodiscard]] usize weight_count();

  /// Computes loss and accumulates gradients on a batch. Uses train=false
  /// statistics by default (the BFA computes gradients of the *inference*
  /// loss, i.e. with frozen BatchNorm statistics, per the threat model).
  /// The returned reference aliases model-owned scratch: read it before the
  /// next loss_and_grad call.
  const LossResult& loss_and_grad(const Tensor& x, const std::vector<u32>& labels,
                                  bool train_mode = false);

  /// Loss only, no gradients.
  double loss(const Tensor& x, const std::vector<u32>& labels);

  /// Loss and argmax accuracy from ONE forward pass -- the shared evaluation
  /// helper the attacks and the campaign harness use instead of separate
  /// loss()/accuracy() calls (which would forward twice).
  BatchEval evaluate_batch(const Tensor& x, const std::vector<u32>& labels);

  /// Per-class variant of evaluate_batch for a source->target pair (`source`
  /// may be kAllSources): one forward, per-class counts plus attack-success
  /// and other-class accuracy written into `out`. Overall loss/accuracy agree
  /// with evaluate_batch bit-for-bit.
  void evaluate_batch_per_class(const Tensor& x, const std::vector<u32>& labels,
                                u32 source, u32 target, PerClassEval& out);

  /// evaluate_batch that recomputes ONLY the layers whose parameters changed
  /// since the last forward (via the invalidate_from frontier) when the cache
  /// is reusable, and falls back to the full pass otherwise. Byte-identical
  /// to evaluate_batch in both cases.
  ///
  /// The cache is reusable when this model last forwarded the SAME batch
  /// object (`x.data()` and size match; keep the batch tensor alive and
  /// unmodified between calls) in eval mode, and every parameter mutation
  /// since went through invalidate_from -- true for all QuantizedModel
  /// mutators. The attack measurement loops (random / adaptive / white-box)
  /// ride this: after a flip burst, only the stale suffix re-runs.
  BatchEval evaluate_batch_incremental(const Tensor& x, const std::vector<u32>& labels);

  /// loss_and_grad with the same cache-reuse rule as
  /// evaluate_batch_incremental: when the last forward was the same batch in
  /// eval mode, only layers at/beyond the invalidation frontier re-forward
  /// before the (full) backward pass. Layer backward caches ahead of the
  /// frontier are still valid -- same input, same parameters -- so gradients
  /// are byte-identical to the full-forward path. The BFA step uses this to
  /// avoid re-running the clean prefix of the network every iteration.
  const LossResult& loss_and_grad_incremental(const Tensor& x, const std::vector<u32>& labels);

  /// The incremental-cache forward (same reuse rule as the helpers above),
  /// exposed for objectives beyond plain cross-entropy: callers compute their
  /// own loss/gradient from the returned logits and drive backward() with it
  /// (the T-BFA targeted objective does). The reference is valid until the
  /// next forward/backward on this model.
  const Tensor& forward_incremental_logits(const Tensor& x) { return forward_incremental(x); }

  /// Fraction of correct argmax predictions on (x, labels).
  double accuracy(const Tensor& x, const std::vector<u32>& labels);

 private:
  /// Cached logits when the last forward matches (same batch, eval mode),
  /// re-running only stale layers; a fresh full forward otherwise.
  const Tensor& forward_incremental(const Tensor& x);

  std::string name_;
  Sequential net_;
  Workspace ws_;
  LossResult loss_scratch_;  ///< reused by loss_and_grad (zero-alloc steady state)
  // Identity of the last forwarded batch, for the incremental helpers:
  // pointer + size plus an edge-value fingerprint, so a batch refilled in
  // place (or a new tensor landing on the same allocation) falls back to the
  // full forward instead of silently reusing a stale cache.
  const float* last_input_ = nullptr;
  usize last_input_size_ = 0;
  float last_edge_[2] = {0.0f, 0.0f};
  bool last_train_ = false;
};

}  // namespace dnnd::nn
