// ThreadPool: the process-wide worker pool behind the parallel GEMM.
//
// The pool runs "team regions": parallel(teams, body) invokes body(slot,
// teams) once for every slot in [0, teams). Slot 0 always runs on the calling
// thread; the remaining slots are offered to the pool's workers, and any slot
// no worker has claimed by the time the caller finishes its own share is
// executed by the caller itself (caller work-stealing). A region therefore
// always completes, even when every worker is busy with someone else's region
// -- which is exactly what happens when several CampaignRunner scenario
// threads hit the GEMM at once -- and can never deadlock.
//
// Determinism contract: the partition of work across slots is STATIC (the
// body derives its range from `slot`/`teams` alone), so which thread executes
// a slot can never change any output byte. Nested regions degrade to serial
// execution of the body on the calling thread (in_region() is thread-local),
// keeping per-slot scratch buffers exclusive to one running body at a time --
// e.g. Conv2d's threaded im2col gather, which runs inside the batch-parallel
// region when the batch is split and as its own region when it is not.
//
// Workers are spawned lazily up to the largest team ever requested minus one
// and live for the process lifetime. The pool allocates nothing per region
// on the steady-state path (the region descriptor lives on the caller's
// stack); the Workspace zero-allocation invariant extends over threaded
// forwards.
#pragma once

#include <condition_variable>
#include <deque>
#include <exception>
#include <mutex>
#include <thread>
#include <type_traits>
#include <vector>

#include "sys/types.hpp"

namespace dnnd::nn {

class ThreadPool {
 public:
  /// The process-wide pool (lazily constructed, joined at exit).
  static ThreadPool& instance();

  /// Runs body(slot, teams) for every slot in [0, teams), blocking until all
  /// slots finished. teams <= 1 -- or a call from inside another region --
  /// runs body(0, 1) inline. The callable is passed by reference (it outlives
  /// the call by construction), so no closure is copied or heap-allocated.
  /// If any slot's body throws, the region still completes every slot and the
  /// first exception is rethrown on the calling thread.
  template <typename F>
  void parallel(usize teams, F&& body) {
    using Body = std::remove_reference_t<F>;
    void* ctx = const_cast<void*>(static_cast<const void*>(std::addressof(body)));
    parallel_impl(teams, ctx, [](void* c, usize slot, usize t) {
      (*static_cast<Body*>(c))(slot, t);
    });
  }

  /// True while the current thread is executing a region body (worker or
  /// participating caller). Parallel entry points use this to degrade nested
  /// parallelism to serial execution.
  [[nodiscard]] static bool in_region();

  /// Pre-spawns workers until `n` exist. A region only ensures its own
  /// team's worth (teams - 1); callers that fan out CONCURRENT regions --
  /// the campaign runs scenario_workers x (team - 1) pool slots at once --
  /// reserve the aggregate here so the regions don't contend for a
  /// single region's worker count.
  void reserve_workers(usize n);

  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

 private:
  ThreadPool() = default;

  using BodyFn = void (*)(void* ctx, usize slot, usize teams);

  /// One parallel region; lives on the caller's stack for its duration (the
  /// caller does not return before every slot -- and thus every reference to
  /// the region -- has finished).
  struct Region {
    void* ctx = nullptr;
    BodyFn body = nullptr;
    usize teams = 0;
    usize next_slot = 1;  ///< slots 1..teams-1 claimable; 0 is the caller's
    usize done = 0;
    std::exception_ptr error;  ///< first body exception; rethrown by the caller
    std::mutex m;
    std::condition_variable cv;
  };

  void parallel_impl(usize teams, void* ctx, BodyFn body);
  /// Claims the next unclaimed slot of `r`, or returns teams when exhausted.
  static usize claim_slot(Region& r);
  static void run_slot(Region& r, usize slot);
  void ensure_workers(usize n);
  void worker_loop();

  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<Region*> queue_;  ///< regions with unclaimed slots
  std::vector<std::thread> workers_;
  bool stop_ = false;
};

}  // namespace dnnd::nn
