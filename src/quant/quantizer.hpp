// Symmetric per-layer 8-bit weight quantization with two's-complement bit
// access -- the representation the BFA threat model attacks.
//
// Each quantizable weight tensor W gets scale s = max|W| / 127 and integer
// codes q = clamp(round(W/s), -128, 127). Inference runs on the dequantized
// ("materialized") values q*s written back into the float model, the standard
// fake-quantization scheme BFA evaluations use. Flipping two's-complement bit
// j of a code changes the weight by +-s*2^j (+-s*128 for the sign bit), which
// is why MSB flips are the attack's weapon of choice.
#pragma once

#include <string>
#include <vector>

#include "nn/model.hpp"

namespace dnnd::quant {

/// Two's-complement bit j of code q, as stored in the memory byte.
inline bool get_bit(i8 q, u32 bit) { return (static_cast<u8>(q) >> bit) & 1; }

/// Code with bit j flipped.
inline i8 flip_bit_value(i8 q, u32 bit) {
  return static_cast<i8>(static_cast<u8>(q) ^ static_cast<u8>(1u << bit));
}

/// Signed contribution of bit j to the code value: -128 for bit 7 (sign),
/// +2^j otherwise.
inline i32 bit_weight(u32 bit) { return bit == 7 ? -128 : (1 << bit); }

/// Identifies one bit of one weight: (quantized layer, flat weight index, bit).
struct BitLocation {
  usize layer = 0;
  usize index = 0;
  u32 bit = 0;

  friend bool operator==(const BitLocation&, const BitLocation&) = default;

  /// Packs into a sortable/hashable key (layer < 2^20, index < 2^41).
  [[nodiscard]] u64 key() const {
    return (static_cast<u64>(layer) << 44) | (static_cast<u64>(index) << 3) | bit;
  }
  static BitLocation from_key(u64 k) {
    return {static_cast<usize>(k >> 44), static_cast<usize>((k >> 3) & ((1ULL << 41) - 1)),
            static_cast<u32>(k & 7)};
  }
};

namespace detail {

/// BitLocation::key() packing limits: 20 bits of layer index, 41 of weight
/// index. Exceeding either would silently alias distinct bits under one key.
inline constexpr usize kMaxKeyLayers = usize{1} << 20;
inline constexpr usize kMaxKeyIndex = usize{1} << 41;

/// Throws std::length_error if a model of `layer_count` quantized layers with
/// largest layer `max_layer_size` weights could alias under key(). Checked at
/// QuantizedModel construction so every BitLocation minted later is packable.
void validate_bit_key_bounds(usize layer_count, usize max_layer_size);

}  // namespace detail

/// One quantized weight tensor.
struct QuantizedLayer {
  std::string name;        ///< hierarchical parameter name
  std::vector<i8> q;       ///< integer codes, same flat order as the float tensor
  float scale = 1.0f;
  nn::Tensor* value = nullptr;  ///< float weights used by inference
  nn::Tensor* grad = nullptr;   ///< gradient buffer of the float weights
  /// Index of the owning layer in the model's top-level Sequential -- the
  /// Model::forward_from argument that incrementally re-evaluates a flip in
  /// this tensor (only layers >= net_layer can see the changed weight).
  usize net_layer = 0;
  /// The Dense/Conv2d the tensor belongs to (for panel attachment).
  nn::Layer* owner = nullptr;

  /// Fused int8 residency: the dequantized weight panel in gemm::pack_b
  /// layout, kept bit-identical to pack_b(materialized floats) at all times.
  /// While attached to the owning layer, forward consumes it directly and a
  /// bit flip costs ONE panel float update instead of a per-forward repack.
  std::vector<float> packed;
  usize pack_rows = 0;  ///< N: weight.dim(0) (out features / out channels)
  usize pack_cols = 0;  ///< K: weights per output (in features / in_ch*k*k)

  /// True-integer residency (the DNND_INT8 regime): the raw codes in
  /// gemm::pack_b_q8 panel layout. Maintained in lockstep with `packed` -- a
  /// bit flip updates ONE byte here, so the incremental forward_from(k) probe
  /// contract holds in the integer regime too.
  std::vector<i8> packed_q;
  float act_scale = 0.0f;  ///< calibrated activation scale (0 = uncalibrated)
  float act_amax = 0.0f;   ///< running input abs-max across calibration passes

  [[nodiscard]] usize size() const { return q.size(); }
};

/// Quantized view over a Model's weight tensors. Owns the integer codes and
/// the resident packed panels of the fused int8 forward path; the float
/// model remains the inference engine (and stays in sync code-for-code).
///
/// Invariant: while a QuantizedModel is alive, every mutation of a quantized
/// weight tensor must go through it (flip / set_q / restore / materialize) so
/// codes, floats, and packed panels never diverge. All in-tree mutators
/// (attacks, ReconstructionGuard, WeightMapping::download) already do.
class QuantizedModel {
 public:
  /// Quantizes all quantizable parameters of `model`, materializes the
  /// dequantized values into the model (so inference == quantized inference),
  /// and attaches resident packed panels to the owning Dense/Conv2d layers
  /// (the fused int8 path; byte-identical to re-packing the floats).
  explicit QuantizedModel(nn::Model& model);
  ~QuantizedModel();
  QuantizedModel(const QuantizedModel&) = delete;
  QuantizedModel& operator=(const QuantizedModel&) = delete;

  [[nodiscard]] usize num_layers() const { return layers_.size(); }
  [[nodiscard]] QuantizedLayer& layer(usize i) { return layers_.at(i); }
  [[nodiscard]] const QuantizedLayer& layer(usize i) const { return layers_.at(i); }

  [[nodiscard]] nn::Model& model() { return model_; }

  /// Total number of weights / weight bits across all quantized layers.
  [[nodiscard]] u64 total_weights() const;
  [[nodiscard]] u64 total_bits() const { return total_weights() * 8; }

  /// Rewrites every float weight (and packed panel) from its code -- the full
  /// dequantization pass. flip/set_q/restore keep everything in sync
  /// incrementally, so this is only needed after external code edits.
  void materialize();

  /// Flips one bit: updates the code, the corresponding float weight, and
  /// the one affected packed-panel float.
  void flip(const BitLocation& loc);

  /// Reads / writes one code (set_q also updates the float weight and panel).
  /// Writing the value a code already holds is a no-op: it neither touches
  /// the floats nor invalidates the incremental-forward cache, which is what
  /// lets WeightMapping::download sync the whole model from DRAM after an
  /// attack attempt without paying a materialization or re-forward for the
  /// (vast majority of) unchanged weights.
  [[nodiscard]] i8 get_q(usize layer, usize index) const;
  void set_q(usize layer, usize index, i8 code);

  /// Full snapshot of the integer codes (cheap: one byte per weight).
  [[nodiscard]] std::vector<std::vector<i8>> snapshot() const;
  /// Restores a snapshot incrementally: only codes that differ are rewritten
  /// (code + float + panel), and the forward cache is invalidated from the
  /// earliest changed layer only -- not a full materialization pass.
  void restore(const std::vector<std::vector<i8>>& snap);

  /// Detaches (set_fused(false)) or re-attaches the resident packed panels.
  /// The panels stay maintained either way, so toggling is O(layers); this is
  /// the A/B knob bench_inference uses to price the fused path. Results are
  /// byte-identical in both modes.
  void set_fused(bool on);
  [[nodiscard]] bool fused() const { return fused_; }

  /// Hamming distance of current codes to a snapshot (total flipped bits).
  [[nodiscard]] u64 hamming_distance(const std::vector<std::vector<i8>>& snap) const;

  /// Freezes static activation scales for the true-integer regime from one
  /// recording pass: a FLOAT forward over `x` (the int8 override is forced
  /// off for the pass) folds each quantizable layer's input abs-max into its
  /// accumulator, then act_scale = amax / 127. Accumulates across calls, so
  /// calibrating on several representative batches only widens the range.
  /// Invalidates the forward cache (the recorded activations are float-path).
  void calibrate_int8(const nn::Tensor& x);

  /// calibrate_int8(x) once per model, and only when the integer regime is
  /// actually enabled -- a no-op in the default float regime, so wiring this
  /// into attacker constructors cannot perturb the byte-gated paths.
  void ensure_int8_calibrated(const nn::Tensor& x);
  [[nodiscard]] bool int8_calibrated() const { return int8_calibrated_; }

 private:
  /// (Re)builds layer `l`'s packed panel from its codes.
  void build_pack(QuantizedLayer& l);
  /// Attaches/detaches layer `l`'s panel on its owning Dense/Conv2d.
  void attach_pack(QuantizedLayer& l, bool on);

  nn::Model& model_;
  std::vector<QuantizedLayer> layers_;
  bool fused_ = true;
  bool int8_calibrated_ = false;
};

}  // namespace dnnd::quant
