// Bit-level gradient ranking used by the BFA's intra-layer search.
//
// For weight w = s*q with accumulated gradient g = dL/dw, flipping
// two's-complement bit j changes the code by dq = (1 - 2*b_j) * bit_weight(j)
// and the loss by approximately dL = g * s * dq (first order). The attack
// ranks bits by this estimated loss increase, which matches the
// |grad|-ranking + sign-masking formulation of Rakin et al. (ICCV'19).
#pragma once

#include <unordered_set>
#include <vector>

#include "quant/quantizer.hpp"

namespace dnnd::quant {

/// Set of bits to exclude from candidate selection (already flipped in a
/// previous round, or secured by the defense).
class BitSkipSet {
 public:
  void insert(const BitLocation& loc) { keys_.insert(loc.key()); }
  /// Set union: merges `other` without materializing BitLocations (the
  /// ProbeEngine folds its committed-flip set into the caller's skip set
  /// once per step, so this is on the search hot path).
  void insert_all(const BitSkipSet& other) {
    keys_.insert(other.keys_.begin(), other.keys_.end());
  }
  [[nodiscard]] bool contains(const BitLocation& loc) const {
    return keys_.count(loc.key()) != 0;
  }
  [[nodiscard]] usize size() const { return keys_.size(); }
  [[nodiscard]] bool empty() const { return keys_.empty(); }

  /// Iteration support (stable order not guaranteed).
  [[nodiscard]] std::vector<BitLocation> to_vector() const;

 private:
  std::unordered_set<u64> keys_;
};

/// One candidate bit flip with its first-order loss-increase estimate.
struct FlipCandidate {
  BitLocation loc;
  double estimated_gain = 0.0;  ///< first-order dL of the flip (>0 raises loss)
};

/// First-order loss change of flipping bit `bit` of weight `index` in `layer`
/// given its current code and gradient.
double flip_gain(const QuantizedLayer& layer, usize index, u32 bit);

/// Top-k candidates of one layer by estimated gain, skipping `skip`.
/// Only candidates with positive estimated gain are returned (a flip that
/// lowers the loss is never useful to the attacker).
std::vector<FlipCandidate> top_k_flips(const QuantizedLayer& layer, usize layer_index, usize k,
                                       const BitSkipSet& skip);

}  // namespace dnnd::quant
