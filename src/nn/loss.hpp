// Softmax cross-entropy loss (the inference loss L that the BFA maximises).
#pragma once

#include <vector>

#include "nn/tensor.hpp"

namespace dnnd::nn {

/// Result of a loss evaluation over a batch.
struct LossResult {
  double loss = 0.0;      ///< mean cross-entropy
  Tensor dlogits;         ///< gradient w.r.t. the logits (already /N)
  usize correct = 0;      ///< argmax hits, for accuracy bookkeeping
};

/// Computes mean softmax cross-entropy and its gradient for logits {N, C}.
LossResult softmax_cross_entropy(const Tensor& logits, const std::vector<u32>& labels);

/// Loss only (no gradient allocation) -- used by attack inner loops where
/// only the scalar matters.
double softmax_cross_entropy_loss(const Tensor& logits, const std::vector<u32>& labels);

/// Argmax class per row of logits {N, C}.
std::vector<u32> argmax_rows(const Tensor& logits);

}  // namespace dnnd::nn
