// Weight-to-DRAM layout: the "mapping file" of the paper's threat model
// (Fig. 4). Quantized weights are stored one byte per weight, packed into
// DRAM rows that are spread over banks/subarrays (threat-model assumption:
// vulnerable data rows are neither concentrated in one subarray nor exactly
// evenly distributed). Both the victim system and the white-box attacker
// hold this mapping.
#pragma once

#include <optional>
#include <vector>

#include "dram/dram_device.hpp"
#include "dram/row_remapper.hpp"
#include "quant/quantizer.hpp"

namespace dnnd::mapping {

struct MappingConfig {
  u32 reserved_rows_per_subarray = 4;  ///< rows at the top of each subarray kept free
                                       ///< for the defense's reserved region
  u64 placement_seed = 0xA110C;        ///< jitters row placement across subarrays
  bool leave_aggressor_gaps = true;    ///< keep the rows adjacent to weight rows free
                                       ///< (they belong to other processes; the
                                       ///< attacker massages its pages into them)
};

/// Physical byte position of one weight.
struct Placement {
  dram::RowAddr row;  ///< logical row (defense indirection applies on top)
  usize col = 0;      ///< byte within the row
};

/// Identifies one weight (without a bit index).
struct WeightLocation {
  usize layer = 0;
  usize index = 0;

  friend bool operator==(const WeightLocation&, const WeightLocation&) = default;
};

class WeightMapping {
 public:
  /// Plans the layout for `qm` on a device with geometry `cfg.geo`.
  WeightMapping(const quant::QuantizedModel& qm, const dram::DramConfig& cfg,
                MappingConfig mapping_cfg = {});

  /// Where does weight (layer, index) live (logical address)?
  [[nodiscard]] Placement locate(usize layer, usize index) const;

  /// Which weight occupies byte `col` of logical row `row`? nullopt when the
  /// byte is padding / not a weight.
  [[nodiscard]] std::optional<WeightLocation> weight_at(const dram::RowAddr& row,
                                                        usize col) const;

  /// All logical rows that hold at least one weight, in layout order.
  [[nodiscard]] const std::vector<dram::RowAddr>& weight_rows() const { return rows_; }

  /// Writes every quantized weight into the device (direct cell write;
  /// setup, not timed traffic). `remap` translates logical->physical.
  void upload(const quant::QuantizedModel& qm, dram::DramDevice& dev,
              const dram::RowRemapper& remap) const;

  /// Reads every weight byte back from the device into the quantized model
  /// and re-materializes (this is how RowHammer flips reach inference).
  void download(quant::QuantizedModel& qm, const dram::DramDevice& dev,
                const dram::RowRemapper& remap) const;

  /// Number of weight bytes stored in a given logical row.
  [[nodiscard]] usize weights_in_row(const dram::RowAddr& row) const;

  [[nodiscard]] const MappingConfig& config() const { return cfg_; }

 private:
  struct RowSpan {
    dram::RowAddr row;
    usize first_weight = 0;  ///< global weight ordinal of col 0
    usize count = 0;         ///< weight bytes used in this row
  };

  [[nodiscard]] const RowSpan* span_for(const dram::RowAddr& row) const;

  MappingConfig cfg_;
  dram::Geometry geo_;
  std::vector<usize> layer_offsets_;  ///< global ordinal of each layer's first weight
  std::vector<RowSpan> spans_;        ///< one per allocated row, layout order
  std::vector<dram::RowAddr> rows_;
  std::vector<i64> row_index_of_flat_;  ///< flat logical row id -> span index or -1
};

}  // namespace dnnd::mapping
