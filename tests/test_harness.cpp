#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <thread>

#include "harness/campaign.hpp"
#include "harness/registry.hpp"
#include "sys/json.hpp"

namespace dnnd::harness {
namespace {

TEST(Scenario, SeedDerivesFromIdNotThreadOrder) {
  Scenario a;
  a.id = "grid/resnet20/lpddr4-new/rrs";
  Scenario b;
  b.id = "grid/resnet20/lpddr4-new/srs";
  EXPECT_EQ(scenario_seed(a), sys::stable_hash64(a.id));
  EXPECT_NE(scenario_seed(a), scenario_seed(b)) << "distinct ids must give distinct seeds";
  a.seed_override = 42;
  EXPECT_EQ(scenario_seed(a), 42u);
}

TEST(Registry, GridsEnumerateWithUniqueIds) {
  for (const bool small : {true, false}) {
    const auto t3 = table3_scenarios(small);
    EXPECT_EQ(t3.size(), 10u) << "paper Table 3 has 10 rows";
    const auto f1b = fig1b_scenarios(small);
    EXPECT_EQ(f1b.size(), 3u) << "paper Fig. 1(b) has 3 curves";
    std::set<std::string> ids;
    for (const auto& sc : t3) EXPECT_TRUE(ids.insert(sc.id).second) << sc.id;
    for (const auto& sc : f1b) EXPECT_TRUE(ids.insert(sc.id).second) << sc.id;
  }
  GridSpec spec;
  spec.models = {"resnet20", "vgg11"};
  spec.generations = {dram::DeviceGen::kLpddr4New, dram::DeviceGen::kDdr4New};
  spec.defenses = {"none", "rrs", "dnn-defender"};
  const auto grid = enumerate_grid(spec);
  EXPECT_EQ(grid.size(), 2u * 2u * 3u);
  std::set<std::string> ids;
  for (const auto& sc : grid) {
    EXPECT_TRUE(ids.insert(sc.id).second) << "duplicate id " << sc.id;
    EXPECT_EQ(sc.attack, AttackKind::kDramWhiteBox);
  }
}

TEST(Registry, UnknownMitigationThrows) {
  EXPECT_THROW(mitigation_factory("prince-of-persia"), std::invalid_argument);
}

TEST(Campaign, ScenarioErrorsAreCapturedNotThrown) {
  Scenario sc;
  sc.id = "bad/unknown-arch";
  sc.dataset = DatasetKind::kTinyEasy;
  sc.train = TrainSpec{.arch = "no-such-arch", .width_mult = 1, .epochs = 1, .seed = 1};
  CampaignRunner runner(CampaignConfig{.threads = 1});
  const auto res = runner.run({sc});
  ASSERT_EQ(res.results.size(), 1u);
  EXPECT_FALSE(res.results[0].ok);
  EXPECT_FALSE(res.results[0].error.empty());
  // Reporting still works on a failed campaign.
  EXPECT_NE(res.table().to_string().find("ERROR"), std::string::npos);
  EXPECT_NE(res.to_json().find("\"ok\":false"), std::string::npos);
}

TEST(Json, WriterShapesAreWellFormed) {
  sys::JsonWriter w;
  w.begin_object();
  w.key("name").value("a \"quoted\"\nstring");
  w.key("pi").value(3.25);
  w.key("n").value(static_cast<u64>(7));
  w.key("list").begin_array().value(1.0).value(2.0).end_array();
  w.key("nested").begin_object().key("ok").value(true).end_object();
  w.end_object();
  EXPECT_EQ(w.str(),
            "{\"name\":\"a \\\"quoted\\\"\\nstring\",\"pi\":3.25,\"n\":7,"
            "\"list\":[1,2],\"nested\":{\"ok\":true}}");
}

// The tentpole regression: the same scenario grid must yield byte-identical
// result tables and JSON for every thread count -- results depend on scenario
// ids (seeds) and budgets, never on the schedule that executed them.
TEST(Campaign, DeterministicAcrossThreadCounts) {
  const auto grid = tiny_test_grid();
  ASSERT_GE(grid.size(), 5u) << "grid should cover every attack path";

  std::vector<usize> thread_counts = {1, 4,
                                      std::max<usize>(1, std::thread::hardware_concurrency())};
  std::vector<std::string> tables;
  std::vector<std::string> jsons;
  for (const usize threads : thread_counts) {
    CampaignRunner runner(CampaignConfig{.threads = threads});
    const auto res = runner.run(grid);
    ASSERT_EQ(res.results.size(), grid.size());
    for (usize i = 0; i < grid.size(); ++i) {
      EXPECT_EQ(res.results[i].id, grid[i].id) << "result order must match input order";
      EXPECT_TRUE(res.results[i].ok) << res.results[i].id << ": " << res.results[i].error;
    }
    tables.push_back(res.table().to_string());
    jsons.push_back(res.to_json());
  }
  for (usize i = 1; i < thread_counts.size(); ++i) {
    EXPECT_EQ(tables[0], tables[i])
        << "table differs between 1 thread and " << thread_counts[i] << " threads";
    EXPECT_EQ(jsons[0], jsons[i])
        << "JSON differs between 1 thread and " << thread_counts[i] << " threads";
  }
}

TEST(Campaign, RepeatedRunsOnWarmCacheAreIdentical) {
  // Two runs through the SAME runner (second run hits the artifact cache):
  // cached artifacts must be indistinguishable from freshly built ones.
  const auto grid = tiny_test_grid();
  CampaignRunner runner(CampaignConfig{.threads = 2});
  const auto first = runner.run(grid);
  const auto second = runner.run(grid);
  EXPECT_EQ(first.to_json(), second.to_json());
}

TEST(Campaign, ByIdLooksUpAndThrows) {
  CampaignResult res;
  ScenarioResult r;
  r.id = "x";
  res.results.push_back(r);
  EXPECT_EQ(res.by_id("x").id, "x");
  EXPECT_THROW(res.by_id("missing"), std::out_of_range);
}

}  // namespace
}  // namespace dnnd::harness
