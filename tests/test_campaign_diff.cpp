#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "harness/campaign.hpp"
#include "harness/campaign_diff.hpp"
#include "harness/sink.hpp"
#include "sys/json.hpp"

namespace dnnd::harness {
namespace {

namespace fs = std::filesystem;

ScenarioResult make_result(const std::string& id, double clean, double post,
                           const std::string& flips) {
  ScenarioResult r;
  r.id = id;
  r.label = id;
  r.model = "mlp";
  r.defense = "none";
  r.attack = "bfa";
  r.ok = true;
  r.clean_accuracy = clean;
  r.post_accuracy = post;
  r.flips = flips;
  return r;
}

CampaignResult make_campaign() {
  CampaignResult c;
  c.results.push_back(make_result("a/one", 0.95, 0.30, ">12"));
  c.results.push_back(make_result("a/two", 0.95, 0.80, "8 (3 landed)"));
  return c;
}

TEST(LeadingFlipCount, ParsesPaperStyleStrings) {
  EXPECT_EQ(leading_flip_count(">80"), 80);
  EXPECT_EQ(leading_flip_count("30 (0 landed)"), 30);
  EXPECT_EQ(leading_flip_count("12"), 12);
  EXPECT_EQ(leading_flip_count(""), -1);
  EXPECT_EQ(leading_flip_count("ERROR: boom"), -1);
}

TEST(LeadingFlipCount, RejectsMalformedCountsInsteadOfPartialParsing) {
  // The old strtoll call had no end pointer or overflow check: "12x" parsed
  // as 12 and a wrapped 20-digit count as some small number, both sailing
  // through the gate. Malformed must mean -1, never a plausible value.
  EXPECT_EQ(leading_flip_count("12x"), -1);             // trailing garbage
  EXPECT_EQ(leading_flip_count("12(3 landed)"), -1);    // annotation without space
  EXPECT_EQ(leading_flip_count("99999999999999999999999999"), -1);  // i64 overflow
  EXPECT_EQ(leading_flip_count(">"), -1);
  EXPECT_EQ(leading_flip_count("12 (3 landed)"), 12);   // canonical annotation still fine
}

TEST(CampaignDiff, UnparseableFlipsOnASuccessfulScenarioFailsLoudly) {
  // Even byte-identical sides must not pass the gate when the flips field of
  // an ok scenario is corrupted -- this is the dnnd_diff exit-1 condition on
  // a malformed baseline (the CLI maps report.ok() == false to exit 1).
  auto base = make_campaign();
  base.results[0].flips = "corrupted-by-hand-edit";
  const auto report = diff_campaigns(base, base);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("unparseable"), std::string::npos);

  // A failed scenario legitimately carries an empty flips field; that must
  // NOT trip the validation (the committed baseline may contain such rows).
  auto failed = make_campaign();
  failed.results[0].ok = false;
  failed.results[0].error = "boom";
  failed.results[0].flips = "";
  EXPECT_TRUE(diff_campaigns(failed, failed).ok());
}

TEST(CampaignDiff, IdenticalCampaignsPass) {
  const auto base = make_campaign();
  const auto report = diff_campaigns(base, base);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.compared, 2u);
  EXPECT_TRUE(report.deltas.empty());
  EXPECT_NE(report.to_string().find("identical"), std::string::npos);
}

TEST(CampaignDiff, AccuracyDeltaBeyondToleranceIsARegression) {
  const auto base = make_campaign();
  auto cur = base;
  cur.results[1].post_accuracy -= 0.05;

  const auto strict = diff_campaigns(base, cur);
  EXPECT_FALSE(strict.ok());
  ASSERT_EQ(strict.deltas.size(), 1u);
  EXPECT_EQ(strict.deltas[0].id, "a/two");
  EXPECT_NEAR(strict.deltas[0].post_delta, -0.05, 1e-12);
  EXPECT_NE(strict.to_string().find("REGRESSION a/two"), std::string::npos);

  // The same delta inside the tolerance is reported but does not fail.
  const auto tolerant = diff_campaigns(base, cur, DiffConfig{.acc_tol = 0.10});
  EXPECT_TRUE(tolerant.ok());
  ASSERT_EQ(tolerant.deltas.size(), 1u);
  EXPECT_FALSE(tolerant.deltas[0].regression);
}

TEST(CampaignDiff, FlipCountDeltaHonorsTolerance) {
  const auto base = make_campaign();
  auto cur = base;
  cur.results[0].flips = ">15";

  EXPECT_FALSE(diff_campaigns(base, cur).ok());
  const auto tolerant = diff_campaigns(base, cur, DiffConfig{.flip_tol = 5});
  EXPECT_TRUE(tolerant.ok());
  ASSERT_EQ(tolerant.deltas.size(), 1u);
  EXPECT_EQ(tolerant.deltas[0].flip_delta, 3);
}

TEST(CampaignDiff, OkFlagFlipAndTraceDivergenceAreRegressions) {
  const auto base = make_campaign();
  auto cur = base;
  cur.results[0].ok = false;
  cur.results[0].error = "boom";
  EXPECT_FALSE(diff_campaigns(base, cur).ok());

  auto traced_base = make_campaign();
  traced_base.results[0].trace = {0.9, 0.5, 0.2};
  auto traced_cur = traced_base;
  traced_cur.results[0].trace[2] = 0.4;
  EXPECT_FALSE(diff_campaigns(traced_base, traced_cur).ok());
  EXPECT_TRUE(diff_campaigns(traced_base, traced_cur, DiffConfig{.acc_tol = 0.25}).ok());
  traced_cur.results[0].trace.push_back(0.1);
  // A length mismatch is structural: no accuracy tolerance excuses it.
  EXPECT_FALSE(diff_campaigns(traced_base, traced_cur, DiffConfig{.acc_tol = 0.25}).ok());
}

TEST(CampaignDiff, MissingScenariosRespectIgnoreMissing) {
  const auto base = make_campaign();
  auto cur = base;
  cur.results.pop_back();
  cur.results.push_back(make_result("a/new", 0.9, 0.9, "0"));

  const auto strict = diff_campaigns(base, cur);
  EXPECT_FALSE(strict.ok());
  EXPECT_EQ(strict.regressions, 2u);  // one vanished, one appeared

  const auto loose = diff_campaigns(base, cur, DiffConfig{.ignore_missing = true});
  EXPECT_TRUE(loose.ok());
  EXPECT_EQ(loose.deltas.size(), 2u);  // still reported
}

TEST(CampaignDiff, RoundTripThroughJsonDiffsClean) {
  auto base = make_campaign();
  base.results[0].trace = {0.9, 0.5};
  const std::string json = base.to_json();
  const auto reloaded = campaign_from_json(json);
  EXPECT_EQ(reloaded.to_json(), json);
  EXPECT_TRUE(diff_campaigns(base, reloaded).ok());
}

TEST(CampaignFromJson, TimedRoundTripPreservesTimingFields) {
  auto base = make_campaign();
  base.threads_used = 4;
  base.total_seconds = 1.5;
  base.results[0].wall_seconds = 0.75;
  const std::string json = base.to_json(/*include_timing=*/true);
  const auto reloaded = campaign_from_json(json);
  EXPECT_EQ(reloaded.to_json(true), json);
  EXPECT_EQ(reloaded.threads_used, 4u);
  EXPECT_DOUBLE_EQ(reloaded.total_seconds, 1.5);
  EXPECT_DOUBLE_EQ(reloaded.results[0].wall_seconds, 0.75);
}

TEST(CampaignFromJson, StrictLoaderRejectsTruncatedOrMissingFieldDocuments) {
  // Loader regression: missing required fields used to default silently, so
  // a truncated baseline loaded as a plausible zero-flip campaign and the
  // regression gate compared against garbage.
  EXPECT_THROW(campaign_from_json("{}"), sys::JsonParseError);
  EXPECT_THROW(campaign_from_json(R"({"scenarios":[{"id":"x"}]})"), sys::JsonParseError);
  // A scenario stripped of its flips field (the diff gate's key signal).
  EXPECT_THROW(
      campaign_from_json(
          R"({"scenarios":[{"id":"x","label":"x","model":"m","defense":"d","attack":"a",)"
          R"("ok":true,"clean_accuracy":0.9,"post_accuracy":0.5,"attempts":0,"landed":0,)"
          R"("blocked":0,"secured_bits":0,"secured_rows":0,"total_bits":8,"trace":[]}]})"),
      sys::JsonParseError);
  // A failed scenario must carry its error string.
  EXPECT_THROW(
      campaign_from_json(
          R"({"scenarios":[{"id":"x","label":"x","model":"m","defense":"d","attack":"a",)"
          R"("ok":false,"clean_accuracy":0.9,"post_accuracy":0.5,"flips":"","attempts":0,)"
          R"("landed":0,"blocked":0,"secured_bits":0,"secured_rows":0,"total_bits":8,)"
          R"("trace":[]}]})"),
      sys::JsonParseError);
  // Outright truncation is a parse error, not a partial load.
  const std::string full = make_campaign().to_json();
  EXPECT_THROW(campaign_from_json(full.substr(0, full.size() / 2)), sys::JsonParseError);
}

TEST(CampaignFromJson, TimingFieldsAreRequiredAsAUnit) {
  auto base = make_campaign();
  const std::string timed = base.to_json(/*include_timing=*/true);

  // Strip just "total_seconds": half-present timing must throw, not default.
  sys::JsonValue doc = sys::parse_json(timed);
  sys::JsonValue half = sys::JsonValue::object();
  for (const auto& [key, value] : doc.members()) {
    if (key != "total_seconds") half.set(key, value);
  }
  EXPECT_THROW(campaign_from_json(half.dump()), sys::JsonParseError);

  // Strip a scenario's wall_seconds from a timed document: same rule.
  sys::JsonValue no_wall = sys::JsonValue::object();
  for (const auto& [key, value] : doc.members()) {
    if (key != "scenarios") {
      no_wall.set(key, value);
      continue;
    }
    sys::JsonValue scenarios = sys::JsonValue::array();
    for (const auto& s : value.items()) {
      sys::JsonValue copy = sys::JsonValue::object();
      for (const auto& [sk, sv] : s.members()) {
        if (sk != "wall_seconds") copy.set(sk, sv);
      }
      scenarios.push_back(std::move(copy));
    }
    no_wall.set(key, std::move(scenarios));
  }
  EXPECT_THROW(campaign_from_json(no_wall.dump()), sys::JsonParseError);
}

// ---- sinks ------------------------------------------------------------------

class TempDir {
 public:
  TempDir() : path_(fs::temp_directory_path() / "dnnd_sink_test") {
    fs::remove_all(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  [[nodiscard]] const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(CampaignSink, FileSinkWritesReloadableJson) {
  TempDir tmp;
  const auto campaign = make_campaign();
  FileSink sink((tmp.path() / "deep/nested/run.json").string());
  sink.write(campaign);
  const std::string content = slurp(tmp.path() / "deep/nested/run.json");
  EXPECT_EQ(content, campaign.to_json() + "\n");
  EXPECT_EQ(campaign_from_json(content).to_json(), campaign.to_json());
}

TEST(CampaignSink, RunDirectorySinkNumbersRuns) {
  TempDir tmp;
  const auto campaign = make_campaign();
  RunDirectorySink sink(tmp.path().string());
  sink.write(campaign);
  sink.write(campaign);
  EXPECT_TRUE(fs::exists(tmp.path() / "campaign-0001.json"));
  EXPECT_TRUE(fs::exists(tmp.path() / "campaign-0002.json"));
  EXPECT_EQ(sink.next_path(), (tmp.path() / "campaign-0003.json").string());
  EXPECT_EQ(slurp(tmp.path() / "campaign-0001.json"), slurp(tmp.path() / "campaign-0002.json"));
}

TEST(CampaignSink, EnvProtocolSelectsSink) {
  TempDir tmp;
  // DNND_JSON_OUT to a fresh file path -> FileSink.
  const std::string file = (tmp.path() / "out.json").string();
  ASSERT_EQ(setenv("DNND_JSON_OUT", file.c_str(), 1), 0);
  auto sink = sink_from_env();
  ASSERT_NE(sink, nullptr);
  EXPECT_EQ(sink->describe(), file);

  // A trailing slash (or existing directory) -> RunDirectorySink.
  const std::string dir = tmp.path().string() + "/runs/";
  ASSERT_EQ(setenv("DNND_JSON_OUT", dir.c_str(), 1), 0);
  sink = sink_from_env();
  ASSERT_NE(sink, nullptr);
  EXPECT_NE(sink->describe().find("campaign-*.json"), std::string::npos);

  // Without DNND_JSON_OUT, DNND_JSON=1 selects stdout; nothing set -> null.
  ASSERT_EQ(unsetenv("DNND_JSON_OUT"), 0);
  ASSERT_EQ(setenv("DNND_JSON", "1", 1), 0);
  sink = sink_from_env();
  ASSERT_NE(sink, nullptr);
  EXPECT_EQ(sink->describe(), "stdout");
  ASSERT_EQ(unsetenv("DNND_JSON"), 0);
  EXPECT_EQ(sink_from_env(), nullptr);
}

}  // namespace
}  // namespace dnnd::harness
