// Shared helpers for the benchmark harness binaries.
#pragma once

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <string>

#include "models/model_zoo.hpp"
#include "nn/trainer.hpp"
#include "sys/table.hpp"

namespace dnnd::bench {

/// True when DNND_BENCH_SCALE=small is set: every harness shrinks its sweep
/// for quick iteration. Default (unset/full) reproduces the full series.
inline bool small_scale() {
  const char* v = std::getenv("DNND_BENCH_SCALE");
  return v != nullptr && std::string(v) == "small";
}

inline void banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

class Stopwatch {
 public:
  Stopwatch() : start_(std::chrono::steady_clock::now()) {}
  [[nodiscard]] double seconds() const {
    return std::chrono::duration<double>(std::chrono::steady_clock::now() - start_).count();
  }

 private:
  std::chrono::steady_clock::time_point start_;
};

/// Trains a zoo model on a dataset with bench-appropriate settings.
inline std::unique_ptr<nn::Model> train_model(const std::string& arch,
                                              const nn::SplitDataset& data, usize epochs,
                                              u64 seed = 1, usize width_mult = 1) {
  auto model = models::make_by_name(arch, data.spec.num_classes, seed, width_mult);
  nn::TrainConfig cfg;
  cfg.epochs = small_scale() ? std::max<usize>(2, epochs / 2) : epochs;
  Stopwatch sw;
  const auto report = nn::train(*model, data, cfg);
  std::printf("[setup] trained %s: clean test acc %.2f%% (%.1fs)\n", model->name().c_str(),
              100.0 * report.test_accuracy, sw.seconds());
  return model;
}

}  // namespace dnnd::bench
