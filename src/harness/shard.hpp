// Sharded, resumable campaign runs: the run-directory work-queue protocol.
//
// A grid sweep becomes a set of independent *cells* (scenarios with stable
// ids). ShardSpec deterministically partitions the scenario list into
// k-of-n interleaved shards so n processes can sweep one grid concurrently.
// Each worker checkpoints every finished ScenarioResult as one JSON file
// under <run_dir>/cells/ -- written atomically (temp file + rename), so a
// concurrent writer or a mid-write kill can never leave a torn cell on disk.
// A resume diffs the checkpointed cell ids against the grid and re-runs only
// the remainder; the coordinator (merge_cells / `dnnd_shard merge`) stitches
// the checkpoints back into one campaign document in input-scenario order.
//
// Byte-identity contract: the merged document is byte-identical to the
// single-process CampaignResult::to_json() of the same grid. Cell files
// carry the exact scenario-object serialization of to_json, and the merge
// reassembles their parsed lexemes (sys::JsonValue preserves numeric
// lexemes), so no float ever goes through a second format/parse cycle. The
// existing zero-tolerance dnnd_diff baseline gate therefore holds for merged
// sharded runs exactly as it does for single-process sweeps.
//
// The protocol is deliberately transport-shaped: a cell id in, a small JSON
// document out, claim-by-rename. A TCP coordinator can later replace the
// shared directory without changing the cell format.
#pragma once

#include <optional>
#include <string>
#include <vector>

#include "harness/campaign.hpp"
#include "harness/scenario.hpp"

namespace dnnd::harness {

/// One shard of an n-way partition: the cells whose position in the scenario
/// list is congruent to `index` mod `count`. Interleaved (round-robin)
/// assignment keeps per-shard work balanced when neighboring grid cells have
/// similar cost (they share model/axes prefixes).
struct ShardSpec {
  usize index = 0;  ///< 0-based shard number, < count
  usize count = 1;  ///< total shards (n)
};

/// Parses the CLI spelling "k/n" (1-based k, e.g. "2/4"). Throws
/// std::invalid_argument on malformed input, k < 1, n < 1, or k > n.
ShardSpec parse_shard_spec(const std::string& spec);

/// The subset of `scenarios` owned by `shard`, in input order.
std::vector<Scenario> shard_scenarios(const std::vector<Scenario>& scenarios,
                                      const ShardSpec& shard);

/// Per-cell checkpoint store under <run_dir>/cells/. Multiple processes may
/// share one store: every write is temp-file + atomic rename, and distinct
/// cell ids map to distinct file names (sanitized id + stable id hash, so
/// ids that sanitize identically still get distinct files).
class CellCheckpointStore {
 public:
  explicit CellCheckpointStore(std::string run_dir);

  [[nodiscard]] const std::string& run_dir() const { return run_dir_; }

  /// The checkpoint file backing `id` (inside cells/). Deterministic.
  [[nodiscard]] std::string cell_path(const std::string& id) const;

  /// Atomically persists one finished cell: writes the scenario-object JSON
  /// (exact to_json serialization, newline-terminated) to a process-unique
  /// temp file, then renames it over cell_path(). Safe under concurrent
  /// writers of *different* cells (distinct paths) and of the *same* cell
  /// (last rename wins, file always complete). Throws std::runtime_error on
  /// I/O failure.
  void write_cell(const ScenarioResult& r) const;

  /// Loads a checkpointed cell. Returns nullopt when no checkpoint exists.
  /// Throws sys::JsonParseError / std::runtime_error when a checkpoint file
  /// exists but is malformed or carries the wrong id (a corrupted store must
  /// fail loudly, not merge quietly).
  [[nodiscard]] std::optional<ScenarioResult> load_cell(const std::string& id) const;

  /// True when `id` has a *valid* checkpoint: present and loadable. A
  /// malformed cell file reads as absent here (resume re-runs it) -- only
  /// merge treats corruption as fatal.
  [[nodiscard]] bool has_valid_cell(const std::string& id) const;

 private:
  std::string run_dir_;
  std::string cells_dir_;
};

/// Resume diff: the scenarios in `scenarios` (input order) that have no
/// valid checkpoint in `store`. A cell checkpointed with ok == false counts
/// as done -- scenario failures are deterministic campaign results, exactly
/// as in a single-process run.
std::vector<Scenario> pending_scenarios(const CellCheckpointStore& store,
                                        const std::vector<Scenario>& scenarios);

/// Coordinator output: the merged campaign document plus its parsed form.
struct MergedCampaign {
  /// Byte-identical to CampaignResult::to_json() of a single-process run of
  /// the same scenario list (no trailing newline; sinks add framing).
  std::string json;
  /// The merged document parsed back through the strict loader (table
  /// printing, dnnd_diff-style checks).
  CampaignResult campaign;
};

/// Merges the checkpoints of `scenarios` (all of them -- every shard) back
/// into one campaign document in input-scenario order. Throws
/// std::runtime_error naming every missing cell id when the run is
/// incomplete, and propagates load errors for corrupt cells.
MergedCampaign merge_cells(const CellCheckpointStore& store,
                           const std::vector<Scenario>& scenarios);

}  // namespace dnnd::harness
