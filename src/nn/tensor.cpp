#include "nn/tensor.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <numeric>
#include <sstream>

namespace dnnd::nn {

namespace {
usize shape_size(const std::vector<usize>& shape) {
  usize n = 1;
  for (usize d : shape) n *= d;
  return n;
}
}  // namespace

Tensor::Tensor(std::vector<usize> shape)
    : shape_(std::move(shape)), data_(shape_size(shape_), 0.0f) {}

Tensor Tensor::zeros(std::vector<usize> shape) { return Tensor(std::move(shape)); }

Tensor Tensor::full(std::vector<usize> shape, float value) {
  Tensor t(std::move(shape));
  t.fill(value);
  return t;
}

Tensor Tensor::he_normal(std::vector<usize> shape, usize fan_in, sys::Rng& rng) {
  Tensor t(std::move(shape));
  const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in == 0 ? 1 : fan_in));
  for (usize i = 0; i < t.size(); ++i) t[i] = static_cast<float>(rng.normal(0.0, stddev));
  return t;
}

float& Tensor::at4(usize n, usize c, usize h, usize w) {
  assert(rank() == 4);
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

float Tensor::at4(usize n, usize c, usize h, usize w) const {
  assert(rank() == 4);
  return data_[((n * shape_[1] + c) * shape_[2] + h) * shape_[3] + w];
}

void Tensor::resize(const std::vector<usize>& new_shape) {
  shape_ = new_shape;
  data_.resize(shape_size(shape_));
}

Tensor Tensor::reshaped(std::vector<usize> new_shape) const {
  assert(shape_size(new_shape) == size());
  Tensor t;
  t.shape_ = std::move(new_shape);
  t.data_ = data_;
  return t;
}

void Tensor::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

void Tensor::add_(const Tensor& other) {
  assert(other.size() == size());
  for (usize i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
}

void Tensor::scale_(float s) {
  for (float& v : data_) v *= s;
}

float Tensor::min() const {
  return data_.empty() ? 0.0f : *std::min_element(data_.begin(), data_.end());
}

float Tensor::max() const {
  return data_.empty() ? 0.0f : *std::max_element(data_.begin(), data_.end());
}

float Tensor::abs_max() const {
  float m = 0.0f;
  for (float v : data_) m = std::max(m, std::fabs(v));
  return m;
}

double Tensor::sum() const { return std::accumulate(data_.begin(), data_.end(), 0.0); }

double Tensor::l2_norm() const {
  double s = 0.0;
  for (float v : data_) s += static_cast<double>(v) * v;
  return std::sqrt(s);
}

std::string Tensor::shape_string() const {
  std::ostringstream out;
  out << '{';
  for (usize i = 0; i < shape_.size(); ++i) {
    if (i) out << ',';
    out << shape_[i];
  }
  out << '}';
  return out.str();
}

}  // namespace dnnd::nn
