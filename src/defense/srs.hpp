// Scalable and Secure Row-Swap (Woo et al., 2022) -- RRS refined to use far
// fewer counters (tracking only crucial rows) and a lazy-unswap policy that
// lowers the swap rate. Modelled as the RRS mechanism with a reduced tracker
// budget and a higher swap threshold; shares RRS's white-box weakness
// (aggressor-focused, victim disturbance still accumulates).
#pragma once

#include "defense/rrs.hpp"

namespace dnnd::defense {

struct SrsConfig {
  double swap_threshold_fraction = 0.6;
  usize tracker_entries = 16;
  u64 seed = 0x5253;
};

class Srs : public Rrs {
 public:
  Srs(dram::DramDevice& device, dram::RowRemapper& remap, SrsConfig cfg = {})
      : Rrs(device, remap,
            RrsConfig{cfg.swap_threshold_fraction, cfg.tracker_entries, cfg.seed}) {}

  [[nodiscard]] std::string name() const override { return "SRS"; }
};

}  // namespace dnnd::defense
