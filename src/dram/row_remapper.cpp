#include "dram/row_remapper.hpp"

#include <cassert>
#include <numeric>

namespace dnnd::dram {

RowRemapper::RowRemapper(const Geometry& geo) : geo_(geo) {
  const usize n = static_cast<usize>(geo.total_rows());
  log_to_phys_.resize(n);
  std::iota(log_to_phys_.begin(), log_to_phys_.end(), 0u);
  phys_to_log_ = log_to_phys_;
}

RowAddr RowRemapper::to_physical(const RowAddr& logical) const {
  return unflatten_row_id(geo_, log_to_phys_[flat_row_id(geo_, logical)]);
}

RowAddr RowRemapper::to_logical(const RowAddr& physical) const {
  return unflatten_row_id(geo_, phys_to_log_[flat_row_id(geo_, physical)]);
}

void RowRemapper::swap_logical(const RowAddr& a, const RowAddr& b) {
  const u64 la = flat_row_id(geo_, a);
  const u64 lb = flat_row_id(geo_, b);
  std::swap(log_to_phys_[la], log_to_phys_[lb]);
  phys_to_log_[log_to_phys_[la]] = static_cast<u32>(la);
  phys_to_log_[log_to_phys_[lb]] = static_cast<u32>(lb);
  ++swaps_;
}

bool RowRemapper::is_identity() const {
  for (usize i = 0; i < log_to_phys_.size(); ++i) {
    if (log_to_phys_[i] != i) return false;
  }
  return true;
}

}  // namespace dnnd::dram
