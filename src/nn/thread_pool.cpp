#include "nn/thread_pool.hpp"

namespace dnnd::nn {

namespace {
thread_local bool tl_in_region = false;

/// Marks the current thread as inside a region for a scope; exception-safe.
struct RegionScope {
  bool saved = tl_in_region;
  RegionScope() { tl_in_region = true; }
  ~RegionScope() { tl_in_region = saved; }
};
}  // namespace

ThreadPool& ThreadPool::instance() {
  static ThreadPool pool;
  return pool;
}

bool ThreadPool::in_region() { return tl_in_region; }

usize ThreadPool::claim_slot(Region& r) {
  std::lock_guard<std::mutex> lk(r.m);
  return r.next_slot < r.teams ? r.next_slot++ : r.teams;
}

void ThreadPool::run_slot(Region& r, usize slot) {
  std::exception_ptr err;
  {
    RegionScope scope;
    try {
      r.body(r.ctx, slot, r.teams);
    } catch (...) {
      err = std::current_exception();
    }
  }
  std::lock_guard<std::mutex> lk(r.m);
  if (err && !r.error) r.error = err;  // first failure wins; region still completes
  if (++r.done == r.teams) r.cv.notify_all();
}

void ThreadPool::ensure_workers(usize n) {
  while (workers_.size() < n) workers_.emplace_back([this] { worker_loop(); });
}

void ThreadPool::reserve_workers(usize n) {
  std::lock_guard<std::mutex> lk(queue_mutex_);
  ensure_workers(n);
}

void ThreadPool::worker_loop() {
  for (;;) {
    Region* r = nullptr;
    usize slot = 0;
    {
      std::unique_lock<std::mutex> lk(queue_mutex_);
      queue_cv_.wait(lk, [&] { return stop_ || !queue_.empty(); });
      if (stop_) return;
      r = queue_.front();
      // Claim while holding the queue mutex (consistent queue -> region lock
      // order); the caller cannot retire the region before the claimed slot's
      // done-increment because it waits for done == teams.
      slot = claim_slot(*r);
      if (slot >= r->teams || slot + 1 == r->teams) {
        if (!queue_.empty() && queue_.front() == r) queue_.pop_front();
      }
      if (slot >= r->teams) continue;
    }
    run_slot(*r, slot);
  }
}

void ThreadPool::parallel_impl(usize teams, void* ctx, BodyFn body) {
  if (teams <= 1 || tl_in_region) {
    // Serial (or nested) execution: report a team of one so static partitions
    // cover the whole range.
    RegionScope scope;
    body(ctx, 0, 1);
    return;
  }

  Region r;
  r.ctx = ctx;
  r.body = body;
  r.teams = teams;
  {
    std::lock_guard<std::mutex> lk(queue_mutex_);
    ensure_workers(teams - 1);
    queue_.push_back(&r);
  }
  queue_cv_.notify_all();

  run_slot(r, 0);
  // Caller work-stealing: execute any slot no worker has claimed yet, so the
  // region completes even with every worker busy elsewhere. run_slot never
  // throws (body exceptions are captured into the region), so the region is
  // always retired from the queue before this frame -- and the stack-
  // allocated Region -- goes away.
  for (;;) {
    usize slot;
    {
      std::lock_guard<std::mutex> lk(queue_mutex_);
      slot = claim_slot(r);
      if (slot >= r.teams || slot + 1 == r.teams) {
        for (auto it = queue_.begin(); it != queue_.end(); ++it) {
          if (*it == &r) {
            queue_.erase(it);
            break;
          }
        }
      }
    }
    if (slot >= r.teams) break;
    run_slot(r, slot);
  }

  {
    std::unique_lock<std::mutex> lk(r.m);
    r.cv.wait(lk, [&] { return r.done == r.teams; });
  }
  if (r.error) std::rethrow_exception(r.error);
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lk(queue_mutex_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (auto& w : workers_) w.join();
}

}  // namespace dnnd::nn
