// Fig. 1(b): targeted BFA vs random bit flipping on an 8-bit quantized
// ResNet-34 (ImageNet stand-in), and the same targeted attack against a
// DNN-Defender-protected model.
#include "attack/adaptive_attack.hpp"
#include "attack/random_attack.hpp"
#include "bench_util.hpp"
#include "core/priority_profiler.hpp"
#include "mapping/weight_mapping.hpp"

using namespace dnnd;

int main() {
  bench::banner("Fig. 1(b) -- Targeted BFA vs random attack vs DNN-Defender",
                "paper Fig. 1(b): 8-bit ResNet-34, <5 targeted flips vs >100 random");
  const bool small = bench::small_scale();
  auto data = nn::make_synthetic(nn::SynthSpec::imagenet_like());
  auto model = bench::train_model("resnet34", data, /*epochs=*/6);
  auto [ax, ay] = data.test.head(small ? 24 : 32);
  auto [ex, ey] = data.test.head(small ? 120 : 300);

  quant::QuantizedModel qm(*model);
  const auto clean_snapshot = qm.snapshot();
  const double clean_acc = qm.model().accuracy(ex, ey);
  std::printf("[setup] 8-bit quantized accuracy: %.2f%% (%llu weight bits)\n",
              100.0 * clean_acc, static_cast<unsigned long long>(qm.total_bits()));

  const usize bfa_budget = small ? 15 : 30;
  const usize random_budget = small ? 60 : 150;

  // --- targeted BFA, accuracy after every flip ---
  std::vector<double> bfa_curve{clean_acc};
  {
    attack::BfaConfig cfg;
    cfg.max_flips = bfa_budget;
    attack::ProgressiveBitSearch bfa(qm, ax, ay, cfg);
    for (usize i = 0; i < bfa_budget; ++i) {
      const auto rec = bfa.step({});
      if (!rec.has_value()) break;
      bfa_curve.push_back(qm.model().accuracy(ex, ey));
      if (bfa_curve.back() <= 1.1 / data.spec.num_classes) break;
    }
    qm.restore(clean_snapshot);
  }

  // --- random attack ---
  std::vector<double> random_curve{clean_acc};
  {
    attack::RandomBitAttack rnd(qm, sys::Rng(3));
    const auto res = rnd.run(random_budget, ex, ey, 10);
    random_curve = res.accuracy_trace;
    qm.restore(clean_snapshot);
  }

  // --- DNN-Defender: full priority coverage of the weight rows (the
  // deployment the paper's flat curve corresponds to), attacked adaptively ---
  const mapping::WeightMapping map(qm, dram::DramConfig::nn_scaled());
  quant::BitSkipSet secured;
  for (const auto& row : map.weight_rows()) {
    const usize count = map.weights_in_row(row);
    for (usize col = 0; col < count; ++col) {
      const auto w = map.weight_at(row, col);
      for (u32 b = 0; b < 8; ++b) secured.insert({w->layer, w->index, b});
    }
  }
  std::printf("[setup] DNN-Defender protects %zu weight rows (%zu secured bits)\n",
              map.weight_rows().size(), secured.size());
  std::vector<double> defended_curve{clean_acc};
  {
    attack::AdaptiveAttackConfig cfg;
    cfg.max_additional_flips = random_budget;
    cfg.measure_every = 10;
    attack::AdaptiveWhiteBoxAttack attack(qm, ax, ay, ex, ey, cfg);
    const auto res = attack.run(secured);
    defended_curve = res.accuracy_trace;
    qm.restore(clean_snapshot);
  }

  // --- print the three series ---
  sys::Table table({"flips", "BFA attack (%)", "random attack (%)", "our defense (%)"});
  const usize rows = std::max({bfa_curve.size(), random_curve.size(), defended_curve.size()});
  for (usize i = 0; i < rows; ++i) {
    auto cell = [&](const std::vector<double>& v, usize flips_per_step) -> std::string {
      return i < v.size() ? sys::fmt(100.0 * v[i], 1) +
                                " @" + std::to_string(i * flips_per_step)
                          : "";
    };
    table.add_row({std::to_string(i), cell(bfa_curve, 1), cell(random_curve, 10),
                   cell(defended_curve, 10)});
  }
  table.print();
  std::printf(
      "\nShape check (paper): the targeted BFA reaches random-guess accuracy in\n"
      "a handful of flips; random flips at 10x the budget barely move accuracy;\n"
      "with DNN-Defender securing the vulnerable bits the attack degrades to\n"
      "the random level (flat curve).\n");
  return 0;
}
