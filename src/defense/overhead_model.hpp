// Analytic hardware-overhead model reproducing Table 2: for a 32 GB /
// 16-bank DDR4 device, the storage type, capacity overhead, and extra area
// each mitigation requires. Derivable entries (counter-per-row, SHADOW's
// reserved rows) are computed from the geometry; the rest carry the
// constants the respective papers report (as the paper's table does).
#pragma once

#include <string>
#include <vector>

#include "dram/dram_config.hpp"

namespace dnnd::defense {

/// Storage a mitigation occupies, split by memory kind.
struct OverheadEntry {
  std::string framework;
  std::string involved_memory;   ///< e.g. "CAM-SRAM", "DRAM"
  std::string capacity_detail;   ///< human-readable breakdown
  u64 dram_bytes = 0;
  u64 sram_bytes = 0;
  u64 cam_bytes = 0;
  std::string area_overhead;     ///< counters or % of die, as reported

  [[nodiscard]] u64 total_bytes() const { return dram_bytes + sram_bytes + cam_bytes; }
  /// True when the mitigation needs fast (SRAM/CAM) storage -- the costly
  /// resource class the paper highlights.
  [[nodiscard]] bool needs_fast_memory() const { return sram_bytes + cam_bytes > 0; }
};

/// The full Table-2 comparison for the given device (use
/// DramConfig::paper_32gb() to match the paper's 32 GB / 16-bank setting).
std::vector<OverheadEntry> overhead_table(const dram::DramConfig& cfg);

/// Convenience: the DNN-Defender row only.
OverheadEntry dnn_defender_overhead(const dram::DramConfig& cfg);

}  // namespace dnnd::defense
