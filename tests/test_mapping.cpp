#include <gtest/gtest.h>

#include <set>

#include "mapping/weight_mapping.hpp"
#include "models/model_zoo.hpp"

namespace dnnd::mapping {
namespace {

using dram::DramConfig;
using dram::DramDevice;
using dram::RowAddr;
using dram::RowRemapper;

class MappingFixture : public ::testing::Test {
 protected:
  MappingFixture()
      : model_(models::make_test_mlp(64, 24, 4, 7)),
        qm_(*model_),
        cfg_(DramConfig::nn_scaled()),
        mapping_(qm_, cfg_) {}

  std::unique_ptr<nn::Model> model_;
  quant::QuantizedModel qm_;
  DramConfig cfg_;
  WeightMapping mapping_;
};

TEST_F(MappingFixture, EveryWeightHasAPlacement) {
  for (usize l = 0; l < qm_.num_layers(); ++l) {
    for (usize i = 0; i < qm_.layer(l).size(); ++i) {
      const Placement p = mapping_.locate(l, i);
      EXPECT_LT(p.col, cfg_.geo.row_bytes);
      EXPECT_LT(p.row.bank, cfg_.geo.banks);
    }
  }
}

TEST_F(MappingFixture, LocateWeightAtAreInverse) {
  for (usize l = 0; l < qm_.num_layers(); ++l) {
    for (usize i = 0; i < qm_.layer(l).size(); i += 3) {
      const Placement p = mapping_.locate(l, i);
      const auto w = mapping_.weight_at(p.row, p.col);
      ASSERT_TRUE(w.has_value());
      EXPECT_EQ(w->layer, l);
      EXPECT_EQ(w->index, i);
    }
  }
}

TEST_F(MappingFixture, PaddingBytesMapToNothing) {
  // The final row is partially filled; bytes past the count are padding.
  const auto& rows = mapping_.weight_rows();
  const RowAddr last = rows.back();
  const usize count = mapping_.weights_in_row(last);
  if (count < cfg_.geo.row_bytes) {
    EXPECT_FALSE(mapping_.weight_at(last, count).has_value());
  }
  // A row that holds no weights at all maps to nothing.
  EXPECT_FALSE(mapping_.weight_at(RowAddr{0, 0, 0}, 0).has_value());
}

TEST_F(MappingFixture, RowWeightCountsSumToTotal) {
  usize total = 0;
  for (const auto& row : mapping_.weight_rows()) total += mapping_.weights_in_row(row);
  EXPECT_EQ(total, qm_.total_weights());
}

TEST_F(MappingFixture, RowsSpreadAcrossBanks) {
  std::set<u32> banks;
  for (const auto& row : mapping_.weight_rows()) banks.insert(row.bank);
  // ~29 rows over 8 banks: every bank should be hit.
  EXPECT_GE(banks.size(), 4u);
}

TEST_F(MappingFixture, ReservedRegionAvoided) {
  const u32 reserved_base =
      cfg_.geo.rows_per_subarray - mapping_.config().reserved_rows_per_subarray;
  for (const auto& row : mapping_.weight_rows()) {
    EXPECT_LT(row.row, reserved_base);
  }
}

TEST_F(MappingFixture, AggressorGapsBetweenWeightRows) {
  // With leave_aggressor_gaps, no two weight rows are physically adjacent.
  std::set<u64> ids;
  for (const auto& row : mapping_.weight_rows()) ids.insert(flat_row_id(cfg_.geo, row));
  for (const auto& row : mapping_.weight_rows()) {
    if (row.row + 1 < cfg_.geo.rows_per_subarray) {
      RowAddr next = row;
      next.row += 1;
      EXPECT_EQ(ids.count(flat_row_id(cfg_.geo, next)), 0u);
    }
  }
}

TEST_F(MappingFixture, UploadDownloadRoundtrip) {
  DramDevice dev(cfg_);
  RowRemapper remap(cfg_.geo);
  mapping_.upload(qm_, dev, remap);
  const auto snap = qm_.snapshot();
  // Corrupt the in-memory model, then download: DRAM restores it.
  qm_.set_q(0, 0, static_cast<i8>(qm_.get_q(0, 0) + 1));
  mapping_.download(qm_, dev, remap);
  EXPECT_EQ(qm_.hamming_distance(snap), 0u);
}

TEST_F(MappingFixture, DownloadReflectsDeviceFlips) {
  DramDevice dev(cfg_);
  RowRemapper remap(cfg_.geo);
  mapping_.upload(qm_, dev, remap);
  const auto snap = qm_.snapshot();
  const Placement p = mapping_.locate(1, 5);
  dev.force_flip_bit(p.row, p.col, 7);
  mapping_.download(qm_, dev, remap);
  EXPECT_EQ(qm_.hamming_distance(snap), 1u);
  EXPECT_EQ(qm_.get_q(1, 5), quant::flip_bit_value(snap[1][5], 7));
}

TEST_F(MappingFixture, RemappedRoundtripFollowsIndirection) {
  DramDevice dev(cfg_);
  RowRemapper remap(cfg_.geo);
  // Swap a weight row with a free row before uploading.
  const RowAddr wrow = mapping_.weight_rows()[0];
  const RowAddr free{wrow.bank, wrow.subarray, 0};
  remap.swap_logical(wrow, remap.to_logical(free));
  mapping_.upload(qm_, dev, remap);
  // Data physically lives at the remapped location.
  const auto w = mapping_.weight_at(wrow, 0);
  ASSERT_TRUE(w.has_value());
  EXPECT_EQ(static_cast<i8>(dev.peek(free, 0)), qm_.get_q(w->layer, w->index));
  // Download follows the same indirection.
  const auto snap = qm_.snapshot();
  mapping_.download(qm_, dev, remap);
  EXPECT_EQ(qm_.hamming_distance(snap), 0u);
}

TEST_F(MappingFixture, PlacementDeterministicPerSeed) {
  WeightMapping again(qm_, cfg_);
  ASSERT_EQ(again.weight_rows().size(), mapping_.weight_rows().size());
  for (usize i = 0; i < again.weight_rows().size(); ++i) {
    EXPECT_EQ(again.weight_rows()[i], mapping_.weight_rows()[i]);
  }
}

TEST_F(MappingFixture, PlacementSeedShufflesLayout) {
  MappingConfig mcfg;
  mcfg.placement_seed = 0xDEADBEEF;
  WeightMapping other(qm_, cfg_, mcfg);
  bool any_diff = other.weight_rows().size() != mapping_.weight_rows().size();
  for (usize i = 0; !any_diff && i < other.weight_rows().size(); ++i) {
    any_diff = !(other.weight_rows()[i] == mapping_.weight_rows()[i]);
  }
  EXPECT_TRUE(any_diff);
}

TEST(MappingErrors, DeviceTooSmallThrows) {
  auto model = models::make_resnet34_sub(10, 1);
  quant::QuantizedModel qm(*model);
  dram::DramConfig tiny = DramConfig::sim_small();
  tiny.geo = dram::Geometry{1, 1, 16, 64};  // 1 KB device
  EXPECT_THROW(WeightMapping(qm, tiny), std::invalid_argument);
}

TEST(MappingErrors, ReservedRegionTooLargeThrows) {
  auto model = models::make_test_mlp(8, 4, 2, 1);
  quant::QuantizedModel qm(*model);
  dram::DramConfig cfg = DramConfig::sim_small();
  MappingConfig mcfg;
  mcfg.reserved_rows_per_subarray = cfg.geo.rows_per_subarray;
  EXPECT_THROW(WeightMapping(qm, cfg, mcfg), std::invalid_argument);
}

TEST(MappingLarge, BigModelFitsDefaultGeometry) {
  auto model = models::make_resnet34_sub(25, 1);
  quant::QuantizedModel qm(*model);
  const dram::DramConfig cfg = DramConfig::nn_scaled();
  WeightMapping mapping(qm, cfg);
  EXPECT_EQ(mapping.weight_rows().size(),
            (qm.total_weights() + cfg.geo.row_bytes - 1) / cfg.geo.row_bytes);
  // Spread wide: at least half the subarrays host a row.
  std::set<std::pair<u32, u32>> subarrays;
  for (const auto& r : mapping.weight_rows()) subarrays.insert({r.bank, r.subarray});
  EXPECT_GE(subarrays.size(), 16u);
}

}  // namespace
}  // namespace dnnd::mapping
