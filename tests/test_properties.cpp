// Cross-module property tests: randomized sweeps checking invariants that
// must hold for ANY seed/configuration, complementing the per-module example
// tests. Each property runs over a parameterized set of seeds.
#include <gtest/gtest.h>

#include <bit>
#include <cmath>
#include <map>
#include <set>

#include "core/swap_engine.hpp"
#include "mapping/weight_mapping.hpp"
#include "models/model_zoo.hpp"
#include "nn/loss.hpp"
#include "quant/quantizer.hpp"
#include "rowhammer/attacker.hpp"

namespace dnnd {
namespace {

using dram::DramConfig;
using dram::DramDevice;
using dram::RowAddr;
using dram::RowRemapper;

class Seeded : public ::testing::TestWithParam<u64> {};
INSTANTIATE_TEST_SUITE_P(Seeds, Seeded, ::testing::Values(1, 7, 42, 1234, 99991));

// ---------------------------------------------------------------- DRAM -----

TEST_P(Seeded, DeviceMatchesReferenceShadowArray) {
  // Random command fuzz: the device's cell contents must always equal a
  // plain byte-array reference model.
  const DramConfig cfg = DramConfig::sim_small();
  DramDevice dev(cfg);
  sys::Rng rng(GetParam());
  const usize total = static_cast<usize>(cfg.geo.total_bytes());
  std::vector<u8> reference(total, 0);
  auto flat = [&](const RowAddr& r) {
    return static_cast<usize>(flat_row_id(cfg.geo, r)) * cfg.geo.row_bytes;
  };
  auto random_row = [&]() {
    return RowAddr{static_cast<u32>(rng.uniform(cfg.geo.banks)),
                   static_cast<u32>(rng.uniform(cfg.geo.subarrays_per_bank)),
                   static_cast<u32>(rng.uniform(cfg.geo.rows_per_subarray))};
  };
  for (int op = 0; op < 400; ++op) {
    switch (rng.uniform(5)) {
      case 0: {  // full-row write
        const RowAddr r = random_row();
        std::vector<u8> data(cfg.geo.row_bytes);
        for (auto& b : data) b = static_cast<u8>(rng.uniform(256));
        dev.write_row(r, data);
        std::copy(data.begin(), data.end(), reference.begin() + static_cast<isize>(flat(r)));
        break;
      }
      case 1: {  // RowClone FPM within a random subarray
        const RowAddr r = random_row();
        const u32 dst = static_cast<u32>(rng.uniform(cfg.geo.rows_per_subarray));
        dev.rowclone_fpm(r.bank, r.subarray, r.row, dst);
        const RowAddr d{r.bank, r.subarray, dst};
        if (!(d == r)) {
          std::copy_n(reference.begin() + static_cast<isize>(flat(r)), cfg.geo.row_bytes,
                      reference.begin() + static_cast<isize>(flat(d)));
        }
        break;
      }
      case 2: {  // RowClone PSM across banks
        const RowAddr s = random_row(), d = random_row();
        dev.rowclone_psm(s, d);
        std::copy_n(reference.begin() + static_cast<isize>(flat(s)), cfg.geo.row_bytes,
                    reference.begin() + static_cast<isize>(flat(d)));
        break;
      }
      case 3: {  // forced bit flip
        const RowAddr r = random_row();
        const usize col = static_cast<usize>(rng.uniform(cfg.geo.row_bytes));
        const u32 bit = static_cast<u32>(rng.uniform(8));
        dev.force_flip_bit(r, col, bit);
        reference[flat(r) + col] ^= static_cast<u8>(1u << bit);
        break;
      }
      default: {  // activates/reads must never change data
        const RowAddr r = random_row();
        dev.activate(r);
        (void)dev.read_row(r);
        break;
      }
    }
  }
  for (u64 id = 0; id < cfg.geo.total_rows(); ++id) {
    const RowAddr r = unflatten_row_id(cfg.geo, id);
    const auto row = dev.peek_row(r);
    for (usize c = 0; c < cfg.geo.row_bytes; ++c) {
      ASSERT_EQ(row[c], reference[flat(r) + c])
          << "divergence at row " << id << " col " << c;
    }
  }
}

TEST_P(Seeded, RemapperStaysABijection) {
  const DramConfig cfg = DramConfig::sim_small();
  RowRemapper remap(cfg.geo);
  sys::Rng rng(GetParam());
  auto random_row = [&]() {
    return unflatten_row_id(cfg.geo, rng.uniform(cfg.geo.total_rows()));
  };
  for (int i = 0; i < 300; ++i) remap.swap_logical(random_row(), random_row());
  std::set<u64> images;
  for (u64 id = 0; id < cfg.geo.total_rows(); ++id) {
    const RowAddr logical = unflatten_row_id(cfg.geo, id);
    const RowAddr phys = remap.to_physical(logical);
    ASSERT_TRUE(images.insert(flat_row_id(cfg.geo, phys)).second) << "collision";
    ASSERT_EQ(remap.to_logical(phys), logical) << "inverse broken";
  }
}

TEST_P(Seeded, TimeAndEnergyAreMonotone) {
  const DramConfig cfg = DramConfig::sim_small();
  DramDevice dev(cfg);
  sys::Rng rng(GetParam());
  Picoseconds t_prev = dev.now();
  Femtojoules e_prev = dev.stats().energy;
  for (int i = 0; i < 200; ++i) {
    const RowAddr r{static_cast<u32>(rng.uniform(cfg.geo.banks)),
                    static_cast<u32>(rng.uniform(cfg.geo.subarrays_per_bank)),
                    static_cast<u32>(rng.uniform(cfg.geo.rows_per_subarray))};
    switch (rng.uniform(3)) {
      case 0: dev.activate(r); break;
      case 1: dev.rowclone_fpm(r.bank, r.subarray, r.row, (r.row + 1) % cfg.geo.rows_per_subarray); break;
      default: dev.refresh_step(); break;
    }
    EXPECT_GE(dev.now(), t_prev);
    EXPECT_GE(dev.stats().energy, e_prev);
    t_prev = dev.now();
    e_prev = dev.stats().energy;
  }
}

// ----------------------------------------------------------- RowHammer -----

TEST_P(Seeded, NoFlipStrictlyBelowThreshold) {
  DramConfig cfg = DramConfig::sim_small();
  cfg.t_rh = 500 + static_cast<u32>(GetParam() % 700);
  DramDevice dev(cfg);
  rowhammer::HammerModelConfig hcfg;
  hcfg.p_vulnerable = 0.3;
  hcfg.seed = GetParam();
  rowhammer::HammerModel model(dev, hcfg);
  rowhammer::HammerAttacker attacker(dev, sys::Rng(GetParam()));
  std::vector<u8> ones(cfg.geo.row_bytes, 0xFF);
  dev.write_row({0, 0, 10}, ones);
  attacker.double_sided({0, 0, 10}, cfg.t_rh - 2);
  EXPECT_EQ(model.flips_injected(), 0u) << "flip below T_RH=" << cfg.t_rh;
}

TEST_P(Seeded, SaturationHammeringFlipsEveryChargedVulnerableCell) {
  DramConfig cfg = DramConfig::sim_small();
  cfg.t_rh = 400;
  DramDevice dev(cfg);
  rowhammer::HammerModelConfig hcfg;
  hcfg.p_vulnerable = 0.2;
  hcfg.seed = GetParam() * 31;
  rowhammer::HammerModel model(dev, hcfg);
  rowhammer::HammerAttacker attacker(dev, sys::Rng(GetParam()));
  const RowAddr victim{0, 1, 20};
  std::vector<u8> ones(cfg.geo.row_bytes, 0xFF);
  dev.write_row(victim, ones);
  // 2x the worst-case cell threshold of disturbance on the victim.
  attacker.double_sided(victim, 4 * cfg.t_rh);
  usize expected = 0;
  for (const auto& c : model.vulnerable_cells(victim)) expected += c.one_to_zero;
  usize flipped = 0;
  for (u8 b : dev.peek_row(victim)) flipped += 8 - static_cast<usize>(std::popcount(b));
  EXPECT_EQ(flipped, expected) << "every 1->0 vulnerable cell must flip at saturation";
}

// ------------------------------------------------------------- mapping -----

TEST_P(Seeded, MappingBijectionForRandomConfigs) {
  sys::Rng rng(GetParam());
  auto model = models::make_test_mlp(32 + rng.uniform(64), 8 + rng.uniform(24), 4, GetParam());
  quant::QuantizedModel qm(*model);
  mapping::MappingConfig mcfg;
  mcfg.placement_seed = GetParam() * 7;
  mcfg.leave_aggressor_gaps = (GetParam() % 2) == 0;
  const DramConfig cfg = DramConfig::nn_scaled();
  mapping::WeightMapping map(qm, cfg, mcfg);
  // Every weight maps to a unique (row, col).
  std::set<std::pair<u64, usize>> seen;
  for (usize l = 0; l < qm.num_layers(); ++l) {
    for (usize i = 0; i < qm.layer(l).size(); ++i) {
      const auto p = map.locate(l, i);
      ASSERT_TRUE(seen.insert({flat_row_id(cfg.geo, p.row), p.col}).second);
      const auto w = map.weight_at(p.row, p.col);
      ASSERT_TRUE(w.has_value());
      EXPECT_EQ(w->layer, l);
      EXPECT_EQ(w->index, i);
    }
  }
  EXPECT_EQ(seen.size(), qm.total_weights());
}

// ------------------------------------------------------------ swap core ----

TEST_P(Seeded, ArbitrarySwapChainsPreserveAllData) {
  const DramConfig cfg = DramConfig::sim_small();
  DramDevice dev(cfg);
  RowRemapper remap(cfg.geo);
  core::SwapEngine engine(dev, remap);
  sys::Rng rng(GetParam());
  // Fingerprint every non-reserved row of subarray (0,0).
  const u32 usable = engine.reserved_base();
  for (u32 r = 0; r < usable; ++r) {
    std::vector<u8> data(cfg.geo.row_bytes, static_cast<u8>(r * 13 + 5));
    dev.poke_row({0, 0, r}, data);
  }
  // Random protect() chains with random target/non-target pairs.
  for (int i = 0; i < 120; ++i) {
    const RowAddr target{0, 0, static_cast<u32>(rng.uniform(usable))};
    const RowAddr nt{0, 0, static_cast<u32>(rng.uniform(usable))};
    const bool with_nt = rng.bernoulli(0.7);
    engine.protect(target, with_nt ? &nt : nullptr, rng);
  }
  // Every logical row's data must be intact wherever it physically lives.
  for (u32 r = 0; r < usable; ++r) {
    const RowAddr phys = remap.to_physical(RowAddr{0, 0, r});
    const auto row = dev.peek_row(phys);
    for (usize c = 0; c < cfg.geo.row_bytes; ++c) {
      ASSERT_EQ(row[c], static_cast<u8>(r * 13 + 5)) << "logical row " << r << " corrupted";
    }
  }
}

// ---------------------------------------------------------------- quant ----

TEST_P(Seeded, QuantizationErrorAlwaysWithinHalfStep) {
  sys::Rng rng(GetParam());
  auto model = models::make_test_mlp(16, 8, 3, GetParam());
  // Scatter extreme weights to stress the scale computation.
  for (auto& p : model->quantizable_params()) {
    for (usize i = 0; i < p.value->size(); i += 3) {
      (*p.value)[i] = static_cast<float>(rng.normal(0.0, 2.0));
    }
  }
  auto reference = model->save_state();
  quant::QuantizedModel qm(*model);
  auto params = model->quantizable_params();
  usize cursor = 0;
  for (usize l = 0; l < qm.num_layers(); ++l) {
    const float scale = qm.layer(l).scale;
    for (usize i = 0; i < qm.layer(l).size(); ++i) {
      const float original = reference[cursor][i];
      const float quantized = (*params[l].value)[i];
      // Clamping at +-127/-128 can exceed half-step only beyond the range.
      if (std::fabs(original) <= 127.0f * scale) {
        EXPECT_LE(std::fabs(quantized - original), scale * 0.5f + 1e-6f);
      }
    }
    ++cursor;  // params and save_state share the leading ordering per layer
    ++cursor;  // skip the bias entry
  }
}

TEST_P(Seeded, RandomFlipSequencesAreInvolutions) {
  auto model = models::make_test_mlp(16, 8, 3, GetParam());
  quant::QuantizedModel qm(*model);
  const auto snap = qm.snapshot();
  sys::Rng rng(GetParam());
  std::vector<quant::BitLocation> flips;
  for (int i = 0; i < 64; ++i) {
    const usize layer = static_cast<usize>(rng.uniform(qm.num_layers()));
    const usize idx = static_cast<usize>(rng.uniform(qm.layer(layer).size()));
    const u32 bit = static_cast<u32>(rng.uniform(8));
    flips.push_back({layer, idx, bit});
    qm.flip(flips.back());
  }
  EXPECT_LE(qm.hamming_distance(snap), 64u);
  for (auto it = flips.rbegin(); it != flips.rend(); ++it) qm.flip(*it);
  EXPECT_EQ(qm.hamming_distance(snap), 0u);
  // Float view consistent with codes after the round trip.
  for (usize l = 0; l < qm.num_layers(); ++l) {
    for (usize i = 0; i < qm.layer(l).size(); i += 5) {
      EXPECT_FLOAT_EQ((*qm.layer(l).value)[i],
                      static_cast<float>(qm.get_q(l, i)) * qm.layer(l).scale);
    }
  }
}

// ----------------------------------------------------------------- loss ----

TEST_P(Seeded, SoftmaxGradientMatchesFiniteDifferenceEverywhere) {
  sys::Rng rng(GetParam());
  const usize n = 2 + rng.uniform(3), c = 2 + rng.uniform(5);
  nn::Tensor logits({n, c});
  for (usize i = 0; i < logits.size(); ++i) logits[i] = static_cast<float>(rng.normal(0, 2));
  std::vector<u32> labels(n);
  for (auto& y : labels) y = static_cast<u32>(rng.uniform(c));
  const auto res = nn::softmax_cross_entropy(logits, labels);
  constexpr double kEps = 1e-4;
  for (usize i = 0; i < logits.size(); ++i) {
    const float saved = logits[i];
    logits[i] = saved + static_cast<float>(kEps);
    const double lp = nn::softmax_cross_entropy_loss(logits, labels);
    logits[i] = saved - static_cast<float>(kEps);
    const double lm = nn::softmax_cross_entropy_loss(logits, labels);
    logits[i] = saved;
    // float32 logits limit the finite-difference precision at eps=1e-4.
    EXPECT_NEAR(res.dlogits[i], (lp - lm) / (2 * kEps), 1e-3);
  }
}

}  // namespace
}  // namespace dnnd
