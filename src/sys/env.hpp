// Environment-variable knob parsing, shared by every DNND_* integer knob.
//
// Before this helper the tree carried three divergent DNND_THREADS parsers
// (gemm, campaign, bench_inference), all built on bare strtol with no end
// pointer: garbage ("4x"), negative, and overflowing values silently decayed
// to some fallback, so two subsystems could resolve the same environment to
// different team sizes. env_usize is the single replacement: unset/empty
// means "use the fallback", a canonical non-negative decimal integer is the
// value, and anything else is rejected with a one-time stderr warning (never
// silently) before falling back.
#pragma once

#include <optional>
#include <string_view>

#include "sys/types.hpp"

namespace dnnd::sys {

/// Parses a canonical non-negative base-10 integer (surrounding ASCII
/// whitespace allowed). Returns nullopt for anything else: empty, sign
/// prefixes, hex, trailing garbage, or a value that overflows usize.
[[nodiscard]] std::optional<usize> parse_usize(std::string_view text);

/// Reads env var `name` as a usize knob. Unset or empty returns `fallback`;
/// a malformed value (see parse_usize) prints one warning per distinct
/// (name, value) pair to stderr and returns `fallback`. Safe to call from
/// hot paths: no allocation on the well-formed path.
[[nodiscard]] usize env_usize(const char* name, usize fallback);

}  // namespace dnnd::sys
