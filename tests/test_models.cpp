#include <gtest/gtest.h>

#include <cmath>

#include "models/model_zoo.hpp"

namespace dnnd::models {
namespace {

nn::Tensor input_batch(usize n = 2) { return nn::Tensor({n, 3, 12, 12}); }

struct ZooCase {
  const char* name;
  usize expected_quantizable_layers;  ///< conv + dense weight tensors
};

class ZooShapes : public ::testing::TestWithParam<ZooCase> {};

TEST_P(ZooShapes, ForwardProducesLogits) {
  const auto c = GetParam();
  auto m = make_by_name(c.name, 10, /*seed=*/1);
  auto x = input_batch();
  auto y = m->forward(x, /*train=*/true);
  EXPECT_EQ(y.shape(), (std::vector<usize>{2, 10}));
  // Eval mode works after at least one train-mode pass (BN running stats).
  auto y2 = m->forward(x, /*train=*/false);
  EXPECT_EQ(y2.shape(), (std::vector<usize>{2, 10}));
}

TEST_P(ZooShapes, QuantizableLayerCount) {
  const auto c = GetParam();
  auto m = make_by_name(c.name, 10, 1);
  EXPECT_EQ(m->quantizable_params().size(), c.expected_quantizable_layers) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, ZooShapes,
    ::testing::Values(
        // vgg11_sub: 3 conv + 2 dense
        ZooCase{"vgg11", 5},
        // resnet18_sub: stem + 8 blocks x 2 convs + 3 projections + fc
        ZooCase{"resnet18", 1 + 16 + 3 + 1},
        // resnet20_sub: stem + 9 blocks x 2 convs + 2 projections + fc
        ZooCase{"resnet20", 1 + 18 + 2 + 1},
        // resnet34_sub: stem + 16 blocks x 2 convs + 3 projections + fc
        ZooCase{"resnet34", 1 + 32 + 3 + 1}));

TEST(Zoo, DepthOrdering) {
  // Parameter counts must reflect the family ordering used in Fig. 9:
  // resnet34_sub > resnet18_sub, and every model is non-trivial.
  auto v = make_vgg11_sub(10, 1);
  auto r18 = make_resnet18_sub(10, 1);
  auto r34 = make_resnet34_sub(10, 1);
  EXPECT_GT(r34->weight_count(), r18->weight_count());
  EXPECT_GT(v->weight_count(), 1000u);
  EXPECT_GT(r18->weight_count(), 1000u);
}

TEST(Zoo, WidthMultiplierScalesParamsQuadratically) {
  auto base = make_resnet20_sub(10, 1, 1);
  auto wide = make_resnet20_sub(10, 1, 2);
  const double ratio = static_cast<double>(wide->weight_count()) /
                       static_cast<double>(base->weight_count());
  // Conv params scale ~x4 with doubled width (in_ch x out_ch).
  EXPECT_GT(ratio, 3.0);
  EXPECT_LT(ratio, 4.5);
}

TEST(Zoo, DeterministicInitialization) {
  auto a = make_resnet18_sub(10, 77);
  auto b = make_resnet18_sub(10, 77);
  const auto pa = a->quantizable_params();
  const auto pb = b->quantizable_params();
  ASSERT_EQ(pa.size(), pb.size());
  for (usize l = 0; l < pa.size(); ++l) {
    for (usize i = 0; i < pa[l].value->size(); i += 17) {
      EXPECT_EQ((*pa[l].value)[i], (*pb[l].value)[i]);
    }
  }
}

TEST(Zoo, SeedsChangeInitialization) {
  auto a = make_vgg11_sub(10, 1);
  auto b = make_vgg11_sub(10, 2);
  const auto pa = a->quantizable_params();
  const auto pb = b->quantizable_params();
  bool any_diff = false;
  for (usize i = 0; i < pa[0].value->size(); ++i) {
    if ((*pa[0].value)[i] != (*pb[0].value)[i]) {
      any_diff = true;
      break;
    }
  }
  EXPECT_TRUE(any_diff);
}

TEST(Zoo, ClassCountControlsHead) {
  auto m = make_resnet20_sub(25, 1);
  auto x = input_batch();
  EXPECT_EQ(m->forward(x, true).dim(1), 25u);
}

TEST(Zoo, UnknownNameThrows) {
  EXPECT_THROW(make_by_name("alexnet", 10, 1), std::invalid_argument);
}

TEST(Zoo, TestMlpShape) {
  auto m = make_test_mlp(64, 16, 4, 1);
  nn::Tensor x({3, 1, 8, 8});
  EXPECT_EQ(m->forward(x, false).shape(), (std::vector<usize>{3, 4}));
  EXPECT_EQ(m->quantizable_params().size(), 2u);
}

TEST(Zoo, BackwardRunsThroughAllArchitectures) {
  for (const char* name : {"vgg11", "resnet18", "resnet20", "resnet34"}) {
    auto m = make_by_name(name, 4, 3);
    sys::Rng rng(9);
    nn::Tensor x({2, 3, 12, 12});
    for (usize i = 0; i < x.size(); ++i) x[i] = static_cast<float>(rng.normal());
    m->zero_grad();
    const auto res = m->loss_and_grad(x, {0, 1}, /*train_mode=*/true);
    EXPECT_GT(res.loss, 0.0) << name;
    double gsum = 0.0;
    for (auto& p : m->quantizable_params()) gsum += p.grad->l2_norm();
    EXPECT_GT(gsum, 0.0) << name << ": no gradient reached the weights";
  }
}

}  // namespace
}  // namespace dnnd::models
