#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "attack/adaptive_attack.hpp"
#include "attack/bfa.hpp"
#include "attack/deephammer.hpp"
#include "attack/random_attack.hpp"
#include "attack/tbfa.hpp"
#include "attack/vwa.hpp"
#include "test_util.hpp"

namespace dnnd::attack {
namespace {

using testutil::easy_data;
using testutil::trained_mlp;

class BfaFixture : public ::testing::Test {
 protected:
  BfaFixture() : model_(trained_mlp()), qm_(*model_) {
    std::tie(ax_, ay_) = easy_data().test.head(32);
  }
  std::unique_ptr<nn::Model> model_;
  quant::QuantizedModel qm_;
  nn::Tensor ax_;
  std::vector<u32> ay_;
};

TEST_F(BfaFixture, HalvesAccuracyInFewFlips) {
  // On the tiny 2-layer MLP the greedy loss maximisation plateaus around
  // 50% (confidently-correct samples have vanishing gradients); the conv
  // models collapse fully -- see ConvNetCollapsesToRandomGuess below.
  BfaConfig cfg;
  cfg.max_flips = 60;
  cfg.stop_accuracy = 0.55;
  ProgressiveBitSearch bfa(qm_, ax_, ay_, cfg);
  const auto res = bfa.run();
  EXPECT_GT(res.initial_batch_accuracy, 0.8);
  EXPECT_TRUE(res.reached_stop) << "accuracy only reached " << res.final_batch_accuracy;
  EXPECT_LE(res.final_batch_accuracy, 0.55);
  EXPECT_GE(res.flips.size(), 1u);
}

TEST_F(BfaFixture, ConvNetCollapsesToRandomGuess) {
  // The paper's setting: conv nets collapse to the random-guess level in a
  // few dozen flips.
  sys::Rng rng(31);
  auto conv = std::make_unique<nn::Model>("tiny_conv");
  conv->add(std::make_unique<nn::Conv2d>(1, 4, 3, 1, 1, rng));
  conv->add(std::make_unique<nn::BatchNorm2d>(4));
  conv->add(std::make_unique<nn::ReLU>());
  conv->add(std::make_unique<nn::MaxPool2d>());
  conv->add(std::make_unique<nn::Conv2d>(4, 8, 3, 1, 1, rng));
  conv->add(std::make_unique<nn::BatchNorm2d>(8));
  conv->add(std::make_unique<nn::ReLU>());
  conv->add(std::make_unique<nn::GlobalAvgPool>());
  conv->add(std::make_unique<nn::Dense>(8, 4, rng));
  nn::TrainConfig tcfg;
  tcfg.epochs = 5;
  const auto report = nn::train(*conv, testutil::easy_data(), tcfg);
  ASSERT_GT(report.test_accuracy, 0.8);
  quant::QuantizedModel qm(*conv);
  BfaConfig cfg;
  cfg.max_flips = 50;
  ProgressiveBitSearch bfa(qm, ax_, ay_, cfg);
  const auto res = bfa.run();
  EXPECT_TRUE(res.reached_stop) << "only reached " << res.final_batch_accuracy;
  EXPECT_LE(res.final_batch_accuracy, bfa.stop_threshold());
}

TEST_F(BfaFixture, EachFlipIncreasesLoss) {
  BfaConfig cfg;
  cfg.max_flips = 10;
  ProgressiveBitSearch bfa(qm_, ax_, ay_, cfg);
  const auto res = bfa.run();
  usize validated = 0;
  for (const auto& rec : res.flips) {
    if (rec.fallback) continue;  // greedy escape: loss may dip
    EXPECT_GT(rec.loss_after, rec.loss_before);
    ++validated;
  }
  EXPECT_GT(validated, 0u);
}

TEST_F(BfaFixture, NeverReflipsABit) {
  BfaConfig cfg;
  cfg.max_flips = 40;
  ProgressiveBitSearch bfa(qm_, ax_, ay_, cfg);
  const auto res = bfa.run();
  std::set<u64> seen;
  for (const auto& rec : res.flips) {
    EXPECT_TRUE(seen.insert(rec.loc.key()).second)
        << "bit flipped twice (hamming distance must stay minimal)";
  }
}

TEST_F(BfaFixture, PrefersHighOrderBits) {
  BfaConfig cfg;
  cfg.max_flips = 15;
  ProgressiveBitSearch bfa(qm_, ax_, ay_, cfg);
  const auto res = bfa.run();
  usize high = 0;
  for (const auto& rec : res.flips) high += (rec.loc.bit >= 6);
  // MSB/bit-6 flips cause the large weight shifts; they must dominate.
  EXPECT_GE(high * 2, res.flips.size());
}

TEST_F(BfaFixture, SkipSetIsRespected) {
  BfaConfig cfg;
  cfg.max_flips = 5;
  ProgressiveBitSearch probe(qm_, ax_, ay_, cfg);
  const auto first = probe.step({});
  ASSERT_TRUE(first.has_value());
  qm_.flip(first->loc);  // undo
  quant::BitSkipSet skip;
  skip.insert(first->loc);
  ProgressiveBitSearch constrained(qm_, ax_, ay_, cfg);
  const auto second = constrained.step(skip);
  ASSERT_TRUE(second.has_value());
  EXPECT_FALSE(second->loc == first->loc);
}

TEST_F(BfaFixture, StepCommitsExactlyOneBit) {
  const auto snap = qm_.snapshot();
  BfaConfig cfg;
  ProgressiveBitSearch bfa(qm_, ax_, ay_, cfg);
  const auto rec = bfa.step({});
  ASSERT_TRUE(rec.has_value());
  EXPECT_EQ(qm_.hamming_distance(snap), 1u);
}

TEST_F(BfaFixture, EvaluatingAllLayersMatchesOrBeatsSubset) {
  // layers_evaluated is a perf knob; evaluating all layers can only find an
  // equal-or-better flip in the first step.
  auto model2 = trained_mlp();
  quant::QuantizedModel qm2(*model2);
  BfaConfig all_cfg;
  all_cfg.layers_evaluated = 0;
  ProgressiveBitSearch all_layers(qm2, ax_, ay_, all_cfg);
  const auto rec_all = all_layers.step({});

  BfaConfig sub_cfg;
  sub_cfg.layers_evaluated = 1;
  ProgressiveBitSearch subset(qm_, ax_, ay_, sub_cfg);
  const auto rec_sub = subset.step({});
  ASSERT_TRUE(rec_all.has_value());
  ASSERT_TRUE(rec_sub.has_value());
  EXPECT_GE(rec_all->loss_after, rec_sub->loss_after - 1e-9);
}

TEST_F(BfaFixture, RandomAttackIsFarWeaker) {
  // Baseline comparison of Fig. 1(b): random flips barely move accuracy
  // at the budget where the targeted attack does real damage.
  auto model2 = trained_mlp();
  quant::QuantizedModel qm2(*model2);
  BfaConfig cfg;
  cfg.max_flips = 40;
  ProgressiveBitSearch bfa(qm2, ax_, ay_, cfg);
  const auto targeted = bfa.run();
  ASSERT_GE(targeted.flips.size(), 1u);

  RandomBitAttack rnd(qm_, sys::Rng(11));
  const auto random_res = rnd.run(targeted.flips.size(), ax_, ay_, targeted.flips.size());
  const double random_acc = random_res.accuracy_trace.back();
  EXPECT_GT(random_acc, targeted.final_batch_accuracy + 0.3)
      << "random attack should be far weaker at equal flip budget";
}

TEST_F(BfaFixture, RandomAttackRespectsSkipSet) {
  quant::BitSkipSet skip;
  // Forbid everything in layer 0.
  for (usize i = 0; i < qm_.layer(0).size(); ++i) {
    for (u32 b = 0; b < 8; ++b) skip.insert({0, i, b});
  }
  RandomBitAttack rnd(qm_, sys::Rng(13));
  for (int i = 0; i < 50; ++i) {
    const auto loc = rnd.flip_one(skip);
    EXPECT_NE(loc.layer, 0u);
  }
}

TEST_F(BfaFixture, RandomAttackZeroMeasurePeriodThrows) {
  // Regression: measure_every == 0 used to reach `flips % measure_every`
  // (division by zero) instead of failing loudly at the API boundary.
  RandomBitAttack rnd(qm_, sys::Rng(3));
  EXPECT_THROW(rnd.run(10, ax_, ay_, /*measure_every=*/0), std::invalid_argument);
}

TEST_F(BfaFixture, AdaptiveAttackZeroMeasurePeriodThrows) {
  auto [ex, ey] = easy_data().test.head(60);
  AdaptiveAttackConfig cfg;
  cfg.measure_every = 0;
  EXPECT_THROW(AdaptiveWhiteBoxAttack(qm_, ax_, ay_, ex, ey, cfg),
               std::invalid_argument);
}

TEST_F(BfaFixture, AdaptiveAttackTraceShape) {
  auto [ex, ey] = easy_data().test.head(60);
  AdaptiveAttackConfig cfg;
  cfg.max_additional_flips = 20;
  cfg.measure_every = 10;
  AdaptiveWhiteBoxAttack attack(qm_, ax_, ay_, ex, ey, cfg);
  quant::BitSkipSet secured;  // nothing secured
  const auto res = attack.run(secured);
  EXPECT_EQ(res.secured_bits, 0u);
  EXPECT_GE(res.accuracy_trace.size(), 2u);
  EXPECT_LE(res.landed_flips.size(), 20u);
  // Accuracy must not increase as flips land.
  EXPECT_LE(res.accuracy_trace.back(), res.accuracy_trace.front() + 1e-9);
}

TEST_F(BfaFixture, AdaptiveAttackWithEverythingSecuredLandsNothing) {
  auto [ex, ey] = easy_data().test.head(60);
  quant::BitSkipSet secured;
  for (usize l = 0; l < qm_.num_layers(); ++l) {
    for (usize i = 0; i < qm_.layer(l).size(); ++i) {
      for (u32 b = 0; b < 8; ++b) secured.insert({l, i, b});
    }
  }
  AdaptiveAttackConfig cfg;
  cfg.max_additional_flips = 10;
  AdaptiveWhiteBoxAttack attack(qm_, ax_, ay_, ex, ey, cfg);
  const auto res = attack.run(secured);
  EXPECT_TRUE(res.landed_flips.empty());
  // Trace stays at clean accuracy.
  for (double a : res.accuracy_trace) EXPECT_DOUBLE_EQ(a, res.accuracy_trace.front());
}

TEST_F(BfaFixture, StopThresholdUsesModelClassCountNotBatchLabels) {
  // Regression: num_classes_ used to be max(label)+1 over the attack batch,
  // so a batch omitting the top class inflated the random-guess threshold
  // (1.05/3 instead of 1.05/4 here) and cut the search short.
  std::vector<u32> clamped = ay_;
  for (u32& y : clamped) y = std::min(y, 2u);  // class 3 absent from the batch
  ProgressiveBitSearch bfa(qm_, ax_, clamped, {});
  EXPECT_DOUBLE_EQ(bfa.stop_threshold(), 1.05 / 4.0);
}

TEST(BfaNanProbe, SaturatingFlipRanksAsMostDestructive) {
  // A flip that drives a logit to +inf makes the softmax NaN (inf - inf).
  // NaN compares false under `>`, so the candidate loop used to silently
  // discard exactly the most destructive probes. probe_loss_key maps NaN to
  // +inf; the saturating flip must now win the step.
  sys::Rng rng(1);
  auto model = std::make_unique<nn::Model>("sat");
  auto dense = std::make_unique<nn::Dense>(2, 2, rng);
  // W = [[5, 0], [0, 0]], b = 0: scale 5/127, codes [127, 0, 0, 0].
  for (usize i = 0; i < dense->weight.size(); ++i) dense->weight[i] = 0.0f;
  for (usize i = 0; i < dense->bias.size(); ++i) dense->bias[i] = 0.0f;
  dense->weight[0] = 5.0f;
  model->add(std::move(dense));
  quant::QuantizedModel qm(*model);

  // x = (1, 3e38), label 0: base logits (5, 0). The two positive-gain
  // candidates are w01 bit 7 (z0 -> -inf, large FINITE loss) and w11 bit 6
  // (z1 -> +inf, NaN loss). The NaN probe is the more destructive one.
  nn::Tensor x({1, 2});
  x[0] = 1.0f;
  x[1] = 3e38f;
  ProgressiveBitSearch bfa(qm, x, {0}, {});
  const auto rec = bfa.step({});
  ASSERT_TRUE(rec.has_value());
  EXPECT_FALSE(rec->fallback) << "the NaN probe must win in-loop, not via fallback";
  EXPECT_EQ(rec->loc.index, 3u);  // w11 ({out, in} layout)
  EXPECT_EQ(rec->loc.bit, 6u);
  EXPECT_TRUE(std::isinf(rec->loss_after)) << "committed record carries the +inf key";
}

// ------------------------------------------------------------------ T-BFA --

TEST_F(BfaFixture, TbfaNTo1RedirectsEverythingToTarget) {
  TbfaConfig cfg;
  cfg.variant = TbfaVariant::kNTo1;
  cfg.target = 1;
  cfg.max_flips = 25;
  TbfaAttack atk(qm_, ax_, ay_, cfg);
  EXPECT_EQ(atk.source_class(), nn::kAllSources);
  const auto res = atk.run();
  EXPECT_LT(res.initial_asr, 0.2) << "a trained model should rarely hit the target";
  EXPECT_GT(res.final_asr, res.initial_asr + 0.3) << "redirect must make real progress";
  // A targeted attacker is a minimiser: every committed flip lowers the
  // objective (no fallback path exists by design).
  for (const auto& rec : res.flips) EXPECT_LT(rec.loss_after, rec.loss_before);
  // Hamming distance stays minimal, same contract as untargeted BFA.
  std::set<u64> seen;
  for (const auto& rec : res.flips) EXPECT_TRUE(seen.insert(rec.loc.key()).second);
}

TEST_F(BfaFixture, Tbfa1To1RaisesSourceToTargetRate) {
  TbfaConfig cfg;
  cfg.variant = TbfaVariant::k1To1;
  cfg.source = 2;
  cfg.target = 0;
  cfg.max_flips = 25;
  TbfaAttack atk(qm_, ax_, ay_, cfg);
  EXPECT_EQ(atk.source_class(), 2u);
  const auto res = atk.run();
  EXPECT_GT(res.final_asr, res.initial_asr)
      << "1-to-1 redirect must raise the source->target rate";
}

TEST_F(BfaFixture, TbfaStealthyRespectsOtherClassTolerance) {
  TbfaConfig cfg;
  cfg.variant = TbfaVariant::kStealthy;
  cfg.source = 3;
  cfg.target = 1;
  cfg.stealth_tolerance = 0.15;
  cfg.max_flips = 25;
  TbfaAttack atk(qm_, ax_, ay_, cfg);
  const auto res = atk.run();
  // The admissibility constraint holds after EVERY committed flip, not just
  // at the end -- an overall-accuracy monitor sampling mid-attack sees
  // nothing.
  for (const auto& rec : res.flips) {
    EXPECT_GE(rec.other_acc_after, atk.clean_other_accuracy() - cfg.stealth_tolerance);
  }
  EXPECT_GE(res.final_other_acc, atk.clean_other_accuracy() - cfg.stealth_tolerance);
}

TEST_F(BfaFixture, TbfaRejectsOutOfRangeOrDegenerateClassPairs) {
  TbfaConfig cfg;
  cfg.variant = TbfaVariant::k1To1;
  cfg.source = 1;
  cfg.target = 9;  // model has 4 classes
  EXPECT_THROW(TbfaAttack(qm_, ax_, ay_, cfg), std::invalid_argument);
  cfg.target = 1;  // source == target
  EXPECT_THROW(TbfaAttack(qm_, ax_, ay_, cfg), std::invalid_argument);
  cfg.source = 7;
  cfg.target = 0;
  EXPECT_THROW(TbfaAttack(qm_, ax_, ay_, cfg), std::invalid_argument);
}

TEST_F(BfaFixture, TbfaByteIdenticalAcrossGemmThreadCounts) {
  // Same determinism contract as the campaign: the GEMM team split must not
  // change a single committed bit or measured number.
  auto run_with_threads = [&](usize threads) {
    const testutil::ThreadsGuard guard;
    nn::gemm::set_threads(threads);
    auto model = trained_mlp();
    quant::QuantizedModel qm(*model);
    TbfaConfig cfg;
    cfg.variant = TbfaVariant::kNTo1;
    cfg.target = 2;
    cfg.max_flips = 12;
    TbfaAttack atk(qm, ax_, ay_, cfg);
    return atk.run();
  };
  const auto a = run_with_threads(1);
  const auto b = run_with_threads(4);
  ASSERT_EQ(a.flips.size(), b.flips.size());
  for (usize i = 0; i < a.flips.size(); ++i) {
    EXPECT_TRUE(a.flips[i].loc == b.flips[i].loc) << "flip " << i;
    EXPECT_EQ(a.flips[i].loss_after, b.flips[i].loss_after) << "flip " << i;
    EXPECT_EQ(a.flips[i].asr_after, b.flips[i].asr_after) << "flip " << i;
    EXPECT_EQ(a.flips[i].other_acc_after, b.flips[i].other_acc_after) << "flip " << i;
  }
  EXPECT_EQ(a.final_asr, b.final_asr);
  EXPECT_EQ(a.final_other_acc, b.final_other_acc);
}

// ------------------------------------------------------------ VWA-limited --

TEST_F(BfaFixture, VwaNeverExceedsHardFlipBudget) {
  const auto snap = qm_.snapshot();
  VwaLimitedConfig cfg;
  cfg.flip_budget = 5;
  VwaLimitedAttack atk(qm_, ax_, ay_, cfg);
  const auto res = atk.run();
  EXPECT_LE(res.flips.size(), 5u);
  EXPECT_LE(qm_.hamming_distance(snap), 5u);
  if (res.budget_exhausted()) {
    EXPECT_EQ(res.flips.size(), 5u);
  }
}

TEST_F(BfaFixture, VwaBudgetExhaustionIsDistinctFromReachingStop) {
  // Tight budget, unreachable stop: the nominal limited-bit outcome.
  VwaLimitedConfig tight;
  tight.flip_budget = 3;
  VwaLimitedAttack limited(qm_, ax_, ay_, tight);
  const auto spent = limited.run();
  EXPECT_EQ(spent.outcome, VwaOutcome::kBudgetExhausted);
  EXPECT_FALSE(spent.reached_stop());
  EXPECT_GT(spent.final_batch_accuracy, limited.stop_threshold());

  // Generous budget, reachable stop: must be reported as kReachedStop, with
  // the budget left partly unspent.
  auto model2 = trained_mlp();
  quant::QuantizedModel qm2(*model2);
  VwaLimitedConfig loose;
  loose.flip_budget = 60;
  loose.stop_accuracy = 0.55;
  VwaLimitedAttack stopper(qm2, ax_, ay_, loose);
  const auto stopped = stopper.run();
  EXPECT_EQ(stopped.outcome, VwaOutcome::kReachedStop);
  EXPECT_LE(stopped.final_batch_accuracy, 0.55);
  EXPECT_LT(stopped.flips.size(), 60u);
}

TEST_F(BfaFixture, VwaZeroBudgetThrows) {
  VwaLimitedConfig cfg;
  cfg.flip_budget = 0;
  EXPECT_THROW(VwaLimitedAttack(qm_, ax_, ay_, cfg), std::invalid_argument);
}

TEST_F(BfaFixture, VwaMatchesBfaFlipSequenceUntilFirstFallback) {
  // Seam-equivalence: both drivers sit on the same ProbeEngine with the same
  // untargeted objective, so their committed flips must be bit-identical
  // until BFA's first fallback step (which vwa-limited disables by design).
  BfaConfig bcfg;
  bcfg.max_flips = 8;
  bcfg.stop_accuracy = 0.01;  // unreachable: neither driver stops early
  ProgressiveBitSearch bfa(qm_, ax_, ay_, bcfg);
  const auto bfa_res = bfa.run();

  auto model2 = trained_mlp();
  quant::QuantizedModel qm2(*model2);
  VwaLimitedConfig vcfg;
  vcfg.flip_budget = 8;
  vcfg.stop_accuracy = 0.01;
  VwaLimitedAttack vwa(qm2, ax_, ay_, vcfg);
  const auto vwa_res = vwa.run();

  usize compared = 0;
  for (usize i = 0; i < bfa_res.flips.size(); ++i) {
    if (bfa_res.flips[i].fallback) break;  // vwa ends where BFA falls back
    ASSERT_LT(i, vwa_res.flips.size());
    EXPECT_TRUE(vwa_res.flips[i].loc == bfa_res.flips[i].loc) << "flip " << i;
    EXPECT_EQ(vwa_res.flips[i].loss_after, bfa_res.flips[i].loss_after) << "flip " << i;
    ++compared;
  }
  EXPECT_GT(compared, 0u);
}

TEST_F(BfaFixture, VwaRespectsSkipSet) {
  VwaLimitedConfig cfg;
  cfg.flip_budget = 1;
  VwaLimitedAttack probe(qm_, ax_, ay_, cfg);
  const auto first = probe.step({});
  ASSERT_TRUE(first.has_value());
  qm_.flip(first->loc);  // undo
  quant::BitSkipSet skip;
  skip.insert(first->loc);
  VwaLimitedAttack constrained(qm_, ax_, ay_, cfg);
  const auto second = constrained.step(skip);
  ASSERT_TRUE(second.has_value());
  EXPECT_FALSE(second->loc == first->loc);
}

// ------------------------------------------------------------- DeepHammer --

class DeepHammerFixture : public ::testing::Test {
 protected:
  DeepHammerFixture()
      : model_(trained_mlp()),
        qm_(*model_),
        cfg_(dram::DramConfig::nn_scaled()),
        device_(cfg_),
        remap_(cfg_.geo),
        hammer_(device_, rowhammer::HammerModelConfig{}),
        mapping_(qm_, cfg_),
        attack_(device_, hammer_, mapping_, remap_) {
    mapping_.upload(qm_, device_, remap_);
  }

  std::unique_ptr<nn::Model> model_;
  quant::QuantizedModel qm_;
  dram::DramConfig cfg_;
  dram::DramDevice device_;
  dram::RowRemapper remap_;
  rowhammer::HammerModel hammer_;
  mapping::WeightMapping mapping_;
  DeepHammerAttack attack_;
};

TEST_F(DeepHammerFixture, UndefendedFlipLands) {
  const quant::BitLocation target{0, 10, 7};
  const auto before = qm_.get_q(0, 10);
  const auto attempt = attack_.attempt_flip(target);
  EXPECT_TRUE(attempt.success);
  EXPECT_GT(attempt.activations, 0u);
  EXPECT_GT(attempt.elapsed, 0);
  // The flip is in DRAM (model untouched until download).
  EXPECT_EQ(qm_.get_q(0, 10), before);
  mapping_.download(qm_, device_, remap_);
  EXPECT_EQ(qm_.get_q(0, 10), quant::flip_bit_value(before, 7));
}

TEST_F(DeepHammerFixture, FlipNeedsAtLeastThresholdActivations) {
  const auto attempt = attack_.attempt_flip({1, 3, 7});
  ASSERT_TRUE(attempt.success);
  // Double-sided: the victim accumulates ~1 disturbance per aggressor ACT.
  EXPECT_GE(attempt.activations, device_.config().t_rh);
}

TEST_F(DeepHammerFixture, MassagingRelocatesVictimRow) {
  const quant::BitLocation target{0, 20, 6};
  const auto logical = mapping_.locate(0, 20).row;
  const auto attempt = attack_.attempt_flip(target);
  ASSERT_TRUE(attempt.success);
  if (attempt.massaged) {
    EXPECT_FALSE(remap_.is_identity());
    // The logical row still resolves and holds the weight data (flipped bit
    // aside) -- massaging must not corrupt other bytes.
    const auto phys = remap_.to_physical(logical);
    const auto w = mapping_.weight_at(logical, 0);
    ASSERT_TRUE(w.has_value());
    if (!(w->layer == target.layer && w->index == target.index)) {
      EXPECT_EQ(static_cast<i8>(device_.peek(phys, 0)), qm_.get_q(w->layer, w->index));
    }
  }
}

TEST_F(DeepHammerFixture, RepeatedFlipsAcrossWeights) {
  usize landed = 0;
  for (usize i = 0; i < 4; ++i) {
    const auto attempt = attack_.attempt_flip({0, i * 7, 7});
    landed += attempt.success;
  }
  EXPECT_EQ(landed, 4u);
}

}  // namespace
}  // namespace dnnd::attack
