// Model: a Sequential network plus the bookkeeping the trainer, quantizer,
// and attacks need -- flat parameter enumeration, gradient reset, batch
// forward/backward, and prediction helpers.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "nn/layers.hpp"
#include "nn/loss.hpp"

namespace dnnd::nn {

class Model {
 public:
  explicit Model(std::string name) : name_(std::move(name)) {}

  /// Appends a layer to the network.
  void add(std::unique_ptr<Layer> layer) { net_.add(std::move(layer)); }

  [[nodiscard]] const std::string& name() const { return name_; }
  [[nodiscard]] Sequential& net() { return net_; }

  /// Forward pass; `train` selects batch statistics for BatchNorm.
  Tensor forward(const Tensor& x, bool train = false) { return net_.forward(x, train); }

  /// Backward pass from dL/dlogits.
  void backward(const Tensor& dlogits) { net_.backward(dlogits); }

  /// All parameters in declaration order with hierarchical names.
  std::vector<ParamRef> params() { return net_.params(); }

  /// Only the BFA-targetable (quantizable) weight tensors.
  std::vector<ParamRef> quantizable_params();

  /// Zeroes every gradient buffer.
  void zero_grad();

  /// Complete value snapshot: all parameters plus persistent layer state
  /// (BatchNorm running statistics). Restoring reproduces inference exactly.
  [[nodiscard]] std::vector<Tensor> save_state();
  void load_state(const std::vector<Tensor>& snapshot);

  /// Total parameter count (all) and quantizable weight count.
  [[nodiscard]] usize param_count();
  [[nodiscard]] usize weight_count();

  /// Computes loss and accumulates gradients on a batch. Uses train=false
  /// statistics by default (the BFA computes gradients of the *inference*
  /// loss, i.e. with frozen BatchNorm statistics, per the threat model).
  LossResult loss_and_grad(const Tensor& x, const std::vector<u32>& labels,
                           bool train_mode = false);

  /// Loss only, no gradients.
  double loss(const Tensor& x, const std::vector<u32>& labels);

  /// Fraction of correct argmax predictions on (x, labels).
  double accuracy(const Tensor& x, const std::vector<u32>& labels);

 private:
  std::string name_;
  Sequential net_;
};

}  // namespace dnnd::nn
