// Table 3: comparison of DNN-Defender with software (training/inference-time)
// BFA defenses and generic hardware defenses, on a ResNet-20 stand-in trained
// on the CIFAR-10-like dataset. Reports clean accuracy, post-attack accuracy,
// and the number of bit flips the attack spent.
#include "attack/bfa.hpp"
#include "bench_util.hpp"
#include "defense/rrs.hpp"
#include "defense/shadow.hpp"
#include "defense/software_defenses.hpp"
#include "defense/srs.hpp"
#include "system/protected_system.hpp"

using namespace dnnd;

namespace {

struct Row {
  std::string name;
  double clean_acc;
  double post_acc;
  std::string flips;
};

}  // namespace

int main() {
  bench::banner("Table 3 -- DNN-Defender vs software & hardware BFA defenses",
                "paper Table 3: ResNet-20 on CIFAR-10, clean/post-attack acc, flips");
  const bool small = bench::small_scale();
  auto data = nn::make_synthetic(nn::SynthSpec::cifar10_like());
  auto [ax, ay] = data.test.head(small ? 24 : 32);
  auto [ex, ey] = data.test.head(small ? 120 : 300);
  const double stop_acc = 1.1 / data.spec.num_classes;
  const usize bfa_budget = small ? 60 : 120;
  const usize binary_budget = small ? 80 : 200;
  const usize hw_attempts = small ? 12 : 30;

  auto base = bench::train_model("resnet20", data, 6);
  const auto base_weights = base->save_state();
  auto wide = bench::train_model("resnet20", data, 5, /*seed=*/2, /*width_mult=*/2);
  const auto wide_weights = wide->save_state();

  std::vector<Row> rows;
  auto eval_acc = [&](nn::Model& m) { return m.accuracy(ex, ey); };

  // --- Baseline: plain 8-bit quantized model under BFA ---
  {
    quant::QuantizedModel qm(*base);
    const double clean = eval_acc(*base);
    attack::BfaConfig cfg;
    cfg.max_flips = bfa_budget;
    cfg.stop_accuracy = stop_acc;
    attack::ProgressiveBitSearch bfa(qm, ax, ay, cfg);
    const auto res = bfa.run();
    rows.push_back({"Baseline ResNet-20 (8-bit)", clean, eval_acc(*base),
                    std::to_string(res.flips.size())});
    base->load_state(base_weights);
  }

  // --- Weight Reconstruction (Li et al. DAC'20): clamp after every flip ---
  {
    quant::QuantizedModel qm(*base);
    const double clean = eval_acc(*base);
    defense::software::ReconstructionGuard guard(qm);
    attack::BfaConfig cfg;
    cfg.stop_accuracy = stop_acc;
    attack::ProgressiveBitSearch bfa(qm, ax, ay, cfg);
    usize flips = 0;
    double acc = clean;
    while (flips < bfa_budget && acc > stop_acc) {
      if (!bfa.step({}).has_value()) break;
      ++flips;
      guard.apply(qm);
      acc = eval_acc(*base);
    }
    rows.push_back({"Weight Reconstruction", clean, acc,
                    acc > stop_acc ? ">" + std::to_string(flips) : std::to_string(flips)});
    base->load_state(base_weights);
  }

  // --- Binary weight (He et al. CVPR'20): STE fine-tune, then attack ---
  {
    defense::software::binary_finetune(*base, data, /*epochs=*/small ? 2 : 4, /*lr=*/0.02, 5);
    defense::software::BinaryWeightModel bm(*base);
    const double clean = eval_acc(*base);
    const auto res = defense::software::attack_binary(bm, ax, ay, binary_budget, stop_acc);
    rows.push_back({"Binary weight", clean, eval_acc(*base),
                    res.reached_stop ? std::to_string(res.flips)
                                     : ">" + std::to_string(res.flips)});
    base->load_state(base_weights);
  }

  // --- Piece-wise clustering (He et al. CVPR'20) ---
  {
    defense::software::piecewise_clustering_finetune(*base, data, /*lambda=*/0.15,
                                                     /*epochs=*/small ? 1 : 2, /*lr=*/0.01, 5);
    quant::QuantizedModel qm(*base);
    const double clean = eval_acc(*base);
    attack::BfaConfig cfg;
    cfg.max_flips = bfa_budget;
    cfg.stop_accuracy = stop_acc;
    attack::ProgressiveBitSearch bfa(qm, ax, ay, cfg);
    const auto res = bfa.run();
    rows.push_back({"Piece-wise Clustering", clean, eval_acc(*base),
                    res.reached_stop ? std::to_string(res.flips.size())
                                     : ">" + std::to_string(res.flips.size())});
    base->load_state(base_weights);
  }

  // --- Model capacity x4 (scaled stand-in for the paper's x16; DESIGN.md) ---
  {
    quant::QuantizedModel qm(*wide);
    const double clean = wide->accuracy(ex, ey);
    attack::BfaConfig cfg;
    cfg.max_flips = bfa_budget;
    cfg.stop_accuracy = stop_acc;
    attack::ProgressiveBitSearch bfa(qm, ax, ay, cfg);
    const auto res = bfa.run();
    rows.push_back({"Model Capacity x4", clean, wide->accuracy(ex, ey),
                    res.reached_stop ? std::to_string(res.flips.size())
                                     : ">" + std::to_string(res.flips.size())});
    wide->load_state(wide_weights);
  }

  // --- RA-BNN stand-in: STE-trained binary weights on the widened model ---
  {
    defense::software::binary_finetune(*wide, data, /*epochs=*/small ? 2 : 4, /*lr=*/0.02, 5);
    defense::software::BinaryWeightModel bm(*wide);
    const double clean = wide->accuracy(ex, ey);
    const auto res = defense::software::attack_binary(bm, ax, ay, binary_budget, stop_acc);
    rows.push_back({"RA-BNN (binary, wide)", clean, wide->accuracy(ex, ey),
                    res.reached_stop ? std::to_string(res.flips)
                                     : ">" + std::to_string(res.flips)});
    wide->load_state(wide_weights);
  }

  // --- Hardware defenses: full-stack white-box attacks through the DRAM sim --
  auto hw_row = [&](const std::string& name, auto install) {
    quant::QuantizedModel qm(*base);
    system::ProtectedSystemConfig scfg;
    scfg.dram = dram::DramConfig::nn_scaled();
    system::ProtectedSystem sys(qm, scfg);
    install(sys, qm);
    const double clean = eval_acc(*base);
    const auto res = sys.run_white_box_attack(ax, ay, ex, ey, hw_attempts, stop_acc);
    rows.push_back({name, clean, res.final_accuracy,
                    std::to_string(res.attempts) + " (" + std::to_string(res.landed) +
                        " landed)"});
    base->load_state(base_weights);
  };
  hw_row("RRS", [](system::ProtectedSystem& s, quant::QuantizedModel&) {
    s.install_mitigation(std::make_unique<defense::Rrs>(s.device(), s.remapper()));
  });
  hw_row("SRS", [](system::ProtectedSystem& s, quant::QuantizedModel&) {
    s.install_mitigation(std::make_unique<defense::Srs>(s.device(), s.remapper()));
  });
  hw_row("SHADOW", [](system::ProtectedSystem& s, quant::QuantizedModel&) {
    s.install_mitigation(std::make_unique<defense::Shadow>(s.device(), s.remapper()));
  });
  hw_row("DNN-Defender", [&](system::ProtectedSystem& s, quant::QuantizedModel& qm) {
    core::PriorityProfiler profiler(qm, ax, ay);
    s.install_dnn_defender(profiler.profile_blocked_attacker(2 * hw_attempts));
  });

  sys::Table table({"Model / Defense", "Clean Acc (%)", "Post-Attack Acc (%)", "Bit-Flips #"});
  for (const auto& r : rows) {
    table.add_row({r.name, sys::fmt(100.0 * r.clean_acc, 2), sys::fmt(100.0 * r.post_acc, 2),
                   r.flips});
  }
  table.print();
  std::printf(
      "\nShape check (paper): the baseline collapses to random guess within a\n"
      "few dozen flips; training-based defenses raise the flip count but cost\n"
      "clean accuracy; RRS/SRS only slow the attack; SHADOW and DNN-Defender\n"
      "block it, and only DNN-Defender keeps post-attack accuracy exactly at\n"
      "the clean level with zero training overhead.\n");
  return 0;
}
