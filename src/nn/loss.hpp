// Softmax cross-entropy loss (the inference loss L that the BFA maximises).
#pragma once

#include <vector>

#include "nn/tensor.hpp"

namespace dnnd::nn {

/// Result of a loss evaluation over a batch.
struct LossResult {
  double loss = 0.0;      ///< mean cross-entropy
  Tensor dlogits;         ///< gradient w.r.t. the logits (already /N)
  usize correct = 0;      ///< argmax hits, for accuracy bookkeeping
};

/// Loss plus argmax accuracy derived from one logits tensor -- the shared
/// evaluation result of Model::evaluate_batch / evaluate_logits, which
/// replaces the loss-then-second-forward-for-accuracy pattern.
struct BatchEval {
  double loss = 0.0;
  double accuracy = 0.0;  ///< correct / batch size
  usize correct = 0;      ///< argmax hits
};

/// Computes mean softmax cross-entropy and its gradient for logits {N, C}.
LossResult softmax_cross_entropy(const Tensor& logits, const std::vector<u32>& labels);

/// In-place variant: writes into `out` (dlogits resized, not reallocated in
/// steady state). Identical arithmetic to softmax_cross_entropy.
void softmax_cross_entropy_into(const Tensor& logits, const std::vector<u32>& labels,
                                LossResult& out);

/// Loss only (no gradient allocation) -- used by attack inner loops where
/// only the scalar matters.
double softmax_cross_entropy_loss(const Tensor& logits, const std::vector<u32>& labels);

/// Loss and argmax accuracy from one logits tensor, allocation-free. The
/// loss matches softmax_cross_entropy_loss and the accuracy matches
/// argmax_rows-based counting bit-for-bit.
BatchEval evaluate_logits(const Tensor& logits, const std::vector<u32>& labels);

/// Argmax class per row of logits {N, C}.
std::vector<u32> argmax_rows(const Tensor& logits);

}  // namespace dnnd::nn
