#include "nn/gemm.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <thread>

#include "nn/simd.hpp"
#include "nn/thread_pool.hpp"
#include "nn/workspace.hpp"
#include "sys/env.hpp"

namespace dnnd::nn::gemm {

namespace {

std::atomic<bool> g_force_naive{false};
std::atomic<usize> g_threads{0};  ///< 0 = auto (env, then hardware)

/// Work below this many multiply-accumulates runs serial: a pool region costs
/// a few microseconds of synchronisation, which only pays off once the kernel
/// itself is past that scale. Tiny campaign models stay serial through this.
constexpr usize kParallelMinWork = usize{1} << 15;

/// Re-reads the environment on every call (no once-only cache): after a
/// mid-process env change, set_threads(0) must resolve to the NEW value, or
/// tests and the campaign's budget-split restore disagree about the team
/// size. env_usize warns (once) on garbage instead of silently falling back.
usize auto_threads() {
  const usize n = sys::env_usize("DNND_THREADS", 0);
  if (n > 0) return n;
  return static_cast<usize>(std::max(1u, std::thread::hardware_concurrency()));
}

/// B rows interleaved per panel: panel[k * kNr + r] = B[(n0 + r) * ldb + k].
/// With 8 independent accumulators the inner k loop reads one contiguous
/// 8-float line per step -- vectorizable across the accumulators while each
/// accumulator still sees its terms in ascending k.
constexpr usize kNr = 8;

/// M tile: bounds the live span of A rows streamed against one packed panel.
constexpr usize kMc = 128;

/// A rows per register tile -- also the grain of the threaded row split, so a
/// team never cuts a tile in half.
constexpr usize kMr = 8;

void pack_panel(const float* B, usize ldb, usize rows, usize K, float* panel) {
  for (usize k = 0; k < K; ++k) {
    float* dst = panel + k * kNr;
    for (usize r = 0; r < rows; ++r) dst[r] = B[r * ldb + k];
    for (usize r = rows; r < kNr; ++r) dst[r] = 0.0f;
  }
}

inline float bias_for(const float* bias, Bias kind, usize n) {
  return kind == Bias::kPerCol ? bias[n] : 0.0f;
}

/// The serial kernel body: one float accumulator per output, advanced in
/// ascending k. The inner k loops are the simd:: microkernels -- explicit
/// AVX2/NEON register tiles with one output column per vector lane, byte-
/// identical to the scalar loops by construction (see nn/simd.hpp for the
/// lane-per-accumulator argument). The threaded entry point below only ever
/// calls this on disjoint output blocks.
void kernel(const simd::Kernels& simd_kernels, usize M, usize N, usize K, const float* A,
            usize lda, const float* packed_b, float* C, usize crs, usize ccs,
            const float* bias, Bias bias_kind) {
  for (usize n0 = 0; n0 < N; n0 += kNr) {
    const usize rows = std::min(kNr, N - n0);
    const float* panel = packed_b + n0 * K;
    for (usize m0 = 0; m0 < M; m0 += kMc) {
      const usize m1 = std::min(M, m0 + kMc);
      usize m = m0;
      // 8x8 register tile: one panel line feeds eight A rows per k step. Each
      // of the 64 accumulators is still a single float advanced in ascending
      // k, so neither the tiling nor the lane assignment can change any
      // output bit.
      for (; m + kMr <= m1; m += kMr) {
        const float* a[kMr];
        for (usize i = 0; i < kMr; ++i) a[i] = A + (m + i) * lda;
        float acc[kMr][kNr];
        for (usize i = 0; i < kMr; ++i) {
          for (usize r = 0; r < kNr; ++r) {
            acc[i][r] = bias_for(bias, bias_kind, n0 + r < N ? n0 + r : N - 1);
          }
        }
        simd_kernels.tile8(K, a, panel, &acc[0][0]);
        for (usize i = 0; i < kMr; ++i) {
          float* c = C + (m + i) * crs + n0 * ccs;
          for (usize r = 0; r < rows; ++r) c[r * ccs] = acc[i][r];
        }
      }
      for (; m < m1; ++m) {
        const float* a = A + m * lda;
        float acc[kNr];
        for (usize r = 0; r < kNr; ++r) {
          acc[r] = bias_for(bias, bias_kind, n0 + r < N ? n0 + r : N - 1);
        }
        simd_kernels.row1(K, a, panel, acc);
        float* c = C + m * crs + n0 * ccs;
        for (usize r = 0; r < rows; ++r) c[r * ccs] = acc[r];
      }
    }
  }
}

/// The serial int8 kernel body, mirroring kernel(): int32 accumulators start
/// at zero (exact integer math needs no bias seed) and the epilogue
/// requantizes each output back to float, adding the bias term last so the
/// bias is never rounded through the integer domain. `A` is the quad-major
/// packed A panel (already offset to this call's first row); `astride` is
/// the full panel's quad pitch (4 * total rows), which row-partitioned
/// sub-calls inherit unchanged.
void kernel_int8(const simd::I8Kernels& ik, usize M, usize N, usize K, const i8* A,
                 usize astride, const i8* packed_b, float* C, usize crs, usize ccs,
                 const float* bias, Bias bias_kind, float requant) {
  const usize KQ = padded_k_int8(K) / 4;
  for (usize n0 = 0; n0 < N; n0 += kNr) {
    const usize rows = std::min(kNr, N - n0);
    const i8* panel = packed_b + n0 * padded_k_int8(K);
    for (usize m0 = 0; m0 < M; m0 += kMc) {
      const usize m1 = std::min(M, m0 + kMc);
      usize m = m0;
      for (; m + kMr <= m1; m += kMr) {
        i32 acc[kMr][kNr] = {};
        ik.tile8(KQ, A + m * 4, astride, panel, &acc[0][0]);
        for (usize i = 0; i < kMr; ++i) {
          float* c = C + (m + i) * crs + n0 * ccs;
          for (usize r = 0; r < rows; ++r) {
            c[r * ccs] =
                static_cast<float>(acc[i][r]) * requant + bias_for(bias, bias_kind, n0 + r);
          }
        }
      }
      for (; m < m1; ++m) {
        i32 acc[kNr] = {};
        ik.row1(KQ, A + m * 4, astride, panel, acc);
        float* c = C + m * crs + n0 * ccs;
        for (usize r = 0; r < rows; ++r) {
          c[r * ccs] =
              static_cast<float>(acc[r]) * requant + bias_for(bias, bias_kind, n0 + r);
        }
      }
    }
  }
}

}  // namespace

void set_force_naive(bool on) { g_force_naive.store(on, std::memory_order_relaxed); }
bool force_naive() { return g_force_naive.load(std::memory_order_relaxed); }

void set_threads(usize n) { g_threads.store(n, std::memory_order_relaxed); }

usize threads() {
  const usize setting = g_threads.load(std::memory_order_relaxed);
  return setting != 0 ? setting : auto_threads();
}

usize threads_setting() { return g_threads.load(std::memory_order_relaxed); }

usize plan_teams(usize items, usize macs) {
  if (items <= 1 || macs < kParallelMinWork || ThreadPool::in_region()) return 1;
  return std::min(threads(), items);
}

usize packed_b_size(usize N, usize K) { return ((N + kNr - 1) / kNr) * kNr * K; }

usize packed_index(usize n, usize k, usize K) {
  return (n / kNr) * kNr * K + k * kNr + n % kNr;
}

void pack_b(const float* B, usize ldb, usize N, usize K, float* packed) {
  for (usize n0 = 0; n0 < N; n0 += kNr) {
    pack_panel(B + n0 * ldb, ldb, std::min(kNr, N - n0), K, packed + n0 * K);
  }
}

void pack_b_int8(const i8* q, usize N, usize K, float scale, float* packed) {
  for (usize n0 = 0; n0 < N; n0 += kNr) {
    const usize rows = std::min(kNr, N - n0);
    const i8* src = q + n0 * K;
    float* panel = packed + n0 * K;
    for (usize k = 0; k < K; ++k) {
      float* dst = panel + k * kNr;
      // Same arithmetic as QuantizedModel::materialize: float(q) * scale.
      for (usize r = 0; r < rows; ++r) dst[r] = static_cast<float>(src[r * K + k]) * scale;
      for (usize r = rows; r < kNr; ++r) dst[r] = 0.0f;
    }
  }
}

void gemm_nt_prepacked(usize M, usize N, usize K, const float* A, usize lda,
                       const float* packed_b, float* C, usize crs, usize ccs,
                       const float* bias, Bias bias_kind) {
  if (M == 0 || N == 0) return;
  // Team planning is in units the split can actually hand out: whole 8-row
  // register tiles (row split) or whole 8-column panels (panel split) --
  // never more slots than there are tiles to own.
  const usize row_tiles = (M + kMr - 1) / kMr;
  const usize panels = (N + kNr - 1) / kNr;
  const usize teams = plan_teams(std::max(row_tiles, panels), M * N * K);
  // Resolved once per GEMM (not per team slot): the knob reads fall through
  // to getenv when no override is set, which must stay off the per-probe
  // hot path -- BFA campaigns issue thousands of microsecond-scale GEMMs.
  const simd::Kernels simd_kernels = simd::active_kernels();
  if (teams <= 1) {
    kernel(simd_kernels, M, N, K, A, lda, packed_b, C, crs, ccs, bias, bias_kind);
    return;
  }
  if (row_tiles >= teams) {
    // Contiguous M row chunks (multiples of the register tile): every thread
    // owns whole output rows, accumulators untouched.
    ThreadPool::instance().parallel(teams, [&](usize slot, usize nslots) {
      const usize chunk = (row_tiles + nslots - 1) / nslots * kMr;
      const usize lo = std::min(M, slot * chunk), hi = std::min(M, lo + chunk);
      if (lo < hi) {
        kernel(simd_kernels, hi - lo, N, K, A + lo * lda, lda, packed_b, C + lo * crs, crs,
               ccs, bias, bias_kind);
      }
    });
  } else {
    // Fewer row tiles than the team: partition the packed B panels instead,
    // so each thread owns whole output COLUMN groups (disjoint n0 blocks).
    ThreadPool::instance().parallel(std::min(teams, panels), [&](usize slot, usize nslots) {
      const usize chunk = (panels + nslots - 1) / nslots;
      const usize p_lo = std::min(panels, slot * chunk), p_hi = std::min(panels, p_lo + chunk);
      if (p_lo >= p_hi) return;
      const usize n_lo = p_lo * kNr, n_hi = std::min(N, p_hi * kNr);
      kernel(simd_kernels, M, n_hi - n_lo, K, A, lda, packed_b + n_lo * K, C + n_lo * ccs,
             crs, ccs, bias_kind == Bias::kPerCol ? bias + n_lo : bias, bias_kind);
    });
  }
}

usize padded_k_int8(usize K) { return (K + 3) & ~usize{3}; }

usize packed_b_int8_size(usize N, usize K) {
  return ((N + kNr - 1) / kNr) * kNr * padded_k_int8(K);
}

usize packed_q8_index(usize n, usize k, usize K) {
  const usize K4 = padded_k_int8(K);
  return (n / kNr) * kNr * K4 + (k / 4) * (kNr * 4) + (n % kNr) * 4 + k % 4;
}

void pack_b_q8(const i8* q, usize N, usize K, i8* packed) {
  const usize K4 = padded_k_int8(K);
  for (usize n0 = 0; n0 < N; n0 += kNr) {
    const usize rows = std::min(kNr, N - n0);
    i8* panel = packed + n0 * K4;
    for (usize k4 = 0; k4 < K4; k4 += 4) {
      i8* line = panel + k4 * kNr;
      for (usize r = 0; r < kNr; ++r) {
        for (usize o = 0; o < 4; ++o) {
          const usize k = k4 + o;
          line[r * 4 + o] = (r < rows && k < K) ? q[(n0 + r) * K + k] : i8{0};
        }
      }
    }
  }
}

float activation_scale(const float* A, usize M, usize K, usize lda) {
  float amax = 0.0f;
  for (usize m = 0; m < M; ++m) {
    const float* row = A + m * lda;
    for (usize k = 0; k < K; ++k) amax = std::max(amax, std::fabs(row[k]));
  }
  return amax > 0.0f ? amax / 127.0f : 1.0f;
}

usize packed_a_q8_index(usize m, usize k, usize M) { return (k / 4) * M * 4 + m * 4 + k % 4; }

void quantize_activations(const float* A, usize M, usize K, usize lda, float scale,
                          i8* out) {
  // Round-to-nearest, ties away from zero (the weight quantizer's rounding),
  // clamped to [-127, 127], written straight into the quad-major A panel --
  // vectorized, byte-identical between the scalar and AVX2 variants
  // (see simd.hpp).
  simd::quantize_panel_i8(A, M, K, lda, 1.0f / scale, out);
}

void gemm_nt_int8(usize M, usize N, usize K, const i8* A, const i8* packed_b, float* C,
                  usize crs, usize ccs, const float* bias, Bias bias_kind, float requant) {
  if (M == 0 || N == 0) return;
  const usize K4 = padded_k_int8(K);
  const usize astride = M * 4;  ///< quad pitch of the full A panel
  const usize row_tiles = (M + kMr - 1) / kMr;
  const usize panels = (N + kNr - 1) / kNr;
  const usize teams = plan_teams(std::max(row_tiles, panels), M * N * K);
  const simd::I8Kernels ik = simd::active_int8_kernels();
  if (teams <= 1) {
    kernel_int8(ik, M, N, K, A, astride, packed_b, C, crs, ccs, bias, bias_kind, requant);
    return;
  }
  // Same output partitioning as gemm_nt_prepacked. With exact int32
  // accumulators even the order argument is unnecessary: any split of the
  // outputs yields identical bytes.
  if (row_tiles >= teams) {
    ThreadPool::instance().parallel(teams, [&](usize slot, usize nslots) {
      const usize chunk = (row_tiles + nslots - 1) / nslots * kMr;
      const usize lo = std::min(M, slot * chunk), hi = std::min(M, lo + chunk);
      if (lo < hi) {
        kernel_int8(ik, hi - lo, N, K, A + lo * 4, astride, packed_b, C + lo * crs, crs,
                    ccs, bias, bias_kind, requant);
      }
    });
  } else {
    ThreadPool::instance().parallel(std::min(teams, panels), [&](usize slot, usize nslots) {
      const usize chunk = (panels + nslots - 1) / nslots;
      const usize p_lo = std::min(panels, slot * chunk), p_hi = std::min(panels, p_lo + chunk);
      if (p_lo >= p_hi) return;
      const usize n_lo = p_lo * kNr, n_hi = std::min(N, p_hi * kNr);
      kernel_int8(ik, M, n_hi - n_lo, K, A, astride, packed_b + n_lo * K4, C + n_lo * ccs,
                  crs, ccs, bias_kind == Bias::kPerCol ? bias + n_lo : bias, bias_kind,
                  requant);
    });
  }
}

void gemm_nt_strided(usize M, usize N, usize K, const float* A, usize lda, const float* B,
                     usize ldb, float* C, usize crs, usize ccs, const float* bias,
                     Bias bias_kind, Workspace& ws) {
  if (M == 0 || N == 0) return;
  float* packed = ws.pack_buffer(packed_b_size(N, K));
  pack_b(B, ldb, N, K, packed);
  gemm_nt_prepacked(M, N, K, A, lda, packed, C, crs, ccs, bias, bias_kind);
}

void gemm_nt(usize M, usize N, usize K, const float* A, usize lda, const float* B, usize ldb,
             float* C, usize ldc, const float* bias, Bias bias_kind, Workspace& ws) {
  gemm_nt_strided(M, N, K, A, lda, B, ldb, C, ldc, 1, bias, bias_kind, ws);
}

}  // namespace dnnd::nn::gemm
