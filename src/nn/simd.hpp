// Explicit SIMD microkernels for the GEMM register tiles, with runtime ISA
// dispatch (AVX2 / NEON / scalar).
//
// The GEMM's 8-wide packed panels put one output COLUMN in each vector lane:
// a microkernel step broadcasts one A element and does lane-wise
//
//     acc[r] = acc[r] + a_val * panel[k*8 + r]        (r = 0..7)
//
// with a distinct, non-contracted IEEE multiply and add per lane -- exactly
// the operations, on exactly the operands, in exactly the order of the
// scalar loop `for r: acc[r] += av * p[r]`. Vectorizing ACROSS the eight
// independent accumulators (never within one reduction) means no terms are
// ever reassociated or fused, so the SIMD path is byte-identical to the
// scalar path by construction, on every ISA. The build pins
// -ffp-contract=off so the scalar path cannot silently become fused either
// (tests/test_gemm.cpp sweeps simd-vs-scalar byte equality over randomized
// shapes; the campaign baseline gates it end to end).
//
// The one deliberate exception is the opt-in FMA fast path (DNND_FMA=1 /
// set_fma_override): it uses explicit fused multiply-add intrinsics, which
// round once instead of twice per term and may therefore diverge from the
// scalar path in the last ulp. It is excluded from every zero-tolerance
// byte gate and exists purely as a speed/accuracy trade the operator must
// ask for.
//
// Knobs (resolved per kernel selection, overridable in-process):
//   DNND_SIMD=0   force the scalar microkernels (CI's forced-scalar leg)
//   DNND_FMA=1    enable the fused fast path (divergent rounding allowed)
#pragma once

#include "sys/types.hpp"

namespace dnnd::nn::simd {

/// Instruction set a microkernel pair was compiled for. Runtime dispatch
/// picks the best one the CPU supports (AVX2 via cpuid on x86, NEON on
/// aarch64) unless forced scalar.
enum class Isa : u32 { kScalar = 0, kAvx2 = 1, kNeon = 2 };

/// Stable lowercase name ("scalar", "avx2", "neon") -- the `simd` field of
/// the bench_inference JSON.
[[nodiscard]] const char* isa_name(Isa isa);

/// 8x8 register-tile microkernel: for k ascending then i in [0,8),
/// acc[i*8 + r] += a[i][k] * panel[k*8 + r] for all eight lanes r.
/// `a` holds the eight A-row pointers, `panel` the 8-wide interleaved B
/// panel, `acc` the 64 contiguous accumulators.
using Tile8Fn = void (*)(usize K, const float* const* a, const float* panel, float* acc);

/// Single-row remainder: acc[r] += a[k] * panel[k*8 + r], k ascending.
using Row1Fn = void (*)(usize K, const float* a, const float* panel, float* acc);

/// A resolved microkernel pair plus what it was resolved to.
struct Kernels {
  Tile8Fn tile8;
  Row1Fn row1;
  Isa isa;
  bool fma;  ///< true only on the opt-in divergent fast path
};

/// The microkernels the GEMM should use right now: best supported ISA,
/// downgraded by the scalar override / DNND_SIMD=0, upgraded to the fused
/// variants by the FMA override / DNND_FMA=1 (when the CPU has FMA).
[[nodiscard]] Kernels active_kernels();

/// The ISA active_kernels() currently resolves to (knobs applied).
[[nodiscard]] Isa active_isa();

/// Best ISA this CPU supports, ignoring every knob.
[[nodiscard]] Isa best_isa();

/// Tri-state in-process overrides, mirroring gemm::set_threads's
/// save/restore idiom: -1 follows the env var (the default), 0/1 pin the
/// knob regardless of the environment. Process-global and cheap to flip;
/// bench_inference A/Bs through these.
void set_scalar_override(int v);              ///< -1 env, 0 simd on, 1 force scalar
[[nodiscard]] int scalar_override();
[[nodiscard]] bool force_scalar();            ///< resolved DNND_SIMD knob
void set_fma_override(int v);                 ///< -1 env, 0 off, 1 fused fast path
[[nodiscard]] int fma_override();
[[nodiscard]] bool fma_enabled();             ///< resolved DNND_FMA knob

}  // namespace dnnd::nn::simd
