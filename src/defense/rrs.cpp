#include "defense/rrs.hpp"

namespace dnnd::defense {

using dram::RowAddr;

Rrs::Rrs(dram::DramDevice& device, dram::RowRemapper& remap, RrsConfig cfg)
    : Mitigation(device, remap), cfg_(cfg), rng_(cfg.seed) {}

u64 Rrs::track(const RowAddr& row) {
  charge_tracker_access();
  const u64 id = flat_row_id(device_.config().geo, row);
  auto it = counts_.find(id);
  if (it != counts_.end()) return ++it->second;
  usize& used = entries_per_bank_[row.bank];
  if (used < cfg_.tracker_entries) {
    ++used;
    counts_[id] = 1;
    return 1;
  }
  // Misra-Gries: decrement all entries of this bank instead of inserting.
  const auto& geo = device_.config().geo;
  for (auto i = counts_.begin(); i != counts_.end();) {
    if (unflatten_row_id(geo, i->first).bank == row.bank && --i->second == 0) {
      i = counts_.erase(i);
      --used;
    } else {
      ++i;
    }
  }
  return 0;
}

void Rrs::on_activate(const RowAddr& row, Picoseconds /*now*/) {
  if (in_maintenance()) return;
  const u64 estimate = track(row);
  const u64 threshold = static_cast<u64>(
      cfg_.swap_threshold_fraction * static_cast<double>(device_.config().t_rh));
  if (estimate < threshold || threshold == 0) return;
  maintenance([&] { swap_with_random(row); });
}

void Rrs::swap_with_random(const RowAddr& hot) {
  const auto& geo = device_.config().geo;
  // Random destination in the same bank (different row).
  RowAddr dest = hot;
  do {
    dest.subarray = static_cast<u32>(rng_.uniform(geo.subarrays_per_bank));
    dest.row = static_cast<u32>(rng_.uniform(geo.rows_per_subarray));
  } while (dest == hot);
  // Controller-mediated swap: both rows cross the channel twice.
  std::vector<u8> a = device_.read_row(hot);
  std::vector<u8> b = device_.read_row(dest);
  device_.write_row(hot, b);
  device_.write_row(dest, a);
  // Extra channel-transfer energy (read_row/write_row charge core energy
  // only; the swap moves 2 rows over the off-chip bus).
  const u64 bursts = 2ull * (geo.row_bytes / 64) * 2ull;
  device_.stats().energy +=
      static_cast<Femtojoules>(bursts) * device_.config().energy.offchip_transfer;
  remap_.swap_logical(remap_.to_logical(hot), remap_.to_logical(dest));
  // Both physical positions were rewritten; their tracker entries reset.
  counts_.erase(flat_row_id(geo, hot));
  counts_.erase(flat_row_id(geo, dest));
  ++swaps_;
  stats_.maintenance_ops += 1;
}

}  // namespace dnnd::defense
