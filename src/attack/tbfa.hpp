// T-BFA -- the class-targeted Bit-Flip Attack family of Rakin et al.
// (Targeted Attack against DNNs with Limited Bit-Flips), the regime the
// untargeted accuracy-collapse evaluation never exercises: instead of
// maximising the inference loss, the attacker MINIMISES a targeted objective
// that redirects source-class inputs to a chosen target class.
//
// Three variants:
//   N-to-1    every non-target class is a source (total misdirection),
//   1-to-1    a single source class is redirected, everything else is free,
//   stealthy  1-to-1 under an admissibility constraint: accuracy on the
//             non-source rows of the attack batch must stay within a
//             tolerance of its clean value, so the attack is invisible to an
//             overall-accuracy monitor.
//
// A thin driver over attack::ProbeEngine paired with the targeted
// cross-entropy minimizer (negated-gradient candidate ranking, stealthy
// admission as the objective-level constraint, deliberately no
// first-order-estimate fallback). Success is measured as the attack success
// rate (ASR): the fraction of source rows predicted as the target class.
#pragma once

#include <optional>

#include "attack/probe_engine.hpp"

namespace dnnd::attack {

enum class TbfaVariant {
  kNTo1,      ///< all sources -> target
  k1To1,      ///< one source -> target
  kStealthy,  ///< 1-to-1 with the other-class accuracy constraint
};

struct TbfaConfig {
  TbfaVariant variant = TbfaVariant::kNTo1;
  u32 source = 0;  ///< source class (k1To1/kStealthy; ignored for kNTo1)
  u32 target = 1;  ///< class the sources are redirected to
  usize candidates_per_layer = 2;  ///< top-k per layer for the exact evaluation
  usize layers_evaluated = 6;      ///< evaluate only the best n layers (0 = all)
  usize max_flips = 60;
  double stop_asr = 0.999;  ///< stop when attack-batch ASR >= this
  /// kStealthy: a probe is admissible only while attack-batch accuracy on the
  /// non-source rows stays within this of its clean value.
  double stealth_tolerance = 0.1;
  /// Weight of the keep-other-classes term in the targeted objective
  /// (kStealthy only; the unconstrained variants optimise the pure
  /// redirect term).
  double stealth_weight = 1.0;
  bool verbose = false;
};

/// One committed flip of a targeted search.
struct TbfaFlip {
  quant::BitLocation loc;
  double loss_before = 0.0;     ///< targeted objective (lower = better attack)
  double loss_after = 0.0;
  double asr_after = 0.0;       ///< attack-batch source->target rate
  double other_acc_after = 0.0; ///< attack-batch accuracy outside the sources
};

struct TbfaResult {
  std::vector<TbfaFlip> flips;
  double initial_asr = 0.0;
  double final_asr = 0.0;
  double initial_other_acc = 0.0;
  double final_other_acc = 0.0;
  bool reached_stop = false;
};

class TbfaAttack {
 public:
  /// `attack_x`/`attack_y` is the attacker's sample batch. Throws
  /// std::invalid_argument when target/source fall outside the model's class
  /// count or source == target for the 1-to-1 variants.
  TbfaAttack(quant::QuantizedModel& qm, nn::Tensor attack_x, std::vector<u32> attack_y,
             TbfaConfig cfg = {});

  /// Finds and commits the single best admissible flip not in `skip` (and not
  /// flipped by this search before). Returns nullopt when no candidate both
  /// lowers the targeted objective and (kStealthy) satisfies the constraint
  /// -- there is deliberately no first-order-estimate fallback: a targeted
  /// attack that can only make things worse must stop, not thrash.
  std::optional<TbfaFlip> step(const quant::BitSkipSet& skip);

  /// Runs `step` until ASR reaches cfg.stop_asr or the budget/candidates run
  /// out; flips are committed in `qm`.
  TbfaResult run(const quant::BitSkipSet& skip = {});

  [[nodiscard]] const TbfaConfig& config() const { return cfg_; }
  /// Resolved source selector: nn::kAllSources for kNTo1, cfg.source else.
  [[nodiscard]] u32 source_class() const { return source_; }
  /// Clean (pre-attack) attack-batch measurements, taken at construction.
  [[nodiscard]] double clean_asr() const { return clean_asr_; }
  [[nodiscard]] double clean_other_accuracy() const { return clean_other_acc_; }

 private:
  [[nodiscard]] double stealth_weight() const;

  TbfaConfig cfg_;
  u32 source_ = 0;
  TargetedCeObjective objective_;
  ProbeEngine engine_;
  double clean_asr_ = 0.0;
  double clean_other_acc_ = 0.0;
};

}  // namespace dnnd::attack
