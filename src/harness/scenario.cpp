#include "harness/scenario.hpp"

#include <stdexcept>

#include "defense/counter_based.hpp"
#include "defense/para.hpp"
#include "defense/rrs.hpp"
#include "defense/shadow.hpp"
#include "defense/srs.hpp"

namespace dnnd::harness {

u64 scenario_seed(const Scenario& sc) {
  if (sc.seed_override != 0) return sc.seed_override;
  return sys::stable_hash64(sc.id);
}

std::string to_string(AttackKind kind) {
  switch (kind) {
    case AttackKind::kBfa: return "bfa";
    case AttackKind::kBinaryBfa: return "binary-bfa";
    case AttackKind::kRandom: return "random";
    case AttackKind::kAdaptive: return "adaptive";
    case AttackKind::kDramWhiteBox: return "dram-white-box";
    case AttackKind::kTbfaNTo1: return "tbfa-n-to-1";
    case AttackKind::kTbfa1To1: return "tbfa-1-to-1";
    case AttackKind::kTbfaStealthy: return "tbfa-stealthy";
    case AttackKind::kVwaLimited: return "vwa-limited";
  }
  return "unknown";
}

std::string to_string(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kCifar10Like: return "cifar10-like";
    case DatasetKind::kImagenetLike: return "imagenet-like";
    case DatasetKind::kTinyEasy: return "tiny-easy";
  }
  return "unknown";
}

std::string to_string(SoftwarePrep prep) {
  switch (prep) {
    case SoftwarePrep::kNone: return "none";
    case SoftwarePrep::kBinaryFinetune: return "binary-finetune";
    case SoftwarePrep::kPiecewiseClustering: return "piecewise-clustering";
  }
  return "unknown";
}

AttackKind attack_kind_from_string(const std::string& slug) {
  std::string valid;
  for (const AttackKind kind : kAllAttackKinds) {
    if (to_string(kind) == slug) return kind;
    if (!valid.empty()) valid += ", ";
    valid += to_string(kind);
  }
  throw std::invalid_argument("unknown attack kind: " + slug + " (valid: " + valid + ")");
}

SoftwarePrep software_prep_from_string(const std::string& slug) {
  for (const SoftwarePrep prep : kAllSoftwarePreps) {
    if (to_string(prep) == slug) return prep;
  }
  throw std::invalid_argument("unknown software prep: " + slug);
}

nn::SynthSpec dataset_spec(DatasetKind kind) {
  switch (kind) {
    case DatasetKind::kCifar10Like: return nn::SynthSpec::cifar10_like();
    case DatasetKind::kImagenetLike: return nn::SynthSpec::imagenet_like();
    case DatasetKind::kTinyEasy: {
      nn::SynthSpec spec;
      spec.num_classes = 4;
      spec.train_per_class = 80;
      spec.test_per_class = 30;
      spec.channels = 1;
      spec.height = 8;
      spec.width = 8;
      spec.noise = 0.8;
      spec.max_shift = 1;
      spec.seed = 1234;
      return spec;
    }
  }
  throw std::invalid_argument("unknown DatasetKind");
}

MitigationFactory mitigation_factory(const std::string& name) {
  if (name == "para") {
    return [](dram::DramDevice& dev, dram::RowRemapper& remap) {
      return std::make_unique<defense::Para>(dev, remap);
    };
  }
  if (name == "rrs") {
    return [](dram::DramDevice& dev, dram::RowRemapper& remap) {
      return std::make_unique<defense::Rrs>(dev, remap);
    };
  }
  if (name == "srs") {
    return [](dram::DramDevice& dev, dram::RowRemapper& remap) {
      return std::make_unique<defense::Srs>(dev, remap);
    };
  }
  if (name == "shadow") {
    return [](dram::DramDevice& dev, dram::RowRemapper& remap) {
      return std::make_unique<defense::Shadow>(dev, remap);
    };
  }
  if (name == "graphene") {
    return [](dram::DramDevice& dev, dram::RowRemapper& remap) {
      return std::make_unique<defense::CounterBased>(dev, remap,
                                                     defense::CounterBased::graphene());
    };
  }
  if (name == "hydra") {
    return [](dram::DramDevice& dev, dram::RowRemapper& remap) {
      return std::make_unique<defense::CounterBased>(dev, remap,
                                                     defense::CounterBased::hydra());
    };
  }
  throw std::invalid_argument("unknown mitigation: " + name);
}

}  // namespace dnnd::harness
