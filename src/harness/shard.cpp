#include "harness/shard.hpp"

#include <unistd.h>

#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "nn/simd.hpp"
#include "sys/json.hpp"
#include "sys/rng.hpp"

namespace dnnd::harness {

namespace fs = std::filesystem;

ShardSpec parse_shard_spec(const std::string& spec) {
  // "k/n", both strictly positive decimals, k <= n. Anything else -- empty
  // pieces, signs, trailing garbage, k = 0 -- is a usage error: a silently
  // misparsed shard spec would drop or duplicate grid cells.
  const auto slash = spec.find('/');
  if (slash == std::string::npos || slash == 0 || slash + 1 >= spec.size()) {
    throw std::invalid_argument("shard spec must be k/n (e.g. 2/4): \"" + spec + "\"");
  }
  auto parse_positive = [&](const std::string& text) -> usize {
    if (text.empty() || text.size() > 6) {
      throw std::invalid_argument("bad shard spec number \"" + text + "\" in \"" + spec + "\"");
    }
    usize value = 0;
    for (const char c : text) {
      if (!std::isdigit(static_cast<unsigned char>(c))) {
        throw std::invalid_argument("bad shard spec number \"" + text + "\" in \"" + spec +
                                    "\"");
      }
      value = value * 10 + static_cast<usize>(c - '0');
    }
    if (value == 0) {
      throw std::invalid_argument("shard spec numbers are 1-based, got 0 in \"" + spec + "\"");
    }
    return value;
  };
  const usize k = parse_positive(spec.substr(0, slash));
  const usize n = parse_positive(spec.substr(slash + 1));
  if (k > n) {
    throw std::invalid_argument("shard index " + std::to_string(k) + " exceeds shard count " +
                                std::to_string(n) + " in \"" + spec + "\"");
  }
  return ShardSpec{.index = k - 1, .count = n};
}

std::vector<Scenario> shard_scenarios(const std::vector<Scenario>& scenarios,
                                      const ShardSpec& shard) {
  if (shard.count == 0 || shard.index >= shard.count) {
    throw std::invalid_argument("invalid ShardSpec " + std::to_string(shard.index) + "/" +
                                std::to_string(shard.count));
  }
  std::vector<Scenario> out;
  out.reserve((scenarios.size() + shard.count - 1) / shard.count);
  for (usize i = shard.index; i < scenarios.size(); i += shard.count) {
    out.push_back(scenarios[i]);
  }
  return out;
}

CellCheckpointStore::CellCheckpointStore(std::string run_dir)
    : run_dir_(std::move(run_dir)), cells_dir_((fs::path(run_dir_) / "cells").string()) {}

std::string CellCheckpointStore::cell_path(const std::string& id) const {
  // Sanitized id for readability, plus the 64-bit stable id hash so ids that
  // sanitize to the same text ("a/b" vs "a_b") still claim distinct files.
  std::string name;
  name.reserve(id.size() + 20);
  for (const char c : id) {
    const bool keep = std::isalnum(static_cast<unsigned char>(c)) || c == '.' || c == '-' ||
                      c == '_';
    name += keep ? c : '_';
  }
  char hash[20];
  std::snprintf(hash, sizeof(hash), "-%016llx",
                static_cast<unsigned long long>(sys::stable_hash64(id)));
  return (fs::path(cells_dir_) / (name + hash + ".json")).string();
}

void CellCheckpointStore::write_cell(const ScenarioResult& r) const {
  std::error_code ec;
  fs::create_directories(cells_dir_, ec);
  if (ec) {
    throw std::runtime_error("cannot create cell directory " + cells_dir_ + ": " +
                             ec.message());
  }
  sys::JsonWriter w;
  scenario_result_to_json(w, r);
  const std::string text = w.str() + "\n";

  // Atomic publish: a cell file either does not exist or is complete. The
  // temp name carries the pid so concurrent processes resuming the same
  // cell never share a temp file; rename() replaces atomically (last
  // complete writer wins, which is fine -- cell results are deterministic).
  const std::string final_path = cell_path(r.id);
  const std::string tmp_path = final_path + ".tmp." + std::to_string(::getpid());
  {
    std::ofstream out(tmp_path, std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open " + tmp_path + " for writing");
    out << text;
    out.flush();
    if (!out) {
      fs::remove(tmp_path, ec);
      throw std::runtime_error("write failed: " + tmp_path);
    }
  }
  fs::rename(tmp_path, final_path, ec);
  if (ec) {
    fs::remove(tmp_path, ec);
    throw std::runtime_error("cannot publish cell " + final_path + ": " + ec.message());
  }
}

std::optional<ScenarioResult> CellCheckpointStore::load_cell(const std::string& id) const {
  const std::string path = cell_path(id);
  std::ifstream in(path, std::ios::binary);
  if (!in) return std::nullopt;
  std::ostringstream ss;
  ss << in.rdbuf();
  ScenarioResult r = scenario_result_from_json(sys::parse_json(ss.str()),
                                               /*expect_timing=*/false, "cell file " + path);
  if (r.id != id) {
    throw std::runtime_error("cell file " + path + " carries id \"" + r.id +
                             "\", expected \"" + id + "\"");
  }
  return r;
}

bool CellCheckpointStore::has_valid_cell(const std::string& id) const {
  try {
    return load_cell(id).has_value();
  } catch (const std::exception&) {
    // Malformed or mis-labelled checkpoint: treat as absent so a resume
    // re-runs the cell instead of wedging the whole shard. merge_cells
    // still surfaces the corruption if the re-run never happens.
    return false;
  }
}

std::vector<Scenario> pending_scenarios(const CellCheckpointStore& store,
                                        const std::vector<Scenario>& scenarios) {
  std::vector<Scenario> out;
  for (const auto& sc : scenarios) {
    if (!store.has_valid_cell(sc.id)) out.push_back(sc);
  }
  return out;
}

MergedCampaign merge_cells(const CellCheckpointStore& store,
                           const std::vector<Scenario>& scenarios) {
  // Reassemble the single-process document from the checkpoint files'
  // parsed JsonValues: the parser preserves numeric lexemes, so every
  // scalar lands in the merged document with the exact bytes the worker's
  // to_json produced -- no second float format/parse cycle anywhere.
  std::string missing;
  usize missing_count = 0;
  std::string body;
  for (const auto& sc : scenarios) {
    const std::string path = store.cell_path(sc.id);
    std::ifstream in(path, std::ios::binary);
    if (!in) {
      ++missing_count;
      missing += "\n  " + sc.id;
      continue;
    }
    std::ostringstream ss;
    ss << in.rdbuf();
    const sys::JsonValue cell = sys::parse_json(ss.str());
    // Validate shape and id before splicing the raw dump into the document.
    const ScenarioResult r =
        scenario_result_from_json(cell, /*expect_timing=*/false, "cell file " + path);
    if (r.id != sc.id) {
      throw std::runtime_error("cell file " + path + " carries id \"" + r.id +
                               "\", expected \"" + sc.id + "\"");
    }
    if (!body.empty()) body += ",";
    body += cell.dump();
  }
  if (missing_count > 0) {
    throw std::runtime_error("incomplete run: " + std::to_string(missing_count) + " of " +
                             std::to_string(scenarios.size()) +
                             " cells missing from " + store.run_dir() +
                             " (run the remaining shards or --resume):" + missing);
  }

  MergedCampaign merged;
  // The regime marker mirrors CampaignResult::to_json: emitted only under
  // DNND_INT8=1 so default-regime merged documents byte-match the unsharded
  // run (the CI `cmp` gate).
  const std::string head =
      nn::simd::int8_enabled() ? "{\"int8\":true,\"scenarios\":[" : "{\"scenarios\":[";
  merged.json = head + body + "]}";
  merged.campaign = campaign_from_json(merged.json);
  return merged;
}

}  // namespace dnnd::harness
