// Explicit SIMD microkernels for the GEMM register tiles, with runtime ISA
// dispatch (AVX2 / NEON / scalar).
//
// The GEMM's 8-wide packed panels put one output COLUMN in each vector lane:
// a microkernel step broadcasts one A element and does lane-wise
//
//     acc[r] = acc[r] + a_val * panel[k*8 + r]        (r = 0..7)
//
// with a distinct, non-contracted IEEE multiply and add per lane -- exactly
// the operations, on exactly the operands, in exactly the order of the
// scalar loop `for r: acc[r] += av * p[r]`. Vectorizing ACROSS the eight
// independent accumulators (never within one reduction) means no terms are
// ever reassociated or fused, so the SIMD path is byte-identical to the
// scalar path by construction, on every ISA. The build pins
// -ffp-contract=off so the scalar path cannot silently become fused either
// (tests/test_gemm.cpp sweeps simd-vs-scalar byte equality over randomized
// shapes; the campaign baseline gates it end to end).
//
// The one deliberate exception is the opt-in FMA fast path (DNND_FMA=1 /
// set_fma_override): it uses explicit fused multiply-add intrinsics, which
// round once instead of twice per term and may therefore diverge from the
// scalar path in the last ulp. It is excluded from every zero-tolerance
// byte gate and exists purely as a speed/accuracy trade the operator must
// ask for.
//
// The third numeric regime is the true-integer int8 path (DNND_INT8=1):
// u8xs8 -> s16 -> s32 microkernels over raw weight codes with int32
// accumulators and a float requantization epilogue. Integer addition is
// associative, so unlike the float kernels the AVX2 and scalar int8 variants
// are byte-identical *by arithmetic* (no accumulation-order argument needed)
// -- which is exactly what the scalar-vs-AVX2 byte gate in tests/test_gemm.cpp
// pins. The regime as a whole diverges from the float path (activations are
// rounded to 8 bits) and is excluded from every float byte gate; it is
// validated by a per-layer tolerance bound and a campaign accuracy-delta gate
// instead.
//
// Knobs (resolved per kernel selection, overridable in-process):
//   DNND_SIMD=0   force the scalar microkernels (CI's forced-scalar leg)
//   DNND_FMA=1    enable the fused fast path (divergent rounding allowed)
//   DNND_INT8=1   true-integer int8 forward for layers with quantized weights
#pragma once

#include "sys/types.hpp"

namespace dnnd::nn::simd {

/// Instruction set a microkernel pair was compiled for. Runtime dispatch
/// picks the best one the CPU supports (AVX2 via cpuid on x86, NEON on
/// aarch64) unless forced scalar.
enum class Isa : u32 { kScalar = 0, kAvx2 = 1, kNeon = 2 };

/// Stable lowercase name ("scalar", "avx2", "neon") -- the `simd` field of
/// the bench_inference JSON.
[[nodiscard]] const char* isa_name(Isa isa);

/// 8x8 register-tile microkernel: for k ascending then i in [0,8),
/// acc[i*8 + r] += a[i][k] * panel[k*8 + r] for all eight lanes r.
/// `a` holds the eight A-row pointers, `panel` the 8-wide interleaved B
/// panel, `acc` the 64 contiguous accumulators.
using Tile8Fn = void (*)(usize K, const float* const* a, const float* panel, float* acc);

/// Single-row remainder: acc[r] += a[k] * panel[k*8 + r], k ascending.
using Row1Fn = void (*)(usize K, const float* a, const float* panel, float* acc);

/// A resolved microkernel pair plus what it was resolved to.
struct Kernels {
  Tile8Fn tile8;
  Row1Fn row1;
  Isa isa;
  bool fma;  ///< true only on the opt-in divergent fast path
};

/// The microkernels the GEMM should use right now: best supported ISA,
/// downgraded by the scalar override / DNND_SIMD=0, upgraded to the fused
/// variants by the FMA override / DNND_FMA=1 (when the CPU has FMA).
[[nodiscard]] Kernels active_kernels();

/// The ISA active_kernels() currently resolves to (knobs applied).
[[nodiscard]] Isa active_isa();

/// Best ISA this CPU supports, ignoring every knob.
[[nodiscard]] Isa best_isa();

/// Tri-state in-process overrides, mirroring gemm::set_threads's
/// save/restore idiom: -1 follows the env var (the default), 0/1 pin the
/// knob regardless of the environment. Process-global and cheap to flip;
/// bench_inference A/Bs through these.
void set_scalar_override(int v);              ///< -1 env, 0 simd on, 1 force scalar
[[nodiscard]] int scalar_override();
[[nodiscard]] bool force_scalar();            ///< resolved DNND_SIMD knob
void set_fma_override(int v);                 ///< -1 env, 0 off, 1 fused fast path
[[nodiscard]] int fma_override();
[[nodiscard]] bool fma_enabled();             ///< resolved DNND_FMA knob
void set_int8_override(int v);                ///< -1 env, 0 off, 1 integer path
[[nodiscard]] int int8_override();
[[nodiscard]] bool int8_enabled();            ///< resolved DNND_INT8 knob

// ---- true-integer int8 microkernels -----------------------------------------
// Both operands are quad-grouped panels of raw int8 codes. The B panel line
// for k-quad `kq` holds 32 bytes -- column r's codes for k = 4*kq .. 4*kq+3
// at bytes [r*4, r*4+4). The A operand is QUAD-MAJOR (gemm::packed_a_q8):
// all rows' codes for one k-quad are contiguous, so the eight row-quads a
// register tile needs are a single 32-byte line at `a + kq*astride + i*4`.
// A kernel step accumulates one quad:
//
//     acc[r] += a[4kq]*w[r][4kq] + ... + a[4kq+3]*w[r][4kq+3]   (int32)
//
// The AVX2 variant broadcasts the A quad and uses maddubs/madd with the
// WEIGHT as the unsigned operand (|w| <= 128 is valid u8; activations are
// clamped to [-127, 127] at quantization, so sign-transfer never negates
// -128 and the s16 pair sums stay below 2*128*127 = 32512 < 32767 -- no
// saturation, exact integer math, byte-identical to the scalar loop).
// Requantization back to float happens in the GEMM epilogue, not here.

/// 8x8 int8 register tile over `KQ` k-quads: acc[i*8 + r] += dot of A row
/// i's quad and panel column r's quad, int32 exact. `a` points at row 0's
/// first quad; row i's quad kq lives at a + kq*astride + i*4 (quad-major A,
/// astride = 4 * total panel rows). `acc` holds the 64 contiguous int32
/// accumulators.
using I8Tile8Fn = void (*)(usize KQ, const i8* a, usize astride, const i8* panel, i32* acc);

/// Single-row remainder of the int8 tile (row quad kq at a + kq*astride).
using I8Row1Fn = void (*)(usize KQ, const i8* a, usize astride, const i8* panel, i32* acc);

/// A resolved int8 microkernel pair. Only AVX2 has a vector variant (NEON
/// falls back to the scalar reference); both produce identical bytes.
struct I8Kernels {
  I8Tile8Fn tile8;
  I8Row1Fn row1;
  Isa isa;
};

/// The int8 microkernels the integer GEMM should use right now: AVX2 when
/// supported and not forced scalar, else the scalar reference.
[[nodiscard]] I8Kernels active_int8_kernels();

/// Quantize M rows of K floats (row stride `lda`) to int8 codes written
/// directly into the quad-major packed A panel (gemm::packed_a_q8_index):
///
///     out[(k/4)*M*4 + m*4 + k%4] = round(clamp(A[m*lda + k] * inv, -127, 127))
///
/// with round-to-nearest, ties away from zero (the weight quantizer's
/// rounding); K is padded to whole quads with zero codes. The clamp runs
/// BEFORE the round and stops one short of -128 so the AVX2 GEMM kernel's
/// sign transfer can never negate INT8_MIN. Both variants perform the
/// identical IEEE op sequence (multiply, min/max clamp, add copysign(0.5),
/// truncate) element-wise, so the AVX2 and scalar paths are byte-identical
/// by construction; dispatch happens once per call and follows
/// force_scalar() like the GEMM kernels so the byte gates exercise both.
void quantize_panel_i8(const float* A, usize M, usize K, usize lda, float inv, i8* out);

/// Interleave KQ groups of four row-major byte rows into the quad-major
/// packed A panel: T holds 4*KQ rows of P bytes each (row k = code k of all
/// P panel rows -- the TRANSPOSE of the logical A, as a conv tap gather
/// naturally produces); out[(kq*P + p)*4 + j] = T[(4*kq + j)*P + p]. Pure
/// data movement (no arithmetic), so the SSE2 fast path on x86 -- baseline,
/// no dispatch -- is trivially byte-identical to the portable loop.
void interleave_quads_i8(const i8* T, usize P, usize KQ, i8* out);

}  // namespace dnnd::nn::simd
