#include "attack/adaptive_attack.hpp"

#include <stdexcept>

#include "attack/probe_engine.hpp"
#include "nn/simd.hpp"

namespace dnnd::attack {

AdaptiveWhiteBoxAttack::AdaptiveWhiteBoxAttack(quant::QuantizedModel& qm, nn::Tensor attack_x,
                                               std::vector<u32> attack_y, nn::Tensor eval_x,
                                               std::vector<u32> eval_y,
                                               AdaptiveAttackConfig cfg)
    : qm_(qm),
      attack_x_(std::move(attack_x)),
      attack_y_(std::move(attack_y)),
      eval_x_(std::move(eval_x)),
      eval_y_(std::move(eval_y)),
      cfg_(cfg) {
  if (cfg_.measure_every == 0) {
    throw std::invalid_argument("adaptive attack: measure_every must be nonzero");
  }
  // Freeze int8 activation scales over both batches the attack forwards on
  // (no-op in the float regime; scales only widen with extra batches).
  qm_.ensure_int8_calibrated(attack_x_);
  if (nn::simd::int8_enabled()) qm_.calibrate_int8(eval_x_);
}

AdaptiveAttackResult AdaptiveWhiteBoxAttack::run(const quant::BitSkipSet& secured) {
  AdaptiveAttackResult result;
  result.secured_bits = secured.size();
  // The attacker first iterates through the secured candidates: every attempt
  // is refreshed away by the defense, so the model is unchanged. The trace
  // therefore starts at the clean accuracy.
  result.accuracy_trace.push_back(qm_.model().evaluate_batch_incremental(eval_x_, eval_y_).accuracy);

  // Adapted search: the untargeted probe engine with the secured set as a
  // standing skip, i.e. only unprotected bits can land. The eval-batch
  // measurements use the incremental helper: it degrades to a full forward
  // whenever the preceding step left the cache on the attack batch, and
  // reuses it otherwise.
  UntargetedCeObjective objective;
  ProbeEngine engine(qm_, attack_x_, attack_y_, objective,
                     {cfg_.bfa.candidates_per_layer, cfg_.bfa.layers_evaluated});
  for (usize k = 1; k <= cfg_.max_additional_flips; ++k) {
    auto rec = engine.step(secured);
    if (!rec.has_value()) break;
    result.landed_flips.push_back(rec->loc);
    if (k % cfg_.measure_every == 0 || k == cfg_.max_additional_flips) {
      result.accuracy_trace.push_back(
          qm_.model().evaluate_batch_incremental(eval_x_, eval_y_).accuracy);
    }
  }
  return result;
}

}  // namespace dnnd::attack
