// Serving-under-attack traffic model: the deterministic half of the
// bench_serving pipeline.
//
// The bench must deliver two things that pull in opposite directions: real
// wall-clock tail latencies (inherently nondeterministic) and a
// byte-reproducible account of WHAT was served -- arrival schedule, batch
// composition, drop accounting, defender ticks, attack attempts. The split
// here resolves that: plan_serving() runs the whole open-loop system in
// VIRTUAL time (Poisson arrivals -> bounded admission queue -> batch
// coalescer -> a fixed linear service model), producing a ServingPlan whose
// every field is a pure function of (ServeConfig, sample-pool size). The
// real-threaded executor (server.hpp) then follows the plan -- pacing
// admitted requests by wall clock, forming exactly the planned batches,
// firing the planned defender ticks and attack slots -- and measures real
// latencies on top. Wall-clock numbers are excluded from every byte gate;
// the plan digest is pinned by tests and CI across runs and thread counts.
#pragma once

#include <condition_variable>
#include <mutex>
#include <optional>
#include <vector>

#include "sys/rng.hpp"
#include "sys/types.hpp"

namespace dnnd::serving {

/// Open-loop serving knobs (see serve_config_from_env for the DNND_SERVE_*
/// environment bindings). All integral by design: every field parses through
/// the strict sys::env_usize contract.
struct ServeConfig {
  usize rate_rps = 2000;         ///< offered load, requests per second
  usize duration_ms = 250;       ///< arrival-generation window
  usize batch_cap = 8;           ///< coalescer batch-size cap
  usize max_wait_us = 2000;      ///< coalescer deadline past the head arrival
  usize queue_depth = 64;        ///< bounded admission queue capacity
  u64 seed = 0x5E21;             ///< arrival-schedule / reservoir seed
  usize service_ns_base = 200'000;   ///< virtual per-batch fixed cost
  usize service_ns_per_req = 50'000; ///< virtual per-request marginal cost
  usize tick_every_us = 500;     ///< defender tick period (virtual time)
  usize attack_every = 4;        ///< one attack slot per N batches (0 = none)
  usize reservoir = 4096;        ///< latency reservoir capacity

  /// Clamps the config into its valid domain (rate/duration/cap/queue >= 1,
  /// batch_cap <= queue_depth so a forming batch always fits the queue).
  void normalize();
};

/// Reads DNND_SERVE_* knobs over the defaults above via sys::env_usize:
///   DNND_SERVE_RATE, DNND_SERVE_DURATION_MS, DNND_SERVE_BATCH_CAP,
///   DNND_SERVE_MAX_WAIT_US, DNND_SERVE_QUEUE, DNND_SERVE_SEED,
///   DNND_SERVE_TICK_US, DNND_SERVE_ATTACK_EVERY, DNND_SERVE_RESERVOIR.
/// The result is normalize()d.
ServeConfig serve_config_from_env();

/// One client request: arrival offset from the run epoch plus the index of
/// the dataset sample it asks the model to classify.
struct Request {
  u64 id = 0;
  u64 arrival_ns = 0;
  u32 sample = 0;
};

/// Poisson arrival schedule: exponential inter-arrival gaps at cfg.rate_rps
/// over cfg.duration_ms, sample indices uniform over [0, num_samples).
/// Deterministic in cfg.seed (dedicated "arrivals" RNG stream).
std::vector<Request> poisson_schedule(const ServeConfig& cfg, usize num_samples);

/// One coalesced batch in the virtual-time plan. `first`/`count` index the
/// ADMITTED request sequence (plan.admitted), which batches partition in
/// order.
struct PlannedBatch {
  usize first = 0;
  usize count = 0;
  u64 close_ns = 0;   ///< virtual time the composition froze (= dispatch)
  u64 finish_ns = 0;  ///< close + service_ns_base + count * service_ns_per_req
  bool attack_before = false;  ///< an attack slot precedes this batch
};

/// The full deterministic account of one serving run.
struct ServingPlan {
  std::vector<Request> arrivals;    ///< the complete offered schedule
  std::vector<usize> admitted;      ///< indices into arrivals, arrival order
  std::vector<usize> dropped;       ///< indices into arrivals (queue full)
  std::vector<PlannedBatch> batches;
  std::vector<usize> batch_histogram;  ///< [size] -> batches of that size
  usize queue_peak = 0;             ///< max admission-queue occupancy seen
  usize ticks = 0;                  ///< planned defender ticks (periodic)
  u64 digest = 0;                   ///< hash of every decision above

  [[nodiscard]] u64 last_finish_ns() const {
    return batches.empty() ? 0 : batches.back().finish_ns;
  }
};

/// Runs the virtual-time open-loop simulation. Model: requests are admitted
/// to a bounded queue at their arrival instant (queue full -> dropped, never
/// retried). A single server alternates coalescing and service: when free at
/// time T it takes the queue head, admits arrivals up to T, then closes the
/// batch at the earlier of (cap filled) and (head arrival + max_wait), never
/// before T; service occupies it until close + base + count*per_req. Ticks
/// fire every tick_every_us of virtual time up to the last finish; an attack
/// slot precedes every attack_every-th batch (when enabled downstream).
ServingPlan plan_serving(const ServeConfig& cfg, usize num_samples);

/// Fixed-size uniform sample of a latency stream (Vitter's Algorithm R) with
/// nearest-rank percentile queries. Deterministic in (capacity, seed, input
/// order); the serving digest excludes its contents anyway because the
/// values themselves are wall-clock measurements.
class LatencyReservoir {
 public:
  LatencyReservoir(usize capacity, u64 seed);

  void add(u64 latency_ns);

  /// Total values offered (>= retained sample count).
  [[nodiscard]] u64 seen() const { return seen_; }
  [[nodiscard]] const std::vector<u64>& samples() const { return samples_; }

  /// Nearest-rank percentile over the RETAINED sample: the ceil(p/100 * n)-th
  /// smallest value (p in (0, 100]; p <= 0 returns the minimum). Returns 0
  /// on an empty reservoir.
  [[nodiscard]] u64 percentile(double p) const;

 private:
  usize cap_;
  sys::Rng rng_;
  u64 seen_ = 0;
  std::vector<u64> samples_;
};

/// Bounded blocking MPSC handoff between the request generator and the
/// server thread. push() blocks while full (the executor's pacing keeps it
/// from blocking in practice -- the plan already accounted drops);
/// try_push() is the non-blocking admission used by the overflow tests.
/// close() wakes every waiter; pop() drains remaining items, then returns
/// nullopt.
class BoundedRequestQueue {
 public:
  explicit BoundedRequestQueue(usize depth);

  /// Blocks until there is room or the queue is closed; false if closed.
  bool push(usize item);
  /// Non-blocking admission: false when full or closed (a drop).
  bool try_push(usize item);
  /// Blocks until an item is available or the queue is closed and empty.
  std::optional<usize> pop();
  void close();

  [[nodiscard]] usize peak() const;
  [[nodiscard]] usize size() const;

 private:
  mutable std::mutex mu_;
  std::condition_variable not_full_;
  std::condition_variable not_empty_;
  std::vector<usize> items_;  ///< FIFO via head index (depth is small)
  usize head_ = 0;
  usize depth_;
  usize peak_ = 0;
  bool closed_ = false;
};

}  // namespace dnnd::serving
