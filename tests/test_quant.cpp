#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <stdexcept>

#include "models/model_zoo.hpp"
#include "nn/gemm.hpp"
#include "nn/simd.hpp"
#include "quant/bit_gradient.hpp"
#include "quant/quantizer.hpp"
#include "test_util.hpp"

namespace dnnd::quant {
namespace {

// ------------------------------------------------------------ bit helpers --

class AllCodes : public ::testing::TestWithParam<int> {};

TEST_P(AllCodes, FlipTwiceIsIdentity) {
  const i8 q = static_cast<i8>(GetParam());
  for (u32 bit = 0; bit < 8; ++bit) {
    EXPECT_EQ(flip_bit_value(flip_bit_value(q, bit), bit), q);
  }
}

TEST_P(AllCodes, FlipChangesValueByBitWeight) {
  const i8 q = static_cast<i8>(GetParam());
  for (u32 bit = 0; bit < 8; ++bit) {
    const i8 f = flip_bit_value(q, bit);
    const i32 delta = static_cast<i32>(f) - static_cast<i32>(q);
    const i32 expected = (get_bit(q, bit) ? -1 : 1) * bit_weight(bit);
    EXPECT_EQ(delta, expected) << "q=" << static_cast<int>(q) << " bit=" << bit;
  }
}

TEST_P(AllCodes, BitsReconstructValue) {
  const i8 q = static_cast<i8>(GetParam());
  i32 v = 0;
  for (u32 bit = 0; bit < 8; ++bit) {
    if (get_bit(q, bit)) v += bit_weight(bit);
  }
  EXPECT_EQ(v, static_cast<i32>(q));
}

INSTANTIATE_TEST_SUITE_P(TwosComplement, AllCodes, ::testing::Range(-128, 128));

TEST(BitWeight, SignBitIsNegative128) {
  EXPECT_EQ(bit_weight(7), -128);
  EXPECT_EQ(bit_weight(0), 1);
  EXPECT_EQ(bit_weight(6), 64);
}

TEST(BitLocation, KeyRoundtrip) {
  for (const BitLocation loc : {BitLocation{0, 0, 0}, BitLocation{5, 1234, 7},
                                BitLocation{100, 999999, 3}}) {
    EXPECT_EQ(BitLocation::from_key(loc.key()), loc);
  }
}

TEST(BitSkipSet, InsertContains) {
  BitSkipSet set;
  EXPECT_TRUE(set.empty());
  set.insert({1, 2, 3});
  EXPECT_TRUE(set.contains({1, 2, 3}));
  EXPECT_FALSE(set.contains({1, 2, 4}));
  EXPECT_EQ(set.size(), 1u);
  const auto v = set.to_vector();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], (BitLocation{1, 2, 3}));
}

// --------------------------------------------------------- QuantizedModel --

class QuantFixture : public ::testing::Test {
 protected:
  QuantFixture() : model_(models::make_test_mlp(8, 6, 3, /*seed=*/42)), qm_(*model_) {}
  std::unique_ptr<nn::Model> model_;
  QuantizedModel qm_;
};

TEST_F(QuantFixture, LayersMatchQuantizableParams) {
  EXPECT_EQ(qm_.num_layers(), 2u);
  EXPECT_EQ(qm_.total_weights(), model_->weight_count());
  EXPECT_EQ(qm_.total_bits(), model_->weight_count() * 8);
}

TEST_F(QuantFixture, RoundtripErrorBoundedByHalfScale) {
  // Quantization happened at construction; compare the materialized weights
  // with a fresh float model of the same seed.
  auto fresh = models::make_test_mlp(8, 6, 3, 42);
  const auto fresh_params = fresh->quantizable_params();
  for (usize l = 0; l < qm_.num_layers(); ++l) {
    const auto& layer = qm_.layer(l);
    for (usize i = 0; i < layer.size(); ++i) {
      EXPECT_NEAR((*layer.value)[i], (*fresh_params[l].value)[i], layer.scale * 0.5 + 1e-6);
    }
  }
}

TEST_F(QuantFixture, ScaleCoversMaxAbs) {
  auto fresh = models::make_test_mlp(8, 6, 3, 42);
  const auto fresh_params = fresh->quantizable_params();
  for (usize l = 0; l < qm_.num_layers(); ++l) {
    EXPECT_NEAR(qm_.layer(l).scale, fresh_params[l].value->abs_max() / 127.0f, 1e-6);
  }
}

TEST_F(QuantFixture, FlipUpdatesCodeAndFloat) {
  const i8 before = qm_.get_q(0, 3);
  qm_.flip({0, 3, 7});
  const i8 after = qm_.get_q(0, 3);
  EXPECT_EQ(after, flip_bit_value(before, 7));
  EXPECT_FLOAT_EQ((*qm_.layer(0).value)[3], static_cast<float>(after) * qm_.layer(0).scale);
}

TEST_F(QuantFixture, MsbFlipIsLarge) {
  // The BFA's weapon: an MSB flip moves the weight by 128 quantization steps.
  const i8 before = qm_.get_q(1, 0);
  qm_.flip({1, 0, 7});
  const i32 delta = std::abs(static_cast<i32>(qm_.get_q(1, 0)) - static_cast<i32>(before));
  EXPECT_EQ(delta, 128);
}

TEST_F(QuantFixture, SnapshotRestoreRoundtrip) {
  const auto snap = qm_.snapshot();
  qm_.flip({0, 0, 7});
  qm_.flip({1, 2, 3});
  EXPECT_EQ(qm_.hamming_distance(snap), 2u);
  qm_.restore(snap);
  EXPECT_EQ(qm_.hamming_distance(snap), 0u);
  EXPECT_FLOAT_EQ((*qm_.layer(0).value)[0],
                  static_cast<float>(qm_.get_q(0, 0)) * qm_.layer(0).scale);
}

TEST_F(QuantFixture, SetQWritesThrough) {
  qm_.set_q(0, 1, -100);
  EXPECT_EQ(qm_.get_q(0, 1), -100);
  EXPECT_FLOAT_EQ((*qm_.layer(0).value)[1], -100.0f * qm_.layer(0).scale);
}

TEST_F(QuantFixture, MaterializeRewritesEverything) {
  (*qm_.layer(0).value)[0] = 999.0f;  // corrupt the float view
  qm_.materialize();
  EXPECT_FLOAT_EQ((*qm_.layer(0).value)[0],
                  static_cast<float>(qm_.get_q(0, 0)) * qm_.layer(0).scale);
}

// ------------------------------------------------------------ bit gradient --

TEST_F(QuantFixture, FlipGainSignSemantics) {
  auto& layer = qm_.layer(0);
  layer.grad->zero();
  (*layer.grad)[0] = 1.0f;  // dL/dw > 0: increasing w increases loss
  // A 0->1 flip on a positive-weight bit increases q -> positive gain.
  const i8 q = layer.q[0];
  for (u32 bit = 0; bit < 7; ++bit) {
    const double gain = flip_gain(layer, 0, bit);
    const double expected = (get_bit(q, bit) ? -1.0 : 1.0) * bit_weight(bit) * layer.scale;
    EXPECT_NEAR(gain, expected, 1e-9);
  }
}

TEST_F(QuantFixture, TopKMatchesBruteForce) {
  auto& layer = qm_.layer(0);
  sys::Rng rng(9);
  for (usize i = 0; i < layer.grad->size(); ++i) {
    (*layer.grad)[i] = static_cast<float>(rng.normal());
  }
  const BitSkipSet empty;
  const auto top = top_k_flips(layer, 0, 5, empty);
  ASSERT_LE(top.size(), 5u);
  // Brute force all (index, bit) gains.
  std::vector<double> all;
  for (usize i = 0; i < layer.size(); ++i) {
    for (u32 b = 0; b < 8; ++b) {
      const double g = flip_gain(layer, i, b);
      if (g > 0.0) all.push_back(g);
    }
  }
  std::sort(all.rbegin(), all.rend());
  ASSERT_GE(all.size(), top.size());
  for (usize i = 0; i < top.size(); ++i) {
    EXPECT_NEAR(top[i].estimated_gain, all[i], 1e-12) << "rank " << i;
  }
  // Sorted descending.
  for (usize i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].estimated_gain, top[i].estimated_gain);
  }
}

TEST_F(QuantFixture, TopKRespectsSkipSet) {
  auto& layer = qm_.layer(0);
  layer.grad->zero();
  (*layer.grad)[0] = 10.0f;  // dominant weight
  BitSkipSet skip;
  const auto first = top_k_flips(layer, 0, 1, skip);
  ASSERT_EQ(first.size(), 1u);
  skip.insert(first[0].loc);
  const auto second = top_k_flips(layer, 0, 1, skip);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_FALSE(second[0].loc == first[0].loc);
}

TEST_F(QuantFixture, TopKOnlyPositiveGains) {
  auto& layer = qm_.layer(0);
  sys::Rng rng(10);
  for (usize i = 0; i < layer.grad->size(); ++i) {
    (*layer.grad)[i] = static_cast<float>(rng.normal());
  }
  const BitSkipSet empty;
  for (const auto& cand : top_k_flips(layer, 0, 20, empty)) {
    EXPECT_GT(cand.estimated_gain, 0.0);
  }
}

TEST_F(QuantFixture, ZeroGradientYieldsNoCandidates) {
  auto& layer = qm_.layer(0);
  layer.grad->zero();
  const BitSkipSet empty;
  EXPECT_TRUE(top_k_flips(layer, 0, 5, empty).empty());
}

// ------------------------------------------------- bit-key packing bounds --

TEST(BitKeyBounds, ValidatesPackingLimits) {
  // Exactly at the field limits (max index = limit - 1) is fine; one past
  // either field must throw, because key() would silently alias.
  EXPECT_NO_THROW(detail::validate_bit_key_bounds(detail::kMaxKeyLayers, detail::kMaxKeyIndex));
  EXPECT_NO_THROW(detail::validate_bit_key_bounds(0, 0));
  EXPECT_THROW(detail::validate_bit_key_bounds(detail::kMaxKeyLayers + 1, 10),
               std::length_error);
  EXPECT_THROW(detail::validate_bit_key_bounds(10, detail::kMaxKeyIndex + 1),
               std::length_error);
}

// --------------------------------------------------- int8 rounding edges --

TEST(Int8Rounding, ActivationQuantizationEdges) {
  // Symmetric activation quantization at scale 1.0: saturation clamps to
  // +-127 (NOT -128 -- the kernel's no-saturation proof needs |a| <= 127),
  // round-half ties go away from zero (lround), and the packed K remainder
  // is zeroed so padded quads contribute exactly nothing.
  const float src[5] = {200.0f, -0.5f, 1.5f, 0.49f, -200.0f};
  i8 out[8];
  std::memset(out, 99, sizeof(out));
  nn::gemm::quantize_activations(src, 1, 5, 5, 1.0f, out);
  EXPECT_EQ(out[0], 127);
  EXPECT_EQ(out[1], -1);
  EXPECT_EQ(out[2], 2);
  EXPECT_EQ(out[3], 0);
  EXPECT_EQ(out[4], -127);
  ASSERT_EQ(nn::gemm::padded_k_int8(5), 8u);
  for (usize k = 5; k < 8; ++k) EXPECT_EQ(out[k], 0) << "pad byte " << k;
}

TEST(Int8Rounding, AllZeroScaleGuard) {
  // An all-zero operand must not divide by zero: the scale guard returns 1.0
  // and the quantized codes are all zero.
  const float zeros[4] = {0.0f, 0.0f, 0.0f, 0.0f};
  EXPECT_EQ(nn::gemm::activation_scale(zeros, 1, 4, 4), 1.0f);
  i8 out[4];
  std::memset(out, 55, sizeof(out));
  nn::gemm::quantize_activations(zeros, 1, 4, 4, 1.0f, out);
  for (const i8 v : out) EXPECT_EQ(v, 0);
}

TEST(Int8Rounding, WeightRoundHalfTiesAwayFromZero) {
  // Craft a weight tensor whose amax pins the scale to exactly 1.0, then
  // check the construction-time rounding: .5 ties away from zero, both signs.
  auto model = models::make_test_mlp(8, 6, 3, /*seed=*/11);
  auto params = model->quantizable_params();
  nn::Tensor& w = *params[0].value;
  ASSERT_GE(w.size(), 4u);
  w.fill(0.25f);
  w[0] = 127.0f;  // amax -> scale = 127/127 = 1.0 exactly
  w[1] = 63.5f;
  w[2] = -63.5f;
  w[3] = -126.5f;
  QuantizedModel qm(*model);
  ASSERT_EQ(qm.layer(0).scale, 1.0f);
  EXPECT_EQ(qm.get_q(0, 0), 127);
  EXPECT_EQ(qm.get_q(0, 1), 64);    // tie rounds away
  EXPECT_EQ(qm.get_q(0, 2), -64);   // tie rounds away
  EXPECT_EQ(qm.get_q(0, 3), -127);  // tie rounds away (to -127, within clamp)
  EXPECT_EQ(qm.get_q(0, 4), 0);     // 0.25 rounds to zero
}

// ------------------------------------------------------ true-int8 regime --

TEST(Int8Regime, SingleDenseOutputWithinQuantizationBound) {
  // Requant round-trip at one int8 layer boundary: the materialized float
  // weights are EXACTLY q*s_w, so the only int8-vs-float error on a single
  // Dense is the activation quantization error |e_k| <= s_a/2, giving
  // |y_f - y_q| <= s_w * (s_a/2) * sum_k |q_jk| (+ float rounding slack).
  testutil::SimdGuard guard;
  auto model = models::make_test_mlp(8, 6, 3, /*seed=*/21);
  QuantizedModel qm(*model);
  sys::Rng rng(5);
  nn::Tensor x({4, 8});
  for (usize i = 0; i < x.size(); ++i) x[i] = static_cast<float>(rng.normal(0.0, 1.0));
  qm.calibrate_int8(x);

  QuantizedLayer& l0 = qm.layer(0);
  ASSERT_NE(l0.owner, nullptr);
  ASSERT_GT(l0.act_scale, 0.0f);
  nn::simd::set_int8_override(0);
  const nn::Tensor yf = l0.owner->forward(x, false);
  nn::simd::set_int8_override(1);
  const nn::Tensor yq = l0.owner->forward(x, false);
  ASSERT_EQ(yf.shape(), yq.shape());

  const usize out = l0.pack_rows, in = l0.pack_cols;
  for (usize m = 0; m < 4; ++m) {
    for (usize j = 0; j < out; ++j) {
      double code_mass = 0.0;
      for (usize k = 0; k < in; ++k) code_mass += std::abs(static_cast<double>(l0.q[j * in + k]));
      const double bound =
          static_cast<double>(l0.scale) * (static_cast<double>(l0.act_scale) * 0.5) * code_mass +
          1e-4;
      EXPECT_NEAR(yf.at2(m, j), yq.at2(m, j), bound) << "m=" << m << " j=" << j;
    }
  }
}

TEST(Int8Regime, IncrementalProbeMatchesFullForwardAfterFlips) {
  // The BFA probe contract in the integer regime: a bit flip updates ONE
  // panel byte, and forward_from(net_layer) over the cached prefix must be
  // byte-identical to a from-scratch full forward of the flipped model.
  testutil::SimdGuard guard;
  auto model = models::make_test_mlp(8, 6, 3, /*seed=*/22);
  QuantizedModel qm(*model);
  sys::Rng rng(6);
  nn::Tensor x({4, 8});
  for (usize i = 0; i < x.size(); ++i) x[i] = static_cast<float>(rng.normal(0.0, 1.0));
  nn::simd::set_int8_override(1);
  qm.calibrate_int8(x);
  qm.model().forward_cached(x);  // prime the cache

  qm.flip({0, 3, 7});
  qm.flip({1, 1, 6});
  const nn::Tensor incremental = qm.model().forward_from(qm.layer(0).net_layer);

  // One-byte panel updates == full repack of the flipped codes.
  for (usize l = 0; l < qm.num_layers(); ++l) {
    const QuantizedLayer& ql = qm.layer(l);
    std::vector<i8> fresh(nn::gemm::packed_b_int8_size(ql.pack_rows, ql.pack_cols));
    nn::gemm::pack_b_q8(ql.q.data(), ql.pack_rows, ql.pack_cols, fresh.data());
    ASSERT_EQ(ql.packed_q.size(), fresh.size());
    ASSERT_EQ(0, std::memcmp(ql.packed_q.data(), fresh.data(), fresh.size()))
        << "layer " << l << " panel diverged from its codes";
  }

  qm.model().invalidate_from(0);
  const nn::Tensor& full = qm.model().forward_cached(x);
  ASSERT_EQ(incremental.shape(), full.shape());
  EXPECT_EQ(0, std::memcmp(incremental.data(), full.data(), full.size() * sizeof(float)))
      << "incremental int8 probe diverged from the full forward";
}

TEST(Int8Regime, EndToEndAccuracyCloseToFloat) {
  // Campaign-level gate in miniature: the integer regime is a different
  // numeric path (never byte-gated against float), but on a trained model its
  // accuracy must stay within a tight band of the float path.
  testutil::SimdGuard guard;
  auto model = testutil::trained_mlp();
  QuantizedModel qm(*model);
  auto [ex, ey] = testutil::easy_data().test.head(80);
  nn::simd::set_int8_override(0);
  const double float_acc = qm.model().evaluate_batch(ex, ey).accuracy;
  nn::simd::set_int8_override(1);
  qm.calibrate_int8(ex);
  const double int8_acc = qm.model().evaluate_batch(ex, ey).accuracy;
  EXPECT_NEAR(int8_acc, float_acc, 0.1);
}

TEST(Int8Regime, DisabledRegimeLeavesFloatPathByteIdentical) {
  // With the override forced off, attaching int8 panels and calibrating must
  // not perturb the float path by a single byte -- the default regime's
  // golden baselines depend on it.
  testutil::SimdGuard guard;
  auto model = models::make_test_mlp(8, 6, 3, /*seed=*/23);
  sys::Rng rng(7);
  nn::Tensor x({4, 8});
  for (usize i = 0; i < x.size(); ++i) x[i] = static_cast<float>(rng.normal(0.0, 1.0));
  nn::simd::set_int8_override(0);

  QuantizedModel qm(*model);
  const nn::Tensor before = qm.model().forward_cached(x);
  qm.calibrate_int8(x);
  const nn::Tensor& after = qm.model().forward_cached(x);
  ASSERT_EQ(before.shape(), after.shape());
  EXPECT_EQ(0, std::memcmp(before.data(), after.data(), after.size() * sizeof(float)));
}

}  // namespace
}  // namespace dnnd::quant
