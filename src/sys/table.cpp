#include "sys/table.hpp"

#include <cassert>
#include <cstdio>
#include <sstream>
#include <iomanip>

namespace dnnd::sys {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void Table::add_row(std::vector<std::string> cells) {
  assert(cells.size() <= headers_.size());
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string Table::to_string() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  std::ostringstream out;
  auto emit_row = [&](const std::vector<std::string>& row) {
    out << "|";
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      out << ' ' << std::left << std::setw(static_cast<int>(widths[c])) << row[c] << " |";
    }
    out << '\n';
  };
  emit_row(headers_);
  out << "|";
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out << std::string(widths[c] + 2, '-') << "|";
  }
  out << '\n';
  for (const auto& row : rows_) emit_row(row);
  return out.str();
}

void Table::print() const { std::fputs(to_string().c_str(), stdout); }

std::string fmt(double v, int precision) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(precision) << v;
  return out.str();
}

std::string fmt_count(unsigned long long v) {
  const std::string digits = std::to_string(v);
  std::string out;
  int count = 0;
  for (auto it = digits.rbegin(); it != digits.rend(); ++it) {
    if (count != 0 && count % 3 == 0) out.push_back(',');
    out.push_back(*it);
    ++count;
  }
  return {out.rbegin(), out.rend()};
}

std::string fmt_count(long long v) {
  // Negate in unsigned space: -LLONG_MIN does not exist as a long long, so
  // the naive `-v` is UB exactly at the value most likely to appear after a
  // counter wrap. 0 - (unsigned)v is well-defined modular arithmetic and
  // yields the magnitude for every negative input including LLONG_MIN.
  if (v < 0) return "-" + fmt_count(0ULL - static_cast<unsigned long long>(v));
  return fmt_count(static_cast<unsigned long long>(v));
}

}  // namespace dnnd::sys
