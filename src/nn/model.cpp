#include "nn/model.hpp"

namespace dnnd::nn {

std::vector<ParamRef> Model::quantizable_params() {
  std::vector<ParamRef> out;
  for (auto& p : params()) {
    if (p.quantizable) out.push_back(p);
  }
  return out;
}

void Model::zero_grad() {
  for (auto& p : params()) p.grad->zero();
}

std::vector<Tensor> Model::save_state() {
  std::vector<Tensor> out;
  for (auto& p : params()) out.push_back(*p.value);
  for (Tensor* t : net_.state_tensors()) out.push_back(*t);
  return out;
}

void Model::load_state(const std::vector<Tensor>& snapshot) {
  usize i = 0;
  for (auto& p : params()) *p.value = snapshot.at(i++);
  for (Tensor* t : net_.state_tensors()) *t = snapshot.at(i++);
}

usize Model::param_count() {
  usize n = 0;
  for (auto& p : params()) n += p.value->size();
  return n;
}

usize Model::weight_count() {
  usize n = 0;
  for (auto& p : quantizable_params()) n += p.value->size();
  return n;
}

const LossResult& Model::loss_and_grad(const Tensor& x, const std::vector<u32>& labels,
                                       bool train_mode) {
  const Tensor& logits = forward_cached(x, train_mode);
  softmax_cross_entropy_into(logits, labels, loss_scratch_);
  net_.backward_cached(loss_scratch_.dlogits, ws_);
  return loss_scratch_;
}

double Model::loss(const Tensor& x, const std::vector<u32>& labels) {
  const Tensor& logits = forward_cached(x, /*train=*/false);
  return softmax_cross_entropy_loss(logits, labels);
}

BatchEval Model::evaluate_batch(const Tensor& x, const std::vector<u32>& labels) {
  const Tensor& logits = forward_cached(x, /*train=*/false);
  return evaluate_logits(logits, labels);
}

double Model::accuracy(const Tensor& x, const std::vector<u32>& labels) {
  return evaluate_batch(x, labels).accuracy;
}

}  // namespace dnnd::nn
