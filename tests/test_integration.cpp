// End-to-end reproductions of the paper's headline claims on the small test
// substrate: targeted BFA >> random attack; DNN-Defender downgrades a
// white-box BFA to no effect while aggressor-focused swaps (RRS) fail; the
// priority pipeline (profile -> target rows -> swap schedule) holds the
// clean accuracy under attack.
#include <gtest/gtest.h>

#include "attack/random_attack.hpp"
#include "defense/rrs.hpp"
#include "defense/shadow.hpp"
#include "system/protected_system.hpp"
#include "test_util.hpp"

namespace dnnd {
namespace {

using testutil::easy_data;
using testutil::trained_mlp;

struct Harness {
  std::unique_ptr<nn::Model> model = trained_mlp();
  quant::QuantizedModel qm{*model};
  std::unique_ptr<system::ProtectedSystem> sys;
  nn::Tensor ax, ex;
  std::vector<u32> ay, ey;

  Harness() {
    system::ProtectedSystemConfig cfg;
    cfg.dram = dram::DramConfig::nn_scaled();
    sys = std::make_unique<system::ProtectedSystem>(qm, cfg);
    std::tie(ax, ay) = easy_data().test.head(32);
    std::tie(ex, ey) = easy_data().test.head(100);
  }

  core::ProfileResult profile(usize rounds) {
    core::ProfilerConfig pcfg;
    pcfg.rounds = rounds;
    core::PriorityProfiler profiler(qm, ax, ay, pcfg);
    return profiler.profile();
  }
};

TEST(Paper, TargetedBfaBeatsRandomByOrderOfMagnitude) {
  // Fig. 1(b): a handful of targeted flips vs. >100 random flips.
  auto m1 = trained_mlp();
  quant::QuantizedModel q1(*m1);
  auto [ax, ay] = easy_data().test.head(32);
  attack::BfaConfig cfg;
  cfg.max_flips = 40;
  cfg.stop_accuracy = 0.55;
  attack::ProgressiveBitSearch bfa(q1, ax, ay, cfg);
  const auto targeted = bfa.run();
  ASSERT_TRUE(targeted.reached_stop) << "targeted attack must do real damage";

  auto m2 = trained_mlp();
  quant::QuantizedModel q2(*m2);
  attack::RandomBitAttack rnd(q2, sys::Rng(21));
  const auto random = rnd.run(10 * targeted.flips.size(), ax, ay, 10 * targeted.flips.size());
  EXPECT_GT(random.accuracy_trace.back(), targeted.final_batch_accuracy + 0.25)
      << "random flips at 10x budget should leave the model largely intact";
}

TEST(Paper, SemiWhiteBoxAttackFailsAgainstDefender) {
  // Sec 5.2: the naive attacker's precomputed sequence targets protected
  // rows; the defense refreshes them and accuracy does not move.
  Harness h;
  const auto profile = h.profile(2);
  h.sys->install_dnn_defender(profile);
  const auto res = h.sys->run_white_box_attack(h.ax, h.ay, h.ex, h.ey, 12, 0.0);
  EXPECT_EQ(res.landed, 0u);
  EXPECT_DOUBLE_EQ(res.final_accuracy, res.initial_accuracy);
}

TEST(Paper, DefenderHoldsCleanAccuracyWhereBaselineCollapses) {
  // Table 3's headline: baseline post-attack accuracy collapses to random
  // guess, DNN-Defender's equals the clean accuracy.
  Harness undefended;
  const auto base =
      undefended.sys->run_white_box_attack(undefended.ax, undefended.ay, undefended.ex,
                                           undefended.ey, 40, 0.3);
  EXPECT_LE(base.final_accuracy, 0.5) << "undefended system must collapse";

  Harness defended;
  const auto profile = defended.profile(3);
  defended.sys->install_dnn_defender(profile);
  const auto prot = defended.sys->run_white_box_attack(defended.ax, defended.ay, defended.ex,
                                                       defended.ey, 40, 0.3);
  EXPECT_DOUBLE_EQ(prot.final_accuracy, prot.initial_accuracy);
}

TEST(Paper, AggressorFocusedRrsFailsWhiteBox) {
  // The motivating argument: swapping aggressors is purposeless once the
  // attacker tracks the victim. RRS must lose weights where DD does not.
  Harness h;
  h.sys->install_mitigation(
      std::make_unique<defense::Rrs>(h.sys->device(), h.sys->remapper()));
  const auto res = h.sys->run_white_box_attack(h.ax, h.ay, h.ex, h.ey, 8, 0.0);
  EXPECT_GT(res.landed, 0u);
  EXPECT_LT(res.final_accuracy, res.initial_accuracy);
}

TEST(Paper, VictimFocusedShadowAlsoHolds) {
  // SHADOW is the one prior defense the paper credits with withstanding
  // white-box attacks (at higher latency cost).
  Harness h;
  h.sys->install_mitigation(
      std::make_unique<defense::Shadow>(h.sys->device(), h.sys->remapper()));
  const auto res = h.sys->run_white_box_attack(h.ax, h.ay, h.ex, h.ey, 6, 0.0);
  EXPECT_EQ(res.landed, 0u);
}

TEST(Paper, MoreSecuredBitsRequireMoreAttackEffort) {
  // Fig. 9's monotonicity: accuracy after a fixed number of additional
  // flips is non-decreasing in the number of secured bits.
  auto model = trained_mlp();
  quant::QuantizedModel qm(*model);
  auto [ax, ay] = easy_data().test.head(32);
  auto [ex, ey] = easy_data().test.head(100);
  core::ProfilerConfig pcfg;
  pcfg.rounds = 3;
  core::PriorityProfiler profiler(qm, ax, ay, pcfg);
  const auto profile = profiler.profile();
  ASSERT_GE(profile.total_bits(), 6u);

  // Measure damage on the attack batch itself (what the search optimises);
  // the tiny eval sets are too noisy for strict monotonicity.
  const usize budget = 12;
  std::vector<double> final_acc;
  for (usize sb : {usize{0}, profile.total_bits()}) {
    auto m = trained_mlp();
    quant::QuantizedModel q(*m);
    attack::AdaptiveAttackConfig acfg;
    acfg.max_additional_flips = budget;
    acfg.measure_every = budget;
    attack::AdaptiveWhiteBoxAttack attack(q, ax, ay, ax, ay, acfg);
    const auto res = attack.run(profile.secured_set(sb));
    final_acc.push_back(res.accuracy_trace.back());
  }
  EXPECT_GE(final_acc[1], final_acc[0])
      << "securing all profiled bits must not make the attack stronger";
  EXPECT_GT(final_acc[1], final_acc[0] - 1e-9) << "securing all profiled bits must help";
}

}  // namespace
}  // namespace dnnd
