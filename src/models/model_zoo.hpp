// Scaled-down stand-ins for the paper's evaluation models.
//
// The paper attacks 8-bit quantized VGG-11 (CIFAR-10) and
// ResNet-18/20/34 (CIFAR-10 / ImageNet). Training those offline is
// infeasible, so the zoo provides structurally-faithful miniatures:
//  * vgg11_sub    -- plain conv stack + classifier head (VGG family)
//  * resnet18_sub -- 4 stages x 2 basic blocks (depth 18 exactly)
//  * resnet20_sub -- 3 stages x 3 basic blocks (depth 20 exactly, the
//                    CIFAR ResNet the paper's Table 3 uses)
//  * resnet34_sub -- 4 stages x {3,4,6,3} basic blocks (depth 34 exactly)
// Channel widths are shrunk so single-core training takes seconds; the
// BFA search dynamics (inter-/intra-layer gradient ranking) depend on the
// topology family and trained-ness, both of which are preserved.
#pragma once

#include <memory>

#include "nn/model.hpp"

namespace dnnd::models {

/// VGG-11 miniature: conv-BN-ReLU(-pool) stack + 2-layer classifier.
/// `width_mult` scales every channel width (capacity ablation).
std::unique_ptr<nn::Model> make_vgg11_sub(usize num_classes, u64 seed, usize width_mult = 1);

/// ResNet-18 miniature: stages {2,2,2,2}, widths {5,8,12,16} * width_mult.
std::unique_ptr<nn::Model> make_resnet18_sub(usize num_classes, u64 seed, usize width_mult = 1);

/// ResNet-20 miniature (CIFAR-style): stages {3,3,3}, widths {4,8,12} * mult.
std::unique_ptr<nn::Model> make_resnet20_sub(usize num_classes, u64 seed, usize width_mult = 1);

/// ResNet-34 miniature: stages {3,4,6,3}, widths {5,8,12,16} * mult.
std::unique_ptr<nn::Model> make_resnet34_sub(usize num_classes, u64 seed, usize width_mult = 1);

/// Tiny MLP for unit tests (dense-relu-dense on flattened input).
std::unique_ptr<nn::Model> make_test_mlp(usize in_features, usize hidden, usize num_classes,
                                         u64 seed);

/// Builds a model by paper name: "vgg11", "resnet18", "resnet20", "resnet34".
std::unique_ptr<nn::Model> make_by_name(const std::string& name, usize num_classes, u64 seed,
                                        usize width_mult = 1);

/// True when make_by_name accepts `name` (cheap check, no construction).
bool is_known_arch(const std::string& name);

}  // namespace dnnd::models
