// Minimal ASCII table renderer used by the benchmark harness to print
// paper-style tables and figure series.
#pragma once

#include <string>
#include <vector>

namespace dnnd::sys {

/// Column-aligned ASCII table. Rows may be added as pre-formatted strings or
/// as doubles with per-call precision.
class Table {
 public:
  explicit Table(std::vector<std::string> headers);

  /// Appends a row; missing cells render empty, extra cells are an error.
  void add_row(std::vector<std::string> cells);

  /// Renders with a header rule and column padding.
  [[nodiscard]] std::string to_string() const;

  /// Convenience: renders and writes to stdout.
  void print() const;

  [[nodiscard]] std::size_t rows() const { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Formats a double with fixed precision (reporting helper).
std::string fmt(double v, int precision = 2);

/// Formats a large count with thousands separators (e.g. 1,150).
std::string fmt_count(long long v);

}  // namespace dnnd::sys
