#include "dram/dram_device.hpp"

#include <algorithm>
#include <cassert>
#include <stdexcept>

namespace dnnd::dram {

DramDevice::DramDevice(DramConfig cfg) : cfg_(cfg) {
  const u64 bytes = cfg_.geo.total_bytes();
  // Guard against accidentally instantiating the analytic 32GB geometry.
  if (bytes > (1ULL << 30)) {
    throw std::invalid_argument(
        "DramDevice: geometry exceeds 1 GiB; use a sim_* preset for simulation "
        "and paper_32gb() only for analytic overhead computation");
  }
  cells_.assign(static_cast<usize>(bytes), 0);
  open_row_.assign(cfg_.geo.banks, -1);
}

usize DramDevice::row_offset(const RowAddr& row) const {
  return static_cast<usize>(flat_row_id(cfg_.geo, row)) * cfg_.geo.row_bytes;
}

void DramDevice::notify_activate(const RowAddr& row) {
  for (auto* l : listeners_) l->on_activate(row, now_);
}

void DramDevice::notify_restore(const RowAddr& row, RestoreKind kind) {
  for (auto* l : listeners_) l->on_restore(row, now_, kind);
}

void DramDevice::activate(const RowAddr& row) {
  assert(row.bank < cfg_.geo.banks);
  const i64 in_bank =
      static_cast<i64>(row.subarray) * cfg_.geo.rows_per_subarray + row.row;
  if (open_row_[row.bank] == in_bank) return;  // already open: no command issued
  if (open_row_[row.bank] >= 0) precharge(row.bank);
  open_row_[row.bank] = in_bank;
  now_ += cfg_.timing.t_act;
  stats_.n_act += 1;
  stats_.busy_time += cfg_.timing.t_act;
  stats_.energy += cfg_.energy.act;
  notify_activate(row);
  notify_restore(row, RestoreKind::kRefresh);  // sensing re-amplifies the row's own cells
}

void DramDevice::precharge(u32 bank) {
  assert(bank < cfg_.geo.banks);
  if (open_row_[bank] < 0) return;
  open_row_[bank] = -1;
  now_ += cfg_.timing.t_rp;
  stats_.n_pre += 1;
  stats_.busy_time += cfg_.timing.t_rp;
  stats_.energy += cfg_.energy.pre;
}

void DramDevice::ensure_open(const RowAddr& row) {
  const i64 in_bank =
      static_cast<i64>(row.subarray) * cfg_.geo.rows_per_subarray + row.row;
  if (open_row_[row.bank] != in_bank) activate(row);
}

void DramDevice::read_burst(const RowAddr& row, usize burst_index, std::span<u8> out) {
  ensure_open(row);
  const usize off = row_offset(row) + burst_index * 64;
  assert(burst_index * 64 < cfg_.geo.row_bytes);
  const usize n = std::min<usize>(out.size(), 64);
  std::copy_n(cells_.begin() + static_cast<isize>(off), n, out.begin());
  now_ += cfg_.timing.t_cl + cfg_.timing.t_bl;
  stats_.n_rd_burst += 1;
  stats_.busy_time += cfg_.timing.t_cl + cfg_.timing.t_bl;
  stats_.energy += cfg_.energy.rd_burst;
}

void DramDevice::write_burst(const RowAddr& row, usize burst_index, std::span<const u8> data) {
  ensure_open(row);
  const usize off = row_offset(row) + burst_index * 64;
  assert(burst_index * 64 < cfg_.geo.row_bytes);
  const usize n = std::min<usize>(data.size(), 64);
  std::copy_n(data.begin(), n, cells_.begin() + static_cast<isize>(off));
  now_ += cfg_.timing.t_bl;
  stats_.n_wr_burst += 1;
  stats_.busy_time += cfg_.timing.t_bl;
  stats_.energy += cfg_.energy.wr_burst;
  notify_restore(row, RestoreKind::kRewrite);
}

std::vector<u8> DramDevice::read_row(const RowAddr& row) {
  std::vector<u8> out(cfg_.geo.row_bytes);
  for (usize b = 0; b * 64 < cfg_.geo.row_bytes; ++b) {
    read_burst(row, b, std::span<u8>(out).subspan(b * 64, 64));
  }
  return out;
}

void DramDevice::write_row(const RowAddr& row, std::span<const u8> data) {
  assert(data.size() == cfg_.geo.row_bytes);
  for (usize b = 0; b * 64 < cfg_.geo.row_bytes; ++b) {
    write_burst(row, b, data.subspan(b * 64, 64));
  }
}

void DramDevice::rowclone_fpm(u32 bank, u32 subarray, u32 src_row, u32 dst_row) {
  assert(bank < cfg_.geo.banks);
  assert(subarray < cfg_.geo.subarrays_per_bank);
  assert(src_row < cfg_.geo.rows_per_subarray);
  assert(dst_row < cfg_.geo.rows_per_subarray);
  if (src_row == dst_row) return;
  const RowAddr src{bank, subarray, src_row};
  const RowAddr dst{bank, subarray, dst_row};
  // Back-to-back ACTs without an intervening PRE: the row buffer holds the
  // source data and drives it into the destination row.
  std::copy_n(cells_.begin() + static_cast<isize>(row_offset(src)), cfg_.geo.row_bytes,
              cells_.begin() + static_cast<isize>(row_offset(dst)));
  open_row_[bank] = -1;  // AAP sequence ends precharged
  now_ += cfg_.timing.t_aap;
  stats_.n_aap += 1;
  stats_.busy_time += cfg_.timing.t_aap;
  stats_.energy += cfg_.energy.aap;
  notify_activate(src);
  notify_restore(src, RestoreKind::kRefresh);
  notify_activate(dst);
  notify_restore(dst, RestoreKind::kRewrite);
}

void DramDevice::rowclone_psm(const RowAddr& src, const RowAddr& dst) {
  // Pipelined serial mode: row travels over the internal bus burst by burst.
  // Roughly 2x the FPM latency per RowClone (MICRO'13); still no off-chip I/O.
  std::copy_n(cells_.begin() + static_cast<isize>(row_offset(src)), cfg_.geo.row_bytes,
              cells_.begin() + static_cast<isize>(row_offset(dst)));
  const Picoseconds t = 2 * cfg_.timing.t_aap +
                        static_cast<Picoseconds>(cfg_.geo.row_bytes / 64) * cfg_.timing.t_bl;
  now_ += t;
  stats_.n_psm_copy += 1;
  stats_.busy_time += t;
  stats_.energy += 2 * cfg_.energy.act +
                   static_cast<Femtojoules>(cfg_.geo.row_bytes / 64) *
                       (cfg_.energy.rd_burst + cfg_.energy.wr_burst);
  notify_activate(src);
  notify_restore(src, RestoreKind::kRefresh);
  notify_activate(dst);
  notify_restore(dst, RestoreKind::kRewrite);
}

void DramDevice::refresh_step() {
  const u64 total = cfg_.geo.total_rows();
  const u64 per_step = (total + cfg_.refresh_steps - 1) / cfg_.refresh_steps;
  for (u64 i = 0; i < per_step && total > 0; ++i) {
    const RowAddr row = unflatten_row_id(cfg_.geo, refresh_cursor_);
    notify_restore(row, RestoreKind::kRefresh);
    refresh_cursor_ = (refresh_cursor_ + 1) % total;
  }
  now_ += cfg_.timing.t_rfc;
  stats_.n_ref += 1;
  stats_.busy_time += cfg_.timing.t_rfc;
  stats_.energy += cfg_.energy.ref;
}

void DramDevice::refresh_all() {
  for (u32 s = 0; s < cfg_.refresh_steps; ++s) refresh_step();
}

u8 DramDevice::peek(const RowAddr& row, usize col) const {
  assert(col < cfg_.geo.row_bytes);
  return cells_[row_offset(row) + col];
}

void DramDevice::poke(const RowAddr& row, usize col, u8 value) {
  assert(col < cfg_.geo.row_bytes);
  cells_[row_offset(row) + col] = value;
}

std::span<const u8> DramDevice::peek_row(const RowAddr& row) const {
  return {cells_.data() + row_offset(row), cfg_.geo.row_bytes};
}

void DramDevice::poke_row(const RowAddr& row, std::span<const u8> data) {
  assert(data.size() == cfg_.geo.row_bytes);
  std::copy(data.begin(), data.end(), cells_.begin() + static_cast<isize>(row_offset(row)));
}

void DramDevice::force_flip_bit(const RowAddr& row, usize col, u32 bit) {
  assert(col < cfg_.geo.row_bytes);
  assert(bit < 8);
  cells_[row_offset(row) + col] ^= static_cast<u8>(1u << bit);
  stats_.n_bitflips += 1;
}

void DramDevice::advance(Picoseconds dt) {
  assert(dt >= 0);
  now_ += dt;
}

void DramDevice::add_listener(RowEventListener* l) { listeners_.push_back(l); }

void DramDevice::remove_listener(RowEventListener* l) {
  listeners_.erase(std::remove(listeners_.begin(), listeners_.end(), l), listeners_.end());
}

i64 DramDevice::open_row(u32 bank) const {
  assert(bank < cfg_.geo.banks);
  return open_row_[bank];
}

}  // namespace dnnd::dram
