// Analytic DRAM op-energy model. The paper derives its energy/power numbers
// from Cadence Spectre + CACTI runs that we cannot reproduce offline; instead
// we seed this model with published per-operation energies (RowClone MICRO'13
// for in-DRAM copy vs. channel copy; DDR4 datasheet-derived ACT/RD/WR/REF
// energies) and do the same arithmetic the paper describes. All values are
// per-operation femtojoules so accounting stays integral.
#pragma once

#include <string>

#include "sys/types.hpp"

namespace dnnd::sys {

/// Per-operation energy constants for one DRAM device generation.
struct EnergyParams {
  Femtojoules act = 0;        ///< one ACT (full row sense) incl. restore
  Femtojoules pre = 0;        ///< one PRE
  Femtojoules rd_burst = 0;   ///< one 64B read burst (on-die + I/O)
  Femtojoules wr_burst = 0;   ///< one 64B write burst
  Femtojoules ref = 0;        ///< one REF command (per-bank granularity)
  Femtojoules aap = 0;        ///< one RowClone ACT-ACT pair (intra-subarray copy)
  Femtojoules sram_access = 0;    ///< one SRAM tracker lookup/update (RRS/SRS/Graphene)
  Femtojoules cam_access = 0;     ///< one CAM search (Graphene/TWiCE)
  Femtojoules offchip_transfer = 0;  ///< per-64B transfer over the channel
  double background_mw = 0.0;  ///< standby+refresh background power, milliwatts

  /// DDR4-2400 x8 derived constants.
  static EnergyParams ddr4();
  /// LPDDR4 derived constants (lower I/O energy, lower background power).
  static EnergyParams lpddr4();
};

/// Energy cost of copying one full row (row_bytes) across the memory channel
/// (read out + write back), i.e. what an aggressor-focused controller-level
/// swap like RRS/SRS pays per row. RowClone FPM replaces this with one AAP.
Femtojoules channel_row_copy_energy(const EnergyParams& p, usize row_bytes);

/// Simple latency constants mirrored from the paper's analysis section.
struct LatencyParams {
  Picoseconds t_act = 45'000;       ///< one ACT-PRE cycle (tRC), 45 ns
  Picoseconds t_aap = 90'000;       ///< one RowClone ACT-ACT pair, 90 ns (paper Sec 5.1)
  Picoseconds t_ref_window = 64'000'000'000;  ///< refresh interval Tref, 64 ms
  Picoseconds t_rcd = 15'000;       ///< ACT to column command
  Picoseconds t_rp = 15'000;        ///< PRE latency
  Picoseconds t_cl = 13'750;        ///< read CAS latency
  Picoseconds t_bl = 3'333;         ///< burst transfer time
  Picoseconds t_rfc = 350'000;      ///< refresh cycle time per REF
  Picoseconds sram_lookup = 2'000;  ///< SRAM tracker lookup, 2 ns
  Picoseconds offchip_hop = 20'000; ///< controller<->DIMM round-trip add-on

  /// Swap cost of DNN-Defender's protection-critical path (steps 1-3 of the
  /// four-step swap; step 4 pipelines with the next swap): 3 x tAAP = 270 ns.
  [[nodiscard]] Picoseconds t_swap() const { return 3 * t_aap; }
};

/// Returns average power in milliwatts given energy spent over a duration.
double average_power_mw(Femtojoules energy, Picoseconds duration);

}  // namespace dnnd::sys
