// RowHammer attacker primitives: hammering loops (single-/double-sided) and
// memory templating (the profiling step DeepHammer/Blacksmith-style attacks
// use to discover flippable cells before placing victim data on them).
#pragma once

#include <functional>
#include <span>
#include <vector>

#include "rowhammer/hammer_model.hpp"

namespace dnnd::rowhammer {

/// Outcome of one hammering campaign against a victim row.
struct HammerResult {
  u64 activations = 0;            ///< total aggressor ACTs issued
  Picoseconds elapsed = 0;        ///< device time consumed
  struct Flip {
    usize col;
    u32 bit;
    u8 before;  ///< byte value before
    u8 after;   ///< byte value after
  };
  std::vector<Flip> flips;        ///< observed changes in the victim row

  [[nodiscard]] bool any_flip() const { return !flips.empty(); }
};

/// A flippable cell discovered by templating (attacker's view -- found by
/// hammering with known data patterns, not by querying the fault model).
struct TemplateEntry {
  dram::RowAddr row;
  usize col = 0;
  u32 bit = 0;
  bool one_to_zero = true;
};

/// Drives hammer attacks against a DramDevice with a HammerModel attached.
class HammerAttacker {
 public:
  HammerAttacker(dram::DramDevice& device, sys::Rng rng);

  /// Invoked after every ACT the attacker issues. The protected system uses
  /// this to let the defense execute swaps that are due, interleaving victim
  /// traffic with the attack exactly as a shared command bus would.
  using PostActHook = std::function<void()>;
  void set_post_act_hook(PostActHook hook) { post_act_ = std::move(hook); }

  /// Issues `n_acts` ACTs round-robin over `aggressors` (each ACT implicitly
  /// precharges the previous row, which is what makes hammering effective).
  /// Aggressors must share a bank for the row buffer to thrash.
  void hammer(std::span<const dram::RowAddr> aggressors, u64 n_acts);

  /// Single-sided attack: hammers victim.row+1 (or victim.row-1 at the top
  /// edge) alternated with a distant dummy row in the same bank.
  HammerResult single_sided(const dram::RowAddr& victim, u64 max_acts);

  /// Double-sided attack: hammers victim.row-1 and victim.row+1 alternately.
  /// Falls back to single-sided at subarray edges.
  HammerResult double_sided(const dram::RowAddr& victim, u64 max_acts);

  /// Memory templating over one subarray: writes an all-ones pattern to each
  /// probed victim row, double-side hammers it `acts_per_pattern` times,
  /// reads back the diff (discovers 1->0 cells), repeats with all-zeros
  /// (0->1 cells), then restores the original data. Probes rows
  /// [row_begin, row_end).
  std::vector<TemplateEntry> template_rows(u32 bank, u32 subarray, u32 row_begin, u32 row_end,
                                           u64 acts_per_pattern);

 private:
  HammerResult run_campaign(const dram::RowAddr& victim,
                            std::span<const dram::RowAddr> aggressors, u64 max_acts);

  dram::DramDevice& device_;
  sys::Rng rng_;
  PostActHook post_act_;
};

}  // namespace dnnd::rowhammer
