// Complete white-box adaptive attack (paper Sec. 5.2): the attacker knows
// DNN-Defender is present, probes through every Secured Bit without success,
// then adapts the progressive search to flip additional, unprotected bits.
// Produces the accuracy-vs-(SB + extra flips) curves of Fig. 9.
#pragma once

#include "attack/bfa.hpp"

namespace dnnd::attack {

struct AdaptiveAttackConfig {
  usize max_additional_flips = 100;  ///< extra flips beyond the secured set
  usize measure_every = 20;          ///< accuracy sampling period (x-axis step)
  BfaConfig bfa{};
};

struct AdaptiveAttackResult {
  usize secured_bits = 0;        ///< size of the set the attacker burned through
  /// Accuracy on the evaluation set at SB + k*measure_every additional flips
  /// (index 0 = after exhausting the secured set with zero landed flips).
  std::vector<double> accuracy_trace;
  std::vector<quant::BitLocation> landed_flips;
};

class AdaptiveWhiteBoxAttack {
 public:
  /// attack_x/y: the attacker's gradient/search batch.
  /// eval_x/y: held-out data for the reported accuracy trace.
  AdaptiveWhiteBoxAttack(quant::QuantizedModel& qm, nn::Tensor attack_x,
                         std::vector<u32> attack_y, nn::Tensor eval_x,
                         std::vector<u32> eval_y, AdaptiveAttackConfig cfg = {});

  /// `secured` is the full bit set protected by the defense (row-granular
  /// protection expands to every bit of every weight in a protected row).
  /// Flip attempts inside `secured` are blocked (no model effect); the
  /// search therefore skips them and lands flips only outside.
  AdaptiveAttackResult run(const quant::BitSkipSet& secured);

 private:
  quant::QuantizedModel& qm_;
  nn::Tensor attack_x_;
  std::vector<u32> attack_y_;
  nn::Tensor eval_x_;
  std::vector<u32> eval_y_;
  AdaptiveAttackConfig cfg_;
};

}  // namespace dnnd::attack
