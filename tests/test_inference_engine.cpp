// Inference-engine behaviour: incremental re-evaluation (forward_from) is
// bitwise identical to a full fresh forward for a flip in ANY layer, the
// evaluate_batch helper matches the separate loss/accuracy paths, and the
// workspace arena reaches a zero-allocation steady state.
#include <gtest/gtest.h>

#include <cstring>

#include "models/model_zoo.hpp"
#include "nn/layers.hpp"
#include "nn/model.hpp"
#include "quant/quantizer.hpp"

namespace dnnd::nn {
namespace {

/// Small conv+dense model covering conv, batchnorm, pooling, and dense layers.
std::unique_ptr<Model> make_conv_dense(sys::Rng& rng) {
  auto m = std::make_unique<Model>("tiny_conv_dense");
  m->add(std::make_unique<Conv2d>(1, 4, 3, 1, 1, rng));
  m->add(std::make_unique<BatchNorm2d>(4));
  m->add(std::make_unique<ReLU>());
  m->add(std::make_unique<MaxPool2d>());
  m->add(std::make_unique<Conv2d>(4, 6, 3, 1, 1, rng));
  m->add(std::make_unique<ReLU>());
  m->add(std::make_unique<Flatten>());
  m->add(std::make_unique<Dense>(6 * 3 * 3, 16, rng));
  m->add(std::make_unique<ReLU>());
  m->add(std::make_unique<Dense>(16, 4, rng));
  return m;
}

Tensor random_input(usize n, sys::Rng& rng) {
  Tensor x({n, 1, 6, 6});
  for (usize i = 0; i < x.size(); ++i) x[i] = static_cast<float>(rng.normal(0.0, 1.0));
  return x;
}

bool bitwise_equal(const Tensor& a, const Tensor& b) {
  return a.shape() == b.shape() &&
         std::memcmp(a.data(), b.data(), a.size() * sizeof(float)) == 0;
}

TEST(ForwardFrom, BitwiseIdenticalToFullForwardForEveryLayer) {
  sys::Rng rng(41);
  auto m = make_conv_dense(rng);
  const Tensor x = random_input(3, rng);
  quant::QuantizedModel qm(*m);

  for (usize l = 0; l < qm.num_layers(); ++l) {
    m->forward_cached(x);  // clean cache
    const quant::BitLocation loc{l, qm.layer(l).size() / 2, 6};
    qm.flip(loc);
    const Tensor incremental = m->forward_from(qm.layer(l).net_layer);
    const Tensor full = m->forward_cached(x);  // fresh full pass, same weights
    EXPECT_TRUE(bitwise_equal(incremental, full))
        << "quant layer " << l << " (net layer " << qm.layer(l).net_layer << ")";
    qm.flip(loc);  // revert
  }
}

TEST(ForwardFrom, OutOfOrderProbesStayExact) {
  // The BFA evaluates candidates in estimated-gain order, which jumps between
  // layers arbitrarily WITHOUT refreshing the cache between probes -- so the
  // clean-frontier restart path (recomputing from an earlier, still-clean
  // activation when a probe lands above the frontier) must keep every probe
  // equal to a from-scratch forward. A twin model with identical weights
  // provides the pristine reference; the probed model's cache is never
  // re-cleaned inside the loop.
  sys::Rng rng_a(42), rng_b(42);
  auto probed = make_conv_dense(rng_a);
  auto twin = make_conv_dense(rng_b);
  sys::Rng xrng(43);
  const Tensor x = random_input(2, xrng);
  quant::QuantizedModel qm(*probed);
  quant::QuantizedModel qm_twin(*twin);
  sys::Rng order_rng(7);

  probed->forward_cached(x);
  for (int probe = 0; probe < 12; ++probe) {
    const usize l = order_rng.uniform(qm.num_layers());
    const quant::BitLocation loc{l, order_rng.uniform(qm.layer(l).size()),
                                 static_cast<u32>(order_rng.uniform(8))};
    qm.flip(loc);
    const Tensor incremental = probed->forward_from(qm.layer(l).net_layer);
    qm.flip(loc);  // revert; cache intentionally left dirty beyond layer l

    qm_twin.flip(loc);
    const Tensor full = twin->forward_cached(x);
    qm_twin.flip(loc);
    EXPECT_TRUE(bitwise_equal(incremental, full)) << "probe " << probe << " layer " << l;
  }
}

TEST(ForwardFrom, LayerZeroEqualsFullForward) {
  sys::Rng rng(43);
  auto m = make_conv_dense(rng);
  const Tensor x = random_input(2, rng);
  const Tensor full = m->forward_cached(x);
  const Tensor from0 = m->forward_from(0);
  EXPECT_TRUE(bitwise_equal(full, from0));
}

TEST(ForwardFrom, ThrowsWithoutPriorForward) {
  sys::Rng rng(44);
  auto m = make_conv_dense(rng);
  EXPECT_THROW(m->forward_from(0), std::logic_error);
}

TEST(EvaluateBatch, MatchesSeparateLossAndAccuracy) {
  sys::Rng rng(45);
  auto m = make_conv_dense(rng);
  const Tensor x = random_input(4, rng);
  const std::vector<u32> y{0, 3, 1, 2};
  const BatchEval ev = m->evaluate_batch(x, y);
  EXPECT_EQ(ev.loss, m->loss(x, y));
  EXPECT_EQ(ev.accuracy, m->accuracy(x, y));
  const auto pred = argmax_rows(m->forward(x));
  usize hits = 0;
  for (usize i = 0; i < pred.size(); ++i) hits += pred[i] == y[i] ? 1 : 0;
  EXPECT_EQ(ev.correct, hits);
}

TEST(Workspace, ZeroAllocSteadyStateForwardBackward) {
  sys::Rng rng(46);
  auto m = make_conv_dense(rng);
  const Tensor x = random_input(3, rng);
  const std::vector<u32> y{1, 0, 2};

  // Warm up: first pass creates every slot and sizes every buffer.
  m->zero_grad();
  m->loss_and_grad(x, y);
  m->evaluate_batch(x, y);
  const usize warm = m->workspace().alloc_events();
  const usize warm_capacity = m->workspace().slot_capacity();
  const float* logits_storage = m->forward_cached(x).data();
  ASSERT_GT(warm, 0u);

  for (int iter = 0; iter < 5; ++iter) {
    m->zero_grad();
    m->loss_and_grad(x, y);
    m->evaluate_batch(x, y);
  }
  EXPECT_EQ(m->workspace().alloc_events(), warm)
      << "steady-state forward/backward grew the workspace arena";
  // Reallocation of slot storage would escape alloc_events(); the capacity
  // total and the stable logits pointer pin it down.
  EXPECT_EQ(m->workspace().slot_capacity(), warm_capacity)
      << "steady-state iterations reallocated slot tensor storage";
  EXPECT_EQ(m->forward_cached(x).data(), logits_storage)
      << "steady-state forward moved the cached logits storage";
}

TEST(Workspace, ZeroAllocAcrossIncrementalProbes) {
  sys::Rng rng(47);
  auto m = make_conv_dense(rng);
  const Tensor x = random_input(2, rng);
  quant::QuantizedModel qm(*m);

  m->forward_cached(x);
  for (usize l = 0; l < qm.num_layers(); ++l) {
    qm.flip({l, 0, 7});
    m->forward_from(qm.layer(l).net_layer);
    qm.flip({l, 0, 7});
  }
  const usize warm = m->workspace().alloc_events();
  m->forward_cached(x);
  for (usize l = 0; l < qm.num_layers(); ++l) {
    qm.flip({l, 0, 7});
    m->forward_from(qm.layer(l).net_layer);
    qm.flip({l, 0, 7});
  }
  EXPECT_EQ(m->workspace().alloc_events(), warm);
}

TEST(ForwardFrom, WorksOnResNetBlocks) {
  // Residual blocks nest Sequentials inside the top-level net; a flip inside
  // a block must map to the block's top-level index.
  auto m = models::make_resnet20_sub(4, 11);
  sys::Rng rng(48);
  Tensor x({2, 3, 8, 8});
  for (usize i = 0; i < x.size(); ++i) x[i] = static_cast<float>(rng.normal(0.0, 1.0));
  quant::QuantizedModel qm(*m);

  for (usize l = 0; l < qm.num_layers(); l += 3) {
    m->forward_cached(x);
    qm.flip({l, qm.layer(l).size() / 3, 5});
    const Tensor incremental = m->forward_from(qm.layer(l).net_layer);
    const Tensor full = m->forward_cached(x);
    EXPECT_TRUE(bitwise_equal(incremental, full)) << "quant layer " << l;
    qm.flip({l, qm.layer(l).size() / 3, 5});
  }
}

}  // namespace
}  // namespace dnnd::nn
