// Randomized Row-Swap (Saileshwar et al., ASPLOS'22) -- aggressor-focused
// baseline. An SRAM Misra-Gries tracker counts row activations; when a row's
// count reaches the swap threshold (a fraction of T_RH), the row is swapped
// with a random row of the same bank through the memory controller (reads +
// writes over the channel -- the expensive path RowClone avoids).
//
// Against the paper's complete white-box attacker this is structurally
// ineffective: the attacker tracks the *victim* and keeps hammering whatever
// physical row is adjacent to it, so the victim's disturbance accumulates
// across aggressor swaps. The simulator reproduces that failure.
#pragma once

#include <unordered_map>

#include "defense/mitigation.hpp"

namespace dnnd::defense {

struct RrsConfig {
  double swap_threshold_fraction = 0.5;  ///< swap at fraction * T_RH activations
  usize tracker_entries = 64;            ///< Misra-Gries table size per bank
  u64 seed = 0x5125;
};

class Rrs : public Mitigation {
 public:
  Rrs(dram::DramDevice& device, dram::RowRemapper& remap, RrsConfig cfg = {});

  [[nodiscard]] std::string name() const override { return "RRS"; }
  void on_activate(const dram::RowAddr& row, Picoseconds now) override;

  [[nodiscard]] u64 swaps_performed() const { return swaps_; }

 protected:
  /// Swaps physical row `hot` with a random row in the same bank via
  /// controller-mediated reads/writes; updates the remapper.
  void swap_with_random(const dram::RowAddr& hot);

  /// Misra-Gries style decrement-on-full tracking; returns current estimate.
  u64 track(const dram::RowAddr& row);

  RrsConfig cfg_;
  sys::Rng rng_;
  /// flat physical row id -> activation estimate (per-bank tables merged;
  /// entry budget enforced per bank).
  std::unordered_map<u64, u64> counts_;
  std::unordered_map<u32, usize> entries_per_bank_;
  u64 swaps_ = 0;
};

}  // namespace dnnd::defense
