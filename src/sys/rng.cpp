#include "sys/rng.hpp"

#include <cassert>
#include <cmath>

namespace dnnd::sys {
namespace {

constexpr u64 rotl(u64 x, int k) { return (x << k) | (x >> (64 - k)); }

u64 splitmix64(u64& x) {
  x += 0x9e3779b97f4a7c15ULL;
  u64 z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

}  // namespace

Rng::Rng(u64 seed) {
  u64 s = seed;
  for (auto& w : state_) w = splitmix64(s);
  // xoshiro must not start from the all-zero state.
  if (state_[0] == 0 && state_[1] == 0 && state_[2] == 0 && state_[3] == 0) {
    state_[0] = 0x9e3779b97f4a7c15ULL;
  }
}

Rng Rng::split(std::string_view tag) {
  u64 child_seed = hash_combine(next_u64(), stable_hash64(tag));
  return Rng(child_seed);
}

u64 Rng::next_u64() {
  const u64 result = rotl(state_[1] * 5, 7) * 9;
  const u64 t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

u64 Rng::uniform(u64 bound) {
  assert(bound > 0);
  // Lemire-style rejection to remove modulo bias.
  const u64 threshold = (0ULL - bound) % bound;
  for (;;) {
    u64 r = next_u64();
    if (r >= threshold) return r % bound;
  }
}

i64 Rng::uniform_range(i64 lo, i64 hi) {
  assert(lo <= hi);
  u64 span = static_cast<u64>(hi - lo) + 1;
  return lo + static_cast<i64>(uniform(span));
}

double Rng::uniform01() {
  // 53 high bits -> double in [0,1).
  return static_cast<double>(next_u64() >> 11) * (1.0 / 9007199254740992.0);
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = 0.0;
  do {
    u1 = uniform01();
  } while (u1 <= 1e-300);
  double u2 = uniform01();
  double mag = std::sqrt(-2.0 * std::log(u1));
  double z0 = mag * std::cos(2.0 * M_PI * u2);
  double z1 = mag * std::sin(2.0 * M_PI * u2);
  cached_normal_ = z1;
  has_cached_normal_ = true;
  return z0;
}

double Rng::normal(double mean, double stddev) { return mean + stddev * normal(); }

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

std::vector<usize> Rng::sample_indices(usize n, usize k) {
  assert(k <= n);
  // Floyd's algorithm would avoid the O(n) init but k is usually ~n/constant
  // in our uses; partial Fisher-Yates is simple and exact.
  std::vector<usize> pool(n);
  for (usize i = 0; i < n; ++i) pool[i] = i;
  for (usize i = 0; i < k; ++i) {
    usize j = i + static_cast<usize>(uniform(n - i));
    std::swap(pool[i], pool[j]);
  }
  pool.resize(k);
  return pool;
}

u64 stable_hash64(std::string_view s) {
  u64 h = 0xcbf29ce484222325ULL;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ULL;
  }
  return h;
}

namespace {
u64 mix64(u64 z) {
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}
}  // namespace

u64 hash_combine(u64 a, u64 b) { return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 6) + (a >> 2))); }
u64 hash_combine(u64 a, u64 b, u64 c) { return hash_combine(hash_combine(a, b), c); }
u64 hash_combine(u64 a, u64 b, u64 c, u64 d) { return hash_combine(hash_combine(a, b, c), d); }

double hash_to_unit(u64 h) { return static_cast<double>(h >> 11) * (1.0 / 9007199254740992.0); }

}  // namespace dnnd::sys
