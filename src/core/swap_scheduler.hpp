// Swap scheduling analytics: builds the Fig.-6 timeline (pipelined step-4 /
// step-1 overlap vs. naive serial swaps) and computes the periodic schedule
// that guarantees every target row is refreshed inside the RowHammer window.
#pragma once

#include <string>
#include <vector>

#include "sys/energy_model.hpp"
#include "sys/types.hpp"

namespace dnnd::core {

/// One bus operation in a swap timeline.
struct TimelineOp {
  usize swap_index = 0;  ///< which swap this op belongs to
  u32 step = 0;          ///< paper step number 1..4
  Picoseconds start = 0;
  Picoseconds end = 0;
  std::string label;     ///< e.g. "copy target #2"
};

struct Timeline {
  std::vector<TimelineOp> ops;
  Picoseconds makespan = 0;

  /// AAPs issued (== ops.size()).
  [[nodiscard]] usize op_count() const { return ops.size(); }
};

/// Builds the timeline for `n_swaps` consecutive protection swaps.
/// Pipelined: step 4 of swap n doubles as step 1 of swap n+1, so each
/// steady-state swap costs 3 x t_aap (makespan = (3n + 1) x t_aap).
/// Serial: every swap runs all four steps (makespan = 4n x t_aap).
Timeline build_swap_timeline(usize n_swaps, Picoseconds t_aap, bool pipelined);

/// Periodic protection schedule: `n_targets` rows must each be swapped once
/// per hammer window (t_act * t_rh). Returns the per-target interval, or 0
/// when the budget is infeasible (more targets than swap slots).
Picoseconds swap_interval_for(usize n_targets, const sys::LatencyParams& timing, u32 t_rh);

/// Maximum number of target rows one bank can protect within the hammer
/// window: floor(window / t_swap) -- the paper's "maximum number of swap
/// operations".
u64 max_protected_rows(const sys::LatencyParams& timing, u32 t_rh);

}  // namespace dnnd::core
