// Common fixed-width aliases and physical-unit helpers used across the library.
#pragma once

#include <cstdint>
#include <cstddef>

namespace dnnd {

using u8 = std::uint8_t;
using u16 = std::uint16_t;
using u32 = std::uint32_t;
using u64 = std::uint64_t;
using i8 = std::int8_t;
using i16 = std::int16_t;
using i32 = std::int32_t;
using i64 = std::int64_t;
using usize = std::size_t;
using isize = std::ptrdiff_t;

/// All simulator timestamps and durations are integer picoseconds.
/// Picoseconds keep every DRAM timing parameter exactly representable
/// (tCK of DDR4-2400 is 833.33ps; we round to integer ps per parameter,
/// never per accumulation step).
using Picoseconds = i64;

namespace time_literals {
constexpr Picoseconds operator""_ps(unsigned long long v) { return static_cast<Picoseconds>(v); }
constexpr Picoseconds operator""_ns(unsigned long long v) { return static_cast<Picoseconds>(v) * 1000; }
constexpr Picoseconds operator""_us(unsigned long long v) { return static_cast<Picoseconds>(v) * 1000 * 1000; }
constexpr Picoseconds operator""_ms(unsigned long long v) { return static_cast<Picoseconds>(v) * 1000 * 1000 * 1000; }
constexpr Picoseconds operator""_s(unsigned long long v) { return static_cast<Picoseconds>(v) * 1000LL * 1000 * 1000 * 1000; }
}  // namespace time_literals

/// Convert picoseconds to floating-point convenience units (reporting only).
constexpr double ps_to_ns(Picoseconds t) { return static_cast<double>(t) / 1e3; }
constexpr double ps_to_us(Picoseconds t) { return static_cast<double>(t) / 1e6; }
constexpr double ps_to_ms(Picoseconds t) { return static_cast<double>(t) / 1e9; }
constexpr double ps_to_s(Picoseconds t) { return static_cast<double>(t) / 1e12; }

/// Energy bookkeeping unit: femtojoules (integer), so picojoule-scale DRAM
/// op energies stay exact.
using Femtojoules = i64;

constexpr double fj_to_pj(Femtojoules e) { return static_cast<double>(e) / 1e3; }
constexpr double fj_to_nj(Femtojoules e) { return static_cast<double>(e) / 1e6; }
constexpr double fj_to_uj(Femtojoules e) { return static_cast<double>(e) / 1e9; }
constexpr double fj_to_mj(Femtojoules e) { return static_cast<double>(e) / 1e12; }

}  // namespace dnnd
