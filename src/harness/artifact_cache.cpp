#include "harness/artifact_cache.hpp"

#include "models/model_zoo.hpp"

namespace dnnd::harness {

const nn::SplitDataset& ArtifactCache::dataset(DatasetKind kind) {
  DatasetEntry* entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = datasets_[static_cast<int>(kind)];
    if (!slot) slot = std::make_unique<DatasetEntry>();
    entry = slot.get();
  }
  std::lock_guard<std::mutex> lock(entry->mu);
  if (!entry->data) {
    entry->data = std::make_unique<nn::SplitDataset>(nn::make_synthetic(dataset_spec(kind)));
  }
  return *entry->data;
}

std::unique_ptr<nn::Model> ArtifactCache::build_model(const nn::SplitDataset& data,
                                                      const TrainSpec& spec) {
  if (spec.arch == "mlp") {
    const auto& s = data.spec;
    return models::make_test_mlp(s.channels * s.height * s.width, 24 * spec.width_mult,
                                 s.num_classes, spec.seed);
  }
  return models::make_by_name(spec.arch, data.spec.num_classes, spec.seed, spec.width_mult);
}

std::unique_ptr<nn::Model> ArtifactCache::trained_model(DatasetKind data_kind,
                                                        const TrainSpec& spec) {
  const nn::SplitDataset& data = dataset(data_kind);
  const std::string key = to_string(data_kind) + "|" + spec.arch + "|w" +
                          std::to_string(spec.width_mult) + "|e" + std::to_string(spec.epochs) +
                          "|s" + std::to_string(spec.seed);
  ModelEntry* entry;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto& slot = models_[key];
    if (!slot) slot = std::make_unique<ModelEntry>();
    entry = slot.get();
  }
  std::lock_guard<std::mutex> lock(entry->mu);
  if (!entry->ready) {
    auto model = build_model(data, spec);
    nn::TrainConfig cfg;
    cfg.epochs = spec.epochs;
    nn::train(*model, data, cfg);
    entry->state = model->save_state();
    entry->ready = true;
    // The just-trained instance already has the right weights; hand it out.
    return model;
  }
  auto model = build_model(data, spec);
  model->load_state(entry->state);
  return model;
}

}  // namespace dnnd::harness
