// DRAM substrate demo: command-level simulation, RowClone in-DRAM copy vs
// channel copy, RowHammer disturbance, and the refresh that prevents it.
#include <cstdio>

#include "rowhammer/attacker.hpp"

using namespace dnnd;

int main() {
  dram::DramConfig cfg = dram::DramConfig::sim_small();
  cfg.t_rh = 2000;
  dram::DramDevice dev(cfg);
  std::printf("device: %u banks x %u subarrays x %u rows x %uB rows (T_RH=%u)\n",
              cfg.geo.banks, cfg.geo.subarrays_per_bank, cfg.geo.rows_per_subarray,
              cfg.geo.row_bytes, cfg.t_rh);

  // --- basic commands ---
  std::vector<u8> payload(cfg.geo.row_bytes);
  for (usize i = 0; i < payload.size(); ++i) payload[i] = static_cast<u8>(i);
  dev.write_row({0, 0, 5}, payload);
  const auto readback = dev.read_row({0, 0, 5});
  std::printf("write+read row 5: %s, device time %.1f ns\n",
              readback == payload ? "OK" : "MISMATCH", ps_to_ns(dev.now()));

  // --- RowClone FPM: bulk in-DRAM copy in one AAP (90 ns) ---
  const Picoseconds before_copy = dev.now();
  dev.rowclone_fpm(0, 0, 5, 9);
  std::printf("RowClone FPM row 5 -> 9: %.0f ns, %s\n", ps_to_ns(dev.now() - before_copy),
              dev.read_row({0, 0, 9}) == payload ? "data OK" : "MISMATCH");

  // --- RowHammer: disturb neighbours past threshold ---
  rowhammer::HammerModelConfig hcfg;
  hcfg.p_vulnerable = 0.2;
  rowhammer::HammerModel hammer(dev, hcfg);
  rowhammer::HammerAttacker attacker(dev, sys::Rng(7));
  std::vector<u8> ones(cfg.geo.row_bytes, 0xFF);
  dev.write_row({0, 1, 20}, ones);
  auto result = attacker.double_sided({0, 1, 20}, 2 * cfg.t_rh);
  std::printf("double-sided hammer, %llu ACTs: %zu bit flips in the victim row\n",
              static_cast<unsigned long long>(result.activations), result.flips.size());
  for (usize i = 0; i < result.flips.size() && i < 3; ++i) {
    const auto& f = result.flips[i];
    std::printf("  flipped col %zu bit %u: 0x%02X -> 0x%02X\n", f.col, f.bit, f.before,
                f.after);
  }

  // --- the defense mechanism in miniature: refresh-by-copy beats hammering ---
  dev.write_row({0, 2, 20}, ones);
  u64 flips_before = hammer.flips_injected();
  const dram::RowAddr aggressors[2] = {{0, 2, 19}, {0, 2, 21}};
  for (int burst = 0; burst < 8; ++burst) {
    attacker.hammer(aggressors, cfg.t_rh / 4);       // hammer below threshold...
    dev.rowclone_fpm(0, 2, 20, cfg.geo.rows_per_subarray - 1);  // ...refresh victim by copy
  }
  std::printf("hammering 2x T_RH with periodic RowClone refresh: %llu flips (expected 0)\n",
              static_cast<unsigned long long>(hammer.flips_injected() - flips_before));

  std::printf("\nstats: %s\n", dev.stats().summary().c_str());
  return 0;
}
