#include <gtest/gtest.h>

#include <cmath>

#include "models/model_zoo.hpp"
#include "quant/bit_gradient.hpp"
#include "quant/quantizer.hpp"

namespace dnnd::quant {
namespace {

// ------------------------------------------------------------ bit helpers --

class AllCodes : public ::testing::TestWithParam<int> {};

TEST_P(AllCodes, FlipTwiceIsIdentity) {
  const i8 q = static_cast<i8>(GetParam());
  for (u32 bit = 0; bit < 8; ++bit) {
    EXPECT_EQ(flip_bit_value(flip_bit_value(q, bit), bit), q);
  }
}

TEST_P(AllCodes, FlipChangesValueByBitWeight) {
  const i8 q = static_cast<i8>(GetParam());
  for (u32 bit = 0; bit < 8; ++bit) {
    const i8 f = flip_bit_value(q, bit);
    const i32 delta = static_cast<i32>(f) - static_cast<i32>(q);
    const i32 expected = (get_bit(q, bit) ? -1 : 1) * bit_weight(bit);
    EXPECT_EQ(delta, expected) << "q=" << static_cast<int>(q) << " bit=" << bit;
  }
}

TEST_P(AllCodes, BitsReconstructValue) {
  const i8 q = static_cast<i8>(GetParam());
  i32 v = 0;
  for (u32 bit = 0; bit < 8; ++bit) {
    if (get_bit(q, bit)) v += bit_weight(bit);
  }
  EXPECT_EQ(v, static_cast<i32>(q));
}

INSTANTIATE_TEST_SUITE_P(TwosComplement, AllCodes, ::testing::Range(-128, 128));

TEST(BitWeight, SignBitIsNegative128) {
  EXPECT_EQ(bit_weight(7), -128);
  EXPECT_EQ(bit_weight(0), 1);
  EXPECT_EQ(bit_weight(6), 64);
}

TEST(BitLocation, KeyRoundtrip) {
  for (const BitLocation loc : {BitLocation{0, 0, 0}, BitLocation{5, 1234, 7},
                                BitLocation{100, 999999, 3}}) {
    EXPECT_EQ(BitLocation::from_key(loc.key()), loc);
  }
}

TEST(BitSkipSet, InsertContains) {
  BitSkipSet set;
  EXPECT_TRUE(set.empty());
  set.insert({1, 2, 3});
  EXPECT_TRUE(set.contains({1, 2, 3}));
  EXPECT_FALSE(set.contains({1, 2, 4}));
  EXPECT_EQ(set.size(), 1u);
  const auto v = set.to_vector();
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], (BitLocation{1, 2, 3}));
}

// --------------------------------------------------------- QuantizedModel --

class QuantFixture : public ::testing::Test {
 protected:
  QuantFixture() : model_(models::make_test_mlp(8, 6, 3, /*seed=*/42)), qm_(*model_) {}
  std::unique_ptr<nn::Model> model_;
  QuantizedModel qm_;
};

TEST_F(QuantFixture, LayersMatchQuantizableParams) {
  EXPECT_EQ(qm_.num_layers(), 2u);
  EXPECT_EQ(qm_.total_weights(), model_->weight_count());
  EXPECT_EQ(qm_.total_bits(), model_->weight_count() * 8);
}

TEST_F(QuantFixture, RoundtripErrorBoundedByHalfScale) {
  // Quantization happened at construction; compare the materialized weights
  // with a fresh float model of the same seed.
  auto fresh = models::make_test_mlp(8, 6, 3, 42);
  const auto fresh_params = fresh->quantizable_params();
  for (usize l = 0; l < qm_.num_layers(); ++l) {
    const auto& layer = qm_.layer(l);
    for (usize i = 0; i < layer.size(); ++i) {
      EXPECT_NEAR((*layer.value)[i], (*fresh_params[l].value)[i], layer.scale * 0.5 + 1e-6);
    }
  }
}

TEST_F(QuantFixture, ScaleCoversMaxAbs) {
  auto fresh = models::make_test_mlp(8, 6, 3, 42);
  const auto fresh_params = fresh->quantizable_params();
  for (usize l = 0; l < qm_.num_layers(); ++l) {
    EXPECT_NEAR(qm_.layer(l).scale, fresh_params[l].value->abs_max() / 127.0f, 1e-6);
  }
}

TEST_F(QuantFixture, FlipUpdatesCodeAndFloat) {
  const i8 before = qm_.get_q(0, 3);
  qm_.flip({0, 3, 7});
  const i8 after = qm_.get_q(0, 3);
  EXPECT_EQ(after, flip_bit_value(before, 7));
  EXPECT_FLOAT_EQ((*qm_.layer(0).value)[3], static_cast<float>(after) * qm_.layer(0).scale);
}

TEST_F(QuantFixture, MsbFlipIsLarge) {
  // The BFA's weapon: an MSB flip moves the weight by 128 quantization steps.
  const i8 before = qm_.get_q(1, 0);
  qm_.flip({1, 0, 7});
  const i32 delta = std::abs(static_cast<i32>(qm_.get_q(1, 0)) - static_cast<i32>(before));
  EXPECT_EQ(delta, 128);
}

TEST_F(QuantFixture, SnapshotRestoreRoundtrip) {
  const auto snap = qm_.snapshot();
  qm_.flip({0, 0, 7});
  qm_.flip({1, 2, 3});
  EXPECT_EQ(qm_.hamming_distance(snap), 2u);
  qm_.restore(snap);
  EXPECT_EQ(qm_.hamming_distance(snap), 0u);
  EXPECT_FLOAT_EQ((*qm_.layer(0).value)[0],
                  static_cast<float>(qm_.get_q(0, 0)) * qm_.layer(0).scale);
}

TEST_F(QuantFixture, SetQWritesThrough) {
  qm_.set_q(0, 1, -100);
  EXPECT_EQ(qm_.get_q(0, 1), -100);
  EXPECT_FLOAT_EQ((*qm_.layer(0).value)[1], -100.0f * qm_.layer(0).scale);
}

TEST_F(QuantFixture, MaterializeRewritesEverything) {
  (*qm_.layer(0).value)[0] = 999.0f;  // corrupt the float view
  qm_.materialize();
  EXPECT_FLOAT_EQ((*qm_.layer(0).value)[0],
                  static_cast<float>(qm_.get_q(0, 0)) * qm_.layer(0).scale);
}

// ------------------------------------------------------------ bit gradient --

TEST_F(QuantFixture, FlipGainSignSemantics) {
  auto& layer = qm_.layer(0);
  layer.grad->zero();
  (*layer.grad)[0] = 1.0f;  // dL/dw > 0: increasing w increases loss
  // A 0->1 flip on a positive-weight bit increases q -> positive gain.
  const i8 q = layer.q[0];
  for (u32 bit = 0; bit < 7; ++bit) {
    const double gain = flip_gain(layer, 0, bit);
    const double expected = (get_bit(q, bit) ? -1.0 : 1.0) * bit_weight(bit) * layer.scale;
    EXPECT_NEAR(gain, expected, 1e-9);
  }
}

TEST_F(QuantFixture, TopKMatchesBruteForce) {
  auto& layer = qm_.layer(0);
  sys::Rng rng(9);
  for (usize i = 0; i < layer.grad->size(); ++i) {
    (*layer.grad)[i] = static_cast<float>(rng.normal());
  }
  const BitSkipSet empty;
  const auto top = top_k_flips(layer, 0, 5, empty);
  ASSERT_LE(top.size(), 5u);
  // Brute force all (index, bit) gains.
  std::vector<double> all;
  for (usize i = 0; i < layer.size(); ++i) {
    for (u32 b = 0; b < 8; ++b) {
      const double g = flip_gain(layer, i, b);
      if (g > 0.0) all.push_back(g);
    }
  }
  std::sort(all.rbegin(), all.rend());
  ASSERT_GE(all.size(), top.size());
  for (usize i = 0; i < top.size(); ++i) {
    EXPECT_NEAR(top[i].estimated_gain, all[i], 1e-12) << "rank " << i;
  }
  // Sorted descending.
  for (usize i = 1; i < top.size(); ++i) {
    EXPECT_GE(top[i - 1].estimated_gain, top[i].estimated_gain);
  }
}

TEST_F(QuantFixture, TopKRespectsSkipSet) {
  auto& layer = qm_.layer(0);
  layer.grad->zero();
  (*layer.grad)[0] = 10.0f;  // dominant weight
  BitSkipSet skip;
  const auto first = top_k_flips(layer, 0, 1, skip);
  ASSERT_EQ(first.size(), 1u);
  skip.insert(first[0].loc);
  const auto second = top_k_flips(layer, 0, 1, skip);
  ASSERT_EQ(second.size(), 1u);
  EXPECT_FALSE(second[0].loc == first[0].loc);
}

TEST_F(QuantFixture, TopKOnlyPositiveGains) {
  auto& layer = qm_.layer(0);
  sys::Rng rng(10);
  for (usize i = 0; i < layer.grad->size(); ++i) {
    (*layer.grad)[i] = static_cast<float>(rng.normal());
  }
  const BitSkipSet empty;
  for (const auto& cand : top_k_flips(layer, 0, 20, empty)) {
    EXPECT_GT(cand.estimated_gain, 0.0);
  }
}

TEST_F(QuantFixture, ZeroGradientYieldsNoCandidates) {
  auto& layer = qm_.layer(0);
  layer.grad->zero();
  const BitSkipSet empty;
  EXPECT_TRUE(top_k_flips(layer, 0, 5, empty).empty());
}

}  // namespace
}  // namespace dnnd::quant
