// Fig. 8(a): time-to-break (days) of DNN-Defender vs SHADOW across RowHammer
// thresholds, plus the maximum number of BFAs defendable per refresh window.
#include "bench_util.hpp"
#include "core/security_model.hpp"

using namespace dnnd;

int main() {
  bench::banner("Fig. 8(a) -- Time-to-break and max defended BFAs vs T_RH",
                "paper Fig. 8(a); anchors 1180/894 days at T_RH=4k, gaps 71/142/286/572");
  core::SecurityModel model;
  sys::Table table({"T_RH", "max swaps/window", "max # BFA defended", "TTB DD (days)",
                    "TTB SHADOW (days)", "DD advantage (days)"});
  for (u32 t_rh : {1000u, 2000u, 4000u, 8000u}) {
    const auto p = model.analyze(t_rh);
    table.add_row({sys::fmt_count(t_rh), sys::fmt_count(p.max_swaps_per_window),
                   sys::fmt_count(p.max_bfa_defended),
                   sys::fmt(p.ttb_days_dd, 0), sys::fmt(p.ttb_days_shadow, 0),
                   sys::fmt(p.ttb_days_dd - p.ttb_days_shadow, 0)});
  }
  table.print();
  std::printf(
      "\nShape check (paper): DD outlasts SHADOW at every threshold; at T_RH=4k\n"
      "the attacker needs ~1180 days vs ~894 (DD protects 286 more days); the\n"
      "defendable-BFA count falls as 1/T_RH (55K/28K/14K/7K).\n");
  return 0;
}
