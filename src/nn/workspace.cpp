#include "nn/workspace.hpp"

namespace dnnd::nn {

Tensor& Workspace::slot(const void* owner, SlotKind kind, usize idx) {
  const Key key{owner, static_cast<u32>(kind), static_cast<u64>(idx)};
  auto it = slots_.find(key);
  if (it == slots_.end()) {
    it = slots_.emplace(key, Tensor{}).first;
    alloc_events_.fetch_add(1, std::memory_order_relaxed);
  }
  return it->second;
}

void Workspace::reserve_team(usize teams) {
  if (col_.size() < teams) {
    col_.resize(teams);
    alloc_events_.fetch_add(1, std::memory_order_relaxed);
  }
  if (pack_.size() < teams) {
    pack_.resize(teams);
    alloc_events_.fetch_add(1, std::memory_order_relaxed);
  }
  if (qa_.size() < teams) {
    qa_.resize(teams);
    alloc_events_.fetch_add(1, std::memory_order_relaxed);
  }
  if (qx_.size() < teams) {
    qx_.resize(teams);
    alloc_events_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace dnnd::nn
