#include "nn/reference.hpp"

#include <cassert>

namespace dnnd::nn::reference {

void dense_forward(const Tensor& x, const Tensor& weight, const Tensor& bias, Tensor& y) {
  const usize n = x.dim(0), in = x.dim(1), out = weight.dim(0);
  assert(y.dim(0) == n && y.dim(1) == out);
  for (usize i = 0; i < n; ++i) {
    const float* xi = x.data() + i * in;
    for (usize o = 0; o < out; ++o) {
      const float* w = weight.data() + o * in;
      float acc = bias[o];
      for (usize j = 0; j < in; ++j) acc += w[j] * xi[j];
      y.at2(i, o) = acc;
    }
  }
}

void conv2d_forward(const Tensor& x, const Tensor& weight, const Tensor& bias, usize stride,
                    usize pad, Tensor& y) {
  const usize n = x.dim(0), in_ch = x.dim(1), h = x.dim(2), w = x.dim(3);
  const usize out_ch = weight.dim(0), k = weight.dim(2);
  const usize oh = y.dim(2), ow = y.dim(3);
  assert(y.dim(0) == n && y.dim(1) == out_ch && weight.dim(1) == in_ch);
  for (usize b = 0; b < n; ++b) {
    for (usize oc = 0; oc < out_ch; ++oc) {
      for (usize i = 0; i < oh; ++i) {
        for (usize j = 0; j < ow; ++j) {
          float acc = bias[oc];
          for (usize ic = 0; ic < in_ch; ++ic) {
            for (usize ki = 0; ki < k; ++ki) {
              const isize hi = static_cast<isize>(i * stride + ki) - static_cast<isize>(pad);
              if (hi < 0 || hi >= static_cast<isize>(h)) continue;
              for (usize kj = 0; kj < k; ++kj) {
                const isize wj = static_cast<isize>(j * stride + kj) - static_cast<isize>(pad);
                if (wj < 0 || wj >= static_cast<isize>(w)) continue;
                acc += weight.at4(oc, ic, ki, kj) *
                       x.at4(b, ic, static_cast<usize>(hi), static_cast<usize>(wj));
              }
            }
          }
          y.at4(b, oc, i, j) = acc;
        }
      }
    }
  }
}

}  // namespace dnnd::nn::reference
