#include "attack/bfa.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace dnnd::attack {

double probe_loss_key(double loss) {
  return std::isnan(loss) ? std::numeric_limits<double>::infinity() : loss;
}

ProgressiveBitSearch::ProgressiveBitSearch(quant::QuantizedModel& qm, nn::Tensor attack_x,
                                           std::vector<u32> attack_y, BfaConfig cfg)
    : qm_(qm), attack_x_(std::move(attack_x)), attack_y_(std::move(attack_y)), cfg_(cfg) {
  // True-integer regime: every probe forward in run()/step() goes through the
  // int8 path, so the activation scales must be frozen before the first
  // measurement. No-op in the default float regime.
  qm_.ensure_int8_calibrated(attack_x_);
  // Class count from the model's output dimension, NOT the labels present in
  // the batch: a batch that happens to omit the top classes would inflate the
  // random-guess stop threshold and cut the search short. The forward also
  // warms the activation cache the first step() reuses.
  num_classes_ = qm_.model().forward_cached(attack_x_, /*train=*/false).dim(1);
}

double ProgressiveBitSearch::stop_threshold() const {
  return cfg_.stop_accuracy > 0.0 ? cfg_.stop_accuracy
                                  : 1.05 / static_cast<double>(num_classes_);
}

std::optional<FlipRecord> ProgressiveBitSearch::step(const quant::BitSkipSet& skip) {
  nn::Model& model = qm_.model();
  // (1) gradients of the inference loss on the attack batch. The forward
  // half is incremental: when the previous step left a cache on this batch,
  // only layers at/beyond the earliest flip/probe re-run (byte-identical to
  // a full pass). It also (re)populates the activation cache every candidate
  // probe below re-evaluates incrementally from its flip layer onward.
  model.zero_grad();
  const double base_loss = model.loss_and_grad_incremental(attack_x_, attack_y_).loss;

  // Effective exclusion: caller's skip set plus everything this search has
  // already flipped (BFA never undoes its own flips).
  quant::BitSkipSet exclude = skip;
  for (const auto& loc : flipped_.to_vector()) exclude.insert(loc);

  // (2) intra-layer search: per-layer top-k candidates by first-order gain
  struct LayerBest {
    usize layer;
    std::vector<quant::FlipCandidate> cands;
  };
  std::vector<LayerBest> per_layer;
  for (usize l = 0; l < qm_.num_layers(); ++l) {
    auto cands = quant::top_k_flips(qm_.layer(l), l, cfg_.candidates_per_layer, exclude);
    if (!cands.empty()) per_layer.push_back({l, std::move(cands)});
  }
  if (per_layer.empty()) return std::nullopt;

  // (3) inter-layer search: restrict to the most promising layers, then
  // evaluate candidates' actual loss by flip / forward / unflip.
  if (cfg_.layers_evaluated > 0 && per_layer.size() > cfg_.layers_evaluated) {
    std::partial_sort(per_layer.begin(),
                      per_layer.begin() + static_cast<isize>(cfg_.layers_evaluated),
                      per_layer.end(), [](const LayerBest& a, const LayerBest& b) {
                        return a.cands.front().estimated_gain >
                               b.cands.front().estimated_gain;
                      });
    per_layer.resize(cfg_.layers_evaluated);
  }

  std::optional<quant::BitLocation> best_loc;
  double best_loss = base_loss;
  double best_accuracy = 0.0;
  for (const LayerBest& lb : per_layer) {
    for (const quant::FlipCandidate& cand : lb.cands) {
      // flip / incremental forward / unflip: only layers at and beyond the
      // flipped tensor are recomputed; loss and accuracy both come from the
      // single resulting logits tensor.
      qm_.flip(cand.loc);
      const nn::Tensor& logits =
          model.forward_from(qm_.layer(cand.loc.layer).net_layer, /*train=*/false);
      const nn::BatchEval ev = nn::evaluate_logits(logits, attack_y_);
      qm_.flip(cand.loc);  // revert
      // Ordering through probe_loss_key: a probe whose loss saturated to NaN
      // ranks as +inf (maximally destructive) instead of comparing false and
      // vanishing. best_loss holds the normalized key throughout.
      if (probe_loss_key(ev.loss) > probe_loss_key(best_loss)) {
        best_loss = probe_loss_key(ev.loss);
        best_loc = cand.loc;
        best_accuracy = ev.accuracy;
      }
    }
  }
  bool fallback = false;
  if (!best_loc.has_value()) {
    // No evaluated candidate raised the loss: fall back to the globally best
    // first-order estimate (greedy escape; progress is guaranteed because
    // committed bits are never revisited).
    const quant::FlipCandidate* best_est = nullptr;
    for (const LayerBest& lb : per_layer) {
      if (best_est == nullptr || lb.cands.front().estimated_gain > best_est->estimated_gain) {
        best_est = &lb.cands.front();
      }
    }
    best_loc = best_est->loc;
    fallback = true;
  }

  // (4) commit
  qm_.flip(*best_loc);
  flipped_.insert(*best_loc);
  FlipRecord rec;
  rec.loc = *best_loc;
  rec.loss_before = base_loss;
  rec.fallback = fallback;
  if (fallback) {
    const nn::Tensor& logits =
        model.forward_from(qm_.layer(best_loc->layer).net_layer, /*train=*/false);
    const nn::BatchEval ev = nn::evaluate_logits(logits, attack_y_);
    best_loss = probe_loss_key(ev.loss);
    best_accuracy = ev.accuracy;
  }
  rec.loss_after = best_loss;
  rec.batch_accuracy_after = best_accuracy;
  if (cfg_.verbose) {
    std::printf("[bfa] flip layer=%zu idx=%zu bit=%u loss %.4f -> %.4f acc=%.3f\n",
                rec.loc.layer, rec.loc.index, rec.loc.bit, rec.loss_before, rec.loss_after,
                rec.batch_accuracy_after);
  }
  return rec;
}

BfaResult ProgressiveBitSearch::run(const quant::BitSkipSet& skip) {
  BfaResult result;
  result.initial_batch_accuracy = qm_.model().evaluate_batch(attack_x_, attack_y_).accuracy;
  result.final_batch_accuracy = result.initial_batch_accuracy;
  const double stop = stop_threshold();
  for (usize i = 0; i < cfg_.max_flips; ++i) {
    auto rec = step(skip);
    if (!rec.has_value()) break;
    result.final_batch_accuracy = rec->batch_accuracy_after;
    result.flips.push_back(*rec);
    if (rec->batch_accuracy_after <= stop) {
      result.reached_stop = true;
      break;
    }
  }
  return result;
}

}  // namespace dnnd::attack
