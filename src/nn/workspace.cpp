#include "nn/workspace.hpp"

namespace dnnd::nn {

Tensor& Workspace::slot(const void* owner, SlotKind kind, usize idx) {
  const Key key{owner, static_cast<u32>(kind), static_cast<u64>(idx)};
  auto it = slots_.find(key);
  if (it == slots_.end()) {
    it = slots_.emplace(key, Tensor{}).first;
    ++alloc_events_;
  }
  return it->second;
}

}  // namespace dnnd::nn
