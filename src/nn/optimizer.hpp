// SGD with momentum and weight decay -- sufficient to train every model in
// the zoo to >85-95% on the synthetic datasets within seconds.
#pragma once

#include <vector>

#include "nn/model.hpp"

namespace dnnd::nn {

struct SgdConfig {
  double lr = 0.05;
  double momentum = 0.9;
  double weight_decay = 5e-4;
};

class SgdOptimizer {
 public:
  SgdOptimizer(Model& model, SgdConfig cfg);

  /// Applies one update from the currently-accumulated gradients.
  void step();

  /// Overrides the learning rate (for schedules).
  void set_lr(double lr) { cfg_.lr = lr; }
  [[nodiscard]] double lr() const { return cfg_.lr; }

 private:
  Model& model_;
  SgdConfig cfg_;
  std::vector<Tensor> velocity_;  ///< parallel to model_.params()
};

}  // namespace dnnd::nn
