#include "rowhammer/attacker.hpp"

#include <array>
#include <cassert>

namespace dnnd::rowhammer {

using dram::RowAddr;

HammerAttacker::HammerAttacker(dram::DramDevice& device, sys::Rng rng)
    : device_(device), rng_(rng) {}

void HammerAttacker::hammer(std::span<const RowAddr> aggressors, u64 n_acts) {
  assert(!aggressors.empty());
  for (u64 i = 0; i < n_acts; ++i) {
    device_.activate(aggressors[i % aggressors.size()]);
    if (post_act_) post_act_();
  }
}

HammerResult HammerAttacker::run_campaign(const RowAddr& victim,
                                          std::span<const RowAddr> aggressors, u64 max_acts) {
  const std::vector<u8> before(device_.peek_row(victim).begin(), device_.peek_row(victim).end());
  const Picoseconds t0 = device_.now();
  hammer(aggressors, max_acts);
  HammerResult result;
  result.activations = max_acts;
  result.elapsed = device_.now() - t0;
  const auto after = device_.peek_row(victim);
  for (usize col = 0; col < before.size(); ++col) {
    if (before[col] == after[col]) continue;
    const u8 diff = before[col] ^ after[col];
    for (u32 bit = 0; bit < 8; ++bit) {
      if ((diff >> bit) & 1) {
        result.flips.push_back({col, bit, before[col], after[col]});
      }
    }
  }
  return result;
}

HammerResult HammerAttacker::single_sided(const RowAddr& victim, u64 max_acts) {
  const auto& geo = device_.config().geo;
  RowAddr aggressor = victim;
  if (victim.row + 1 < geo.rows_per_subarray) {
    aggressor.row = victim.row + 1;
  } else {
    assert(victim.row > 0);
    aggressor.row = victim.row - 1;
  }
  // The dummy row forces row-buffer misses; pick it in another subarray of
  // the same bank so it does not disturb the victim's subarray.
  RowAddr dummy{victim.bank, (victim.subarray + 1) % geo.subarrays_per_bank,
                static_cast<u32>(rng_.uniform(geo.rows_per_subarray))};
  const std::array<RowAddr, 2> aggressors{aggressor, dummy};
  return run_campaign(victim, aggressors, max_acts);
}

HammerResult HammerAttacker::double_sided(const RowAddr& victim, u64 max_acts) {
  const auto& geo = device_.config().geo;
  if (victim.row == 0 || victim.row + 1 >= geo.rows_per_subarray) {
    return single_sided(victim, max_acts);
  }
  const std::array<RowAddr, 2> aggressors{RowAddr{victim.bank, victim.subarray, victim.row - 1},
                                          RowAddr{victim.bank, victim.subarray, victim.row + 1}};
  return run_campaign(victim, aggressors, max_acts);
}

std::vector<TemplateEntry> HammerAttacker::template_rows(u32 bank, u32 subarray, u32 row_begin,
                                                         u32 row_end, u64 acts_per_pattern) {
  const auto& geo = device_.config().geo;
  assert(row_end <= geo.rows_per_subarray);
  std::vector<TemplateEntry> found;
  std::vector<u8> ones(geo.row_bytes, 0xFF);
  std::vector<u8> zeros(geo.row_bytes, 0x00);
  for (u32 r = row_begin; r < row_end; ++r) {
    const RowAddr victim{bank, subarray, r};
    const std::vector<u8> saved(device_.peek_row(victim).begin(),
                                device_.peek_row(victim).end());
    // Pattern 1: all ones -> discovers true-cells (1->0).
    device_.write_row(victim, ones);
    auto res = double_sided(victim, acts_per_pattern);
    for (const auto& f : res.flips) {
      found.push_back({victim, f.col, f.bit, /*one_to_zero=*/true});
    }
    // Pattern 2: all zeros -> discovers anti-cells (0->1).
    device_.write_row(victim, zeros);
    res = double_sided(victim, acts_per_pattern);
    for (const auto& f : res.flips) {
      found.push_back({victim, f.col, f.bit, /*one_to_zero=*/false});
    }
    device_.write_row(victim, saved);
  }
  return found;
}

}  // namespace dnnd::rowhammer
