// Deterministic synthetic image-classification datasets.
//
// The paper evaluates on CIFAR-10 and ImageNet, which are unavailable
// offline; DESIGN.md documents the substitution. Each class is a smooth
// random template (low-frequency pattern upsampled bilinearly); samples are
// amplitude-jittered, spatially-shifted, noisy draws of their class template.
// Small conv nets reach >90% accuracy on these in seconds of single-core
// training, while remaining non-trivial (noise + shift defeat nearest-mean
// shortcuts), so BFA's loss landscape dynamics are preserved.
#pragma once

#include <vector>

#include "nn/tensor.hpp"

namespace dnnd::nn {

/// Generation parameters for a synthetic dataset.
struct SynthSpec {
  usize num_classes = 10;
  usize train_per_class = 200;
  usize test_per_class = 40;
  usize channels = 3;
  usize height = 12;
  usize width = 12;
  double noise = 2.2;             ///< additive Gaussian noise stddev
  double amplitude_jitter = 0.2;  ///< sample amplitude in [1-j, 1+j]
  u32 max_shift = 1;              ///< uniform spatial shift in [-s, s]
  u64 seed = 42;

  /// CIFAR-10-like stand-in: 10 classes.
  static SynthSpec cifar10_like();
  /// ImageNet-like stand-in: more classes, slightly noisier.
  static SynthSpec imagenet_like();
};

/// A labelled image set, images in one NCHW tensor.
struct Dataset {
  Tensor images;            ///< {N, C, H, W}
  std::vector<u32> labels;  ///< N entries in [0, num_classes)
  usize num_classes = 0;

  [[nodiscard]] usize size() const { return labels.size(); }

  /// Copies the selected samples into a batch tensor + label vector.
  [[nodiscard]] std::pair<Tensor, std::vector<u32>> gather(
      const std::vector<usize>& indices) const;

  /// gather() into caller-owned storage: `batch` is resized to
  /// {indices.size(), C, H, W} (capacity is monotonic, so a reused batch
  /// tensor stops allocating once it has seen the largest batch) and `y` to
  /// indices.size(). The serving loop forms thousands of small batches; this
  /// keeps the per-batch heap traffic out of the latency path.
  void gather_into(const std::vector<usize>& indices, Tensor& batch,
                   std::vector<u32>& y) const;

  /// First `n` samples (deterministic "sample batch" for attacks, mirroring
  /// the paper's 128-image attack batch).
  [[nodiscard]] std::pair<Tensor, std::vector<u32>> head(usize n) const;
};

/// Train/test split produced by one generation pass.
struct SplitDataset {
  Dataset train;
  Dataset test;
  SynthSpec spec;
};

/// Generates the dataset for `spec` (fully deterministic in spec.seed).
SplitDataset make_synthetic(const SynthSpec& spec);

}  // namespace dnnd::nn
