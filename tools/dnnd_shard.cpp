// dnnd_shard: sharded, resumable campaign runs over a shared run directory.
//
// The grid (tiny baseline grid with --tiny, else the DNND_GRID_* env axes --
// identical to bench_grid's) is deterministically partitioned into k-of-n
// interleaved shards. Each `run` worker sweeps its shard and atomically
// checkpoints every finished cell as <dir>/cells/<id>.json; `--resume` diffs
// the checkpoints against the shard and re-runs only the remainder, so a
// killed worker loses at most the cells in flight. `merge` stitches all
// cells back into one campaign document, byte-identical to a single-process
// bench_grid sweep of the same grid -- gate it with dnnd_diff at zero
// tolerance exactly like a direct run.
//
// Usage:
//   dnnd_shard run    --dir DIR [--shard K/N] [--resume] [--tiny]
//   dnnd_shard merge  --dir DIR [--tiny] [--out FILE]
//   dnnd_shard status --dir DIR [--tiny]
//
// Exit codes: 0 = success, 1 = failed scenarios / incomplete run,
//             2 = usage or I/O error.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "harness/campaign.hpp"
#include "harness/registry.hpp"
#include "harness/shard.hpp"

using namespace dnnd;

namespace {

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s run    --dir DIR [--shard K/N] [--resume] [--tiny]\n"
               "       %s merge  --dir DIR [--tiny] [--out FILE]\n"
               "       %s status --dir DIR [--tiny]\n"
               "\n"
               "Sharded grid sweeps over a shared run directory. The grid is the tiny\n"
               "CI baseline grid with --tiny, else the DNND_GRID_* env axes (same as\n"
               "bench_grid; every invocation against one DIR must use the same grid).\n"
               "  run     sweep shard K of N (default 1/1), checkpointing each cell\n"
               "          atomically to DIR/cells/; --resume skips checkpointed cells\n"
               "  merge   stitch all cells into one campaign JSON (byte-identical to\n"
               "          the single-process sweep) on stdout or --out FILE\n"
               "  status  report checkpointed vs pending cells\n"
               "Worker threads come from DNND_THREADS; DNND_BENCH_SCALE=small shrinks\n"
               "the non-tiny grid's budgets.\n",
               argv0, argv0, argv0);
  return 2;
}

bool small_scale() {
  const char* v = std::getenv("DNND_BENCH_SCALE");
  return v != nullptr && std::string(v) == "small";
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage(argv[0]);
  const std::string mode = argv[1];
  if (mode != "run" && mode != "merge" && mode != "status") {
    std::fprintf(stderr, "%s: unknown mode '%s'\n", argv[0], mode.c_str());
    return usage(argv[0]);
  }

  std::string dir;
  std::string shard_spec = "1/1";
  std::string out_path;
  bool resume = false;
  bool tiny = false;
  for (int i = 2; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next_value = [&]() -> const char* { return i + 1 < argc ? argv[++i] : nullptr; };
    if (arg == "--dir") {
      const char* v = next_value();
      if (v == nullptr || v[0] == '\0') return usage(argv[0]);
      dir = v;
    } else if (arg == "--shard" && mode == "run") {
      const char* v = next_value();
      if (v == nullptr) return usage(argv[0]);
      shard_spec = v;
    } else if (arg == "--resume" && mode == "run") {
      resume = true;
    } else if (arg == "--out" && mode == "merge") {
      const char* v = next_value();
      if (v == nullptr || v[0] == '\0') return usage(argv[0]);
      out_path = v;
    } else if (arg == "--tiny") {
      tiny = true;
    } else {
      std::fprintf(stderr, "%s %s: unknown argument '%s'\n", argv[0], mode.c_str(),
                   arg.c_str());
      return usage(argv[0]);
    }
  }
  if (dir.empty()) {
    std::fprintf(stderr, "%s %s: --dir is required\n", argv[0], mode.c_str());
    return usage(argv[0]);
  }
  if (const char* v = std::getenv("DNND_GRID"); v != nullptr && std::string(v) == "tiny") {
    tiny = true;
  }

  try {
    const auto grid = harness::grid_from_env(tiny, small_scale());
    const harness::CellCheckpointStore store(dir);

    if (mode == "status") {
      const auto pending = harness::pending_scenarios(store, grid);
      std::printf("[shard] %s: %zu/%zu cells checkpointed, %zu pending\n", dir.c_str(),
                  grid.size() - pending.size(), grid.size(), pending.size());
      for (const auto& sc : pending) std::printf("  pending %s\n", sc.id.c_str());
      return 0;
    }

    if (mode == "merge") {
      const auto merged = harness::merge_cells(store, grid);
      if (out_path.empty()) {
        std::printf("%s\n", merged.json.c_str());
      } else {
        std::ofstream out(out_path, std::ios::binary | std::ios::trunc);
        if (!out) throw std::runtime_error("cannot open " + out_path + " for writing");
        out << merged.json << "\n";
        if (!out) throw std::runtime_error("write failed: " + out_path);
        std::fprintf(stderr, "[shard] merged %zu cells -> %s\n",
                     merged.campaign.results.size(), out_path.c_str());
      }
      usize failures = 0;
      for (const auto& r : merged.campaign.results) {
        if (!r.ok) {
          std::fprintf(stderr, "[shard] FAILED %s: %s\n", r.id.c_str(), r.error.c_str());
          ++failures;
        }
      }
      return failures == 0 ? 0 : 1;
    }

    // mode == "run"
    const auto shard = harness::parse_shard_spec(shard_spec);
    auto cells = harness::shard_scenarios(grid, shard);
    const usize owned = cells.size();
    if (resume) cells = harness::pending_scenarios(store, cells);
    std::fprintf(stderr, "[shard] %zu/%zu: %zu of %zu owned cells to run (%zu grid total)\n",
                 shard.index + 1, shard.count, cells.size(), owned, grid.size());
    if (cells.empty()) {
      std::fprintf(stderr, "[shard] nothing to do\n");
      return 0;
    }

    harness::CampaignConfig cfg;
    cfg.threads = harness::env_threads();
    cfg.verbose = true;
    cfg.on_result = [&store](const harness::ScenarioResult& r) { store.write_cell(r); };
    harness::CampaignRunner runner(cfg);
    const auto campaign = runner.run(cells);

    usize failures = 0;
    for (const auto& r : campaign.results) {
      if (!r.ok) {
        std::fprintf(stderr, "[shard] FAILED %s: %s\n", r.id.c_str(), r.error.c_str());
        ++failures;
      }
    }
    std::fprintf(stderr, "[shard] %zu cells checkpointed to %s in %.1fs\n",
                 campaign.results.size(), store.run_dir().c_str(), campaign.total_seconds);
    return failures == 0 ? 0 : 1;
  } catch (const std::invalid_argument& e) {
    std::fprintf(stderr, "dnnd_shard: %s\n", e.what());
    return usage(argv[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "dnnd_shard: %s\n", e.what());
    // An incomplete merge is a state the caller can fix (run/resume the
    // missing shards); everything else is operational.
    return std::string(e.what()).find("incomplete run") != std::string::npos ? 1 : 2;
  }
}
