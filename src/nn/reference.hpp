// Retained naive reference kernels: verbatim copies of the original
// hand-rolled Dense/Conv2d forward loops that the GEMM engine replaced.
//
// They exist for two reasons: (1) tests/test_gemm.cpp property-checks the
// lowered GEMM/im2col path against them for bitwise-identical outputs over
// randomized shapes, and (2) gemm::set_force_naive(true) routes the layers
// back onto them so bench_inference can measure an honest naive-vs-engine
// speedup on the same binary.
#pragma once

#include "nn/tensor.hpp"

namespace dnnd::nn::reference {

/// y[i,o] = bias[o] + sum_j weight[o,j] * x[i,j]. `y` must be {N, out}.
void dense_forward(const Tensor& x, const Tensor& weight, const Tensor& bias, Tensor& y);

/// NCHW convolution, square kernel. `y` must be pre-sized {N, out_ch, oh, ow}.
void conv2d_forward(const Tensor& x, const Tensor& weight, const Tensor& bias, usize stride,
                    usize pad, Tensor& y);

}  // namespace dnnd::nn::reference
