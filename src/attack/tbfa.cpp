#include "attack/tbfa.hpp"

#include <cstdio>
#include <stdexcept>
#include <string>

namespace dnnd::attack {

double TbfaAttack::stealth_weight() const {
  return cfg_.variant == TbfaVariant::kStealthy ? cfg_.stealth_weight : 0.0;
}

TbfaAttack::TbfaAttack(quant::QuantizedModel& qm, nn::Tensor attack_x,
                       std::vector<u32> attack_y, TbfaConfig cfg)
    : cfg_(cfg),
      source_(cfg.variant == TbfaVariant::kNTo1 ? nn::kAllSources : cfg.source),
      objective_(source_, cfg.target, stealth_weight(),
                 cfg.variant == TbfaVariant::kStealthy, cfg.stealth_tolerance),
      // The engine's preamble is the shared contract: freeze int8 activation
      // scales (no-op in the default float regime) and warm the cache with
      // one clean forward the validation below reads the class count from.
      engine_(qm, std::move(attack_x), std::move(attack_y), objective_,
              {cfg.candidates_per_layer, cfg.layers_evaluated}) {
  const usize num_classes = engine_.num_classes();
  if (cfg_.target >= num_classes) {
    throw std::invalid_argument("tbfa: target class " + std::to_string(cfg_.target) +
                                " out of range (model has " +
                                std::to_string(num_classes) + " classes)");
  }
  if (cfg_.variant != TbfaVariant::kNTo1) {
    if (cfg_.source >= num_classes) {
      throw std::invalid_argument("tbfa: source class " + std::to_string(cfg_.source) +
                                  " out of range (model has " +
                                  std::to_string(num_classes) + " classes)");
    }
    if (cfg_.source == cfg_.target) {
      throw std::invalid_argument("tbfa: source and target class must differ (both " +
                                  std::to_string(cfg_.source) + ")");
    }
  }
  // Clean measurement from the warm-up logits; the baseline anchors both the
  // result's initial ASR and the stealthy admission predicate.
  nn::PerClassEval clean;
  nn::evaluate_logits_per_class(engine_.clean_logits(), engine_.y(), source_, cfg_.target,
                                clean);
  clean_asr_ = clean.attack_success_rate();
  clean_other_acc_ = clean.other_accuracy();
  objective_.set_stealth_baseline(clean_other_acc_);
}

std::optional<TbfaFlip> TbfaAttack::step(const quant::BitSkipSet& skip) {
  auto es = engine_.step(skip);
  if (!es.has_value()) return std::nullopt;
  TbfaFlip best;
  best.loc = es->loc;
  best.loss_before = es->objective_before;
  best.loss_after = es->objective_after;
  // The probe measurements ARE the post-commit measurements (committing
  // restores the exact probed state).
  best.asr_after = es->best.asr;
  best.other_acc_after = es->best.other_accuracy;
  if (cfg_.verbose) {
    std::printf("[tbfa] flip layer=%zu idx=%zu bit=%u loss %.4f -> %.4f asr=%.3f other=%.3f\n",
                best.loc.layer, best.loc.index, best.loc.bit, best.loss_before,
                best.loss_after, best.asr_after, best.other_acc_after);
  }
  return best;
}

TbfaResult TbfaAttack::run(const quant::BitSkipSet& skip) {
  TbfaResult result;
  result.initial_asr = clean_asr_;
  result.initial_other_acc = clean_other_acc_;
  result.final_asr = clean_asr_;
  result.final_other_acc = clean_other_acc_;
  if (clean_asr_ >= cfg_.stop_asr) {
    result.reached_stop = true;  // nothing to do: the model already complies
    return result;
  }
  for (usize i = 0; i < cfg_.max_flips; ++i) {
    auto rec = step(skip);
    if (!rec.has_value()) break;
    result.final_asr = rec->asr_after;
    result.final_other_acc = rec->other_acc_after;
    result.flips.push_back(*rec);
    if (rec->asr_after >= cfg_.stop_asr) {
      result.reached_stop = true;
      break;
    }
  }
  return result;
}

}  // namespace dnnd::attack
