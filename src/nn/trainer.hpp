// Mini-batch SGD training loop and batched evaluation.
#pragma once

#include "nn/dataset.hpp"
#include "nn/model.hpp"
#include "nn/optimizer.hpp"

namespace dnnd::nn {

struct TrainConfig {
  usize epochs = 8;
  usize batch_size = 32;
  SgdConfig sgd{};
  double lr_decay = 0.5;      ///< multiply lr by this ...
  usize decay_every = 3;      ///< ... every this many epochs
  u64 shuffle_seed = 7;
  bool verbose = false;
};

struct TrainReport {
  std::vector<double> epoch_loss;
  double train_accuracy = 0.0;
  double test_accuracy = 0.0;
};

/// Trains `model` on `data.train`, reports final train/test accuracy.
TrainReport train(Model& model, const SplitDataset& data, const TrainConfig& cfg);

/// Batched accuracy over a dataset (bounds activation memory).
double evaluate(Model& model, const Dataset& data, usize batch_size = 128);

/// Batched mean loss over a dataset.
double evaluate_loss(Model& model, const Dataset& data, usize batch_size = 128);

}  // namespace dnnd::nn
