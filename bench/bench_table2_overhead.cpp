// Table 2: hardware overhead of RowHammer mitigation frameworks on a
// 32 GB / 16-bank DDR4 device.
#include "bench_util.hpp"
#include "defense/overhead_model.hpp"

using namespace dnnd;

int main() {
  bench::banner("Table 2 -- Hardware overhead of RH mitigation frameworks",
                "paper Table 2 (32GB, 16-bank DDR4)");
  sys::Table table({"Framework", "Involved memory", "Capacity overhead", "Area overhead",
                    "Needs fast mem"});
  for (const auto& e : defense::overhead_table(dram::DramConfig::paper_32gb())) {
    table.add_row({e.framework, e.involved_memory, e.capacity_detail, e.area_overhead,
                   e.needs_fast_memory() ? "yes" : "no"});
  }
  table.print();
  std::printf(
      "\nShape check (paper): DNN-Defender is the only framework with zero\n"
      "capacity overhead and no SRAM/CAM requirement; counter-based designs\n"
      "pay MBs of fast storage, swap-based ones MBs of DRAM.\n");
  return 0;
}
