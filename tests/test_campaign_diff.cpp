#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "harness/campaign.hpp"
#include "harness/campaign_diff.hpp"
#include "harness/sink.hpp"
#include "sys/json.hpp"

namespace dnnd::harness {
namespace {

namespace fs = std::filesystem;

ScenarioResult make_result(const std::string& id, double clean, double post,
                           const std::string& flips) {
  ScenarioResult r;
  r.id = id;
  r.label = id;
  r.model = "mlp";
  r.defense = "none";
  r.attack = "bfa";
  r.ok = true;
  r.clean_accuracy = clean;
  r.post_accuracy = post;
  r.flips = flips;
  return r;
}

CampaignResult make_campaign() {
  CampaignResult c;
  c.results.push_back(make_result("a/one", 0.95, 0.30, ">12"));
  c.results.push_back(make_result("a/two", 0.95, 0.80, "8 (3 landed)"));
  return c;
}

TEST(LeadingFlipCount, ParsesPaperStyleStrings) {
  EXPECT_EQ(leading_flip_count(">80"), 80);
  EXPECT_EQ(leading_flip_count("30 (0 landed)"), 30);
  EXPECT_EQ(leading_flip_count("12"), 12);
  EXPECT_EQ(leading_flip_count(""), -1);
  EXPECT_EQ(leading_flip_count("ERROR: boom"), -1);
}

TEST(LeadingFlipCount, RejectsMalformedCountsInsteadOfPartialParsing) {
  // The old strtoll call had no end pointer or overflow check: "12x" parsed
  // as 12 and a wrapped 20-digit count as some small number, both sailing
  // through the gate. Malformed must mean -1, never a plausible value.
  EXPECT_EQ(leading_flip_count("12x"), -1);             // trailing garbage
  EXPECT_EQ(leading_flip_count("12(3 landed)"), -1);    // annotation without space
  EXPECT_EQ(leading_flip_count("99999999999999999999999999"), -1);  // i64 overflow
  EXPECT_EQ(leading_flip_count(">"), -1);
  EXPECT_EQ(leading_flip_count("12 (3 landed)"), 12);   // canonical annotation still fine
}

TEST(CampaignDiff, UnparseableFlipsOnASuccessfulScenarioFailsLoudly) {
  // Even byte-identical sides must not pass the gate when the flips field of
  // an ok scenario is corrupted -- this is the dnnd_diff exit-1 condition on
  // a malformed baseline (the CLI maps report.ok() == false to exit 1).
  auto base = make_campaign();
  base.results[0].flips = "corrupted-by-hand-edit";
  const auto report = diff_campaigns(base, base);
  EXPECT_FALSE(report.ok());
  EXPECT_NE(report.to_string().find("unparseable"), std::string::npos);

  // A failed scenario legitimately carries an empty flips field; that must
  // NOT trip the validation (the committed baseline may contain such rows).
  auto failed = make_campaign();
  failed.results[0].ok = false;
  failed.results[0].error = "boom";
  failed.results[0].flips = "";
  EXPECT_TRUE(diff_campaigns(failed, failed).ok());
}

TEST(CampaignDiff, IdenticalCampaignsPass) {
  const auto base = make_campaign();
  const auto report = diff_campaigns(base, base);
  EXPECT_TRUE(report.ok());
  EXPECT_EQ(report.compared, 2u);
  EXPECT_TRUE(report.deltas.empty());
  EXPECT_NE(report.to_string().find("identical"), std::string::npos);
}

TEST(CampaignDiff, AccuracyDeltaBeyondToleranceIsARegression) {
  const auto base = make_campaign();
  auto cur = base;
  cur.results[1].post_accuracy -= 0.05;

  const auto strict = diff_campaigns(base, cur);
  EXPECT_FALSE(strict.ok());
  ASSERT_EQ(strict.deltas.size(), 1u);
  EXPECT_EQ(strict.deltas[0].id, "a/two");
  EXPECT_NEAR(strict.deltas[0].post_delta, -0.05, 1e-12);
  EXPECT_NE(strict.to_string().find("REGRESSION a/two"), std::string::npos);

  // The same delta inside the tolerance is reported but does not fail.
  const auto tolerant = diff_campaigns(base, cur, DiffConfig{.acc_tol = 0.10});
  EXPECT_TRUE(tolerant.ok());
  ASSERT_EQ(tolerant.deltas.size(), 1u);
  EXPECT_FALSE(tolerant.deltas[0].regression);
}

TEST(CampaignDiff, TargetedMetricsGateLikeAccuracies) {
  // attack_success_rate / post_attack_other_acc are eval-batch fractions, so
  // they gate at acc_tol -- including in final-only (cross-regime) mode, where
  // a drifted ASR is exactly the kind of outcome change the gate exists for.
  auto base = make_campaign();
  base.results[0].attack = "tbfa-1-to-1";
  base.results[0].attack_success_rate = 0.8;
  base.results[0].post_attack_other_acc = 0.9;
  auto cur = base;
  cur.results[0].attack_success_rate = 0.6;

  const auto strict = diff_campaigns(base, cur);
  EXPECT_FALSE(strict.ok());
  EXPECT_NE(strict.to_string().find("attack_success_rate"), std::string::npos);
  EXPECT_FALSE(diff_campaigns(base, cur, DiffConfig{.final_only = true}).ok());
  EXPECT_TRUE(diff_campaigns(base, cur, DiffConfig{.acc_tol = 0.25}).ok());

  auto stealth = base;
  stealth.results[0].post_attack_other_acc = 0.4;
  EXPECT_FALSE(diff_campaigns(base, stealth).ok());
  EXPECT_NE(diff_campaigns(base, stealth).to_string().find("post_attack_other_acc"),
            std::string::npos);
}

TEST(CampaignDiff, FlipCountDeltaHonorsTolerance) {
  const auto base = make_campaign();
  auto cur = base;
  cur.results[0].flips = ">15";

  EXPECT_FALSE(diff_campaigns(base, cur).ok());
  const auto tolerant = diff_campaigns(base, cur, DiffConfig{.flip_tol = 5});
  EXPECT_TRUE(tolerant.ok());
  ASSERT_EQ(tolerant.deltas.size(), 1u);
  EXPECT_EQ(tolerant.deltas[0].flip_delta, 3);
}

TEST(CampaignDiff, FlipsSpellingChangeIsARegressionAtZeroTolerance) {
  // ">8" (stop accuracy never reached) and "8" (reached on the last flip) are
  // different outcomes with the same leading count. The zero-tolerance gate
  // must catch the spelling change -- the traced-BFA branch used to drop the
  // ">" marker, which an equal-count comparison waved through.
  const auto base = make_campaign();
  auto cur = base;
  cur.results[0].flips = "12";  // base says ">12"

  const auto strict = diff_campaigns(base, cur);
  EXPECT_FALSE(strict.ok());
  EXPECT_NE(strict.to_string().find("flips \">12\" -> \"12\""), std::string::npos);

  // With a nonzero flip tolerance only the leading counts are compared, so
  // the spelling difference is reported but allowed (delta 0 <= 1).
  const auto tolerant = diff_campaigns(base, cur, DiffConfig{.flip_tol = 1});
  EXPECT_TRUE(tolerant.ok());
  ASSERT_EQ(tolerant.deltas.size(), 1u);
  EXPECT_EQ(tolerant.deltas[0].flip_delta, 0);
}

TEST(CampaignDiff, OkFlagFlipAndTraceDivergenceAreRegressions) {
  const auto base = make_campaign();
  auto cur = base;
  cur.results[0].ok = false;
  cur.results[0].error = "boom";
  EXPECT_FALSE(diff_campaigns(base, cur).ok());

  auto traced_base = make_campaign();
  traced_base.results[0].trace = {0.9, 0.5, 0.2};
  auto traced_cur = traced_base;
  traced_cur.results[0].trace[2] = 0.4;
  EXPECT_FALSE(diff_campaigns(traced_base, traced_cur).ok());
  EXPECT_TRUE(diff_campaigns(traced_base, traced_cur, DiffConfig{.acc_tol = 0.25}).ok());
  traced_cur.results[0].trace.push_back(0.1);
  // A length mismatch is structural: no accuracy tolerance excuses it.
  EXPECT_FALSE(diff_campaigns(traced_base, traced_cur, DiffConfig{.acc_tol = 0.25}).ok());
}

TEST(CampaignDiff, FinalOnlyGatesAccuracyButNotPathShape) {
  // Cross-regime mode (int8 vs float baseline): flip spellings, counters, and
  // trace shape -- including LENGTH -- become informational; ok status and
  // clean/post accuracy still gate at acc_tol.
  auto base = make_campaign();
  base.results[0].trace = {0.9, 0.5, 0.2};
  auto cur = base;
  cur.results[0].flips = "9";                // different spelling AND count
  cur.results[0].trace = {0.9, 0.6};         // different length
  cur.results[1].attempts = 42;              // counter drift
  const auto strict = diff_campaigns(base, cur);
  EXPECT_FALSE(strict.ok());
  const auto final_only = diff_campaigns(base, cur, DiffConfig{.final_only = true});
  EXPECT_TRUE(final_only.ok());
  EXPECT_FALSE(final_only.deltas.empty());  // still reported as notes

  // Accuracy beyond tolerance still regresses in final-only mode...
  auto worse = cur;
  worse.results[0].post_accuracy = 0.05;
  EXPECT_FALSE(
      diff_campaigns(base, worse, DiffConfig{.acc_tol = 0.1, .final_only = true}).ok());
  // ...and so does a scenario that started failing.
  auto broken = cur;
  broken.results[0].ok = false;
  broken.results[0].error = "boom";
  EXPECT_FALSE(diff_campaigns(base, broken, DiffConfig{.final_only = true}).ok());
}

TEST(CampaignFromJson, Int8MarkerRoundTripsAndDefaultsOff) {
  // Default-regime documents carry no marker (byte-stability of committed
  // baselines); a marked document round-trips the flag.
  auto base = make_campaign();
  EXPECT_EQ(base.to_json().find("int8"), std::string::npos);
  base.int8_regime = true;
  const std::string json = base.to_json();
  EXPECT_NE(json.find("\"int8\":true"), std::string::npos);
  const auto reloaded = campaign_from_json(json);
  EXPECT_TRUE(reloaded.int8_regime);
  EXPECT_EQ(reloaded.to_json(), json);
  EXPECT_FALSE(campaign_from_json(make_campaign().to_json()).int8_regime);
}

TEST(CampaignDiff, MissingScenariosRespectIgnoreMissing) {
  const auto base = make_campaign();
  auto cur = base;
  cur.results.pop_back();
  cur.results.push_back(make_result("a/new", 0.9, 0.9, "0"));

  const auto strict = diff_campaigns(base, cur);
  EXPECT_FALSE(strict.ok());
  EXPECT_EQ(strict.regressions, 2u);  // one vanished, one appeared

  const auto loose = diff_campaigns(base, cur, DiffConfig{.ignore_missing = true});
  EXPECT_TRUE(loose.ok());
  EXPECT_EQ(loose.deltas.size(), 2u);  // still reported
}

TEST(CampaignDiff, RoundTripThroughJsonDiffsClean) {
  auto base = make_campaign();
  base.results[0].trace = {0.9, 0.5};
  const std::string json = base.to_json();
  const auto reloaded = campaign_from_json(json);
  EXPECT_EQ(reloaded.to_json(), json);
  EXPECT_TRUE(diff_campaigns(base, reloaded).ok());
}

TEST(CampaignFromJson, TimedRoundTripPreservesTimingFields) {
  auto base = make_campaign();
  base.threads_used = 4;
  base.total_seconds = 1.5;
  base.results[0].wall_seconds = 0.75;
  const std::string json = base.to_json(/*include_timing=*/true);
  const auto reloaded = campaign_from_json(json);
  EXPECT_EQ(reloaded.to_json(true), json);
  EXPECT_EQ(reloaded.threads_used, 4u);
  EXPECT_DOUBLE_EQ(reloaded.total_seconds, 1.5);
  EXPECT_DOUBLE_EQ(reloaded.results[0].wall_seconds, 0.75);
}

TEST(CampaignFromJson, StrictLoaderRejectsTruncatedOrMissingFieldDocuments) {
  // Loader regression: missing required fields used to default silently, so
  // a truncated baseline loaded as a plausible zero-flip campaign and the
  // regression gate compared against garbage.
  EXPECT_THROW(campaign_from_json("{}"), sys::JsonParseError);
  EXPECT_THROW(campaign_from_json(R"({"scenarios":[{"id":"x"}]})"), sys::JsonParseError);
  // A scenario stripped of its flips field (the diff gate's key signal).
  EXPECT_THROW(
      campaign_from_json(
          R"({"scenarios":[{"id":"x","label":"x","model":"m","defense":"d","attack":"a",)"
          R"("ok":true,"clean_accuracy":0.9,"post_accuracy":0.5,"attack_success_rate":0,)"
          R"("post_attack_other_acc":0,"attempts":0,"landed":0,)"
          R"("blocked":0,"secured_bits":0,"secured_rows":0,"total_bits":8,"trace":[]}]})"),
      sys::JsonParseError);
  // A pre-T-BFA document (no attack_success_rate) must not load with a
  // defaulted metric: regenerate the baseline instead of diffing against 0.
  EXPECT_THROW(
      campaign_from_json(
          R"({"scenarios":[{"id":"x","label":"x","model":"m","defense":"d","attack":"a",)"
          R"("ok":true,"clean_accuracy":0.9,"post_accuracy":0.5,"flips":"3","attempts":0,)"
          R"("landed":0,"blocked":0,"secured_bits":0,"secured_rows":0,"total_bits":8,)"
          R"("trace":[]}]})"),
      sys::JsonParseError);
  // A failed scenario must carry its error string.
  EXPECT_THROW(
      campaign_from_json(
          R"({"scenarios":[{"id":"x","label":"x","model":"m","defense":"d","attack":"a",)"
          R"("ok":false,"clean_accuracy":0.9,"post_accuracy":0.5,"attack_success_rate":0,)"
          R"("post_attack_other_acc":0,"flips":"","attempts":0,)"
          R"("landed":0,"blocked":0,"secured_bits":0,"secured_rows":0,"total_bits":8,)"
          R"("trace":[]}]})"),
      sys::JsonParseError);
  // Outright truncation is a parse error, not a partial load.
  const std::string full = make_campaign().to_json();
  EXPECT_THROW(campaign_from_json(full.substr(0, full.size() / 2)), sys::JsonParseError);
}

TEST(CampaignFromJson, TimingFieldsAreRequiredAsAUnit) {
  auto base = make_campaign();
  const std::string timed = base.to_json(/*include_timing=*/true);

  // Strip just "total_seconds": half-present timing must throw, not default.
  sys::JsonValue doc = sys::parse_json(timed);
  sys::JsonValue half = sys::JsonValue::object();
  for (const auto& [key, value] : doc.members()) {
    if (key != "total_seconds") half.set(key, value);
  }
  EXPECT_THROW(campaign_from_json(half.dump()), sys::JsonParseError);

  // Strip a scenario's wall_seconds from a timed document: same rule.
  sys::JsonValue no_wall = sys::JsonValue::object();
  for (const auto& [key, value] : doc.members()) {
    if (key != "scenarios") {
      no_wall.set(key, value);
      continue;
    }
    sys::JsonValue scenarios = sys::JsonValue::array();
    for (const auto& s : value.items()) {
      sys::JsonValue copy = sys::JsonValue::object();
      for (const auto& [sk, sv] : s.members()) {
        if (sk != "wall_seconds") copy.set(sk, sv);
      }
      scenarios.push_back(std::move(copy));
    }
    no_wall.set(key, std::move(scenarios));
  }
  EXPECT_THROW(campaign_from_json(no_wall.dump()), sys::JsonParseError);
}

// ---- sinks ------------------------------------------------------------------

class TempDir {
 public:
  TempDir() : path_(fs::temp_directory_path() / "dnnd_sink_test") {
    fs::remove_all(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  [[nodiscard]] const fs::path& path() const { return path_; }

 private:
  fs::path path_;
};

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

TEST(CampaignSink, FileSinkWritesReloadableJson) {
  TempDir tmp;
  const auto campaign = make_campaign();
  FileSink sink((tmp.path() / "deep/nested/run.json").string());
  sink.write(campaign);
  const std::string content = slurp(tmp.path() / "deep/nested/run.json");
  EXPECT_EQ(content, campaign.to_json() + "\n");
  EXPECT_EQ(campaign_from_json(content).to_json(), campaign.to_json());
}

TEST(CampaignSink, RunDirectorySinkNumbersRuns) {
  TempDir tmp;
  const auto campaign = make_campaign();
  RunDirectorySink sink(tmp.path().string());
  sink.write(campaign);
  sink.write(campaign);
  EXPECT_TRUE(fs::exists(tmp.path() / "campaign-0001.json"));
  EXPECT_TRUE(fs::exists(tmp.path() / "campaign-0002.json"));
  EXPECT_EQ(sink.next_path(), (tmp.path() / "campaign-0003.json").string());
  EXPECT_EQ(slurp(tmp.path() / "campaign-0001.json"), slurp(tmp.path() / "campaign-0002.json"));
}

TEST(CampaignSink, ConcurrentWritersClaimDistinctSlots) {
  // The old next_path() checked existence and then wrote: two writers could
  // both see slot N free and clobber each other. write() now claims slots
  // with O_CREAT|O_EXCL, so every write under contention lands in its own
  // complete file.
  TempDir tmp;
  const auto campaign = make_campaign();
  const std::string expected = campaign.to_json() + "\n";
  constexpr usize kWritesPerThread = 50;

  auto hammer = [&] {
    RunDirectorySink sink(tmp.path().string());
    for (usize i = 0; i < kWritesPerThread; ++i) sink.write(campaign);
  };
  std::thread a(hammer);
  std::thread b(hammer);
  a.join();
  b.join();

  usize files = 0;
  for (const auto& entry : fs::directory_iterator(tmp.path())) {
    ++files;
    EXPECT_EQ(slurp(entry.path()), expected) << entry.path() << " is torn or partial";
  }
  EXPECT_EQ(files, 2 * kWritesPerThread) << "every write must claim its own slot";
  // Slots are contiguous: the race loser probes forward, never skips.
  EXPECT_TRUE(fs::exists(tmp.path() / "campaign-0001.json"));
  EXPECT_TRUE(fs::exists(tmp.path() / "campaign-0100.json"));
  EXPECT_FALSE(fs::exists(tmp.path() / "campaign-0101.json"));
}

TEST(CampaignSink, EnvProtocolSelectsSink) {
  TempDir tmp;
  // DNND_JSON_OUT to a fresh file path -> FileSink.
  const std::string file = (tmp.path() / "out.json").string();
  ASSERT_EQ(setenv("DNND_JSON_OUT", file.c_str(), 1), 0);
  auto sink = sink_from_env();
  ASSERT_NE(sink, nullptr);
  EXPECT_EQ(sink->describe(), file);

  // A trailing slash (or existing directory) -> RunDirectorySink.
  const std::string dir = tmp.path().string() + "/runs/";
  ASSERT_EQ(setenv("DNND_JSON_OUT", dir.c_str(), 1), 0);
  sink = sink_from_env();
  ASSERT_NE(sink, nullptr);
  EXPECT_NE(sink->describe().find("campaign-*.json"), std::string::npos);

  // An existing directory named WITHOUT the trailing slash still selects the
  // RunDirectorySink (the directory on disk disambiguates).
  fs::create_directories(tmp.path() / "existing-dir");
  ASSERT_EQ(setenv("DNND_JSON_OUT", (tmp.path() / "existing-dir").c_str(), 1), 0);
  sink = sink_from_env();
  ASSERT_NE(sink, nullptr);
  EXPECT_NE(sink->describe().find("campaign-*.json"), std::string::npos);

  // An existing plain file -> FileSink even without a .json suffix.
  const std::string plain = (tmp.path() / "results.txt").string();
  { std::ofstream(plain) << "old\n"; }
  ASSERT_EQ(setenv("DNND_JSON_OUT", plain.c_str(), 1), 0);
  sink = sink_from_env();
  ASSERT_NE(sink, nullptr);
  EXPECT_EQ(sink->describe(), plain);

  // Without DNND_JSON_OUT, DNND_JSON=1 selects stdout; nothing set -> null.
  ASSERT_EQ(unsetenv("DNND_JSON_OUT"), 0);
  ASSERT_EQ(setenv("DNND_JSON", "1", 1), 0);
  sink = sink_from_env();
  ASSERT_NE(sink, nullptr);
  EXPECT_EQ(sink->describe(), "stdout");
  ASSERT_EQ(unsetenv("DNND_JSON"), 0);
  EXPECT_EQ(sink_from_env(), nullptr);
}

TEST(CampaignSink, EnvProtocolRejectsAmbiguousPathLoudly) {
  // A not-yet-existing path with neither a trailing '/' nor a .json suffix is
  // usually a run directory missing its slash. Guessing "file" here silently
  // collapsed every run of a sharded campaign into one clobbered file; the
  // protocol now refuses and says how to disambiguate.
  TempDir tmp;
  const std::string ambiguous = (tmp.path() / "nightly-runs").string();
  ASSERT_EQ(setenv("DNND_JSON_OUT", ambiguous.c_str(), 1), 0);
  try {
    sink_from_env();
    FAIL() << "ambiguous DNND_JSON_OUT must throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("ambiguous"), std::string::npos) << what;
    EXPECT_NE(what.find(ambiguous), std::string::npos) << what;
  }
  EXPECT_FALSE(fs::exists(ambiguous)) << "rejection must not create the path";

  // Bench drivers route the same failure to a nonzero exit, not a throw.
  EXPECT_EQ(write_campaign_from_env(make_campaign()), SinkWriteStatus::kFailed);
  ASSERT_EQ(unsetenv("DNND_JSON_OUT"), 0);
}

}  // namespace
}  // namespace dnnd::harness
