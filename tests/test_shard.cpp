// Shard protocol tests: deterministic k-of-n partitioning, atomic per-cell
// checkpoints, resume diffing, and the coordinator's byte-identity contract
// (merged shards == single-process sweep, the property the zero-tolerance
// dnnd_diff baseline gate rides on).
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>
#include <thread>

#include "harness/campaign.hpp"
#include "harness/campaign_diff.hpp"
#include "harness/registry.hpp"
#include "harness/shard.hpp"
#include "nn/gemm.hpp"
#include "sys/json.hpp"

namespace dnnd::harness {
namespace {

namespace fs = std::filesystem;

class TempDir {
 public:
  explicit TempDir(const char* name) : path_(fs::temp_directory_path() / name) {
    fs::remove_all(path_);
  }
  ~TempDir() { fs::remove_all(path_); }
  [[nodiscard]] const fs::path& path() const { return path_; }
  [[nodiscard]] std::string str() const { return path_.string(); }

 private:
  fs::path path_;
};

std::string slurp(const fs::path& p) {
  std::ifstream in(p, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

ScenarioResult make_result(const std::string& id) {
  ScenarioResult r;
  r.id = id;
  r.label = id;
  r.model = "mlp";
  r.defense = "none";
  r.attack = "bfa";
  r.ok = true;
  r.clean_accuracy = 0.9666666667;
  r.post_accuracy = 0.75;
  r.flips = ">8";
  r.trace = {0.9666666667, 0.75};
  return r;
}

TEST(ShardSpec, ParsesCliSpelling) {
  const auto one = parse_shard_spec("1/1");
  EXPECT_EQ(one.index, 0u);
  EXPECT_EQ(one.count, 1u);
  const auto two = parse_shard_spec("2/4");
  EXPECT_EQ(two.index, 1u);
  EXPECT_EQ(two.count, 4u);

  // Malformed specs must throw, never silently drop or duplicate cells.
  for (const char* bad : {"", "/", "1/", "/2", "0/2", "3/2", "2", "a/b", "1/0", "-1/2",
                          "1/2/3", "1 /2", "+1/2", "9999999/9999999"}) {
    EXPECT_THROW(parse_shard_spec(bad), std::invalid_argument) << "\"" << bad << "\"";
  }
}

TEST(ShardSpec, PartitionIsInterleavedDisjointAndComplete) {
  const auto grid = tiny_test_grid();
  ASSERT_GE(grid.size(), 5u);

  for (const usize n : {usize{1}, usize{2}, usize{3}, grid.size(), grid.size() + 3}) {
    std::set<std::string> seen;
    usize total = 0;
    for (usize k = 0; k < n; ++k) {
      const auto shard = shard_scenarios(grid, ShardSpec{.index = k, .count = n});
      total += shard.size();
      for (const auto& sc : shard) {
        EXPECT_TRUE(seen.insert(sc.id).second) << sc.id << " assigned to two shards";
      }
    }
    EXPECT_EQ(total, grid.size()) << n << " shards must cover the grid exactly";
    EXPECT_EQ(seen.size(), grid.size());
  }

  // Interleaved (round-robin): shard k of n owns positions k, k+n, k+2n...
  const auto first = shard_scenarios(grid, ShardSpec{.index = 0, .count = 2});
  const auto second = shard_scenarios(grid, ShardSpec{.index = 1, .count = 2});
  ASSERT_GE(first.size(), 2u);
  EXPECT_EQ(first[0].id, grid[0].id);
  EXPECT_EQ(first[1].id, grid[2].id);
  EXPECT_EQ(second[0].id, grid[1].id);

  EXPECT_THROW(shard_scenarios(grid, ShardSpec{.index = 2, .count = 2}),
               std::invalid_argument);
}

TEST(CellCheckpointStore, CellPathsAreStableSanitizedAndCollisionFree) {
  const CellCheckpointStore store("/run");
  const std::string path = store.cell_path("grid/mlp/lpddr4-new/bfa/none/none");
  EXPECT_EQ(path, store.cell_path("grid/mlp/lpddr4-new/bfa/none/none")) << "must be stable";
  EXPECT_NE(path.find("grid_mlp_lpddr4-new_bfa_none_none"), std::string::npos);
  EXPECT_NE(path.find("/run/cells/"), std::string::npos);
  EXPECT_EQ(path.compare(path.size() - 5, 5, ".json"), 0);

  // Ids that sanitize to the same text still claim distinct files (the
  // stable-hash suffix), so no two grid cells can ever share a checkpoint.
  EXPECT_NE(store.cell_path("a/b"), store.cell_path("a_b"));
  EXPECT_NE(store.cell_path("a/b"), store.cell_path("a.b"));
}

TEST(CellCheckpointStore, WriteLoadRoundTripsAndLeavesNoTempFiles) {
  TempDir tmp("dnnd_shard_store_test");
  const CellCheckpointStore store(tmp.str());
  const auto r = make_result("tiny/bfa");

  EXPECT_EQ(store.load_cell("tiny/bfa"), std::nullopt);
  EXPECT_FALSE(store.has_valid_cell("tiny/bfa"));

  store.write_cell(r);
  const auto loaded = store.load_cell("tiny/bfa");
  ASSERT_TRUE(loaded.has_value());
  sys::JsonWriter a;
  scenario_result_to_json(a, r);
  sys::JsonWriter b;
  scenario_result_to_json(b, *loaded);
  EXPECT_EQ(a.str(), b.str()) << "checkpoint must round-trip byte-exactly";
  EXPECT_TRUE(store.has_valid_cell("tiny/bfa"));

  // The cell file carries exactly the scenario-object serialization
  // (newline-framed), and the atomic publish leaves no temp droppings.
  EXPECT_EQ(slurp(store.cell_path("tiny/bfa")), a.str() + "\n");
  usize files = 0;
  for (const auto& entry : fs::directory_iterator(tmp.path() / "cells")) {
    ++files;
    EXPECT_EQ(entry.path().extension(), ".json") << entry.path();
  }
  EXPECT_EQ(files, 1u);

  // Overwriting the same cell (a re-run) is allowed and stays complete.
  store.write_cell(r);
  EXPECT_TRUE(store.has_valid_cell("tiny/bfa"));
}

TEST(CellCheckpointStore, CorruptCellsReadAsAbsentForResumeButFailMerge) {
  TempDir tmp("dnnd_shard_corrupt_test");
  const CellCheckpointStore store(tmp.str());
  store.write_cell(make_result("a/one"));

  // Truncate the checkpoint: resume must re-run it (reads as absent)...
  const std::string path = store.cell_path("a/one");
  const std::string text = slurp(path);
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    out << text.substr(0, text.size() / 2);
  }
  EXPECT_FALSE(store.has_valid_cell("a/one"));
  EXPECT_THROW(store.load_cell("a/one"), std::exception);

  // ...and a coordinator that merges anyway must fail loudly, not quietly
  // produce a short campaign.
  Scenario sc;
  sc.id = "a/one";
  EXPECT_THROW(merge_cells(store, {sc}), std::exception);

  // A checkpoint whose body carries a different id is corruption too.
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    sys::JsonWriter w;
    scenario_result_to_json(w, make_result("a/other"));
    out << w.str() << "\n";
  }
  EXPECT_FALSE(store.has_valid_cell("a/one"));
  EXPECT_THROW(merge_cells(store, {sc}), std::runtime_error);
}

TEST(Shard, PendingScenariosDiffsCheckpointsAgainstGrid) {
  TempDir tmp("dnnd_shard_pending_test");
  const CellCheckpointStore store(tmp.str());
  const auto grid = tiny_test_grid();

  // Nothing checkpointed: everything pending, input order preserved.
  auto pending = pending_scenarios(store, grid);
  ASSERT_EQ(pending.size(), grid.size());
  for (usize i = 0; i < grid.size(); ++i) EXPECT_EQ(pending[i].id, grid[i].id);

  // Checkpoint cells 0 and 2 (results faked -- the diff is by id).
  store.write_cell(make_result(grid[0].id));
  store.write_cell(make_result(grid[2].id));
  pending = pending_scenarios(store, grid);
  ASSERT_EQ(pending.size(), grid.size() - 2);
  EXPECT_EQ(pending[0].id, grid[1].id);
  EXPECT_EQ(pending[1].id, grid[3].id);

  // merge refuses while incomplete, naming the missing cells.
  try {
    merge_cells(store, grid);
    FAIL() << "merge of an incomplete run must throw";
  } catch (const std::runtime_error& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("incomplete run"), std::string::npos) << what;
    EXPECT_NE(what.find(grid[1].id), std::string::npos) << what;
  }
}

// The tentpole contract: running the tiny grid as two interleaved shards --
// with one shard interrupted and resumed -- then merging the checkpoints
// yields byte-identical JSON to the single-process sweep, so the existing
// zero-tolerance dnnd_diff baseline gate holds for sharded runs unchanged.
TEST(Shard, TwoShardsWithKillAndResumeMergeByteIdenticalToSingleProcess) {
  TempDir tmp("dnnd_shard_merge_test");
  const CellCheckpointStore store(tmp.str());
  const auto grid = tiny_test_grid();
  ASSERT_GE(grid.size(), 4u);

  CampaignRunner serial(CampaignConfig{.threads = 1});
  const std::string single_process = serial.run(grid).to_json();

  auto run_shard = [&](const std::vector<Scenario>& cells) {
    CampaignConfig cfg;
    cfg.threads = 2;
    cfg.on_result = [&store](const ScenarioResult& r) { store.write_cell(r); };
    CampaignRunner runner(cfg);
    const auto res = runner.run(cells);
    for (const auto& r : res.results) EXPECT_TRUE(r.ok) << r.id << ": " << r.error;
  };

  const auto shard1 = shard_scenarios(grid, ShardSpec{.index = 0, .count = 2});
  const auto shard2 = shard_scenarios(grid, ShardSpec{.index = 1, .count = 2});
  run_shard(shard1);
  run_shard(shard2);

  // Simulate shard 2 having been killed mid-run: delete one of its cells,
  // then resume (pending diff re-runs exactly the lost cell).
  ASSERT_TRUE(fs::remove(store.cell_path(shard2[0].id)));
  const auto lost = pending_scenarios(store, shard2);
  ASSERT_EQ(lost.size(), 1u);
  EXPECT_EQ(lost[0].id, shard2[0].id);
  run_shard(lost);
  EXPECT_TRUE(pending_scenarios(store, grid).empty());

  const auto merged = merge_cells(store, grid);
  EXPECT_EQ(merged.json, single_process)
      << "merged shards must be byte-identical to the single-process sweep";
  EXPECT_TRUE(diff_campaigns(campaign_from_json(single_process), merged.campaign).ok());
  // And the re-serialized parsed form matches too (what a sink would write).
  EXPECT_EQ(merged.campaign.to_json(), single_process);
}

TEST(Campaign, OnResultHookFiresOncePerScenarioFromWorkers) {
  const auto grid = tiny_test_grid();
  std::mutex mu;
  std::multiset<std::string> seen;
  CampaignConfig cfg;
  cfg.threads = 3;
  cfg.on_result = [&](const ScenarioResult& r) {
    const std::lock_guard<std::mutex> lock(mu);
    seen.insert(r.id);
  };
  CampaignRunner runner(cfg);
  const auto res = runner.run(grid);
  EXPECT_EQ(seen.size(), grid.size());
  for (const auto& sc : grid) {
    EXPECT_EQ(seen.count(sc.id), 1u) << sc.id;
  }
  EXPECT_EQ(res.results.size(), grid.size());
}

TEST(Campaign, OnResultHookFailureFailsTheRunAfterCompleting) {
  const auto grid = tiny_test_grid();
  std::atomic<usize> calls{0};
  CampaignConfig cfg;
  cfg.threads = 2;
  cfg.on_result = [&](const ScenarioResult&) {
    ++calls;
    throw std::runtime_error("disk full");
  };
  CampaignRunner runner(cfg);
  try {
    runner.run(grid);
    FAIL() << "a failing checkpoint hook must fail the run";
  } catch (const std::runtime_error& e) {
    EXPECT_NE(std::string(e.what()).find("disk full"), std::string::npos);
  }
  // Every scenario still ran (the sweep is not aborted mid-flight)...
  EXPECT_EQ(calls.load(), grid.size());
  // ...and the GEMM override was restored through the exception path (the
  // ThreadsGuard satellite: a manual set/restore pair would have leaked).
  EXPECT_EQ(nn::gemm::threads_setting(), 0u);
}

TEST(ThreadsGuard, RestoresSettingAcrossExceptions) {
  ASSERT_EQ(nn::gemm::threads_setting(), 0u) << "test assumes the process default";
  try {
    const nn::gemm::ThreadsGuard guard;
    nn::gemm::set_threads(7);
    throw std::runtime_error("boom");
  } catch (const std::runtime_error&) {
  }
  EXPECT_EQ(nn::gemm::threads_setting(), 0u);
}

}  // namespace
}  // namespace dnnd::harness
