// Common interface for RowHammer mitigations.
//
// A mitigation observes DRAM row events (aggressor tracking) and/or runs on a
// time schedule (proactive swapping). The protected system pumps `tick()`
// after every attacker ACT -- the transaction-level equivalent of the defense
// sharing the command bus. Mitigation maintenance issues real device commands
// (RowClone, activations, row reads/writes), so its latency and energy
// overheads are measured, not asserted.
#pragma once

#include <string>

#include "dram/dram_device.hpp"
#include "dram/row_remapper.hpp"
#include "sys/rng.hpp"

namespace dnnd::defense {

/// Cumulative cost counters of a mitigation.
struct DefenseStats {
  u64 maintenance_ops = 0;       ///< swaps / shuffles / neighbor refreshes
  u64 tracker_accesses = 0;      ///< SRAM/CAM tracker operations
  Picoseconds time_spent = 0;    ///< device time consumed by maintenance
  Femtojoules energy_spent = 0;  ///< maintenance energy (incl. tracker)
};

class Mitigation : public dram::RowEventListener {
 public:
  Mitigation(dram::DramDevice& device, dram::RowRemapper& remap)
      : device_(device), remap_(remap) {
    device_.add_listener(this);
  }
  ~Mitigation() override { device_.remove_listener(this); }

  Mitigation(const Mitigation&) = delete;
  Mitigation& operator=(const Mitigation&) = delete;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Performs maintenance that is due at device.now(). Reactive defenses may
  /// do all their work in on_activate and leave this empty.
  virtual void tick() {}

  /// Default event handlers: no-ops (proactive defenses override nothing,
  /// reactive ones override on_activate).
  void on_activate(const dram::RowAddr&, Picoseconds) override {}
  void on_restore(const dram::RowAddr&, Picoseconds, dram::RestoreKind) override {}

  [[nodiscard]] const DefenseStats& stats() const { return stats_; }

 protected:
  /// Runs `fn` with re-entrance protection (maintenance issues device
  /// commands, which fire events back into this listener) and charges its
  /// device time to the defense.
  template <typename Fn>
  void maintenance(Fn&& fn) {
    if (in_maintenance_) return;
    in_maintenance_ = true;
    const Picoseconds t0 = device_.now();
    const Femtojoules e0 = device_.stats().energy;
    fn();
    stats_.time_spent += device_.now() - t0;
    stats_.energy_spent += device_.stats().energy - e0;
    in_maintenance_ = false;
  }

  /// Charges one tracker access (SRAM lookup + energy, no bus time).
  void charge_tracker_access() {
    stats_.tracker_accesses += 1;
    stats_.energy_spent += device_.config().energy.sram_access;
  }

  [[nodiscard]] bool in_maintenance() const { return in_maintenance_; }

  dram::DramDevice& device_;
  dram::RowRemapper& remap_;
  DefenseStats stats_;

 private:
  bool in_maintenance_ = false;
};

}  // namespace dnnd::defense
