// Micro-benchmarks (google-benchmark) of the primitives: DRAM commands,
// RowClone, the four-step protection swap, remapping, quantization, and one
// BFA search step.
//
// Results print as the usual google-benchmark console table AND persist as a
// JSON document through the shared CampaignSink protocol (DNND_JSON_OUT file
// or DNND_JSON run directory), like every other bench -- so CI can upload the
// micro-op numbers next to the campaign and inference artifacts.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <sstream>

#include "attack/bfa.hpp"
#include "core/swap_engine.hpp"
#include "harness/sink.hpp"
#include "models/model_zoo.hpp"
#include "nn/trainer.hpp"
#include "rowhammer/hammer_model.hpp"

using namespace dnnd;

namespace {

void BM_DramActivatePrechargePair(benchmark::State& state) {
  dram::DramDevice dev(dram::DramConfig::sim_small());
  u32 row = 0;
  for (auto _ : state) {
    dev.activate({0, 0, row});
    row = (row + 1) % 64;
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_DramActivatePrechargePair);

void BM_RowCloneFpm(benchmark::State& state) {
  dram::DramDevice dev(dram::DramConfig::sim_small());
  u32 i = 0;
  for (auto _ : state) {
    dev.rowclone_fpm(0, 0, i % 32, 32 + (i % 32));
    ++i;
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          dev.config().geo.row_bytes);
}
BENCHMARK(BM_RowCloneFpm);

void BM_RowClonePsm(benchmark::State& state) {
  dram::DramDevice dev(dram::DramConfig::sim_small());
  u32 i = 0;
  for (auto _ : state) {
    dev.rowclone_psm({0, 0, i % 32}, {1, 0, i % 32});
    ++i;
  }
  state.SetBytesProcessed(static_cast<i64>(state.iterations()) *
                          dev.config().geo.row_bytes);
}
BENCHMARK(BM_RowClonePsm);

void BM_HammerActWithFaultModel(benchmark::State& state) {
  dram::DramDevice dev(dram::DramConfig::sim_small());
  rowhammer::HammerModel model(dev, rowhammer::HammerModelConfig{});
  u32 flip = 0;
  for (auto _ : state) {
    dev.activate({0, 0, 10 + (flip & 1)});
    flip ^= 1;
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_HammerActWithFaultModel);

void BM_FourStepProtectionSwap(benchmark::State& state) {
  dram::DramDevice dev(dram::DramConfig::sim_small());
  dram::RowRemapper remap(dev.config().geo);
  core::SwapEngine engine(dev, remap);
  sys::Rng rng(1);
  u32 i = 0;
  for (auto _ : state) {
    const dram::RowAddr target{0, 0, 4 + (i % 8) * 2};
    const dram::RowAddr nt{0, 0, 30 + (i % 8) * 2};
    engine.protect(target, &nt, rng);
    ++i;
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_FourStepProtectionSwap);

void BM_RemapperLookup(benchmark::State& state) {
  dram::RowRemapper remap(dram::DramConfig::sim_default().geo);
  remap.swap_logical({0, 0, 1}, {3, 2, 7});
  u32 i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(remap.to_physical({i % 8, i % 8, i % 128}));
    ++i;
  }
}
BENCHMARK(BM_RemapperLookup);

struct AttackState {
  std::unique_ptr<nn::Model> model;
  std::unique_ptr<quant::QuantizedModel> qm;
  nn::Tensor ax;
  std::vector<u32> ay;

  AttackState() {
    nn::SynthSpec spec;
    spec.num_classes = 4;
    spec.train_per_class = 60;
    spec.test_per_class = 20;
    spec.channels = 1;
    spec.height = 8;
    spec.width = 8;
    spec.noise = 0.8;
    auto data = nn::make_synthetic(spec);
    model = models::make_test_mlp(64, 24, 4, 7);
    nn::TrainConfig cfg;
    cfg.epochs = 3;
    nn::train(*model, data, cfg);
    qm = std::make_unique<quant::QuantizedModel>(*model);
    std::tie(ax, ay) = data.test.head(16);
  }

  static AttackState& instance() {
    static AttackState s;
    return s;
  }
};

void BM_QuantizeModel(benchmark::State& state) {
  auto& s = AttackState::instance();
  for (auto _ : state) {
    quant::QuantizedModel qm(*s.model);
    benchmark::DoNotOptimize(qm.total_weights());
  }
}
BENCHMARK(BM_QuantizeModel);

void BM_BitFlipCommit(benchmark::State& state) {
  auto& s = AttackState::instance();
  u32 i = 0;
  for (auto _ : state) {
    s.qm->flip({0, i % s.qm->layer(0).size(), i % 8});
    ++i;
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()));
}
BENCHMARK(BM_BitFlipCommit);

void BM_BfaSearchStep(benchmark::State& state) {
  auto& s = AttackState::instance();
  attack::BfaConfig cfg;
  attack::ProgressiveBitSearch bfa(*s.qm, s.ax, s.ay, cfg);
  const auto snapshot = s.qm->snapshot();
  for (auto _ : state) {
    benchmark::DoNotOptimize(bfa.step({}));
    state.PauseTiming();
    s.qm->restore(snapshot);
    state.ResumeTiming();
  }
}
BENCHMARK(BM_BfaSearchStep);

void BM_ForwardPassMlpBatch16(benchmark::State& state) {
  auto& s = AttackState::instance();
  for (auto _ : state) {
    benchmark::DoNotOptimize(s.model->forward(s.ax, false));
  }
  state.SetItemsProcessed(static_cast<i64>(state.iterations()) * 16);
}
BENCHMARK(BM_ForwardPassMlpBatch16);

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  // Console table to stdout (the interactive contract), JSON to a string so
  // the run can persist through the sink like every other bench.
  benchmark::ConsoleReporter console;
  std::ostringstream json;
  benchmark::JSONReporter json_reporter;
  json_reporter.SetOutputStream(&json);
  json_reporter.SetErrorStream(&json);
  benchmark::RunSpecifiedBenchmarks(&console, &json_reporter);
  benchmark::Shutdown();

  // The sink protocol appends its own trailing newline.
  std::string doc = json.str();
  while (!doc.empty() && doc.back() == '\n') doc.pop_back();
  std::string destination;
  switch (dnnd::harness::write_document_from_env(doc, "micro_ops", &destination)) {
    case dnnd::harness::SinkWriteStatus::kWritten:
      std::printf("[sink] micro-op JSON -> %s\n", destination.c_str());
      break;
    case dnnd::harness::SinkWriteStatus::kFailed:
      return 1;
    case dnnd::harness::SinkWriteStatus::kNoSink:
      break;
  }
  return 0;
}
