// Head-to-head: the same white-box BFA campaign against no defense, RRS,
// SRS, SHADOW, and DNN-Defender on one trained model -- the paper's central
// victim-focused vs aggressor-focused comparison, measured in one run.
#include <cstdio>

#include "defense/rrs.hpp"
#include "defense/shadow.hpp"
#include "defense/srs.hpp"
#include "models/model_zoo.hpp"
#include "nn/trainer.hpp"
#include "sys/table.hpp"
#include "system/protected_system.hpp"

using namespace dnnd;

int main() {
  auto data = nn::make_synthetic(nn::SynthSpec::cifar10_like());
  auto model = models::make_vgg11_sub(data.spec.num_classes, /*seed=*/5);
  nn::TrainConfig tcfg;
  tcfg.epochs = 6;
  nn::train(*model, data, tcfg);
  auto [ax, ay] = data.test.head(32);
  auto [ex, ey] = data.test.head(200);

  quant::QuantizedModel qm(*model);
  const auto clean_codes = qm.snapshot();
  const usize attempts = 12;

  sys::Table table({"Defense", "Attempts", "Blocked", "Landed", "Post-attack acc (%)",
                    "Defense ops", "Defense time (ms)"});

  auto run_case = [&](const std::string& name, auto install) {
    qm.restore(clean_codes);
    system::ProtectedSystemConfig scfg;
    scfg.dram = dram::DramConfig::nn_scaled();
    system::ProtectedSystem sys(qm, scfg);
    install(sys);
    const auto res = sys.run_white_box_attack(ax, ay, ex, ey, attempts, 0.0);
    const defense::Mitigation* m = sys.mitigation();
    table.add_row({name, std::to_string(res.attempts), std::to_string(res.blocked),
                   std::to_string(res.landed), sys::fmt(100.0 * res.final_accuracy, 2),
                   m != nullptr ? std::to_string(m->stats().maintenance_ops) : "-",
                   m != nullptr ? sys::fmt(ps_to_ms(m->stats().time_spent), 3) : "-"});
  };

  run_case("none", [](system::ProtectedSystem&) {});
  run_case("RRS (aggressor-focused)", [](system::ProtectedSystem& s) {
    s.install_mitigation(std::make_unique<defense::Rrs>(s.device(), s.remapper()));
  });
  run_case("SRS (aggressor-focused)", [](system::ProtectedSystem& s) {
    s.install_mitigation(std::make_unique<defense::Srs>(s.device(), s.remapper()));
  });
  run_case("SHADOW (victim-focused)", [](system::ProtectedSystem& s) {
    s.install_mitigation(std::make_unique<defense::Shadow>(s.device(), s.remapper()));
  });
  run_case("DNN-Defender (victim-focused)", [&](system::ProtectedSystem& s) {
    core::PriorityProfiler profiler(qm, ax, ay);
    s.install_dnn_defender(profiler.profile_blocked_attacker(3 * attempts));
  });

  table.print();
  std::printf(
      "\nReading: aggressor-focused swaps (RRS/SRS) cannot stop an attacker who\n"
      "tracks the victim row -- flips land. Victim-focused designs (SHADOW,\n"
      "DNN-Defender) refresh/relocate the victim before T_RH and block every\n"
      "attempt; DNN-Defender does it with scheduled 3xT_AAP swaps and no\n"
      "tracker state.\n");
  return 0;
}
