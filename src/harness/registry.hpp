// Scenario registry: enumerates the paper's evaluation grids as Scenario
// lists for CampaignRunner.
//
// table3_scenarios / fig1b_scenarios reproduce the exact cells (labels,
// budgets, seeds) of the corresponding paper tables/figures -- the bench
// binaries are thin drivers over these. enumerate_grid() builds arbitrary
// attack x defense x model x DramConfig cross-products for wider sweeps, and
// tiny_test_grid() is a seconds-fast grid covering every attack path for the
// determinism regression tests.
#pragma once

#include <vector>

#include "harness/scenario.hpp"

namespace dnnd::harness {

/// Table 3: DNN-Defender vs software & hardware BFA defenses (ResNet-20 on
/// the CIFAR-10 stand-in). `small` mirrors DNND_BENCH_SCALE=small budgets.
std::vector<Scenario> table3_scenarios(bool small);

/// Fig. 1(b): targeted BFA vs random flipping vs a full-coverage
/// DNN-Defender deployment (ResNet-34 on the ImageNet stand-in).
std::vector<Scenario> fig1b_scenarios(bool small);

/// Fast all-paths grid (tiny MLP, easy data): one scenario per attack kind
/// plus software- and hardware-defended variants. Used by test_harness.
std::vector<Scenario> tiny_test_grid();

/// Cross-product sweep specification (the paper's evaluation shape:
/// models x device generations x defenses, all attacked through DRAM).
struct GridSpec {
  std::vector<std::string> models = {"vgg11", "resnet18", "resnet20", "resnet34"};
  std::vector<dram::DeviceGen> generations = {dram::DeviceGen::kLpddr4New};
  /// "none", "para", "rrs", "srs", "shadow", "graphene", "hydra",
  /// "dnn-defender".
  std::vector<std::string> defenses = {"none", "rrs", "srs", "shadow", "dnn-defender"};
  DatasetKind dataset = DatasetKind::kCifar10Like;
  bool small = true;
};

/// Enumerates the full cross product of a GridSpec as kDramWhiteBox
/// scenarios with stable ids ("grid/<model>/<gen>/<defense>").
std::vector<Scenario> enumerate_grid(const GridSpec& spec);

}  // namespace dnnd::harness
