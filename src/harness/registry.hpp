// Scenario registry: enumerates the paper's evaluation grids as Scenario
// lists for CampaignRunner.
//
// table3_scenarios / fig1b_scenarios reproduce the exact cells (labels,
// budgets, seeds) of the corresponding paper tables/figures -- the bench
// binaries are thin drivers over these. enumerate_grid() builds arbitrary
// attack x defense x model x DramConfig cross-products for wider sweeps, and
// tiny_test_grid() is a seconds-fast grid covering every attack path for the
// determinism regression tests.
#pragma once

#include <vector>

#include "harness/scenario.hpp"

namespace dnnd::harness {

/// Table 3: DNN-Defender vs software & hardware BFA defenses (ResNet-20 on
/// the CIFAR-10 stand-in). `small` mirrors DNND_BENCH_SCALE=small budgets.
std::vector<Scenario> table3_scenarios(bool small);

/// Fig. 1(b): targeted BFA vs random flipping vs a full-coverage
/// DNN-Defender deployment (ResNet-34 on the ImageNet stand-in).
std::vector<Scenario> fig1b_scenarios(bool small);

/// Fast all-paths grid (tiny MLP, easy data): one scenario per attack kind
/// plus software- and hardware-defended variants. Used by test_harness.
std::vector<Scenario> tiny_test_grid();

/// Every device generation, in declaration order (slug round-trips, axis
/// defaults, exhaustive tests).
inline constexpr dram::DeviceGen kAllDeviceGens[] = {
    dram::DeviceGen::kDdr3Old,   dram::DeviceGen::kDdr3New, dram::DeviceGen::kDdr4Old,
    dram::DeviceGen::kDdr4New,   dram::DeviceGen::kLpddr4Old,
    dram::DeviceGen::kLpddr4New,
};

/// URL-ish slug for a device generation ("lpddr4-new"); stable, used inside
/// grid scenario ids.
std::string device_gen_slug(dram::DeviceGen gen);

/// Inverse of device_gen_slug; throws std::invalid_argument.
dram::DeviceGen device_gen_from_slug(const std::string& slug);

/// Software-defense axis value in GridSpec: a SoftwarePrep slug
/// ("none", "binary-finetune", "piecewise-clustering") or
/// "reconstruction-guard" (the inference-time clamp of Li et al. DAC'20).
bool is_known_prep_axis(const std::string& prep);

/// Cross-product sweep specification (the paper's evaluation shape:
/// attack kind x software prep x defense x model x device generation).
struct GridSpec {
  std::vector<std::string> models = {"vgg11", "resnet18", "resnet20", "resnet34"};
  std::vector<dram::DeviceGen> generations = {dram::DeviceGen::kLpddr4New};
  /// Attack-kind axis (any AttackKind; budgets are set per kind).
  std::vector<AttackKind> attacks = {AttackKind::kDramWhiteBox};
  /// Software-defense axis; see is_known_prep_axis for the vocabulary.
  std::vector<std::string> preps = {"none"};
  /// Hardware/system defense axis: "none", "para", "rrs", "srs", "shadow",
  /// "graphene", "hydra", "dnn-defender".
  std::vector<std::string> defenses = {"none", "rrs", "srs", "shadow", "dnn-defender"};
  DatasetKind dataset = DatasetKind::kCifar10Like;
  /// Hard flip budget of kVwaLimited cells (DNND_VWA_BUDGET).
  usize vwa_budget = 10;
  bool small = true;
  /// Drop cells whose defense cannot engage the attack kind (e.g. a DRAM
  /// mitigation against a model-level BFA, which never touches the device).
  /// With false the full cross product is emitted; the inert defense runs as
  /// a no-op and the cell duplicates its defense="none" sibling.
  bool prune_incoherent = true;
};

/// True when `defense` (and the prep axis value) can actually engage
/// `attack`: DRAM mitigations and profiled DNN-Defender need kDramWhiteBox,
/// full-coverage DNN-Defender also pairs with kAdaptive, and the
/// reconstruction guard is only consulted by the kBfa path.
bool grid_cell_coherent(AttackKind attack, const std::string& prep,
                        const std::string& defense);

/// Enumerates the cross product of a GridSpec as scenarios with stable ids
/// ("grid/<model>/<gen>/<attack>/<prep>/<defense>"). Cells failing
/// grid_cell_coherent are skipped unless spec.prune_incoherent is false.
/// Throws std::invalid_argument for unknown axis values.
std::vector<Scenario> enumerate_grid(const GridSpec& spec);

/// The paper-shaped default GridSpec with every axis overridable through the
/// DNND_GRID_* env vars (comma-separated lists; see bench_grid/README).
/// Shared by bench_grid and dnnd_shard so every shard of one sweep -- and
/// the merge coordinator -- enumerates the identical scenario list from the
/// identical environment. Throws std::invalid_argument for unknown axis
/// values.
GridSpec grid_spec_from_env(bool small);

/// The scenario list a sharded run operates on: tiny_test_grid() when `tiny`
/// (the CI baseline grid), else enumerate_grid(grid_spec_from_env(small)).
/// Every dnnd_shard invocation and sharded bench_grid run against one run
/// directory must resolve this identically or cells/merge won't line up.
std::vector<Scenario> grid_from_env(bool tiny, bool small);

}  // namespace dnnd::harness
