// Minimal deterministic JSON writer for campaign result export. Output is
// byte-stable for identical values (fixed number formatting, insertion-order
// keys), which the harness determinism tests rely on.
#pragma once

#include <string>
#include <string_view>
#include <type_traits>
#include <vector>

#include "sys/types.hpp"

namespace dnnd::sys {

/// Escapes a string for inclusion inside JSON quotes.
std::string json_escape(std::string_view s);

/// Formats a double with round-trip-stable "%.10g" formatting.
std::string json_number(double v);

/// Streaming JSON builder. Commas and key/value separators are managed
/// automatically; keys appear in insertion order.
class JsonWriter {
 public:
  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  /// Starts a member inside an object; follow with a value or container.
  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v);
  JsonWriter& value(double v);
  JsonWriter& value(bool v);

  /// Any integer type (usize, u32, i64, ...). A single template avoids
  /// overload ambiguity on platforms where size_t is a distinct type from
  /// uint64_t.
  template <typename T>
    requires(std::is_integral_v<T> && !std::is_same_v<T, bool>)
  JsonWriter& value(T v) {
    comma_if_needed();
    if constexpr (std::is_signed_v<T>) {
      out_ += std::to_string(static_cast<long long>(v));
    } else {
      out_ += std::to_string(static_cast<unsigned long long>(v));
    }
    return *this;
  }

  [[nodiscard]] const std::string& str() const { return out_; }

 private:
  void comma_if_needed();

  std::string out_;
  std::vector<bool> needs_comma_;  ///< per open container
};

}  // namespace dnnd::sys
