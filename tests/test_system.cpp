#include <gtest/gtest.h>

#include "defense/rrs.hpp"
#include "defense/shadow.hpp"
#include "system/protected_system.hpp"
#include "test_util.hpp"

namespace dnnd::system {
namespace {

using testutil::easy_data;
using testutil::trained_mlp;

class SystemFixture : public ::testing::Test {
 protected:
  SystemFixture() : model_(trained_mlp()), qm_(*model_) {
    ProtectedSystemConfig cfg;
    cfg.dram = dram::DramConfig::nn_scaled();
    sys_ = std::make_unique<ProtectedSystem>(qm_, cfg);
    std::tie(ax_, ay_) = easy_data().test.head(32);
    std::tie(ex_, ey_) = easy_data().test.head(80);
  }

  core::ProfileResult quick_profile(usize rounds = 2) {
    core::ProfilerConfig pcfg;
    pcfg.rounds = rounds;
    core::PriorityProfiler profiler(qm_, ax_, ay_, pcfg);
    return profiler.profile();
  }

  std::unique_ptr<nn::Model> model_;
  quant::QuantizedModel qm_;
  std::unique_ptr<ProtectedSystem> sys_;
  nn::Tensor ax_, ex_;
  std::vector<u32> ay_, ey_;
};

TEST_F(SystemFixture, ConstructionUploadsWeights) {
  const auto& mapping = sys_->mapping();
  const auto place = mapping.locate(0, 0);
  const auto phys = sys_->remapper().to_physical(place.row);
  EXPECT_EQ(static_cast<i8>(sys_->device().peek(phys, place.col)), qm_.get_q(0, 0));
}

TEST_F(SystemFixture, SyncRoundtripAfterDeviceFlip) {
  const auto snap = qm_.snapshot();
  const auto place = sys_->mapping().locate(0, 7);
  sys_->device().force_flip_bit(sys_->remapper().to_physical(place.row), place.col, 7);
  sys_->sync_model_from_dram();
  EXPECT_EQ(qm_.hamming_distance(snap), 1u);
  // Re-upload pushes the (flipped) model state back; download is idempotent.
  sys_->upload_model_to_dram();
  sys_->sync_model_from_dram();
  EXPECT_EQ(qm_.hamming_distance(snap), 1u);
}

TEST_F(SystemFixture, UndefendedAttackLandsFlips) {
  const auto res = sys_->run_white_box_attack(ax_, ay_, ex_, ey_, 8, 0.0);
  EXPECT_EQ(res.attempts, 8u);
  EXPECT_EQ(res.landed, 8u);
  EXPECT_EQ(res.blocked, 0u);
  EXPECT_LT(res.final_accuracy, res.initial_accuracy);
}

TEST_F(SystemFixture, DnnDefenderBlocksEverySecuredAttempt) {
  const auto profile = quick_profile();
  ASSERT_GT(profile.total_bits(), 0u);
  auto& dd = sys_->install_dnn_defender(profile);
  EXPECT_GT(dd.targets().size(), 0u);
  const auto res = sys_->run_white_box_attack(ax_, ay_, ex_, ey_, 10, 0.0);
  // The profiler and attacker run the same search, so every proposed bit
  // lies in a protected row: all attempts blocked, accuracy unchanged.
  EXPECT_EQ(res.landed, 0u);
  EXPECT_EQ(res.blocked, res.attempts);
  EXPECT_DOUBLE_EQ(res.final_accuracy, res.initial_accuracy);
  EXPECT_GT(dd.swap_stats().swaps, 0u);
}

TEST_F(SystemFixture, SecuredBitsCoverProfiledPrefix) {
  const auto profile = quick_profile();
  sys_->install_dnn_defender(profile, /*max_bits=*/4);
  const auto secured = sys_->secured_bits();
  for (usize i = 0; i < 4 && i < profile.total_bits(); ++i) {
    EXPECT_TRUE(secured.contains(profile.priority_bits[i]))
        << "row-granular protection must cover profiled bit " << i;
  }
  // Row granularity: secured set is a whole number of rows (bits multiple of 8).
  EXPECT_EQ(secured.size() % 8, 0u);
}

TEST_F(SystemFixture, PartialProtectionBlocksSecuredLandsRest) {
  const auto profile = quick_profile(3);
  // Protect only the single highest-priority row.
  sys_->install_dnn_defender(profile, /*max_bits=*/1);
  const auto res = sys_->run_white_box_attack(ax_, ay_, ex_, ey_, 12, 0.0);
  EXPECT_GT(res.blocked, 0u) << "the top row must deflect the first attempts";
  EXPECT_GT(res.landed, 0u) << "unprotected bits must remain attackable";
}

TEST_F(SystemFixture, ClearMitigationRestoresVulnerability) {
  const auto profile = quick_profile();
  sys_->install_dnn_defender(profile);
  sys_->clear_mitigation();
  EXPECT_EQ(sys_->defender(), nullptr);
  const auto res = sys_->run_white_box_attack(ax_, ay_, ex_, ey_, 4, 0.0);
  EXPECT_EQ(res.landed, 4u);
}

TEST_F(SystemFixture, BaselineMitigationsInstallable) {
  auto rrs = std::make_unique<defense::Rrs>(sys_->device(), sys_->remapper());
  defense::Rrs* rrs_ptr = rrs.get();
  sys_->install_mitigation(std::move(rrs));
  EXPECT_EQ(sys_->defender(), nullptr);
  EXPECT_EQ(sys_->mitigation(), rrs_ptr);
  // RRS is aggressor-focused: the white-box attack still lands.
  const auto res = sys_->run_white_box_attack(ax_, ay_, ex_, ey_, 4, 0.0);
  EXPECT_GT(res.landed, 0u);
}

TEST_F(SystemFixture, ShadowBlocksSystemAttack) {
  sys_->install_mitigation(
      std::make_unique<defense::Shadow>(sys_->device(), sys_->remapper()));
  const auto res = sys_->run_white_box_attack(ax_, ay_, ex_, ey_, 6, 0.0);
  EXPECT_EQ(res.landed, 0u) << "SHADOW (victim-focused) should block white-box attacks";
}

TEST_F(SystemFixture, DefenderOverheadIsSmallShareOfBusTime) {
  const auto profile = quick_profile();
  auto& dd = sys_->install_dnn_defender(profile);
  sys_->run_white_box_attack(ax_, ay_, ex_, ey_, 6, 0.0);
  // Denominator: total elapsed device time (the attacker's massaging costs
  // wall-clock during which the defender keeps its schedule); the defense's
  // bus occupancy must stay a small fraction of it.
  const auto elapsed = sys_->device().now();
  ASSERT_GT(elapsed, 0);
  const double share =
      static_cast<double>(dd.stats().time_spent) / static_cast<double>(elapsed);
  EXPECT_LT(share, 0.10) << "defense maintenance should not dominate the device";
}

}  // namespace
}  // namespace dnnd::system
