#include "nn/optimizer.hpp"

namespace dnnd::nn {

SgdOptimizer::SgdOptimizer(Model& model, SgdConfig cfg) : model_(model), cfg_(cfg) {
  for (auto& p : model_.params()) velocity_.emplace_back(p.value->shape());
}

void SgdOptimizer::step() {
  auto params = model_.params();
  for (usize i = 0; i < params.size(); ++i) {
    Tensor& w = *params[i].value;
    const Tensor& g = *params[i].grad;
    Tensor& v = velocity_[i];
    const float lr = static_cast<float>(cfg_.lr);
    const float mu = static_cast<float>(cfg_.momentum);
    // Weight decay applies to weights only, not biases/affine params.
    const float wd = params[i].quantizable ? static_cast<float>(cfg_.weight_decay) : 0.0f;
    for (usize j = 0; j < w.size(); ++j) {
      v[j] = mu * v[j] - lr * (g[j] + wd * w[j]);
      w[j] += v[j];
    }
    // Direct weight mutation: drop any resident packed panel (see
    // Layer::drop_packed_weight) and mark cached activations stale from this
    // layer on, so fused/incremental inference never reads pre-step state.
    if (params[i].owner != nullptr) params[i].owner->drop_packed_weight();
  }
  model_.invalidate_from(0);
}

}  // namespace dnnd::nn
